// Quickstart reproduces Example 1 of the paper (Figure 1): two BibTeX
// citations of the same 1978 article plus three email-extracted person
// references, reconciled into five entities.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"refrecon"
)

func main() {
	store := refrecon.NewStore()
	labelOf := map[refrecon.ID]string{}
	n := 0

	person := func(name, email string) *refrecon.Reference {
		r := refrecon.NewReference(refrecon.ClassPerson)
		r.AddAtomic(refrecon.AttrName, name)
		r.AddAtomic(refrecon.AttrEmail, email)
		store.Add(r)
		n++
		labelOf[r.ID] = fmt.Sprintf("p%d", n)
		return r
	}
	p1 := person("Robert S. Epstein", "")
	p2 := person("Michael Stonebraker", "")
	p3 := person("Eugene Wong", "")
	p4 := person("Epstein, R.S.", "")
	p5 := person("Stonebraker, M.", "")
	p6 := person("Wong, E.", "")
	p7 := person("Eugene Wong", "eugene@berkeley.edu")
	p8 := person("", "stonebraker@csail.mit.edu")
	person("mike", "stonebraker@csail.mit.edu")

	// Co-author links from the two citations' author lists.
	for _, trio := range [][]*refrecon.Reference{{p1, p2, p3}, {p4, p5, p6}} {
		for _, a := range trio {
			for _, b := range trio {
				if a != b {
					a.AddAssoc(refrecon.AttrCoAuthor, b.ID)
				}
			}
		}
	}
	// Email correspondence between p7 and p8.
	p7.AddAssoc(refrecon.AttrEmailContact, p8.ID)
	p8.AddAssoc(refrecon.AttrEmailContact, p7.ID)

	nv := 0
	venue := func(name, year, location string) *refrecon.Reference {
		r := refrecon.NewReference(refrecon.ClassVenue)
		r.AddAtomic(refrecon.AttrName, name)
		r.AddAtomic(refrecon.AttrYear, year)
		r.AddAtomic(refrecon.AttrLocation, location)
		store.Add(r)
		nv++
		labelOf[r.ID] = fmt.Sprintf("c%d", nv)
		return r
	}
	c1 := venue("ACM Conference on Management of Data", "1978", "Austin, Texas")
	c2 := venue("ACM SIGMOD", "1978", "")

	na := 0
	article := func(title, pages string, authors []*refrecon.Reference, v *refrecon.Reference) {
		r := refrecon.NewReference(refrecon.ClassArticle)
		r.AddAtomic(refrecon.AttrTitle, title)
		r.AddAtomic(refrecon.AttrPages, pages)
		for _, a := range authors {
			r.AddAssoc(refrecon.AttrAuthoredBy, a.ID)
		}
		r.AddAssoc(refrecon.AttrPublishedIn, v.ID)
		store.Add(r)
		na++
		labelOf[r.ID] = fmt.Sprintf("a%d", na)
	}
	const title = "Distributed query processing in a relational data base system"
	article(title, "169-180", []*refrecon.Reference{p1, p2, p3}, c1)
	article(title, "169-180", []*refrecon.Reference{p4, p5, p6}, c2)

	r := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig())
	result, err := r.Reconcile(store)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Reconciled partitions (paper Figure 1(c) expects")
	fmt.Println("  {a1,a2} {p1,p4} {p2,p5,p8,p9} {p3,p6,p7} {c1,c2}):")
	fmt.Println()
	for _, class := range []string{refrecon.ClassArticle, refrecon.ClassPerson, refrecon.ClassVenue} {
		for _, part := range result.Partitions[class] {
			var names []string
			for _, id := range part {
				if l, ok := labelOf[id]; ok {
					names = append(names, l)
				}
			}
			sort.Strings(names)
			fmt.Printf("  %-8s %v\n", class, names)
		}
	}
}
