// The citations example reconciles a noisy citation corpus shaped like the
// Cora benchmark (§5.4): 112 papers cited ~1295 times with abbreviated
// author names, venue-name chaos, and occasional wrong venues. It shows
// how reconciling articles collectively drags venue recall up — and, on
// this noisy data, drags venue precision down, exactly the trade-off the
// paper reports in Table 7.
//
// Run with: go run ./examples/citations [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"refrecon"
	"refrecon/internal/datagen/cora"
)

func main() {
	scale := flag.Float64("scale", 0.5, "dataset scale (1.0 = the 1295-citation benchmark)")
	flag.Parse()

	g, err := cora.Generate(cora.Default(*scale))
	if err != nil {
		log.Fatal(err)
	}
	store := g.Store
	fmt.Printf("citation corpus at scale %.2f: %d references (%d papers, %d authors)\n\n",
		*scale, store.Len(), g.Papers, g.Authors)

	base, err := refrecon.NewBaseline(refrecon.PIMSchema(), refrecon.DefaultBaselineConfig()).Reconcile(store)
	if err != nil {
		log.Fatal(err)
	}
	full, err := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig()).Reconcile(store)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s | %-24s | %-24s\n", "Class", "IndepDec P/R (F)", "DepGraph P/R (F)")
	for _, class := range []string{refrecon.ClassPerson, refrecon.ClassArticle, refrecon.ClassVenue} {
		b := refrecon.Evaluate(store, class, base.Partitions[class])
		d := refrecon.Evaluate(store, class, full.Partitions[class])
		fmt.Printf("%-10s | %.3f/%.3f (%.3f)      | %.3f/%.3f (%.3f)\n",
			class, b.Precision, b.Recall, b.F1, d.Precision, d.Recall, d.F1)
	}

	// Show one resolved paper: the most-cited article and a sample of its
	// citation titles.
	best := 0
	var bestPart []refrecon.ID
	for _, part := range full.Partitions[refrecon.ClassArticle] {
		if len(part) > best {
			best = len(part)
			bestPart = part
		}
	}
	fmt.Printf("\nmost-cited resolved paper (%d citations), sample titles:\n", best)
	for i, id := range bestPart {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", len(bestPart)-i)
			break
		}
		fmt.Printf("  %q\n", store.Get(id).FirstAtomic(refrecon.AttrTitle))
	}
}
