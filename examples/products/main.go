// The products example applies the reconciler to a *custom schema* — the
// online-catalog scenario from the paper's introduction: products from
// different storefronts with varying titles, linked to manufacturer
// references that themselves need reconciling. It demonstrates that the
// dependency-graph framework is schema-driven rather than hard-wired to
// the PIM classes.
//
// Run with: go run ./examples/products
package main

import (
	"fmt"
	"log"
	"sort"

	"refrecon"
	"refrecon/internal/schema"
)

func main() {
	// A two-class catalog schema: products link to their manufacturer.
	product := &refrecon.Class{
		Name: "Product",
		Rank: 1,
		Attrs: []refrecon.Attribute{
			{Name: "title", Kind: schema.Atomic},
			{Name: "model", Kind: schema.Atomic},
			{Name: "madeBy", Kind: schema.Association, Target: "Manufacturer"},
		},
	}
	maker := &refrecon.Class{
		Name: "Manufacturer",
		Rank: 0,
		Attrs: []refrecon.Attribute{
			{Name: "name", Kind: schema.Atomic},
			{Name: "country", Kind: schema.Atomic},
		},
	}
	sch, err := refrecon.NewSchema(product, maker)
	if err != nil {
		log.Fatal(err)
	}

	store := refrecon.NewStore()
	mk := func(name, country string) refrecon.ID {
		r := refrecon.NewReference("Manufacturer")
		r.AddAtomic("name", name)
		r.AddAtomic("country", country)
		return store.Add(r)
	}
	pr := func(title, model string, madeBy refrecon.ID) refrecon.ID {
		r := refrecon.NewReference("Product")
		r.AddAtomic("title", title)
		r.AddAtomic("model", model)
		r.AddAssoc("madeBy", madeBy)
		return store.Add(r)
	}

	// Storefront 1.
	acme1 := mk("Acme Corporation", "USA")
	p1 := pr("Acme TurboBlend 5000 Blender", "TB-5000", acme1)
	p2 := pr("Acme SteamPress Iron", "SP-100", acme1)
	globex1 := mk("Globex Industries", "Germany")
	p3 := pr("Globex Quantum Kettle", "QK-2", globex1)

	// Storefront 2: different naming conventions, same real products.
	acme2 := mk("ACME Corp.", "USA")
	p4 := pr("TurboBlend 5000 blender by Acme", "TB5000", acme2)
	p5 := pr("Acme Steam Press iron (SP 100)", "SP-100", acme2)
	globex2 := mk("Globex Industries GmbH", "Germany")
	p6 := pr("Quantum Kettle QK-2", "QK-2", globex2)
	// An unrelated product that must stay separate.
	p7 := pr("Acme CycloneVac Vacuum Cleaner", "CV-300", acme2)

	r := refrecon.New(sch, refrecon.DefaultConfig())
	result, err := r.Reconcile(store)
	if err != nil {
		log.Fatal(err)
	}

	names := map[refrecon.ID]string{
		p1: "s1:TB-5000", p2: "s1:SP-100", p3: "s1:QK-2",
		p4: "s2:TB5000", p5: "s2:SP100", p6: "s2:QK-2", p7: "s2:CV-300",
		acme1: "s1:Acme", acme2: "s2:Acme", globex1: "s1:Globex", globex2: "s2:Globex",
	}
	for _, class := range []string{"Product", "Manufacturer"} {
		fmt.Printf("%s partitions:\n", class)
		for _, part := range result.Partitions[class] {
			var labels []string
			for _, id := range part {
				labels = append(labels, names[id])
			}
			sort.Strings(labels)
			fmt.Printf("  %v\n", labels)
		}
	}

	// Sanity expectations for this example.
	check := func(want bool, what string) {
		if !want {
			fmt.Printf("UNEXPECTED: %s\n", what)
		}
	}
	check(result.SameEntity(p1, p4), "TurboBlend 5000 should reconcile across storefronts")
	check(result.SameEntity(p2, p5), "SteamPress should reconcile across storefronts")
	check(result.SameEntity(p3, p6), "Quantum Kettle should reconcile across storefronts")
	check(!result.SameEntity(p1, p7), "TurboBlend and CycloneVac are different products")
	check(result.SameEntity(acme1, acme2), "Acme should reconcile across storefronts")
	check(result.SameEntity(globex1, globex2), "Globex should reconcile across storefronts")
}
