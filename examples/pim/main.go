// The pim example reconciles a synthetic personal-information dataset —
// email and BibTeX corpora rendered and re-parsed through the real
// extractors — and compares the DepGraph algorithm against the
// attribute-wise baseline, printing quality metrics and a few resolved
// entities.
//
// Run with: go run ./examples/pim [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"refrecon"
	"refrecon/internal/datagen/pim"
)

func main() {
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 = paper scale)")
	flag.Parse()

	g, err := pim.Generate(pim.DatasetA(*scale))
	if err != nil {
		log.Fatal(err)
	}
	store := g.Store
	fmt.Printf("dataset A at scale %.2f: %d references\n\n", *scale, store.Len())

	base, err := refrecon.NewBaseline(refrecon.PIMSchema(), refrecon.DefaultBaselineConfig()).Reconcile(store)
	if err != nil {
		log.Fatal(err)
	}
	full, err := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig()).Reconcile(store)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s | %-24s | %-24s\n", "Class", "IndepDec P/R (F)", "DepGraph P/R (F)")
	for _, class := range []string{refrecon.ClassPerson, refrecon.ClassArticle, refrecon.ClassVenue} {
		b := refrecon.Evaluate(store, class, base.Partitions[class])
		d := refrecon.Evaluate(store, class, full.Partitions[class])
		fmt.Printf("%-10s | %.3f/%.3f (%.3f)      | %.3f/%.3f (%.3f)\n",
			class, b.Precision, b.Recall, b.F1, d.Precision, d.Recall, d.F1)
	}

	// Show the largest resolved person entity: the dataset owner, with all
	// the presentations the reconciler united.
	var owner [][]string
	for _, part := range full.Partitions[refrecon.ClassPerson] {
		if len(part) <= len(owner) {
			continue
		}
		owner = nil
		for _, id := range part {
			r := store.Get(id)
			owner = append(owner, []string{
				r.FirstAtomic(refrecon.AttrName),
				r.FirstAtomic(refrecon.AttrEmail),
			})
		}
	}
	sort.Slice(owner, func(i, j int) bool {
		return owner[i][0]+owner[i][1] < owner[j][0]+owner[j][1]
	})
	fmt.Printf("\nlargest resolved person (%d presentations):\n", len(owner))
	for i, pres := range owner {
		if i == 12 {
			fmt.Printf("  ... and %d more\n", len(owner)-i)
			break
		}
		fmt.Printf("  name=%-24q email=%q\n", pres[0], pres[1])
	}
}
