// The incremental example demonstrates the paper's §7 future-work
// scenario: new references arriving at an already-reconciled dataset. A
// session keeps the dependency graph alive between batches, so each new
// batch costs a fraction of a from-scratch run while decisions stay
// consistent — and every decision can be explained after the fact.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"refrecon"
)

func main() {
	store := refrecon.NewStore()
	r := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig())
	sess := r.NewSession(store)

	person := func(name, email string) *refrecon.Reference {
		p := refrecon.NewReference(refrecon.ClassPerson)
		p.AddAtomic(refrecon.AttrName, name)
		p.AddAtomic(refrecon.AttrEmail, email)
		store.Add(p)
		return p
	}

	// Day 1: the mailbox yields a handful of references.
	alice1 := person("Alice Liddell", "alice@wonderland.org")
	person("Bob Hatter", "hatter@wonderland.org")
	alice2 := person("Liddell, A.", "alice@wonderland.org")
	res, err := sess.Reconcile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1: %d references -> %d person entities\n",
		store.Len(), res.PartitionCount(refrecon.ClassPerson))
	fmt.Printf("  alice1 ~ alice2: %v (email key)\n", res.SameEntity(alice1.ID, alice2.ID))

	// Day 2: a bibliography arrives; its author list mentions Alice by
	// citation name only.
	x := refrecon.NewExtractor(store)
	bib, err := x.AddBibTeX(`
@article{rabbit07,
  author  = {Liddell, Alice and Hatter, Bob},
  title   = {On the punctuality of white rabbits},
  journal = {Journal of Improbable Zoology},
  year    = {1907},
  pages   = {1-12}
}`)
	if err != nil {
		log.Fatal(err)
	}
	res, err = sess.Reconcile()
	if err != nil {
		log.Fatal(err)
	}
	aliceBib := bib[0].Authors[0]
	fmt.Printf("day 2: %d references -> %d person entities\n",
		store.Len(), res.PartitionCount(refrecon.ClassPerson))
	fmt.Printf("  citation author ~ mailbox alice: %v\n", res.SameEntity(aliceBib, alice1.ID))

	// Why did that merge happen? Ask the session.
	exp, err := sess.Explain(aliceBib, alice1.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(exp.String())
}
