// Determinism tests for parallel graph construction: the worker count is a
// pure throughput knob, so every Workers setting must produce bit-identical
// merge partitions, graph sizes, and engine counters. This is the contract
// that lets benchmarks compare worker counts and lets deployments pick
// NumCPU without re-validating quality numbers.
package refrecon_test

import (
	"fmt"
	"sort"
	"testing"

	"refrecon"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// workerCounts are the settings compared against the serial (Workers=1) run.
var workerCounts = []int{1, 2, 8}

// canonPartitions renders a partitioning in a canonical text form: ids
// sorted within each partition, partitions sorted by first id, classes
// sorted by name. Two identical strings mean identical clusterings.
func canonPartitions(parts map[string][][]reference.ID) string {
	classes := make([]string, 0, len(parts))
	for c := range parts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	out := ""
	for _, c := range classes {
		groups := make([][]reference.ID, len(parts[c]))
		for i, g := range parts[c] {
			cp := append([]reference.ID(nil), g...)
			sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
			groups[i] = cp
		}
		sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
		out += fmt.Sprintf("%s:%v\n", c, groups)
	}
	return out
}

// comparableStats strips the wall-clock timing fields, which legitimately
// differ between runs; everything else must match exactly.
func comparableStats(st recon.Stats) recon.Stats {
	st.BuildTime, st.PropagateTime, st.ClosureTime = 0, 0, 0
	return st
}

func checkDeterministic(t *testing.T, name string, store *reference.Store) {
	t.Helper()
	type run struct {
		workers    int
		partitions string
		stats      recon.Stats
	}
	var base *run
	for _, w := range workerCounts {
		cfg := recon.DefaultConfig()
		cfg.Workers = w
		res, err := recon.New(schema.PIM(), cfg).Reconcile(store)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", name, w, err)
		}
		r := &run{workers: w, partitions: canonPartitions(res.Partitions), stats: comparableStats(res.Stats)}
		if base == nil {
			base = r
			continue
		}
		if r.partitions != base.partitions {
			t.Errorf("%s: workers=%d partitions differ from workers=%d", name, w, base.workers)
		}
		if r.stats != base.stats {
			t.Errorf("%s: workers=%d stats %+v differ from workers=%d stats %+v",
				name, w, r.stats, base.workers, base.stats)
		}
	}
}

// TestWorkerCountDeterminismPIM reconciles a PIM dataset at several worker
// counts and requires identical partitions and stats, including the engine
// counters (steps, merges, folds, reactivations, truncation).
func TestWorkerCountDeterminismPIM(t *testing.T) {
	checkDeterministic(t, "PIM-A", suite().PIM("A").Store)
}

// TestWorkerCountDeterminismCora repeats the check on the citation-shaped
// Cora dataset, which exercises the article/venue evidence paths.
func TestWorkerCountDeterminismCora(t *testing.T) {
	checkDeterministic(t, "Cora", suite().Cora().Store)
}

// TestWorkerCountDeterminismSession checks the incremental path: references
// arriving in two batches must yield the same final partitions at every
// worker count (batch boundaries themselves may change results versus a
// one-shot run; worker counts must not).
func TestWorkerCountDeterminismSession(t *testing.T) {
	full := suite().PIM("B").Store
	refs := full.All()
	cut := len(refs) / 2

	results := make([]string, 0, len(workerCounts))
	for _, w := range workerCounts {
		store := refrecon.NewStore()
		clones := make([]*refrecon.Reference, len(refs))
		remap := make(map[refrecon.ID]refrecon.ID, len(refs))
		copyRef := func(j int) {
			r := refs[j]
			c := refrecon.NewReference(r.Class)
			c.Source = r.Source
			c.Entity = r.Entity
			for _, attr := range r.AtomicAttrs() {
				for _, v := range r.Atomic(attr) {
					c.AddAtomic(attr, v)
				}
			}
			clones[j] = c
			remap[r.ID] = store.Add(c)
		}
		addAssocs := func(from, to int) {
			for j := from; j < to; j++ {
				for _, attr := range refs[j].AssocAttrs() {
					for _, tgt := range refs[j].Assoc(attr) {
						if nt, ok := remap[tgt]; ok {
							clones[j].AddAssoc(attr, nt)
						}
					}
				}
			}
		}
		cfg := refrecon.DefaultConfig()
		cfg.Workers = w
		sess := refrecon.New(refrecon.PIMSchema(), cfg).NewSession(store)
		for j := 0; j < cut; j++ {
			copyRef(j)
		}
		addAssocs(0, cut)
		if _, err := sess.Reconcile(); err != nil {
			t.Fatalf("workers=%d first batch: %v", w, err)
		}
		for j := cut; j < len(refs); j++ {
			copyRef(j)
		}
		addAssocs(cut, len(refs))
		res, err := sess.Reconcile()
		if err != nil {
			t.Fatalf("workers=%d second batch: %v", w, err)
		}
		results = append(results, canonPartitions(res.Partitions))
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("incremental session: workers=%d partitions differ from workers=%d",
				workerCounts[i], workerCounts[0])
		}
	}
}

// comparableEngineStats additionally zeroes the delta-scoring counters,
// which are legitimately zero on a rescan run (it never touches
// aggregates) and positive on a delta run; everything else — steps,
// merges, folds, reactivations — must match bit for bit.
func comparableEngineStats(st recon.Stats) recon.Stats {
	st = comparableStats(st)
	st.Engine.DeltaHits, st.Engine.AggBuilds, st.Engine.AggRebuilds = 0, 0, 0
	return st
}

// checkRescanEquivalence reconciles the store twice — delta-scored (the
// default) and with RescanScoring forcing full neighborhood rescans — and
// requires identical partitions and identical engine counters. This is the
// correctness contract of the delta-scoring optimization: it must be a pure
// performance change.
func checkRescanEquivalence(t *testing.T, name string, store *reference.Store) {
	t.Helper()
	type run struct {
		partitions string
		stats      recon.Stats
		deltaHits  int
	}
	runWith := func(rescan bool) run {
		cfg := recon.DefaultConfig()
		cfg.RescanScoring = rescan
		res, err := recon.New(schema.PIM(), cfg).Reconcile(store)
		if err != nil {
			t.Fatalf("%s rescan=%v: %v", name, rescan, err)
		}
		return run{
			partitions: canonPartitions(res.Partitions),
			stats:      comparableEngineStats(res.Stats),
			deltaHits:  res.Stats.Engine.DeltaHits,
		}
	}
	delta, rescan := runWith(false), runWith(true)
	if delta.partitions != rescan.partitions {
		t.Errorf("%s: delta-scored partitions differ from rescan-scored partitions", name)
	}
	if delta.stats != rescan.stats {
		t.Errorf("%s: delta stats %+v differ from rescan stats %+v", name, delta.stats, rescan.stats)
	}
	if delta.deltaHits == 0 {
		t.Errorf("%s: delta run served no digest hits (optimization inactive)", name)
	}
	if rescan.deltaHits != 0 {
		t.Errorf("%s: rescan run unexpectedly used digests (%d hits)", name, rescan.deltaHits)
	}
}

// TestRescanEquivalencePIM checks delta-vs-rescan equivalence on all four
// PIM datasets.
func TestRescanEquivalencePIM(t *testing.T) {
	for _, d := range []string{"A", "B", "C", "D"} {
		checkRescanEquivalence(t, "PIM-"+d, suite().PIM(d).Store)
	}
}

// TestRescanEquivalenceCora repeats the check on Cora, which exercises the
// article/venue decision trees and heavy enrichment folding.
func TestRescanEquivalenceCora(t *testing.T) {
	checkRescanEquivalence(t, "Cora", suite().Cora().Store)
}

// TestRescanEquivalenceSession checks the incremental path: a two-batch
// session must produce identical partitions and engine counters whether
// the second batch is delta-scored against the maintained aggregates
// (which must survive the first run's folds and the between-run builder
// mutations) or fully rescanned.
func TestRescanEquivalenceSession(t *testing.T) {
	full := suite().PIM("B").Store
	refs := full.All()
	cut := len(refs) / 2

	type outcome struct {
		partitions string
		stats      recon.Stats
	}
	runWith := func(rescan bool) outcome {
		store := refrecon.NewStore()
		remap := make(map[refrecon.ID]refrecon.ID, len(refs))
		clones := make([]*refrecon.Reference, len(refs))
		copyRef := func(j int) {
			r := refs[j]
			c := refrecon.NewReference(r.Class)
			c.Source = r.Source
			c.Entity = r.Entity
			for _, attr := range r.AtomicAttrs() {
				for _, v := range r.Atomic(attr) {
					c.AddAtomic(attr, v)
				}
			}
			clones[j] = c
			remap[r.ID] = store.Add(c)
		}
		addAssocs := func(from, to int) {
			for j := from; j < to; j++ {
				for _, attr := range refs[j].AssocAttrs() {
					for _, tgt := range refs[j].Assoc(attr) {
						if nt, ok := remap[tgt]; ok {
							clones[j].AddAssoc(attr, nt)
						}
					}
				}
			}
		}
		cfg := refrecon.DefaultConfig()
		cfg.RescanScoring = rescan
		sess := refrecon.New(refrecon.PIMSchema(), cfg).NewSession(store)
		for j := 0; j < cut; j++ {
			copyRef(j)
		}
		addAssocs(0, cut)
		if _, err := sess.Reconcile(); err != nil {
			t.Fatalf("rescan=%v first batch: %v", rescan, err)
		}
		for j := cut; j < len(refs); j++ {
			copyRef(j)
		}
		addAssocs(cut, len(refs))
		res, err := sess.Reconcile()
		if err != nil {
			t.Fatalf("rescan=%v second batch: %v", rescan, err)
		}
		return outcome{canonPartitions(res.Partitions), comparableEngineStats(res.Stats)}
	}
	delta, rescan := runWith(false), runWith(true)
	if delta.partitions != rescan.partitions {
		t.Error("incremental session: delta-scored partitions differ from rescan-scored partitions")
	}
	if delta.stats != rescan.stats {
		t.Errorf("incremental session: delta stats %+v differ from rescan stats %+v",
			delta.stats, rescan.stats)
	}
}
