// Command pimgen generates a synthetic dataset and writes it as JSON to
// stdout (or a file), for inspection or for feeding cmd/reconcile.
//
// Usage:
//
//	pimgen -dataset A [-scale 0.25] [-o dataset.json]
//	pimgen -dataset cora [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"refrecon/internal/datagen/cora"
	"refrecon/internal/datagen/pim"
	"refrecon/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pimgen: ")
	name := flag.String("dataset", "A", "dataset to generate: A, B, C, D, or cora")
	scale := flag.Float64("scale", 0.25, "scale factor (1.0 = paper scale)")
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", "json", "output format: json or csv")
	flag.Parse()

	var ds *dataset.Dataset
	switch *name {
	case "A", "B", "C", "D":
		var p pim.Profile
		switch *name {
		case "A":
			p = pim.DatasetA(*scale)
		case "B":
			p = pim.DatasetB(*scale)
		case "C":
			p = pim.DatasetC(*scale)
		case "D":
			p = pim.DatasetD(*scale)
		}
		g, err := pim.Generate(p)
		if err != nil {
			log.Fatal(err)
		}
		ds = &dataset.Dataset{Name: *name, Store: g.Store}
	case "cora":
		g, err := cora.Generate(cora.Default(*scale))
		if err != nil {
			log.Fatal(err)
		}
		ds = &dataset.Dataset{Name: "Cora", Store: g.Store}
	default:
		log.Fatalf("unknown dataset %q (want A, B, C, D, or cora)", *name)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	var writeErr error
	switch *format {
	case "json":
		writeErr = ds.WriteJSON(w)
	case "csv":
		writeErr = ds.WriteCSV(w)
	default:
		log.Fatalf("unknown format %q (want json or csv)", *format)
	}
	if writeErr != nil {
		log.Fatal(writeErr)
	}
	fmt.Fprintf(os.Stderr, "pimgen: wrote %d references\n", ds.Store.Len())
}
