// Command pimgen generates a synthetic dataset and writes it as JSON to
// stdout (or a file), for inspection or for feeding cmd/reconcile.
//
// Usage:
//
//	pimgen -dataset A [-scale 0.25] [-o dataset.json]
//	pimgen -dataset cora [-scale 1.0]
//	pimgen -refs 100000 [-dup 3.5] [-assoc 0.2] [-seed 1] [-o big.json]
//
// With -refs, pimgen ignores -dataset/-scale and generates a corpus
// calibrated to approximately that many references (100k–1M is the
// intended range), with -dup controlling the duplicate rate (average
// references per real person) and -assoc the cross-class association
// density (fraction of references from the bibliography side). The same
// -refs/-dup/-assoc/-seed always produce the same corpus.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"refrecon/internal/datagen/cora"
	"refrecon/internal/datagen/pim"
	"refrecon/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pimgen: ")
	name := flag.String("dataset", "A", "dataset to generate: A, B, C, D, or cora")
	scale := flag.Float64("scale", 0.25, "scale factor (1.0 = paper scale)")
	refs := flag.Int("refs", 0, "generate a scaled corpus of approximately N references instead of a named dataset")
	dup := flag.Float64("dup", 3.5, "with -refs: duplicate rate, average references per real person")
	assoc := flag.Float64("assoc", 0.2, "with -refs: cross-class association density, fraction of references from the bibliography side")
	seed := flag.Int64("seed", 1, "with -refs: generation seed")
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", "json", "output format: json or csv")
	flag.Parse()

	var ds *dataset.Dataset
	if *refs > 0 {
		g, err := pim.GenerateScaled(*refs, *dup, *assoc, *seed)
		if err != nil {
			log.Fatal(err)
		}
		ds = &dataset.Dataset{Name: fmt.Sprintf("scaled-%d", *refs), Store: g.Store}
		writeDataset(ds, *out, *format)
		return
	}
	switch *name {
	case "A", "B", "C", "D":
		var p pim.Profile
		switch *name {
		case "A":
			p = pim.DatasetA(*scale)
		case "B":
			p = pim.DatasetB(*scale)
		case "C":
			p = pim.DatasetC(*scale)
		case "D":
			p = pim.DatasetD(*scale)
		}
		g, err := pim.Generate(p)
		if err != nil {
			log.Fatal(err)
		}
		ds = &dataset.Dataset{Name: *name, Store: g.Store}
	case "cora":
		g, err := cora.Generate(cora.Default(*scale))
		if err != nil {
			log.Fatal(err)
		}
		ds = &dataset.Dataset{Name: "Cora", Store: g.Store}
	default:
		log.Fatalf("unknown dataset %q (want A, B, C, D, or cora)", *name)
	}

	writeDataset(ds, *out, *format)
}

func writeDataset(ds *dataset.Dataset, out, format string) {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	var writeErr error
	switch format {
	case "json":
		writeErr = ds.WriteJSON(w)
	case "csv":
		writeErr = ds.WriteCSV(w)
	default:
		log.Fatalf("unknown format %q (want json or csv)", format)
	}
	if writeErr != nil {
		log.Fatal(writeErr)
	}
	fmt.Fprintf(os.Stderr, "pimgen: wrote %d references\n", ds.Store.Len())
}
