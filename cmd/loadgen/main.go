// Command loadgen replays a deterministic mixed ingest+query workload
// against a reconciliation service and reports per-mode latency
// histograms, sustained throughput, and error counts as JSON — the
// standing load harness behind every scaling claim in this repo.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8080 -dataset biblio -refs 5000 \
//	        -queries 2000 -clients 32 [-rate 500] [-o report.json]
//	loadgen -dataset catalog -refs 5000 -queries 2000 -clients 32
//
// Without -target, loadgen starts an in-process serve.Service and drives
// it directly, isolating engine cost from HTTP/JSON stack cost; compare
// the two reports to see what the wire adds. With -target, the server
// must run the workload's schema (reconserve -schema pim for biblio,
// -schema catalog for catalog) and should start empty — the workload
// ingests its own corpus. -rate switches from closed-loop (N clients,
// next query on completion) to open-loop (fixed arrival rate; latency is
// measured from the intended arrival, so queueing delay counts). The
// same -dataset/-refs/-queries/-seed always produce the identical
// request stream.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"refrecon/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	target := flag.String("target", "", "base URL of a live reconserve (empty: run in-process)")
	dataset := flag.String("dataset", "biblio", "workload dataset: biblio or catalog")
	refs := flag.Int("refs", 2000, "corpus size in references")
	queries := flag.Int("queries", 500, "number of reconcile queries")
	seed := flag.Int64("seed", 1, "workload seed")
	clients := flag.Int("clients", 8, "concurrent query clients (closed-loop workers)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in queries/sec (0: closed loop)")
	batch := flag.Int("batch", 256, "target ingest batch size")
	collective := flag.Float64("collective", 0.25, "fraction of queries in collective mode")
	properties := flag.Float64("properties", 0.5, "fraction of queries carrying property filters")
	typeless := flag.Float64("typeless", 0.1, "fraction of queries without a type")
	out := flag.String("o", "", "report output file (default stdout)")
	flag.Parse()

	cfg := loadgen.Defaults(*dataset, *refs, *queries, *seed)
	cfg.BatchSize = *batch
	cfg.Collective = *collective
	cfg.Properties = *properties
	cfg.Typeless = *typeless

	w, err := loadgen.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("workload: %s, %d refs in %d batches, %d queries (seed %d)",
		cfg.Dataset, cfg.Refs, len(w.Batches), len(w.Queries), cfg.Seed)

	var t loadgen.Target
	if *target != "" {
		t = loadgen.NewHTTPTarget(*target, *clients)
	} else {
		inproc, err := loadgen.NewInProcTarget(w)
		if err != nil {
			log.Fatal(err)
		}
		t = inproc
	}

	rep, err := loadgen.Run(w, t, loadgen.Options{Concurrency: *clients, RateQPS: *rate})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s loop, %d clients: %.1f q/s over %.2fs; plain p50/p99 %.2f/%.2f ms (%d), collective p50/p99 %.2f/%.2f ms (%d), %d transport errors, %d query errors",
		rep.Mode, rep.Concurrency, rep.QPS, rep.DurationSec,
		rep.Plain.P50MS, rep.Plain.P99MS, rep.Plain.Count,
		rep.Collective.P50MS, rep.Collective.P99MS, rep.Collective.Count,
		rep.TransportErrors, rep.QueryErrors)

	w2 := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w2 = f
	}
	enc := json.NewEncoder(w2)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.TransportErrors > 0 || rep.QueryErrors > 0 {
		fmt.Fprintln(os.Stderr, "loadgen: errors occurred during replay")
		os.Exit(1)
	}
}
