// Command tracecheck validates a Chrome trace-event JSON file produced by
// reconcile -trace (or any tracer built on internal/obs). It checks the
// structural rules a trace viewer relies on — well-formed JSON, the
// traceEvents array, known phase codes, non-negative timestamps and
// durations — plus the span-model contract of this repository: build,
// propagate, and closure phase spans present and strictly ordered, and
// every round span nested inside the propagate phase span. Exits 0 and
// prints a one-line summary on success; exits 1 with a diagnostic
// otherwise. CI runs it as the trace smoke stage.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"refrecon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) != 2 {
		log.Fatal("usage: tracecheck trace.json")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		log.Fatalf("not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		log.Fatal("traceEvents is empty")
	}

	phases := map[string]obs.TraceEvent{}
	rounds := 0
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "X", "i", "B", "E":
		default:
			log.Fatalf("event %d (%s): unknown phase code %q", i, e.Name, e.Ph)
		}
		if e.TS < 0 || e.Dur < 0 {
			log.Fatalf("event %d (%s): negative ts/dur", i, e.Name)
		}
		if e.Name == "" {
			log.Fatalf("event %d: empty name", i)
		}
		switch e.Cat {
		case "phase":
			if _, dup := phases[e.Name]; dup {
				log.Fatalf("duplicate phase span %q", e.Name)
			}
			phases[e.Name] = e
		case "round":
			rounds++
		}
	}

	for _, want := range []string{"build", "propagate", "closure"} {
		if _, ok := phases[want]; !ok {
			log.Fatalf("missing phase span %q", want)
		}
	}
	build, prop, clos := phases["build"], phases["propagate"], phases["closure"]
	if !(end(build) <= prop.TS && end(prop) <= clos.TS) {
		log.Fatalf("phases out of order: build [%v,%v] propagate [%v,%v] closure [%v,%v]",
			build.TS, end(build), prop.TS, end(prop), clos.TS, end(clos))
	}
	for _, e := range doc.TraceEvents {
		if e.Cat != "round" {
			continue
		}
		if e.TS < prop.TS || end(e) > end(prop) {
			log.Fatalf("round span %q [%v,%v] not nested in propagate [%v,%v]",
				e.Name, e.TS, end(e), prop.TS, end(prop))
		}
	}
	fmt.Printf("tracecheck: ok: %d events, %d phases, %d rounds\n",
		len(doc.TraceEvents), len(phases), rounds)
}

func end(e obs.TraceEvent) float64 { return e.TS + e.Dur }
