// Command reconserve runs the reconciliation service: an HTTP server
// exposing the OpenRefine reconciliation API, ingest, entity/explain
// lookups, and metrics over a snapshot-isolated incremental session.
//
// Usage:
//
//	reconserve [-addr :8080] [-in dataset.json] [-name refrecon]
//	           [-evidence attr|nameemail|article|contact] [-constraints=true]
//	           [-workers N] [-audit]
//
// With -in, the dataset (cmd/pimgen JSON format) is reconciled at startup
// as the first batch; without it the service starts empty and is
// populated through POST /ingest. The server shuts down gracefully on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"refrecon/internal/dataset"
	"refrecon/internal/obs"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reconserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	in := flag.String("in", "", "dataset JSON to reconcile at startup (optional)")
	name := flag.String("name", "refrecon", "service name advertised in the manifest")
	evidence := flag.String("evidence", "contact", "evidence level: attr, nameemail, article, contact")
	constraints := flag.Bool("constraints", true, "enforce negative-evidence constraints")
	workers := flag.Int("workers", 0, "goroutines scoring candidate pairs (0 = NumCPU)")
	auditFlag := flag.Bool("audit", false, "verify structural invariants after every batch (slower)")
	flag.Parse()

	cfg := recon.DefaultConfig()
	cfg.Constraints = *constraints
	cfg.Workers = *workers
	cfg.Audit = *auditFlag
	// Engine counters are atomics, cheap enough to leave on in a serving
	// process; /metrics and expvar expose them under "engine".
	cfg.Obs = &obs.Observer{Counters: obs.NewCounters()}
	switch *evidence {
	case "attr":
		cfg.Evidence = recon.EvidenceAttrWise
	case "nameemail":
		cfg.Evidence = recon.EvidenceNameEmail
	case "article":
		cfg.Evidence = recon.EvidenceArticle
	case "contact":
		cfg.Evidence = recon.EvidenceContact
	default:
		log.Fatalf("unknown evidence level %q", *evidence)
	}

	store := reference.NewStore()
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := dataset.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("read %s: %v", *in, err)
		}
		store = ds.Store
		log.Printf("loaded %s: %d references", *in, store.Len())
	}

	start := time.Now()
	svc, err := serve.NewFromStore(serve.Config{
		Schema: schema.PIM(),
		Recon:  cfg,
		Name:   *name,
	}, store)
	if err != nil {
		log.Fatal(err)
	}
	v := svc.View()
	log.Printf("initial snapshot v%d: %d references, %d entities (%.1fms)",
		v.Snapshot.Version, v.Snapshot.RefCount(), len(v.Snapshot.Entities()),
		float64(time.Since(start).Microseconds())/1000)

	expvar.Publish("reconserve", expvar.Func(func() any { return svc.Metrics() }))
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())

	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigc:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	m := svc.Metrics()
	fmt.Fprintf(os.Stderr, "reconserve: served %d queries (%d errors), %d ingest batches\n",
		m.Queries, m.QueryErrors, m.Ingest.Batches)
}
