// Command reconserve runs the reconciliation service: an HTTP server
// exposing the OpenRefine reconciliation API, ingest, entity/explain
// lookups, and metrics over a snapshot-isolated incremental session.
//
// Usage:
//
//	reconserve [-addr :8080] [-in dataset.json] [-name refrecon]
//	           [-schema pim|catalog]
//	           [-evidence attr|nameemail|article|contact] [-constraints=true]
//	           [-workers N] [-audit] [-data-dir DIR] [-checkpoint-every N]
//	           [-collective-max-nodes N] [-collective-max-hops N]
//	           [-collective-budget-ms MS]
//
// With -in, the dataset (cmd/pimgen JSON format) is reconciled at startup
// as the first batch; without it the service starts empty and is
// populated through POST /ingest. With -data-dir, every acknowledged
// ingest batch is fsynced to a write-ahead log under DIR before it is
// applied, snapshot checkpoints are written every N committed batches,
// and a restart recovers the previous state — after a crash by replaying
// the log, after a clean shutdown from the final checkpoint. The server
// shuts down gracefully on SIGINT/SIGTERM: in-flight ingest drains, a
// final checkpoint is written, and the log is closed before exit.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"refrecon/internal/collective"
	"refrecon/internal/dataset"
	"refrecon/internal/obs"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reconserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	in := flag.String("in", "", "dataset JSON to reconcile at startup (optional)")
	name := flag.String("name", "refrecon", "service name advertised in the manifest")
	schemaName := flag.String("schema", "pim", "information-space schema: pim (Person/Article/Venue) or catalog (Product/Manufacturer)")
	evidence := flag.String("evidence", "contact", "evidence level: attr, nameemail, article, contact")
	constraints := flag.Bool("constraints", true, "enforce negative-evidence constraints")
	workers := flag.Int("workers", 0, "goroutines scoring candidate pairs (0 = NumCPU)")
	auditFlag := flag.Bool("audit", false, "verify structural invariants after every batch (slower)")
	dataDir := flag.String("data-dir", "", "durability directory: write-ahead batch log + snapshot checkpoints (empty = in-memory only)")
	ckptEvery := flag.Int("checkpoint-every", 16, "write a checkpoint every N committed batches (requires -data-dir; negative disables periodic checkpoints)")
	collNodes := flag.Int("collective-max-nodes", 512, "collective mode: max reference-pair nodes expanded per query")
	collHops := flag.Int("collective-max-hops", 2, "collective mode: max expansion hops from the query")
	collBudget := flag.Float64("collective-budget-ms", 250, "collective mode: wall-clock budget per query in ms (negative disables)")
	flag.Parse()

	cfg := recon.DefaultConfig()
	cfg.Constraints = *constraints
	cfg.Workers = *workers
	cfg.Audit = *auditFlag
	// Engine counters are atomics, cheap enough to leave on in a serving
	// process; /metrics and expvar expose them under "engine".
	cfg.Obs = &obs.Observer{Counters: obs.NewCounters()}
	switch *evidence {
	case "attr":
		cfg.Evidence = recon.EvidenceAttrWise
	case "nameemail":
		cfg.Evidence = recon.EvidenceNameEmail
	case "article":
		cfg.Evidence = recon.EvidenceArticle
	case "contact":
		cfg.Evidence = recon.EvidenceContact
	default:
		log.Fatalf("unknown evidence level %q", *evidence)
	}

	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	store := reference.NewStore()
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := dataset.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("read %s: %v", *in, err)
		}
		store = ds.Store
		log.Printf("loaded %s: %d references", *in, store.Len())
	}

	start := time.Now()
	collCfg := collective.Config{
		MaxNodes: *collNodes,
		MaxHops:  *collHops,
	}
	switch {
	case *collBudget < 0:
		collCfg.Budget = -1 // serve maps negative to "no time budget"
	case *collBudget > 0:
		collCfg.Budget = time.Duration(*collBudget * float64(time.Millisecond))
	}
	var sch *schema.Schema
	switch *schemaName {
	case "pim":
		sch = schema.PIM()
	case "catalog":
		sch = schema.Catalog()
	default:
		log.Fatalf("unknown schema %q (want pim or catalog)", *schemaName)
	}

	svc, err := serve.NewFromStore(serve.Config{
		Schema:          sch,
		Recon:           cfg,
		Name:            *name,
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
		Collective:      collCfg,
	}, store)
	if err != nil {
		log.Fatal(err)
	}
	v := svc.View()
	log.Printf("initial snapshot v%d: %d references, %d entities (%.1fms)",
		v.Snapshot.Version, v.Snapshot.RefCount(), len(v.Snapshot.Entities()),
		float64(time.Since(start).Microseconds())/1000)
	if d := svc.Metrics().Durability; d != nil {
		log.Printf("durable session in %s: recovery=%s, %d batches replayed (%.1fms)",
			*dataDir, d.Recovery, d.RecoveryBatches, d.RecoveryMS)
	}

	expvar.Publish("reconserve", expvar.Func(func() any { return svc.Metrics() }))
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())

	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigc:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	// Drain any in-flight ingest, write the final checkpoint, and seal the
	// log; the next start takes the fast restore path.
	if err := svc.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	m := svc.Metrics()
	fmt.Fprintf(os.Stderr, "reconserve: served %d queries (%d errors), %d ingest batches\n",
		m.Queries, m.QueryErrors, m.Ingest.Batches)
}
