// Command benchtables regenerates the tables and figures of the paper's
// evaluation section (§5) on the synthetic datasets.
//
// Usage:
//
//	benchtables [-scale 0.25] [-table N] [-workers N] [-bench baseline.json]
//
// -scale multiplies the paper-scale dataset sizes (1.0 reproduces the
// Table 1 reference counts but takes correspondingly longer); -table
// restricts output to one table (1..7; 5 also prints the Figure 6
// series). Without -table, everything is printed. -workers sets the
// graph-construction worker count for every run (0 = NumCPU; results
// are identical at any setting). -bench skips the tables and instead
// times graph construction and full reconciliation at worker counts
// 1, 2, 4, and NumCPU, recording per-phase times (build / propagate /
// closure), allocation counts per reconciliation, delta-scoring
// counters, and a delta-vs-rescan propagation comparison, writing the
// measurements as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"refrecon/internal/collective"
	"refrecon/internal/experiments"
	"refrecon/internal/loadgen"
	"refrecon/internal/obs"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/serve"
)

// benchBaseline is the JSON shape written by -bench: one record per
// (dataset, worker count), plus enough context to re-run the measurement.
type benchBaseline struct {
	Scale      float64 `json:"scale"`
	NumCPU     int     `json:"numCPU"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVer      string  `json:"go"`
	// Degraded marks a baseline captured on a single-core host: every
	// workers>1 and shards>1 row times goroutine overhead rather than
	// parallel speedup, so the speedup and shard-sweep figures are noise.
	// Consumers (ci.sh prints this prominently) must not treat a degraded
	// baseline as a performance reference.
	Degraded   bool            `json:"degraded"`
	Runs       []benchRun      `json:"runs"`
	Speedup    []benchGain     `json:"speedup"`
	Propagate  []benchRescan   `json:"propagateComparison"`
	Query      []benchQuery    `json:"queryLatency"`
	Counters   []benchCounters `json:"counters,omitempty"`
	ShardSweep []benchShard    `json:"shardSweep,omitempty"`
	Durability []benchDurable  `json:"durability,omitempty"`
	Loadgen    []benchLoadgen  `json:"loadgen,omitempty"`
}

// benchLoadgen is one cmd/loadgen replay through the full serving stack
// (HTTP transport over a loopback server): sustained throughput and
// client-observed latency for the standing regression gate. The qps and
// p99 keys are the rows ci consumers read.
type benchLoadgen struct {
	Dataset         string  `json:"dataset"`
	Refs            int     `json:"refs"`
	Queries         int     `json:"queries"`
	Clients         int     `json:"clients"`
	QPS             float64 `json:"loadgen_qps"`
	PlainP50MS      float64 `json:"plainP50Ms"`
	PlainP99MS      float64 `json:"loadgen_p99_ms"`
	CollectiveP50MS float64 `json:"collectiveP50Ms"`
	CollectiveP99MS float64 `json:"collectiveP99Ms"`
	IngestP99MS     float64 `json:"ingestP99Ms"`
	TransportErrors int64   `json:"transportErrors"`
	QueryErrors     int64   `json:"queryErrors"`
	Degraded        int64   `json:"degraded"`
}

// benchDurable measures the serving layer's durability machinery on one
// dataset: the size of the write-ahead log and of a snapshot checkpoint
// covering the whole dataset, and the two recovery paths — the fast
// checkpoint restore a clean shutdown enables, and the full log replay a
// crash forces.
type benchDurable struct {
	Dataset         string  `json:"dataset"`
	References      int     `json:"references"`
	LogBytes        int64   `json:"logBytes"`
	CheckpointBytes int64   `json:"checkpointBytes"`
	RestoreMS       float64 `json:"checkpointRestoreMs"`
	ReplayMS        float64 `json:"logReplayMs"`
}

// durabilityPhase seeds a durable service with the dataset (logged as
// batch 1), shuts it down cleanly, and times both recovery paths; the
// replay measurement removes the checkpoints so recovery must rebuild
// from the log alone.
func durabilityPhase(store *reference.Store, name string) benchDurable {
	dir, err := os.MkdirTemp("", "benchdurable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := serve.Config{Schema: schema.PIM(), DataDir: dir}
	svc, err := serve.NewFromStore(cfg, store)
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	d := svc.Metrics().Durability
	row := benchDurable{
		Dataset:         name,
		References:      store.Len(),
		LogBytes:        d.LogBytes,
		CheckpointBytes: d.CheckpointBytes,
	}

	restored, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rd := restored.Metrics().Durability
	if rd.Recovery != "checkpoint" {
		log.Fatalf("durability bench: recovery = %q, want checkpoint", rd.Recovery)
	}
	row.RestoreMS = rd.RecoveryMS
	if err := restored.Close(); err != nil {
		log.Fatal(err)
	}

	cks, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ck"))
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range cks {
		if err := os.Remove(f); err != nil {
			log.Fatal(err)
		}
	}
	replayed, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pd := replayed.Metrics().Durability
	if pd.Recovery != "replay" {
		log.Fatalf("durability bench: recovery = %q, want replay", pd.Recovery)
	}
	row.ReplayMS = pd.RecoveryMS
	if err := replayed.Close(); err != nil {
		log.Fatal(err)
	}
	return row
}

// loadgenPhase replays the standard cmd/loadgen workload for one dataset
// through the full serving stack — workload generation, HTTP transport
// over a loopback server, mixed ingest+query replay — and reports the
// client-observed throughput and latency rows the regression gate reads.
func loadgenPhase(dataset string) benchLoadgen {
	const (
		refs    = 1500
		queries = 300
		clients = 16
	)
	w, err := loadgen.Build(loadgen.Defaults(dataset, refs, queries, 1))
	if err != nil {
		log.Fatal(err)
	}
	svc, err := serve.New(serve.Config{Schema: w.Schema, Name: "benchtables"})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	rep, err := loadgen.Run(w, loadgen.NewHTTPTarget(ts.URL, clients),
		loadgen.Options{Concurrency: clients})
	if err != nil {
		log.Fatal(err)
	}
	return benchLoadgen{
		Dataset:         dataset,
		Refs:            rep.IngestedRefs,
		Queries:         rep.Queries,
		Clients:         rep.Concurrency,
		QPS:             rep.QPS,
		PlainP50MS:      rep.Plain.P50MS,
		PlainP99MS:      rep.Plain.P99MS,
		CollectiveP50MS: rep.Collective.P50MS,
		CollectiveP99MS: rep.Collective.P99MS,
		IngestP99MS:     rep.Ingest.P99MS,
		TransportErrors: rep.TransportErrors,
		QueryErrors:     rep.QueryErrors,
		Degraded:        rep.Degraded,
	}
}

// benchShard is one sharded-reconciliation measurement: a full Reconcile
// at a fixed shard count, with the boundary-frontier counters from
// Stats.Shard. Per-shard wall-clock lanes live in the trace spans (run
// cmd/reconcile -trace -shards N); here the sweep records the end-to-end
// effect of the shard count.
type benchShard struct {
	Dataset         string  `json:"dataset"`
	Shards          int     `json:"shards"`
	Components      int     `json:"components"`
	LargestComp     int     `json:"largestComponent"`
	BoundaryPairs   int     `json:"boundaryPairs"`
	FrontierRounds  int     `json:"frontierRounds"`
	BoundaryUpdates int     `json:"boundaryUpdates"`
	FoldReplays     int     `json:"foldReplays"`
	PropagateMS     float64 `json:"propagateMs"`
	ReconcileMS     float64 `json:"reconcileMs"`
}

type benchRun struct {
	Dataset string `json:"dataset"`
	Workers int    `json:"workers"`
	// NumCPU / GoMaxProcs are recorded per run (not just in the file
	// header) so that individual rows pasted into issues or diffed across
	// baselines carry their own hardware context; a speedup row measured
	// on a single-core host is noise, not signal.
	NumCPU         int     `json:"numCPU"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	References     int     `json:"references"`
	CandidatePairs int     `json:"candidatePairs"`
	GraphNodes     int     `json:"graphNodes"`
	GraphEdges     int     `json:"graphEdges"`
	BuildMS        float64 `json:"buildMs"`
	PropagateMS    float64 `json:"propagateMs"`
	ClosureMS      float64 `json:"closureMs"`
	ReconcileMS    float64 `json:"reconcileMs"`
	// ReconcileAllocs is the heap allocation count (runtime mallocs) of one
	// full Reconcile call — the allocs/op of the end-to-end operation.
	ReconcileAllocs uint64 `json:"reconcileAllocs"`
	// ReconcileBytesAlloc is the cumulative bytes allocated (TotalAlloc
	// delta) over the same call: the companion metric to ReconcileAllocs —
	// slab/arena storage trades many small allocations for fewer larger
	// ones, so the count can fall while bytes stay flat (or vice versa),
	// and a regression in either is worth seeing.
	ReconcileBytesAlloc uint64 `json:"reconcileBytesAlloc"`
	DeltaHits           int    `json:"deltaHits"`
	// Engine-shape counters from the same Reconcile run (free: they come
	// out of the deterministic engine stats, no observer attached to the
	// timed runs).
	Rounds         int `json:"rounds"`
	QueueHighWater int `json:"queueHighWater"`
	RequeueReal    int `json:"requeueReal"`
	RequeueStrong  int `json:"requeueStrong"`
	RequeueWeak    int `json:"requeueWeak"`
}

// benchCounters is one untimed observability run per dataset: a Reconcile
// with an obs.Counters set attached, reporting the counters the timed
// runs cannot see (similarity-cache traffic, blocking-index shape).
type benchCounters struct {
	Dataset          string `json:"dataset"`
	SimfnCacheHits   int64  `json:"simfnCacheHits"`
	SimfnCacheMisses int64  `json:"simfnCacheMisses"`
	BlockingKeys     int64  `json:"blockingKeys"`
	MaxBucket        int64  `json:"maxBucket"`
}

// counterPhase reconciles the store once with counters attached. The run
// is untimed — counter atomics on the scoring hot path would perturb the
// timed measurements, so they get their own pass.
func counterPhase(store *reference.Store, name string) benchCounters {
	cfg := recon.DefaultConfig()
	cfg.Obs = &obs.Observer{Counters: obs.NewCounters()}
	if _, err := recon.New(schema.PIM(), cfg).Reconcile(store); err != nil {
		log.Fatal(err)
	}
	c := cfg.Obs.Counters.Snapshot()
	return benchCounters{
		Dataset:          name,
		SimfnCacheHits:   c.SimfnCacheHits,
		SimfnCacheMisses: c.SimfnCacheMisses,
		BlockingKeys:     c.BlockingKeys,
		MaxBucket:        c.MaxBucket,
	}
}

type benchGain struct {
	Dataset string  `json:"dataset"`
	Workers int     `json:"workers"`
	Build   float64 `json:"buildSpeedup"`
}

// benchRescan compares the propagation fixed point under delta scoring
// (the default) against the full-rescan reference path on one dataset.
type benchRescan struct {
	Dataset  string  `json:"dataset"`
	DeltaMS  float64 `json:"deltaPropagateMs"`
	RescanMS float64 `json:"rescanPropagateMs"`
	Speedup  float64 `json:"propagateSpeedup"`
}

// benchQuery is the query-time reconciliation latency over a warm
// snapshot: N single queries replayed through the recon.Matcher (the
// same path reconserve's /reconcile endpoint takes), then the same
// queries — with each reference's associations attached — through the
// collective matcher (the "collective" query mode).
type benchQuery struct {
	Dataset           string  `json:"dataset"`
	Queries           int     `json:"queries"`
	P50MS             float64 `json:"query_p50_ms"`
	P99MS             float64 `json:"query_p99_ms"`
	MeanCandidateRefs float64 `json:"meanCandidateRefs"`
	CollectiveP50MS   float64 `json:"collective_query_p50_ms"`
	CollectiveP99MS   float64 `json:"collective_query_p99_ms"`
	// MeanExpansionNodes is the mean expanded-subgraph size (reference-pair
	// nodes) per collective query; Degraded counts queries that fell back
	// to attribute-only scoring under the node budget (the collective runs
	// have no time budget, so the counts are deterministic).
	MeanExpansionNodes float64 `json:"meanExpansionNodes"`
	Degraded           int     `json:"collectiveDegraded"`
}

// latQuantiles sorts a latency series and reads the q-quantile in ms.
func latQuantiles(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	i := int(q * float64(len(lats)))
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return float64(lats[i].Nanoseconds()) / 1e6
}

// queryPhase reconciles the store once, exports a snapshot, and replays
// up to n exact-copy queries (each reference's own atomic values) against
// the warm matcher, reporting per-query latency quantiles; the same
// queries then replay through the collective matcher with the reference's
// associations attached.
func queryPhase(store *reference.Store, n int) benchQuery {
	sess := recon.New(schema.PIM(), recon.DefaultConfig()).NewSession(store)
	if _, err := sess.Reconcile(); err != nil {
		log.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	m := recon.NewMatcher(schema.PIM(), recon.DefaultConfig(), snap)
	// Budget 0: no wall-clock limit, so the collective measurements are a
	// deterministic function of the dataset (only node/step budgets apply).
	cm := recon.NewCollectiveMatcher(m, collective.Config{})

	var queries []recon.Query
	stride := store.Len() / n
	if stride < 1 {
		stride = 1
	}
	for id := 0; id < store.Len() && len(queries) < n; id += stride {
		r := store.Get(reference.ID(id))
		q := recon.Query{Class: r.Class, Atomic: make(map[string][]string), Limit: 10}
		for _, attr := range r.AtomicAttrs() {
			q.Atomic[attr] = r.Atomic(attr)
		}
		for _, attr := range r.AssocAttrs() {
			if q.Assoc == nil {
				q.Assoc = make(map[string][]reference.ID)
			}
			q.Assoc[attr] = r.Assoc(attr)
		}
		if len(q.Atomic) > 0 {
			queries = append(queries, q)
		}
	}

	lats := make([]time.Duration, 0, len(queries))
	totalRefs := 0
	for rep := 0; rep < 2; rep++ { // first pass warms, second is timed
		lats = lats[:0]
		totalRefs = 0
		for _, q := range queries {
			aq := q
			aq.Assoc = nil
			t0 := time.Now()
			_, stats, err := m.Match(aq)
			lat := time.Since(t0)
			if err != nil {
				log.Fatal(err)
			}
			lats = append(lats, lat)
			totalRefs += stats.CandidateRefs
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	out := benchQuery{Queries: len(lats), P50MS: latQuantiles(lats, 0.50), P99MS: latQuantiles(lats, 0.99)}
	if len(lats) > 0 {
		out.MeanCandidateRefs = float64(totalRefs) / float64(len(lats))
	}

	clats := make([]time.Duration, 0, len(queries))
	totalNodes, degraded := 0, 0
	for rep := 0; rep < 2; rep++ {
		clats = clats[:0]
		totalNodes, degraded = 0, 0
		for _, q := range queries {
			t0 := time.Now()
			_, st, err := cm.Match(q)
			lat := time.Since(t0)
			if err != nil {
				log.Fatal(err)
			}
			clats = append(clats, lat)
			totalNodes += st.Expansion.PairNodes
			if st.Expansion.Degraded {
				degraded++
			}
		}
	}
	sort.Slice(clats, func(i, j int) bool { return clats[i] < clats[j] })
	out.CollectiveP50MS = latQuantiles(clats, 0.50)
	out.CollectiveP99MS = latQuantiles(clats, 0.99)
	out.Degraded = degraded
	if len(clats) > 0 {
		out.MeanExpansionNodes = float64(totalNodes) / float64(len(clats))
	}
	return out
}

// propagatePhase times only the propagation fixed point: the graph is
// rebuilt untimed via BuildRetained before every repetition (Prepared is
// single-use). One warm-up plus three timed repetitions, best kept.
func propagatePhase(store *reference.Store, rescan bool) time.Duration {
	cfg := recon.DefaultConfig()
	cfg.RescanScoring = rescan
	rc := recon.New(schema.PIM(), cfg)
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 4; i++ {
		p, err := rc.BuildRetained(store)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Propagate()
		if err != nil {
			log.Fatal(err)
		}
		if i > 0 && res.Stats.PropagateTime < best {
			best = res.Stats.PropagateTime
		}
	}
	return best
}

func runBench(s *experiments.Suite, scale float64, out string) {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	if runtime.NumCPU() == 1 {
		fmt.Println("warning: single-core host (NumCPU=1); workers>1 rows time goroutine overhead, not parallel speedup — treat speedup figures as noise")
	}
	base := benchBaseline{
		Scale:      scale,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVer:      runtime.Version(),
		Degraded:   runtime.NumCPU() == 1,
	}
	serial := make(map[string]float64)
	for _, name := range []string{"A", "Cora"} {
		store := s.Cora().Store
		if name != "Cora" {
			store = s.PIM(name).Store
		}
		for _, w := range counts {
			cfg := recon.DefaultConfig()
			cfg.Workers = w
			rc := recon.New(schema.PIM(), cfg)
			// One warm-up plus three timed build repetitions; keep the best
			// (least-interference) time, the usual benchmarking convention.
			if _, err := rc.BuildGraph(store); err != nil {
				log.Fatal(err)
			}
			best := time.Duration(1<<63 - 1)
			var st recon.Stats
			for i := 0; i < 3; i++ {
				bs, err := rc.BuildGraph(store)
				if err != nil {
					log.Fatal(err)
				}
				if bs.BuildTime < best {
					best = bs.BuildTime
					st = bs
				}
			}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			res, err := rc.Reconcile(store)
			if err != nil {
				log.Fatal(err)
			}
			runtime.ReadMemStats(&m1)
			total := res.Stats.BuildTime + res.Stats.PropagateTime + res.Stats.ClosureTime
			run := benchRun{
				Dataset:             name,
				Workers:             w,
				NumCPU:              runtime.NumCPU(),
				GoMaxProcs:          runtime.GOMAXPROCS(0),
				References:          store.Len(),
				CandidatePairs:      st.CandidatePairs,
				GraphNodes:          st.GraphNodes,
				GraphEdges:          st.GraphEdges,
				BuildMS:             float64(best.Microseconds()) / 1e3,
				PropagateMS:         float64(res.Stats.PropagateTime.Microseconds()) / 1e3,
				ClosureMS:           float64(res.Stats.ClosureTime.Microseconds()) / 1e3,
				ReconcileMS:         float64(total.Microseconds()) / 1e3,
				ReconcileAllocs:     m1.Mallocs - m0.Mallocs,
				ReconcileBytesAlloc: m1.TotalAlloc - m0.TotalAlloc,
				DeltaHits:           res.Stats.Engine.DeltaHits,
				Rounds:              res.Stats.Engine.Rounds,
				QueueHighWater:      res.Stats.Engine.QueueHighWater,
				RequeueReal:         res.Stats.Engine.RequeueReal,
				RequeueStrong:       res.Stats.Engine.RequeueStrong,
				RequeueWeak:         res.Stats.Engine.RequeueWeak,
			}
			base.Runs = append(base.Runs, run)
			if w == 1 {
				serial[name] = run.BuildMS
			} else if s1 := serial[name]; s1 > 0 && run.BuildMS > 0 {
				base.Speedup = append(base.Speedup, benchGain{
					Dataset: name, Workers: w, Build: s1 / run.BuildMS,
				})
			}
			fmt.Printf("%-5s workers=%-2d build %8.1fms  propagate %8.1fms  reconcile %8.1fms  (%d pairs, %d nodes, %d allocs, %.1f MB)\n",
				name, w, run.BuildMS, run.PropagateMS, run.ReconcileMS,
				run.CandidatePairs, run.GraphNodes, run.ReconcileAllocs,
				float64(run.ReconcileBytesAlloc)/(1<<20))
			fmt.Printf("%-5s counters:  %d rounds  queue high-water %d  requeues %d real / %d strong / %d weak\n",
				name, run.Rounds, run.QueueHighWater,
				run.RequeueReal, run.RequeueStrong, run.RequeueWeak)
		}
		cb := counterPhase(store, name)
		base.Counters = append(base.Counters, cb)
		fmt.Printf("%-5s simfn:     cache %d hits / %d misses  blocking %d keys (max bucket %d)\n",
			name, cb.SimfnCacheHits, cb.SimfnCacheMisses, cb.BlockingKeys, cb.MaxBucket)
		deltaT := propagatePhase(store, false)
		rescanT := propagatePhase(store, true)
		cmp := benchRescan{
			Dataset:  name,
			DeltaMS:  float64(deltaT.Microseconds()) / 1e3,
			RescanMS: float64(rescanT.Microseconds()) / 1e3,
		}
		if cmp.DeltaMS > 0 {
			cmp.Speedup = cmp.RescanMS / cmp.DeltaMS
		}
		base.Propagate = append(base.Propagate, cmp)
		fmt.Printf("%-5s propagate: delta %8.1fms  rescan %8.1fms  (%.2fx)\n",
			name, cmp.DeltaMS, cmp.RescanMS, cmp.Speedup)
		qb := queryPhase(store, 200)
		qb.Dataset = name
		base.Query = append(base.Query, qb)
		fmt.Printf("%-5s query:     p50 %8.3fms  p99 %8.3fms  (%d queries, mean %.1f candidate refs)\n",
			name, qb.P50MS, qb.P99MS, qb.Queries, qb.MeanCandidateRefs)
		fmt.Printf("%-5s collective: p50 %7.3fms  p99 %8.3fms  (mean %.1f pair nodes, %d degraded)\n",
			name, qb.CollectiveP50MS, qb.CollectiveP99MS, qb.MeanExpansionNodes, qb.Degraded)
		for _, k := range []int{1, 2, 4} {
			cfg := recon.DefaultConfig()
			cfg.Shards = k
			res, err := recon.New(schema.PIM(), cfg).Reconcile(store)
			if err != nil {
				log.Fatal(err)
			}
			st := res.Stats
			row := benchShard{
				Dataset:         name,
				Shards:          k,
				Components:      st.Shard.Components,
				LargestComp:     st.Shard.LargestComponent,
				BoundaryPairs:   st.Shard.BoundaryLinks,
				FrontierRounds:  st.Shard.FrontierRounds,
				BoundaryUpdates: st.Shard.BoundaryUpdates,
				FoldReplays:     st.Shard.FoldReplays,
				PropagateMS:     float64(st.PropagateTime.Microseconds()) / 1e3,
				ReconcileMS: float64((st.BuildTime + st.PropagateTime +
					st.ClosureTime).Microseconds()) / 1e3,
			}
			base.ShardSweep = append(base.ShardSweep, row)
			fmt.Printf("%-5s shards=%-2d propagate %8.1fms  reconcile %8.1fms  (%d components, %d boundary pairs, %d frontier rounds)\n",
				name, k, row.PropagateMS, row.ReconcileMS,
				row.Components, row.BoundaryPairs, row.FrontierRounds)
		}
		db := durabilityPhase(store, name)
		base.Durability = append(base.Durability, db)
		fmt.Printf("%-5s durable:   restore %8.1fms  replay %8.1fms  (log %.1f KB, checkpoint %.1f KB)\n",
			name, db.RestoreMS, db.ReplayMS,
			float64(db.LogBytes)/1024, float64(db.CheckpointBytes)/1024)
	}
	for _, ds := range []string{"biblio", "catalog"} {
		lb := loadgenPhase(ds)
		base.Loadgen = append(base.Loadgen, lb)
		fmt.Printf("%-7s loadgen: %8.1f q/s  plain p50/p99 %.2f/%.2f ms  collective p50/p99 %.2f/%.2f ms  (%d clients, %d errors)\n",
			ds, lb.QPS, lb.PlainP50MS, lb.PlainP99MS,
			lb.CollectiveP50MS, lb.CollectiveP99MS, lb.Clients,
			lb.TransportErrors+lb.QueryErrors)
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline written to %s\n", out)
}

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor (1.0 = paper scale)")
	table := flag.Int("table", 0, "print only this table (1-7; 0 = all)")
	ablations := flag.Bool("ablations", false, "also print the repository's design-choice ablations (blocking coverage)")
	workers := flag.Int("workers", 0, "graph-construction worker count for all runs (0 = NumCPU)")
	bench := flag.String("bench", "", "skip tables; time construction at workers 1,2,4,NumCPU and write JSON here")
	flag.Parse()

	s := experiments.NewSuite(*scale)
	s.Workers = *workers
	if *bench != "" {
		runBench(s, *scale, *bench)
		return
	}
	w := os.Stdout
	want := func(n int) bool { return *table == 0 || *table == n }
	start := time.Now()

	if want(1) {
		experiments.FprintTable1(w, s.Table1())
		fmt.Fprintln(w)
	}
	if want(2) {
		experiments.FprintComparison(w, "Table 2: average P/R/F per class (PIM datasets)", s.Table2())
		fmt.Fprintln(w)
	}
	if want(3) {
		experiments.FprintComparison(w, "Table 3: Person subsets (Full / PArticle / PEmail)", s.Table3())
		fmt.Fprintln(w)
	}
	if want(4) {
		experiments.FprintTable4(w, s.Table4())
		fmt.Fprintln(w)
	}
	if want(5) {
		grid := s.Table5Ablation("A")
		experiments.FprintTable5(w, grid)
		fmt.Fprintln(w)
		experiments.FprintFigure6(w, grid)
		fmt.Fprintln(w)
	}
	if want(6) {
		experiments.FprintTable6(w, s.Table6Constraints("A"))
		fmt.Fprintln(w)
	}
	if want(7) {
		experiments.FprintComparison(w, "Table 7: Cora dataset", s.Table7())
		fmt.Fprintln(w)
	}
	if *ablations {
		experiments.FprintBlockingAblation(w, "A", s.BlockingAblation("A", 8))
		fmt.Fprintln(w)
		experiments.FprintNoiseSweep(w, "A", s.NoiseSweep("A", nil))
		fmt.Fprintln(w)
		experiments.FprintComparison(w,
			"Table 7b (extension): Cora via free-text citation extraction", s.Table7FreeText())
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(scale %.2f, %s)\n", *scale, time.Since(start).Round(time.Millisecond))
}
