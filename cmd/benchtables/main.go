// Command benchtables regenerates the tables and figures of the paper's
// evaluation section (§5) on the synthetic datasets.
//
// Usage:
//
//	benchtables [-scale 0.25] [-table N]
//
// -scale multiplies the paper-scale dataset sizes (1.0 reproduces the
// Table 1 reference counts but takes correspondingly longer); -table
// restricts output to one table (1..7; 5 also prints the Figure 6
// series). Without -table, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"refrecon/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor (1.0 = paper scale)")
	table := flag.Int("table", 0, "print only this table (1-7; 0 = all)")
	ablations := flag.Bool("ablations", false, "also print the repository's design-choice ablations (blocking coverage)")
	flag.Parse()

	s := experiments.NewSuite(*scale)
	w := os.Stdout
	want := func(n int) bool { return *table == 0 || *table == n }
	start := time.Now()

	if want(1) {
		experiments.FprintTable1(w, s.Table1())
		fmt.Fprintln(w)
	}
	if want(2) {
		experiments.FprintComparison(w, "Table 2: average P/R/F per class (PIM datasets)", s.Table2())
		fmt.Fprintln(w)
	}
	if want(3) {
		experiments.FprintComparison(w, "Table 3: Person subsets (Full / PArticle / PEmail)", s.Table3())
		fmt.Fprintln(w)
	}
	if want(4) {
		experiments.FprintTable4(w, s.Table4())
		fmt.Fprintln(w)
	}
	if want(5) {
		grid := s.Table5Ablation("A")
		experiments.FprintTable5(w, grid)
		fmt.Fprintln(w)
		experiments.FprintFigure6(w, grid)
		fmt.Fprintln(w)
	}
	if want(6) {
		experiments.FprintTable6(w, s.Table6Constraints("A"))
		fmt.Fprintln(w)
	}
	if want(7) {
		experiments.FprintComparison(w, "Table 7: Cora dataset", s.Table7())
		fmt.Fprintln(w)
	}
	if *ablations {
		experiments.FprintBlockingAblation(w, "A", s.BlockingAblation("A", 8))
		fmt.Fprintln(w)
		experiments.FprintNoiseSweep(w, "A", s.NoiseSweep("A", nil))
		fmt.Fprintln(w)
		experiments.FprintComparison(w,
			"Table 7b (extension): Cora via free-text citation extraction", s.Table7FreeText())
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(scale %.2f, %s)\n", *scale, time.Since(start).Round(time.Millisecond))
}
