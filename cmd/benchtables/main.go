// Command benchtables regenerates the tables and figures of the paper's
// evaluation section (§5) on the synthetic datasets.
//
// Usage:
//
//	benchtables [-scale 0.25] [-table N] [-workers N] [-bench baseline.json]
//
// -scale multiplies the paper-scale dataset sizes (1.0 reproduces the
// Table 1 reference counts but takes correspondingly longer); -table
// restricts output to one table (1..7; 5 also prints the Figure 6
// series). Without -table, everything is printed. -workers sets the
// graph-construction worker count for every run (0 = NumCPU; results
// are identical at any setting). -bench skips the tables and instead
// times graph construction and full reconciliation at worker counts
// 1, 2, 4, and NumCPU, writing the measurements as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"refrecon/internal/experiments"
	"refrecon/internal/recon"
	"refrecon/internal/schema"
)

// benchBaseline is the JSON shape written by -bench: one record per
// (dataset, worker count), plus enough context to re-run the measurement.
type benchBaseline struct {
	Scale   float64     `json:"scale"`
	NumCPU  int         `json:"numCPU"`
	GoVer   string      `json:"go"`
	Runs    []benchRun  `json:"runs"`
	Speedup []benchGain `json:"speedup"`
}

type benchRun struct {
	Dataset        string  `json:"dataset"`
	Workers        int     `json:"workers"`
	References     int     `json:"references"`
	CandidatePairs int     `json:"candidatePairs"`
	GraphNodes     int     `json:"graphNodes"`
	GraphEdges     int     `json:"graphEdges"`
	BuildMS        float64 `json:"buildMs"`
	ReconcileMS    float64 `json:"reconcileMs"`
}

type benchGain struct {
	Dataset string  `json:"dataset"`
	Workers int     `json:"workers"`
	Build   float64 `json:"buildSpeedup"`
}

func runBench(s *experiments.Suite, scale float64, out string) {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	base := benchBaseline{Scale: scale, NumCPU: runtime.NumCPU(), GoVer: runtime.Version()}
	serial := make(map[string]float64)
	for _, name := range []string{"A", "Cora"} {
		store := s.Cora().Store
		if name != "Cora" {
			store = s.PIM(name).Store
		}
		for _, w := range counts {
			cfg := recon.DefaultConfig()
			cfg.Workers = w
			rc := recon.New(schema.PIM(), cfg)
			// One warm-up plus three timed build repetitions; keep the best
			// (least-interference) time, the usual benchmarking convention.
			if _, err := rc.BuildGraph(store); err != nil {
				log.Fatal(err)
			}
			best := time.Duration(1<<63 - 1)
			var st recon.Stats
			for i := 0; i < 3; i++ {
				bs, err := rc.BuildGraph(store)
				if err != nil {
					log.Fatal(err)
				}
				if bs.BuildTime < best {
					best = bs.BuildTime
					st = bs
				}
			}
			res, err := rc.Reconcile(store)
			if err != nil {
				log.Fatal(err)
			}
			total := res.Stats.BuildTime + res.Stats.PropagateTime + res.Stats.ClosureTime
			run := benchRun{
				Dataset:        name,
				Workers:        w,
				References:     store.Len(),
				CandidatePairs: st.CandidatePairs,
				GraphNodes:     st.GraphNodes,
				GraphEdges:     st.GraphEdges,
				BuildMS:        float64(best.Microseconds()) / 1e3,
				ReconcileMS:    float64(total.Microseconds()) / 1e3,
			}
			base.Runs = append(base.Runs, run)
			if w == 1 {
				serial[name] = run.BuildMS
			} else if s1 := serial[name]; s1 > 0 && run.BuildMS > 0 {
				base.Speedup = append(base.Speedup, benchGain{
					Dataset: name, Workers: w, Build: s1 / run.BuildMS,
				})
			}
			fmt.Printf("%-5s workers=%-2d build %8.1fms  reconcile %8.1fms  (%d pairs, %d nodes)\n",
				name, w, run.BuildMS, run.ReconcileMS, run.CandidatePairs, run.GraphNodes)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline written to %s\n", out)
}

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor (1.0 = paper scale)")
	table := flag.Int("table", 0, "print only this table (1-7; 0 = all)")
	ablations := flag.Bool("ablations", false, "also print the repository's design-choice ablations (blocking coverage)")
	workers := flag.Int("workers", 0, "graph-construction worker count for all runs (0 = NumCPU)")
	bench := flag.String("bench", "", "skip tables; time construction at workers 1,2,4,NumCPU and write JSON here")
	flag.Parse()

	s := experiments.NewSuite(*scale)
	s.Workers = *workers
	if *bench != "" {
		runBench(s, *scale, *bench)
		return
	}
	w := os.Stdout
	want := func(n int) bool { return *table == 0 || *table == n }
	start := time.Now()

	if want(1) {
		experiments.FprintTable1(w, s.Table1())
		fmt.Fprintln(w)
	}
	if want(2) {
		experiments.FprintComparison(w, "Table 2: average P/R/F per class (PIM datasets)", s.Table2())
		fmt.Fprintln(w)
	}
	if want(3) {
		experiments.FprintComparison(w, "Table 3: Person subsets (Full / PArticle / PEmail)", s.Table3())
		fmt.Fprintln(w)
	}
	if want(4) {
		experiments.FprintTable4(w, s.Table4())
		fmt.Fprintln(w)
	}
	if want(5) {
		grid := s.Table5Ablation("A")
		experiments.FprintTable5(w, grid)
		fmt.Fprintln(w)
		experiments.FprintFigure6(w, grid)
		fmt.Fprintln(w)
	}
	if want(6) {
		experiments.FprintTable6(w, s.Table6Constraints("A"))
		fmt.Fprintln(w)
	}
	if want(7) {
		experiments.FprintComparison(w, "Table 7: Cora dataset", s.Table7())
		fmt.Fprintln(w)
	}
	if *ablations {
		experiments.FprintBlockingAblation(w, "A", s.BlockingAblation("A", 8))
		fmt.Fprintln(w)
		experiments.FprintNoiseSweep(w, "A", s.NoiseSweep("A", nil))
		fmt.Fprintln(w)
		experiments.FprintComparison(w,
			"Table 7b (extension): Cora via free-text citation extraction", s.Table7FreeText())
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(scale %.2f, %s)\n", *scale, time.Since(start).Round(time.Millisecond))
}
