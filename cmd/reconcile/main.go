// Command reconcile runs reference reconciliation over a dataset and
// reports the resulting partitions and (when gold labels are present)
// quality metrics.
//
// Usage:
//
//	reconcile -in dataset.json [-algo depgraph|indepdec] [-mode full|traditional|propagation|merge]
//	          [-evidence attr|nameemail|article|contact] [-constraints=true] [-workers N] [-shards N]
//	          [-dump partitions.json] [-trace trace.json] [-progress]
//
// The input is the JSON format written by cmd/pimgen (or dataset.WriteJSON).
// With -trace, the run records phase/round/enrichment spans and writes
// them as Chrome trace-event JSON (load the file in chrome://tracing or
// Perfetto); -progress renders round-by-round progress to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"refrecon/internal/dataset"
	"refrecon/internal/indepdec"
	"refrecon/internal/metrics"
	"refrecon/internal/obs"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reconcile: ")
	in := flag.String("in", "", "input dataset JSON (required)")
	algo := flag.String("algo", "depgraph", "algorithm: depgraph or indepdec")
	mode := flag.String("mode", "full", "depgraph mode: full, traditional, propagation, merge")
	evidence := flag.String("evidence", "contact", "evidence level: attr, nameemail, article, contact")
	constraints := flag.Bool("constraints", true, "enforce negative-evidence constraints")
	workers := flag.Int("workers", 0, "goroutines scoring candidate pairs (0 = NumCPU, 1 = serial; results are identical at any setting)")
	shards := flag.Int("shards", 1, "reconcile blocking-connected components in N concurrent shards (0 = one per CPU, 1 = single monolithic run; depgraph only)")
	bucketCap := flag.Int("bucketcap", 0, "override the blocking bucket cap (0 = keep the default; lower caps tame saturated buckets on large scaled corpora)")
	rescan := flag.Bool("rescan", false, "score by full neighborhood rescans instead of delta-maintained digests (results are identical; for benchmarking)")
	auditFlag := flag.Bool("audit", false, "verify structural invariants at every phase boundary (depgraph only; slower, aborts on the first violation)")
	dump := flag.String("dump", "", "write partitions as JSON to this file")
	explain := flag.String("explain", "", "explain a pair decision, e.g. -explain 12,45 (depgraph only)")
	dot := flag.String("dot", "", "write the dependency graph in Graphviz DOT format to this file (depgraph only)")
	tracePath := flag.String("trace", "", "write phase/round spans as Chrome trace-event JSON to this file (depgraph only)")
	progress := flag.Bool("progress", false, "render round-by-round progress to stderr (depgraph only)")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	var ds *dataset.Dataset
	if strings.HasSuffix(*in, ".csv") {
		ds, err = dataset.ReadCSV(strings.TrimSuffix(*in, ".csv"), f)
	} else {
		ds, err = dataset.ReadJSON(f)
	}
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d references\n", ds.Name, ds.Store.Len())

	var partitions map[string][][]reference.ID
	start := time.Now()
	switch *algo {
	case "depgraph":
		cfg := recon.DefaultConfig()
		cfg.Constraints = *constraints
		cfg.Workers = *workers
		cfg.RescanScoring = *rescan
		cfg.Audit = *auditFlag
		switch strings.ToLower(*mode) {
		case "full":
			cfg.Mode = recon.ModeFull
		case "traditional":
			cfg.Mode = recon.ModeTraditional
		case "propagation":
			cfg.Mode = recon.ModePropagation
		case "merge":
			cfg.Mode = recon.ModeMerge
		default:
			log.Fatalf("unknown mode %q", *mode)
		}
		switch strings.ToLower(*evidence) {
		case "attr":
			cfg.Evidence = recon.EvidenceAttrWise
		case "nameemail":
			cfg.Evidence = recon.EvidenceNameEmail
		case "article":
			cfg.Evidence = recon.EvidenceArticle
		case "contact":
			cfg.Evidence = recon.EvidenceContact
		default:
			log.Fatalf("unknown evidence level %q", *evidence)
		}
		var observer *obs.Observer
		if *tracePath != "" || *progress {
			observer = &obs.Observer{Counters: obs.NewCounters()}
			if *tracePath != "" {
				observer.Trace = obs.NewTracer()
				observer.Profile = true
			}
			if *progress {
				observer.Progress = obs.NewProgress(os.Stderr, 250*time.Millisecond)
			}
			cfg.Obs = observer
		}
		cfg.Shards = *shards
		if *bucketCap > 0 {
			cfg.BucketCap = *bucketCap
		}
		rc := recon.New(schema.PIM(), cfg)
		var res *recon.Result
		var sess *recon.Session
		if *shards == 1 {
			sess = rc.NewSession(ds.Store)
			res, err = sess.Reconcile()
		} else {
			// Sessions run monolithically; the sharded path is one-shot.
			if *explain != "" || *dot != "" {
				log.Fatal("-explain and -dot need the session graph; use -shards 1")
			}
			res, err = rc.Reconcile(ds.Store)
		}
		if err != nil {
			log.Fatal(err)
		}
		if observer != nil {
			c := observer.Counters.Snapshot()
			fmt.Printf("obs: %d rounds, queue high-water %d, requeues %d real / %d strong / %d weak, simfn cache %d hits / %d misses\n",
				c.Rounds, c.QueueHighWater, c.RequeueReal, c.RequeueStrong, c.RequeueWeak,
				c.SimfnCacheHits, c.SimfnCacheMisses)
		}
		if *tracePath != "" {
			tf, err := os.Create(*tracePath)
			if err != nil {
				log.Fatal(err)
			}
			if err := observer.Trace.WriteJSON(tf); err != nil {
				log.Fatal(err)
			}
			if err := tf.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace written to %s (%d events)\n", *tracePath, len(observer.Trace.Events()))
		}
		partitions = res.Partitions
		st := res.Stats
		fmt.Printf("graph: %d nodes, %d edges from %d candidate pairs (built in %s)\n",
			st.GraphNodes, st.GraphEdges, st.CandidatePairs, st.BuildTime.Round(time.Millisecond))
		truncated := ""
		if st.Engine.Truncated {
			truncated = ", TRUNCATED at step cap"
		}
		fmt.Printf("engine: %d steps, %d merges, %d folds, %d reactivations%s (propagated in %s)\n",
			st.Engine.Steps, st.Engine.Merges, st.Engine.Folds, st.Engine.Reactivate, truncated,
			st.PropagateTime.Round(time.Millisecond))
		if sh := st.Shard; sh.Components > 0 {
			fmt.Printf("shards: %d groups over %d components (largest weight %d), %d boundary links, %d frontier rounds, %d boundary updates, %d fold replays\n",
				sh.Shards, sh.Components, sh.LargestComponent, sh.BoundaryLinks,
				sh.FrontierRounds, sh.BoundaryUpdates, sh.FoldReplays)
		}
		if st.Engine.DeltaHits > 0 || st.Engine.AggBuilds > 0 {
			fmt.Printf("delta: %d digest hits (full rescans avoided), %d aggregate builds, %d kind rebuilds\n",
				st.Engine.DeltaHits, st.Engine.AggBuilds, st.Engine.AggRebuilds)
		}
		fmt.Printf("closure: %d non-merge constraint nodes honored (closed in %s)\n",
			st.NonMergeNodes, st.ClosureTime.Round(time.Millisecond))
		if st.AuditChecks > 0 {
			fmt.Printf("audit: %d invariant checks passed\n", st.AuditChecks)
		}
		if *explain != "" {
			var a, b int
			if _, err := fmt.Sscanf(*explain, "%d,%d", &a, &b); err != nil {
				log.Fatalf("bad -explain %q (want \"id,id\"): %v", *explain, err)
			}
			exp, err := sess.Explain(reference.ID(a), reference.ID(b))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(exp.String())
		}
		if *dot != "" {
			f, err := os.Create(*dot)
			if err != nil {
				log.Fatal(err)
			}
			if err := sess.WriteDOT(f, nil); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("dependency graph written to %s\n", *dot)
		}
	case "indepdec":
		if *explain != "" || *dot != "" || *auditFlag || *tracePath != "" || *progress || *shards != 1 {
			log.Fatal("-explain, -dot, -audit, -trace, -progress, and -shards require -algo depgraph")
		}
		res, err := indepdec.New(schema.PIM(), indepdec.DefaultConfig()).Reconcile(ds.Store)
		if err != nil {
			log.Fatal(err)
		}
		partitions = res.Partitions
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	for _, class := range ds.Store.Classes() {
		rep := metrics.Evaluate(ds.Store, class, partitions[class])
		if rep.References > 0 {
			fmt.Printf("%-10s %4d partitions  P=%.3f R=%.3f F=%.3f (over %d labeled refs, %d entities)\n",
				class, len(partitions[class]), rep.Precision, rep.Recall, rep.F1, rep.References, rep.Entities)
		} else {
			fmt.Printf("%-10s %4d partitions (no gold labels)\n", class, len(partitions[class]))
		}
	}
	fmt.Printf("reconciled in %s\n", elapsed)

	if *dump != "" {
		out, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		if err := enc.Encode(partitions); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("partitions written to %s\n", *dump)
	}
}
