// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark measures the reconciliation work behind one table
// (dataset generation is excluded from the timing; datasets are cached in
// a shared suite) and reports the table's headline numbers as custom
// metrics so `go test -bench` output doubles as a compact reproduction of
// the paper's results.
//
// The benchmarks run at a reduced dataset scale (see benchScale) so the
// full suite completes in minutes; use cmd/benchtables -scale 1.0 for
// paper-scale runs.
package refrecon_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"refrecon"
	"refrecon/internal/experiments"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/simfn"
)

// benchScale is the dataset scale used by all table benchmarks.
const benchScale = 0.08

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
)

func suite() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(benchScale)
		// Generate all datasets up front so no benchmark times generation.
		for _, name := range experiments.PIMNames() {
			benchSuite.PIM(name)
		}
		benchSuite.Cora()
	})
	return benchSuite
}

// BenchmarkTable1Datasets measures dataset statistics collection and
// reports the total reference count and reference-to-entity ratio.
func BenchmarkTable1Datasets(b *testing.B) {
	s := suite()
	var rows []experiments.Table1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.Table1()
	}
	refs, ents := 0, 0
	for _, r := range rows {
		refs += r.References
		ents += r.Entities
	}
	b.ReportMetric(float64(refs), "refs")
	b.ReportMetric(float64(refs)/float64(ents), "refs/entity")
}

// BenchmarkTable2PerClass reproduces Table 2 and reports the average
// Person F-measures of both algorithms (x1000).
func BenchmarkTable2PerClass(b *testing.B) {
	s := suite()
	var rows []experiments.ClassComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearRuns()
		rows = s.Table2()
	}
	for _, r := range rows {
		if r.Class == schema.ClassPerson {
			b.ReportMetric(1000*r.IndepDec.F1, "indepdec-personF*1e3")
			b.ReportMetric(1000*r.DepGraph.F1, "depgraph-personF*1e3")
		}
		if r.Class == schema.ClassVenue {
			b.ReportMetric(1000*r.IndepDec.Recall, "indepdec-venueR*1e3")
			b.ReportMetric(1000*r.DepGraph.Recall, "depgraph-venueR*1e3")
		}
	}
}

// BenchmarkTable3Subsets reproduces Table 3 and reports the PArticle
// recall gain (x1000), the paper's most dramatic number (30.7%).
func BenchmarkTable3Subsets(b *testing.B) {
	s := suite()
	var rows []experiments.ClassComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearRuns()
		rows = s.Table3()
	}
	for _, r := range rows {
		if r.Class == "PArticle" {
			b.ReportMetric(1000*(r.DepGraph.Recall-r.IndepDec.Recall), "particle-recall-gain*1e3")
		}
	}
}

// BenchmarkTable4PerDataset reproduces Table 4 and reports partition
// counts for dataset A under both algorithms.
func BenchmarkTable4PerDataset(b *testing.B) {
	s := suite()
	var rows []experiments.Table4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearRuns()
		rows = s.Table4()
	}
	for _, r := range rows {
		if r.Dataset == "A" {
			b.ReportMetric(float64(r.IndepDec.Partitions), "A-indepdec-partitions")
			b.ReportMetric(float64(r.DepGraph.Partitions), "A-depgraph-partitions")
			b.ReportMetric(float64(r.Persons), "A-entities")
		}
	}
}

// BenchmarkTable5Ablation reproduces the 4x4 Table 5 grid on dataset A and
// reports the overall reduction percentage (the paper's 91.3%).
func BenchmarkTable5Ablation(b *testing.B) {
	s := suite()
	var grid experiments.Table5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearRuns()
		grid = s.Table5Ablation("A")
	}
	b.ReportMetric(grid.OverallReduction(), "overall-reduction-pct")
	b.ReportMetric(float64(grid.Partitions[0][0]), "traditional-attrwise-partitions")
	b.ReportMetric(float64(grid.Partitions[3][3]), "full-contact-partitions")
}

// BenchmarkFigure6Ablation renders the Figure 6 series from the Table 5
// grid (same computation, presentation benchmark).
func BenchmarkFigure6Ablation(b *testing.B) {
	s := suite()
	grid := s.Table5Ablation("A")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.FprintFigure6(discard{}, grid)
	}
	b.ReportMetric(float64(grid.Entities), "entities")
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkTable6Constraints reproduces Table 6 on dataset A and reports
// the false-positive entity counts with and without constraints.
func BenchmarkTable6Constraints(b *testing.B) {
	s := suite()
	var rows []experiments.Table6Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearRuns()
		rows = s.Table6Constraints("A")
	}
	b.ReportMetric(float64(rows[0].EntitiesWithFalsePositives), "constrained-fp-entities")
	b.ReportMetric(float64(rows[1].EntitiesWithFalsePositives), "unconstrained-fp-entities")
	b.ReportMetric(float64(rows[0].GraphNodes), "constrained-nodes")
}

// BenchmarkTable7Cora reproduces Table 7 and reports the venue recall of
// both algorithms (x1000).
func BenchmarkTable7Cora(b *testing.B) {
	s := suite()
	var rows []experiments.ClassComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearRuns()
		rows = s.Table7()
	}
	for _, r := range rows {
		if r.Class == schema.ClassVenue {
			b.ReportMetric(1000*r.IndepDec.Recall, "indepdec-venueR*1e3")
			b.ReportMetric(1000*r.DepGraph.Recall, "depgraph-venueR*1e3")
		}
	}
}

// BenchmarkBlockingAblation measures candidate generation across the
// strategies of the blocking ablation and reports canopy coverage (x1000).
func BenchmarkBlockingAblation(b *testing.B) {
	s := suite()
	var rows []experiments.BlockingRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.BlockingAblation("A", 8)
	}
	for _, r := range rows {
		if r.Strategy == "canopy" {
			b.ReportMetric(1000*r.Coverage, "canopy-coverage*1e3")
			b.ReportMetric(float64(r.Pairs), "canopy-pairs")
		}
	}
}

// BenchmarkNoiseSweep measures the robustness extension experiment and
// reports the F gap between the algorithms at 40% corruption (x1000).
func BenchmarkNoiseSweep(b *testing.B) {
	s := suite()
	var rows []experiments.NoiseRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.NoiseSweep("A", []float64{0, 0.4})
	}
	b.ReportMetric(1000*(rows[1].DepGraphF-rows[1].IndepDecF), "noisy-F-gap*1e3")
	b.ReportMetric(1000*rows[1].DepGraphF, "depgraph-noisyF*1e3")
}

// BenchmarkIncrementalSession measures the marginal cost of reconciling
// one additional batch into an already-reconciled session, versus the
// from-scratch cost reported by BenchmarkReconcileDepGraph.
func BenchmarkIncrementalSession(b *testing.B) {
	s := suite()
	d := s.PIM("B")
	refs := d.Store.All()
	cut := len(refs) * 9 / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Rebuild a store with 90% of the data and reconcile it (untimed).
		store := refrecon.NewStore()
		clones := make([]*refrecon.Reference, len(refs))
		remap := make(map[refrecon.ID]refrecon.ID, len(refs))
		for j, r := range refs {
			c := refrecon.NewReference(r.Class)
			c.Source = r.Source
			c.Entity = r.Entity
			for _, attr := range r.AtomicAttrs() {
				for _, v := range r.Atomic(attr) {
					c.AddAtomic(attr, v)
				}
			}
			clones[j] = c
			if j < cut {
				remap[r.ID] = store.Add(c)
			}
		}
		addAssocs := func(from, to int) {
			for j := from; j < to; j++ {
				r := refs[j]
				for _, attr := range r.AssocAttrs() {
					for _, tgt := range r.Assoc(attr) {
						if nt, ok := remap[tgt]; ok {
							clones[j].AddAssoc(attr, nt)
						}
					}
				}
			}
		}
		addAssocs(0, cut)
		sess := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig()).NewSession(store)
		if _, err := sess.Reconcile(); err != nil {
			b.Fatal(err)
		}
		// The timed part: the last 10% arrives.
		for j := cut; j < len(refs); j++ {
			remap[refs[j].ID] = store.Add(clones[j])
		}
		addAssocs(cut, len(refs))
		b.StartTimer()
		if _, err := sess.Reconcile(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(refs)-cut), "batch-refs")
}

// BenchmarkReconcileDepGraph measures raw DepGraph throughput on dataset A
// (references reconciled per second).
func BenchmarkReconcileDepGraph(b *testing.B) {
	s := suite()
	d := s.PIM("A")
	r := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Reconcile(d.Store); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.Store.Len())*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkBuildGraph measures dependency-graph construction (blocking,
// candidate scoring, wiring) on dataset A at several worker counts. The
// graphs produced are identical at every count; only wall-clock changes.
func BenchmarkBuildGraph(b *testing.B) {
	s := suite()
	d := s.PIM("A")
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := refrecon.DefaultConfig()
			cfg.Workers = w
			r := refrecon.New(refrecon.PIMSchema(), cfg)
			var st recon.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if st, err = r.BuildGraph(d.Store); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.CandidatePairs), "pairs")
			b.ReportMetric(float64(st.GraphNodes), "nodes")
		})
	}
}

// benchPropagateDatasets are the stores the propagation-phase benchmarks
// run over: PIM A (person/article association-heavy) and Cora
// (citation-shaped, enrichment-fold-heavy), both at reduced scale.
func benchPropagateDatasets() []struct {
	name  string
	store *reference.Store
} {
	s := suite()
	return []struct {
		name  string
		store *reference.Store
	}{
		{"PIM-A", s.PIM("A").Store},
		{"Cora", s.Cora().Store},
	}
}

// benchScoringModes pairs the delta-scoring default against the
// full-rescan reference path, the axis these benchmarks exist to compare.
var benchScoringModes = []struct {
	name   string
	rescan bool
}{
	{"delta", false},
	{"rescan", true},
}

// BenchmarkPropagate times the propagation fixed point (Run plus the
// constrained closure) in isolation: graph construction happens outside
// the timer via BuildRetained. The delta/rescan sub-benchmarks measure the
// delta-scoring optimization directly — identical graphs, identical
// results, different per-step evidence access.
func BenchmarkPropagate(b *testing.B) {
	for _, d := range benchPropagateDatasets() {
		for _, mode := range benchScoringModes {
			b.Run(d.name+"/"+mode.name, func(b *testing.B) {
				cfg := recon.DefaultConfig()
				cfg.RescanScoring = mode.rescan
				rc := recon.New(schema.PIM(), cfg)
				var st recon.Stats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					p, err := rc.BuildRetained(d.store)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res, err := p.Propagate()
					if err != nil {
						b.Fatal(err)
					}
					st = res.Stats
				}
				b.ReportMetric(float64(st.Engine.Steps), "steps")
				b.ReportMetric(float64(st.Engine.DeltaHits), "delta-hits")
				b.ReportMetric(float64(st.PropagateTime.Nanoseconds()), "propagate-ns")
			})
		}
	}
}

// BenchmarkEnrichFold times the reference-enrichment path (§3.3): the
// engine runs in Merge mode — enrichment folds without propagation-driven
// reactivation — so fold bookkeeping (edge moves, aggregate invalidation,
// per-kind rebuilds) dominates the measurement.
func BenchmarkEnrichFold(b *testing.B) {
	for _, d := range benchPropagateDatasets() {
		for _, mode := range benchScoringModes {
			b.Run(d.name+"/"+mode.name, func(b *testing.B) {
				cfg := recon.DefaultConfig()
				cfg.Mode = recon.ModeMerge
				cfg.RescanScoring = mode.rescan
				rc := recon.New(schema.PIM(), cfg)
				var st recon.Stats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					p, err := rc.BuildRetained(d.store)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res, err := p.Propagate()
					if err != nil {
						b.Fatal(err)
					}
					st = res.Stats
				}
				b.ReportMetric(float64(st.Engine.Folds), "folds")
				b.ReportMetric(float64(st.Engine.AggRebuilds), "agg-rebuilds")
			})
		}
	}
}

// BenchmarkSimfnCompare measures the cached similarity library on the hot
// evidence kinds. The library is pre-warmed with a small corpus so the
// statistics-dependent comparators (title TF-IDF, venue IDF, name rarity)
// take their real code paths.
func BenchmarkSimfnCompare(b *testing.B) {
	lib := simfn.NewLibrary()
	for _, n := range []string{
		"Alon Halevy", "A. Halevy", "Xin Dong", "Jayant Madhavan",
		"Luna Dong", "X. L. Dong", "J. Madhavan", "Michael Carey",
	} {
		lib.AddPersonName(n)
	}
	for _, t := range []string{
		"reference reconciliation in complex information spaces",
		"data integration the teenage years",
		"learning to match ontologies on the semantic web",
		"similarity search in high dimensions via hashing",
	} {
		lib.Titles.Add(t)
	}
	for _, v := range []string{"sigmod conference", "vldb", "proceedings of the www conference"} {
		lib.Venues.Add(v)
	}
	cases := []struct{ evidence, a, b string }{
		{simfn.EvName, "Alon Y. Halevy", "A. Halevy"},
		{simfn.EvEmail, "halevy@cs.washington.edu", "alon@cs.washington.edu"},
		{simfn.EvNameEmail, "Alon Halevy", "halevy@cs.washington.edu"},
		{simfn.EvTitle, "reference reconciliation in complex spaces", "reference reconciliation in complex information spaces"},
		{simfn.EvVenueName, "sigmod conference", "proc. of sigmod"},
	}
	for _, c := range cases {
		b.Run(c.evidence, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lib.Compare(c.evidence, c.a, c.b)
			}
		})
	}
	// Same comparisons with the pair cache defeated: distinct value per
	// iteration, isolating raw comparator cost from cache-hit cost.
	b.Run("name-uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lib.Compare(simfn.EvName, "Alon Y. Halevy", "A. Halevy "+string(rune('a'+i%26)))
		}
	})
}

// BenchmarkReconcileIndepDec measures baseline throughput on dataset A.
func BenchmarkReconcileIndepDec(b *testing.B) {
	s := suite()
	d := s.PIM("A")
	r := refrecon.NewBaseline(refrecon.PIMSchema(), refrecon.DefaultBaselineConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Reconcile(d.Store); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.Store.Len())*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}
