package refrecon_test

import (
	"fmt"
	"log"

	"refrecon"
)

// Example reconciles the references of the paper's running example
// (Figure 1): two citations of one 1978 article plus email-extracted
// person references collapse into five entities.
func Example() {
	store := refrecon.NewStore()

	person := func(name, email string) *refrecon.Reference {
		r := refrecon.NewReference(refrecon.ClassPerson)
		r.AddAtomic(refrecon.AttrName, name)
		r.AddAtomic(refrecon.AttrEmail, email)
		store.Add(r)
		return r
	}
	p2 := person("Michael Stonebraker", "")
	p5 := person("Stonebraker, M.", "")
	p8 := person("", "stonebraker@csail.mit.edu")
	p9 := person("mike", "stonebraker@csail.mit.edu")

	// One shared article makes the two name forms reconcile.
	a := refrecon.NewReference(refrecon.ClassArticle)
	a.AddAtomic(refrecon.AttrTitle, "Distributed query processing in a relational data base system")
	a.AddAtomic(refrecon.AttrPages, "169-180")
	a.AddAssoc(refrecon.AttrAuthoredBy, p2.ID)
	store.Add(a)
	b := refrecon.NewReference(refrecon.ClassArticle)
	b.AddAtomic(refrecon.AttrTitle, "Distributed query processing in a relational data base system")
	b.AddAtomic(refrecon.AttrPages, "169-180")
	b.AddAssoc(refrecon.AttrAuthoredBy, p5.ID)
	store.Add(b)

	r := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig())
	result, err := r.Reconcile(store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("p2 ~ p5:", result.SameEntity(p2.ID, p5.ID))
	fmt.Println("p8 ~ p9:", result.SameEntity(p8.ID, p9.ID))
	fmt.Println("a ~ b:  ", result.SameEntity(a.ID, b.ID))
	// Output:
	// p2 ~ p5: true
	// p8 ~ p9: true
	// a ~ b:   true
}

// ExampleParseBibTeX shows the BibTeX extraction path.
func ExampleParseBibTeX() {
	entries, err := refrecon.ParseBibTeX(`
@inproceedings{epstein78,
  author    = {Robert S. Epstein and Michael Stonebraker and Eugene Wong},
  title     = {Distributed query processing in a relational data base system},
  booktitle = {ACM SIGMOD},
  year      = 1978,
}`)
	if err != nil {
		log.Fatal(err)
	}
	e := entries[0]
	fmt.Println(e.Key, len(e.Authors()), e.VenueName())
	// Output:
	// epstein78 3 ACM SIGMOD
}

// ExampleParseCitation shows free-text citation segmentation.
func ExampleParseCitation() {
	c, ok := refrecon.ParseCitation(
		"R. Agrawal and R. Srikant. Fast algorithms for mining association rules. In Proc. VLDB, 1994, pp. 487-499.")
	fmt.Println(ok, c.Title, "/", c.Year, "/", c.Pages)
	// Output:
	// true Fast algorithms for mining association rules / 1994 / 487-499
}

// ExampleEvaluate scores a partitioning against gold entity labels.
func ExampleEvaluate() {
	store := refrecon.NewStore()
	mk := func(entity string) refrecon.ID {
		r := refrecon.NewReference(refrecon.ClassPerson)
		r.Entity = entity
		return store.Add(r)
	}
	a1, a2, b1 := mk("A"), mk("A"), mk("B")
	report := refrecon.Evaluate(store, refrecon.ClassPerson,
		[][]refrecon.ID{{a1, a2}, {b1}})
	fmt.Printf("P=%.1f R=%.1f\n", report.Precision, report.Recall)
	// Output:
	// P=1.0 R=1.0
}

// ExampleNewMatcher shows query-time reconciliation: reconcile once, export
// an immutable snapshot, then answer ad-hoc queries against it without
// re-running the algorithm.
func ExampleNewMatcher() {
	store := refrecon.NewStore()
	add := func(name, email string) {
		r := refrecon.NewReference(refrecon.ClassPerson)
		if name != "" {
			r.AddAtomic(refrecon.AttrName, name)
		}
		if email != "" {
			r.AddAtomic(refrecon.AttrEmail, email)
		}
		store.Add(r)
	}
	add("Alice Liddell", "alice@wonderland.org")
	add("Liddell, A.", "alice@wonderland.org")
	add("Charles Dodgson", "dodgson@christchurch.ox.ac.uk")

	cfg := refrecon.DefaultConfig()
	sess := refrecon.New(refrecon.PIMSchema(), cfg).NewSession(store)
	if _, err := sess.Reconcile(); err != nil {
		log.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		log.Fatal(err)
	}

	m := refrecon.NewMatcher(refrecon.PIMSchema(), cfg, snap)
	candidates, _, err := m.Match(refrecon.Query{
		Class:  refrecon.ClassPerson,
		Atomic: map[string][]string{refrecon.AttrName: {"A. Liddell"}},
		Limit:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	best := candidates[0]
	fmt.Println("entities:", len(snap.Entities()))
	fmt.Println("best match spans references:", len(best.Entity.Members))
	fmt.Println("confident:", best.Match)
	// Output:
	// entities: 2
	// best match spans references: 2
	// confident: true
}

// ExampleReconciler_NewSession shows incremental reconciliation with a
// merge explanation.
func ExampleReconciler_NewSession() {
	store := refrecon.NewStore()
	sess := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig()).NewSession(store)

	a := refrecon.NewReference(refrecon.ClassPerson)
	a.AddAtomic(refrecon.AttrName, "Alice Liddell")
	a.AddAtomic(refrecon.AttrEmail, "alice@wonderland.org")
	store.Add(a)
	if _, err := sess.Reconcile(); err != nil {
		log.Fatal(err)
	}

	// A later batch brings another presentation of the same account.
	b := refrecon.NewReference(refrecon.ClassPerson)
	b.AddAtomic(refrecon.AttrName, "Liddell, A.")
	b.AddAtomic(refrecon.AttrEmail, "alice@wonderland.org")
	store.Add(b)
	res, err := sess.Reconcile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same entity:", res.SameEntity(a.ID, b.ID))
	exp, _ := sess.Explain(a.ID, b.ID)
	fmt.Println("hops on the decision path:", len(exp.Path))
	// Output:
	// same entity: true
	// hops on the decision path: 1
}
