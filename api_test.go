package refrecon_test

import (
	"strings"
	"testing"

	"refrecon"
)

// TestPublicAPIEndToEnd drives the whole supported surface: schema, store,
// references, extraction, incremental reconciliation, explanation, and
// both evaluation measures.
func TestPublicAPIEndToEnd(t *testing.T) {
	store := refrecon.NewStore()
	x := refrecon.NewExtractor(store)

	// Extract from a BibTeX fragment.
	refs, err := x.AddBibTeX(`
@inproceedings{w95,
  author = {Jennifer Widom and Garcia-Molina, H.},
  title = {Research problems in data warehousing},
  booktitle = {CIKM},
  year = {1995},
  pages = {25-30}
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || len(refs[0].Authors) != 2 {
		t.Fatalf("extraction shape: %+v", refs)
	}
	store.Get(refs[0].Authors[0]).Entity = "widom"
	store.Get(refs[0].Authors[1]).Entity = "hector"
	store.Get(refs[0].Article).Entity = "paper"

	// Extract from an email message.
	msg, err := refrecon.ParseMessage("From: Jennifer Widom <widom@stanford.edu>\nTo: Hector Garcia-Molina <hector@stanford.edu>\n\n")
	if err != nil {
		t.Fatal(err)
	}
	ids := x.AddMessage(msg)
	store.Get(ids[0]).Entity = "widom"
	store.Get(ids[1]).Entity = "hector"

	// Incremental reconciliation through a session.
	sess := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig()).NewSession(store)
	res, err := sess.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameEntity(refs[0].Authors[0], ids[0]) {
		t.Error("Widom's citation and email references should reconcile")
	}
	if res.SameEntity(refs[0].Authors[0], refs[0].Authors[1]) {
		t.Error("co-authors must stay distinct (constraint 1)")
	}

	// A second batch arrives.
	late := refrecon.NewReference(refrecon.ClassPerson)
	late.AddAtomic(refrecon.AttrEmail, "widom@stanford.edu")
	late.Entity = "widom"
	store.Add(late)
	res2, err := sess.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.SameEntity(late.ID, ids[0]) {
		t.Error("incremental batch should join the email-key cluster")
	}

	// Explanation.
	exp, err := sess.Explain(refs[0].Authors[0], ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Same || !strings.Contains(exp.String(), "same entity") {
		t.Errorf("explanation = %s", exp.String())
	}

	// Both evaluation measures.
	pair := refrecon.Evaluate(store, refrecon.ClassPerson, res2.Partitions[refrecon.ClassPerson])
	bc := refrecon.EvaluateBCubed(store, refrecon.ClassPerson, res2.Partitions[refrecon.ClassPerson])
	if pair.F1 != 1 || bc.F1 != 1 {
		t.Errorf("pairwise F=%f bcubed F=%f, want perfect", pair.F1, bc.F1)
	}
}

// TestPublicAPICustomSchema exercises NewSchema with a minimal two-class
// domain through the facade.
func TestPublicAPICustomSchema(t *testing.T) {
	sch, err := refrecon.NewSchema(
		&refrecon.Class{Name: "Tag", Attrs: []refrecon.Attribute{{Name: "label"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	store := refrecon.NewStore()
	a := refrecon.NewReference("Tag")
	a.AddAtomic("label", "database systems")
	store.Add(a)
	b := refrecon.NewReference("Tag")
	b.AddAtomic("label", "database systems")
	store.Add(b)
	c := refrecon.NewReference("Tag")
	c.AddAtomic("label", "compilers")
	store.Add(c)
	res, err := refrecon.New(sch, refrecon.DefaultConfig()).Reconcile(store)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameEntity(a.ID, b.ID) || res.SameEntity(a.ID, c.ID) {
		t.Errorf("custom schema partitions wrong: %v", res.Partitions)
	}
}
