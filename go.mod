module refrecon

go 1.22
