#!/usr/bin/env bash
# CI gate: formatting, vet, build, full test suite, and the race detector
# over the packages with concurrency (the parallel worker pool and the
# graph builder that drives it). Run from anywhere; operates on the repo
# root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

if grep -q '"degraded": true' BENCH_baseline.json 2>/dev/null; then
    echo "#############################################################"
    echo "# WARNING: BENCH_baseline.json is DEGRADED: it was recorded #"
    echo "# on a single-core host (numCPU == 1). Its speedup and      #"
    echo "# shard-sweep figures time goroutine overhead, not parallel #"
    echo "# execution — do not quote them; re-record on multi-core.   #"
    echo "#############################################################"
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/parallel ./internal/recon ./internal/serve ./internal/collective

echo "== go test -race (delta/rescan equivalence) =="
go test -race -run 'DeltaRescanEquivalence' ./internal/depgraph
go test -race -run 'RescanEquivalence' .

echo "== go test -race (sharded equivalence) =="
go test -race -run 'TestShard' ./internal/recon
go test -race ./internal/shard

echo "== bench smoke (propagate/fold benchmarks compile and run) =="
go test -run=NONE -bench='Propagate|EnrichFold' -benchtime=1x .

echo "== alloc regression smoke (columnar storage allocs/op ceilings) =="
go test -run='ZeroAlloc|AllocsAmortized' -count=1 ./internal/depgraph

echo "== fuzz smoke (10s per target, seed corpora replayed by go test above) =="
go test -fuzz='^FuzzBibTeX$' -fuzztime 10s ./internal/extract
go test -fuzz='^FuzzVCard$' -fuzztime 10s ./internal/extract
go test -fuzz='^FuzzEmail$' -fuzztime 10s ./internal/extract
go test -fuzz='^FuzzCitation$' -fuzztime 10s ./internal/extract
go test -fuzz='^FuzzStrsim$' -fuzztime 10s ./internal/strsim
go test -fuzz='^FuzzEngineOps$' -fuzztime 10s ./internal/depgraph
go test -fuzz='^FuzzSegmentDecode$' -fuzztime 10s ./internal/durable

echo "== invariant audit (reconcile -audit over PIM A-D and Cora) =="
tmpdir=$(mktemp -d)
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; rm -rf "$tmpdir"' EXIT
for d in A B C D cora; do
    go run ./cmd/pimgen -dataset "$d" -o "$tmpdir/$d.json"
    go run ./cmd/reconcile -in "$tmpdir/$d.json" -audit | grep '^audit:'
done

echo "== shard smoke (100k-ref scaled corpus through the sharded path) =="
# The shard count is explicit (-shards 4) because -shards 0 resolves to
# GOMAXPROCS, which is 1 on single-core CI hosts and would silently skip
# the sharded path. The wall-clock budget is enforced with timeout(1);
# override via SHARD_SMOKE_BUDGET (seconds) for slower hardware.
budget="${SHARD_SMOKE_BUDGET:-300}"
go run ./cmd/pimgen -refs 100000 -o "$tmpdir/scaled100k.json"
timeout "$budget" go run ./cmd/reconcile -in "$tmpdir/scaled100k.json" \
    -shards 4 -bucketcap 48 | grep '^shards: 4 groups'

echo "== trace smoke (reconcile -trace over PIM A, validated by tracecheck) =="
go run ./cmd/reconcile -in "$tmpdir/A.json" -trace "$tmpdir/trace.json" -progress | grep '^trace written'
go run ./cmd/tracecheck "$tmpdir/trace.json"

echo "== serve smoke (reconserve: ingest PIM A, one reconcile query) =="
go build -o "$tmpdir/reconserve" ./cmd/reconserve
base="http://127.0.0.1:18417"
"$tmpdir/reconserve" -addr 127.0.0.1:18417 &
server_pid=$!
ready=""
for _ in $(seq 1 50); do
    if curl -fsS "$base/readyz" >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.2
done
[ -n "$ready" ] || { echo "reconserve never became ready" >&2; exit 1; }
# grep without -q reads the producer to EOF, avoiding curl SIGPIPE under
# pipefail.
curl -fsS "$base/" | grep '"versions":\["0.2"\]' >/dev/null
curl -fsS -X POST --data-binary @"$tmpdir/A.json" "$base/ingest" | grep '"added":' >/dev/null
# Query a person name lifted from the dataset itself; the reconcile
# response must produce a scored candidate list.
name=$(awk -F'"' '/"name": \[/ { getline; print $2; exit }' "$tmpdir/A.json")
[ -n "$name" ] || { echo "no person name found in dataset" >&2; exit 1; }
curl -fsS "$base/reconcile" --data-urlencode "queries={\"q0\":{\"query\":\"$name\",\"type\":\"Person\"}}" \
    | grep '"result":\[{' >/dev/null
curl -fsS "$base/metrics" | grep '"queries":1' >/dev/null
# Collective smoke: the manifest must advertise the mode, and the same
# query in collective mode must return a scored response with the
# snapshot-version header and tick the collective metrics split.
curl -fsS "$base/" | grep '"collective":{"modes":\["attribute","collective"\]' >/dev/null
curl -fsS -D "$tmpdir/coll.headers" "$base/reconcile" \
    --data-urlencode "queries={\"q0\":{\"query\":\"$name\",\"type\":\"Person\",\"mode\":\"collective\"}}" \
    | grep '"result":\[{' >/dev/null
grep -i '^x-snapshot-version:' "$tmpdir/coll.headers" >/dev/null \
    || { echo "collective response missing X-Snapshot-Version" >&2; exit 1; }
curl -fsS "$base/metrics" | grep '"collectiveQueries":1' >/dev/null
# Ecosystem surface: the manifest must advertise suggest/preview/extend,
# and each endpoint must answer over the same snapshot.
curl -fsS "$base/" | grep '"suggest":{"entity":{' >/dev/null
curl -fsS "$base/" | grep '"preview":{' >/dev/null
curl -fsS "$base/" | grep '"propose_properties":{' >/dev/null
prefix=$(printf '%s' "$name" | cut -c1-3)
curl -fsS "$base/suggest/entity" --get --data-urlencode "prefix=$prefix" \
    >"$tmpdir/suggest.json"
grep '"result":\[{' "$tmpdir/suggest.json" >/dev/null
# The first suggested entity (a Person, matched on a name prefix) feeds
# the preview and extension checks.
eid=$(grep -o '"id":"[0-9]*"' "$tmpdir/suggest.json" | head -1 | tr -dc 0-9)
[ -n "$eid" ] || { echo "suggest returned no entity id" >&2; exit 1; }
curl -fsS "$base/preview/$eid" | grep '<html>' >/dev/null
curl -fsS "$base/properties?type=Person" | grep '"properties":\[{' >/dev/null
# Data extension: the suggested entity's stored name values come back.
curl -fsS "$base/reconcile" \
    --data-urlencode "extend={\"ids\":[\"$eid\"],\"properties\":[{\"id\":\"name\"}]}" \
    | grep "\"rows\":{\"$eid\":{\"name\":\[{\"str\":" >/dev/null
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== durability smoke (ingest, kill -9, replay; clean shutdown, fast restore) =="
base="http://127.0.0.1:18418"
datadir="$tmpdir/durable"
wait_ready() {
    for _ in $(seq 1 50); do
        if curl -fsS "$base/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "reconserve never became ready" >&2
    return 1
}
"$tmpdir/reconserve" -addr 127.0.0.1:18418 -data-dir "$datadir" &
server_pid=$!
wait_ready
curl -fsS -X POST --data-binary @"$tmpdir/A.json" "$base/ingest" | grep '"added":' >/dev/null
ver=$(curl -fsS -D - -o "$tmpdir/entity0.json" "$base/entity/0" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-snapshot-version" {print $2}')
curl -fsS "$base/explain/0/1" >"$tmpdir/explain01.json"
[ -n "$ver" ] || { echo "no X-Snapshot-Version header" >&2; exit 1; }
# Crash: no clean shutdown, no final checkpoint — recovery must replay the
# write-ahead log and land on the identical published state.
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
"$tmpdir/reconserve" -addr 127.0.0.1:18418 -data-dir "$datadir" &
server_pid=$!
wait_ready
curl -fsS "$base/metrics" | grep '"recovery":"replay"' >/dev/null
ver2=$(curl -fsS -D - -o "$tmpdir/entity0.replay.json" "$base/entity/0" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-snapshot-version" {print $2}')
curl -fsS "$base/explain/0/1" >"$tmpdir/explain01.replay.json"
[ "$ver" = "$ver2" ] || { echo "replay version $ver2 != $ver" >&2; exit 1; }
cmp -s "$tmpdir/entity0.json" "$tmpdir/entity0.replay.json" || { echo "entity/0 differs after crash replay" >&2; exit 1; }
cmp -s "$tmpdir/explain01.json" "$tmpdir/explain01.replay.json" || { echo "explain/0/1 differs after crash replay" >&2; exit 1; }
# Clean shutdown: SIGTERM drains, writes the final checkpoint, closes the
# log — the next start takes the fast restore path at the same state.
kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
"$tmpdir/reconserve" -addr 127.0.0.1:18418 -data-dir "$datadir" &
server_pid=$!
wait_ready
curl -fsS "$base/metrics" | grep '"recovery":"checkpoint"' >/dev/null
ver3=$(curl -fsS -D - -o "$tmpdir/entity0.restore.json" "$base/entity/0" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-snapshot-version" {print $2}')
[ "$ver" = "$ver3" ] || { echo "fast-restore version $ver3 != $ver" >&2; exit 1; }
cmp -s "$tmpdir/entity0.json" "$tmpdir/entity0.restore.json" || { echo "entity/0 differs after fast restore" >&2; exit 1; }
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== loadgen smoke (mixed ingest+query replay, both datasets, 32 clients) =="
# loadgen itself exits non-zero on any transport or per-query error; the
# grep additionally asserts the per-mode histograms are non-empty.
go build -o "$tmpdir/loadgen" ./cmd/loadgen
base="http://127.0.0.1:18419"
for ds in biblio catalog; do
    sch=pim
    [ "$ds" = catalog ] && sch=catalog
    "$tmpdir/reconserve" -addr 127.0.0.1:18419 -schema "$sch" &
    server_pid=$!
    wait_ready
    "$tmpdir/loadgen" -target "$base" -dataset "$ds" -refs 1200 -queries 300 \
        -clients 32 -o "$tmpdir/loadgen.$ds.json"
    for mode in plainLatencyMs collectiveLatencyMs; do
        count=$(grep -A1 "\"$mode\"" "$tmpdir/loadgen.$ds.json" | awk -F'[ ,]' '/"count"/ {print $(NF-1)}')
        [ "${count:-0}" -gt 0 ] || { echo "loadgen $ds: empty $mode histogram" >&2; exit 1; }
    done
    kill "$server_pid"
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
done

echo "CI gate passed."
