#!/usr/bin/env bash
# CI gate: formatting, vet, build, full test suite, and the race detector
# over the packages with concurrency (the parallel worker pool and the
# graph builder that drives it). Run from anywhere; operates on the repo
# root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/parallel ./internal/recon

echo "== go test -race (delta/rescan equivalence) =="
go test -race -run 'DeltaRescanEquivalence' ./internal/depgraph
go test -race -run 'RescanEquivalence' .

echo "== bench smoke (propagate/fold benchmarks compile and run) =="
go test -run=NONE -bench='Propagate|EnrichFold' -benchtime=1x .

echo "== fuzz smoke (10s per target, seed corpora replayed by go test above) =="
go test -fuzz='^FuzzBibTeX$' -fuzztime 10s ./internal/extract
go test -fuzz='^FuzzVCard$' -fuzztime 10s ./internal/extract
go test -fuzz='^FuzzEmail$' -fuzztime 10s ./internal/extract
go test -fuzz='^FuzzCitation$' -fuzztime 10s ./internal/extract
go test -fuzz='^FuzzStrsim$' -fuzztime 10s ./internal/strsim
go test -fuzz='^FuzzEngineOps$' -fuzztime 10s ./internal/depgraph

echo "== invariant audit (reconcile -audit over PIM A-D and Cora) =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
for d in A B C D cora; do
    go run ./cmd/pimgen -dataset "$d" -o "$tmpdir/$d.json"
    go run ./cmd/reconcile -in "$tmpdir/$d.json" -audit | grep '^audit:'
done

echo "CI gate passed."
