// Package refrecon is a Go implementation of collective reference
// reconciliation for complex information spaces, after Dong, Halevy, and
// Madhavan, "Reference Reconciliation in Complex Information Spaces"
// (SIGMOD 2005).
//
// Reference reconciliation decides when different references — partial
// descriptions extracted from heterogeneous sources — denote the same
// real-world entity. This library implements the paper's DepGraph
// algorithm: a dependency graph over pairwise similarity decisions with
// typed dependency edges, similarity propagation to a fixed point,
// reference enrichment, and negative-evidence constraints; plus the
// attribute-wise INDEPDEC baseline, a metrics package, extractors for
// BibTeX and email corpora, and synthetic dataset generators reproducing
// the paper's evaluation.
//
// # Quick start
//
//	store := refrecon.NewStore()
//	p := refrecon.NewReference(refrecon.ClassPerson)
//	p.AddAtomic(refrecon.AttrName, "Michael Stonebraker")
//	store.Add(p)
//	// ... add more references, including associations ...
//
//	r := refrecon.New(refrecon.PIMSchema(), refrecon.DefaultConfig())
//	result, err := r.Reconcile(store)
//	// result.Partitions[refrecon.ClassPerson] lists the resolved entities.
//
// The packages under internal/ hold the implementation; this package is
// the supported surface.
package refrecon

import (
	"refrecon/internal/extract"
	"refrecon/internal/indepdec"
	"refrecon/internal/metrics"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// Core model types.
type (
	// Schema declares the classes and attributes of an information space.
	Schema = schema.Schema
	// Class is one class of references.
	Class = schema.Class
	// Attribute is one attribute of a class.
	Attribute = schema.Attribute
	// Reference is a partial description of a real-world entity.
	Reference = reference.Reference
	// Store holds a dataset's references.
	Store = reference.Store
	// ID identifies a reference within a Store.
	ID = reference.ID
)

// Reconciliation types.
type (
	// Reconciler runs the DepGraph algorithm.
	Reconciler = recon.Reconciler
	// Config tunes the reconciler.
	Config = recon.Config
	// Mode selects propagation/enrichment (the §5.3 ablation axis).
	Mode = recon.Mode
	// EvidenceLevel selects the evidence set (the other ablation axis).
	EvidenceLevel = recon.EvidenceLevel
	// Result is the reconciliation outcome.
	Result = recon.Result
	// Baseline is the attribute-wise INDEPDEC reconciler.
	Baseline = indepdec.Reconciler
	// BaselineConfig tunes the baseline.
	BaselineConfig = indepdec.Config
	// BaselineResult is the baseline's outcome.
	BaselineResult = indepdec.Result
	// Report is a pairwise precision/recall evaluation.
	Report = metrics.Report
	// BCubedReport is a B-cubed (per-reference) evaluation.
	BCubedReport = metrics.BCubedReport
	// Session supports incremental reconciliation: add references to its
	// store between Reconcile calls (the paper's §7 future work).
	Session = recon.Session
	// Explanation describes why two references were (not) reconciled.
	Explanation = recon.Explanation
)

// Query-time reconciliation types: an immutable Snapshot of a
// reconciliation result plus a Matcher that scores ad-hoc queries against
// it without re-running the algorithm — the same machinery behind the
// HTTP reconciliation service (cmd/reconserve), usable as a library.
//
//	sess := r.NewSession(store)
//	sess.Reconcile()
//	snap, _ := sess.Snapshot()
//	m := refrecon.NewMatcher(sch, cfg, snap)
//	cands, _, _ := m.Match(refrecon.Query{Class: refrecon.ClassPerson,
//	    Atomic: map[string][]string{refrecon.AttrName: {"J. Smith"}}})
type (
	// Snapshot is an immutable export of a reconciliation result:
	// references, entity partitions, merged-pair evidence, and the
	// similarity statistics queries score against. Obtain one from
	// Session.Snapshot or Result.Snapshot.
	Snapshot = recon.Snapshot
	// SnapRef is one reference inside a Snapshot.
	SnapRef = recon.SnapRef
	// SnapEntity is one resolved entity inside a Snapshot: its member
	// references, canonical id, and merged attribute values.
	SnapEntity = recon.Entity
	// Matcher answers reconciliation queries against a Snapshot using the
	// same blocking and similarity functions as the batch algorithm.
	Matcher = recon.Matcher
	// Query is one reconciliation query: a class plus atomic attribute
	// values describing the entity sought.
	Query = recon.Query
	// MatchResult is one scored candidate entity for a query.
	MatchResult = recon.Candidate
	// MatchStats describes the work behind one Match call.
	MatchStats = recon.MatchStats
)

// NewMatcher builds a query matcher over a snapshot. cfg should be the
// configuration the snapshot was reconciled under, so query scoring uses
// the same thresholds and parameters.
func NewMatcher(sch *Schema, cfg Config, snap *Snapshot) *Matcher {
	return recon.NewMatcher(sch, cfg, snap)
}

// Sentinel errors, resolvable with errors.Is through every layer of the
// library (and mapped to HTTP statuses by the reconciliation service).
var (
	// ErrCanceled marks a reconciliation stopped by context cancellation.
	// Errors returned by Reconciler.ReconcileContext and
	// Session.CommitContext wrap both ErrCanceled and the context's own
	// ctx.Err(), so errors.Is matches either.
	ErrCanceled = recon.ErrCanceled
	// ErrSchemaViolation marks input that fails schema validation.
	ErrSchemaViolation = recon.ErrSchemaViolation
	// ErrBatchRejected marks an ingest batch refused before any reference
	// was applied.
	ErrBatchRejected = recon.ErrBatchRejected
)

// Modes.
const (
	ModeFull        = recon.ModeFull
	ModeTraditional = recon.ModeTraditional
	ModePropagation = recon.ModePropagation
	ModeMerge       = recon.ModeMerge
)

// Evidence levels.
const (
	EvidenceAttrWise  = recon.EvidenceAttrWise
	EvidenceNameEmail = recon.EvidenceNameEmail
	EvidenceArticle   = recon.EvidenceArticle
	EvidenceContact   = recon.EvidenceContact
)

// Built-in class and attribute names.
const (
	ClassPerson  = schema.ClassPerson
	ClassArticle = schema.ClassArticle
	ClassVenue   = schema.ClassVenue

	AttrName         = schema.AttrName
	AttrEmail        = schema.AttrEmail
	AttrCoAuthor     = schema.AttrCoAuthor
	AttrEmailContact = schema.AttrEmailContact
	AttrTitle        = schema.AttrTitle
	AttrYear         = schema.AttrYear
	AttrPages        = schema.AttrPages
	AttrLocation     = schema.AttrLocation
	AttrAuthoredBy   = schema.AttrAuthoredBy
	AttrPublishedIn  = schema.AttrPublishedIn
)

// PIMSchema returns the personal-information-management schema of the
// paper's Figure 1(a) (with Venue unifying conferences and journals).
func PIMSchema() *Schema { return schema.PIM() }

// CoraSchema returns the citation schema of the paper's Figure 5.
func CoraSchema() *Schema { return schema.Cora() }

// NewSchema builds a custom schema from classes.
func NewSchema(classes ...*Class) (*Schema, error) { return schema.New(classes...) }

// NewStore returns an empty reference store.
func NewStore() *Store { return reference.NewStore() }

// NewReference creates a reference of the given class (added to a store
// with Store.Add).
func NewReference(class string) *Reference { return reference.New(class) }

// New returns a DepGraph reconciler.
func New(sch *Schema, cfg Config) *Reconciler { return recon.New(sch, cfg) }

// DefaultConfig returns the paper's published parameters (§5.2): merge
// threshold 0.85, β = 0.1 (0.2 for venues), γ = 0.05, t_rv = 0.7
// (0.1 for venues), full mode, all evidence, constraints on.
func DefaultConfig() Config { return recon.DefaultConfig() }

// NewBaseline returns the INDEPDEC baseline reconciler.
func NewBaseline(sch *Schema, cfg BaselineConfig) *Baseline { return indepdec.New(sch, cfg) }

// DefaultBaselineConfig returns the baseline's published settings.
func DefaultBaselineConfig() BaselineConfig { return indepdec.DefaultConfig() }

// Evaluate scores predicted partitions of one class against the gold
// entity labels carried by the references.
func Evaluate(store *Store, class string, partitions [][]ID) Report {
	return metrics.Evaluate(store, class, partitions)
}

// EvaluateBCubed scores partitions under the B-cubed measure, which
// weights every reference equally rather than every pair.
func EvaluateBCubed(store *Store, class string, partitions [][]ID) BCubedReport {
	return metrics.BCubed(store, class, partitions)
}

// Extraction types: turn raw BibTeX and email text into references.
type (
	// Extractor accumulates references parsed from raw sources.
	Extractor = extract.Accumulator
	// BibEntry is a parsed BibTeX entry.
	BibEntry = extract.BibEntry
	// Message is a parsed email message header block.
	Message = extract.Message
	// Mailbox is one address occurrence in a message header.
	Mailbox = extract.Mailbox
	// Citation is a segmented free-text citation string.
	Citation = extract.Citation
	// VCard is a parsed address-book card.
	VCard = extract.VCard
)

// NewExtractor returns an extractor writing into store.
func NewExtractor(store *Store) *Extractor { return extract.NewAccumulator(store) }

// ParseBibTeX parses a BibTeX document.
func ParseBibTeX(src string) ([]BibEntry, error) { return extract.ParseBibTeX(src) }

// ParseMessage parses an RFC-2822-style message's headers.
func ParseMessage(src string) (Message, error) { return extract.ParseMessage(src) }

// ParseCitation heuristically segments a free-text citation string
// (LaTeX \bibitem / citation-index style) into authors, title, venue,
// year, and pages.
func ParseCitation(s string) (Citation, bool) { return extract.ParseCitation(s) }

// ParseVCards parses a vCard address-book stream.
func ParseVCards(src string) ([]VCard, error) { return extract.ParseVCards(src) }

// ParseBibItems extracts citation strings from a LaTeX thebibliography
// environment; feed them to ParseCitation (or use Extractor.AddBibItems).
func ParseBibItems(src string) []string { return extract.ParseBibItems(src) }
