// Cancellation tests for the context-aware API: ReconcileContext and
// Session.CommitContext must honor cancellation at phase and
// propagation-round boundaries, return an error resolvable to both
// refrecon.ErrCanceled and the context's own error, and leave the Session
// usable — a retry after a cancelled commit must produce exactly the
// partitions an uncancelled run would have.
package refrecon_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"refrecon"
	"refrecon/internal/obs"
	"refrecon/internal/recon"
	"refrecon/internal/schema"
)

func TestReconcileContextPreCanceled(t *testing.T) {
	store := suite().PIM("A").Store
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := recon.New(schema.PIM(), recon.DefaultConfig()).ReconcileContext(ctx, store)
	if err == nil {
		t.Fatal("ReconcileContext with a canceled context succeeded")
	}
	if !errors.Is(err, refrecon.ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	// The store is an input, never mutated: an immediate uncancelled run
	// must succeed.
	if _, err := recon.New(schema.PIM(), recon.DefaultConfig()).Reconcile(store); err != nil {
		t.Fatalf("store unusable after canceled run: %v", err)
	}
}

func TestCommitContextCancelMidPropagate(t *testing.T) {
	store := suite().PIM("A").Store

	// The uncancelled reference outcome.
	want, err := recon.New(schema.PIM(), recon.DefaultConfig()).Reconcile(store)
	if err != nil {
		t.Fatal(err)
	}
	wantCanon := canonPartitions(want.Partitions)

	// Cancel from inside the run: the progress callback fires at every
	// propagation-round boundary, so cancelling on the first round event
	// lands mid-propagate and the engine must notice at the next boundary.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sawRound := 0
	cfg := recon.DefaultConfig()
	cfg.Obs = &obs.Observer{Progress: &obs.Progress{Fn: func(e obs.Event) {
		if e.Phase == "propagate" && !e.Final && e.Round >= 1 {
			sawRound = e.Round
			cancel()
		}
	}}}
	sess := recon.New(schema.PIM(), cfg).NewSession(store)
	_, err = sess.CommitContext(ctx)
	if err == nil {
		t.Fatal("CommitContext survived mid-propagate cancellation")
	}
	if !errors.Is(err, refrecon.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled commit error %v does not wrap ErrCanceled and context.Canceled", err)
	}
	if sawRound == 0 {
		t.Fatal("cancellation trigger never fired (no propagate round event)")
	}

	// The session must remain usable: the next commit rebuilds from scratch
	// and must match the uncancelled run bit for bit.
	res, err := sess.CommitContext(context.Background())
	if err != nil {
		t.Fatalf("commit after cancellation: %v", err)
	}
	if got := canonPartitions(res.Partitions); got != wantCanon {
		t.Error("partitions after a cancelled-then-retried commit differ from an uncancelled run")
	}
}

func TestReconcileContextTraceOrdering(t *testing.T) {
	store := suite().PIM("A").Store
	cfg := recon.DefaultConfig()
	tr := obs.NewTracer()
	var events []obs.Event
	cfg.Obs = &obs.Observer{
		Trace:    tr,
		Counters: obs.NewCounters(),
		Progress: &obs.Progress{Fn: func(e obs.Event) { events = append(events, e) }},
	}
	if _, err := recon.New(schema.PIM(), cfg).ReconcileContext(context.Background(), store); err != nil {
		t.Fatal(err)
	}

	// Phase spans present and strictly ordered on the timeline.
	phases := map[string]obs.TraceEvent{}
	var rounds []obs.TraceEvent
	for _, e := range tr.Events() {
		switch e.Cat {
		case "phase":
			if _, dup := phases[e.Name]; dup {
				t.Fatalf("duplicate phase span %q", e.Name)
			}
			phases[e.Name] = e
		case "round":
			rounds = append(rounds, e)
		}
	}
	for _, name := range []string{"build", "propagate", "closure"} {
		if _, ok := phases[name]; !ok {
			t.Fatalf("missing phase span %q", name)
		}
	}
	end := func(e obs.TraceEvent) float64 { return e.TS + e.Dur }
	build, prop, clos := phases["build"], phases["propagate"], phases["closure"]
	if !(end(build) <= prop.TS && end(prop) <= clos.TS) {
		t.Errorf("phase spans out of order: build ends %v, propagate [%v,%v], closure starts %v",
			end(build), prop.TS, end(prop), clos.TS)
	}

	// Every round span nests inside the propagate phase span.
	if len(rounds) == 0 {
		t.Fatal("no round spans recorded")
	}
	for _, r := range rounds {
		if r.TS < prop.TS || end(r) > end(prop) {
			t.Errorf("round span %q [%v,%v] escapes propagate [%v,%v]",
				r.Name, r.TS, end(r), prop.TS, end(prop))
		}
	}

	// The progress stream sees the same structure: phases in order, rounds
	// strictly increasing within propagate.
	phaseOrder := map[string]int{"build": 0, "propagate": 1, "closure": 2}
	last, lastRound := -1, 0
	for _, e := range events {
		idx, ok := phaseOrder[e.Phase]
		if !ok {
			t.Fatalf("unknown progress phase %q", e.Phase)
		}
		if idx < last {
			t.Fatalf("progress phase %q after a later phase", e.Phase)
		}
		last = idx
		if e.Phase == "propagate" && !e.Final {
			if e.Round <= lastRound {
				t.Fatalf("round %d not strictly after round %d", e.Round, lastRound)
			}
			lastRound = e.Round
		}
	}
	if last != 2 {
		t.Fatal("progress stream never reached closure")
	}

	// The exported file is valid Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) {
		t.Fatal("trace JSON missing traceEvents key")
	}

	// Counters mirror the run: rounds counted, propagate work recorded.
	c := cfg.Obs.Counters.Snapshot()
	if c.Rounds == 0 || c.Steps == 0 || c.Merges == 0 {
		t.Errorf("counters not fed: %+v", c)
	}
	if int(c.Rounds) != len(rounds) {
		t.Errorf("counter rounds %d != %d round spans", c.Rounds, len(rounds))
	}
}
