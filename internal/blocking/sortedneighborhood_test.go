package blocking

import (
	"testing"

	"refrecon/internal/reference"
)

func TestSortedNeighborhoodBasic(t *testing.T) {
	records := []Record{
		{"smith", 0},
		{"smyth", 1},
		{"jones", 2},
		{"smithe", 3},
	}
	got := make(map[[2]reference.ID]bool)
	SortedNeighborhood(records, 2, func(a, b reference.ID) {
		got[[2]reference.ID{a, b}] = true
	})
	// Sorted order: jones(2), smith(0), smithe(3), smyth(1).
	want := [][2]reference.ID{{0, 2}, {0, 3}, {1, 3}}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v", got)
	}
	for _, p := range want {
		if !got[p] {
			t.Errorf("missing %v", p)
		}
	}
}

func TestSortedNeighborhoodWindow(t *testing.T) {
	records := []Record{{"a", 0}, {"b", 1}, {"c", 2}, {"d", 3}}
	count := 0
	SortedNeighborhood(records, 3, func(a, b reference.ID) { count++ })
	// window 3: each record pairs with the next two -> (0,1)(0,2)(1,2)(1,3)(2,3)
	if count != 5 {
		t.Errorf("pairs = %d, want 5", count)
	}
	count = 0
	SortedNeighborhood(records, 1, func(a, b reference.ID) { count++ })
	if count != 0 {
		t.Errorf("window 1 should yield nothing, got %d", count)
	}
}

func TestSortedNeighborhoodMultiPassDedup(t *testing.T) {
	// The same reference under two keys (multi-pass): duplicate pairs and
	// self pairs are suppressed.
	records := []Record{
		{"aaa", 0}, {"aab", 1},
		{"zza", 0}, {"zzb", 1},
	}
	count := 0
	SortedNeighborhood(records, 2, func(a, b reference.ID) {
		if a == b {
			t.Fatal("self pair emitted")
		}
		count++
	})
	if count != 1 {
		t.Errorf("pair emitted %d times, want 1", count)
	}
}

func TestSortedNeighborhoodDeterministic(t *testing.T) {
	records := []Record{{"m", 5}, {"m", 3}, {"m", 9}, {"n", 1}}
	run := func() []reference.ID {
		var seq []reference.ID
		SortedNeighborhood(records, 3, func(a, b reference.ID) { seq = append(seq, a, b) })
		return seq
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic count")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("nondeterministic order")
			}
		}
	}
}
