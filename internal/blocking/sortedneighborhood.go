package blocking

import (
	"sort"

	"refrecon/internal/reference"
)

// Record is one (sort key, reference) entry for the sorted-neighborhood
// method.
type Record struct {
	Key string
	ID  reference.ID
}

// SortedNeighborhood implements the merge/purge candidate generation of
// Hernandez & Stolfo (the paper's reference [21], and half of what the
// INDEPDEC baseline "roughly corresponds to"): records are sorted by a
// domain key and every pair within a sliding window of the sorted order
// becomes a candidate. A reference may contribute several records (one
// per key — multi-pass sorted neighborhood); pairs are deduplicated and
// emitted with a < b in deterministic order.
//
// window is the number of consecutive records compared against each
// record; window < 2 yields no pairs.
func SortedNeighborhood(records []Record, window int, fn func(a, b reference.ID)) {
	if window < 2 || len(records) < 2 {
		return
	}
	sorted := make([]Record, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Key != sorted[j].Key {
			return sorted[i].Key < sorted[j].Key
		}
		return sorted[i].ID < sorted[j].ID
	})
	seen := make(map[uint64]bool)
	for i := range sorted {
		for j := i + 1; j < len(sorted) && j < i+window; j++ {
			a, b := sorted[i].ID, sorted[j].ID
			if a == b {
				continue
			}
			if b < a {
				a, b = b, a
			}
			pk := uint64(a)<<32 | uint64(uint32(b))
			if seen[pk] {
				continue
			}
			seen[pk] = true
			fn(a, b)
		}
	}
}
