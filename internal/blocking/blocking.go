// Package blocking generates candidate reference pairs via inverted-index
// canopies, in the spirit of the canopy mechanism the paper adopts (§6):
// only pairs that share at least one blocking key are considered by the
// reconciler, keeping the dependency graph far below the quadratic
// all-pairs size.
//
// Buckets that grow beyond a cap are skipped: an extremely common key
// (a stopword-like title token, a huge mailing list) produces quadratically
// many low-value candidates. Skipped keys are counted so callers can report
// the coverage loss instead of silently truncating.
package blocking

import (
	"sort"

	"refrecon/internal/reference"
)

// Index is an inverted index from blocking keys to reference ids.
type Index struct {
	buckets   map[string][]reference.ID
	bucketCap int
	skipped   int
}

// New returns an index that ignores buckets larger than bucketCap when
// emitting pairs. bucketCap <= 0 means unlimited.
func New(bucketCap int) *Index {
	return &Index{buckets: make(map[string][]reference.ID), bucketCap: bucketCap}
}

// Add records that the reference exposes the blocking key. Duplicate
// (key, id) insertions are tolerated; Pairs deduplicates.
func (x *Index) Add(key string, id reference.ID) {
	if key == "" {
		return
	}
	x.buckets[key] = append(x.buckets[key], id)
}

// Keys returns the number of distinct keys.
func (x *Index) Keys() int { return len(x.buckets) }

// SkippedBuckets returns how many over-cap buckets the last Pairs call
// skipped.
func (x *Index) SkippedBuckets() int { return x.skipped }

// MaxBucket returns the largest bucket's raw size (before deduplication),
// skipped or not — the number observability reports to explain blocking
// hot spots and cap-induced coverage loss.
func (x *Index) MaxBucket() int {
	max := 0
	for _, ids := range x.buckets {
		if len(ids) > max {
			max = len(ids)
		}
	}
	return max
}

// Pairs invokes fn once for every distinct unordered pair of references
// sharing at least one non-skipped key, with a < b. Iteration order is
// deterministic (keys sorted, ids sorted within buckets).
func (x *Index) Pairs(fn func(a, b reference.ID)) {
	x.skipped = 0
	seen := make(map[uint64]bool)
	keys := make([]string, 0, len(x.buckets))
	for k := range x.buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ids := dedupIDs(x.buckets[k])
		if x.bucketCap > 0 && len(ids) > x.bucketCap {
			x.skipped++
			continue
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				pk := uint64(a)<<32 | uint64(uint32(b))
				if seen[pk] {
					continue
				}
				seen[pk] = true
				fn(a, b)
			}
		}
	}
}

// PairsInvolving invokes fn for every distinct unordered pair (a < b)
// that shares a non-skipped key with at least one reference from ids —
// the incremental variant of Pairs. Deterministic like Pairs.
func (x *Index) PairsInvolving(ids []reference.ID, fn func(a, b reference.ID)) {
	x.skipped = 0
	want := make(map[reference.ID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	seen := make(map[uint64]bool)
	keys := make([]string, 0, len(x.buckets))
	for k := range x.buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		members := dedupIDs(x.buckets[k])
		if x.bucketCap > 0 && len(members) > x.bucketCap {
			x.skipped++
			continue
		}
		touched := false
		for _, id := range members {
			if want[id] {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if !want[a] && !want[b] {
					continue
				}
				pk := uint64(a)<<32 | uint64(uint32(b))
				if seen[pk] {
					continue
				}
				seen[pk] = true
				fn(a, b)
			}
		}
	}
}

// Candidates returns every reference sharing at least one non-skipped key
// with the given key set — the single-query lookup ("candidates for this
// one new reference") behind query-time reconciliation. The result is
// sorted and deduplicated; over-cap buckets are skipped exactly as Pairs
// skips them. Unlike Pairs, Candidates mutates no index state, so it is
// safe for concurrent use by any number of readers (as long as no
// concurrent Add/Pairs runs).
func (x *Index) Candidates(keys []string) []reference.ID {
	var out []reference.ID
	seen := make(map[reference.ID]bool)
	for _, k := range keys {
		bucket := x.buckets[k]
		if len(bucket) == 0 {
			continue
		}
		ids := dedupIDs(bucket)
		if x.bucketCap > 0 && len(ids) > x.bucketCap {
			continue
		}
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupIDs(ids []reference.ID) []reference.ID {
	sorted := make([]reference.ID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	for i, id := range sorted {
		if i == 0 || id != sorted[i-1] {
			out = append(out, id)
		}
	}
	return out
}
