package blocking

import (
	"testing"

	"refrecon/internal/reference"
)

func collect(x *Index) map[[2]reference.ID]bool {
	out := make(map[[2]reference.ID]bool)
	x.Pairs(func(a, b reference.ID) {
		if a >= b {
			panic("pair not ordered")
		}
		out[[2]reference.ID{a, b}] = true
	})
	return out
}

func TestPairsBasic(t *testing.T) {
	x := New(0)
	x.Add("k", 1)
	x.Add("k", 2)
	x.Add("k", 3)
	got := collect(x)
	want := [][2]reference.ID{{1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v", got)
	}
	for _, p := range want {
		if !got[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

func TestPairsDedupAcrossKeys(t *testing.T) {
	x := New(0)
	x.Add("k1", 1)
	x.Add("k1", 2)
	x.Add("k2", 1)
	x.Add("k2", 2)
	count := 0
	x.Pairs(func(a, b reference.ID) { count++ })
	if count != 1 {
		t.Errorf("pair emitted %d times, want 1", count)
	}
}

func TestPairsDedupWithinBucket(t *testing.T) {
	x := New(0)
	x.Add("k", 1)
	x.Add("k", 1)
	x.Add("k", 2)
	count := 0
	x.Pairs(func(a, b reference.ID) { count++ })
	if count != 1 {
		t.Errorf("pairs = %d, want 1", count)
	}
}

func TestBucketCap(t *testing.T) {
	x := New(2)
	x.Add("huge", 1)
	x.Add("huge", 2)
	x.Add("huge", 3)
	x.Add("ok", 4)
	x.Add("ok", 5)
	got := collect(x)
	if len(got) != 1 || !got[[2]reference.ID{4, 5}] {
		t.Errorf("pairs = %v, want only (4,5)", got)
	}
	if x.SkippedBuckets() != 1 {
		t.Errorf("SkippedBuckets = %d", x.SkippedBuckets())
	}
}

func TestEmptyKeyIgnored(t *testing.T) {
	x := New(0)
	x.Add("", 1)
	x.Add("", 2)
	if len(collect(x)) != 0 {
		t.Error("empty key should be ignored")
	}
	if x.Keys() != 0 {
		t.Errorf("Keys = %d", x.Keys())
	}
}

func TestDeterministicOrder(t *testing.T) {
	build := func() []reference.ID {
		x := New(0)
		x.Add("b", 3)
		x.Add("b", 1)
		x.Add("a", 5)
		x.Add("a", 2)
		var seq []reference.ID
		x.Pairs(func(a, b reference.ID) { seq = append(seq, a, b) })
		return seq
	}
	first := build()
	for i := 0; i < 5; i++ {
		again := build()
		if len(again) != len(first) {
			t.Fatal("nondeterministic pair count")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("nondeterministic pair order")
			}
		}
	}
}

// TestCandidates covers the single-query lookup: candidates for one new
// reference's key set against a prebuilt index.
func TestCandidates(t *testing.T) {
	tests := []struct {
		name string
		cap  int
		add  map[string][]reference.ID // index contents
		keys []string
		want []reference.ID
	}{
		{
			name: "empty store",
			add:  nil,
			keys: []string{"pn:smith", "pe:a@b"},
			want: nil,
		},
		{
			name: "no keys",
			add:  map[string][]reference.ID{"pn:smith": {1, 2}},
			keys: nil,
			want: nil,
		},
		{
			name: "single-class store, one shared key",
			add:  map[string][]reference.ID{"pn:smith": {2, 5}, "pn:jones": {3}},
			keys: []string{"pn:smith"},
			want: []reference.ID{2, 5},
		},
		{
			name: "union across keys, sorted and deduplicated",
			add:  map[string][]reference.ID{"a": {7, 1}, "b": {1, 4}, "c": {9}},
			keys: []string{"b", "a", "b"},
			want: []reference.ID{1, 4, 7},
		},
		{
			name: "duplicate bucket entries collapse",
			add:  map[string][]reference.ID{"a": {3, 3, 3, 1}},
			keys: []string{"a"},
			want: []reference.ID{1, 3},
		},
		{
			name: "over-cap bucket skipped",
			cap:  2,
			add:  map[string][]reference.ID{"big": {1, 2, 3}, "ok": {4, 5}},
			keys: []string{"big", "ok"},
			want: []reference.ID{4, 5},
		},
		{
			name: "missing key ignored",
			add:  map[string][]reference.ID{"a": {1}},
			keys: []string{"zz", "a"},
			want: []reference.ID{1},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			x := New(tc.cap)
			for k, ids := range tc.add {
				for _, id := range ids {
					x.Add(k, id)
				}
			}
			got := x.Candidates(tc.keys)
			if len(got) != len(tc.want) {
				t.Fatalf("Candidates(%v) = %v, want %v", tc.keys, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Candidates(%v) = %v, want %v", tc.keys, got, tc.want)
				}
			}
		})
	}
}

// TestCandidatesReadOnly pins that Candidates leaves the index unchanged:
// a Pairs sweep before and after lookups sees identical state, and the
// skipped-bucket counter is untouched (Candidates is the concurrent-reader
// path).
func TestCandidatesReadOnly(t *testing.T) {
	x := New(2)
	for k, ids := range map[string][]reference.ID{"big": {1, 2, 3}, "ok": {4, 5}} {
		for _, id := range ids {
			x.Add(k, id)
		}
	}
	var before []reference.ID
	x.Pairs(func(a, b reference.ID) { before = append(before, a, b) })
	skipped := x.SkippedBuckets()
	for i := 0; i < 3; i++ {
		x.Candidates([]string{"big", "ok"})
	}
	if got := x.SkippedBuckets(); got != skipped {
		t.Errorf("SkippedBuckets changed by Candidates: %d -> %d", skipped, got)
	}
	var after []reference.ID
	x.Pairs(func(a, b reference.ID) { after = append(after, a, b) })
	if len(before) != len(after) {
		t.Fatalf("Pairs output changed after Candidates")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Pairs output changed after Candidates")
		}
	}
}
