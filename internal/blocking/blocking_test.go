package blocking

import (
	"testing"

	"refrecon/internal/reference"
)

func collect(x *Index) map[[2]reference.ID]bool {
	out := make(map[[2]reference.ID]bool)
	x.Pairs(func(a, b reference.ID) {
		if a >= b {
			panic("pair not ordered")
		}
		out[[2]reference.ID{a, b}] = true
	})
	return out
}

func TestPairsBasic(t *testing.T) {
	x := New(0)
	x.Add("k", 1)
	x.Add("k", 2)
	x.Add("k", 3)
	got := collect(x)
	want := [][2]reference.ID{{1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v", got)
	}
	for _, p := range want {
		if !got[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

func TestPairsDedupAcrossKeys(t *testing.T) {
	x := New(0)
	x.Add("k1", 1)
	x.Add("k1", 2)
	x.Add("k2", 1)
	x.Add("k2", 2)
	count := 0
	x.Pairs(func(a, b reference.ID) { count++ })
	if count != 1 {
		t.Errorf("pair emitted %d times, want 1", count)
	}
}

func TestPairsDedupWithinBucket(t *testing.T) {
	x := New(0)
	x.Add("k", 1)
	x.Add("k", 1)
	x.Add("k", 2)
	count := 0
	x.Pairs(func(a, b reference.ID) { count++ })
	if count != 1 {
		t.Errorf("pairs = %d, want 1", count)
	}
}

func TestBucketCap(t *testing.T) {
	x := New(2)
	x.Add("huge", 1)
	x.Add("huge", 2)
	x.Add("huge", 3)
	x.Add("ok", 4)
	x.Add("ok", 5)
	got := collect(x)
	if len(got) != 1 || !got[[2]reference.ID{4, 5}] {
		t.Errorf("pairs = %v, want only (4,5)", got)
	}
	if x.SkippedBuckets() != 1 {
		t.Errorf("SkippedBuckets = %d", x.SkippedBuckets())
	}
}

func TestEmptyKeyIgnored(t *testing.T) {
	x := New(0)
	x.Add("", 1)
	x.Add("", 2)
	if len(collect(x)) != 0 {
		t.Error("empty key should be ignored")
	}
	if x.Keys() != 0 {
		t.Errorf("Keys = %d", x.Keys())
	}
}

func TestDeterministicOrder(t *testing.T) {
	build := func() []reference.ID {
		x := New(0)
		x.Add("b", 3)
		x.Add("b", 1)
		x.Add("a", 5)
		x.Add("a", 2)
		var seq []reference.ID
		x.Pairs(func(a, b reference.ID) { seq = append(seq, a, b) })
		return seq
	}
	first := build()
	for i := 0; i < 5; i++ {
		again := build()
		if len(again) != len(first) {
			t.Fatal("nondeterministic pair count")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("nondeterministic pair order")
			}
		}
	}
}
