package blocking

import (
	"sort"

	"refrecon/internal/reference"
)

// CanopyItem is one reference with the token signature its cheap distance
// is computed over.
type CanopyItem struct {
	ID     reference.ID
	Tokens []string
}

// Canopies implements the canopy clustering of McCallum, Nigam & Ungar
// (the paper's reference [27]): items are grouped under a *cheap* distance
// (Jaccard over token signatures) using two thresholds. Starting from the
// first unconsumed item, every item with similarity >= loose joins the
// canopy; items with similarity >= tight are consumed and cannot seed
// further canopies. Canopies overlap, which is the point: the expensive
// comparison then runs only on pairs sharing a canopy.
//
// fn is invoked for every distinct unordered pair (a < b) sharing at least
// one canopy, in deterministic order. Requires tight >= loose to
// guarantee progress; items with empty token signatures form singleton
// canopies and pair with nothing.
func Canopies(items []CanopyItem, loose, tight float64, fn func(a, b reference.ID)) {
	if tight < loose {
		tight = loose
	}
	n := len(items)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return items[order[i]].ID < items[order[j]].ID })

	sets := make([]map[string]bool, n)
	for i, it := range items {
		if len(it.Tokens) > 0 {
			s := make(map[string]bool, len(it.Tokens))
			for _, t := range it.Tokens {
				s[t] = true
			}
			sets[i] = s
		}
	}
	jac := func(a, b int) float64 {
		sa, sb := sets[a], sets[b]
		if len(sa) == 0 || len(sb) == 0 {
			return 0
		}
		if len(sb) < len(sa) {
			sa, sb = sb, sa
		}
		inter := 0
		for t := range sa {
			if sb[t] {
				inter++
			}
		}
		return float64(inter) / float64(len(sa)+len(sb)-inter)
	}

	consumed := make([]bool, n)
	seen := make(map[uint64]bool)
	emit := func(a, b reference.ID) {
		if a == b {
			return
		}
		if b < a {
			a, b = b, a
		}
		pk := uint64(a)<<32 | uint64(uint32(b))
		if seen[pk] {
			return
		}
		seen[pk] = true
		fn(a, b)
	}
	for _, seed := range order {
		if consumed[seed] {
			continue
		}
		consumed[seed] = true
		canopy := []int{seed}
		for _, cand := range order {
			if cand == seed {
				continue
			}
			s := jac(seed, cand)
			if s >= loose {
				canopy = append(canopy, cand)
				if s >= tight {
					consumed[cand] = true
				}
			}
		}
		for i := 0; i < len(canopy); i++ {
			for j := i + 1; j < len(canopy); j++ {
				emit(items[canopy[i]].ID, items[canopy[j]].ID)
			}
		}
	}
}
