package blocking

import (
	"testing"

	"refrecon/internal/reference"
)

func canopyPairs(items []CanopyItem, loose, tight float64) map[[2]reference.ID]bool {
	out := make(map[[2]reference.ID]bool)
	Canopies(items, loose, tight, func(a, b reference.ID) {
		out[[2]reference.ID{a, b}] = true
	})
	return out
}

func TestCanopiesBasic(t *testing.T) {
	items := []CanopyItem{
		{0, []string{"michael", "stonebraker"}},
		{1, []string{"stonebraker", "m"}},
		{2, []string{"eugene", "wong"}},
		{3, []string{"wong", "e"}},
	}
	got := canopyPairs(items, 0.3, 0.8)
	if !got[[2]reference.ID{0, 1}] {
		t.Error("stonebraker pair missing")
	}
	if !got[[2]reference.ID{2, 3}] {
		t.Error("wong pair missing")
	}
	if got[[2]reference.ID{0, 2}] || got[[2]reference.ID{1, 3}] {
		t.Errorf("cross-cluster pair emitted: %v", got)
	}
}

func TestCanopiesOverlap(t *testing.T) {
	// An item loosely similar to two tight clusters joins both canopies,
	// pairing with members of each — the overlap that makes canopies safe.
	items := []CanopyItem{
		{0, []string{"a", "b", "c", "d"}},
		{1, []string{"a", "b", "c", "d"}},
		{2, []string{"e", "f", "g", "h"}},
		{3, []string{"e", "f", "g", "h"}},
		{4, []string{"a", "b", "e", "f"}}, // straddles both
	}
	got := canopyPairs(items, 0.25, 0.9)
	if !got[[2]reference.ID{0, 4}] || !got[[2]reference.ID{2, 4}] {
		t.Errorf("straddler should pair into both canopies: %v", got)
	}
	if !got[[2]reference.ID{0, 1}] || !got[[2]reference.ID{2, 3}] {
		t.Errorf("tight clusters should pair internally: %v", got)
	}
}

func TestCanopiesEmptySignatures(t *testing.T) {
	items := []CanopyItem{
		{0, nil},
		{1, []string{"x"}},
		{2, nil},
	}
	got := canopyPairs(items, 0.3, 0.8)
	if len(got) != 0 {
		t.Errorf("empty signatures must pair with nothing: %v", got)
	}
}

func TestCanopiesTightBelowLooseClamped(t *testing.T) {
	items := []CanopyItem{
		{0, []string{"a"}},
		{1, []string{"a"}},
	}
	// tight < loose would loop forever without clamping.
	got := canopyPairs(items, 0.5, 0.1)
	if !got[[2]reference.ID{0, 1}] {
		t.Errorf("pairs = %v", got)
	}
}

func TestCanopiesDeterministic(t *testing.T) {
	items := []CanopyItem{
		{5, []string{"x", "y"}},
		{3, []string{"x", "y", "z"}},
		{9, []string{"x"}},
		{1, []string{"q"}},
	}
	run := func() []reference.ID {
		var seq []reference.ID
		Canopies(items, 0.2, 0.8, func(a, b reference.ID) { seq = append(seq, a, b) })
		return seq
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("expected pairs")
	}
	for i := 0; i < 4; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic count")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("nondeterministic order")
			}
		}
	}
}
