package strsim

import (
	"sync"

	"refrecon/internal/tokenizer"
)

// The comparators in this package run inside the propagation engine's
// serial loop (enrichment re-comparisons) and inside the parallel
// construction workers, so their per-call garbage is pure overhead. Every
// hot path borrows a scratch struct from a pool instead of allocating rune
// conversions, DP rows, and match flags per call; after the first few
// calls the buffers reach a steady capacity and the comparators allocate
// nothing (the alloc regression tests pin this at exactly zero).

// scratch aggregates the reusable buffers of one comparator invocation.
// Each comparator borrows one scratch for its entire computation, so the
// fields cover the union of the hot paths' needs: two rune buffers for the
// (normalized) inputs, three DP rows, two match-flag rows, and two gram
// index lists.
type scratch struct {
	ra, rb           []rune
	row0, row1, row2 []int
	am, bm           []bool
	ia, ib           []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// appendRunes appends the raw runes of s to dst.
func appendRunes(dst []rune, s string) []rune {
	for _, r := range s {
		dst = append(dst, r)
	}
	return dst
}

// intRow returns *buf resized to n entries without zeroing (callers
// initialize the row themselves); the backing array grows monotonically
// and is reused across calls.
func intRow(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// boolRow returns *buf resized to n cleared entries.
func boolRow(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	row := (*buf)[:n]
	for i := range row {
		row[i] = false
	}
	return row
}

// appendPaddedGrams appends the '#'-padded normalized rune sequence of s
// for n-gram extraction (n-1 pad runes each side, mirroring
// tokenizer.NGrams). An input that normalizes to nothing yields an empty
// buffer: no grams.
func appendPaddedGrams(dst []rune, s string, n int) []rune {
	for i := 0; i < n-1; i++ {
		dst = append(dst, '#')
	}
	mark := len(dst)
	dst = tokenizer.AppendNormalizedRunes(dst, s)
	if len(dst) == mark {
		return dst[:0]
	}
	for i := 0; i < n-1; i++ {
		dst = append(dst, '#')
	}
	return dst
}

// cmpWin lexicographically compares two rune windows of equal length.
func cmpWin(x, y []rune) int {
	for i := range x {
		switch {
		case x[i] < y[i]:
			return -1
		case x[i] > y[i]:
			return 1
		}
	}
	return 0
}

// sortGramIdx heap-sorts gram start offsets by their rune windows. A
// hand-rolled heapsort keeps the hot path free of the interface and
// closure allocations of the sort package's reflection-based entry points.
func sortGramIdx(idx []int32, buf []rune, n int) {
	less := func(a, b int32) bool {
		return cmpWin(buf[a:int(a)+n], buf[b:int(b)+n]) < 0
	}
	siftDown := func(root, hi int) {
		for {
			child := 2*root + 1
			if child >= hi {
				return
			}
			if child+1 < hi && less(idx[child], idx[child+1]) {
				child++
			}
			if !less(idx[root], idx[child]) {
				return
			}
			idx[root], idx[child] = idx[child], idx[root]
			root = child
		}
	}
	for i := len(idx)/2 - 1; i >= 0; i-- {
		siftDown(i, len(idx))
	}
	for i := len(idx) - 1; i > 0; i-- {
		idx[0], idx[i] = idx[i], idx[0]
		siftDown(0, i)
	}
}

// dedupGramIdx removes adjacent duplicate grams from a sorted index list.
func dedupGramIdx(idx []int32, buf []rune, n int) []int32 {
	if len(idx) == 0 {
		return idx
	}
	w := 1
	for i := 1; i < len(idx); i++ {
		if cmpWin(buf[idx[i]:int(idx[i])+n], buf[idx[w-1]:int(idx[w-1])+n]) != 0 {
			idx[w] = idx[i]
			w++
		}
	}
	return idx[:w]
}
