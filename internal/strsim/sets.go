package strsim

import (
	"math"
	"slices"
	"sort"
	"sync"

	"refrecon/internal/tokenizer"
)

// tokenSet sorts and deduplicates a freshly produced token slice in place,
// yielding a sorted-set representation. Merge joins over two such sets
// replace the map-based set operations this package used to build per call.
func tokenSet(toks []string) []string {
	slices.Sort(toks)
	return slices.Compact(toks)
}

// sortedIntersection counts the common elements of two sorted deduped sets.
func sortedIntersection(a, b []string) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

func sortedJaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := sortedIntersection(a, b)
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// JaccardTokens returns |A ∩ B| / |A ∪ B| over the word-token sets of a and
// b. Two strings with no tokens at all are considered identical.
func JaccardTokens(a, b string) float64 {
	return sortedJaccard(tokenSet(tokenizer.Words(a)), tokenSet(tokenizer.Words(b)))
}

// JaccardContentTokens is JaccardTokens over stopword-filtered tokens,
// appropriate for titles and venue names.
func JaccardContentTokens(a, b string) float64 {
	return sortedJaccard(tokenSet(tokenizer.ContentWords(a)), tokenSet(tokenizer.ContentWords(b)))
}

// DiceTokens returns the Sørensen–Dice coefficient 2|A∩B| / (|A|+|B|) over
// word-token sets.
func DiceTokens(a, b string) float64 {
	sa, sb := tokenSet(tokenizer.Words(a)), tokenSet(tokenizer.Words(b))
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := sortedIntersection(sa, sb)
	return 2 * float64(inter) / float64(len(sa)+len(sb))
}

// OverlapTokens returns |A ∩ B| / min(|A|,|B|) over word-token sets. It is
// forgiving of containment: "ACM SIGMOD" vs "SIGMOD" scores 1.
func OverlapTokens(a, b string) float64 {
	sa, sb := tokenSet(tokenizer.Words(a)), tokenSet(tokenizer.Words(b))
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := sortedIntersection(sa, sb)
	m := len(sa)
	if len(sb) < m {
		m = len(sb)
	}
	return float64(inter) / float64(m)
}

// NGramSim returns the Jaccard similarity of the character n-gram multiset
// signatures of a and b (computed as sets for robustness). Bigrams (n=2)
// and trigrams (n=3) are the usual choices. The grams never materialize as
// strings: both inputs are normalized into pooled rune buffers and the
// distinct-gram sets are represented as sorted window offsets, so the
// comparison is allocation-free in steady state.
func NGramSim(a, b string, n int) float64 {
	if n <= 0 {
		return 1
	}
	sc := getScratch()
	sc.ra = appendPaddedGrams(sc.ra[:0], a, n)
	sc.rb = appendPaddedGrams(sc.rb[:0], b, n)
	ga, gb := sc.ra, sc.rb

	sc.ia = gramIndexes(sc.ia[:0], len(ga), n)
	sc.ib = gramIndexes(sc.ib[:0], len(gb), n)
	sortGramIdx(sc.ia, ga, n)
	sortGramIdx(sc.ib, gb, n)
	ia := dedupGramIdx(sc.ia, ga, n)
	ib := dedupGramIdx(sc.ib, gb, n)

	var s float64
	switch {
	case len(ia) == 0 && len(ib) == 0:
		s = 1
	case len(ia) == 0 || len(ib) == 0:
		s = 0
	default:
		inter, i, j := 0, 0, 0
		for i < len(ia) && j < len(ib) {
			switch cmpWin(ga[ia[i]:int(ia[i])+n], gb[ib[j]:int(ib[j])+n]) {
			case 0:
				inter++
				i++
				j++
			case -1:
				i++
			default:
				j++
			}
		}
		s = float64(inter) / float64(len(ia)+len(ib)-inter)
	}
	putScratch(sc)
	return s
}

// gramIndexes appends the start offset of every n-rune window of a padded
// buffer of the given length.
func gramIndexes(dst []int32, bufLen, n int) []int32 {
	for i := 0; i+n <= bufLen; i++ {
		dst = append(dst, int32(i))
	}
	return dst
}

// TrigramSim is NGramSim with n = 3, the configuration used by the
// reconciler for generic atomic strings.
func TrigramSim(a, b string) float64 { return NGramSim(a, b, 3) }

func toSet(toks []string) map[string]bool {
	if len(toks) == 0 {
		return nil
	}
	s := make(map[string]bool, len(toks))
	for _, t := range toks {
		s[t] = true
	}
	return s
}

// MongeElkan computes the Monge-Elkan hybrid similarity: for each token of
// the shorter token list, the best inner similarity against the other
// list's tokens is found, and the scores are averaged. The inner comparator
// defaults to JaroWinkler when inner is nil. Monge-Elkan tolerates token
// reordering and per-token typos simultaneously, which suits multi-word
// names and venue strings.
func MongeElkan(a, b string, inner func(string, string) float64) float64 {
	if inner == nil {
		inner = JaroWinkler
	}
	ta, tb := tokenizer.Words(a), tokenizer.Words(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	// Symmetrize: average of both directions, so the measure stays
	// symmetric like every other comparator in this package. Clamp: a
	// caller-supplied inner comparator may stray outside [0,1].
	return clamp01((mongeElkanDir(ta, tb, inner) + mongeElkanDir(tb, ta, inner)) / 2)
}

func mongeElkanDir(ta, tb []string, inner func(string, string) float64) float64 {
	sum := 0.0
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := inner(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// Corpus accumulates document frequencies for TF-IDF weighted comparisons.
// Add every string of a comparable population (e.g. all article titles)
// before querying CosineSim. The zero value is not usable; construct with
// NewCorpus. Corpus is not safe for concurrent mutation, but concurrent
// readers (CosineSim, IDF) are safe as long as no Add runs alongside them.
type Corpus struct {
	docFreq map[string]int
	docs    int

	// gen counts mutations; cached document vectors computed under an
	// older generation are discarded, since IDF weights shift with every
	// Add.
	gen uint64
	// vecs memoizes per-document TF-IDF vectors (with their norms) so that
	// a string compared against many counterparts is vectorized once. It
	// is lock-guarded: the reconciler scores candidate pairs from multiple
	// goroutines.
	vecMu  sync.RWMutex
	vecGen uint64
	vecs   map[string]tfidfVec
}

// vecCap bounds the vector memo; a full memo is reset wholesale (the
// distinct-document population of one dataset sits far below the bound).
const vecCap = 1 << 15

// tfidfVec is a memoized document vector with its precomputed L2 norm.
// Tokens are sorted, so dot products and norms accumulate in a fixed
// order — floating-point results are identical across runs and worker
// counts (a map-ordered sum would vary in the last ulp).
type tfidfVec struct {
	toks []string
	w    []float64
	norm float64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{docFreq: make(map[string]int)}
}

// Add registers one document's token set in the corpus statistics.
func (c *Corpus) Add(s string) {
	c.docs++
	c.gen++
	for t := range toSet(tokenizer.ContentWords(s)) {
		c.docFreq[t]++
	}
}

// Gen returns the corpus mutation generation; callers caching results that
// depend on corpus statistics key them by this value.
func (c *Corpus) Gen() uint64 { return c.gen }

// Docs returns the number of documents added.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of the (normalized)
// token t: log(1 + (N+1)/(df+1)). Rare tokens score high; tokens absent
// from the corpus score highest.
func (c *Corpus) IDF(t string) float64 { return c.idf(t) }

// idf returns the smoothed inverse document frequency of token t.
func (c *Corpus) idf(t string) float64 {
	df := c.docFreq[t]
	return math.Log(1 + float64(c.docs+1)/float64(df+1))
}

// CosineSim returns the TF-IDF weighted cosine similarity of a and b under
// the corpus statistics. Rare tokens (high IDF) dominate the score, so two
// titles agreeing on distinctive words match strongly even if they disagree
// on common ones. With an empty corpus it degrades to unweighted cosine.
func (c *Corpus) CosineSim(a, b string) float64 {
	if a == b {
		// dot and norm² accumulate the same products in different orders;
		// a self-comparison can land one ulp below 1, which matters to
		// consumers gating on the exact value-pair threshold of 1.
		return 1
	}
	va := c.vectorCached(a)
	vb := c.vectorCached(b)
	if len(va.w) == 0 && len(vb.w) == 0 {
		return 1
	}
	if len(va.w) == 0 || len(vb.w) == 0 {
		return 0
	}
	// Merge join over the sorted token lists: deterministic accumulation
	// order, no map lookups.
	dot := 0.0
	i, j := 0, 0
	for i < len(va.toks) && j < len(vb.toks) {
		switch {
		case va.toks[i] == vb.toks[j]:
			dot += va.w[i] * vb.w[j]
			i++
			j++
		case va.toks[i] < vb.toks[j]:
			i++
		default:
			j++
		}
	}
	denom := va.norm * vb.norm
	if denom == 0 {
		return 0
	}
	// Rounding can push a self-comparison one ulp above 1 (dot and norm²
	// accumulate the same products in different orders); downstream
	// consumers require similarities in [0,1] exactly.
	return clamp01(dot / denom)
}

// clamp01 forces a similarity into [0,1], mapping NaN to 0.
func clamp01(s float64) float64 {
	switch {
	case s > 1:
		return 1
	case s >= 0:
		return s
	default: // negative or NaN
		return 0
	}
}

// vectorCached returns the memoized TF-IDF vector of s under the current
// corpus generation, computing and recording it on a miss. Memoized
// vectors are shared across goroutines and must be treated as immutable.
func (c *Corpus) vectorCached(s string) tfidfVec {
	c.vecMu.RLock()
	if c.vecGen == c.gen {
		if v, ok := c.vecs[s]; ok {
			c.vecMu.RUnlock()
			return v
		}
	}
	c.vecMu.RUnlock()
	v := c.buildVector(s)
	c.vecMu.Lock()
	if c.vecGen != c.gen || c.vecs == nil || len(c.vecs) >= vecCap {
		c.vecs = make(map[string]tfidfVec, 256)
		c.vecGen = c.gen
	}
	c.vecs[s] = v
	c.vecMu.Unlock()
	return v
}

// buildVector computes the sorted TF-IDF vector of one document.
func (c *Corpus) buildVector(s string) tfidfVec {
	toks := tokenizer.ContentWords(s)
	if len(toks) == 0 {
		return tfidfVec{}
	}
	tf := make(map[string]float64, len(toks))
	for _, t := range toks {
		tf[t]++
	}
	v := tfidfVec{
		toks: make([]string, 0, len(tf)),
		w:    make([]float64, 0, len(tf)),
	}
	for t := range tf {
		v.toks = append(v.toks, t)
	}
	sort.Strings(v.toks)
	n := 0.0
	for _, t := range v.toks {
		w := tf[t] * c.idf(t)
		v.w = append(v.w, w)
		n += w * w
	}
	v.norm = math.Sqrt(n)
	return v
}

// TopTokens returns the n most frequent tokens in the corpus, primarily for
// diagnostics. Ties break lexicographically.
func (c *Corpus) TopTokens(n int) []string {
	type tf struct {
		tok string
		n   int
	}
	all := make([]tf, 0, len(c.docFreq))
	for t, f := range c.docFreq {
		all = append(all, tf{t, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].tok < all[j].tok
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].tok
	}
	return out
}
