package strsim

import (
	"math"
	"sort"

	"refrecon/internal/tokenizer"
)

// JaccardTokens returns |A ∩ B| / |A ∪ B| over the word-token sets of a and
// b. Two strings with no tokens at all are considered identical.
func JaccardTokens(a, b string) float64 {
	return jaccard(toSet(tokenizer.Words(a)), toSet(tokenizer.Words(b)))
}

// JaccardContentTokens is JaccardTokens over stopword-filtered tokens,
// appropriate for titles and venue names.
func JaccardContentTokens(a, b string) float64 {
	return jaccard(toSet(tokenizer.ContentWords(a)), toSet(tokenizer.ContentWords(b)))
}

// DiceTokens returns the Sørensen–Dice coefficient 2|A∩B| / (|A|+|B|) over
// word-token sets.
func DiceTokens(a, b string) float64 {
	sa, sb := toSet(tokenizer.Words(a)), toSet(tokenizer.Words(b))
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := intersectionSize(sa, sb)
	return 2 * float64(inter) / float64(len(sa)+len(sb))
}

// OverlapTokens returns |A ∩ B| / min(|A|,|B|) over word-token sets. It is
// forgiving of containment: "ACM SIGMOD" vs "SIGMOD" scores 1.
func OverlapTokens(a, b string) float64 {
	sa, sb := toSet(tokenizer.Words(a)), toSet(tokenizer.Words(b))
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := intersectionSize(sa, sb)
	m := len(sa)
	if len(sb) < m {
		m = len(sb)
	}
	return float64(inter) / float64(m)
}

// NGramSim returns the Jaccard similarity of the character n-gram multiset
// signatures of a and b (computed as sets for robustness). Bigrams (n=2)
// and trigrams (n=3) are the usual choices.
func NGramSim(a, b string, n int) float64 {
	return jaccard(toSet(tokenizer.NGrams(a, n)), toSet(tokenizer.NGrams(b, n)))
}

// TrigramSim is NGramSim with n = 3, the configuration used by the
// reconciler for generic atomic strings.
func TrigramSim(a, b string) float64 { return NGramSim(a, b, 3) }

func toSet(toks []string) map[string]bool {
	if len(toks) == 0 {
		return nil
	}
	s := make(map[string]bool, len(toks))
	for _, t := range toks {
		s[t] = true
	}
	return s
}

func intersectionSize(a, b map[string]bool) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for t := range a {
		if b[t] {
			n++
		}
	}
	return n
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := intersectionSize(a, b)
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// MongeElkan computes the Monge-Elkan hybrid similarity: for each token of
// the shorter token list, the best inner similarity against the other
// list's tokens is found, and the scores are averaged. The inner comparator
// defaults to JaroWinkler when inner is nil. Monge-Elkan tolerates token
// reordering and per-token typos simultaneously, which suits multi-word
// names and venue strings.
func MongeElkan(a, b string, inner func(string, string) float64) float64 {
	if inner == nil {
		inner = JaroWinkler
	}
	ta, tb := tokenizer.Words(a), tokenizer.Words(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	// Symmetrize: average of both directions, so the measure stays
	// symmetric like every other comparator in this package.
	return (mongeElkanDir(ta, tb, inner) + mongeElkanDir(tb, ta, inner)) / 2
}

func mongeElkanDir(ta, tb []string, inner func(string, string) float64) float64 {
	sum := 0.0
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := inner(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// Corpus accumulates document frequencies for TF-IDF weighted comparisons.
// Add every string of a comparable population (e.g. all article titles)
// before querying CosineSim. The zero value is not usable; construct with
// NewCorpus. Corpus is not safe for concurrent mutation.
type Corpus struct {
	docFreq map[string]int
	docs    int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{docFreq: make(map[string]int)}
}

// Add registers one document's token set in the corpus statistics.
func (c *Corpus) Add(s string) {
	c.docs++
	for t := range toSet(tokenizer.ContentWords(s)) {
		c.docFreq[t]++
	}
}

// Docs returns the number of documents added.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of the (normalized)
// token t: log(1 + (N+1)/(df+1)). Rare tokens score high; tokens absent
// from the corpus score highest.
func (c *Corpus) IDF(t string) float64 { return c.idf(t) }

// idf returns the smoothed inverse document frequency of token t.
func (c *Corpus) idf(t string) float64 {
	df := c.docFreq[t]
	return math.Log(1 + float64(c.docs+1)/float64(df+1))
}

// CosineSim returns the TF-IDF weighted cosine similarity of a and b under
// the corpus statistics. Rare tokens (high IDF) dominate the score, so two
// titles agreeing on distinctive words match strongly even if they disagree
// on common ones. With an empty corpus it degrades to unweighted cosine.
func (c *Corpus) CosineSim(a, b string) float64 {
	va := c.vector(a)
	vb := c.vector(b)
	if len(va) == 0 && len(vb) == 0 {
		return 1
	}
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	dot := 0.0
	for t, wa := range va {
		if wb, ok := vb[t]; ok {
			dot += wa * wb
		}
	}
	return dot / (norm(va) * norm(vb))
}

func (c *Corpus) vector(s string) map[string]float64 {
	toks := tokenizer.ContentWords(s)
	if len(toks) == 0 {
		return nil
	}
	tf := make(map[string]float64, len(toks))
	for _, t := range toks {
		tf[t]++
	}
	for t, f := range tf {
		tf[t] = f * c.idf(t)
	}
	return tf
}

func norm(v map[string]float64) float64 {
	s := 0.0
	for _, w := range v {
		s += w * w
	}
	return math.Sqrt(s)
}

// TopTokens returns the n most frequent tokens in the corpus, primarily for
// diagnostics. Ties break lexicographically.
func (c *Corpus) TopTokens(n int) []string {
	type tf struct {
		tok string
		n   int
	}
	all := make([]tf, 0, len(c.docFreq))
	for t, f := range c.docFreq {
		all = append(all, tf{t, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].tok < all[j].tok
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].tok
	}
	return out
}
