package strsim

import (
	"testing"
	"testing/quick"
)

func TestSoundexKnownCodes(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"}, // h does not reset adjacency
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"Washington", "W252"},
		{"Lee", "L000"},
		{"Gutierrez", "G362"},
		{"Jackson", "J250"},
		{"", ""},
		{"123", ""},
		{"Stonebraker, M.", Soundex("Stonebraker")}, // first token only
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSoundexEqual(t *testing.T) {
	if !SoundexEqual("Smith", "Smyth") {
		t.Error("Smith/Smyth should collide")
	}
	if SoundexEqual("Smith", "Jones") {
		t.Error("Smith/Jones should not collide")
	}
	if SoundexEqual("", "") {
		t.Error("empty inputs should not be equal")
	}
}

func TestSoundexShape(t *testing.T) {
	f := func(s string) bool {
		c := Soundex(s)
		if c == "" {
			return true
		}
		if len(c) != 4 {
			return false
		}
		if c[0] < 'A' || c[0] > 'Z' {
			return false
		}
		for _, d := range c[1:] {
			if d < '0' || d > '6' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNYSIISCollisions(t *testing.T) {
	// The point of a phonetic key is that spelling variants collide.
	pairs := [][2]string{
		{"Knight", "Night"},
		{"Phillips", "Filips"},
		{"Diaz", "Dias"},
		{"MacDonald", "McDonald"},
	}
	for _, p := range pairs {
		if NYSIIS(p[0]) != NYSIIS(p[1]) {
			t.Errorf("NYSIIS(%q)=%q should equal NYSIIS(%q)=%q", p[0], NYSIIS(p[0]), p[1], NYSIIS(p[1]))
		}
	}
	if NYSIIS("Smith") == NYSIIS("Jones") {
		t.Error("distinct names should not collide")
	}
	if NYSIIS("") != "" || NYSIIS("42") != "" {
		t.Error("letterless input should give empty key")
	}
}

func TestNYSIISDeterministicNonEmpty(t *testing.T) {
	f := func(s string) bool { return NYSIIS(s) == NYSIIS(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
