package strsim

import "refrecon/internal/tokenizer"

// Jaro returns the Jaro similarity of the normalized forms of a and b.
// Jaro similarity counts matching runes within a sliding window of half the
// longer string's length and penalizes transpositions; it behaves well on
// short strings such as personal names, which is why it (and its Winkler
// extension) is the de-facto standard comparator in record linkage.
func Jaro(a, b string) float64 {
	sc := getScratch()
	sc.ra = tokenizer.AppendNormalizedRunes(sc.ra[:0], a)
	sc.rb = tokenizer.AppendNormalizedRunes(sc.rb[:0], b)
	s := jaroScratch(sc, sc.ra, sc.rb)
	putScratch(sc)
	return s
}

func jaroScratch(sc *scratch, ra, rb []rune) float64 {
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	aMatched := boolRow(&sc.am, la)
	bMatched := boolRow(&sc.bm, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if bMatched[j] || ra[i] != rb[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between the matched subsequences.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts the Jaro similarity for strings that share a common
// prefix of up to four runes, using the standard scaling factor p = 0.1.
func JaroWinkler(a, b string) float64 {
	return JaroWinklerP(a, b, 0.1)
}

// JaroWinklerP is JaroWinkler with an explicit prefix scale p. The result
// is clamped to [0, 1]; p values above 0.25 would allow scores over 1 and
// are capped.
func JaroWinklerP(a, b string, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 0.25 {
		p = 0.25
	}
	sc := getScratch()
	sc.ra = tokenizer.AppendNormalizedRunes(sc.ra[:0], a)
	sc.rb = tokenizer.AppendNormalizedRunes(sc.rb[:0], b)
	ra, rb := sc.ra, sc.rb
	j := jaroScratch(sc, ra, rb)
	l := 0
	for l < len(ra) && l < len(rb) && l < 4 && ra[l] == rb[l] {
		l++
	}
	putScratch(sc)
	s := j + float64(l)*p*(1-j)
	if s > 1 {
		s = 1
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
