package strsim

import (
	"refrecon/internal/tokenizer"
)

// SmithWaterman returns the local-alignment similarity of the normalized
// forms of a and b, in [0,1]: the best-scoring contiguous alignment
// (match +2, mismatch -1, gap -1) divided by the maximum possible score
// (2 x the shorter length). Local alignment excels when one string embeds
// a distorted copy of the other ("Dept. of Computer Science, Stanford"
// vs "Stanford Computer Science Department").
func SmithWaterman(a, b string) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = tokenizer.AppendNormalizedRunes(sc.ra[:0], a)
	sc.rb = tokenizer.AppendNormalizedRunes(sc.rb[:0], b)
	ra, rb := sc.ra, sc.rb
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	const (
		match    = 2
		mismatch = -1
		gap      = -1
	)
	prev := intRow(&sc.row0, len(rb)+1)
	cur := intRow(&sc.row1, len(rb)+1)
	for j := range prev {
		prev[j] = 0
	}
	for j := range cur {
		cur[j] = 0
	}
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			sub := mismatch
			if ra[i-1] == rb[j-1] {
				sub = match
			}
			v := prev[j-1] + sub
			if x := prev[j] + gap; x > v {
				v = x
			}
			if x := cur[j-1] + gap; x > v {
				v = x
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	short := len(ra)
	if len(rb) < short {
		short = len(rb)
	}
	return float64(best) / float64(match*short)
}

// NeedlemanWunsch returns the global-alignment similarity of the
// normalized forms of a and b, in [0,1]: the optimal end-to-end alignment
// score (match +1, mismatch -1, gap -1) rescaled from [-maxLen, maxLen].
// Unlike Levenshtein it rewards matches rather than only counting errors.
func NeedlemanWunsch(a, b string) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = tokenizer.AppendNormalizedRunes(sc.ra[:0], a)
	sc.rb = tokenizer.AppendNormalizedRunes(sc.rb[:0], b)
	ra, rb := sc.ra, sc.rb
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	const (
		match    = 1
		mismatch = -1
		gap      = -1
	)
	prev := intRow(&sc.row0, len(rb)+1)
	cur := intRow(&sc.row1, len(rb)+1)
	for j := range prev {
		prev[j] = j * gap
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i * gap
		for j := 1; j <= len(rb); j++ {
			sub := mismatch
			if ra[i-1] == rb[j-1] {
				sub = match
			}
			v := prev[j-1] + sub
			if x := prev[j] + gap; x > v {
				v = x
			}
			if x := cur[j-1] + gap; x > v {
				v = x
			}
			cur[j] = v
		}
		prev, cur = cur, prev
	}
	score := prev[len(rb)]
	maxLen := len(ra)
	if len(rb) > maxLen {
		maxLen = len(rb)
	}
	return (float64(score) + float64(maxLen)) / (2 * float64(maxLen))
}

// SoftCosine computes the SoftTFIDF-style hybrid of Cohen, Ravikumar and
// Fienberg: TF-IDF cosine where tokens match softly — two tokens count as
// shared when their Jaro-Winkler similarity reaches theta (0.9 in the
// original), weighted by that similarity. It combines token-order
// robustness with per-token typo tolerance and was the best general
// name-matcher in their comparison (the paper's reference [10]).
func (c *Corpus) SoftCosine(a, b string, theta float64) float64 {
	if theta <= 0 {
		theta = 0.9
	}
	if a == b {
		// Same ulp hazard as CosineSim: self-dot and norm² sum the same
		// terms in different orders.
		return 1
	}
	va := c.vectorCached(a)
	vb := c.vectorCached(b)
	if len(va.w) == 0 && len(vb.w) == 0 {
		return 1
	}
	if len(va.w) == 0 || len(vb.w) == 0 {
		return 0
	}
	dot := 0.0
	for i, ta := range va.toks {
		bestSim, bestTok := 0.0, -1
		for j, tb := range vb.toks {
			if s := JaroWinkler(ta, tb); s >= theta && s > bestSim {
				bestSim, bestTok = s, j
			}
		}
		if bestTok >= 0 {
			dot += va.w[i] * vb.w[bestTok] * bestSim
		}
	}
	denom := va.norm * vb.norm
	if denom == 0 {
		return 0
	}
	s := dot / denom
	if s > 1 {
		s = 1
	}
	return s
}
