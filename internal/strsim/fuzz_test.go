package strsim

import (
	"math"
	"testing"

	"refrecon/internal/tokenizer"
)

// FuzzStrsim property-checks every similarity metric in the package: each
// must be symmetric, bounded in [0,1], free of NaN, and score equal inputs
// as 1. The optimized scratch-pooled implementations are additionally
// cross-checked against naive map/matrix references, so a buffer-reuse bug
// cannot silently change scores. Seed corpus in testdata/fuzz/FuzzStrsim/.

// metric names a comparator under test.
type metric struct {
	name string
	fn   func(a, b string) float64
}

func strsimMetrics() []metric {
	// A shared corpus gives the TF-IDF comparators non-trivial weights
	// while staying deterministic across fuzz iterations.
	c := NewCorpus()
	for _, doc := range []string{
		"reference reconciliation in complex information spaces",
		"fast algorithms for mining association rules",
		"a relational model of data for large shared data banks",
	} {
		c.Add(doc)
	}
	return []metric{
		{"Jaro", Jaro},
		{"JaroWinkler", JaroWinkler},
		{"JaroWinklerP0.25", func(a, b string) float64 { return JaroWinklerP(a, b, 0.25) }},
		{"LevenshteinSim", LevenshteinSim},
		{"DamerauSim", DamerauSim},
		{"LCSSim", LCSSim},
		{"PrefixSim", PrefixSim},
		{"SmithWaterman", SmithWaterman},
		{"NeedlemanWunsch", NeedlemanWunsch},
		{"JaccardTokens", JaccardTokens},
		{"JaccardContentTokens", JaccardContentTokens},
		{"DiceTokens", DiceTokens},
		{"OverlapTokens", OverlapTokens},
		{"TrigramSim", TrigramSim},
		{"BigramSim", func(a, b string) float64 { return NGramSim(a, b, 2) }},
		{"MongeElkan", func(a, b string) float64 { return MongeElkan(a, b, nil) }},
		{"CosineSim", c.CosineSim},
		{"SoftCosine", func(a, b string) float64 { return c.SoftCosine(a, b, 0.9) }},
		{"EmptyCorpusCosine", NewCorpus().CosineSim},
	}
}

// naiveLevenshtein is the textbook full-matrix edit distance over raw runes.
func naiveLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	d := make([][]int, len(ra)+1)
	for i := range d {
		d[i] = make([]int, len(rb)+1)
		d[i][0] = i
	}
	for j := 0; j <= len(rb); j++ {
		d[0][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = minInt(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
		}
	}
	return d[len(ra)][len(rb)]
}

// naiveDamerau is the full-matrix optimal-string-alignment distance.
func naiveDamerau(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	d := make([][]int, len(ra)+1)
	for i := range d {
		d[i] = make([]int, len(rb)+1)
		d[i][0] = i
	}
	for j := 0; j <= len(rb); j++ {
		d[0][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = minInt(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[len(ra)][len(rb)]
}

// naiveJaccardTokens recomputes JaccardTokens with map-based sets.
func naiveJaccardTokens(a, b string) float64 {
	sa, sb := toSet(tokenizer.Words(a)), toSet(tokenizer.Words(b))
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}

// naiveNGramSim recomputes NGramSim with materialized gram strings.
func naiveNGramSim(a, b string, n int) float64 {
	sa, sb := toSet(tokenizer.NGrams(a, n)), toSet(tokenizer.NGrams(b, n))
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for g := range sa {
		if sb[g] {
			inter++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}

// naiveJaro recomputes Jaro with freshly allocated match flags, mirroring
// the scratch implementation's arithmetic exactly.
func naiveJaro(a, b string) float64 {
	ra := []rune(tokenizer.Normalize(a))
	rb := []rune(tokenizer.Normalize(b))
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	aM, bM := make([]bool, la), make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo, hi := maxInt(0, i-window), minInt2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if bM[j] || ra[i] != rb[j] {
				continue
			}
			aM[i], bM[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions, j := 0, 0
	for i := 0; i < la; i++ {
		if !aM[i] {
			continue
		}
		for !bM[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

func FuzzStrsim(f *testing.F) {
	f.Add("", "")
	f.Add("stonebraker", "stonebroker")
	f.Add("Michael Stonebraker", "Stonebraker, M.")
	f.Add("Proc. of SIGMOD", "Proceedings of the ACM SIGMOD Conference")
	f.Add("the of and", "a an the") // stopwords only
	f.Add("日本語", "日本")
	f.Add("x", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	f.Fuzz(func(t *testing.T, a, b string) {
		// Very long adversarial inputs make the O(n*m) comparators slow
		// without exercising new code paths.
		if len(a) > 256 || len(b) > 256 {
			t.Skip()
		}
		for _, m := range strsimMetrics() {
			ab, ba := m.fn(a, b), m.fn(b, a)
			if math.IsNaN(ab) || ab < 0 || ab > 1 {
				t.Fatalf("%s(%q, %q) = %v out of [0,1]", m.name, a, b, ab)
			}
			if ab != ba {
				t.Fatalf("%s not symmetric: (%q,%q)=%v but (%q,%q)=%v", m.name, a, b, ab, b, a, ba)
			}
			if self := m.fn(a, a); self != 1 {
				t.Fatalf("%s(%q, %q) = %v, want 1 for equal inputs", m.name, a, a, self)
			}
		}

		// Optimized implementations vs naive references.
		if got, want := Levenshtein(a, b), naiveLevenshtein(a, b); got != want {
			t.Fatalf("Levenshtein(%q, %q) = %d, naive %d", a, b, got, want)
		}
		if got, want := DamerauLevenshtein(a, b), naiveDamerau(a, b); got != want {
			t.Fatalf("DamerauLevenshtein(%q, %q) = %d, naive %d", a, b, got, want)
		}
		if got, want := JaccardTokens(a, b), naiveJaccardTokens(a, b); got != want {
			t.Fatalf("JaccardTokens(%q, %q) = %v, naive %v", a, b, got, want)
		}
		for _, n := range []int{2, 3} {
			if got, want := NGramSim(a, b, n), naiveNGramSim(a, b, n); got != want {
				t.Fatalf("NGramSim(%q, %q, %d) = %v, naive %v", a, b, n, got, want)
			}
		}
		if got, want := Jaro(a, b), naiveJaro(a, b); got != want {
			t.Fatalf("Jaro(%q, %q) = %v, naive %v", a, b, got, want)
		}

		// Distance-family invariants.
		lev := Levenshtein(a, b)
		dam := DamerauLevenshtein(a, b)
		if dam > lev {
			t.Fatalf("Damerau %d exceeds Levenshtein %d for (%q, %q)", dam, lev, a, b)
		}
		if la, lb := len([]rune(a)), len([]rune(b)); lev > maxInt(la, lb) {
			t.Fatalf("Levenshtein %d exceeds max length for (%q, %q)", lev, a, b)
		}

		// Phonetic keys: deterministic shapes, symmetric equality.
		if sx := Soundex(a); sx != "" {
			if len(sx) != 4 || sx[0] < 'A' || sx[0] > 'Z' {
				t.Fatalf("Soundex(%q) = %q, want letter + 3 digits", a, sx)
			}
			for _, c := range sx[1:] {
				if c < '0' || c > '9' {
					t.Fatalf("Soundex(%q) = %q, want letter + 3 digits", a, sx)
				}
			}
		}
		if SoundexEqual(a, b) != SoundexEqual(b, a) {
			t.Fatalf("SoundexEqual not symmetric for (%q, %q)", a, b)
		}
		if k := NYSIIS(a); k != NYSIIS(a) {
			t.Fatalf("NYSIIS(%q) not deterministic: %q", a, k)
		}
	})
}
