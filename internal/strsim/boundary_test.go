package strsim

import (
	"math"
	"testing"
)

// These tests pin the clamp and NaN guards on the similarity outputs at
// their exact boundaries; the cases mirror bugs the FuzzStrsim target and
// the engine's differential harness shook out.

func TestClamp01Boundaries(t *testing.T) {
	cases := []struct {
		in   float64
		want float64
	}{
		{0, 0},
		{1, 1},
		{0.5, 0.5},
		{1 + 1e-16, 1}, // one-ulp TF-IDF overflow, the original bug
		{1.5, 1},
		{-1e-16, 0},
		{-2, 0},
		{math.NaN(), 0},
		{math.Inf(1), 1},
		{math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := clamp01(c.in); got != c.want {
			t.Errorf("clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestCosineSelfComparisonExact pins the FuzzStrsim finding: dot and norm²
// sum the same products in different orders, so without the identity
// short-circuit a self-comparison could land one ulp below 1 — below the
// exact value-pair merge threshold.
func TestCosineSelfComparisonExact(t *testing.T) {
	c := NewCorpus()
	docs := []string{
		"the of and", // the input fuzzing found (multi-token, equal weights)
		"reference reconciliation in complex information spaces",
		"data data data integration",
	}
	for _, d := range docs {
		c.Add(d)
	}
	for _, d := range docs {
		if s := c.CosineSim(d, d); s != 1 {
			t.Errorf("CosineSim(%q, same) = %v, want exactly 1", d, s)
		}
		if s := c.SoftCosine(d, d, 0.9); s != 1 {
			t.Errorf("SoftCosine(%q, same) = %v, want exactly 1", d, s)
		}
	}
}

func TestCosineEmptyVectorBoundaries(t *testing.T) {
	c := NewCorpus()
	c.Add("some corpus content")
	// Token-free strings vectorize to nothing. (All-stopword strings do
	// NOT: ContentWords falls back to the full token list so that short
	// values like "of" stay comparable.)
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"...", "!!! ---", 1}, // both token-free: empty vs empty
		{"", "real title", 0},
		{"...", "real title", 0},
		{"the a an", "of in", 0}, // stopword fallback: disjoint token sets
	}
	for _, cs := range cases {
		if got := c.CosineSim(cs.a, cs.b); got != cs.want {
			t.Errorf("CosineSim(%q, %q) = %v, want %v", cs.a, cs.b, got, cs.want)
		}
		if got := c.SoftCosine(cs.a, cs.b, 0.9); got != cs.want {
			t.Errorf("SoftCosine(%q, %q) = %v, want %v", cs.a, cs.b, got, cs.want)
		}
	}
}

// TestMongeElkanHostileInner: a caller-supplied inner comparator that
// strays outside [0,1] (or returns NaN) must not leak through.
func TestMongeElkanHostileInner(t *testing.T) {
	over := func(a, b string) float64 { return 1.5 }
	if s := MongeElkan("alpha beta", "alpha beta", over); s != 1 {
		t.Errorf("MongeElkan with inner>1 = %v, want clamped 1", s)
	}
	nan := func(a, b string) float64 { return math.NaN() }
	if s := MongeElkan("alpha", "beta", nan); s != 0 {
		t.Errorf("MongeElkan with NaN inner = %v, want 0", s)
	}
	neg := func(a, b string) float64 { return -0.5 }
	if s := MongeElkan("alpha", "beta", neg); s != 0 {
		t.Errorf("MongeElkan with negative inner = %v, want 0", s)
	}
	// Zero-token inputs bypass the inner comparator entirely.
	if s := MongeElkan("", "", nan); s != 1 {
		t.Errorf("MongeElkan empty/empty = %v, want 1", s)
	}
	if s := MongeElkan("", "x", nan); s != 0 {
		t.Errorf("MongeElkan empty/non-empty = %v, want 0", s)
	}
}

func TestJaroWinklerPrefixBoundaries(t *testing.T) {
	// The Winkler boost counts at most 4 prefix runes; p is capped at 0.25
	// so the boost can never push the score past 1.
	long := "aaaaaaaaaa"
	if s := JaroWinklerP(long, long+"b", 0.25); s > 1 {
		t.Errorf("shared 10-rune prefix at p=0.25 overflowed: %v", s)
	}
	if s := JaroWinklerP("ab", "cd", -3); s != Jaro("ab", "cd") {
		t.Errorf("negative p must degrade to plain Jaro: %v", s)
	}
	if got, capped := JaroWinklerP("martha", "marhta", 9), JaroWinklerP("martha", "marhta", 0.25); got != capped {
		t.Errorf("p above 0.25 must be capped: %v vs %v", got, capped)
	}
	// Four shared prefix runes and five must produce the same boost.
	four := JaroWinklerP("abcdxx", "abcdyy", 0.1)
	five := JaroWinklerP("abcdexx", "abcdeyy", 0.1)
	if five < four-0.1 { // five shares more content, so >=; never a smaller boost class
		t.Errorf("prefix cap mishandled: len4=%v len5=%v", four, five)
	}
}
