package strsim

import (
	"testing"
	"testing/quick"
)

func TestJaccardTokens(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a b c", "a b c", 1},
		{"a b", "b c", 1.0 / 3},
		{"hello world", "goodbye moon", 0},
		{"The Database", "database the", 1},
	}
	for _, c := range cases {
		if got := JaccardTokens(c.a, c.b); !approx(got, c.want) {
			t.Errorf("JaccardTokens(%q,%q) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardContentTokens(t *testing.T) {
	// Stopwords must not dilute the score.
	a := "The Theory of Record Linkage"
	b := "A Theory for Record Linkage"
	if got := JaccardContentTokens(a, b); !approx(got, 1) {
		t.Errorf("content jaccard = %f, want 1", got)
	}
	if got := JaccardTokens(a, b); got >= 1 {
		t.Errorf("plain jaccard should be < 1, got %f", got)
	}
}

func TestDiceTokens(t *testing.T) {
	if got := DiceTokens("a b", "b c"); !approx(got, 0.5) {
		t.Errorf("Dice = %f, want 0.5", got)
	}
	if got := DiceTokens("", ""); got != 1 {
		t.Errorf("Dice empty = %f", got)
	}
}

func TestOverlapTokens(t *testing.T) {
	if got := OverlapTokens("ACM SIGMOD", "SIGMOD"); got != 1 {
		t.Errorf("containment overlap = %f, want 1", got)
	}
	if got := OverlapTokens("x", ""); got != 0 {
		t.Errorf("one empty = %f, want 0", got)
	}
}

func TestNGramSim(t *testing.T) {
	if got := NGramSim("night", "night", 3); got != 1 {
		t.Errorf("identical trigram sim = %f", got)
	}
	if got := NGramSim("night", "nacht", 3); got <= 0 || got >= 1 {
		t.Errorf("night/nacht trigram sim should be in (0,1), got %f", got)
	}
	if got := TrigramSim("abc", "abc"); got != 1 {
		t.Errorf("TrigramSim identical = %f", got)
	}
}

func TestMongeElkan(t *testing.T) {
	// Token reorder should score 1 with an exact inner comparator.
	exact := func(a, b string) float64 {
		if a == b {
			return 1
		}
		return 0
	}
	if got := MongeElkan("michael stonebraker", "stonebraker michael", exact); got != 1 {
		t.Errorf("reordered tokens = %f, want 1", got)
	}
	if got := MongeElkan("", "", nil); got != 1 {
		t.Errorf("both empty = %f, want 1", got)
	}
	if got := MongeElkan("abc", "", nil); got != 0 {
		t.Errorf("one empty = %f, want 0", got)
	}
	// Default inner comparator tolerates typos.
	if got := MongeElkan("michael stonebraker", "micheal stonebraker", nil); got < 0.9 {
		t.Errorf("typo tolerance too low: %f", got)
	}
}

func TestCorpusCosine(t *testing.T) {
	c := NewCorpus()
	docs := []string{
		"query processing in distributed databases",
		"query optimization",
		"distributed query processing",
		"transaction management",
		"concurrency control in databases",
	}
	for _, d := range docs {
		c.Add(d)
	}
	if c.Docs() != len(docs) {
		t.Fatalf("Docs = %d", c.Docs())
	}
	same := c.CosineSim("distributed query processing", "distributed query processing")
	if !approx(same, 1) {
		t.Errorf("self cosine = %f, want 1", same)
	}
	far := c.CosineSim("distributed query processing", "concurrency control")
	if far != 0 {
		t.Errorf("disjoint cosine = %f, want 0", far)
	}
	near := c.CosineSim("distributed query processing", "query processing distributed")
	if !approx(near, 1) {
		t.Errorf("word order must not matter for equal multisets: %f", near)
	}
	// Rare words should matter more: sharing "concurrency" (rare) should
	// outweigh sharing "query" (common) for equally-sized titles.
	rare := c.CosineSim("concurrency theory", "concurrency practice")
	common := c.CosineSim("query theory", "query practice")
	if rare <= common {
		t.Errorf("rare-token match (%f) should beat common-token match (%f)", rare, common)
	}
}

func TestCorpusCosineEmpty(t *testing.T) {
	c := NewCorpus()
	if got := c.CosineSim("", ""); got != 1 {
		t.Errorf("empty/empty = %f", got)
	}
	if got := c.CosineSim("x", ""); got != 0 {
		t.Errorf("x/empty = %f", got)
	}
}

func TestTopTokens(t *testing.T) {
	c := NewCorpus()
	c.Add("alpha beta")
	c.Add("alpha gamma")
	c.Add("alpha beta")
	top := c.TopTokens(2)
	if len(top) != 2 || top[0] != "alpha" || top[1] != "beta" {
		t.Errorf("TopTokens = %v", top)
	}
	if got := c.TopTokens(100); len(got) != 3 {
		t.Errorf("TopTokens(100) len = %d", len(got))
	}
}

// comparators lists every exported [0,1] similarity for generic property
// testing.
var comparators = map[string]func(a, b string) float64{
	"LevenshteinSim": LevenshteinSim,
	"DamerauSim":     DamerauSim,
	"Jaro":           Jaro,
	"JaroWinkler":    JaroWinkler,
	"JaccardTokens":  JaccardTokens,
	"DiceTokens":     DiceTokens,
	"OverlapTokens":  OverlapTokens,
	"TrigramSim":     TrigramSim,
	"LCSSim":         LCSSim,
	"PrefixSim":      PrefixSim,
	"MongeElkan":     func(a, b string) float64 { return MongeElkan(a, b, nil) },
}

func TestComparatorsBounded(t *testing.T) {
	for name, fn := range comparators {
		fn := fn
		f := func(a, b string) bool {
			s := fn(a, b)
			return s >= 0 && s <= 1
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s not bounded: %v", name, err)
		}
	}
}

func TestComparatorsSymmetric(t *testing.T) {
	for name, fn := range comparators {
		fn := fn
		f := func(a, b string) bool { return approx(fn(a, b), fn(b, a)) }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s not symmetric: %v", name, err)
		}
	}
}

func TestComparatorsReflexive(t *testing.T) {
	for name, fn := range comparators {
		fn := fn
		f := func(a string) bool { return approx(fn(a, a), 1) }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s not reflexive: %v", name, err)
		}
	}
}
