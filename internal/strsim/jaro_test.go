package strsim

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaroKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.9444444444444445},
		{"dixon", "dicksonx", 0.7666666666666666},
		{"jellyfish", "smellyfish", 0.8962962962962964},
		{"", "", 1},
		{"", "a", 0},
		{"abc", "abc", 1},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); !approx(got, c.want) {
			t.Errorf("Jaro(%q,%q) = %.10f, want %.10f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.9611111111111111},
		{"dixon", "dicksonx", 0.8133333333333332},
		{"", "", 1},
		{"same", "same", 1},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); !approx(got, c.want) {
			t.Errorf("JaroWinkler(%q,%q) = %.10f, want %.10f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerAtLeastJaro(t *testing.T) {
	f := func(a, b string) bool {
		j, jw := Jaro(a, b), JaroWinkler(a, b)
		return jw >= j-1e-12 && jw <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerPClamping(t *testing.T) {
	// p > 0.25 is capped; must never exceed 1.
	if s := JaroWinklerP("prefix", "prefixes", 5.0); s > 1 {
		t.Errorf("clamped JaroWinklerP exceeded 1: %f", s)
	}
	if s := JaroWinklerP("prefix", "prefixes", -1); s < 0 || s > 1 {
		t.Errorf("negative p should behave like p=0, got %f", s)
	}
	if got, want := JaroWinklerP("martha", "marhta", 0), Jaro("martha", "marhta"); !approx(got, want) {
		t.Errorf("p=0 should equal Jaro: %f vs %f", got, want)
	}
}

func TestJaroCaseInsensitive(t *testing.T) {
	if !approx(Jaro("MARTHA", "marhta"), Jaro("martha", "marhta")) {
		t.Error("Jaro should normalize case")
	}
}
