package strsim

import (
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"a", "b", 1},
		{"stonebraker", "stonbraker", 1},
		{"gumbo", "gambol", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	f := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentity(t *testing.T) {
	f := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"ab", "ba", 1},   // one transposition
		{"abc", "acb", 1}, // transposition
		{"ca", "abc", 3},  // OSA variant: no substring moves
		{"kitten", "sitting", 3},
		{"stien", "stein", 1}, // classic name typo
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauNeverWorseThanLevenshtein(t *testing.T) {
	f := func(a, b string) bool { return DamerauLevenshtein(a, b) <= Levenshtein(a, b) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSim(t *testing.T) {
	if s := LevenshteinSim("", ""); s != 1 {
		t.Errorf("empty strings should have sim 1, got %f", s)
	}
	if s := LevenshteinSim("abc", "abc"); s != 1 {
		t.Errorf("identical should be 1, got %f", s)
	}
	if s := LevenshteinSim("abc", "xyz"); s != 0 {
		t.Errorf("disjoint equal-length should be 0, got %f", s)
	}
	// Case should not matter.
	if s := LevenshteinSim("ABC", "abc"); s != 1 {
		t.Errorf("case-insensitive equality should be 1, got %f", s)
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"abcdef", "zcdefz", 4},
		{"sigmod", "acm sigmod", 6},
		{"aaa", "aa", 2},
	}
	for _, c := range cases {
		if got := LongestCommonSubstring(c.a, c.b); got != c.want {
			t.Errorf("LCS(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCSSim(t *testing.T) {
	if s := LCSSim("SIGMOD", "ACM SIGMOD"); s != 1 {
		t.Errorf("containment should give 1, got %f", s)
	}
	if s := LCSSim("", ""); s != 1 {
		t.Errorf("both empty should give 1, got %f", s)
	}
	if s := LCSSim("", "x"); s != 0 {
		t.Errorf("one empty should give 0, got %f", s)
	}
}

func TestPrefixSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"proc", "proceedings", 1},
		{"proceedings", "proc", 1},
		{"conf", "journal", 0}, // no shared prefix
		{"", "", 1},
		{"", "abc", 0},
	}
	for _, c := range cases {
		if got := PrefixSim(c.a, c.b); got != c.want {
			t.Errorf("PrefixSim(%q,%q) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}
