package strsim

import (
	"testing"
	"testing/quick"
)

func TestSmithWaterman(t *testing.T) {
	if s := SmithWaterman("", ""); s != 1 {
		t.Errorf("empty/empty = %f", s)
	}
	if s := SmithWaterman("abc", ""); s != 0 {
		t.Errorf("one empty = %f", s)
	}
	if s := SmithWaterman("stanford", "stanford"); s != 1 {
		t.Errorf("identical = %f", s)
	}
	// Local alignment: embedded substring scores highly.
	embedded := SmithWaterman("stanford", "dept of computer science stanford university")
	if embedded != 1 {
		t.Errorf("embedded exact substring = %f, want 1", embedded)
	}
	far := SmithWaterman("stanford", "qqqqqqqq")
	if far > 0.3 {
		t.Errorf("unrelated = %f", far)
	}
}

func TestSmithWatermanBoundedSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		s := SmithWaterman(a, b)
		return s >= 0 && s <= 1 && approx(s, SmithWaterman(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNeedlemanWunsch(t *testing.T) {
	if s := NeedlemanWunsch("", ""); s != 1 {
		t.Errorf("empty/empty = %f", s)
	}
	if s := NeedlemanWunsch("abcd", "abcd"); s != 1 {
		t.Errorf("identical = %f", s)
	}
	// One substitution in four characters: score 3*1 + 1*(-1) = 2;
	// rescaled (2+4)/8 = 0.75.
	if s := NeedlemanWunsch("abcd", "abxd"); !approx(s, 0.75) {
		t.Errorf("one substitution = %f, want 0.75", s)
	}
	// Global alignment punishes embedding, unlike Smith-Waterman.
	sw := SmithWaterman("stanford", "dept of computer science stanford university")
	nw := NeedlemanWunsch("stanford", "dept of computer science stanford university")
	if !(nw < sw) {
		t.Errorf("NW %f should be below SW %f for embedded strings", nw, sw)
	}
}

func TestNeedlemanWunschBoundedSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		s := NeedlemanWunsch(a, b)
		return s >= 0 && s <= 1 && approx(s, NeedlemanWunsch(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSoftCosine(t *testing.T) {
	c := NewCorpus()
	for _, d := range []string{
		"michael stonebraker", "eugene wong", "robert epstein",
		"query processing", "jennifer widom",
	} {
		c.Add(d)
	}
	if s := c.SoftCosine("michael stonebraker", "michael stonebraker", 0.9); !approx(s, 1) {
		t.Errorf("identical = %f", s)
	}
	// Typos within theta still match softly.
	typo := c.SoftCosine("michael stonebraker", "micheal stonebraker", 0.9)
	if typo < 0.9 {
		t.Errorf("typo = %f, want >= 0.9", typo)
	}
	// Plain cosine would score the typo pair much lower (token mismatch).
	hard := c.CosineSim("michael stonebraker", "micheal stonebraker")
	if !(typo > hard) {
		t.Errorf("soft %f should beat hard %f", typo, hard)
	}
	if s := c.SoftCosine("", "", 0.9); s != 1 {
		t.Errorf("empty = %f", s)
	}
	if s := c.SoftCosine("x", "", 0.9); s != 0 {
		t.Errorf("one empty = %f", s)
	}
	// Default theta kicks in for non-positive values.
	if s := c.SoftCosine("abc", "abc", 0); !approx(s, 1) {
		t.Errorf("default theta identical = %f", s)
	}
}

func TestSoftCosineBounded(t *testing.T) {
	c := NewCorpus()
	c.Add("some seed document")
	f := func(a, b string) bool {
		s := c.SoftCosine(a, b, 0.9)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
