package strsim

import (
	"testing"

	"refrecon/internal/tokenizer"
)

// The comparator hot paths run inside the propagation engine's serial loop
// and the parallel construction workers; the pooled-scratch design (see
// scratch.go) is supposed to make them allocation-free in steady state.
// These regression tests pin that at exactly zero so a stray []rune
// conversion or per-call make can never creep back in.

// allocSink defeats dead-code elimination of the measured calls.
var allocSink float64

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	// AllocsPerRun runs fn once as warm-up, which primes the scratch pool
	// and grows the buffers to their steady capacity.
	if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, allocs)
	}
}

func TestLevenshteinZeroAllocs(t *testing.T) {
	assertZeroAllocs(t, "Levenshtein", func() {
		allocSink += float64(Levenshtein("reference reconciliation", "refernce reconcilation"))
	})
}

func TestLevenshteinSimZeroAllocs(t *testing.T) {
	assertZeroAllocs(t, "LevenshteinSim", func() {
		allocSink += LevenshteinSim("José García-Molina", "Jose Garcia Molina")
	})
}

func TestDamerauZeroAllocs(t *testing.T) {
	assertZeroAllocs(t, "DamerauLevenshtein", func() {
		allocSink += float64(DamerauLevenshtein("michael stonebraker", "micheal stonebraker"))
	})
	assertZeroAllocs(t, "DamerauSim", func() {
		allocSink += DamerauSim("michael stonebraker", "micheal stonebraker")
	})
}

func TestJaroWinklerZeroAllocs(t *testing.T) {
	assertZeroAllocs(t, "Jaro", func() {
		allocSink += Jaro("martha", "marhta")
	})
	assertZeroAllocs(t, "JaroWinkler", func() {
		allocSink += JaroWinkler("dixon", "dicksonx")
	})
}

func TestAlignZeroAllocs(t *testing.T) {
	assertZeroAllocs(t, "SmithWaterman", func() {
		allocSink += SmithWaterman("dept of computer science stanford", "stanford computer science department")
	})
	assertZeroAllocs(t, "NeedlemanWunsch", func() {
		allocSink += NeedlemanWunsch("sigmod conference", "sigmod record")
	})
}

func TestNGramSimZeroAllocs(t *testing.T) {
	assertZeroAllocs(t, "TrigramSim", func() {
		allocSink += TrigramSim("proceedings of the acm sigmod", "proc acm sigmod")
	})
}

func TestLCSAndPrefixZeroAllocs(t *testing.T) {
	assertZeroAllocs(t, "LCSSim", func() {
		allocSink += LCSSim("very large data bases", "large databases")
	})
	assertZeroAllocs(t, "PrefixSim", func() {
		allocSink += PrefixSim("proceedings", "proc")
	})
}

func TestEachNGramZeroAllocs(t *testing.T) {
	// The callback is bound outside the measured closure so the measurement
	// sees only EachNGram's own behavior.
	count := 0
	emit := func(g []rune) { count += len(g) }
	assertZeroAllocs(t, "tokenizer.EachNGram", func() {
		tokenizer.EachNGram("Reference Reconciliation in Complex Information Spaces", 3, emit)
	})
	if count == 0 {
		t.Fatal("EachNGram emitted no grams")
	}
}
