package strsim

import (
	"strings"

	"refrecon/internal/tokenizer"
)

// Soundex returns the classic 4-character Soundex code of the first
// alphabetic token of s ("Robert" -> "R163"). Soundex groups consonants by
// sound so that common misspellings of surnames collide; it is the oldest
// phonetic key used in record linkage (Newcombe et al., 1959 — the paper's
// reference [29]). An input with no letters yields "".
func Soundex(s string) string {
	norm := tokenizer.Normalize(s)
	var letters []byte
	for i := 0; i < len(norm); i++ {
		c := norm[i]
		if c >= 'a' && c <= 'z' {
			letters = append(letters, c)
		} else if len(letters) > 0 && (c == ' ' || c == ',') {
			break // first token only
		}
	}
	if len(letters) == 0 {
		return ""
	}
	code := func(c byte) byte {
		switch c {
		case 'b', 'f', 'p', 'v':
			return '1'
		case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
			return '2'
		case 'd', 't':
			return '3'
		case 'l':
			return '4'
		case 'm', 'n':
			return '5'
		case 'r':
			return '6'
		default:
			return 0 // vowels and h/w/y
		}
	}
	out := []byte{letters[0] - 'a' + 'A'}
	prev := code(letters[0])
	for _, c := range letters[1:] {
		d := code(c)
		switch {
		case d == 0:
			// Vowels reset the adjacency rule; h and w do not.
			if c != 'h' && c != 'w' {
				prev = 0
			}
		case d != prev:
			out = append(out, d)
			prev = d
			if len(out) == 4 {
				return string(out)
			}
		}
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// SoundexEqual reports whether two strings share a Soundex code.
func SoundexEqual(a, b string) bool {
	ca, cb := Soundex(a), Soundex(b)
	return ca != "" && ca == cb
}

// NYSIIS returns the NYSIIS phonetic key of the first alphabetic token of
// s — a finer-grained alternative to Soundex developed for the New York
// State Identification and Intelligence System. An input with no letters
// yields "".
func NYSIIS(s string) string {
	norm := tokenizer.Normalize(s)
	var w []byte
	for i := 0; i < len(norm); i++ {
		c := norm[i]
		if c >= 'a' && c <= 'z' {
			w = append(w, c)
		} else if len(w) > 0 {
			break
		}
	}
	if len(w) == 0 {
		return ""
	}
	str := string(w)
	// Leading transformations.
	for _, tr := range [][2]string{
		{"mac", "mcc"}, {"kn", "nn"}, {"k", "c"}, {"ph", "ff"}, {"pf", "ff"}, {"sch", "sss"},
	} {
		if strings.HasPrefix(str, tr[0]) {
			str = tr[1] + str[len(tr[0]):]
			break
		}
	}
	// Trailing transformations.
	for _, tr := range [][2]string{
		{"ee", "y"}, {"ie", "y"}, {"dt", "d"}, {"rt", "d"}, {"rd", "d"}, {"nt", "d"}, {"nd", "d"},
	} {
		if strings.HasSuffix(str, tr[0]) {
			str = str[:len(str)-len(tr[0])] + tr[1]
			break
		}
	}
	b := []byte(str)
	key := []byte{b[0]}
	isVowel := func(c byte) bool {
		return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u'
	}
	for i := 1; i < len(b); i++ {
		c := b[i]
		var repl string
		switch {
		case c == 'e' && i+1 < len(b) && b[i+1] == 'v':
			repl = "af"
		case isVowel(c):
			repl = "a"
		case c == 'q':
			repl = "g"
		case c == 'z':
			repl = "s"
		case c == 'm':
			repl = "n"
		case c == 'k':
			if i+1 < len(b) && b[i+1] == 'n' {
				repl = "n"
			} else {
				repl = "c"
			}
		case c == 's' && i+2 < len(b) && b[i+1] == 'c' && b[i+2] == 'h':
			repl = "sss"
		case c == 'p' && i+1 < len(b) && b[i+1] == 'h':
			repl = "ff"
		case c == 'h' && (i+1 >= len(b) || !isVowel(b[i-1]) || !isVowel(b[i+1])):
			repl = string(b[i-1])
		case c == 'w' && isVowel(b[i-1]):
			repl = string(b[i-1])
		default:
			repl = string(c)
		}
		for j := 0; j < len(repl); j++ {
			if key[len(key)-1] != repl[j] {
				key = append(key, repl[j])
			}
		}
	}
	// Trailing cleanup: drop trailing s, convert trailing ay -> y, drop
	// trailing a.
	if len(key) > 1 && key[len(key)-1] == 's' {
		key = key[:len(key)-1]
	}
	if len(key) > 2 && key[len(key)-2] == 'a' && key[len(key)-1] == 'y' {
		key = append(key[:len(key)-2], 'y')
	}
	if len(key) > 1 && key[len(key)-1] == 'a' {
		key = key[:len(key)-1]
	}
	return strings.ToUpper(string(key))
}
