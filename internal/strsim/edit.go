// Package strsim implements the string similarity measures used as the
// elementary evidence in reference reconciliation: edit-distance families
// (Levenshtein, Damerau), the Jaro and Jaro-Winkler measures popular in
// record linkage, token-set measures (Jaccard, Dice, overlap), character
// n-gram similarity, TF-IDF weighted cosine, and the Monge-Elkan hybrid.
//
// Every exported similarity function returns a score in [0, 1], is
// symmetric in its arguments, and returns 1 for equal inputs. Scores are
// computed over normalized forms (see package tokenizer), so callers may
// pass raw strings.
//
// The comparators are allocation-free in steady state: rune conversions
// and dynamic-programming rows live in pooled scratch buffers (see
// scratch.go), a property the alloc regression tests enforce.
package strsim

import (
	"refrecon/internal/tokenizer"
)

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions, and substitutions required to
// transform one into the other. The computation is case-sensitive and
// operates on the raw rune sequences; use LevenshteinSim for a normalized
// similarity.
func Levenshtein(a, b string) int {
	sc := getScratch()
	sc.ra = appendRunes(sc.ra[:0], a)
	sc.rb = appendRunes(sc.rb[:0], b)
	d := levenshteinScratch(sc, sc.ra, sc.rb)
	putScratch(sc)
	return d
}

func levenshteinScratch(sc *scratch, ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the shorter string in rb to bound the row width.
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	prev := intRow(&sc.row0, len(rb)+1)
	cur := intRow(&sc.row1, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// DamerauLevenshtein returns the edit distance allowing adjacent-rune
// transpositions in addition to insert/delete/substitute (the "optimal
// string alignment" variant). Transpositions are the dominant typo class in
// person names, so this distance is preferred for name comparison.
func DamerauLevenshtein(a, b string) int {
	sc := getScratch()
	sc.ra = appendRunes(sc.ra[:0], a)
	sc.rb = appendRunes(sc.rb[:0], b)
	d := damerauScratch(sc, sc.ra, sc.rb)
	putScratch(sc)
	return d
}

func damerauScratch(sc *scratch, ra, rb []rune) int {
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i-2, i-1, i.
	prev2 := intRow(&sc.row0, lb+1)
	prev := intRow(&sc.row1, lb+1)
	cur := intRow(&sc.row2, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < cur[j] {
					cur[j] = t
				}
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// LevenshteinSim converts edit distance into a similarity in [0, 1]:
// 1 - dist/max(len). Inputs are normalized first. Two empty strings are
// considered identical (similarity 1).
func LevenshteinSim(a, b string) float64 {
	sc := getScratch()
	sc.ra = tokenizer.AppendNormalizedRunes(sc.ra[:0], a)
	sc.rb = tokenizer.AppendNormalizedRunes(sc.rb[:0], b)
	s := editSim(levenshteinScratch(sc, sc.ra, sc.rb), len(sc.ra), len(sc.rb))
	putScratch(sc)
	return s
}

// DamerauSim is LevenshteinSim using the Damerau-Levenshtein distance.
func DamerauSim(a, b string) float64 {
	sc := getScratch()
	sc.ra = tokenizer.AppendNormalizedRunes(sc.ra[:0], a)
	sc.rb = tokenizer.AppendNormalizedRunes(sc.rb[:0], b)
	s := editSim(damerauScratch(sc, sc.ra, sc.rb), len(sc.ra), len(sc.rb))
	putScratch(sc)
	return s
}

func editSim(dist, la, lb int) float64 {
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(dist)/float64(m)
}

// LongestCommonSubstring returns the length of the longest contiguous
// substring shared by the normalized forms of a and b.
func LongestCommonSubstring(a, b string) int {
	sc := getScratch()
	sc.ra = tokenizer.AppendNormalizedRunes(sc.ra[:0], a)
	sc.rb = tokenizer.AppendNormalizedRunes(sc.rb[:0], b)
	best := lcsScratch(sc, sc.ra, sc.rb)
	putScratch(sc)
	return best
}

func lcsScratch(sc *scratch, ra, rb []rune) int {
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := intRow(&sc.row0, len(rb)+1)
	cur := intRow(&sc.row1, len(rb)+1)
	for j := range prev {
		prev[j] = 0
	}
	cur[0] = 0
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// LCSSim normalizes LongestCommonSubstring by the length of the shorter
// string, yielding 1 when one normalized string contains the other.
func LCSSim(a, b string) float64 {
	sc := getScratch()
	sc.ra = tokenizer.AppendNormalizedRunes(sc.ra[:0], a)
	sc.rb = tokenizer.AppendNormalizedRunes(sc.rb[:0], b)
	na, nb := sc.ra, sc.rb
	var s float64
	switch {
	case len(na) == 0 && len(nb) == 0:
		s = 1
	case len(na) == 0 || len(nb) == 0:
		s = 0
	default:
		short := len(na)
		if len(nb) < short {
			short = len(nb)
		}
		s = float64(lcsScratch(sc, na, nb)) / float64(short)
	}
	putScratch(sc)
	return s
}

// PrefixSim measures how much of the shorter normalized string is a prefix
// of the longer one, in [0,1]. Useful for abbreviation evidence
// ("proc" vs "proceedings").
func PrefixSim(a, b string) float64 {
	sc := getScratch()
	na := tokenizer.AppendNormalizedRunes(sc.ra[:0], a)
	nb := tokenizer.AppendNormalizedRunes(sc.rb[:0], b)
	sc.ra, sc.rb = na, nb
	var s float64
	switch {
	case len(na) == 0 && len(nb) == 0:
		s = 1
	case len(na) == 0 || len(nb) == 0:
		s = 0
	default:
		short, long := na, nb
		if len(short) > len(long) {
			short, long = long, short
		}
		n := 0
		for n < len(short) && short[n] == long[n] {
			n++
		}
		s = float64(n) / float64(len(short))
	}
	putScratch(sc)
	return s
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
