package serve

// Wire types for the OpenRefine reconciliation API (protocol version 0.2,
// after Delpeuch's survey of reconciliation services) plus the service's
// own ingest/entity/explain documents. JSONP callbacks (deprecated in 0.2)
// are not supported.

import (
	"encoding/json"
	"fmt"
	"strconv"

	"refrecon/internal/recon"
	"refrecon/internal/reference"
)

// TypeRef names one reconciliation type (a schema class).
type TypeRef struct {
	ID   string `json:"id"`
	Name string `json:"name"`
}

// Manifest is the service manifest served at /.
type Manifest struct {
	Versions        []string            `json:"versions"`
	Name            string              `json:"name"`
	IdentifierSpace string              `json:"identifierSpace"`
	SchemaSpace     string              `json:"schemaSpace"`
	DefaultTypes    []TypeRef           `json:"defaultTypes"`
	View            *ManifestView       `json:"view,omitempty"`
	Preview         *ManifestPreview    `json:"preview,omitempty"`
	Suggest         *SuggestManifest    `json:"suggest,omitempty"`
	Extend          *ExtendManifest     `json:"extend,omitempty"`
	Collective      *CollectiveManifest `json:"collective,omitempty"`
}

// ManifestPreview tells clients where to fetch the HTML flyout for an
// entity id and how large to render it.
type ManifestPreview struct {
	URL    string `json:"url"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
}

// SuggestService locates one suggest-family service endpoint.
type SuggestService struct {
	ServiceURL  string `json:"service_url"`
	ServicePath string `json:"service_path"`
}

// SuggestManifest advertises the entity autocomplete service.
type SuggestManifest struct {
	Entity *SuggestService `json:"entity,omitempty"`
}

// ExtendManifest advertises data extension: propose_properties is the
// property-discovery endpoint OpenRefine calls before extending.
type ExtendManifest struct {
	ProposeProperties *SuggestService `json:"propose_properties,omitempty"`
}

// CollectiveManifest advertises the query modes the service accepts and
// the server-side budget defaults of the collective mode (per-query knobs
// can only lower them).
type CollectiveManifest struct {
	Modes        []string `json:"modes"`
	MaxNodes     int      `json:"maxNodes"`
	MaxHops      int      `json:"maxHops"`
	MaxNeighbors int      `json:"maxNeighbors"`
	BudgetMS     float64  `json:"budgetMs"`
}

// ManifestView tells clients how to deep-link an entity id.
type ManifestView struct {
	URL string `json:"url"`
}

// Query modes accepted by the reconcile endpoint.
const (
	// ModeAttribute is the default: attribute-only entity scoring.
	ModeAttribute = "attribute"
	// ModeCollective runs query-time collective reconciliation — bounded
	// expand-and-resolve over the snapshot's relational neighborhood —
	// and degrades to attribute-only scoring when a budget is exhausted.
	ModeCollective = "collective"
)

// ReconQuery is one entry of a reconcile batch.
type ReconQuery struct {
	// Query is the free-text query, matched against the class's name-like
	// attribute.
	Query string `json:"query"`
	// Type restricts the query to one class; empty queries every class.
	Type string `json:"type,omitempty"`
	// Limit bounds the number of candidates returned.
	Limit int `json:"limit,omitempty"`
	// Properties carry additional attribute constraints; PID is the
	// attribute name. In collective mode a PID naming an association
	// attribute carries stored reference ids instead of values.
	Properties []QueryProperty `json:"properties,omitempty"`
	// Mode selects the scoring path: "" or "attribute" for attribute-only
	// scoring, "collective" for query-time collective reconciliation.
	Mode string `json:"mode,omitempty"`
	// MaxNodes, MaxHops, and BudgetMS lower the server's collective
	// budgets for this query (they can never raise them). Zero keeps the
	// server default. Ignored outside collective mode.
	MaxNodes int     `json:"maxNodes,omitempty"`
	MaxHops  int     `json:"maxHops,omitempty"`
	BudgetMS float64 `json:"budgetMs,omitempty"`
}

// QueryProperty is one property constraint of a query.
type QueryProperty struct {
	PID string          `json:"pid"`
	V   json.RawMessage `json:"v"`
}

// values flattens the property value into strings: a scalar, an array of
// scalars, or an object with an "id" field are all accepted.
func (p QueryProperty) values() []string {
	var out []string
	add := func(raw json.RawMessage) {
		var s string
		if err := json.Unmarshal(raw, &s); err == nil {
			if s != "" {
				out = append(out, s)
			}
			return
		}
		var n float64
		if err := json.Unmarshal(raw, &n); err == nil {
			out = append(out, strconv.FormatFloat(n, 'f', -1, 64))
			return
		}
		var obj struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &obj); err == nil && obj.ID != "" {
			out = append(out, obj.ID)
		}
	}
	if len(p.V) == 0 {
		return nil
	}
	var arr []json.RawMessage
	if err := json.Unmarshal(p.V, &arr); err == nil {
		for _, el := range arr {
			add(el)
		}
		return out
	}
	add(p.V)
	return out
}

// ReconCandidate is one candidate in a reconcile result.
type ReconCandidate struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Type  []TypeRef `json:"type"`
	Score float64   `json:"score"`
	Match bool      `json:"match"`
}

// ReconResult is the per-query result envelope.
type ReconResult struct {
	Result []ReconCandidate `json:"result"`
}

// SuggestCandidate is one entity autocomplete hit.
type SuggestCandidate struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
}

// SuggestResult is the /suggest/entity response envelope.
type SuggestResult struct {
	Result []SuggestCandidate `json:"result"`
}

// ExtendRequest is the data-extension payload: entity ids from earlier
// reconcile responses plus the property ids to fetch for each.
type ExtendRequest struct {
	IDs        []string         `json:"ids"`
	Properties []ExtendProperty `json:"properties"`
}

// ExtendProperty names one requested property.
type ExtendProperty struct {
	ID string `json:"id"`
}

// ExtendValue is one property value cell; this service only serves string
// values.
type ExtendValue struct {
	Str string `json:"str"`
}

// ExtendResponse is the data-extension response: meta echoes the
// requested properties, rows maps entity id → property id → values.
type ExtendResponse struct {
	Meta []TypeRef                           `json:"meta"`
	Rows map[string]map[string][]ExtendValue `json:"rows"`
}

// ProposeDoc is the /properties (propose_properties) response.
type ProposeDoc struct {
	Type       string    `json:"type"`
	Properties []TypeRef `json:"properties"`
}

// toWire renders recon candidates into the protocol shape. Scores are
// scaled to [0, 100], the convention most OpenRefine services follow.
func toWire(cands []recon.Candidate) ReconResult {
	out := ReconResult{Result: make([]ReconCandidate, 0, len(cands))}
	for _, c := range cands {
		out.Result = append(out.Result, ReconCandidate{
			ID:    strconv.Itoa(int(c.Entity.Canonical)),
			Name:  c.Entity.Name(),
			Type:  []TypeRef{{ID: c.Entity.Class, Name: c.Entity.Class}},
			Score: c.Score * 100,
			Match: c.Match,
		})
	}
	return out
}

// IngestRef is one reference in an ingest batch. The field names match
// the dataset JSON format (cmd/pimgen, dataset.WriteJSON), so a dataset
// file's "references" array can be POSTed to /ingest verbatim; the
// optional "id" field is ignored — the service assigns dense ids — but
// association targets must be expressed in final id space (prior store
// size + position for intra-batch links, which a verbatim dataset file
// ingested into an empty service satisfies).
type IngestRef struct {
	ID     reference.ID              `json:"id,omitempty"`
	Class  string                    `json:"class"`
	Source string                    `json:"source,omitempty"`
	Entity string                    `json:"entity,omitempty"`
	Atomic map[string][]string       `json:"atomic,omitempty"`
	Assoc  map[string][]reference.ID `json:"assoc,omitempty"`
}

// IngestRequest is the /ingest body: either this envelope or a bare JSON
// array of references.
type IngestRequest struct {
	References []IngestRef `json:"references"`
}

// decodeIngest accepts both body shapes.
func decodeIngest(data []byte) ([]IngestRef, error) {
	var env IngestRequest
	if err := json.Unmarshal(data, &env); err == nil && env.References != nil {
		return env.References, nil
	}
	var arr []IngestRef
	if err := json.Unmarshal(data, &arr); err == nil {
		return arr, nil
	}
	return nil, fmt.Errorf("body must be {\"references\": [...]} or a JSON array of references")
}

// IngestResponse reports one applied batch.
type IngestResponse struct {
	Added           int          `json:"added"`
	FirstID         reference.ID `json:"firstId"`
	LastID          reference.ID `json:"lastId"`
	SnapshotVersion int          `json:"snapshotVersion"`
	References      int          `json:"references"`
	ElapsedMS       float64      `json:"elapsedMs"`
}

// EntityDoc is the /entity/{id} document.
type EntityDoc struct {
	ID              string              `json:"id"`
	Name            string              `json:"name"`
	Type            []TypeRef           `json:"type"`
	Canonical       reference.ID        `json:"canonical"`
	Members         []reference.ID      `json:"members"`
	Atomic          map[string][]string `json:"atomic"`
	SnapshotVersion int                 `json:"snapshotVersion"`
}

// ExplainDoc is the /explain/{a}/{b} document: the structured explanation
// plus its human-readable rendering.
type ExplainDoc struct {
	A               reference.ID         `json:"a"`
	B               reference.ID         `json:"b"`
	Same            bool                 `json:"same"`
	Path            []recon.PairDecision `json:"path,omitempty"`
	Direct          *recon.PairDecision  `json:"direct,omitempty"`
	Rendered        string               `json:"rendered"`
	SnapshotVersion int                  `json:"snapshotVersion"`
}

// errorDoc is the error envelope for non-2xx responses.
type errorDoc struct {
	Error string `json:"error"`
}
