package serve

// Package serve is the long-running reconciliation service: a
// single-writer recon.Session owns ingest, and every committed batch
// publishes an immutable View (snapshot + query matcher) through an
// atomic pointer. Reads — reconcile queries, entity and explain lookups,
// metrics — run entirely against the published View, so they never block
// on ingest and never observe a half-applied batch; writers pay the
// snapshot copy, readers pay nothing.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"refrecon/internal/collective"
	"refrecon/internal/durable"
	"refrecon/internal/obs"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// ErrUnavailable marks requests refused because the service is shutting
// down (Close has drained ingest and sealed the log). It maps to 503 with
// a Retry-After hint like a cancelled commit.
var ErrUnavailable = errors.New("serve: service unavailable")

// Config configures a Service.
type Config struct {
	// Schema is the information-space schema (required).
	Schema *schema.Schema
	// Recon configures the underlying reconciler.
	Recon recon.Config
	// Name is the service name advertised in the manifest.
	Name string
	// IdentifierSpace and SchemaSpace are the manifest URIs; defaults
	// derive from the service name.
	IdentifierSpace string
	SchemaSpace     string
	// DefaultLimit bounds candidates per query when the query doesn't
	// specify one (default 10).
	DefaultLimit int
	// DataDir enables durability: every validated ingest batch is framed,
	// appended to a segment log under this directory, and fsynced before
	// the commit runs, and snapshot checkpoints are written periodically.
	// On startup the service recovers the previous state from the
	// directory (see internal/serve/durability.go). Empty keeps the
	// service purely in-memory.
	DataDir string
	// CheckpointEvery writes a checkpoint after that many committed
	// batches (default 16; negative disables periodic checkpoints — a
	// final one is still written by Close). Ignored without DataDir.
	CheckpointEvery int
	// Collective bounds the collective query mode. Unset fields take the
	// collective package defaults, except Budget: a serving process must
	// never run an unbounded fixed point per query, so a zero Budget
	// defaults to 250ms (set it negative to genuinely disable the time
	// budget). Per-query knobs can only lower these.
	Collective collective.Config
}

// View is one published read state: an immutable snapshot and its query
// matcher. Views are never mutated after publication.
type View struct {
	Snapshot   *recon.Snapshot
	Matcher    *recon.Matcher
	Collective *recon.CollectiveMatcher
	Published  time.Time

	// suggestIdx is the lazily built prefix-autocomplete index over the
	// snapshot's entity labels (see suggest.go). Built at most once per
	// view, on the first /suggest request, so publishes stay cheap.
	suggestOnce sync.Once
	suggestIdx  []suggestEntry
}

// Service is the reconciliation service. One goroutine at a time may
// ingest (Ingest serializes internally); any number may query.
type Service struct {
	cfg     Config
	mu      sync.Mutex // guards sess + store writes and all durability state
	sess    *recon.Session
	store   *reference.Store
	view    atomic.Pointer[View]
	met     *metrics
	started time.Time
	// classNames is the schema's class-name fan-out order, cached once:
	// Schema.Classes sorts and allocates per call, and typeless queries hit
	// it on every request.
	classNames []string

	// Durability state (zero/nil without Config.DataDir); mu-guarded.
	// history is the full record sequence — batches plus lifecycle
	// markers — that reproduces the current state when replayed; it is
	// what checkpoints persist. accepted is the ordinal of the last batch
	// that reached the log and store; committed is the ordinal whose
	// commit last published a view (accepted > committed while the
	// session is poisoned). lastCkpt is the newest checkpoint's ordinal.
	log       *durable.Log
	history   []durable.Record
	accepted  uint64
	committed uint64
	lastCkpt  uint64
	closed    bool
	recovery  recoveryInfo

	// publishHook, when set, runs inside publish before the view swap —
	// a test seam for injecting publish failures and for observing the
	// critical section.
	publishHook func() error
}

// New starts a service over an empty store.
func New(cfg Config) (*Service, error) {
	return NewFromStore(cfg, reference.NewStore())
}

// NewFromStore starts a service over a pre-populated store (reconciling
// it as the first batch) and publishes the initial view. With
// Config.DataDir, the store seeds only a fresh data directory (it must be
// empty when the directory already holds state) and the previous state is
// recovered from the checkpoint and segment log first.
func NewFromStore(cfg Config, store *reference.Store) (*Service, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("serve: Config.Schema is required")
	}
	if cfg.Name == "" {
		cfg.Name = "refrecon"
	}
	if cfg.IdentifierSpace == "" {
		cfg.IdentifierSpace = "urn:refrecon:entity"
	}
	if cfg.SchemaSpace == "" {
		cfg.SchemaSpace = "urn:refrecon:schema"
	}
	if cfg.DefaultLimit <= 0 {
		cfg.DefaultLimit = 10
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 16
	}
	if cfg.Collective.Budget == 0 {
		cfg.Collective.Budget = 250 * time.Millisecond
	} else if cfg.Collective.Budget < 0 {
		cfg.Collective.Budget = 0
	}
	if err := store.Validate(cfg.Schema); err != nil {
		return nil, fmt.Errorf("serve: initial store invalid: %w", err)
	}
	s := &Service{cfg: cfg, met: newMetrics(), started: time.Now()}
	for _, c := range cfg.Schema.Classes() {
		s.classNames = append(s.classNames, c.Name)
	}
	if cfg.DataDir != "" {
		if err := s.recover(store); err != nil {
			if s.log != nil {
				s.log.Close()
			}
			return nil, err
		}
	} else if err := s.initLive(store); err != nil {
		return nil, err
	}
	s.syncDurabilityGauges()
	return s, nil
}

// initLive runs the in-memory initialization path: a session over the
// (possibly pre-populated) store, an initial reconcile, and the first
// published view. A non-empty initial store counts as batch ordinal 1.
func (s *Service) initLive(store *reference.Store) error {
	s.store = store
	s.sess = recon.New(s.cfg.Schema, s.cfg.Recon).NewSession(store)
	if store.Len() > 0 {
		s.accepted = 1
	}
	if _, err := s.sess.Reconcile(); err != nil {
		return fmt.Errorf("serve: initial reconcile: %w", err)
	}
	s.committed = s.accepted
	return s.publish()
}

// publish exports a snapshot of the session's current result, builds its
// matcher, and swaps it in as the live view. The snapshot version is the
// service's committed batch ordinal — a counter that survives session
// rebuilds (a poisoned session restarts its internal batch numbering, and
// the published version must never regress). Callers must hold mu (or be
// the constructor, before the service escapes).
func (s *Service) publish() error {
	snap, err := s.sess.Snapshot()
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	if s.publishHook != nil {
		if err := s.publishHook(); err != nil {
			return fmt.Errorf("serve: publish: %w", err)
		}
	}
	snap.Version = int(s.committed)
	matcher := recon.NewMatcher(s.cfg.Schema, s.cfg.Recon, snap)
	v := &View{
		Snapshot:   snap,
		Matcher:    matcher,
		Collective: recon.NewCollectiveMatcher(matcher, s.cfg.Collective),
		Published:  time.Now(),
	}
	s.view.Store(v)
	return nil
}

// View returns the currently published read state.
func (s *Service) View() *View { return s.view.Load() }

// Schema returns the service schema.
func (s *Service) Schema() *schema.Schema { return s.cfg.Schema }

// validateBatch checks an ingest batch against the schema before any
// reference is added: store.Add is irreversible, so a batch is applied
// all-or-nothing. base is the store length the batch lands on;
// association targets may point at existing references or forward into
// the batch itself.
func (s *Service) validateBatch(base int, batch []IngestRef) error {
	classAt := func(id reference.ID) (string, bool) {
		if id < 0 || int(id) >= base+len(batch) {
			return "", false
		}
		if int(id) < base {
			return s.store.Get(id).Class, true
		}
		return batch[int(id)-base].Class, true
	}
	for i, ir := range batch {
		class, ok := s.cfg.Schema.Class(ir.Class)
		if !ok {
			return fmt.Errorf("reference %d: unknown class %q", i, ir.Class)
		}
		for attr := range ir.Atomic {
			a, ok := class.Attr(attr)
			if !ok || a.Kind != schema.Atomic {
				return fmt.Errorf("reference %d: class %q has no atomic attribute %q", i, ir.Class, attr)
			}
		}
		for attr, targets := range ir.Assoc {
			a, ok := class.Attr(attr)
			if !ok || a.Kind != schema.Association {
				return fmt.Errorf("reference %d: class %q has no association attribute %q", i, ir.Class, attr)
			}
			for _, t := range targets {
				tc, ok := classAt(t)
				if !ok {
					return fmt.Errorf("reference %d: association %q target %d out of range", i, attr, t)
				}
				if tc != a.Target {
					return fmt.Errorf("reference %d: association %q target %d has class %q, want %q", i, attr, t, tc, a.Target)
				}
			}
		}
	}
	return nil
}

// obs returns the observer threaded through the reconciler config (nil
// when observability is off).
func (s *Service) obs() *obs.Observer { return s.cfg.Recon.Obs }

// Ingest validates and applies one batch, reconciles it incrementally,
// and publishes a fresh view. It is IngestContext with a background
// context.
func (s *Service) Ingest(batch []IngestRef) (IngestResponse, error) {
	return s.IngestContext(context.Background(), batch)
}

// IngestContext validates and applies one batch, reconciles it
// incrementally (honoring ctx at phase and propagation-round boundaries),
// and publishes a fresh view. It returns the applied id range and the new
// snapshot version. Validation errors — wrapping recon.ErrBatchRejected —
// leave the service unchanged (with durability on, nothing reaches the
// log either: the batch is applied all-or-nothing).
//
// Once a batch passes validation it is logged (fsync) before any state
// mutates, so an acknowledged batch survives a crash at any later point.
// A commit that fails after that — a cancelled context, an audit failure,
// a publish error — poisons the session explicitly: the batch's
// references stay in the store, the previous view stays published at its
// version, a poison marker is logged so crash recovery reproduces the
// same evolution, and the next ingest rebuilds from the whole store. The
// failed request maps to 503 with a Retry-After hint (recon.ErrCanceled).
func (s *Service) IngestContext(ctx context.Context, batch []IngestRef) (IngestResponse, error) {
	if len(batch) == 0 {
		return IngestResponse{}, fmt.Errorf("%w: empty batch", recon.ErrBatchRejected)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return IngestResponse{}, fmt.Errorf("%w: shutting down", ErrUnavailable)
	}
	start := time.Now()
	base := s.store.Len()
	if err := s.validateBatch(base, batch); err != nil {
		return IngestResponse{}, fmt.Errorf("%w: %w: %w", recon.ErrBatchRejected, recon.ErrSchemaViolation, err)
	}
	ord := s.accepted + 1
	if s.log != nil {
		payload, err := json.Marshal(batch)
		if err != nil {
			return IngestResponse{}, fmt.Errorf("%w: encode batch: %w", recon.ErrBatchRejected, err)
		}
		rec := durable.Record{Kind: durable.KindBatch, Ordinal: ord, Payload: payload}
		if err := s.log.Append(rec); err != nil {
			// Nothing was applied; the service stays coherent at the
			// previous batch, but refuses to acknowledge unlogged data.
			s.met.durErrors.Add(1)
			return IngestResponse{}, fmt.Errorf("serve: wal append: %w", err)
		}
		s.history = append(s.history, rec)
	}
	s.accepted = ord
	applyBatch(s.store, batch)
	if _, err := s.sess.CommitContext(ctx); err != nil {
		s.poisonSession(ord)
		s.syncDurabilityGauges()
		return IngestResponse{}, fmt.Errorf("reconcile: %w", err)
	}
	prevCommitted := s.committed
	s.committed = ord
	if err := s.publish(); err != nil {
		// The store holds the batch but no view was published for it:
		// roll the version back to the coherent published state and
		// poison so the next commit rebuilds store and view together.
		s.committed = prevCommitted
		s.poisonSession(ord)
		s.syncDurabilityGauges()
		return IngestResponse{}, err
	}
	elapsed := time.Since(start)
	s.met.recordIngest(len(batch), elapsed)
	s.maybeCheckpoint()
	s.syncDurabilityGauges()
	return IngestResponse{
		Added:           len(batch),
		FirstID:         reference.ID(base),
		LastID:          reference.ID(base + len(batch) - 1),
		SnapshotVersion: s.view.Load().Snapshot.Version,
		References:      s.store.Len(),
		ElapsedMS:       float64(elapsed.Nanoseconds()) / 1e6,
	}, nil
}

// applyBatch appends a validated batch's references to the store.
func applyBatch(store *reference.Store, batch []IngestRef) {
	for _, ir := range batch {
		r := reference.New(ir.Class)
		r.Source = ir.Source
		r.Entity = ir.Entity
		for attr, vals := range ir.Atomic {
			for _, v := range vals {
				r.AddAtomic(attr, v)
			}
		}
		for attr, targets := range ir.Assoc {
			for _, t := range targets {
				r.AddAssoc(attr, t)
			}
		}
		store.Add(r)
	}
}

// poisonSession records that batch ord's commit failed after its
// references reached the store: the session is marked for a from-scratch
// rebuild, the poisoned-session counter ticks, and with durability on a
// poison marker is appended so a crash-replay reproduces the same
// lifecycle. Callers hold mu.
func (s *Service) poisonSession(ord uint64) {
	s.sess.Poison()
	s.met.poisoned.Add(1)
	if s.log == nil {
		return
	}
	rec := durable.Record{Kind: durable.KindPoison, Ordinal: ord}
	if err := s.log.Append(rec); err != nil {
		// The marker could not be made durable; a crash before the next
		// successful append would replay this batch as committed. The log
		// marks itself broken on sync failures, so subsequent ingests
		// fail loudly rather than widen the divergence.
		s.met.durErrors.Add(1)
		return
	}
	s.history = append(s.history, rec)
}

// Close drains any in-flight ingest (it blocks on the writer lock), seals
// the service against further ingests, writes a final checkpoint so the
// next start takes the fast restore path, and closes the segment log.
// Reads keep serving the published view. Safe to call more than once.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.log == nil {
		return nil
	}
	if len(s.history) > 0 && maxOrdinal(s.history) > s.lastCkpt {
		s.checkpoint()
	}
	err := s.log.Close()
	s.syncDurabilityGauges()
	return err
}

// Query resolves one reconciliation query against the published view,
// recording latency and candidate-set size (per mode). An empty Type fans
// the query out to every class and re-merges the results.
func (s *Service) Query(q ReconQuery) ([]recon.Candidate, error) {
	switch q.Mode {
	case "", ModeAttribute:
		return s.queryAttribute(q)
	case ModeCollective:
		return s.queryCollective(q)
	default:
		s.met.recordQuery(0, 0, true)
		return nil, fmt.Errorf("unknown query mode %q (want %q or %q)", q.Mode, ModeAttribute, ModeCollective)
	}
}

// queryAttribute is the default attribute-only query path.
func (s *Service) queryAttribute(q ReconQuery) ([]recon.Candidate, error) {
	v := s.view.Load()
	start := time.Now()
	limit := q.Limit
	if limit <= 0 {
		limit = s.cfg.DefaultLimit
	}
	var all []recon.Candidate
	totalRefs := 0
	for _, class := range s.queryClasses(q) {
		cq := recon.Query{Class: class, Limit: limit}
		cq.Atomic = s.bindQueryText(class, q)
		if cq.Atomic == nil {
			if q.Type != "" {
				s.met.recordQuery(time.Since(start), 0, true)
				return nil, fmt.Errorf("unknown type %q", q.Type)
			}
			continue
		}
		cands, stats, err := v.Matcher.Match(cq)
		if err != nil {
			if q.Type != "" {
				s.met.recordQuery(time.Since(start), 0, true)
				return nil, err
			}
			continue
		}
		totalRefs += stats.CandidateRefs
		all = append(all, cands...)
	}
	sortCandidates(all)
	if len(all) > limit {
		all = all[:limit]
	}
	recon.MarkMatches(all, mergeThreshold(s.cfg.Recon))
	s.met.recordQuery(time.Since(start), totalRefs, false)
	return all, nil
}

// queryCollective is the collective query path: per class, properties
// split into atomic constraints and association targets, and the view's
// CollectiveMatcher scores with bounded expand-and-resolve. Budgets come
// from the server config, lowered (never raised) by the query's knobs.
func (s *Service) queryCollective(q ReconQuery) ([]recon.Candidate, error) {
	v := s.view.Load()
	start := time.Now()
	limit := q.Limit
	if limit <= 0 {
		limit = s.cfg.DefaultLimit
	}
	cc := v.Collective.Config()
	if q.MaxNodes > 0 && q.MaxNodes < cc.MaxNodes {
		cc.MaxNodes = q.MaxNodes
	}
	if q.MaxHops > 0 && q.MaxHops < cc.MaxHops {
		cc.MaxHops = q.MaxHops
	}
	if q.BudgetMS > 0 {
		if b := time.Duration(q.BudgetMS * float64(time.Millisecond)); cc.Budget == 0 || b < cc.Budget {
			cc.Budget = b
		}
	}

	var all []recon.Candidate
	totalRefs, totalPairs := 0, 0
	degraded := false
	fail := func(err error) ([]recon.Candidate, error) {
		s.met.recordCollective(time.Since(start), 0, 0, false, true)
		return nil, err
	}
	for _, class := range s.queryClasses(q) {
		rq, err := s.bindCollectiveQuery(v, class, q, limit)
		if rq == nil {
			if q.Type != "" {
				return fail(fmt.Errorf("unknown type %q", q.Type))
			}
			continue
		}
		if err != nil {
			if q.Type != "" {
				return fail(err)
			}
			continue
		}
		cands, stats, err := v.Collective.MatchConfig(*rq, cc)
		if err != nil {
			if q.Type != "" {
				return fail(err)
			}
			// Fan-out: a property foreign to this class rules it out.
			continue
		}
		totalRefs += stats.CandidateRefs
		totalPairs += stats.Expansion.PairNodes
		degraded = degraded || stats.Expansion.Degraded
		all = append(all, cands...)
	}
	sortCandidates(all)
	if len(all) > limit {
		all = all[:limit]
	}
	recon.MarkMatches(all, mergeThreshold(s.cfg.Recon))
	s.met.recordCollective(time.Since(start), totalRefs, totalPairs, degraded, false)
	return all, nil
}

// queryClasses resolves a query's class fan-out: the named type, or every
// schema class when the type is empty. The returned slice is shared; do
// not mutate it.
func (s *Service) queryClasses(q ReconQuery) []string {
	if q.Type != "" {
		return []string{q.Type}
	}
	return s.classNames
}

// bindCollectiveQuery builds the recon.Query for one class in collective
// mode: properties naming an association attribute of the class become
// association targets (values parsed as stored reference ids), properties
// naming an atomic attribute stay atomic constraints, and pids foreign to
// the class are ignored per the OpenRefine spec; the free-text query
// binds to the class's name-like attribute as in the attribute path.
// Association ids that don't resolve in the published snapshot — a racing
// ingest, or evidence from a newer snapshot than the one this query
// landed on — are dropped as unmatched evidence rather than failing the
// query. Returns (nil, nil) for an unknown class.
func (s *Service) bindCollectiveQuery(v *View, class string, q ReconQuery, limit int) (*recon.Query, error) {
	c, ok := s.cfg.Schema.Class(class)
	if !ok {
		return nil, nil
	}
	rq := recon.Query{Class: class, Atomic: make(map[string][]string), Limit: limit}
	for _, p := range q.Properties {
		vals := p.values()
		if len(vals) == 0 {
			continue
		}
		a, ok := c.Attr(p.PID)
		if !ok {
			continue
		}
		if a.Kind == schema.Association {
			for _, vs := range vals {
				n, err := strconv.Atoi(vs)
				if err != nil {
					return nil, fmt.Errorf("association property %q: value %q is not a stored reference id", p.PID, vs)
				}
				sr, ok := v.Snapshot.Ref(reference.ID(n))
				if !ok || sr.Class != a.Target {
					continue
				}
				if rq.Assoc == nil {
					rq.Assoc = make(map[string][]reference.ID)
				}
				rq.Assoc[p.PID] = append(rq.Assoc[p.PID], reference.ID(n))
			}
			continue
		}
		rq.Atomic[p.PID] = append(rq.Atomic[p.PID], vals...)
	}
	if q.Query != "" {
		if attr := nameAttr(c); attr != "" {
			rq.Atomic[attr] = append(rq.Atomic[attr], q.Query)
		}
	}
	return &rq, nil
}

// bindQueryText maps the free-text query string onto the class's
// name-like attribute (name, then title, then the first atomic
// attribute) and merges it with the property constraints. Property pids
// that don't name an atomic attribute of the class are ignored, as the
// OpenRefine spec requires — clients send one properties array against
// heterogeneous types, so an unknown pid is routine, not an error. It
// returns nil for an unknown class.
func (s *Service) bindQueryText(class string, q ReconQuery) map[string][]string {
	c, ok := s.cfg.Schema.Class(class)
	if !ok {
		return nil
	}
	atomic := make(map[string][]string, len(q.Properties)+1)
	for _, p := range q.Properties {
		if a, ok := c.Attr(p.PID); ok && a.Kind == schema.Atomic {
			if vals := p.values(); len(vals) > 0 {
				atomic[p.PID] = append(atomic[p.PID], vals...)
			}
		}
	}
	if q.Query != "" {
		if attr := nameAttr(c); attr != "" {
			atomic[attr] = append(atomic[attr], q.Query)
		}
	}
	return atomic
}

// nameAttr picks the class's name-like attribute for free-text binding:
// name, then title, then the first atomic attribute.
func nameAttr(c *schema.Class) string {
	if _, ok := c.Attr(schema.AttrName); ok {
		return schema.AttrName
	}
	if _, ok := c.Attr(schema.AttrTitle); ok {
		return schema.AttrTitle
	}
	if aa := c.AtomicAttrs(); len(aa) > 0 {
		return aa[0].Name
	}
	return ""
}

// sortCandidates re-sorts a merged candidate list the way Match orders a
// single class's: score descending, canonical id ascending.
func sortCandidates(cands []recon.Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Entity.Canonical < cands[j].Entity.Canonical
	})
}

// mergeThreshold mirrors the recon default.
func mergeThreshold(cfg recon.Config) float64 {
	if cfg.MergeThreshold != 0 {
		return cfg.MergeThreshold
	}
	return 0.85
}

// Manifest builds the OpenRefine service manifest.
func (s *Service) Manifest(baseURL string) Manifest {
	m := Manifest{
		Versions:        []string{"0.2"},
		Name:            s.cfg.Name,
		IdentifierSpace: s.cfg.IdentifierSpace,
		SchemaSpace:     s.cfg.SchemaSpace,
	}
	for _, c := range s.cfg.Schema.Classes() {
		m.DefaultTypes = append(m.DefaultTypes, TypeRef{ID: c.Name, Name: c.Name})
	}
	if baseURL != "" {
		m.View = &ManifestView{URL: baseURL + "/entity/{{id}}"}
		m.Preview = &ManifestPreview{URL: baseURL + "/preview/{{id}}", Width: previewWidth, Height: previewHeight}
		m.Suggest = &SuggestManifest{Entity: &SuggestService{ServiceURL: baseURL, ServicePath: "/suggest/entity"}}
		m.Extend = &ExtendManifest{ProposeProperties: &SuggestService{ServiceURL: baseURL, ServicePath: "/properties"}}
	}
	if v := s.view.Load(); v != nil && v.Collective != nil {
		cc := v.Collective.Config()
		m.Collective = &CollectiveManifest{
			Modes:        []string{ModeAttribute, ModeCollective},
			MaxNodes:     cc.MaxNodes,
			MaxHops:      cc.MaxHops,
			MaxNeighbors: cc.MaxNeighbors,
			BudgetMS:     float64(cc.Budget.Nanoseconds()) / 1e6,
		}
	}
	return m
}

// Metrics renders the service counters plus snapshot/store gauges. When
// the reconciler carries an obs.Counters set, its engine counters are
// merged in under "engine" (and thus reach expvar through
// cmd/reconserve's publisher).
func (s *Service) Metrics() MetricsSnapshot {
	out := s.met.snapshot()
	if c := s.obs().Counter(); c != nil {
		snap := c.Snapshot()
		out.Engine = &snap
	}
	if v := s.view.Load(); v != nil {
		out.Snapshot = SnapshotInfo{
			Version:    v.Snapshot.Version,
			AgeSeconds: time.Since(v.Published).Seconds(),
			References: v.Snapshot.RefCount(),
			Entities:   len(v.Snapshot.Entities()),
		}
		out.StoreReferences = v.Snapshot.RefCount()
	}
	if s.cfg.DataDir != "" {
		out.Durability = s.met.durability(s.recovery)
	}
	out.UptimeSeconds = time.Since(s.started).Seconds()
	return out
}
