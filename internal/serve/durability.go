package serve

// Durability wiring over internal/durable: write-ahead batch logging,
// snapshot checkpoints, and startup recovery.
//
// The engine is deterministic per ingest history, so recovery replays the
// logged history through the same single-writer Session path that applied
// it live, preserving the original batch boundaries. Incremental results
// depend on those boundaries (a rebatched replay is only
// superset-consistent, not bit-identical), so the log records the full
// lifecycle: one KindBatch record per validated batch, a KindPoison
// marker when a batch's commit failed after its references reached the
// store (the live session was poisoned and rebuilt on the next commit),
// and a KindCold marker when a restart restored the view from a
// checkpoint without the session's incremental graph. Replaying batches
// and markers in order therefore lands on exactly the state the live
// process had — same published version, same pair decisions.
//
// Checkpoints persist the full record history plus the published
// snapshot. A clean shutdown writes a final checkpoint, so the next start
// skips replay entirely: rebuild the store from the checkpoint's batch
// records (cheap appends, no reconcile), publish the decoded snapshot,
// and log a KindCold marker recording that the incremental session state
// was dropped. After a crash the service replays the history from the
// start — with one shortcut: batches behind the last poison/cold marker
// that is followed by further batches only feed the store, because the
// marker's rebuild discarded their incremental contribution anyway.
//
// Two checkpoint generations are kept, and segments are compacted only
// through the previous generation's ordinal, so a corrupt newest
// checkpoint always leaves an older checkpoint plus the segments that
// cover the gap.

import (
	"encoding/json"
	"fmt"
	"time"

	"refrecon/internal/durable"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
)

// recoveryInfo describes how the service started, for /metrics.
type recoveryInfo struct {
	// Mode is "fresh" (no prior state), "checkpoint" (fast restore from a
	// checkpoint covering the whole log), or "replay" (history replayed
	// through the session).
	Mode string
	// Batches is the number of batch records recovered.
	Batches int
	// Millis is the wall-clock recovery time.
	Millis float64
}

// maxOrdinal returns the highest record ordinal in a history.
func maxOrdinal(recs []durable.Record) uint64 {
	var max uint64
	for _, r := range recs {
		if r.Ordinal > max {
			max = r.Ordinal
		}
	}
	return max
}

func countBatches(recs []durable.Record) int {
	n := 0
	for _, r := range recs {
		if r.Kind == durable.KindBatch {
			n++
		}
	}
	return n
}

// encodeStoreBatch renders the store's references from index from onward
// as an ingest-batch payload — used to log a pre-populated initial store
// into a fresh data directory.
func encodeStoreBatch(store *reference.Store, from int) ([]byte, error) {
	batch := make([]IngestRef, 0, store.Len()-from)
	for i := from; i < store.Len(); i++ {
		r := store.Get(reference.ID(i))
		ir := IngestRef{Class: r.Class, Source: r.Source, Entity: r.Entity}
		if attrs := r.AtomicAttrs(); len(attrs) > 0 {
			ir.Atomic = make(map[string][]string, len(attrs))
			for _, a := range attrs {
				ir.Atomic[a] = r.Atomic(a)
			}
		}
		if attrs := r.AssocAttrs(); len(attrs) > 0 {
			ir.Assoc = make(map[string][]reference.ID, len(attrs))
			for _, a := range attrs {
				ir.Assoc[a] = r.Assoc(a)
			}
		}
		batch = append(batch, ir)
	}
	return json.Marshal(batch)
}

func decodeBatchPayload(payload []byte) ([]IngestRef, error) {
	var batch []IngestRef
	if err := json.Unmarshal(payload, &batch); err != nil {
		return nil, err
	}
	return batch, nil
}

// recover initializes the service from Config.DataDir: it opens the
// segment log (truncating a torn tail), loads the newest valid
// checkpoint, and either starts fresh, restores fast from the checkpoint,
// or replays the history. init may carry references only when the
// directory has no prior state (it becomes batch ordinal 1).
func (s *Service) recover(init *reference.Store) error {
	start := time.Now()
	lg, logRecs, err := durable.OpenLog(s.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("serve: open segment log: %w", err)
	}
	s.log = lg
	ck, err := durable.LatestCheckpoint(s.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("serve: load checkpoint: %w", err)
	}

	if len(logRecs) == 0 && ck == nil {
		if init.Len() > 0 {
			payload, err := encodeStoreBatch(init, 0)
			if err != nil {
				return fmt.Errorf("serve: encode initial store: %w", err)
			}
			rec := durable.Record{Kind: durable.KindBatch, Ordinal: 1, Payload: payload}
			if err := lg.Append(rec); err != nil {
				return fmt.Errorf("serve: log initial store: %w", err)
			}
			s.history = append(s.history, rec)
		}
		if err := s.initLive(init); err != nil {
			return err
		}
		s.recovery = recoveryInfo{Mode: "fresh", Millis: msSince(start)}
		return nil
	}

	if init.Len() > 0 {
		return fmt.Errorf("serve: data dir %q already holds state; the initial store must be empty (remove the directory to reseed)", s.cfg.DataDir)
	}

	// Merge the checkpoint's history with the log tail. A crash between
	// checkpoint write and segment compaction leaves records in both
	// places; the ordinal filter dedups batches, and markers at the
	// checkpoint boundary are kept unless the checkpoint already ends
	// with them (reapplying a poison is idempotent anyway).
	all := logRecs
	if ck != nil {
		all = append([]durable.Record(nil), ck.Records...)
		for _, r := range logRecs {
			if r.Ordinal > ck.Ordinal {
				all = append(all, r)
				continue
			}
			if r.IsMarker() && r.Ordinal == ck.Ordinal && !endsWith(ck.Records, r) {
				all = append(all, r)
			}
		}
		s.lastCkpt = ck.Ordinal
	}

	if ck != nil && ck.Ordinal >= maxOrdinal(logRecs) {
		if err := s.restoreFast(ck, all); err == nil {
			s.recovery = recoveryInfo{Mode: "checkpoint", Batches: countBatches(all), Millis: msSince(start)}
			return nil
		}
		// A framed-valid checkpoint whose snapshot fails to decode (or
		// disagrees with its own records) falls back to full replay; the
		// batch records are self-sufficient.
	}

	if err := s.replay(all); err != nil {
		return err
	}
	s.recovery = recoveryInfo{Mode: "replay", Batches: countBatches(all), Millis: msSince(start)}
	return nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e6
}

// endsWith reports whether history's trailing marker run contains an
// identical marker (same kind and ordinal).
func endsWith(recs []durable.Record, m durable.Record) bool {
	for i := len(recs) - 1; i >= 0; i-- {
		if !recs[i].IsMarker() {
			return false
		}
		if recs[i].Kind == m.Kind && recs[i].Ordinal == m.Ordinal {
			return true
		}
	}
	return false
}

// restoreFast is the clean-shutdown path: the checkpoint covers every log
// record, so the store is rebuilt by plain appends and the published view
// is the checkpoint's decoded snapshot — no reconcile at all. The
// session starts cold (its incremental graph is gone); a KindCold marker
// makes that restart part of the durable history so a later crash-replay
// rebuilds at the same point the live process did.
func (s *Service) restoreFast(ck *durable.Checkpoint, all []durable.Record) error {
	snap, err := recon.DecodeSnapshot(ck.Snapshot)
	if err != nil {
		return err
	}
	store := reference.NewStore()
	for _, r := range all {
		if r.Kind != durable.KindBatch {
			continue
		}
		batch, err := decodeBatchPayload(r.Payload)
		if err != nil {
			return fmt.Errorf("batch %d: %w", r.Ordinal, err)
		}
		applyBatch(store, batch)
	}
	if err := store.Validate(s.cfg.Schema); err != nil {
		return err
	}
	if snap.RefCount() > store.Len() {
		return fmt.Errorf("snapshot covers %d refs but the log yields %d", snap.RefCount(), store.Len())
	}

	cold := durable.Record{Kind: durable.KindCold, Ordinal: maxOrdinal(all)}
	if err := s.log.Append(cold); err != nil {
		return fmt.Errorf("serve: log cold-restart marker: %w", err)
	}
	s.history = append(all, cold)
	s.store = store
	s.sess = recon.New(s.cfg.Schema, s.cfg.Recon).NewSession(store)
	s.sess.Poison()
	s.accepted = maxOrdinal(all)
	s.committed = uint64(snap.Version)
	s.view.Store(&View{
		Snapshot:  snap,
		Matcher:   recon.NewMatcher(s.cfg.Schema, s.cfg.Recon, snap),
		Published: time.Now(),
	})
	return nil
}

// replay rebuilds the live state by running the recorded history through
// a fresh session, preserving the original batch boundaries and lifecycle
// markers. Batches behind the last marker that is followed by further
// batches only feed the store: the rebuild that marker triggered
// discarded their incremental contribution, and the first commit after it
// reconciles the whole store exactly as the live rebuild did.
func (s *Service) replay(all []durable.Record) error {
	store := reference.NewStore()
	sess := recon.New(s.cfg.Schema, s.cfg.Recon).NewSession(store)
	// Mirror the live constructor's initial (empty) reconcile so the
	// session always has a result to snapshot, even when every recorded
	// batch was poisoned.
	if _, err := sess.Reconcile(); err != nil {
		return fmt.Errorf("serve: replay init: %w", err)
	}

	lastBatch := -1
	for i, r := range all {
		if r.Kind == durable.KindBatch {
			lastBatch = i
		}
	}
	boundary := -1
	for i, r := range all {
		if r.IsMarker() && i < lastBatch {
			boundary = i
		}
	}

	var accepted, committed uint64
	for i, r := range all {
		switch r.Kind {
		case durable.KindBatch:
			batch, err := decodeBatchPayload(r.Payload)
			if err != nil {
				return fmt.Errorf("serve: replay batch %d: %w", r.Ordinal, err)
			}
			applyBatch(store, batch)
			if r.Ordinal > accepted {
				accepted = r.Ordinal
			}
			if i <= boundary {
				continue // a later rebuild supersedes this commit
			}
			if i+1 < len(all) && all[i+1].Kind == durable.KindPoison {
				continue // the live commit was cancelled; replay the cancellation
			}
			if _, err := sess.Reconcile(); err != nil {
				return fmt.Errorf("serve: replay batch %d: %w", r.Ordinal, err)
			}
			committed = r.Ordinal
		case durable.KindPoison, durable.KindCold:
			if i > boundary {
				sess.Poison()
			}
		default:
			return fmt.Errorf("serve: replay: unknown record kind %d at ordinal %d", r.Kind, r.Ordinal)
		}
	}

	s.history = all
	s.store = store
	s.sess = sess
	s.accepted = accepted
	s.committed = committed
	return s.publish()
}

// maybeCheckpoint writes a checkpoint when enough batches have committed
// since the last one. Callers hold mu.
func (s *Service) maybeCheckpoint() {
	if s.log == nil || s.cfg.CheckpointEvery <= 0 {
		return
	}
	if s.committed == 0 || s.committed < s.lastCkpt+uint64(s.cfg.CheckpointEvery) {
		return
	}
	s.checkpoint()
}

// checkpoint persists the full record history plus the published snapshot,
// prunes to two checkpoint generations, and compacts log segments covered
// by the previous generation (never the newest: if the file just written
// turns out corrupt on the next start, the previous checkpoint plus the
// retained segments still reproduce everything). Checkpoint failures are
// counted but never fail the ingest that triggered them — the log remains
// the source of truth. Callers hold mu.
func (s *Service) checkpoint() {
	v := s.view.Load()
	if v == nil || len(s.history) == 0 {
		return
	}
	blob, err := recon.EncodeSnapshot(v.Snapshot)
	if err != nil {
		s.met.durErrors.Add(1)
		return
	}
	ord := maxOrdinal(s.history)
	size, err := durable.WriteCheckpoint(s.cfg.DataDir, &durable.Checkpoint{
		Ordinal:  ord,
		Records:  s.history,
		Snapshot: blob,
	})
	if err != nil {
		s.met.durErrors.Add(1)
		return
	}
	if s.lastCkpt > 0 {
		if err := s.log.RemoveThrough(s.lastCkpt); err != nil {
			s.met.durErrors.Add(1)
		}
	}
	if err := durable.PruneCheckpoints(s.cfg.DataDir, 2); err != nil {
		s.met.durErrors.Add(1)
	}
	s.lastCkpt = ord
	s.met.checkpoints.Add(1)
	s.met.ckptBytes.Store(size)
	s.met.ckptOrdinal.Store(int64(ord))
}

// syncDurabilityGauges publishes the mu-guarded durability state into the
// lock-free metrics gauges that /metrics reads.
func (s *Service) syncDurabilityGauges() {
	s.met.accepted.Store(int64(s.accepted))
	s.met.committed.Store(int64(s.committed))
	if s.log == nil {
		return
	}
	s.met.historyRecords.Store(int64(len(s.history)))
	s.met.logBytes.Store(s.log.Bytes())
	s.met.logSegments.Store(int64(s.log.Segments()))
}
