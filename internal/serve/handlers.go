package serve

// HTTP surface. All read handlers resolve the published View once at the
// top and serve the whole request from it, so a concurrent ingest cannot
// change the data mid-response; the snapshot version backing each
// response is echoed in the X-Snapshot-Version header.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"refrecon/internal/obs"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
)

const maxBodyBytes = 64 << 20 // 64 MiB ingest/batch ceiling

// Handler returns the service's HTTP mux:
//
//	GET  /                    OpenRefine service manifest
//	GET|POST /reconcile       batched reconciliation queries, or a data-
//	                          extension request (extend payload)
//	GET  /suggest/entity      entity-label prefix autocomplete
//	GET  /preview/{id}        HTML entity flyout
//	GET  /properties          propose extendable properties for a type
//	GET  /entity/{id}         entity document for any member reference id
//	GET  /explain/{a}/{b}     merge explanation for a reference pair
//	POST /ingest              apply one reference batch
//	GET  /metrics             service metrics (JSON)
//	GET  /healthz, /readyz    liveness / readiness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleManifest)
	mux.HandleFunc("GET /reconcile", s.handleReconcile)
	mux.HandleFunc("POST /reconcile", s.handleReconcile)
	mux.HandleFunc("GET /suggest/entity", s.handleSuggest)
	mux.HandleFunc("GET /preview/{id}", s.handlePreview)
	mux.HandleFunc("GET /properties", s.handleProposeProperties)
	mux.HandleFunc("GET /entity/{id}", s.handleEntity)
	mux.HandleFunc("GET /explain/{a}/{b}", s.handleExplain)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.view.Load() == nil {
			writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "no snapshot published"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	if tr := s.obs().Tracer(); tr != nil {
		return traceRequests(tr, mux)
	}
	return mux
}

// traceRequests wraps a handler so every request records one span. Each
// request gets its own trace lane (tid): concurrent requests would
// otherwise appear nested by time containment on a shared lane.
func traceRequests(tr *obs.Tracer, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := tr.BeginTID("http", r.Method+" "+r.URL.Path, tr.NextTID())
		h.ServeHTTP(w, r)
		sp.End()
	})
}

// statusFor maps a service error to an HTTP status through the exported
// recon sentinels — errors.Is instead of string matching. A rejected
// batch is the client's fault (400); schema violations outside a batch
// rejection mean the stored data no longer validates (422); a cancelled
// reconcile or a shutting-down service is a transient server-side
// condition (503) the client should retry.
func statusFor(err error) int {
	switch {
	case errors.Is(err, recon.ErrBatchRejected):
		return http.StatusBadRequest
	case errors.Is(err, recon.ErrSchemaViolation):
		return http.StatusUnprocessableEntity
	case errors.Is(err, recon.ErrCanceled), errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(doc)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorDoc{Error: fmt.Sprintf(format, args...)})
}

func snapshotHeader(w http.ResponseWriter, v *View) {
	if v != nil {
		w.Header().Set("X-Snapshot-Version", strconv.Itoa(v.Snapshot.Version))
	}
}

func (s *Service) handleManifest(w http.ResponseWriter, r *http.Request) {
	scheme := "http"
	if r.TLS != nil {
		scheme = "https"
	}
	writeJSON(w, http.StatusOK, s.Manifest(scheme+"://"+r.Host))
}

// handleReconcile implements the batch query endpoint and, per the
// OpenRefine 0.2 protocol, the data-extension endpoint on the same path:
// queries={"q0": {...}, ...} or extend={"ids": [...], "properties":
// [...]} as form values (GET query string or POST form). A raw JSON POST
// body is also accepted — either the bare queries object or an
// {"extend": {...}} envelope.
func (s *Service) handleReconcile(w http.ResponseWriter, r *http.Request) {
	raw := r.FormValue("queries")
	rawExtend := r.FormValue("extend")
	if raw == "" && rawExtend == "" && r.Method == http.MethodPost {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		var envelope struct {
			Extend json.RawMessage `json:"extend"`
		}
		if json.Unmarshal(body, &envelope) == nil && len(envelope.Extend) > 0 {
			rawExtend = string(envelope.Extend)
		} else {
			raw = string(body)
		}
	}
	if rawExtend != "" {
		var req ExtendRequest
		if err := json.Unmarshal([]byte(rawExtend), &req); err != nil {
			writeErr(w, http.StatusBadRequest, "parse extend: %v", err)
			return
		}
		snapshotHeader(w, s.view.Load())
		writeJSON(w, http.StatusOK, s.Extend(req))
		return
	}
	if raw == "" {
		writeErr(w, http.StatusBadRequest, "missing queries parameter")
		return
	}
	var batch map[string]ReconQuery
	if err := json.Unmarshal([]byte(raw), &batch); err != nil {
		writeErr(w, http.StatusBadRequest, "parse queries: %v", err)
		return
	}
	v := s.view.Load()
	snapshotHeader(w, v)
	out := make(map[string]any, len(batch))
	for key, q := range batch {
		cands, err := s.Query(q)
		if err != nil {
			out[key] = map[string]string{"error": err.Error()}
			continue
		}
		out[key] = toWire(cands)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleEntity(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad entity id %q", r.PathValue("id"))
		return
	}
	v := s.view.Load()
	snapshotHeader(w, v)
	snap := v.Snapshot
	if id < 0 || id >= snap.RefCount() {
		writeErr(w, http.StatusNotFound, "reference %d not in snapshot (have %d references)", id, snap.RefCount())
		return
	}
	ent := snap.EntityOf(reference.ID(id))
	if ent == nil {
		writeErr(w, http.StatusNotFound, "reference %d has no entity assignment", id)
		return
	}
	writeJSON(w, http.StatusOK, EntityDoc{
		ID:              strconv.Itoa(int(ent.Canonical)),
		Name:            ent.Name(),
		Type:            []TypeRef{{ID: ent.Class, Name: ent.Class}},
		Canonical:       ent.Canonical,
		Members:         ent.Members,
		Atomic:          ent.Atomic,
		SnapshotVersion: snap.Version,
	})
}

// handleSuggest serves entity-label prefix autocomplete. OpenRefine
// sends the typed text as "prefix"; "limit" optionally bounds the hits.
func (s *Service) handleSuggest(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if l := r.FormValue("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", l)
			return
		}
		limit = n
	}
	snapshotHeader(w, s.view.Load())
	writeJSON(w, http.StatusOK, s.Suggest(r.FormValue("prefix"), limit))
}

// handlePreview serves the HTML flyout for one entity id (a canonical
// reference id, as returned by reconcile and suggest).
func (s *Service) handlePreview(w http.ResponseWriter, r *http.Request) {
	s.met.previews.Add(1)
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad entity id %q", r.PathValue("id"))
		return
	}
	v := s.view.Load()
	snapshotHeader(w, v)
	snap := v.Snapshot
	if id < 0 || id >= snap.RefCount() {
		writeErr(w, http.StatusNotFound, "reference %d not in snapshot (have %d references)", id, snap.RefCount())
		return
	}
	ent := snap.EntityOf(reference.ID(id))
	if ent == nil {
		writeErr(w, http.StatusNotFound, "reference %d has no entity assignment", id)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, previewHTML(ent, snap.Version))
}

// handleProposeProperties lists the extendable properties of a type.
func (s *Service) handleProposeProperties(w http.ResponseWriter, r *http.Request) {
	snapshotHeader(w, s.view.Load())
	writeJSON(w, http.StatusOK, s.ProposeProperties(r.FormValue("type")))
}

func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	a, errA := strconv.Atoi(r.PathValue("a"))
	b, errB := strconv.Atoi(r.PathValue("b"))
	if errA != nil || errB != nil {
		writeErr(w, http.StatusBadRequest, "bad reference pair %q/%q", r.PathValue("a"), r.PathValue("b"))
		return
	}
	v := s.view.Load()
	snapshotHeader(w, v)
	exp, err := v.Snapshot.Explain(reference.ID(a), reference.ID(b))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainDoc{
		A:               exp.A,
		B:               exp.B,
		Same:            exp.Same,
		Path:            exp.Path,
		Direct:          exp.Direct,
		Rendered:        exp.String(),
		SnapshotVersion: v.Snapshot.Version,
	})
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	batch, err := decodeIngest(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.IngestContext(r.Context(), batch)
	if err != nil {
		code := statusFor(err)
		if code == http.StatusServiceUnavailable {
			// A cancelled commit poisoned the session (the next ingest
			// rebuilds it) and a closing service is about to restart:
			// either way a prompt retry is expected to succeed.
			w.Header().Set("Retry-After", "1")
		}
		writeErr(w, code, "%v", err)
		return
	}
	snapshotHeader(w, s.view.Load())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
