package serve

// End-to-end coverage of the collective query mode: manifest
// advertisement, the reconcile handler's mode routing with association
// properties, budget-knob degradation to the attribute-only fallback, and
// the per-mode /metrics split.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// coAuthorStore builds the motivating collective fixture: two Smiths
// whose names tie against the query "J. Smith", separated only by who
// they co-author with.
func coAuthorStore() (store *reference.Store, jane, john, alice reference.ID) {
	store = reference.NewStore()
	jane = store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Jane Smith"))
	john = store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "John Smith"))
	alice = store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Alice Wu"))
	bob := store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Bob Lee"))
	store.Get(jane).AddAssoc(schema.AttrCoAuthor, alice)
	store.Get(john).AddAssoc(schema.AttrCoAuthor, bob)
	return store, jane, john, alice
}

func newCollectiveServer(t *testing.T) (*Service, *httptest.Server, reference.ID, reference.ID, reference.ID) {
	t.Helper()
	store, jane, john, alice := coAuthorStore()
	svc, err := NewFromStore(Config{
		Schema: schema.PIM(),
		Name:   "refrecon-test",
		Recon:  recon.DefaultConfig(),
	}, store)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts, jane, john, alice
}

// reconRaw is the per-query result envelope with the error alternative,
// as the handler actually emits it.
type reconRaw struct {
	Result []ReconCandidate `json:"result"`
	Error  string           `json:"error"`
}

func postReconcileRaw(t *testing.T, base string, queries map[string]ReconQuery) (map[string]reconRaw, *http.Response) {
	t.Helper()
	body, err := json.Marshal(queries)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/reconcile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reconcile status %d", resp.StatusCode)
	}
	var out map[string]reconRaw
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp
}

func TestServeCollectiveManifest(t *testing.T) {
	_, ts, _, _, _ := newCollectiveServer(t)
	var m Manifest
	getJSON(t, ts.URL+"/", &m)
	if m.Collective == nil {
		t.Fatal("manifest advertises no collective section")
	}
	modes := make(map[string]bool)
	for _, mode := range m.Collective.Modes {
		modes[mode] = true
	}
	if !modes[ModeAttribute] || !modes[ModeCollective] {
		t.Errorf("modes = %v, want both %q and %q", m.Collective.Modes, ModeAttribute, ModeCollective)
	}
	if m.Collective.MaxNodes != 512 || m.Collective.MaxHops != 2 || m.Collective.MaxNeighbors != 8 {
		t.Errorf("budget defaults = %+v, want 512/2/8", m.Collective)
	}
	if m.Collective.BudgetMS != 250 {
		t.Errorf("BudgetMS = %v, want the 250ms serving default", m.Collective.BudgetMS)
	}
}

// TestServeCollectiveReconcile drives the full loop through the HTTP
// handler: an attribute query ties the two Smiths; the same query in
// collective mode with a coAuthor property ranks the co-author's Smith
// first. The /metrics document must account for the two modes separately.
func TestServeCollectiveReconcile(t *testing.T) {
	_, ts, jane, john, alice := newCollectiveServer(t)

	attrOut, _ := postReconcileRaw(t, ts.URL, map[string]ReconQuery{
		"q0": {Query: "J. Smith", Type: schema.ClassPerson},
	})
	if len(attrOut["q0"].Result) < 2 {
		t.Fatalf("attribute query found %d candidates, want both Smiths", len(attrOut["q0"].Result))
	}
	if a, b := attrOut["q0"].Result[0], attrOut["q0"].Result[1]; a.Score != b.Score {
		t.Fatalf("fixture broken: attribute scores must tie, got %v vs %v", a.Score, b.Score)
	}

	collOut, resp := postReconcileRaw(t, ts.URL, map[string]ReconQuery{
		"q0": {
			Query: "J. Smith",
			Type:  schema.ClassPerson,
			Mode:  ModeCollective,
			Properties: []QueryProperty{
				{PID: schema.AttrCoAuthor, V: json.RawMessage(strconv.Itoa(int(alice)))},
			},
		},
	})
	if resp.Header.Get("X-Snapshot-Version") == "" {
		t.Error("collective response missing X-Snapshot-Version header")
	}
	res := collOut["q0"]
	if res.Error != "" {
		t.Fatalf("collective query failed: %s", res.Error)
	}
	if len(res.Result) < 2 {
		t.Fatalf("collective query found %d candidates, want both Smiths", len(res.Result))
	}
	if res.Result[0].ID != strconv.Itoa(int(jane)) {
		t.Errorf("top candidate = %+v, want Jane (id %d) first on shared co-author", res.Result[0], jane)
	}
	if res.Result[1].ID != strconv.Itoa(int(john)) {
		t.Errorf("runner-up = %+v, want John (id %d)", res.Result[1], john)
	}
	if res.Result[0].Score <= res.Result[1].Score {
		t.Errorf("relational evidence must break the tie: %v vs %v",
			res.Result[0].Score, res.Result[1].Score)
	}

	var met MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Queries != 2 {
		t.Errorf("queries = %d, want 2 (both modes count)", met.Queries)
	}
	if met.QueryLatency.Count != 1 {
		t.Errorf("attribute latency count = %d, want 1", met.QueryLatency.Count)
	}
	if met.CollectiveQueries != 1 || met.CollectiveLatency.Count != 1 {
		t.Errorf("collective split = %d queries / %d latencies, want 1/1",
			met.CollectiveQueries, met.CollectiveLatency.Count)
	}
	if met.CollectiveDegraded != 0 {
		t.Errorf("collectiveDegraded = %d, want 0", met.CollectiveDegraded)
	}
	if met.CollectiveExpansion.Count != 1 || met.CollectiveExpansion.Max == 0 {
		t.Errorf("expansion histogram = %+v, want one observation with nonzero size", met.CollectiveExpansion)
	}
}

// TestServeCollectiveBudgetKnobDegrades lowers the node budget to 1
// through the per-query knob: the query must degrade to the
// attribute-only result — same candidates, no error — and tick the
// degraded counter.
func TestServeCollectiveBudgetKnobDegrades(t *testing.T) {
	_, ts, _, _, alice := newCollectiveServer(t)

	attrOut, _ := postReconcileRaw(t, ts.URL, map[string]ReconQuery{
		"q0": {Query: "J. Smith", Type: schema.ClassPerson},
	})
	collOut, _ := postReconcileRaw(t, ts.URL, map[string]ReconQuery{
		"q0": {
			Query:    "J. Smith",
			Type:     schema.ClassPerson,
			Mode:     ModeCollective,
			MaxNodes: 1,
			Properties: []QueryProperty{
				{PID: schema.AttrCoAuthor, V: json.RawMessage(strconv.Itoa(int(alice)))},
			},
		},
	})
	if collOut["q0"].Error != "" {
		t.Fatalf("budget exhaustion must degrade, not error: %s", collOut["q0"].Error)
	}
	a, c := attrOut["q0"].Result, collOut["q0"].Result
	if len(a) != len(c) {
		t.Fatalf("degraded result has %d candidates, attribute baseline %d", len(c), len(a))
	}
	for i := range a {
		if a[i].ID != c[i].ID || a[i].Score != c[i].Score || a[i].Match != c[i].Match {
			t.Errorf("degraded candidate %d = %+v, want the attribute-only %+v", i, c[i], a[i])
		}
	}

	var met MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &met)
	if met.CollectiveDegraded != 1 {
		t.Errorf("collectiveDegraded = %d, want 1", met.CollectiveDegraded)
	}
}

// TestServeCollectiveErrors pins the failure surface: an unknown mode and
// a malformed association value come back as per-query errors (the batch
// itself still succeeds) and count as query errors, while an association
// id that does not resolve in the published snapshot is dropped as
// unmatched evidence — clients race ingest, so stale or too-new ids are
// routine, not errors.
func TestServeCollectiveErrors(t *testing.T) {
	_, ts, _, _, _ := newCollectiveServer(t)
	out, _ := postReconcileRaw(t, ts.URL, map[string]ReconQuery{
		"badMode": {Query: "J. Smith", Type: schema.ClassPerson, Mode: "turbo"},
		"badAssoc": {
			Query: "J. Smith",
			Type:  schema.ClassPerson,
			Mode:  ModeCollective,
			Properties: []QueryProperty{
				{PID: schema.AttrCoAuthor, V: json.RawMessage(`"not-an-id"`)},
			},
		},
		"unresolvedTarget": {
			Query: "J. Smith",
			Type:  schema.ClassPerson,
			Mode:  ModeCollective,
			Properties: []QueryProperty{
				{PID: schema.AttrCoAuthor, V: json.RawMessage("99")},
			},
		},
	})
	for _, key := range []string{"badMode", "badAssoc"} {
		if out[key].Error == "" {
			t.Errorf("%s: want a per-query error, got %+v", key, out[key])
		}
	}
	if out["unresolvedTarget"].Error != "" || len(out["unresolvedTarget"].Result) == 0 {
		t.Errorf("unresolvedTarget: want scored candidates with the id dropped, got %+v", out["unresolvedTarget"])
	}
	var met MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &met)
	if met.QueryErrors != 2 {
		t.Errorf("queryErrors = %d, want 2", met.QueryErrors)
	}
}
