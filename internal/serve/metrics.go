package serve

// Service observability. Counters are lock-free (atomics plus a
// fixed-bucket latency histogram) so the query hot path never contends
// with scrapes or with other queries; /metrics renders them as JSON, and
// cmd/reconserve additionally publishes the same view through expvar.

import (
	"sort"
	"sync/atomic"
	"time"

	"refrecon/internal/obs"
)

// histogram is a lock-free fixed-bucket latency histogram. Buckets are
// log-spaced; quantiles are estimated as the upper bound of the bucket the
// target rank falls in (the max tracks the true worst case).
type histogram struct {
	boundsMS []float64 // upper bounds, ms
	counts   []atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

func newHistogram() *histogram {
	// 0.02ms .. ~84s in ×1.5 steps: fine resolution where queries live
	// (sub-millisecond to tens of milliseconds), coarse at the tail.
	var bounds []float64
	for b := 0.02; b < 90_000; b *= 1.5 {
		bounds = append(bounds, b)
	}
	return &histogram{boundsMS: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	// Binary search: the bucket array is ~37 entries and observe sits on
	// the per-query hot path, so a linear scan costs real time at high
	// request rates.
	i := sort.SearchFloat64s(h.boundsMS, ms)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(d.Nanoseconds())
	for {
		cur := h.maxNanos.Load()
		if d.Nanoseconds() <= cur || h.maxNanos.CompareAndSwap(cur, d.Nanoseconds()) {
			break
		}
	}
}

// quantile returns the estimated q-quantile in milliseconds (0 with no
// observations).
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > target {
			if i < len(h.boundsMS) {
				return h.boundsMS[i]
			}
			return float64(h.maxNanos.Load()) / 1e6
		}
	}
	return float64(h.maxNanos.Load()) / 1e6
}

// LatencySummary is the JSON rendering of a histogram.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"meanMs"`
	P50MS  float64 `json:"p50Ms"`
	P90MS  float64 `json:"p90Ms"`
	P99MS  float64 `json:"p99Ms"`
	MaxMS  float64 `json:"maxMs"`
}

func (h *histogram) summary() LatencySummary {
	s := LatencySummary{
		Count: h.count.Load(),
		P50MS: h.quantile(0.50),
		P90MS: h.quantile(0.90),
		P99MS: h.quantile(0.99),
		MaxMS: float64(h.maxNanos.Load()) / 1e6,
	}
	if s.Count > 0 {
		s.MeanMS = float64(h.sumNanos.Load()) / 1e6 / float64(s.Count)
	}
	return s
}

// sizeHistogram is a lock-free fixed-bucket histogram over integer sizes
// (expanded-subgraph node counts). Buckets are powers of two; quantiles
// are estimated as the bucket upper bound, the max is exact.
type sizeHistogram struct {
	bounds []int64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func newSizeHistogram() *sizeHistogram {
	// 1, 2, 4, .. 65536: collective subgraphs are budget-capped (default
	// 512 pair nodes), so the top buckets only catch raised budgets.
	var bounds []int64
	for b := int64(1); b <= 65536; b *= 2 {
		bounds = append(bounds, b)
	}
	return &sizeHistogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *sizeHistogram) observe(n int) {
	v := int64(n)
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// quantile returns the estimated q-quantile size (0 with no observations).
func (h *sizeHistogram) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}

// SizeSummary is the JSON rendering of a sizeHistogram.
type SizeSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

func (h *sizeHistogram) summary() SizeSummary {
	s := SizeSummary{
		Count: h.count.Load(),
		P50:   h.quantile(0.50),
		P90:   h.quantile(0.90),
		P99:   h.quantile(0.99),
		Max:   h.max.Load(),
	}
	if s.Count > 0 {
		s.Mean = float64(h.sum.Load()) / float64(s.Count)
	}
	return s
}

// metrics aggregates the service counters.
type metrics struct {
	queries   atomic.Int64 // all reconcile queries, every mode
	queryErrs atomic.Int64
	queryLat  *histogram   // attribute-mode latency
	candRefs  atomic.Int64 // total blocking candidate references across queries
	candLast  atomic.Int64
	candMax   atomic.Int64

	// Collective-mode telemetry, split from the attribute path so the two
	// latency profiles stay readable side by side.
	collQueries  atomic.Int64
	collDegraded atomic.Int64 // queries that fell back to attribute-only scoring
	collLat      *histogram
	collSize     *sizeHistogram // expanded-subgraph pair nodes per query

	// Ecosystem-surface counters: suggest autocompletes, preview flyouts,
	// and data-extension requests.
	suggests atomic.Int64
	previews atomic.Int64
	extends  atomic.Int64

	batches    atomic.Int64
	ingestRefs atomic.Int64
	ingestNS   atomic.Int64
	lastInNS   atomic.Int64

	// poisoned counts session poisonings (commit or publish failures that
	// forced a from-scratch rebuild on the next ingest); it ticks in both
	// in-memory and durable modes.
	poisoned atomic.Int64

	// Durability gauges, synced from the mu-guarded service state after
	// every ingest so /metrics never takes the writer lock.
	durErrors      atomic.Int64 // non-fatal durability failures (marker/checkpoint/compaction)
	checkpoints    atomic.Int64
	ckptBytes      atomic.Int64 // size of the newest checkpoint file
	ckptOrdinal    atomic.Int64
	accepted       atomic.Int64
	committed      atomic.Int64
	historyRecords atomic.Int64
	logBytes       atomic.Int64
	logSegments    atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		queryLat: newHistogram(),
		collLat:  newHistogram(),
		collSize: newSizeHistogram(),
	}
}

func (m *metrics) recordQuery(d time.Duration, candRefs int, err bool) {
	m.queries.Add(1)
	if err {
		m.queryErrs.Add(1)
		return
	}
	m.queryLat.observe(d)
	m.candRefs.Add(int64(candRefs))
	m.candLast.Store(int64(candRefs))
	for {
		cur := m.candMax.Load()
		if int64(candRefs) <= cur || m.candMax.CompareAndSwap(cur, int64(candRefs)) {
			break
		}
	}
}

// recordCollective records one collective-mode query: latency and
// expansion size land in the collective histograms, while the shared
// query/candidate counters tick as for any query.
func (m *metrics) recordCollective(d time.Duration, candRefs, pairNodes int, degraded, err bool) {
	m.queries.Add(1)
	m.collQueries.Add(1)
	if err {
		m.queryErrs.Add(1)
		return
	}
	m.collLat.observe(d)
	m.collSize.observe(pairNodes)
	if degraded {
		m.collDegraded.Add(1)
	}
	m.candRefs.Add(int64(candRefs))
	m.candLast.Store(int64(candRefs))
	for {
		cur := m.candMax.Load()
		if int64(candRefs) <= cur || m.candMax.CompareAndSwap(cur, int64(candRefs)) {
			break
		}
	}
}

func (m *metrics) recordIngest(refs int, d time.Duration) {
	m.batches.Add(1)
	m.ingestRefs.Add(int64(refs))
	m.ingestNS.Add(d.Nanoseconds())
	m.lastInNS.Store(d.Nanoseconds())
}

// MetricsSnapshot is the JSON document served at /metrics (and published
// via expvar by cmd/reconserve).
type MetricsSnapshot struct {
	Queries      int64          `json:"queries"`
	QueryErrors  int64          `json:"queryErrors"`
	QueryLatency LatencySummary `json:"queryLatencyMs"`
	Candidates   CandidateStats `json:"candidates"`
	// Collective-mode split: query count, degraded (attribute-fallback)
	// count, a separate latency histogram, and the expanded-subgraph-size
	// distribution. QueryLatency above covers attribute-mode queries only.
	CollectiveQueries   int64          `json:"collectiveQueries"`
	CollectiveDegraded  int64          `json:"collectiveDegraded"`
	CollectiveLatency   LatencySummary `json:"collectiveLatencyMs"`
	CollectiveExpansion SizeSummary    `json:"collectiveExpansionNodes"`
	// Ecosystem-surface request counters (suggest/preview/data-extension).
	SuggestRequests int64         `json:"suggestRequests"`
	PreviewRequests int64         `json:"previewRequests"`
	ExtendRequests  int64         `json:"extendRequests"`
	Ingest          IngestMetrics `json:"ingest"`
	Snapshot        SnapshotInfo  `json:"snapshot"`
	UptimeSeconds   float64       `json:"uptimeSeconds"`
	StoreReferences int           `json:"storeReferences"`
	// SessionPoisoned counts commits that failed after their batch reached
	// the store, forcing the next ingest to rebuild the session.
	SessionPoisoned int64 `json:"sessionPoisoned"`
	// Durability describes the write-ahead log and checkpoints when the
	// service runs with Config.DataDir (absent otherwise).
	Durability *DurabilityInfo `json:"durability,omitempty"`
	// Engine carries the reconciliation-engine counters when the service
	// was configured with an obs.Counters set (absent otherwise).
	Engine *obs.CounterSnapshot `json:"engine,omitempty"`
}

// DurabilityInfo describes the durable-session state at /metrics.
type DurabilityInfo struct {
	// Recovery says how the service last started: "fresh", "checkpoint"
	// (fast restore), or "replay" (history replayed through the session).
	Recovery        string  `json:"recovery"`
	RecoveryBatches int     `json:"recoveryBatches"`
	RecoveryMS      float64 `json:"recoveryMs"`
	// Accepted is the ordinal of the last batch fsynced to the log;
	// Committed the ordinal whose commit last published a view. They
	// diverge while the session is poisoned.
	Accepted  int64 `json:"accepted"`
	Committed int64 `json:"committed"`
	// HistoryRecords counts batch + lifecycle records in the replayable
	// history.
	HistoryRecords    int64 `json:"historyRecords"`
	LogBytes          int64 `json:"logBytes"`
	LogSegments       int64 `json:"logSegments"`
	Checkpoints       int64 `json:"checkpoints"`
	CheckpointBytes   int64 `json:"checkpointBytes"`
	CheckpointOrdinal int64 `json:"checkpointOrdinal"`
	Errors            int64 `json:"errors"`
}

// CandidateStats describes blocking candidate-set sizes per query.
type CandidateStats struct {
	Total int64   `json:"total"`
	Last  int64   `json:"last"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
}

// IngestMetrics describes ingest batch timings.
type IngestMetrics struct {
	Batches    int64   `json:"batches"`
	References int64   `json:"references"`
	LastMS     float64 `json:"lastMs"`
	TotalMS    float64 `json:"totalMs"`
}

// SnapshotInfo describes the currently published snapshot.
type SnapshotInfo struct {
	Version    int     `json:"version"`
	AgeSeconds float64 `json:"ageSeconds"`
	References int     `json:"references"`
	Entities   int     `json:"entities"`
}

func (m *metrics) snapshot() MetricsSnapshot {
	out := MetricsSnapshot{
		Queries:             m.queries.Load(),
		QueryErrors:         m.queryErrs.Load(),
		QueryLatency:        m.queryLat.summary(),
		CollectiveQueries:   m.collQueries.Load(),
		CollectiveDegraded:  m.collDegraded.Load(),
		CollectiveLatency:   m.collLat.summary(),
		CollectiveExpansion: m.collSize.summary(),
		SuggestRequests:     m.suggests.Load(),
		PreviewRequests:     m.previews.Load(),
		ExtendRequests:      m.extends.Load(),
		Candidates: CandidateStats{
			Total: m.candRefs.Load(),
			Last:  m.candLast.Load(),
			Max:   m.candMax.Load(),
		},
		Ingest: IngestMetrics{
			Batches:    m.batches.Load(),
			References: m.ingestRefs.Load(),
			LastMS:     float64(m.lastInNS.Load()) / 1e6,
			TotalMS:    float64(m.ingestNS.Load()) / 1e6,
		},
	}
	if n := out.QueryLatency.Count + out.CollectiveLatency.Count; n > 0 {
		out.Candidates.Mean = float64(out.Candidates.Total) / float64(n)
	}
	out.SessionPoisoned = m.poisoned.Load()
	return out
}

// durability renders the durability gauges (called only with DataDir set).
func (m *metrics) durability(r recoveryInfo) *DurabilityInfo {
	return &DurabilityInfo{
		Recovery:          r.Mode,
		RecoveryBatches:   r.Batches,
		RecoveryMS:        r.Millis,
		Accepted:          m.accepted.Load(),
		Committed:         m.committed.Load(),
		HistoryRecords:    m.historyRecords.Load(),
		LogBytes:          m.logBytes.Load(),
		LogSegments:       m.logSegments.Load(),
		Checkpoints:       m.checkpoints.Load(),
		CheckpointBytes:   m.ckptBytes.Load(),
		CheckpointOrdinal: m.ckptOrdinal.Load(),
		Errors:            m.durErrors.Load(),
	}
}
