package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"

	"refrecon/internal/datagen/cora"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// personStore builds three person references where the first two share an
// email account (a hard merge) and the third is unrelated.
func personStore() *reference.Store {
	store := reference.NewStore()
	store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Alice Smith").
		AddAtomic(schema.AttrEmail, "asmith@cs.example.edu"))
	store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "A. Smith").
		AddAtomic(schema.AttrEmail, "asmith@cs.example.edu"))
	store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Bob Jones").
		AddAtomic(schema.AttrEmail, "bjones@ee.example.edu"))
	return store
}

func newTestServer(t *testing.T, store *reference.Store) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := NewFromStore(Config{Schema: schema.PIM(), Name: "refrecon-test"}, store)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

func postReconcile(t *testing.T, base string, queries map[string]ReconQuery) (map[string]ReconResult, *http.Response) {
	t.Helper()
	body, err := json.Marshal(queries)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/reconcile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reconcile status %d", resp.StatusCode)
	}
	var out map[string]ReconResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp
}

func TestServeManifest(t *testing.T) {
	_, ts := newTestServer(t, personStore())
	var m Manifest
	resp := getJSON(t, ts.URL+"/", &m)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(m.Versions) != 1 || m.Versions[0] != "0.2" {
		t.Errorf("versions = %v, want [0.2]", m.Versions)
	}
	if m.Name != "refrecon-test" || m.IdentifierSpace == "" || m.SchemaSpace == "" {
		t.Errorf("manifest identity incomplete: %+v", m)
	}
	types := make(map[string]bool)
	for _, tr := range m.DefaultTypes {
		types[tr.ID] = true
	}
	for _, want := range []string{schema.ClassPerson, schema.ClassArticle, schema.ClassVenue} {
		if !types[want] {
			t.Errorf("defaultTypes missing %q (got %v)", want, m.DefaultTypes)
		}
	}
	if m.View == nil || !strings.Contains(m.View.URL, "/entity/{{id}}") {
		t.Errorf("view template missing: %+v", m.View)
	}
}

// TestServeReconcileForm covers the protocol's form-encoded transport:
// queries as a URL parameter on GET and as a POST form value.
func TestServeReconcileForm(t *testing.T) {
	_, ts := newTestServer(t, personStore())
	raw := `{"q0":{"query":"Alice Smith","type":"Person","properties":[{"pid":"email","v":"asmith@cs.example.edu"}]}}`

	var viaGet map[string]ReconResult
	getJSON(t, ts.URL+"/reconcile?queries="+url.QueryEscape(raw), &viaGet)

	resp, err := http.PostForm(ts.URL+"/reconcile", url.Values{"queries": {raw}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var viaForm map[string]ReconResult
	if err := json.NewDecoder(resp.Body).Decode(&viaForm); err != nil {
		t.Fatal(err)
	}

	for name, out := range map[string]map[string]ReconResult{"GET": viaGet, "POST form": viaForm} {
		res, ok := out["q0"]
		if !ok || len(res.Result) == 0 {
			t.Fatalf("%s: no candidates: %v", name, out)
		}
		top := res.Result[0]
		if top.ID != "0" || !top.Match {
			t.Errorf("%s: top = %+v, want id 0 with match=true", name, top)
		}
		if top.Score < 99 || top.Score > 100 {
			t.Errorf("%s: score %.2f outside the wire [0,100] scale", name, top.Score)
		}
		if len(top.Type) != 1 || top.Type[0].ID != schema.ClassPerson {
			t.Errorf("%s: type = %v", name, top.Type)
		}
	}
}

// TestServeReconcileCora runs reconcile queries against a generated Cora
// citation corpus: for at least one known-duplicate citation, querying by
// its (noisy) title must rank its gold entity first.
func TestServeReconcileCora(t *testing.T) {
	g, err := cora.Generate(cora.Default(0.05))
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, g.Store)
	snap := svc.View().Snapshot

	// Gold-duplicate article references: same non-empty entity label, at
	// least two references.
	byGold := make(map[string][]reference.ID)
	for _, id := range g.Store.ByClass(schema.ClassArticle) {
		r := g.Store.Get(id)
		if r.Entity != "" {
			byGold[r.Entity] = append(byGold[r.Entity], id)
		}
	}
	tried, hits := 0, 0
	for gold, ids := range byGold {
		if len(ids) < 2 || tried >= 10 {
			continue
		}
		title := g.Store.Get(ids[0]).FirstAtomic(schema.AttrTitle)
		if title == "" {
			continue
		}
		tried++
		out, _ := postReconcile(t, ts.URL, map[string]ReconQuery{
			"q0": {Query: title, Type: schema.ClassArticle},
		})
		res := out["q0"]
		if len(res.Result) == 0 {
			continue
		}
		canonical, err := strconv.Atoi(res.Result[0].ID)
		if err != nil {
			t.Fatalf("candidate id %q not numeric", res.Result[0].ID)
		}
		if sr, ok := snap.Ref(reference.ID(canonical)); ok && sr.Entity == gold {
			hits++
		}
	}
	if tried == 0 {
		t.Fatal("cora corpus has no gold-duplicate articles to query")
	}
	if hits == 0 {
		t.Errorf("0/%d known-duplicate queries ranked the gold entity first", tried)
	}
	t.Logf("cora: %d/%d duplicate queries hit the gold entity", hits, tried)
}

func TestServeEntityAndExplain(t *testing.T) {
	svc, ts := newTestServer(t, personStore())

	var ent EntityDoc
	resp := getJSON(t, ts.URL+"/entity/1", &ent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("entity status %d", resp.StatusCode)
	}
	if ent.Canonical != 0 || len(ent.Members) != 2 {
		t.Errorf("entity/1 = %+v, want canonical 0 with members [0 1]", ent)
	}
	if got := resp.Header.Get("X-Snapshot-Version"); got != strconv.Itoa(svc.View().Snapshot.Version) {
		t.Errorf("X-Snapshot-Version = %q", got)
	}

	var exp ExplainDoc
	resp = getJSON(t, ts.URL+"/explain/0/1", &exp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d", resp.StatusCode)
	}
	if !exp.Same || exp.Rendered == "" {
		t.Errorf("explain/0/1 = %+v, want same=true with rendering", exp)
	}
	want, err := svc.View().Snapshot.Explain(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Rendered != want.String() {
		t.Errorf("rendered explanation diverges from snapshot:\nwire: %s\nsnapshot: %s", exp.Rendered, want.String())
	}

	getJSON(t, ts.URL+"/explain/0/2", &exp)
	if exp.Same {
		t.Errorf("explain/0/2 reports same=true for distinct people")
	}

	// Out-of-range lookups are 404, not 500.
	r404, err := http.Get(ts.URL + "/entity/99")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("entity/99 status = %d, want 404", r404.StatusCode)
	}
}

func ingestBody(refs []IngestRef) *bytes.Reader {
	b, _ := json.Marshal(IngestRequest{References: refs})
	return bytes.NewReader(b)
}

func TestServeIngestValidation(t *testing.T) {
	svc, ts := newTestServer(t, personStore())

	// A batch with one bad reference must be rejected whole.
	resp, err := http.Post(ts.URL+"/ingest", "application/json", ingestBody([]IngestRef{
		{Class: schema.ClassPerson, Atomic: map[string][]string{schema.AttrName: {"Carol"}}},
		{Class: "Nope"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status = %d, want 400", resp.StatusCode)
	}
	if got := svc.View().Snapshot.RefCount(); got != 3 {
		t.Fatalf("rejected batch mutated the store: %d references", got)
	}

	// Unknown attributes and out-of-range association targets too.
	for name, batch := range map[string][]IngestRef{
		"unknown attr": {{Class: schema.ClassPerson, Atomic: map[string][]string{"zip": {"x"}}}},
		"assoc range":  {{Class: schema.ClassArticle, Atomic: map[string][]string{schema.AttrTitle: {"T"}}, Assoc: map[string][]reference.ID{schema.AttrAuthoredBy: {99}}}},
		"assoc class":  {{Class: schema.ClassArticle, Atomic: map[string][]string{schema.AttrTitle: {"T"}}, Assoc: map[string][]reference.ID{schema.AttrPublishedIn: {0}}}},
	} {
		resp, err := http.Post(ts.URL+"/ingest", "application/json", ingestBody(batch))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}

	// A good batch with an intra-batch association lands and re-publishes.
	var ir IngestResponse
	resp, err = http.Post(ts.URL+"/ingest", "application/json", ingestBody([]IngestRef{
		{Class: schema.ClassPerson, Atomic: map[string][]string{schema.AttrName: {"Dana White"}}},
		{Class: schema.ClassArticle,
			Atomic: map[string][]string{schema.AttrTitle: {"On Batches"}},
			Assoc:  map[string][]reference.ID{schema.AttrAuthoredBy: {3}}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Added != 2 || ir.FirstID != 3 || ir.LastID != 4 {
		t.Fatalf("good batch: status %d resp %+v", resp.StatusCode, ir)
	}
	if got := svc.View().Snapshot.RefCount(); got != 5 {
		t.Errorf("snapshot refs = %d, want 5", got)
	}
}

// TestServeIngestWhileQuerying drives concurrent readers against the HTTP
// API while a writer streams ingest batches, under -race. Each reader
// checks every response is internally consistent and that the snapshot
// version it observes never goes backwards.
func TestServeIngestWhileQuerying(t *testing.T) {
	_, ts := newTestServer(t, personStore())
	const batches = 8
	const readers = 4

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastVersion := 0
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(map[string]ReconQuery{
					"q0": {Query: "Alice Smith", Type: schema.ClassPerson,
						Properties: []QueryProperty{{PID: schema.AttrEmail, V: json.RawMessage(`"asmith@cs.example.edu"`)}}},
				})
				resp, err := http.Post(ts.URL+"/reconcile", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				var out map[string]ReconResult
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					t.Errorf("reader %d: decode: %v", r, err)
					return
				}
				v, err := strconv.Atoi(resp.Header.Get("X-Snapshot-Version"))
				if err != nil || v < lastVersion {
					t.Errorf("reader %d: snapshot version %q went backwards from %d", r, resp.Header.Get("X-Snapshot-Version"), lastVersion)
					return
				}
				lastVersion = v
				res := out["q0"]
				if len(res.Result) == 0 {
					t.Errorf("reader %d: Alice vanished mid-ingest", r)
					return
				}
				if top := res.Result[0]; top.ID != "0" || top.Score < 99 {
					t.Errorf("reader %d: top candidate %+v, want stable id 0", r, top)
					return
				}

				// Entity reads from the same published view are consistent
				// with themselves.
				var ent EntityDoc
				eresp, err := http.Get(ts.URL + "/entity/0")
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				err = json.NewDecoder(eresp.Body).Decode(&ent)
				eresp.Body.Close()
				if err != nil || ent.Canonical != 0 || len(ent.Members) < 2 {
					t.Errorf("reader %d: entity/0 = %+v err=%v", r, ent, err)
					return
				}
			}
		}(r)
	}

	for b := 0; b < batches; b++ {
		refs := []IngestRef{
			{Class: schema.ClassPerson, Atomic: map[string][]string{
				schema.AttrName:  {fmt.Sprintf("Person %d", b)},
				schema.AttrEmail: {fmt.Sprintf("p%d@batch.example.edu", b)},
			}},
			{Class: schema.ClassPerson, Atomic: map[string][]string{
				schema.AttrName:  {fmt.Sprintf("P. %d", b)},
				schema.AttrEmail: {fmt.Sprintf("p%d@batch.example.edu", b)},
			}},
		}
		resp, err := http.Post(ts.URL+"/ingest", "application/json", ingestBody(refs))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest batch %d: status %d", b, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()

	// All batches landed; the duplicate pairs in each batch merged.
	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Ingest.Batches != batches || m.Snapshot.References != 3+2*batches {
		t.Errorf("metrics after ingest: %+v", m)
	}
	if m.Queries == 0 || m.QueryLatency.Count == 0 || m.Candidates.Max == 0 {
		t.Errorf("query metrics not recorded: %+v", m)
	}
	out, _ := postReconcile(t, ts.URL, map[string]ReconQuery{
		"q0": {Query: "Person 3", Type: schema.ClassPerson,
			Properties: []QueryProperty{{PID: schema.AttrEmail, V: json.RawMessage(`"p3@batch.example.edu"`)}}},
	})
	res := out["q0"]
	if len(res.Result) == 0 || !res.Result[0].Match {
		t.Errorf("ingested person not findable after the run: %+v", res)
	}
}

// TestServeTypelessQuery exercises the fan-out path: no type constraint
// queries every class and re-merges.
func TestServeTypelessQuery(t *testing.T) {
	store := personStore()
	store.Add(reference.New(schema.ClassVenue).
		AddAtomic(schema.AttrName, "Conference on Examples"))
	_, ts := newTestServer(t, store)
	out, _ := postReconcile(t, ts.URL, map[string]ReconQuery{
		"q0": {Query: "Bob Jones"},
		"q1": {Query: "Conference on Examples"},
	})
	if res := out["q0"]; len(res.Result) == 0 || res.Result[0].ID != "2" {
		t.Errorf("typeless person query: %+v", res)
	}
	if res := out["q1"]; len(res.Result) == 0 || res.Result[0].Type[0].ID != schema.ClassVenue {
		t.Errorf("typeless venue query: %+v", res)
	}
}

func TestServeQueryConfig(t *testing.T) {
	svc, err := NewFromStore(Config{
		Schema: schema.PIM(),
		Recon:  recon.Config{Evidence: recon.EvidenceContact},
	}, reference.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	// Empty service is ready and answers with no candidates.
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("readyz on empty service = %d", r.StatusCode)
	}
	out, _ := postReconcile(t, ts.URL, map[string]ReconQuery{"q0": {Query: "anyone", Type: schema.ClassPerson}})
	if res := out["q0"]; len(res.Result) != 0 {
		t.Errorf("empty service returned candidates: %+v", res)
	}
}
