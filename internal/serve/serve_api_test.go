package serve

// End-to-end coverage for the OpenRefine ecosystem surface added with the
// traffic-surface PR: properties-filtered reconcile (unknown pids ignored
// per spec), suggest/preview round-trips, propose-properties, and data
// extension against the Cora gold duplicates.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"refrecon/internal/datagen/cora"
	"refrecon/internal/schema"
)

func TestServeManifestAdvertisesEcosystemSurface(t *testing.T) {
	_, ts := newTestServer(t, personStore())
	var m Manifest
	getJSON(t, ts.URL+"/", &m)
	if m.Preview == nil || !strings.Contains(m.Preview.URL, "/preview/{{id}}") || m.Preview.Width <= 0 || m.Preview.Height <= 0 {
		t.Errorf("preview block missing or incomplete: %+v", m.Preview)
	}
	if m.Suggest == nil || m.Suggest.Entity == nil || m.Suggest.Entity.ServicePath != "/suggest/entity" {
		t.Errorf("suggest block missing or incomplete: %+v", m.Suggest)
	}
	if m.Extend == nil || m.Extend.ProposeProperties == nil || m.Extend.ProposeProperties.ServicePath != "/properties" {
		t.Errorf("extend block missing or incomplete: %+v", m.Extend)
	}
}

// TestServePropertiesFilter pins the spec behavior for the properties
// array: known atomic pids constrain the match, unknown pids are ignored
// (not errors), and in a typeless fan-out a pid foreign to one class
// still lets that class score.
func TestServePropertiesFilter(t *testing.T) {
	_, ts := newTestServer(t, personStore())

	// A discriminating known property: Bob's email pushes Bob ahead of the
	// name-only match.
	out, _ := postReconcile(t, ts.URL, map[string]ReconQuery{
		"q0": {Type: schema.ClassPerson, Properties: []QueryProperty{
			{PID: schema.AttrEmail, V: json.RawMessage(`"bjones@ee.example.edu"`)},
		}},
	})
	if len(out["q0"].Result) == 0 || out["q0"].Result[0].Name != "Bob Jones" {
		t.Fatalf("email property did not select Bob Jones: %+v", out["q0"].Result)
	}

	// An unknown pid alongside it must be ignored per spec, not turned
	// into a per-query error: same result as above.
	withUnknown, _ := postReconcile(t, ts.URL, map[string]ReconQuery{
		"q0": {Type: schema.ClassPerson, Properties: []QueryProperty{
			{PID: schema.AttrEmail, V: json.RawMessage(`"bjones@ee.example.edu"`)},
			{PID: "no-such-field", V: json.RawMessage(`"whatever"`)},
		}},
	})
	if len(withUnknown["q0"].Result) == 0 || withUnknown["q0"].Result[0].Name != "Bob Jones" {
		t.Fatalf("unknown pid changed the result: %+v", withUnknown["q0"].Result)
	}

	// Typeless fan-out with a Person-only pid: Person entities must still
	// be scored (the pid is simply ignored for Article and Venue).
	fanout, _ := postReconcile(t, ts.URL, map[string]ReconQuery{
		"q0": {Query: "Alice Smith", Properties: []QueryProperty{
			{PID: schema.AttrEmail, V: json.RawMessage(`"asmith@cs.example.edu"`)},
		}},
	})
	if len(fanout["q0"].Result) == 0 {
		t.Fatal("typeless fan-out with a class-specific property returned nothing")
	}

	// Collective mode ignores unknown pids the same way.
	coll, _ := postReconcile(t, ts.URL, map[string]ReconQuery{
		"q0": {Query: "Alice Smith", Type: schema.ClassPerson, Mode: ModeCollective,
			Properties: []QueryProperty{{PID: "no-such-field", V: json.RawMessage(`"x"`)}}},
	})
	if len(coll["q0"].Result) == 0 {
		t.Fatalf("collective query with unknown pid failed: %+v", coll["q0"])
	}
}

func TestServeSuggestRoundTrip(t *testing.T) {
	svc, ts := newTestServer(t, personStore())

	var got SuggestResult
	resp := getJSON(t, ts.URL+"/suggest/entity?prefix="+url.QueryEscape("ali"), &got)
	if resp.Header.Get("X-Snapshot-Version") == "" {
		t.Error("suggest response missing X-Snapshot-Version")
	}
	if len(got.Result) != 1 || got.Result[0].Name != "Alice Smith" {
		t.Fatalf("suggest 'ali' = %+v, want the Alice Smith entity", got.Result)
	}
	if got.Result[0].Description == "" {
		t.Error("suggest hit has no description")
	}
	// The id must be usable against /entity and /preview.
	if _, err := strconv.Atoi(got.Result[0].ID); err != nil {
		t.Fatalf("suggest id %q is not a reference id", got.Result[0].ID)
	}

	// The variant spelling indexes to the same entity: "a. s" prefixes
	// "A. Smith", one of the merged entity's name values.
	var variant SuggestResult
	getJSON(t, ts.URL+"/suggest/entity?prefix="+url.QueryEscape("a. s"), &variant)
	if len(variant.Result) != 1 || variant.Result[0].ID != got.Result[0].ID {
		t.Fatalf("variant-spelling suggest = %+v, want same entity as %q", variant.Result, got.Result[0].ID)
	}

	// Empty prefix suggests nothing; limit bounds the hits.
	var empty SuggestResult
	getJSON(t, ts.URL+"/suggest/entity", &empty)
	if len(empty.Result) != 0 {
		t.Errorf("empty prefix returned %d hits", len(empty.Result))
	}
	if n := svc.Metrics().SuggestRequests; n < 3 {
		t.Errorf("suggestRequests = %d, want >= 3", n)
	}
}

func TestServePreviewRoundTrip(t *testing.T) {
	svc, ts := newTestServer(t, personStore())
	resp, err := http.Get(ts.URL + "/preview/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preview status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("preview content-type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	doc := string(body)
	for _, want := range []string{"Alice Smith", "asmith@cs.example.edu", schema.ClassPerson} {
		if !strings.Contains(doc, want) {
			t.Errorf("preview missing %q:\n%s", want, doc)
		}
	}

	// Out-of-range and unparseable ids fail cleanly.
	for path, want := range map[string]int{"/preview/9999": http.StatusNotFound, "/preview/x": http.StatusBadRequest} {
		r2, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != want {
			t.Errorf("%s status %d, want %d", path, r2.StatusCode, want)
		}
	}
	if n := svc.Metrics().PreviewRequests; n != 3 {
		t.Errorf("previewRequests = %d, want 3", n)
	}
}

func TestServeProposeProperties(t *testing.T) {
	_, ts := newTestServer(t, personStore())
	var doc ProposeDoc
	getJSON(t, ts.URL+"/properties?type="+schema.ClassArticle, &doc)
	got := make(map[string]bool)
	for _, p := range doc.Properties {
		got[p.ID] = true
	}
	for _, want := range []string{schema.AttrTitle, schema.AttrYear, schema.AttrPages} {
		if !got[want] {
			t.Errorf("propose(%s) missing %q: %+v", schema.ClassArticle, want, doc.Properties)
		}
	}
	if got[schema.AttrAuthoredBy] {
		t.Error("propose lists an association attribute; only atomic values are extendable")
	}
	var unknown ProposeDoc
	getJSON(t, ts.URL+"/properties?type=Nope", &unknown)
	if len(unknown.Properties) != 0 {
		t.Errorf("unknown type proposed %+v", unknown.Properties)
	}
}

// TestServeDataExtensionCora reconciles Cora gold duplicates, then
// extends the matched ids and checks the returned values are the unioned
// member attributes of the right entities.
func TestServeDataExtensionCora(t *testing.T) {
	gen, err := cora.Generate(cora.Default(0.05))
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, gen.Store)

	// Pick an article entity with >1 member (a resolved gold duplicate)
	// from the published snapshot.
	var entID string
	var wantTitles []string
	for _, ent := range svc.View().Snapshot.Entities() {
		if ent.Class == schema.ClassArticle && len(ent.Members) > 1 {
			entID = strconv.Itoa(int(ent.Canonical))
			wantTitles = ent.Atomic[schema.AttrTitle]
			break
		}
	}
	if entID == "" {
		t.Fatal("no multi-member article entity in the Cora snapshot")
	}

	// Extension via POST JSON envelope.
	req := ExtendRequest{
		IDs:        []string{entID, "999999", "bogus"},
		Properties: []ExtendProperty{{ID: schema.AttrTitle}, {ID: schema.AttrYear}, {ID: "no-such-pid"}},
	}
	body, _ := json.Marshal(map[string]any{"extend": req})
	resp, err := http.Post(ts.URL+"/reconcile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend status %d", resp.StatusCode)
	}
	var ext ExtendResponse
	if err := json.NewDecoder(resp.Body).Decode(&ext); err != nil {
		t.Fatal(err)
	}
	if len(ext.Meta) != 3 || ext.Meta[0].ID != schema.AttrTitle {
		t.Fatalf("extend meta = %+v", ext.Meta)
	}
	row := ext.Rows[entID]
	if row == nil {
		t.Fatalf("no row for entity %s: %+v", entID, ext.Rows)
	}
	var gotTitles []string
	for _, cell := range row[schema.AttrTitle] {
		gotTitles = append(gotTitles, cell.Str)
	}
	if len(gotTitles) != len(wantTitles) {
		t.Fatalf("extend titles = %v, want %v", gotTitles, wantTitles)
	}
	if len(row["no-such-pid"]) != 0 {
		t.Errorf("unknown pid returned values: %+v", row["no-such-pid"])
	}
	// Unknown/bogus ids still get (empty) rows, not errors.
	for _, id := range []string{"999999", "bogus"} {
		r, ok := ext.Rows[id]
		if !ok {
			t.Errorf("no row for unknown id %s", id)
			continue
		}
		for pid, cells := range r {
			if len(cells) != 0 {
				t.Errorf("unknown id %s has values for %s: %+v", id, pid, cells)
			}
		}
	}

	// Extension via form value on the same endpoint.
	rawExtend, _ := json.Marshal(req)
	formResp, err := http.PostForm(ts.URL+"/reconcile", url.Values{"extend": {string(rawExtend)}})
	if err != nil {
		t.Fatal(err)
	}
	defer formResp.Body.Close()
	var ext2 ExtendResponse
	if err := json.NewDecoder(formResp.Body).Decode(&ext2); err != nil {
		t.Fatal(err)
	}
	if len(ext2.Rows[entID][schema.AttrTitle]) != len(wantTitles) {
		t.Errorf("form-value extend disagrees with JSON-body extend")
	}
	if n := svc.Metrics().ExtendRequests; n != 2 {
		t.Errorf("extendRequests = %d, want 2", n)
	}
}
