package serve

// The OpenRefine suggest/preview/data-extension surface (Delpeuch's
// survey): prefix autocomplete over the published snapshot's entity
// labels, an HTML flyout per entity, and bulk property extraction for
// already-reconciled ids. Everything here reads one published View, so
// results are coherent with the reconcile endpoint at the same snapshot
// version.

import (
	"fmt"
	"html"
	"sort"
	"strconv"
	"strings"

	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// Flyout dimensions advertised in the manifest preview block.
const (
	previewWidth  = 430
	previewHeight = 300
)

// suggestEntry indexes one lowercased label form of one entity.
type suggestEntry struct {
	key string
	ent *recon.Entity
}

// suggestIndex returns the view's autocomplete index, building it on
// first use. Each entity is indexed under every value of its name-like
// attribute (plus its display name), lowercased, so "A. Smith" and
// "Alice Smith" both complete to the same entity.
func (v *View) suggestIndex() []suggestEntry {
	v.suggestOnce.Do(func() {
		var idx []suggestEntry
		for _, ent := range v.Snapshot.Entities() {
			seen := make(map[string]bool, 4)
			add := func(label string) {
				k := strings.ToLower(strings.TrimSpace(label))
				if k == "" || seen[k] {
					return
				}
				seen[k] = true
				idx = append(idx, suggestEntry{key: k, ent: ent})
			}
			add(ent.Name())
			for _, attr := range []string{schema.AttrName, schema.AttrTitle} {
				for _, val := range ent.Atomic[attr] {
					add(val)
				}
			}
		}
		sort.Slice(idx, func(i, j int) bool {
			if idx[i].key != idx[j].key {
				return idx[i].key < idx[j].key
			}
			return idx[i].ent.Canonical < idx[j].ent.Canonical
		})
		v.suggestIdx = idx
	})
	return v.suggestIdx
}

// Suggest resolves a prefix-autocomplete request against the published
// view: case-insensitive prefix match over entity labels, deduplicated by
// entity, in label order. A limit <= 0 takes the service default.
func (s *Service) Suggest(prefix string, limit int) SuggestResult {
	s.met.suggests.Add(1)
	out := SuggestResult{Result: []SuggestCandidate{}}
	p := strings.ToLower(strings.TrimSpace(prefix))
	if p == "" {
		return out
	}
	if limit <= 0 {
		limit = s.cfg.DefaultLimit
	}
	v := s.view.Load()
	idx := v.suggestIndex()
	seen := make(map[reference.ID]bool)
	for i := sort.Search(len(idx), func(i int) bool { return idx[i].key >= p }); i < len(idx); i++ {
		if !strings.HasPrefix(idx[i].key, p) {
			break
		}
		ent := idx[i].ent
		if seen[ent.Canonical] {
			continue
		}
		seen[ent.Canonical] = true
		out.Result = append(out.Result, SuggestCandidate{
			ID:          strconv.Itoa(int(ent.Canonical)),
			Name:        ent.Name(),
			Description: fmt.Sprintf("%s · %d refs", ent.Class, len(ent.Members)),
		})
		if len(out.Result) >= limit {
			break
		}
	}
	return out
}

// Extend resolves a data-extension request: for each requested entity id
// (a canonical reference id from a reconcile response) and property id,
// the unioned member-attribute values from the snapshot. Unknown ids get
// an empty row and unknown property ids an empty cell — extension follows
// reconciliation, so holes are expected, not errors.
func (s *Service) Extend(req ExtendRequest) ExtendResponse {
	s.met.extends.Add(1)
	v := s.view.Load()
	snap := v.Snapshot
	out := ExtendResponse{
		Meta: make([]TypeRef, 0, len(req.Properties)),
		Rows: make(map[string]map[string][]ExtendValue, len(req.IDs)),
	}
	for _, p := range req.Properties {
		out.Meta = append(out.Meta, TypeRef{ID: p.ID, Name: p.ID})
	}
	for _, ids := range req.IDs {
		row := make(map[string][]ExtendValue, len(req.Properties))
		var ent *recon.Entity
		if n, err := strconv.Atoi(ids); err == nil && n >= 0 && n < snap.RefCount() {
			ent = snap.EntityOf(reference.ID(n))
		}
		for _, p := range req.Properties {
			cells := []ExtendValue{}
			if ent != nil {
				for _, val := range ent.Atomic[p.ID] {
					cells = append(cells, ExtendValue{Str: val})
				}
			}
			row[p.ID] = cells
		}
		out.Rows[ids] = row
	}
	return out
}

// ProposeProperties lists the extendable (atomic) properties of a type
// for the manifest's propose_properties service. Unknown types propose
// nothing rather than failing — OpenRefine probes this endpoint with
// whatever type the user last reconciled against.
func (s *Service) ProposeProperties(typ string) ProposeDoc {
	doc := ProposeDoc{Type: typ, Properties: []TypeRef{}}
	c, ok := s.cfg.Schema.Class(typ)
	if !ok {
		return doc
	}
	for _, a := range c.AtomicAttrs() {
		doc.Properties = append(doc.Properties, TypeRef{ID: a.Name, Name: a.Name})
	}
	return doc
}

// previewHTML renders the entity flyout document.
func previewHTML(ent *recon.Entity, version int) string {
	var b strings.Builder
	b.WriteString("<html><head><meta charset=\"utf-8\" /></head><body style=\"margin:6px;font:12px sans-serif\">")
	fmt.Fprintf(&b, "<p><strong>%s</strong> <span style=\"color:#555\">(%s, entity %d, %d refs, snapshot v%d)</span></p>",
		html.EscapeString(ent.Name()), html.EscapeString(ent.Class), ent.Canonical, len(ent.Members), version)
	attrs := make([]string, 0, len(ent.Atomic))
	for a := range ent.Atomic {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	b.WriteString("<table>")
	for _, a := range attrs {
		fmt.Fprintf(&b, "<tr><td style=\"color:#555;vertical-align:top\">%s</td><td>%s</td></tr>",
			html.EscapeString(a), html.EscapeString(strings.Join(ent.Atomic[a], "; ")))
	}
	b.WriteString("</table></body></html>")
	return b.String()
}
