package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// durBatches is the shared ingest history for the durability tests: three
// batches whose incremental evolution exercises merges within a batch,
// merges across batches (batch 2's A. Smith joins batch 1's Alice via the
// shared email), and an association (batch 3's article authored by ref 0).
func durBatches() [][]IngestRef {
	return [][]IngestRef{
		{
			{Class: schema.ClassPerson, Atomic: map[string][]string{
				schema.AttrName:  {"Alice Smith"},
				schema.AttrEmail: {"asmith@cs.example.edu"},
			}},
			{Class: schema.ClassPerson, Atomic: map[string][]string{
				schema.AttrName:  {"Bob Jones"},
				schema.AttrEmail: {"bjones@ee.example.edu"},
			}},
		},
		{
			{Class: schema.ClassPerson, Atomic: map[string][]string{
				schema.AttrName:  {"A. Smith"},
				schema.AttrEmail: {"asmith@cs.example.edu"},
			}},
		},
		{
			{Class: schema.ClassArticle, Atomic: map[string][]string{
				schema.AttrTitle: {"Reference Reconciliation in Complex Information Spaces"},
			}, Assoc: map[string][]reference.ID{
				schema.AttrAuthoredBy: {0},
			}},
			{Class: schema.ClassPerson, Atomic: map[string][]string{
				schema.AttrName: {"Carol White"},
			}},
		},
	}
}

func durableConfig(dir string) Config {
	return Config{Schema: schema.PIM(), DataDir: dir}
}

// viewFingerprint renders the published view's observable state — version,
// references, entity partition, and every pair-explain answer — into one
// deterministic string. Two services with equal fingerprints answer every
// read endpoint identically.
func viewFingerprint(t *testing.T, v *View) string {
	t.Helper()
	if v == nil {
		t.Fatal("no published view")
	}
	snap := v.Snapshot
	var b strings.Builder
	fmt.Fprintf(&b, "version=%d refs=%d\n", snap.Version, snap.RefCount())
	ents := snap.Entities()
	sort.Slice(ents, func(i, j int) bool { return ents[i].Canonical < ents[j].Canonical })
	for _, e := range ents {
		fmt.Fprintf(&b, "entity %s/%d members=%v\n", e.Class, e.Canonical, e.Members)
	}
	for a := 0; a < snap.RefCount(); a++ {
		for bb := a + 1; bb < snap.RefCount(); bb++ {
			exp, err := snap.Explain(reference.ID(a), reference.ID(bb))
			if err != nil {
				fmt.Fprintf(&b, "explain %d/%d err\n", a, bb)
				continue
			}
			fmt.Fprintf(&b, "explain %d/%d same=%v %s\n", a, bb, exp.Same, exp.String())
		}
	}
	return b.String()
}

// ingestAll pushes the batches through the service, failing on any error.
func ingestAll(t *testing.T, svc *Service, batches [][]IngestRef) {
	t.Helper()
	for i, b := range batches {
		if _, err := svc.Ingest(b); err != nil {
			t.Fatalf("ingest batch %d: %v", i, err)
		}
	}
}

// crash abandons a durable service the way SIGKILL would: the log file
// descriptor is closed (everything acknowledged is already fsynced) but no
// final checkpoint is written and the service is never used again.
func crash(t *testing.T, svc *Service) {
	t.Helper()
	if svc.log == nil {
		t.Fatal("crash: service has no log")
	}
	if err := svc.log.Close(); err != nil {
		t.Fatal(err)
	}
}

// truthService replays the same batches through a purely in-memory
// service — the uninterrupted run every recovery must match.
func truthService(t *testing.T, batches [][]IngestRef) *Service {
	t.Helper()
	svc, err := New(Config{Schema: schema.PIM()})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, svc, batches)
	return svc
}

// TestDurableKillPoints is the acceptance test: kill -9 after any batch's
// fsync point, restart from the same data dir, and the recovered service
// must publish the same X-Snapshot-Version and the same pair-decision
// fingerprint as an uninterrupted in-memory run of the same history.
func TestDurableKillPoints(t *testing.T) {
	batches := durBatches()
	for k := 0; k <= len(batches); k++ {
		t.Run(fmt.Sprintf("after%dBatches", k), func(t *testing.T) {
			truth := truthService(t, batches[:k])
			want := viewFingerprint(t, truth.View())

			dir := t.TempDir()
			svc, err := New(durableConfig(dir))
			if err != nil {
				t.Fatal(err)
			}
			ingestAll(t, svc, batches[:k])
			crash(t, svc)

			recovered, err := New(durableConfig(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer recovered.Close()
			if got := viewFingerprint(t, recovered.View()); got != want {
				t.Errorf("recovered state differs from uninterrupted run:\nwant:\n%s\ngot:\n%s", want, got)
			}
			if got, want := recovered.View().Snapshot.Version, k; got != want {
				t.Errorf("recovered version = %d, want %d", got, want)
			}
			wantMode := "replay"
			if k == 0 {
				wantMode = "fresh"
			}
			if recovered.recovery.Mode != wantMode {
				t.Errorf("recovery mode = %q, want %q", recovered.recovery.Mode, wantMode)
			}
		})
	}
}

// TestDurableCleanShutdownFastRestore checks the Close → reopen path: the
// final checkpoint makes the next start restore without replaying, and the
// restored service answers HTTP reads with the same X-Snapshot-Version.
func TestDurableCleanShutdownFastRestore(t *testing.T) {
	batches := durBatches()
	dir := t.TempDir()
	svc, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, svc, batches)
	want := viewFingerprint(t, svc.View())
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(batches[0]); !errors.Is(err, ErrUnavailable) {
		t.Errorf("ingest after Close = %v, want ErrUnavailable", err)
	}

	recovered, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.recovery.Mode != "checkpoint" {
		t.Errorf("recovery mode = %q, want checkpoint", recovered.recovery.Mode)
	}
	if got := viewFingerprint(t, recovered.View()); got != want {
		t.Errorf("fast restore differs from pre-shutdown state:\nwant:\n%s\ngot:\n%s", want, got)
	}

	ts := httptest.NewServer(recovered.Handler())
	defer ts.Close()
	var ent EntityDoc
	resp := getJSON(t, ts.URL+"/entity/0", &ent)
	if got := resp.Header.Get("X-Snapshot-Version"); got != fmt.Sprint(len(batches)) {
		t.Errorf("X-Snapshot-Version = %q, want %d", got, len(batches))
	}
	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Durability == nil || m.Durability.Recovery != "checkpoint" {
		t.Errorf("metrics durability = %+v, want recovery=checkpoint", m.Durability)
	}

	// The restored service keeps ingesting where the old one stopped.
	resp2, err := recovered.Ingest([]IngestRef{{Class: schema.ClassPerson,
		Atomic: map[string][]string{schema.AttrName: {"Dave Green"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(batches) + 1; resp2.SnapshotVersion != want {
		t.Errorf("post-restore ingest version = %d, want %d", resp2.SnapshotVersion, want)
	}
}

// TestDurableTornTail appends a partial record to the last segment (a
// crash mid-write) and checks recovery truncates it and lands on the state
// of the last complete batch.
func TestDurableTornTail(t *testing.T) {
	batches := durBatches()
	dir := t.TempDir()
	svc, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, svc, batches[:2])
	crash(t, svc)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible header promising a payload that never arrived.
	if _, err := f.Write([]byte{1, 3, 0, 0, 0, 0, 0, 0, 0, 200, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	truth := truthService(t, batches[:2])
	recovered, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got, want := viewFingerprint(t, recovered.View()), viewFingerprint(t, truth.View()); got != want {
		t.Errorf("torn-tail recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestDurableTruncatedCheckpoint corrupts the newest checkpoint and checks
// recovery falls back to the previous generation plus the retained log —
// which also exercises duplicate replay, since the older checkpoint's
// records overlap the segments.
func TestDurableTruncatedCheckpoint(t *testing.T) {
	batches := durBatches()
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CheckpointEvery = 1 // checkpoint after every batch
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, svc, batches)
	crash(t, svc)

	cks, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ck"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 2 {
		t.Fatalf("checkpoint generations = %d, want 2 (%v)", len(cks), cks)
	}
	sort.Strings(cks)
	newest := cks[len(cks)-1]
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	truth := truthService(t, batches)
	recovered, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.recovery.Mode != "replay" {
		t.Errorf("recovery mode = %q, want replay (older checkpoint + log tail)", recovered.recovery.Mode)
	}
	if recovered.recovery.Batches != len(batches) {
		t.Errorf("recovery batches = %d, want %d (checkpoint records + deduped tail)",
			recovered.recovery.Batches, len(batches))
	}
	if got, want := viewFingerprint(t, recovered.View()), viewFingerprint(t, truth.View()); got != want {
		t.Errorf("checkpoint-fallback recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if got, want := recovered.View().Snapshot.Version, len(batches); got != want {
		t.Errorf("recovered version = %d, want %d", got, want)
	}
}

// TestDurablePoisonLifecycleReplay pins the lifecycle-marker contract: a
// cancelled commit poisons the session live, and a crash-replay must
// reproduce that same evolution — poison marker and all — so the rebuilt
// state and version match the surviving process exactly.
func TestDurablePoisonLifecycleReplay(t *testing.T) {
	batches := durBatches()
	dir := t.TempDir()
	svc, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(batches[0]); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.IngestContext(ctx, batches[1]); !errors.Is(err, recon.ErrCanceled) {
		t.Fatalf("cancelled ingest = %v, want recon.ErrCanceled", err)
	}
	if got := svc.Metrics().SessionPoisoned; got != 1 {
		t.Errorf("sessionPoisoned = %d, want 1", got)
	}
	// The failed batch is accepted (logged + stored) but not committed;
	// the published view stays at the previous version.
	if v := svc.View(); v.Snapshot.Version != 1 {
		t.Errorf("version after poisoned commit = %d, want 1", v.Snapshot.Version)
	}

	// The next ingest rebuilds from the whole store and publishes a view
	// whose version never regressed.
	if _, err := svc.Ingest(batches[2]); err != nil {
		t.Fatal(err)
	}
	want := viewFingerprint(t, svc.View())
	if v := svc.View(); v.Snapshot.Version != 3 {
		t.Errorf("version after rebuild = %d, want 3", v.Snapshot.Version)
	}
	crash(t, svc)

	recovered, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := viewFingerprint(t, recovered.View()); got != want {
		t.Errorf("poison-lifecycle replay differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestIngestCancelMaps503 checks the HTTP contract for a poisoned-session
// retry: 503 plus a Retry-After hint, and the retried request succeeds.
func TestIngestCancelMaps503(t *testing.T) {
	svc, ts := newTestServer(t, personStore())
	// Poison directly (an HTTP request context cannot be cancelled
	// deterministically mid-commit from a test).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := []IngestRef{{Class: schema.ClassPerson,
		Atomic: map[string][]string{schema.AttrName: {"Eve Black"}}}}
	if _, err := svc.IngestContext(ctx, batch); !errors.Is(err, recon.ErrCanceled) {
		t.Fatalf("cancelled ingest = %v, want recon.ErrCanceled", err)
	}
	if got := statusFor(fmt.Errorf("reconcile: %w", recon.ErrCanceled)); got != http.StatusServiceUnavailable {
		t.Errorf("statusFor(ErrCanceled) = %d, want 503", got)
	}

	// After Close, ingest over HTTP answers 503 with Retry-After.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ingest", "application/json",
		strings.NewReader(`[{"class":"Person","atomic":{"name":["Frank"]}}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest after Close status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After header")
	}
}

// TestPublishFailureKeepsCoherence pins the publish-failure bugfix: when
// the view swap fails after the store already holds the batch, the old
// view stays published at its version, the session is poisoned, and the
// next ingest publishes a view covering both batches.
func TestPublishFailureKeepsCoherence(t *testing.T) {
	svc, err := NewFromStore(Config{Schema: schema.PIM()}, personStore())
	if err != nil {
		t.Fatal(err)
	}
	before := svc.View()
	boom := errors.New("boom")
	svc.publishHook = func() error { return boom }
	batch := []IngestRef{{Class: schema.ClassPerson,
		Atomic: map[string][]string{schema.AttrName: {"Grace Hall"}}}}
	if _, err := svc.Ingest(batch); !errors.Is(err, boom) {
		t.Fatalf("ingest with failing publish = %v, want boom", err)
	}
	after := svc.View()
	if after != before {
		t.Error("failed publish swapped the view")
	}
	if got := svc.Metrics().SessionPoisoned; got != 1 {
		t.Errorf("sessionPoisoned = %d, want 1", got)
	}

	svc.publishHook = nil
	resp, err := svc.Ingest([]IngestRef{{Class: schema.ClassPerson,
		Atomic: map[string][]string{schema.AttrName: {"Heidi Park"}}}})
	if err != nil {
		t.Fatal(err)
	}
	v := svc.View()
	if v.Snapshot.Version <= before.Snapshot.Version {
		t.Errorf("version did not advance past %d: %d", before.Snapshot.Version, v.Snapshot.Version)
	}
	// Both the failed batch's reference and the new one are in the
	// published snapshot: store and view agree again.
	if want := before.Snapshot.RefCount() + 2; v.Snapshot.RefCount() != want {
		t.Errorf("published refs = %d, want %d", v.Snapshot.RefCount(), want)
	}
	if resp.SnapshotVersion != v.Snapshot.Version {
		t.Errorf("response version %d != published %d", resp.SnapshotVersion, v.Snapshot.Version)
	}
}

// TestCloseDrainsInFlightIngest checks Close blocks until an in-flight
// ingest finishes, then seals the service and writes the final checkpoint
// covering the drained batch.
func TestCloseDrainsInFlightIngest(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	svc.publishHook = func() error {
		close(entered)
		<-release
		return nil
	}
	batch := []IngestRef{{Class: schema.ClassPerson,
		Atomic: map[string][]string{schema.AttrName: {"Ivan Cole"}}}}
	ingestDone := make(chan error, 1)
	go func() {
		_, err := svc.Ingest(batch)
		ingestDone <- err
	}()
	<-entered
	svc.publishHook = nil // next publish (none expected) runs clean

	closeDone := make(chan error, 1)
	go func() { closeDone <- svc.Close() }()
	select {
	case <-closeDone:
		t.Fatal("Close returned while an ingest held the writer lock")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-ingestDone; err != nil {
		t.Fatalf("drained ingest failed: %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatal(err)
	}

	// The final checkpoint covers the drained batch: fast restore.
	recovered, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.recovery.Mode != "checkpoint" {
		t.Errorf("recovery mode = %q, want checkpoint", recovered.recovery.Mode)
	}
	if got := recovered.View().Snapshot.RefCount(); got != 1 {
		t.Errorf("recovered refs = %d, want 1", got)
	}
}

// TestDurableColdMarkerReplay covers the double-restart lifecycle: a
// clean shutdown, a fast restore (which logs a cold-restart marker and
// leaves the session poisoned), further ingest on the restored service,
// then a crash. The replay must reproduce the restored process's
// evolution — including the rebuild the cold marker forced — bit for bit.
func TestDurableColdMarkerReplay(t *testing.T) {
	batches := durBatches()
	dir := t.TempDir()
	svc, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, svc, batches[:2])
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if restored.recovery.Mode != "checkpoint" {
		t.Fatalf("first restart mode = %q, want checkpoint", restored.recovery.Mode)
	}
	if _, err := restored.Ingest(batches[2]); err != nil {
		t.Fatal(err)
	}
	want := viewFingerprint(t, restored.View())
	crash(t, restored)

	recovered, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.recovery.Mode != "replay" {
		t.Errorf("second restart mode = %q, want replay", recovered.recovery.Mode)
	}
	if got := viewFingerprint(t, recovered.View()); got != want {
		t.Errorf("cold-marker replay differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestDurableSeedStore checks a pre-populated store seeds a fresh data
// dir as batch 1 and survives a crash, and that reseeding an existing dir
// is refused.
func TestDurableSeedStore(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewFromStore(durableConfig(dir), personStore())
	if err != nil {
		t.Fatal(err)
	}
	want := viewFingerprint(t, svc.View())
	crash(t, svc)

	if _, err := NewFromStore(durableConfig(dir), personStore()); err == nil {
		t.Error("reseeding a non-empty data dir should be refused")
	}

	recovered, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := viewFingerprint(t, recovered.View()); got != want {
		t.Errorf("seeded-store recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if got := recovered.View().Snapshot.Version; got != 1 {
		t.Errorf("seeded-store version = %d, want 1", got)
	}
}
