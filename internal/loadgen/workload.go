// Package loadgen builds and replays deterministic mixed ingest+query
// workloads against a reconciliation service — the standing proof behind
// the "heavy traffic" north star and the regression gate for every
// scaling PR. A workload is fully materialized up front from a seeded
// generator (same seed ⇒ identical request stream, byte for byte), then
// replayed by a pool of closed-loop clients or an open-loop arrival
// process while a single writer feeds ingest batches in order, paced by
// query progress.
package loadgen

import (
	"fmt"
	"math/rand"

	"refrecon/internal/datagen/biblio"
	"refrecon/internal/datagen/catalog"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/serve"
)

// Config parameterizes workload generation. The zero value is invalid;
// start from Defaults.
type Config struct {
	// Dataset selects the corpus generator: "biblio" (noisy bibliographic
	// references over the PIM schema) or "catalog" (multi-storefront
	// product catalog over schema.Catalog()).
	Dataset string
	// Refs is the corpus size in references.
	Refs int
	// Queries is the number of reconcile queries in the stream.
	Queries int
	// Seed drives corpus generation, query sampling, and interleaving.
	Seed int64
	// BatchSize is the target ingest batch size; batches extend past it
	// when splitting would strand an intra-record association link.
	BatchSize int
	// Collective is the fraction of queries issued in collective mode.
	Collective float64
	// Properties is the fraction of queries that carry property filters
	// lifted from the sampled reference's other attributes.
	Properties float64
	// Typeless is the fraction of queries sent without a type (full class
	// fan-out on the server).
	Typeless float64
	// UnknownPID is the fraction of property-carrying queries that also
	// include a pid foreign to every class — the spec says servers ignore
	// these, and the replayer counts any resulting error against the
	// server.
	UnknownPID float64
}

// Defaults returns the standard mixed workload over the dataset.
func Defaults(dataset string, refs, queries int, seed int64) Config {
	return Config{
		Dataset:    dataset,
		Refs:       refs,
		Queries:    queries,
		Seed:       seed,
		BatchSize:  256,
		Collective: 0.25,
		Properties: 0.5,
		Typeless:   0.1,
		UnknownPID: 0.05,
	}
}

// Workload is one materialized request stream.
type Workload struct {
	Config Config
	// Schema is the schema the serving side must run.
	Schema *schema.Schema
	// Batches are the ingest batches, in issue order. Association targets
	// are expressed in final id space; batch boundaries never strand a
	// link (every target id is below the issuing batch's end).
	Batches [][]serve.IngestRef
	// IngestAt[i] is the number of completed queries after which batch i
	// is issued; batch 0 is always issued before any query.
	IngestAt []int
	// Queries is the query stream in issue order.
	Queries []serve.ReconQuery
	// Gold maps each query index to the sampled reference's entity label
	// (informational; the replayer does not score accuracy).
	Gold []string
}

// SchemaFor maps a dataset name to the schema it is generated over.
func SchemaFor(dataset string) (*schema.Schema, error) {
	switch dataset {
	case "biblio":
		return schema.PIM(), nil
	case "catalog":
		return schema.Catalog(), nil
	default:
		return nil, fmt.Errorf("loadgen: unknown dataset %q (want biblio or catalog)", dataset)
	}
}

// Build materializes the workload: it generates the corpus, cuts it into
// ingest batches, and samples the query stream. Everything is driven by
// Config.Seed — the same config always produces the identical workload.
func Build(cfg Config) (*Workload, error) {
	if cfg.Refs < 1 || cfg.Queries < 0 {
		return nil, fmt.Errorf("loadgen: bad sizes (refs %d, queries %d)", cfg.Refs, cfg.Queries)
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 256
	}
	sch, err := SchemaFor(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	var store *reference.Store
	switch cfg.Dataset {
	case "biblio":
		g, err := biblio.Generate(biblio.Default(cfg.Refs, cfg.Seed))
		if err != nil {
			return nil, err
		}
		store = g.Store
	case "catalog":
		g, err := catalog.Generate(catalog.Default(cfg.Refs, cfg.Seed))
		if err != nil {
			return nil, err
		}
		store = g.Store
	}

	w := &Workload{Config: cfg, Schema: sch}
	w.cutBatches(store, cfg.BatchSize)
	w.sampleQueries(store, sch)
	return w, nil
}

// cutBatches slices the store into ingest batches of roughly BatchSize,
// extending a batch whenever one of its references links forward past the
// tentative boundary (the serve API requires association targets to be
// resolvable within the prefix ingested so far plus the batch itself).
func (w *Workload) cutBatches(store *reference.Store, batchSize int) {
	refs := store.All()
	for start := 0; start < len(refs); {
		end := start + batchSize
		if end > len(refs) {
			end = len(refs)
		}
		// Grow until no reference in [start, end) links to an id >= end.
		for {
			grown := end
			for i := start; i < end; i++ {
				for _, attr := range refs[i].AssocAttrs() {
					for _, t := range refs[i].Assoc(attr) {
						if int(t) >= grown {
							grown = int(t) + 1
						}
					}
				}
			}
			if grown == end {
				break
			}
			end = grown
		}
		batch := make([]serve.IngestRef, 0, end-start)
		for i := start; i < end; i++ {
			batch = append(batch, toIngestRef(refs[i]))
		}
		w.Batches = append(w.Batches, batch)
		start = end
	}
}

// toIngestRef converts a stored reference to the ingest wire shape.
func toIngestRef(r *reference.Reference) serve.IngestRef {
	ir := serve.IngestRef{Class: r.Class, Source: r.Source, Entity: r.Entity}
	if attrs := r.AtomicAttrs(); len(attrs) > 0 {
		ir.Atomic = make(map[string][]string, len(attrs))
		for _, a := range attrs {
			ir.Atomic[a] = append([]string(nil), r.Atomic(a)...)
		}
	}
	if attrs := r.AssocAttrs(); len(attrs) > 0 {
		ir.Assoc = make(map[string][]reference.ID, len(attrs))
		for _, a := range attrs {
			ir.Assoc[a] = append([]reference.ID(nil), r.Assoc(a)...)
		}
	}
	return ir
}

// sampleQueries builds the query stream. Batch 0 is issued up front; the
// remaining batches are spread evenly across the query timeline, and each
// query samples a reference from the prefix already scheduled for ingest
// at its position, so queries mostly hit resolvable data while ingest
// runs concurrently.
func (w *Workload) sampleQueries(store *reference.Store, sch *schema.Schema) {
	cfg := w.Config
	rng := rand.New(rand.NewSource(cfg.Seed + 0x10adee))

	// Ingest schedule: batch 0 before any query, the rest evenly spaced
	// across the query timeline.
	w.IngestAt = make([]int, len(w.Batches))
	for i := 1; i < len(w.Batches); i++ {
		w.IngestAt[i] = i * cfg.Queries / len(w.Batches)
	}
	// covered[q] = store prefix length scheduled at or before query q.
	batchEnd := make([]int, len(w.Batches))
	sum := 0
	for i, b := range w.Batches {
		sum += len(b)
		batchEnd[i] = sum
	}

	w.Queries = make([]serve.ReconQuery, 0, cfg.Queries)
	w.Gold = make([]string, 0, cfg.Queries)
	for qi := 0; qi < cfg.Queries; qi++ {
		prefix := batchEnd[0]
		for i := 1; i < len(w.Batches); i++ {
			if w.IngestAt[i] <= qi {
				prefix = batchEnd[i]
			}
		}
		r := store.Get(reference.ID(rng.Intn(prefix)))
		w.Queries = append(w.Queries, w.buildQuery(rng, sch, r))
		w.Gold = append(w.Gold, r.Entity)
	}
}

// buildQuery renders one reconcile query from a sampled reference: free
// text from the class's name-like attribute, optional property filters
// from its other atomic attributes (plus association-id evidence in
// collective mode), and the mode/type mix the config asks for.
func (w *Workload) buildQuery(rng *rand.Rand, sch *schema.Schema, r *reference.Reference) serve.ReconQuery {
	cfg := w.Config
	c, _ := sch.Class(r.Class)
	q := serve.ReconQuery{Type: r.Class}
	if rng.Float64() < cfg.Typeless {
		q.Type = ""
	}
	name := nameAttrOf(c)
	q.Query = r.FirstAtomic(name)
	if q.Query == "" {
		// A reference with no name-like value (e.g. a dropped field):
		// fall back to any atomic value it has.
		for _, a := range r.AtomicAttrs() {
			if v := r.FirstAtomic(a); v != "" {
				q.Query = v
				break
			}
		}
	}
	collective := rng.Float64() < cfg.Collective
	if collective {
		q.Mode = serve.ModeCollective
	}
	if rng.Float64() < cfg.Properties {
		for _, a := range r.AtomicAttrs() {
			if a == name {
				continue
			}
			for _, v := range r.Atomic(a) {
				q.Properties = append(q.Properties, serve.QueryProperty{PID: a, V: jsonString(v)})
			}
		}
		if collective {
			// Association evidence: the reference's own link targets, in
			// final id space — exactly what a client holding previously
			// reconciled rows would send.
			for _, a := range r.AssocAttrs() {
				for _, t := range r.Assoc(a) {
					q.Properties = append(q.Properties, serve.QueryProperty{PID: a, V: jsonString(fmt.Sprintf("%d", t))})
				}
			}
		}
		if rng.Float64() < cfg.UnknownPID {
			q.Properties = append(q.Properties, serve.QueryProperty{PID: "x-loadgen-unknown", V: jsonString("ignored")})
		}
	}
	return q
}

// nameAttrOf mirrors the server's free-text binding: name, then title,
// then the first atomic attribute.
func nameAttrOf(c *schema.Class) string {
	if c == nil {
		return ""
	}
	if _, ok := c.Attr(schema.AttrName); ok {
		return schema.AttrName
	}
	if _, ok := c.Attr(schema.AttrTitle); ok {
		return schema.AttrTitle
	}
	if aa := c.AtomicAttrs(); len(aa) > 0 {
		return aa[0].Name
	}
	return ""
}

// jsonString renders a JSON string literal for a QueryProperty value.
func jsonString(s string) []byte {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		switch b := s[i]; {
		case b == '"' || b == '\\':
			out = append(out, '\\', b)
		case b < 0x20:
			out = append(out, []byte(fmt.Sprintf("\\u%04x", b))...)
		default:
			out = append(out, b)
		}
	}
	return append(out, '"')
}
