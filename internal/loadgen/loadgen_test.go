package loadgen

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"refrecon/internal/serve"
)

// TestBuildDeterministic pins the acceptance criterion that the same seed
// reproduces the identical request stream, byte for byte.
func TestBuildDeterministic(t *testing.T) {
	for _, dataset := range []string{"biblio", "catalog"} {
		a, err := Build(Defaults(dataset, 400, 60, 42))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(Defaults(dataset, 400, 60, 42))
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(struct {
			Batches  [][]serve.IngestRef
			IngestAt []int
			Queries  []serve.ReconQuery
		}{a.Batches, a.IngestAt, a.Queries})
		jb, _ := json.Marshal(struct {
			Batches  [][]serve.IngestRef
			IngestAt []int
			Queries  []serve.ReconQuery
		}{b.Batches, b.IngestAt, b.Queries})
		if string(ja) != string(jb) {
			t.Fatalf("%s: same seed produced different request streams", dataset)
		}
		c, err := Build(Defaults(dataset, 400, 60, 43))
		if err != nil {
			t.Fatal(err)
		}
		jc, _ := json.Marshal(c.Queries)
		jaq, _ := json.Marshal(a.Queries)
		if string(jc) == string(jaq) {
			t.Fatalf("%s: different seeds produced identical query streams", dataset)
		}
	}
}

func TestWorkloadShape(t *testing.T) {
	w, err := Build(Defaults("biblio", 600, 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Batches) < 2 {
		t.Fatalf("got %d batches, want a multi-batch stream", len(w.Batches))
	}
	// No batch strands an association link past its own end.
	end := 0
	for bi, batch := range w.Batches {
		end += len(batch)
		for _, ir := range batch {
			for attr, targets := range ir.Assoc {
				for _, tgt := range targets {
					if int(tgt) >= end {
						t.Fatalf("batch %d: %s link to %d beyond batch end %d", bi, attr, tgt, end)
					}
				}
			}
		}
	}
	// The mode mix is realized.
	var collective, withProps, typeless int
	for _, q := range w.Queries {
		if q.Mode == serve.ModeCollective {
			collective++
		}
		if len(q.Properties) > 0 {
			withProps++
		}
		if q.Type == "" {
			typeless++
		}
	}
	if collective == 0 || withProps == 0 || typeless == 0 {
		t.Fatalf("query mix degenerate: collective=%d props=%d typeless=%d", collective, withProps, typeless)
	}
	if w.IngestAt[0] != 0 {
		t.Fatalf("batch 0 not scheduled up front: %v", w.IngestAt)
	}
	for i := 1; i < len(w.IngestAt); i++ {
		if w.IngestAt[i] < w.IngestAt[i-1] {
			t.Fatalf("ingest schedule not monotone: %v", w.IngestAt)
		}
	}
}

// checkReport asserts the replay invariants shared by both targets: every
// query accounted for, zero transport errors, zero per-query errors (the
// workload only sends well-formed requests — unknown pids must be ignored
// per spec, not errored), and a non-empty latency histogram per mode.
func checkReport(t *testing.T, rep *Report, w *Workload) {
	t.Helper()
	if rep.TransportErrors != 0 {
		t.Fatalf("%d transport errors", rep.TransportErrors)
	}
	if rep.QueryErrors != 0 {
		t.Fatalf("%d per-query errors", rep.QueryErrors)
	}
	if got := rep.Plain.Count + rep.Collective.Count; got != int64(len(w.Queries)) {
		t.Fatalf("histograms hold %d queries, want %d", got, len(w.Queries))
	}
	if rep.Plain.Count == 0 || rep.Collective.Count == 0 {
		t.Fatalf("a mode histogram is empty: plain=%d collective=%d", rep.Plain.Count, rep.Collective.Count)
	}
	if rep.Plain.P50MS <= 0 || rep.Plain.P99MS < rep.Plain.P50MS {
		t.Fatalf("implausible plain latency summary: %+v", rep.Plain)
	}
	if rep.IngestBatches != len(w.Batches) || rep.IngestedRefs != w.Config.Refs {
		// Refs is a target the generators overshoot by at most one record.
		if rep.IngestBatches != len(w.Batches) || rep.IngestedRefs < w.Config.Refs {
			t.Fatalf("ingest incomplete: %d batches (%d refs)", rep.IngestBatches, rep.IngestedRefs)
		}
	}
	if rep.QPS <= 0 {
		t.Fatalf("no throughput recorded: %+v", rep)
	}
}

func TestReplayInProcess(t *testing.T) {
	w, err := Build(Defaults("biblio", 300, 48, 3))
	if err != nil {
		t.Fatal(err)
	}
	target, err := NewInProcTarget(w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(w, target, Options{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, w)
	if rep.Degraded < 0 {
		t.Fatal("in-process target exposes no metrics")
	}
}

func TestReplayHTTPClosedAndOpenLoop(t *testing.T) {
	for _, dataset := range []string{"biblio", "catalog"} {
		w, err := Build(Defaults(dataset, 250, 40, 9))
		if err != nil {
			t.Fatal(err)
		}
		svc, err := serve.New(serve.Config{Schema: w.Schema, Name: "loadgen-test"})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		target := NewHTTPTarget(ts.URL, 4)
		rep, err := Run(w, target, Options{Concurrency: 4})
		if err != nil {
			ts.Close()
			t.Fatal(err)
		}
		checkReport(t, rep, w)
		if rep.Mode != "closed" {
			t.Fatalf("mode = %q", rep.Mode)
		}
		ts.Close()

		// Open loop against a fresh server: same stream, paced arrivals.
		svc2, err := serve.New(serve.Config{Schema: w.Schema, Name: "loadgen-test"})
		if err != nil {
			t.Fatal(err)
		}
		ts2 := httptest.NewServer(svc2.Handler())
		rep2, err := Run(w, NewHTTPTarget(ts2.URL, 4), Options{Concurrency: 4, RateQPS: 400})
		ts2.Close()
		if err != nil {
			t.Fatal(err)
		}
		checkReport(t, rep2, w)
		if rep2.Mode != "open" {
			t.Fatalf("mode = %q", rep2.Mode)
		}
	}
}
