package loadgen

// Replay targets. The HTTP target drives a live reconserve over its wire
// protocol (one reconcile query per request, ingest batches as JSON
// bodies); the in-process target calls internal/serve directly, isolating
// engine cost from HTTP/JSON stack cost when the two reports are read
// side by side.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"refrecon/internal/serve"
)

// Outcome classifies one query's result.
type Outcome struct {
	// Err is true when the server answered the query with a per-query
	// error envelope (transport failures surface as Go errors instead).
	Err bool
	// Results is the candidate count.
	Results int
}

// Target is anything the replayer can drive.
type Target interface {
	// Ingest applies one batch; any failure is a transport error.
	Ingest(batch []serve.IngestRef) error
	// Query resolves one reconcile query. The error return is transport
	// failure; per-query errors land in the Outcome.
	Query(q serve.ReconQuery) (Outcome, error)
	// Metrics fetches the server's metrics snapshot (nil if unsupported).
	Metrics() (*serve.MetricsSnapshot, error)
}

// HTTPTarget replays against a live server over HTTP.
type HTTPTarget struct {
	Base   string
	Client *http.Client
}

// NewHTTPTarget builds a target for the base URL ("http://host:port"),
// with a connection pool sized for the given client concurrency.
func NewHTTPTarget(base string, concurrency int) *HTTPTarget {
	if concurrency < 1 {
		concurrency = 1
	}
	tr := &http.Transport{
		MaxIdleConns:        concurrency * 2,
		MaxIdleConnsPerHost: concurrency * 2,
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTPTarget{Base: base, Client: &http.Client{Transport: tr, Timeout: 120 * time.Second}}
}

func (t *HTTPTarget) Ingest(batch []serve.IngestRef) error {
	body, err := json.Marshal(serve.IngestRequest{References: batch})
	if err != nil {
		return err
	}
	resp, err := t.Client.Post(t.Base+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest: status %d: %s", resp.StatusCode, bytes.TrimSpace(payload))
	}
	return nil
}

func (t *HTTPTarget) Query(q serve.ReconQuery) (Outcome, error) {
	body, err := json.Marshal(map[string]serve.ReconQuery{"q": q})
	if err != nil {
		return Outcome{}, err
	}
	resp, err := t.Client.Post(t.Base+"/reconcile", "application/json", bytes.NewReader(body))
	if err != nil {
		return Outcome{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return Outcome{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Outcome{}, fmt.Errorf("reconcile: status %d: %s", resp.StatusCode, bytes.TrimSpace(payload))
	}
	var out map[string]struct {
		Result []json.RawMessage `json:"result"`
		Error  string            `json:"error"`
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return Outcome{}, fmt.Errorf("reconcile: decode: %w", err)
	}
	r, ok := out["q"]
	if !ok {
		return Outcome{}, fmt.Errorf("reconcile: response missing query key")
	}
	if r.Error != "" {
		return Outcome{Err: true}, nil
	}
	return Outcome{Results: len(r.Result)}, nil
}

func (t *HTTPTarget) Metrics() (*serve.MetricsSnapshot, error) {
	resp, err := t.Client.Get(t.Base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m serve.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// InProcTarget replays directly against a serve.Service, bypassing the
// HTTP and JSON layers.
type InProcTarget struct {
	Svc *serve.Service
}

// NewInProcTarget starts an empty in-process service over the workload's
// schema.
func NewInProcTarget(w *Workload) (*InProcTarget, error) {
	svc, err := serve.New(serve.Config{Schema: w.Schema, Name: "loadgen-inproc"})
	if err != nil {
		return nil, err
	}
	return &InProcTarget{Svc: svc}, nil
}

func (t *InProcTarget) Ingest(batch []serve.IngestRef) error {
	_, err := t.Svc.Ingest(batch)
	return err
}

func (t *InProcTarget) Query(q serve.ReconQuery) (Outcome, error) {
	cands, err := t.Svc.Query(q)
	if err != nil {
		return Outcome{Err: true}, nil
	}
	return Outcome{Results: len(cands)}, nil
}

func (t *InProcTarget) Metrics() (*serve.MetricsSnapshot, error) {
	m := t.Svc.Metrics()
	return &m, nil
}
