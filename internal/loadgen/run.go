package loadgen

// The replayer. A single writer goroutine issues ingest batches in order,
// gated on query progress (batch i waits until IngestAt[i] queries have
// completed); query clients run either closed-loop (N workers, next query
// as soon as the last returns) or open-loop (a paced arrival process at a
// fixed rate, latency measured from the intended arrival time so a slow
// server cannot hide queueing delay — the coordinated-omission guard).

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"refrecon/internal/serve"
)

// Options configures a replay run.
type Options struct {
	// Concurrency is the closed-loop worker count (and the open-loop
	// in-flight hint). Minimum 1.
	Concurrency int
	// RateQPS switches to open-loop mode at this arrival rate; 0 keeps
	// closed-loop.
	RateQPS float64
}

// LatencyStats summarizes one latency histogram (log-spaced buckets,
// ×1.5 from 20µs, like the server's own histograms).
type LatencyStats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"meanMs"`
	P50MS  float64 `json:"p50Ms"`
	P90MS  float64 `json:"p90Ms"`
	P99MS  float64 `json:"p99Ms"`
	MaxMS  float64 `json:"maxMs"`
}

// Report is the machine-readable result of one replay.
type Report struct {
	Dataset     string  `json:"dataset"`
	Seed        int64   `json:"seed"`
	Refs        int     `json:"refs"`
	Mode        string  `json:"mode"` // "closed" or "open"
	Concurrency int     `json:"concurrency"`
	RateQPS     float64 `json:"rateQps,omitempty"`

	Queries         int     `json:"queries"`
	IngestBatches   int     `json:"ingestBatches"`
	IngestedRefs    int     `json:"ingestedRefs"`
	DurationSec     float64 `json:"durationSec"`
	QPS             float64 `json:"qps"`
	TransportErrors int64   `json:"transportErrors"`
	QueryErrors     int64   `json:"queryErrors"`
	EmptyResults    int64   `json:"emptyResults"`

	// Per-mode latency splits, measured at the client.
	Plain      LatencyStats `json:"plainLatencyMs"`
	Collective LatencyStats `json:"collectiveLatencyMs"`
	Ingest     LatencyStats `json:"ingestLatencyMs"`

	// Degraded is the server-side count of collective queries that fell
	// back to attribute-only scoring (from the final metrics scrape; -1
	// when the target exposes no metrics).
	Degraded int64 `json:"degraded"`
}

// histogram is the client-side latency histogram; unlike the server's it
// is only touched under the run's mutex-free atomic counters.
type histogram struct {
	boundsMS []float64
	counts   []atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

func newHistogram() *histogram {
	var bounds []float64
	for b := 0.02; b < 90_000; b *= 1.5 {
		bounds = append(bounds, b)
	}
	return &histogram{boundsMS: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	h.counts[sort.SearchFloat64s(h.boundsMS, ms)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(d.Nanoseconds())
	for {
		cur := h.maxNanos.Load()
		if d.Nanoseconds() <= cur || h.maxNanos.CompareAndSwap(cur, d.Nanoseconds()) {
			break
		}
	}
}

func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > target {
			if i < len(h.boundsMS) {
				return h.boundsMS[i]
			}
			return float64(h.maxNanos.Load()) / 1e6
		}
	}
	return float64(h.maxNanos.Load()) / 1e6
}

func (h *histogram) stats() LatencyStats {
	s := LatencyStats{
		Count: h.count.Load(),
		P50MS: h.quantile(0.50),
		P90MS: h.quantile(0.90),
		P99MS: h.quantile(0.99),
		MaxMS: float64(h.maxNanos.Load()) / 1e6,
	}
	if s.Count > 0 {
		s.MeanMS = float64(h.sumNanos.Load()) / 1e6 / float64(s.Count)
	}
	return s
}

// Run replays the workload against the target and reports.
func Run(w *Workload, target Target, opts Options) (*Report, error) {
	if opts.Concurrency < 1 {
		opts.Concurrency = 1
	}
	rep := &Report{
		Dataset:     w.Config.Dataset,
		Seed:        w.Config.Seed,
		Refs:        w.Config.Refs,
		Mode:        "closed",
		Concurrency: opts.Concurrency,
		RateQPS:     opts.RateQPS,
		Queries:     len(w.Queries),
	}
	if opts.RateQPS > 0 {
		rep.Mode = "open"
	}

	var (
		completed       atomic.Int64 // queries finished (gates the writer)
		transportErrors atomic.Int64
		queryErrors     atomic.Int64
		emptyResults    atomic.Int64
		plain           = newHistogram()
		collective      = newHistogram()
		ingestHist      = newHistogram()
	)

	runQuery := func(qi int, lat0 time.Time) {
		q := w.Queries[qi]
		out, err := target.Query(q)
		d := time.Since(lat0)
		if err != nil {
			transportErrors.Add(1)
		} else if out.Err {
			queryErrors.Add(1)
		} else {
			if out.Results == 0 {
				emptyResults.Add(1)
			}
			if q.Mode == serve.ModeCollective {
				collective.observe(d)
			} else {
				plain.observe(d)
			}
		}
		completed.Add(1)
	}

	// The writer: batches in order, each gated on query progress. Batch 0
	// is issued synchronously before the clock starts so every run begins
	// against a populated service.
	if len(w.Batches) > 0 {
		t0 := time.Now()
		if err := target.Ingest(w.Batches[0]); err != nil {
			return nil, fmt.Errorf("loadgen: seed ingest: %w", err)
		}
		ingestHist.observe(time.Since(t0))
		rep.IngestBatches++
		rep.IngestedRefs += len(w.Batches[0])
	}

	start := time.Now()
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 1; i < len(w.Batches); i++ {
			for completed.Load() < int64(w.IngestAt[i]) {
				time.Sleep(200 * time.Microsecond)
			}
			t0 := time.Now()
			if err := target.Ingest(w.Batches[i]); err != nil {
				transportErrors.Add(1)
				continue
			}
			ingestHist.observe(time.Since(t0))
			rep.IngestBatches++
			rep.IngestedRefs += len(w.Batches[i])
		}
	}()

	if opts.RateQPS > 0 {
		// Open loop: arrivals at fixed intervals; latency from intended
		// arrival, not actual dispatch.
		interval := time.Duration(float64(time.Second) / opts.RateQPS)
		var wg sync.WaitGroup
		for qi := range w.Queries {
			intended := start.Add(time.Duration(qi) * interval)
			if d := time.Until(intended); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(qi int, intended time.Time) {
				defer wg.Done()
				runQuery(qi, intended)
			}(qi, intended)
		}
		wg.Wait()
	} else {
		// Closed loop: N workers, shared cursor.
		var next atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < opts.Concurrency; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					qi := int(next.Add(1)) - 1
					if qi >= len(w.Queries) {
						return
					}
					runQuery(qi, time.Now())
				}
			}()
		}
		wg.Wait()
	}
	writerWG.Wait()

	rep.DurationSec = time.Since(start).Seconds()
	if rep.DurationSec > 0 {
		rep.QPS = float64(len(w.Queries)) / rep.DurationSec
	}
	rep.TransportErrors = transportErrors.Load()
	rep.QueryErrors = queryErrors.Load()
	rep.EmptyResults = emptyResults.Load()
	rep.Plain = plain.stats()
	rep.Collective = collective.stats()
	rep.Ingest = ingestHist.stats()
	rep.Degraded = -1
	if m, err := target.Metrics(); err == nil && m != nil {
		rep.Degraded = m.CollectiveDegraded
	}
	return rep, nil
}
