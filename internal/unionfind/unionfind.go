// Package unionfind implements a disjoint-set forest with union by rank and
// path compression. The reconciler uses it to compute the transitive
// closure of pairwise merge decisions into entity partitions (the final
// step of the algorithm in Figure 4 of the paper).
package unionfind

import "sort"

// UF is a disjoint-set forest over dense integer ids [0, n). The zero value
// is unusable; construct with New.
type UF struct {
	parent []int
	rank   []byte
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *UF {
	u := &UF{parent: make([]int, n), rank: make([]byte, n), sets: n}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UF) Sets() int { return u.sets }

// Find returns the canonical representative of x's set.
func (u *UF) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// actually happened (false when they were already joined).
func (u *UF) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Partitions returns the sets as sorted slices of member ids, ordered by
// each set's smallest member. The output is deterministic.
func (u *UF) Partitions() [][]int {
	groups := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
