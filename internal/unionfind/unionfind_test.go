package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	u := New(5)
	if u.Len() != 5 || u.Sets() != 5 {
		t.Fatalf("fresh forest wrong: len=%d sets=%d", u.Len(), u.Sets())
	}
	if !u.Union(0, 1) {
		t.Error("first union should report true")
	}
	if u.Union(1, 0) {
		t.Error("repeat union should report false")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Error("Same wrong after one union")
	}
	u.Union(2, 3)
	u.Union(1, 3)
	if u.Sets() != 2 {
		t.Errorf("Sets = %d, want 2", u.Sets())
	}
	parts := u.Partitions()
	if len(parts) != 2 {
		t.Fatalf("Partitions = %v", parts)
	}
	want0 := []int{0, 1, 2, 3}
	for i, v := range want0 {
		if parts[0][i] != v {
			t.Errorf("partition 0 = %v, want %v", parts[0], want0)
			break
		}
	}
	if len(parts[1]) != 1 || parts[1][0] != 4 {
		t.Errorf("partition 1 = %v, want [4]", parts[1])
	}
}

func TestTransitivity(t *testing.T) {
	u := New(100)
	// Chain 0-1-2-...-99.
	for i := 0; i+1 < 100; i++ {
		u.Union(i, i+1)
	}
	if u.Sets() != 1 || !u.Same(0, 99) {
		t.Error("chain should collapse to a single set")
	}
}

func TestPartitionsCoverAndDisjoint(t *testing.T) {
	f := func(pairs []struct{ A, B uint8 }) bool {
		u := New(64)
		for _, p := range pairs {
			u.Union(int(p.A%64), int(p.B%64))
		}
		parts := u.Partitions()
		seen := make(map[int]bool)
		total := 0
		for _, p := range parts {
			for _, x := range p {
				if seen[x] {
					return false // overlap
				}
				seen[x] = true
				total++
			}
		}
		return total == 64 && len(parts) == u.Sets()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionOrderIrrelevant(t *testing.T) {
	// The final partition must not depend on the order unions are applied.
	pairs := [][2]int{{0, 1}, {2, 3}, {4, 5}, {1, 2}, {5, 6}, {8, 9}}
	canonical := func(perm []int) string {
		u := New(10)
		for _, i := range perm {
			u.Union(pairs[i][0], pairs[i][1])
		}
		s := ""
		for _, p := range u.Partitions() {
			for _, x := range p {
				s += string(rune('0' + x))
			}
			s += "|"
		}
		return s
	}
	base := canonical([]int{0, 1, 2, 3, 4, 5})
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(pairs))
		if got := canonical(perm); got != base {
			t.Fatalf("order-dependent partitions: %q vs %q", got, base)
		}
	}
}

func TestSameIsEquivalence(t *testing.T) {
	f := func(pairs []struct{ A, B, C uint8 }) bool {
		u := New(32)
		for _, p := range pairs {
			u.Union(int(p.A%32), int(p.B%32))
		}
		for _, p := range pairs {
			a, b, c := int(p.A%32), int(p.B%32), int(p.C%32)
			if !u.Same(a, a) { // reflexive
				return false
			}
			if u.Same(a, b) != u.Same(b, a) { // symmetric
				return false
			}
			if u.Same(a, b) && u.Same(b, c) && !u.Same(a, c) { // transitive
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < b.N; i++ {
		u := New(10000)
		for j := 0; j < 20000; j++ {
			u.Union(rng.Intn(10000), rng.Intn(10000))
		}
		_ = u.Sets()
	}
}
