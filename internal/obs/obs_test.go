package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSpansAndJSON(t *testing.T) {
	tr := NewTracer()
	outer := tr.Begin("phase", "propagate")
	inner := tr.Begin("round", "round 1")
	time.Sleep(time.Millisecond)
	inner.EndArgs(map[string]any{"steps": 3})
	outer.End()
	tr.Instant("mark", "checkpoint", nil)

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	// Spans record on completion, so the inner round lands first.
	round, phase, inst := ev[0], ev[1], ev[2]
	if round.Name != "round 1" || round.Ph != "X" {
		t.Fatalf("first event = %+v, want round 1 complete span", round)
	}
	if phase.Name != "propagate" || phase.Cat != "phase" {
		t.Fatalf("second event = %+v, want propagate phase span", phase)
	}
	if inst.Ph != "i" {
		t.Fatalf("instant event ph = %q, want i", inst.Ph)
	}
	// Time containment: the round must nest inside the phase span.
	if round.TS < phase.TS || round.TS+round.Dur > phase.TS+phase.Dur {
		t.Fatalf("round [%v,%v] not inside phase [%v,%v]",
			round.TS, round.TS+round.Dur, phase.TS, phase.TS+phase.Dur)
	}
	if got := round.Args["steps"]; got != 3 {
		t.Fatalf("round args = %v, want steps:3", round.Args)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output is not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("trace file = %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
}

func TestTracerNilReceiver(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("phase", "build") // must not panic
	sp.End()
	sp.EndArgs(map[string]any{"x": 1})
	tr.Complete("cat", "n", time.Now(), nil)
	tr.Instant("cat", "n", nil)
	if ev := tr.Events(); ev != nil {
		t.Fatalf("nil tracer returned events: %v", ev)
	}
	if tr.NextTID() != 0 {
		t.Fatal("nil tracer allocated a lane")
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSON on nil tracer should error")
	}
}

func TestTracerConcurrentLanes(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.BeginTID("http", "GET /x", tr.NextTID())
			sp.End()
		}()
	}
	wg.Wait()
	ev := tr.Events()
	if len(ev) != 8 {
		t.Fatalf("got %d events, want 8", len(ev))
	}
	lanes := map[int64]bool{}
	for _, e := range ev {
		if lanes[e.TID] {
			t.Fatalf("lane %d reused across concurrent requests", e.TID)
		}
		lanes[e.TID] = true
	}
}

func TestCountersSnapshotAndMax(t *testing.T) {
	c := NewCounters()
	c.Steps.Add(5)
	c.Merges.Add(2)
	UpdateMax(&c.QueueHighWater, 7)
	UpdateMax(&c.QueueHighWater, 3) // lower: must not regress
	s := c.Snapshot()
	if s.Steps != 5 || s.Merges != 2 || s.QueueHighWater != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	var nilC *Counters
	if got := nilC.Snapshot(); got != (CounterSnapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", got)
	}
}

func TestProgressCallbackGetsEveryEvent(t *testing.T) {
	var got []Event
	p := &Progress{Fn: func(e Event) { got = append(got, e) }, Interval: time.Hour}
	for i := 1; i <= 5; i++ {
		p.Emit(Event{Phase: "propagate", Round: i})
	}
	if len(got) != 5 {
		t.Fatalf("callback saw %d events, want 5 (callback must not be rate-limited)", len(got))
	}
	for i, e := range got {
		if e.Round != i+1 {
			t.Fatalf("event %d round = %d", i, e.Round)
		}
	}
}

func TestProgressWriterRateLimited(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Hour)
	p.Emit(Event{Phase: "propagate", Round: 1})              // first always renders
	p.Emit(Event{Phase: "propagate", Round: 2})              // suppressed by interval
	p.Emit(Event{Phase: "propagate", Round: 3, Final: true}) // final always renders
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("rendered %d lines, want 2 (first + final):\n%s", lines, buf.String())
	}
	if !strings.Contains(buf.String(), "done") {
		t.Fatalf("final line missing done marker:\n%s", buf.String())
	}
}

func TestProgressNilReceiver(t *testing.T) {
	var p *Progress
	p.Emit(Event{Phase: "build"}) // must not panic
}

func TestObserverNilAccessors(t *testing.T) {
	var o *Observer
	if o.Tracer() != nil || o.Counter() != nil || o.Progressor() != nil || o.Profiling() {
		t.Fatal("nil observer leaked a non-nil facet")
	}
	o = &Observer{}
	if o.Tracer() != nil || o.Counter() != nil || o.Progressor() != nil || o.Profiling() {
		t.Fatal("empty observer leaked a non-nil facet")
	}
}

func TestDoRunsFunction(t *testing.T) {
	ran := false
	Do("build", func() { ran = true })
	if !ran {
		t.Fatal("Do did not run the function")
	}
}
