package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records structured spans and renders them in the Chrome
// trace-event JSON format (chrome://tracing, Perfetto, Speedscope all
// read it). Spans are "complete" events ("ph":"X") with microsecond
// timestamps relative to the tracer's creation; nesting is positional —
// a viewer nests span B inside span A when B's [ts, ts+dur) interval
// lies within A's on the same (pid, tid) lane.
//
// All methods are safe for concurrent use and safe on a nil receiver:
// a nil tracer hands out inert Spans whose End is a no-op, so call sites
// need no guard beyond the pointer they already hold.
type Tracer struct {
	start   time.Time
	mu      sync.Mutex
	events  []TraceEvent
	nextTID atomic.Int64
}

// TraceEvent is one Chrome trace-event record. TS and Dur are
// microseconds; PH is the event phase ("X" complete, "i" instant).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns a tracer whose timestamps are relative to now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// Span is an in-flight trace span; End (or EndArgs) closes it. The zero
// Span is inert.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	tid   int64
	begin time.Time
}

// Begin opens a span on the main lane (tid 1). On a nil tracer it
// returns an inert span.
func (t *Tracer) Begin(cat, name string) Span { return t.BeginTID(cat, name, 1) }

// BeginTID opens a span on an explicit lane; concurrent request handlers
// use distinct lanes (see NextTID) so their spans do not falsely nest.
func (t *Tracer) BeginTID(cat, name string, tid int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, tid: tid, begin: time.Now()}
}

// NextTID allocates a fresh lane id (lanes 1.. are caller-managed; the
// engine uses lane 1).
func (t *Tracer) NextTID() int64 {
	if t == nil {
		return 0
	}
	return t.nextTID.Add(1) + 1
}

// End closes the span with no args.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span, attaching args to the recorded event.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	s.t.record(s.cat, s.name, s.tid, s.begin, time.Now(), args)
}

// Complete records a span that started at begin and ends now, on the main
// lane. It lets hot paths avoid constructing a Span when the outcome
// decides whether the event is worth recording at all.
func (t *Tracer) Complete(cat, name string, begin time.Time, args map[string]any) {
	if t == nil {
		return
	}
	t.record(cat, name, 1, begin, time.Now(), args)
}

// Instant records a zero-duration marker event on the main lane.
func (t *Tracer) Instant(cat, name string, args map[string]any) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "i",
		TS: t.since(now), PID: 1, TID: 1, Args: args,
	})
	t.mu.Unlock()
}

func (t *Tracer) record(cat, name string, tid int64, begin, end time.Time, args map[string]any) {
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: t.since(begin), Dur: t.since(end) - t.since(begin),
		PID: 1, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// since converts an absolute time to trace microseconds.
func (t *Tracer) since(at time.Time) float64 {
	return float64(at.Sub(t.start).Nanoseconds()) / 1e3
}

// Events returns a copy of the recorded events in recording order (which
// is completion order for spans, not start order).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// traceFile is the JSON object format of a Chrome trace file.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON renders the recorded events as a Chrome trace-event JSON
// document.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteJSON on a nil Tracer")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"})
}
