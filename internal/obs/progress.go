package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one progress report. Phase-final events (Final) mark the end
// of a phase; round events fire at propagation-round boundaries.
type Event struct {
	Phase   string        // "build", "propagate", "closure", ...
	Round   int           // propagation round (0 outside propagation)
	Steps   int           // node evaluations so far in the phase
	Merges  int           // reference-pair merges so far
	Folds   int           // enrichment folds so far
	Queue   int           // current queue depth
	Elapsed time.Duration // since the first event
	Final   bool          // phase completed
}

// Progress delivers periodic progress events. The callback Fn receives
// every event (tests and cancellation triggers rely on seeing each round);
// the writer W is rate-limited to Interval so a 10k-round fixed point
// doesn't flood a terminal. Safe on a nil receiver and for concurrent use.
type Progress struct {
	// Fn, if set, receives every event as it happens.
	Fn func(Event)
	// W, if set, receives a rendered line per event, rate-limited to one
	// per Interval (final events always render).
	W io.Writer
	// Interval is the minimum spacing of rendered lines (default 250ms).
	Interval time.Duration

	mu    sync.Mutex
	start time.Time
	last  time.Time
}

// NewProgress returns a progress sink rendering to w every interval
// (interval <= 0 selects the 250ms default). A nil w is valid: events
// then reach only the callback.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	return &Progress{W: w, Interval: interval}
}

// Emit delivers one event. No-op on a nil receiver.
func (p *Progress) Emit(e Event) {
	if p == nil {
		return
	}
	now := time.Now()
	p.mu.Lock()
	if p.start.IsZero() {
		p.start = now
	}
	e.Elapsed = now.Sub(p.start)
	interval := p.Interval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	render := p.W != nil && (e.Final || p.last.IsZero() || now.Sub(p.last) >= interval)
	if render {
		p.last = now
	}
	fn := p.Fn
	p.mu.Unlock()

	if render {
		p.render(e)
	}
	if fn != nil {
		fn(e)
	}
}

func (p *Progress) render(e Event) {
	done := ""
	if e.Final {
		done = " done"
	}
	if e.Phase == "propagate" {
		fmt.Fprintf(p.W, "progress: %s round %d: %d steps, %d merges, %d folds, queue %d (%.1fs)%s\n",
			e.Phase, e.Round, e.Steps, e.Merges, e.Folds, e.Queue, e.Elapsed.Seconds(), done)
		return
	}
	fmt.Fprintf(p.W, "progress: %s (%.1fs)%s\n", e.Phase, e.Elapsed.Seconds(), done)
}
