package obs

import "sync/atomic"

// Counters is the engine-wide counter set. Fields are plain atomics —
// incrementing one is a single uncontended atomic add, and reading them
// never locks — so they are cheap enough to leave enabled on a serving
// path. Hot loops that run millions of times per reconcile (strsim,
// digest scoring) must still gate on a nil *Counters: with observability
// off, the cost of the whole layer is that one pointer comparison.
//
// Counters accumulate monotonically for the lifetime of the struct; a
// Session carries one across batches, so snapshot deltas, not absolute
// values, describe a single batch.
type Counters struct {
	// Similarity-cache traffic in simfn.Library.Compare.
	SimfnCacheHits   atomic.Int64
	SimfnCacheMisses atomic.Int64

	// Blocking: candidate pairs emitted, bucket-cap drops, index keys,
	// and the largest bucket seen.
	BlockingCandidates atomic.Int64
	SkippedBuckets     atomic.Int64
	BlockingKeys       atomic.Int64
	MaxBucket          atomic.Int64

	// Propagation-engine activity.
	Steps          atomic.Int64
	Merges         atomic.Int64
	Folds          atomic.Int64
	Rounds         atomic.Int64
	RequeueReal    atomic.Int64
	RequeueStrong  atomic.Int64
	RequeueWeak    atomic.Int64
	QueueHighWater atomic.Int64 // max, not sum

	// Delta-scoring effectiveness (digest hits vs aggregate builds).
	DeltaHits   atomic.Int64
	AggBuilds   atomic.Int64
	AggRebuilds atomic.Int64

	// Sharded reconciliation (zero under the monolithic path): component
	// engine runs, partition shape, boundary-frontier traffic.
	ShardRuns           atomic.Int64
	ShardComponents     atomic.Int64
	LargestComponent    atomic.Int64 // max, not sum
	BoundaryLinks       atomic.Int64
	FrontierRounds      atomic.Int64
	FrontierActivations atomic.Int64

	// Query-time collective reconciliation: queries run, queries that
	// degraded to the attribute-only fallback, RefPair nodes materialized
	// across all expansions, and the largest single expansion.
	CollectiveQueries      atomic.Int64
	CollectiveDegraded     atomic.Int64
	CollectivePairNodes    atomic.Int64
	CollectiveMaxPairNodes atomic.Int64 // max, not sum

	// Session-level events.
	Batches  atomic.Int64
	Canceled atomic.Int64
}

// NewCounters returns a zeroed counter set.
func NewCounters() *Counters { return &Counters{} }

// UpdateMax raises c to at least v (a CAS max; lock-free and safe for
// concurrent use).
func UpdateMax(c *atomic.Int64, v int64) {
	for {
		cur := c.Load()
		if v <= cur || c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// CounterSnapshot is a point-in-time copy of a Counters set, shaped for
// JSON rendering (the serve /metrics document embeds one).
type CounterSnapshot struct {
	SimfnCacheHits         int64 `json:"simfnCacheHits"`
	SimfnCacheMisses       int64 `json:"simfnCacheMisses"`
	BlockingCandidates     int64 `json:"blockingCandidates"`
	SkippedBuckets         int64 `json:"skippedBuckets"`
	BlockingKeys           int64 `json:"blockingKeys"`
	MaxBucket              int64 `json:"maxBucket"`
	Steps                  int64 `json:"steps"`
	Merges                 int64 `json:"merges"`
	Folds                  int64 `json:"folds"`
	Rounds                 int64 `json:"rounds"`
	RequeueReal            int64 `json:"requeueReal"`
	RequeueStrong          int64 `json:"requeueStrong"`
	RequeueWeak            int64 `json:"requeueWeak"`
	QueueHighWater         int64 `json:"queueHighWater"`
	DeltaHits              int64 `json:"deltaHits"`
	AggBuilds              int64 `json:"aggBuilds"`
	AggRebuilds            int64 `json:"aggRebuilds"`
	ShardRuns              int64 `json:"shardRuns"`
	ShardComponents        int64 `json:"shardComponents"`
	LargestComponent       int64 `json:"largestComponent"`
	BoundaryLinks          int64 `json:"boundaryLinks"`
	FrontierRounds         int64 `json:"frontierRounds"`
	FrontierActivations    int64 `json:"frontierActivations"`
	CollectiveQueries      int64 `json:"collectiveQueries"`
	CollectiveDegraded     int64 `json:"collectiveDegraded"`
	CollectivePairNodes    int64 `json:"collectivePairNodes"`
	CollectiveMaxPairNodes int64 `json:"collectiveMaxPairNodes"`

	Batches  int64 `json:"batches"`
	Canceled int64 `json:"canceled"`
}

// Snapshot copies the current counter values. Safe on a nil receiver
// (returns the zero snapshot).
func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{}
	}
	return CounterSnapshot{
		SimfnCacheHits:         c.SimfnCacheHits.Load(),
		SimfnCacheMisses:       c.SimfnCacheMisses.Load(),
		BlockingCandidates:     c.BlockingCandidates.Load(),
		SkippedBuckets:         c.SkippedBuckets.Load(),
		BlockingKeys:           c.BlockingKeys.Load(),
		MaxBucket:              c.MaxBucket.Load(),
		Steps:                  c.Steps.Load(),
		Merges:                 c.Merges.Load(),
		Folds:                  c.Folds.Load(),
		Rounds:                 c.Rounds.Load(),
		RequeueReal:            c.RequeueReal.Load(),
		RequeueStrong:          c.RequeueStrong.Load(),
		RequeueWeak:            c.RequeueWeak.Load(),
		QueueHighWater:         c.QueueHighWater.Load(),
		DeltaHits:              c.DeltaHits.Load(),
		AggBuilds:              c.AggBuilds.Load(),
		AggRebuilds:            c.AggRebuilds.Load(),
		ShardRuns:              c.ShardRuns.Load(),
		ShardComponents:        c.ShardComponents.Load(),
		LargestComponent:       c.LargestComponent.Load(),
		BoundaryLinks:          c.BoundaryLinks.Load(),
		FrontierRounds:         c.FrontierRounds.Load(),
		FrontierActivations:    c.FrontierActivations.Load(),
		CollectiveQueries:      c.CollectiveQueries.Load(),
		CollectiveDegraded:     c.CollectiveDegraded.Load(),
		CollectivePairNodes:    c.CollectivePairNodes.Load(),
		CollectiveMaxPairNodes: c.CollectiveMaxPairNodes.Load(),
		Batches:                c.Batches.Load(),
		Canceled:               c.Canceled.Load(),
	}
}
