// Package obs is the engine's observability layer: structured span
// tracing (exportable as Chrome trace-event JSON), cheap atomic counters,
// periodic progress events, and pprof phase labels.
//
// The package is built around one rule: disabled observability must cost
// a nil check and nothing else. Every entry point is safe on a nil
// receiver — a nil *Tracer hands out inert Spans, a nil *Progress drops
// events — so instrumented code either guards with a single pointer
// comparison or calls straight through without branching. No interface
// values are constructed on hot paths (an interface would allocate when a
// concrete pointer escapes into it), and counters are plain atomics that
// instrumented code touches only after its own nil gate, so the strsim
// and pairscore loops stay at 0 allocs/op with observability off.
package obs

import (
	"context"
	"runtime/pprof"
)

// Observer bundles the observability sinks threaded through a
// reconciliation run. A nil *Observer — or any nil field — disables that
// facet at the cost of a pointer comparison.
type Observer struct {
	// Trace collects phase/round/fold spans (nil = off).
	Trace *Tracer
	// Counters receives engine and cache counters (nil = off).
	Counters *Counters
	// Progress receives periodic progress events (nil = off).
	Progress *Progress
	// Profile applies pprof labels ("refrecon.phase") to the goroutines of
	// each phase, so CPU profiles attribute samples to build/propagate/
	// closure rather than one undifferentiated stack mass.
	Profile bool
}

// Tracer returns the observer's tracer, nil when disabled. Safe on a nil
// receiver.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Counter returns the observer's counter set, nil when disabled. Safe on
// a nil receiver.
func (o *Observer) Counter() *Counters {
	if o == nil {
		return nil
	}
	return o.Counters
}

// Progressor returns the observer's progress sink, nil when disabled.
// Safe on a nil receiver.
func (o *Observer) Progressor() *Progress {
	if o == nil {
		return nil
	}
	return o.Progress
}

// Profiling reports whether pprof phase labels are requested. Safe on a
// nil receiver.
func (o *Observer) Profiling() bool { return o != nil && o.Profile }

// Do runs f, labeling the calling goroutine — and every goroutine f
// spawns, since pprof labels are inherited — with the phase name under
// the "refrecon.phase" key for the duration of the call.
func Do(phase string, f func()) {
	pprof.Do(context.Background(), pprof.Labels("refrecon.phase", phase), func(context.Context) {
		f()
	})
}
