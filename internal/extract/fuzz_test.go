package extract

import (
	"regexp"
	"strings"
	"testing"
)

// The fuzz targets below check structural properties, not exact outputs:
// parsers must never panic, must only return well-formed values on success,
// and the email renderer must produce output its own parser accepts. Seed
// corpora live in testdata/fuzz/<FuzzName>/.

func FuzzBibTeX(f *testing.F) {
	f.Add("@inproceedings{dong05,\n  author = {Xin Dong and Alon Halevy},\n  title = {Reference Reconciliation in Complex Information Spaces},\n  booktitle = {SIGMOD},\n  year = 2005,\n}")
	f.Add("@article(k99, journal = \"J. {Nested {Braces}} Here\", year = {1999})")
	f.Add("@comment{ignore {me} fully} @misc{x, note = unquoted}")
	f.Add("@string{sig = {SIGMOD}}\n@inproceedings{a, booktitle = sig}")
	f.Add("no entries at all")
	f.Add("@")
	f.Add("@inproceedings{unterminated, title = {oops")
	f.Fuzz(func(t *testing.T, src string) {
		entries, err := ParseBibTeX(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "bibtex: line ") {
				t.Fatalf("error without line prefix: %v", err)
			}
			return
		}
		for _, e := range entries {
			if e.Type == "" {
				t.Fatalf("entry with empty type: %+v", e)
			}
			if e.Line < 1 {
				t.Fatalf("entry with line %d", e.Line)
			}
			if e.Type != strings.ToLower(e.Type) {
				t.Fatalf("type not lowercased: %q", e.Type)
			}
			for k, v := range e.Fields {
				if k == "" || k != strings.ToLower(k) {
					t.Fatalf("bad field name %q", k)
				}
				if strings.ContainsAny(v, "\n\t") || v != strings.TrimSpace(v) {
					t.Fatalf("field %q value not cleaned: %q", k, v)
				}
			}
			for _, a := range e.Authors() {
				if strings.TrimSpace(a) == "" {
					t.Fatal("empty author survived splitting")
				}
			}
		}
	})
}

func FuzzVCard(f *testing.F) {
	f.Add("BEGIN:VCARD\nFN:Alon Halevy\nN:Halevy;Alon;;;\nEMAIL;TYPE=work:alon@cs.example.edu\nEND:VCARD\n")
	f.Add("BEGIN:VCARD\r\nFN:Folded\r\n Name\r\nEND:VCARD\r\n")
	f.Add("BEGIN:VCARD\nFN:Unterminated")
	f.Add("END:VCARD\n")
	f.Add("BEGIN:VCARD\nBEGIN:VCARD\nEND:VCARD\n")
	f.Add(" leading continuation\nBEGIN:VCARD\nEND:VCARD")
	f.Add("BEGIN:VCARD\nN:OnlyLast\nEND:VCARD")
	f.Fuzz(func(t *testing.T, src string) {
		cards, err := ParseVCards(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "vcard: ") {
				t.Fatalf("error without vcard prefix: %v", err)
			}
			return
		}
		begins := strings.Count(strings.ToUpper(src), "BEGIN:")
		if len(cards) > begins {
			t.Fatalf("%d cards from %d BEGIN lines", len(cards), begins)
		}
		for _, c := range cards {
			if c.FormattedName != strings.TrimSpace(c.FormattedName) {
				t.Fatalf("FN not trimmed: %q", c.FormattedName)
			}
			for _, e := range c.Emails {
				if e == "" || e != strings.TrimSpace(strings.ToLower(e)) {
					t.Fatalf("email not normalized: %q", e)
				}
			}
		}
	})
}

func FuzzEmail(f *testing.F) {
	f.Add("From: Alon Halevy <alon@cs.example.edu>\nTo: \"Dong, Xin\" <xin@cs.example.edu>, mike@db.example.org\nSubject: draft\nDate: Mon, 6 Jun 2005 10:00:00\nMessage-ID: <abc@mail>\n\nbody ignored")
	f.Add("From: bare@addr\n")
	f.Add("Subject: folded\n subject line\n")
	f.Add("not a header line")
	f.Add(" continuation first")
	f.Add("From: \"weird \\\" quote\" <a@b>\n")
	f.Add("From: <>\nTo: ,,,\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseMessage(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "email: line ") {
				t.Fatalf("error without line prefix: %v", err)
			}
			return
		}
		// The renderer must emit text its own parser accepts and that
		// re-renders to a fixed point (generators rely on this round trip).
		r1 := RenderMessage(m)
		m2, err := ParseMessage(r1)
		if err != nil {
			t.Fatalf("rendered message does not re-parse: %v\nrendered:\n%s", err, r1)
		}
		r2 := RenderMessage(m2)
		if r1 != r2 {
			t.Fatalf("render/parse not a fixed point:\nfirst:\n%s\nsecond:\n%s", r1, r2)
		}
	})
}

var (
	fuzzYearRe  = regexp.MustCompile(`^(1[89]\d\d|20\d\d)$`)
	fuzzPagesRe = regexp.MustCompile(`^\d+-\d+$`)
)

func FuzzCitation(f *testing.F) {
	f.Add("R. Agrawal and R. Srikant. Fast algorithms for mining association rules. In Proc. VLDB, Santiago, 1994, pp. 487-499.")
	f.Add("Madhavan, J. Reference reconciliation in complex information spaces. SIGMOD, 2005.")
	f.Add("\\bibitem{ar94} R. Agrawal. {\\em Mining} rules. % comment\nProc.~VLDB, 1994.")
	f.Add("no structure")
	f.Add("...")
	f.Add("A. B. C. D. E. F.")
	f.Fuzz(func(t *testing.T, src string) {
		for _, text := range append(ParseBibItems(src), src) {
			c, ok := ParseCitation(text)
			if !ok {
				continue
			}
			if strings.TrimSpace(c.Title) == "" {
				t.Fatalf("ok parse with empty title from %q", text)
			}
			if c.Year != "" && !fuzzYearRe.MatchString(c.Year) {
				t.Fatalf("malformed year %q from %q", c.Year, text)
			}
			if c.Pages != "" && !fuzzPagesRe.MatchString(c.Pages) {
				t.Fatalf("malformed pages %q from %q", c.Pages, text)
			}
			for _, a := range c.Authors {
				if strings.TrimSpace(a) == "" {
					t.Fatalf("empty author from %q", text)
				}
			}
		}
	})
}
