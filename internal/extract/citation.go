package extract

import (
	"regexp"
	"strings"
)

// Citation is a free-text citation string segmented into fields — the form
// references take in LaTeX \bibitem entries and in citation-index corpora
// like Cora, where no BibTeX structure is available.
type Citation struct {
	Authors []string
	Title   string
	Venue   string
	Year    string
	Pages   string
}

var (
	yearRe  = regexp.MustCompile(`\b(1[89]\d\d|20\d\d)\b`)
	pagesRe = regexp.MustCompile(`(?i)\b(?:pp?\.?\s*)?(\d+)\s*[-–]+\s*(\d+)\b`)
	// authorListRe matches a leading author list: names with initials
	// separated by commas and "and".
	venueCueRe = regexp.MustCompile(`(?i)\b(proc\.|proceedings|conference|journal|workshop|symposium|trans\.|transactions|in proc|lecture notes|technical report|tr[- ]\d)`)
)

// ParseCitation heuristically segments a citation string such as
//
//	"R. Agrawal and R. Srikant. Fast algorithms for mining association
//	 rules. In Proc. VLDB, Santiago, 1994, pp. 487-499."
//
// into authors, title, venue, year, and pages. The segmentation follows
// the dominant period-separated layout: an author list (detected by
// initialed-name shape), then the title, then everything else as venue,
// with year and pages lifted by pattern. Returns false when the string is
// too unstructured to segment (fewer than two segments).
func ParseCitation(s string) (Citation, bool) {
	var c Citation
	s = strings.TrimSpace(s)
	if s == "" {
		return c, false
	}
	if m := yearRe.FindString(s); m != "" {
		c.Year = m
	}
	if m := pagesRe.FindStringSubmatch(s); m != nil {
		c.Pages = m[1] + "-" + m[2]
	}

	segs := splitCitation(s)
	if len(segs) < 2 {
		return c, false
	}
	idx := 0
	if looksLikeAuthors(segs[0]) {
		c.Authors = splitAuthors(segs[0])
		idx = 1
	} else if authors, title, ok := splitAuthorsTitle(segs[0]); ok {
		// "Madhavan, J. Reference reconciliation ..." — the period after
		// the final initial both ends an initial and ends the author
		// list; re-split at the longest author-shaped prefix.
		c.Authors = authors
		segs[0] = title
	}
	if idx < len(segs) {
		c.Title = segs[idx]
		idx++
	}
	if idx < len(segs) {
		rest := strings.Join(segs[idx:], ", ")
		c.Venue = cleanVenue(rest)
	}
	// A title that itself looks like a venue means the author heuristic
	// consumed the title; treat the parse as unreliable.
	if c.Title == "" {
		return c, false
	}
	return c, true
}

// splitCitation splits on segment-ending periods while protecting the
// periods of initials and common abbreviations.
func splitCitation(s string) []string {
	var segs []string
	var cur strings.Builder
	runes := []rune(s)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r != '.' {
			cur.WriteRune(r)
			continue
		}
		// A period ends a segment unless it follows a single capital
		// (an initial: "R.") or a known abbreviation.
		text := cur.String()
		if isInitialDot(text) || hasAbbrevTail(text) {
			cur.WriteRune(r)
			continue
		}
		seg := strings.TrimSpace(strings.Trim(cur.String(), ","))
		if seg != "" {
			segs = append(segs, seg)
		}
		cur.Reset()
	}
	if seg := strings.TrimSpace(strings.Trim(cur.String(), ",. ")); seg != "" {
		segs = append(segs, seg)
	}
	return segs
}

func isInitialDot(text string) bool {
	n := len(text)
	if n == 0 {
		return false
	}
	last := text[n-1]
	if last < 'A' || last > 'Z' {
		return false
	}
	return n == 1 || text[n-2] == ' ' || text[n-2] == '.' || text[n-2] == '-'
}

var citationAbbrevs = []string{
	"proc", "conf", "trans", "vol", "no", "pp", "p", "eds", "ed",
	"univ", "dept", "inc", "jr", "st", "intl", "int", "symp", "j",
	"comput", "mach", "learn", "artif", "intell", "res", "statist",
	"netw", "knowl", "eng", "syst",
}

func hasAbbrevTail(text string) bool {
	lower := strings.ToLower(text)
	for _, a := range citationAbbrevs {
		if strings.HasSuffix(lower, " "+a) || lower == a || strings.HasSuffix(lower, "."+a) {
			return true
		}
	}
	return false
}

// splitAuthorsTitle finds the longest prefix of seg that ends at an
// initial's period and is shaped like an author list; the remainder
// (which must have at least two words) becomes the title.
func splitAuthorsTitle(seg string) (authors []string, title string, ok bool) {
	for i := len(seg) - 2; i > 0; i-- {
		if seg[i] != '.' || !isInitialDot(seg[:i]) {
			continue
		}
		if i+2 >= len(seg) || seg[i+1] != ' ' {
			continue
		}
		rest := strings.TrimSpace(seg[i+2:])
		if len(strings.Fields(rest)) < 2 || rest[0] < 'A' || rest[0] > 'Z' {
			continue
		}
		prefix := strings.TrimSpace(seg[:i+1])
		if looksLikeAuthors(prefix) {
			return splitAuthors(prefix), rest, true
		}
	}
	return nil, "", false
}

// looksLikeAuthors reports whether a segment is shaped like an author
// list: short comma/and-separated chunks each of 1-4 words, at least one
// containing an initial or two capitalized words.
func looksLikeAuthors(seg string) bool {
	if venueCueRe.MatchString(seg) {
		return false
	}
	parts := splitAuthors(seg)
	if len(parts) == 0 {
		return false
	}
	nameish := 0
	for _, p := range parts {
		words := strings.Fields(p)
		if len(words) == 0 || len(words) > 4 {
			return false
		}
		caps := 0
		for _, w := range words {
			if w[0] >= 'A' && w[0] <= 'Z' {
				caps++
			}
		}
		if caps == len(words) {
			nameish++
		}
	}
	return nameish == len(parts)
}

// splitAuthors splits an author list on "and" and commas, keeping
// "Last, F." pairs together.
func splitAuthors(seg string) []string {
	seg = strings.ReplaceAll(seg, " and ", "\x00")
	seg = strings.ReplaceAll(seg, ", ", ",")
	var out []string
	var cur strings.Builder
	commit := func() {
		s := strings.TrimSpace(strings.Trim(cur.String(), ","))
		cur.Reset()
		if s != "" {
			out = append(out, s)
		}
	}
	parts := strings.Split(seg, "\x00")
	for _, part := range parts {
		fields := strings.Split(part, ",")
		for i := 0; i < len(fields); i++ {
			f := strings.TrimSpace(fields[i])
			if f == "" {
				continue
			}
			// "Last, F." keeps its comma: a following field that is just
			// initials belongs to the previous surname.
			if i+1 < len(fields) && isInitialsOnly(strings.TrimSpace(fields[i+1])) {
				cur.WriteString(f + ", " + strings.TrimSpace(fields[i+1]))
				i++
				commit()
				continue
			}
			cur.WriteString(f)
			commit()
		}
	}
	return out
}

func isInitialsOnly(s string) bool {
	if s == "" {
		return false
	}
	for _, w := range strings.Fields(s) {
		w = strings.TrimSuffix(w, ".")
		for _, part := range strings.Split(w, ".") {
			if len(part) != 1 || part[0] < 'A' || part[0] > 'Z' {
				return false
			}
		}
	}
	return true
}

func cleanVenue(rest string) string {
	rest = yearRe.ReplaceAllString(rest, "")
	rest = pagesRe.ReplaceAllString(rest, "")
	rest = strings.TrimPrefix(strings.TrimSpace(rest), "In ")
	rest = strings.TrimPrefix(rest, "in ")
	rest = strings.Trim(rest, " ,.-–")
	// Collapse doubled separators left by the removals.
	for strings.Contains(rest, ", ,") {
		rest = strings.ReplaceAll(rest, ", ,", ",")
	}
	for strings.Contains(rest, ",,") {
		rest = strings.ReplaceAll(rest, ",,", ",")
	}
	return strings.TrimSpace(strings.Trim(rest, " ,"))
}
