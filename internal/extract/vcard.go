package extract

import (
	"fmt"
	"strings"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// VCard is one parsed address-book card (the "contacts" source the paper
// lists among its desktop inputs). Only the identity fields matter for
// reconciliation.
type VCard struct {
	FormattedName string   // FN
	Name          string   // N, reassembled "First Last" when present
	Emails        []string // EMAIL entries, in order
}

// DisplayName prefers FN over the reassembled N.
func (v VCard) DisplayName() string {
	if v.FormattedName != "" {
		return v.FormattedName
	}
	return v.Name
}

// ParseVCards parses a vCard 3.0-style stream: one or more BEGIN:VCARD /
// END:VCARD blocks with property lines (parameters after ';' on the
// property name are ignored; long lines folded with leading whitespace are
// unfolded). Unknown properties are skipped. Structural errors (END
// without BEGIN, unterminated card) are reported with line numbers.
func ParseVCards(src string) ([]VCard, error) {
	// Unfold continuation lines.
	lines := strings.Split(strings.ReplaceAll(src, "\r\n", "\n"), "\n")
	var unfolded []string
	lineNo := make([]int, 0, len(lines))
	for i, line := range lines {
		if (strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t")) && len(unfolded) > 0 {
			unfolded[len(unfolded)-1] += strings.TrimLeft(line, " \t")
			continue
		}
		unfolded = append(unfolded, line)
		lineNo = append(lineNo, i+1)
	}

	var cards []VCard
	var cur *VCard
	for i, line := range unfolded {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		prop := strings.ToUpper(name)
		if j := strings.IndexByte(prop, ';'); j >= 0 {
			prop = prop[:j]
		}
		switch prop {
		case "BEGIN":
			if !strings.EqualFold(value, "VCARD") {
				continue
			}
			if cur != nil {
				return nil, fmt.Errorf("vcard: line %d: BEGIN inside a card", lineNo[i])
			}
			cur = &VCard{}
		case "END":
			if !strings.EqualFold(value, "VCARD") {
				continue
			}
			if cur == nil {
				return nil, fmt.Errorf("vcard: line %d: END without BEGIN", lineNo[i])
			}
			cards = append(cards, *cur)
			cur = nil
		case "FN":
			if cur != nil {
				cur.FormattedName = strings.TrimSpace(value)
			}
		case "N":
			if cur != nil {
				// N is Last;First;Middle;Prefix;Suffix.
				parts := strings.Split(value, ";")
				var fields []string
				if len(parts) > 1 && strings.TrimSpace(parts[1]) != "" {
					fields = append(fields, strings.TrimSpace(parts[1]))
				}
				if len(parts) > 2 && strings.TrimSpace(parts[2]) != "" {
					fields = append(fields, strings.TrimSpace(parts[2]))
				}
				if strings.TrimSpace(parts[0]) != "" {
					fields = append(fields, strings.TrimSpace(parts[0]))
				}
				cur.Name = strings.Join(fields, " ")
			}
		case "EMAIL":
			if cur != nil && strings.TrimSpace(value) != "" {
				cur.Emails = append(cur.Emails, strings.TrimSpace(strings.ToLower(value)))
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("vcard: unterminated card at end of input")
	}
	return cards, nil
}

// AddVCard extracts one person reference from a card: display name plus
// every email address (a multi-valued attribute — precisely the situation
// the paper's §2.2 highlights). Cards with no identity yield -1.
func (a *Accumulator) AddVCard(v VCard) reference.ID {
	name := strings.TrimSpace(v.DisplayName())
	if name == "" && len(v.Emails) == 0 {
		return -1
	}
	r := reference.New(schema.ClassPerson)
	r.Source = SourceContacts
	r.AddAtomic(schema.AttrName, name)
	for _, e := range v.Emails {
		r.AddAtomic(schema.AttrEmail, e)
	}
	return a.store.Add(r)
}
