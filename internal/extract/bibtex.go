// Package extract turns raw personal-information sources — BibTeX
// bibliographies and email messages — into references conforming to the
// PIM schema, playing the role of the paper's "extractor program" (§2.1).
//
// Extraction deliberately produces *sparse* references: a person mentioned
// in a BibTeX author list yields a reference with only a name; a person in
// an email header yields only a display name and an address. Reconciling
// those sparse references is exactly the problem the paper studies.
package extract

import (
	"fmt"
	"strings"
	"unicode"
)

// BibEntry is one parsed BibTeX entry.
type BibEntry struct {
	Type   string // "inproceedings", "article", ...
	Key    string // citation key
	Fields map[string]string
	Line   int // 1-based line of the '@' in the source
}

// Field returns the named field (lowercase), or "".
func (e BibEntry) Field(name string) string { return e.Fields[name] }

// Authors splits the author field on the BibTeX "and" separator.
func (e BibEntry) Authors() []string {
	raw := e.Field("author")
	if raw == "" {
		return nil
	}
	parts := strings.Split(raw, " and ")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// VenueName returns the venue string: booktitle for proceedings entries,
// journal otherwise.
func (e BibEntry) VenueName() string {
	if v := e.Field("booktitle"); v != "" {
		return v
	}
	return e.Field("journal")
}

// ParseBibTeX parses a BibTeX document. It supports @type{key, k = {v},
// k = "v", k = 123} entries with arbitrarily nested braces, ignores
// @comment and @preamble blocks and free text between entries, and
// collapses internal whitespace in values. A syntax error aborts parsing
// with a line-numbered error.
func ParseBibTeX(src string) ([]BibEntry, error) {
	p := &bibParser{src: src, line: 1}
	var out []BibEntry
	for {
		if !p.seekTo('@') {
			return out, nil
		}
		e, err := p.entry()
		if err != nil {
			return out, err
		}
		if e != nil {
			out = append(out, *e)
		}
	}
}

type bibParser struct {
	src  string
	pos  int
	line int
}

func (p *bibParser) errf(format string, args ...any) error {
	return fmt.Errorf("bibtex: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *bibParser) next() (byte, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
	}
	return c, true
}

func (p *bibParser) peek() (byte, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

// seekTo advances to just past the next occurrence of c, returning false
// at end of input.
func (p *bibParser) seekTo(c byte) bool {
	for {
		ch, ok := p.next()
		if !ok {
			return false
		}
		if ch == c {
			return true
		}
	}
}

func (p *bibParser) skipSpace() {
	for {
		c, ok := p.peek()
		if !ok || !unicode.IsSpace(rune(c)) {
			return
		}
		p.next()
	}
}

func (p *bibParser) ident() string {
	start := p.pos
	for {
		c, ok := p.peek()
		if !ok {
			break
		}
		if !isBibIdent(c) {
			break
		}
		p.next()
	}
	return strings.ToLower(p.src[start:p.pos])
}

func isBibIdent(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_', c == '-', c == ':', c == '.', c == '+', c == '/':
		return true
	}
	return false
}

// entry parses one @type{...} block; the '@' has been consumed.
func (p *bibParser) entry() (*BibEntry, error) {
	startLine := p.line
	typ := p.ident()
	if typ == "" {
		return nil, p.errf("missing entry type after @")
	}
	if typ == "comment" || typ == "preamble" || typ == "string" {
		// Skip the balanced block.
		p.skipSpace()
		if c, ok := p.peek(); ok && (c == '{' || c == '(') {
			if _, err := p.balanced(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	p.skipSpace()
	open, ok := p.next()
	if !ok || (open != '{' && open != '(') {
		return nil, p.errf("expected '{' after @%s", typ)
	}
	closeCh := byte('}')
	if open == '(' {
		closeCh = ')'
	}
	p.skipSpace()
	key := p.ident()
	e := &BibEntry{Type: typ, Key: key, Fields: make(map[string]string), Line: startLine}
	p.skipSpace()
	if c, ok := p.peek(); ok && c == ',' {
		p.next()
	}
	for {
		p.skipSpace()
		c, ok := p.peek()
		if !ok {
			return nil, p.errf("unterminated entry @%s{%s", typ, key)
		}
		if c == closeCh {
			p.next()
			return e, nil
		}
		name := p.ident()
		if name == "" {
			return nil, p.errf("expected field name in @%s{%s", typ, key)
		}
		p.skipSpace()
		eq, ok := p.next()
		if !ok || eq != '=' {
			return nil, p.errf("expected '=' after field %q", name)
		}
		val, err := p.value(closeCh)
		if err != nil {
			return nil, err
		}
		e.Fields[name] = val
		p.skipSpace()
		if c, ok := p.peek(); ok && c == ',' {
			p.next()
		}
	}
}

// value parses a field value: a braced group, a quoted string, or a bare
// word (number or macro name).
func (p *bibParser) value(closeCh byte) (string, error) {
	p.skipSpace()
	c, ok := p.peek()
	if !ok {
		return "", p.errf("unterminated field value")
	}
	switch c {
	case '{':
		return p.balanced()
	case '"':
		p.next()
		var b strings.Builder
		depth := 0
		for {
			ch, ok := p.next()
			if !ok {
				return "", p.errf("unterminated quoted value")
			}
			switch ch {
			case '{':
				depth++
			case '}':
				depth--
			case '"':
				if depth == 0 {
					return clean(b.String()), nil
				}
			}
			if ch != '{' && ch != '}' {
				b.WriteByte(ch)
			}
		}
	default:
		var b strings.Builder
		for {
			ch, ok := p.peek()
			if !ok || ch == ',' || ch == closeCh || unicode.IsSpace(rune(ch)) {
				return clean(b.String()), nil
			}
			p.next()
			b.WriteByte(ch)
		}
	}
}

// balanced consumes a { ... } group with nesting and returns the interior
// with braces stripped.
func (p *bibParser) balanced() (string, error) {
	open, _ := p.next() // '{' or '('
	closeCh := byte('}')
	if open == '(' {
		closeCh = ')'
	}
	var b strings.Builder
	depth := 1
	for {
		ch, ok := p.next()
		if !ok {
			return "", p.errf("unbalanced braces")
		}
		switch {
		case ch == open && open == '{':
			depth++
			continue
		case ch == closeCh:
			depth--
			if depth == 0 {
				return clean(b.String()), nil
			}
			continue
		}
		b.WriteByte(ch)
	}
}

// clean collapses whitespace runs (BibTeX values often wrap lines).
func clean(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
