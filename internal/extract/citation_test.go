package extract

import (
	"reflect"
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func TestParseCitationClassic(t *testing.T) {
	c, ok := ParseCitation("R. Agrawal and R. Srikant. Fast algorithms for mining association rules. In Proc. VLDB, Santiago, 1994, pp. 487-499.")
	if !ok {
		t.Fatal("parse failed")
	}
	if !reflect.DeepEqual(c.Authors, []string{"R. Agrawal", "R. Srikant"}) {
		t.Errorf("authors = %v", c.Authors)
	}
	if c.Title != "Fast algorithms for mining association rules" {
		t.Errorf("title = %q", c.Title)
	}
	if c.Year != "1994" {
		t.Errorf("year = %q", c.Year)
	}
	if c.Pages != "487-499" {
		t.Errorf("pages = %q", c.Pages)
	}
	if c.Venue == "" || c.Venue[:4] != "Proc" {
		t.Errorf("venue = %q", c.Venue)
	}
}

func TestParseCitationCommaAuthors(t *testing.T) {
	c, ok := ParseCitation("Dong, X., Halevy, A. and Madhavan, J. Reference reconciliation in complex information spaces. In Proceedings of SIGMOD, 2005.")
	if !ok {
		t.Fatal("parse failed")
	}
	want := []string{"Dong, X.", "Halevy, A.", "Madhavan, J."}
	if !reflect.DeepEqual(c.Authors, want) {
		t.Errorf("authors = %v, want %v", c.Authors, want)
	}
	if c.Title != "Reference reconciliation in complex information spaces" {
		t.Errorf("title = %q", c.Title)
	}
	if c.Year != "2005" {
		t.Errorf("year = %q", c.Year)
	}
}

func TestParseCitationNoAuthors(t *testing.T) {
	// A title-first string (no author-shaped lead segment).
	c, ok := ParseCitation("The art of computer programming. Addison-Wesley, 1968.")
	if !ok {
		t.Fatal("parse failed")
	}
	if len(c.Authors) != 0 {
		t.Errorf("authors = %v, want none", c.Authors)
	}
	if c.Title != "The art of computer programming" {
		t.Errorf("title = %q", c.Title)
	}
}

func TestParseCitationRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "   ", "single segment without periods"} {
		if _, ok := ParseCitation(s); ok {
			t.Errorf("ParseCitation(%q) should fail", s)
		}
	}
}

func TestAddCitation(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	c, ok := ParseCitation("Y. Freund and R. E. Schapire. Experiments with a new boosting algorithm. In Proc. ICML, 1996, pp. 148-156.")
	if !ok {
		t.Fatal("parse failed")
	}
	refs, added := acc.AddCitation(c)
	if !added {
		t.Fatal("AddCitation rejected a titled citation")
	}
	if len(refs.Authors) != 2 || refs.Venue < 0 {
		t.Fatalf("refs = %+v", refs)
	}
	art := store.Get(refs.Article)
	if art.Source != SourceCitation || art.FirstAtomic(schema.AttrPages) != "148-156" {
		t.Errorf("article = %v src=%s", art, art.Source)
	}
	if got := store.Get(refs.Authors[0]).Assoc(schema.AttrCoAuthor); len(got) != 1 {
		t.Errorf("coauthors = %v", got)
	}
	if err := store.Validate(schema.PIM()); err != nil {
		t.Errorf("store invalid: %v", err)
	}

	if _, added := acc.AddCitation(Citation{}); added {
		t.Error("titleless citation should be rejected")
	}
}

// TestCitationRoundTripReconciles parses two citation variants of one
// paper and checks the full pipeline reconciles them.
func TestCitationRoundTripReconciles(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	c1, ok1 := ParseCitation("Y. Freund and R. E. Schapire. Experiments with a new boosting algorithm. In Proc. ICML, 1996, pp. 148-156.")
	c2, ok2 := ParseCitation("Freund, Y. and Schapire, R. Experiments with a new boosting algorithm. Machine Learning Conference, 1996.")
	if !ok1 || !ok2 {
		t.Fatal("parse failed")
	}
	r1, _ := acc.AddCitation(c1)
	r2, _ := acc.AddCitation(c2)
	if r1.Article == r2.Article {
		t.Fatal("distinct mentions must be distinct references")
	}
	// Same title and year: the articles should reconcile downstream; here
	// we only validate the extraction structure feeds the reconciler.
	if err := store.Validate(schema.PIM()); err != nil {
		t.Fatal(err)
	}
}
