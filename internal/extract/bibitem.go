package extract

import (
	"regexp"
	"strings"
)

var bibitemRe = regexp.MustCompile(`\\bibitem(?:\[[^\]]*\])?\{[^}]*\}`)

// ParseBibItems extracts the citation strings from a LaTeX
// thebibliography environment (or any text containing \bibitem entries —
// the "Latex files" among the paper's desktop sources). Each entry's text
// runs from its \bibitem marker to the next marker or to
// \end{thebibliography}; LaTeX line wrapping, comments, and common inline
// markup ({\em ...}, \newblock) are cleaned. The returned strings are
// ready for ParseCitation.
func ParseBibItems(src string) []string {
	// Cut to the bibliography environment when present.
	if i := strings.Index(src, `\begin{thebibliography}`); i >= 0 {
		src = src[i:]
		if j := strings.Index(src, "}"); j >= 0 {
			src = src[j+1:]
		}
	}
	if i := strings.Index(src, `\end{thebibliography}`); i >= 0 {
		src = src[:i]
	}
	marks := bibitemRe.FindAllStringIndex(src, -1)
	if len(marks) == 0 {
		return nil
	}
	var out []string
	for i, m := range marks {
		end := len(src)
		if i+1 < len(marks) {
			end = marks[i+1][0]
		}
		text := cleanLaTeX(src[m[1]:end])
		if text != "" {
			out = append(out, text)
		}
	}
	return out
}

// cleanLaTeX strips comments, collapses wrapped lines, and removes the
// markup commands common in bibliography entries.
func cleanLaTeX(s string) string {
	var lines []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.IndexByte(line, '%'); i >= 0 && (i == 0 || line[i-1] != '\\') {
			line = line[:i]
		}
		lines = append(lines, strings.TrimSpace(line))
	}
	s = strings.Join(lines, " ")
	for _, cmd := range []string{`\newblock`, `\em`, `\it`, `\bf`, `\sl`, `\textit`, `\textbf`, `\emph`} {
		s = strings.ReplaceAll(s, cmd+" ", " ")
		s = strings.ReplaceAll(s, cmd+"{", "{")
		s = strings.ReplaceAll(s, cmd, " ")
	}
	s = strings.NewReplacer("{", "", "}", "", "~", " ", `\&`, "&", "--", "-").Replace(s)
	return strings.Join(strings.Fields(s), " ")
}

// AddBibItems extracts and adds every parseable citation from a LaTeX
// bibliography, returning the references of the citations that could be
// segmented (unparseable strings are skipped, matching real extraction
// pipelines).
func (a *Accumulator) AddBibItems(src string) []BibRefs {
	var out []BibRefs
	for _, text := range ParseBibItems(src) {
		c, ok := ParseCitation(text)
		if !ok {
			continue
		}
		if refs, added := a.AddCitation(c); added {
			out = append(out, refs)
		}
	}
	return out
}
