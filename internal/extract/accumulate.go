package extract

import (
	"strings"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/tokenizer"
)

// Source labels recorded on extracted references, used by the evaluation
// to form the PEmail/PArticle subsets of §5.3.
const (
	SourceEmail    = "email"
	SourceBibTeX   = "bibtex"
	SourceCitation = "citation"
	SourceContacts = "contacts"
)

// Accumulator turns parsed messages and BibTeX entries into references in
// a Store.
//
// Person references from email are deduplicated on the exact
// (display name, address) presentation: the same header across a thousand
// messages contributes one reference whose contact list keeps growing.
// Person references from BibTeX author lists are per-mention — "Wong, E."
// in two different entries may be two different people, so each mention
// must stay a separate reference.
type Accumulator struct {
	store *reference.Store
	// emailPersons dedupes email-extracted persons by presentation.
	emailPersons map[string]reference.ID
}

// NewAccumulator returns an accumulator writing into store.
func NewAccumulator(store *reference.Store) *Accumulator {
	return &Accumulator{store: store, emailPersons: make(map[string]reference.ID)}
}

// Store returns the underlying store.
func (a *Accumulator) Store() *reference.Store { return a.store }

// AddMessage extracts person references from a message's headers: one per
// mailbox (deduplicated by presentation), with emailContact links between
// the sender and every recipient in both directions. It returns the person
// reference ids in header order: From first, then To, then Cc — so a
// caller that knows the true identities (the data generator) can label
// them.
func (a *Accumulator) AddMessage(m Message) []reference.ID {
	boxes := make([]Mailbox, 0, 1+len(m.To)+len(m.Cc))
	boxes = append(boxes, m.From)
	boxes = append(boxes, m.To...)
	boxes = append(boxes, m.Cc...)
	ids := make([]reference.ID, len(boxes))
	for i, mb := range boxes {
		ids[i] = a.emailPerson(mb)
	}
	from := ids[0]
	for _, rcpt := range ids[1:] {
		if rcpt == from || rcpt < 0 || from < 0 {
			continue
		}
		a.store.Get(from).AddAssoc(schema.AttrEmailContact, rcpt)
		a.store.Get(rcpt).AddAssoc(schema.AttrEmailContact, from)
	}
	return ids
}

// emailPerson returns the reference for a mailbox presentation, creating
// it on first sight. A mailbox with neither name nor address yields -1.
func (a *Accumulator) emailPerson(mb Mailbox) reference.ID {
	name := strings.TrimSpace(mb.Name)
	email := strings.TrimSpace(mb.Email)
	if name == "" && email == "" {
		return -1
	}
	key := tokenizer.Normalize(name) + "\x00" + tokenizer.Normalize(email)
	if id, ok := a.emailPersons[key]; ok {
		return id
	}
	r := reference.New(schema.ClassPerson)
	r.Source = SourceEmail
	r.AddAtomic(schema.AttrName, name)
	r.AddAtomic(schema.AttrEmail, email)
	id := a.store.Add(r)
	a.emailPersons[key] = id
	return id
}

// BibRefs identifies the references extracted from one BibTeX entry.
type BibRefs struct {
	Article reference.ID
	Authors []reference.ID
	Venue   reference.ID // -1 when the entry has no venue field
}

// AddBibEntry extracts an article, its authors (with pairwise coAuthor
// links), and its venue from one entry.
func (a *Accumulator) AddBibEntry(e BibEntry) BibRefs {
	art := reference.New(schema.ClassArticle)
	art.Source = SourceBibTeX
	art.AddAtomic(schema.AttrTitle, e.Field("title"))
	art.AddAtomic(schema.AttrYear, e.Field("year"))
	art.AddAtomic(schema.AttrPages, e.Field("pages"))
	artID := a.store.Add(art)

	out := BibRefs{Article: artID, Venue: -1}
	for _, author := range e.Authors() {
		p := reference.New(schema.ClassPerson)
		p.Source = SourceBibTeX
		p.AddAtomic(schema.AttrName, author)
		out.Authors = append(out.Authors, a.store.Add(p))
	}
	for i, pi := range out.Authors {
		art.AddAssoc(schema.AttrAuthoredBy, pi)
		for j, pj := range out.Authors {
			if i != j {
				a.store.Get(pi).AddAssoc(schema.AttrCoAuthor, pj)
			}
		}
	}
	if vn := e.VenueName(); vn != "" {
		v := reference.New(schema.ClassVenue)
		v.Source = SourceBibTeX
		v.AddAtomic(schema.AttrName, vn)
		v.AddAtomic(schema.AttrYear, e.Field("year"))
		v.AddAtomic(schema.AttrLocation, e.Field("address"))
		out.Venue = a.store.Add(v)
		art.AddAssoc(schema.AttrPublishedIn, out.Venue)
	}
	return out
}

// AddBibTeX parses a whole BibTeX document and adds every entry.
func (a *Accumulator) AddBibTeX(src string) ([]BibRefs, error) {
	entries, err := ParseBibTeX(src)
	if err != nil {
		return nil, err
	}
	out := make([]BibRefs, 0, len(entries))
	for _, e := range entries {
		out = append(out, a.AddBibEntry(e))
	}
	return out, nil
}

// AddMailbox exposes single-mailbox extraction (e.g. for address books).
func (a *Accumulator) AddMailbox(mb Mailbox) reference.ID { return a.emailPerson(mb) }

// AddCitation extracts an article, its authors, and its venue from a
// segmented free-text citation (see ParseCitation). The second return
// value is false when the citation is missing a title and nothing was
// added.
func (a *Accumulator) AddCitation(c Citation) (BibRefs, bool) {
	if strings.TrimSpace(c.Title) == "" {
		return BibRefs{Article: -1, Venue: -1}, false
	}
	art := reference.New(schema.ClassArticle)
	art.Source = SourceCitation
	art.AddAtomic(schema.AttrTitle, c.Title)
	art.AddAtomic(schema.AttrYear, c.Year)
	art.AddAtomic(schema.AttrPages, c.Pages)
	out := BibRefs{Article: a.store.Add(art), Venue: -1}
	for _, author := range c.Authors {
		p := reference.New(schema.ClassPerson)
		p.Source = SourceCitation
		p.AddAtomic(schema.AttrName, author)
		out.Authors = append(out.Authors, a.store.Add(p))
	}
	for i, pi := range out.Authors {
		art.AddAssoc(schema.AttrAuthoredBy, pi)
		for j, pj := range out.Authors {
			if i != j {
				a.store.Get(pi).AddAssoc(schema.AttrCoAuthor, pj)
			}
		}
	}
	if strings.TrimSpace(c.Venue) != "" {
		v := reference.New(schema.ClassVenue)
		v.Source = SourceCitation
		v.AddAtomic(schema.AttrName, c.Venue)
		v.AddAtomic(schema.AttrYear, c.Year)
		out.Venue = a.store.Add(v)
		art.AddAssoc(schema.AttrPublishedIn, out.Venue)
	}
	return out, true
}
