package extract

import (
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func TestAddMessageDedupAndContacts(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	m, err := ParseMessage(sampleMsg)
	if err != nil {
		t.Fatal(err)
	}
	ids := acc.AddMessage(m)
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	from := store.Get(ids[0])
	if from.FirstAtomic(schema.AttrName) != "Michael Stonebraker" {
		t.Errorf("from name = %q", from.FirstAtomic(schema.AttrName))
	}
	if got := from.Assoc(schema.AttrEmailContact); len(got) != 3 {
		t.Errorf("from contacts = %v", got)
	}
	// Recipients point back at the sender.
	if got := store.Get(ids[1]).Assoc(schema.AttrEmailContact); len(got) != 1 || got[0] != ids[0] {
		t.Errorf("recipient contacts = %v", got)
	}

	// Adding the same message again must not create new references.
	before := store.Len()
	again := acc.AddMessage(m)
	if store.Len() != before {
		t.Errorf("re-adding grew the store: %d -> %d", before, store.Len())
	}
	for i := range ids {
		if again[i] != ids[i] {
			t.Errorf("presentation dedup broken at %d: %v vs %v", i, again, ids)
		}
	}

	// A different presentation of the same address is a new reference.
	m2 := Message{From: Mailbox{Name: "M. Stonebraker", Email: "stonebraker@csail.mit.edu"}}
	ids2 := acc.AddMessage(m2)
	if ids2[0] == ids[0] {
		t.Error("different display name should be a distinct reference")
	}
}

func TestAddMessageEmptyMailbox(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	ids := acc.AddMessage(Message{From: Mailbox{}, To: []Mailbox{{Email: "a@b.c"}}})
	if ids[0] != -1 {
		t.Errorf("empty from should be -1, got %d", ids[0])
	}
	if store.Len() != 1 {
		t.Errorf("store len = %d", store.Len())
	}
}

func TestAddBibEntry(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	entries, err := ParseBibTeX(sampleBib)
	if err != nil {
		t.Fatal(err)
	}
	refs := acc.AddBibEntry(entries[0])
	if len(refs.Authors) != 3 {
		t.Fatalf("authors = %v", refs.Authors)
	}
	art := store.Get(refs.Article)
	if art.FirstAtomic(schema.AttrTitle) == "" || len(art.Assoc(schema.AttrAuthoredBy)) != 3 {
		t.Errorf("article = %v", art)
	}
	if refs.Venue < 0 {
		t.Fatal("venue missing")
	}
	venue := store.Get(refs.Venue)
	if venue.FirstAtomic(schema.AttrName) != "ACM Conference on Management of Data" {
		t.Errorf("venue name = %q", venue.FirstAtomic(schema.AttrName))
	}
	if venue.FirstAtomic(schema.AttrLocation) != "Austin, Texas" {
		t.Errorf("venue location = %q", venue.FirstAtomic(schema.AttrLocation))
	}
	// Co-author links are pairwise and exclude self.
	p := store.Get(refs.Authors[0])
	if got := p.Assoc(schema.AttrCoAuthor); len(got) != 2 {
		t.Errorf("coauthors = %v", got)
	}
	// BibTeX persons are NOT deduplicated across entries.
	refs2 := acc.AddBibEntry(entries[0])
	if refs2.Authors[0] == refs.Authors[0] {
		t.Error("bibtex authors must be per-mention references")
	}
	// The whole store must validate against the PIM schema.
	if err := store.Validate(schema.PIM()); err != nil {
		t.Errorf("extracted store invalid: %v", err)
	}
}

func TestAddBibTeXDocument(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	refs, err := acc.AddBibTeX(sampleBib)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 {
		t.Fatalf("refs = %d", len(refs))
	}
	// Entry 3 has no venue.
	if refs[2].Venue != -1 {
		t.Errorf("bookless venue = %d", refs[2].Venue)
	}
	if _, err := acc.AddBibTeX("@bad{"); err == nil {
		t.Error("syntax error should propagate")
	}
}

func TestSourcesLabeled(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	id := acc.AddMailbox(Mailbox{Name: "A", Email: "a@b.c"})
	if store.Get(id).Source != SourceEmail {
		t.Error("email source label missing")
	}
	refs, _ := acc.AddBibTeX(`@article{k, author = {A B}, title = {T}}`)
	if store.Get(refs[0].Article).Source != SourceBibTeX {
		t.Error("bibtex source label missing")
	}
}
