package extract

import (
	"strings"
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

const sampleVCards = `BEGIN:VCARD
VERSION:3.0
N:Stonebraker;Michael;;;
FN:Michael Stonebraker
EMAIL;TYPE=work:stonebraker@csail.mit.edu
EMAIL;TYPE=home:mike@postgres.org
END:VCARD
BEGIN:VCARD
VERSION:3.0
FN:Eugene
 Wong
EMAIL:eugene@berkeley.edu
END:VCARD
BEGIN:VCARD
VERSION:3.0
N:Widom;Jennifer;;;
END:VCARD
`

func TestParseVCards(t *testing.T) {
	cards, err := ParseVCards(sampleVCards)
	if err != nil {
		t.Fatal(err)
	}
	if len(cards) != 3 {
		t.Fatalf("cards = %d", len(cards))
	}
	c0 := cards[0]
	if c0.FormattedName != "Michael Stonebraker" || c0.Name != "Michael Stonebraker" {
		t.Errorf("card 0 names: %+v", c0)
	}
	if len(c0.Emails) != 2 || c0.Emails[0] != "stonebraker@csail.mit.edu" {
		t.Errorf("card 0 emails: %v", c0.Emails)
	}
	// Folded FN line unfolds.
	if cards[1].DisplayName() != "EugeneWong" && cards[1].DisplayName() != "Eugene Wong" {
		t.Errorf("folded FN = %q", cards[1].DisplayName())
	}
	// N-only card reassembles "First Last".
	if cards[2].DisplayName() != "Jennifer Widom" {
		t.Errorf("card 2 name = %q", cards[2].DisplayName())
	}
}

func TestParseVCardsErrors(t *testing.T) {
	if _, err := ParseVCards("END:VCARD\n"); err == nil {
		t.Error("END without BEGIN should fail")
	}
	if _, err := ParseVCards("BEGIN:VCARD\nFN:X\n"); err == nil {
		t.Error("unterminated card should fail")
	}
	if _, err := ParseVCards("BEGIN:VCARD\nBEGIN:VCARD\n"); err == nil {
		t.Error("nested BEGIN should fail")
	}
	// Empty and junk input parse to zero cards.
	if cards, err := ParseVCards("random text\nwithout colons\n"); err != nil || len(cards) != 0 {
		t.Errorf("junk = %v, %v", cards, err)
	}
}

func TestAddVCard(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	cards, err := ParseVCards(sampleVCards)
	if err != nil {
		t.Fatal(err)
	}
	id := acc.AddVCard(cards[0])
	r := store.Get(id)
	if r.Source != SourceContacts {
		t.Errorf("source = %q", r.Source)
	}
	if got := r.Atomic(schema.AttrEmail); len(got) != 2 {
		t.Errorf("emails = %v (multi-valued attribute expected)", got)
	}
	if acc.AddVCard(VCard{}) != -1 {
		t.Error("empty card should yield -1")
	}
	if err := store.Validate(schema.PIM()); err != nil {
		t.Error(err)
	}
}

// TestVCardBridgesAccounts shows the reconciliation value of contacts: a
// card carrying both of a person's addresses joins their otherwise
// unlinkable email references.
func TestVCardBridgesAccounts(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	a := acc.AddMailbox(Mailbox{Name: "M. Stonebraker", Email: "stonebraker@csail.mit.edu"})
	b := acc.AddMailbox(Mailbox{Name: "", Email: "mike@postgres.org"})
	cards, _ := ParseVCards(sampleVCards)
	c := acc.AddVCard(cards[0])
	if a == b || b == c || a == c {
		t.Fatal("three distinct references expected")
	}
	if !strings.Contains(store.Get(c).String(), "postgres.org") {
		t.Fatal("card should carry the second address")
	}
}
