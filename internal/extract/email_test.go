package extract

import (
	"testing"
)

const sampleMsg = `From: Michael Stonebraker <stonebraker@csail.mit.edu>
To: Eugene Wong <eugene@berkeley.edu>,
 "Epstein, Robert" <epstein@berkeley.edu>
Cc: mike@postgres.org
Subject: Re: query processing draft
Date: Mon, 13 Mar 1978 10:01:02 -0800
Message-ID: <abc123@csail.mit.edu>

Body text that should be ignored.
To: not-a-header@example.com
`

func TestParseMessage(t *testing.T) {
	m, err := ParseMessage(sampleMsg)
	if err != nil {
		t.Fatal(err)
	}
	if m.From.Name != "Michael Stonebraker" || m.From.Email != "stonebraker@csail.mit.edu" {
		t.Errorf("From = %+v", m.From)
	}
	if len(m.To) != 2 {
		t.Fatalf("To = %+v", m.To)
	}
	if m.To[1].Name != "Epstein, Robert" || m.To[1].Email != "epstein@berkeley.edu" {
		t.Errorf("folded+quoted To = %+v", m.To[1])
	}
	if len(m.Cc) != 1 || m.Cc[0].Email != "mike@postgres.org" || m.Cc[0].Name != "" {
		t.Errorf("Cc = %+v", m.Cc)
	}
	if m.Subject != "Re: query processing draft" {
		t.Errorf("Subject = %q", m.Subject)
	}
	if m.ID != "abc123@csail.mit.edu" {
		t.Errorf("ID = %q", m.ID)
	}
}

func TestParseMessageErrors(t *testing.T) {
	if _, err := ParseMessage(" leading continuation\n"); err == nil {
		t.Error("continuation without header should error")
	}
	if _, err := ParseMessage("not a header line\n"); err == nil {
		t.Error("non-header line should error")
	}
}

func TestParseAddressListQuotedComma(t *testing.T) {
	boxes := ParseAddressList(`"Wong, Eugene" <e@b.edu>, plain@x.org`)
	if len(boxes) != 2 {
		t.Fatalf("boxes = %+v", boxes)
	}
	if boxes[0].Name != "Wong, Eugene" {
		t.Errorf("quoted name = %q", boxes[0].Name)
	}
	if boxes[1].Email != "plain@x.org" {
		t.Errorf("second = %+v", boxes[1])
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	m := Message{
		From:    Mailbox{Name: "Stonebraker, Michael", Email: "s@mit.edu"},
		To:      []Mailbox{{Name: "Eugene Wong", Email: "e@b.edu"}, {Email: "x@y.org"}},
		Cc:      []Mailbox{{Name: "Someone Else", Email: "se@z.com"}},
		Subject: "hello",
		Date:    "Tue, 1 Jan 1980 00:00:00 +0000",
		ID:      "id1@mit.edu",
	}
	got, err := ParseMessage(RenderMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != m.From {
		t.Errorf("From = %+v, want %+v", got.From, m.From)
	}
	if len(got.To) != 2 || got.To[0] != m.To[0] || got.To[1] != m.To[1] {
		t.Errorf("To = %+v", got.To)
	}
	if len(got.Cc) != 1 || got.Cc[0] != m.Cc[0] {
		t.Errorf("Cc = %+v", got.Cc)
	}
	if got.Subject != m.Subject || got.Date != m.Date || got.ID != m.ID {
		t.Errorf("scalar headers = %+v", got)
	}
}

// TestRenderMessageHostileNames pins the hardening the FuzzEmail harness
// drove: display names carrying header syntax (quotes, angle brackets,
// commas, control bytes) must render into text that re-parses to the same
// rendering — see testdata/fuzz/FuzzEmail for the original crashers.
func TestRenderMessageHostileNames(t *testing.T) {
	cases := []Message{
		{From: Mailbox{Name: `"Dong, Xin" <trick`, Email: "xin@cs.example.edu"}},
		{From: Mailbox{Name: "name <with@angle>"}},
		{To: []Mailbox{{Name: `"`}, {Name: "ok", Email: "a@b"}}},
		{From: Mailbox{Name: "ctrl\x7fchar' "}},
		{From: Mailbox{Name: "junk@looks.like.address"}},
	}
	for _, m := range cases {
		r1 := RenderMessage(m)
		m2, err := ParseMessage(r1)
		if err != nil {
			t.Errorf("rendered %+v does not re-parse: %v", m, err)
			continue
		}
		if r2 := RenderMessage(m2); r1 != r2 {
			t.Errorf("not a fixed point for %+v:\nfirst  %q\nsecond %q", m, r1, r2)
		}
	}
}
