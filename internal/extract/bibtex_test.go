package extract

import (
	"strings"
	"testing"
)

const sampleBib = `
% A comment line outside entries is ignored.
@inproceedings{epstein78,
  author    = {Robert S. Epstein and Michael Stonebraker and Eugene Wong},
  title     = {Distributed query processing in a relational data base system},
  booktitle = {ACM Conference on Management of Data},
  year      = 1978,
  pages     = {169-180},
  address   = {Austin, Texas}
}

@article{wong76,
  author  = "Eugene Wong and Karel Youssefi",
  title   = "Decomposition --- a strategy for query processing",
  journal = {ACM Transactions on Database Systems},
  year    = {1976},
}

@comment{this should be skipped entirely, even with {nested} braces}

@book{unkeyed,
  title = {A title
           spanning lines}
}
`

func TestParseBibTeX(t *testing.T) {
	entries, err := ParseBibTeX(sampleBib)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	e := entries[0]
	if e.Type != "inproceedings" || e.Key != "epstein78" {
		t.Errorf("entry 0 = %s/%s", e.Type, e.Key)
	}
	authors := e.Authors()
	if len(authors) != 3 || authors[1] != "Michael Stonebraker" {
		t.Errorf("authors = %v", authors)
	}
	if e.Field("pages") != "169-180" || e.Field("year") != "1978" {
		t.Errorf("fields = %v", e.Fields)
	}
	if e.VenueName() != "ACM Conference on Management of Data" {
		t.Errorf("venue = %q", e.VenueName())
	}

	if entries[1].VenueName() != "ACM Transactions on Database Systems" {
		t.Errorf("journal venue = %q", entries[1].VenueName())
	}
	if got := entries[1].Field("title"); !strings.Contains(got, "Decomposition") {
		t.Errorf("quoted title = %q", got)
	}

	if got := entries[2].Field("title"); got != "A title spanning lines" {
		t.Errorf("multiline title = %q", got)
	}
}

func TestParseBibTeXEmptyAndNoEntries(t *testing.T) {
	for _, src := range []string{"", "just some prose", "% only comments"} {
		entries, err := ParseBibTeX(src)
		if err != nil || len(entries) != 0 {
			t.Errorf("ParseBibTeX(%q) = %v, %v", src, entries, err)
		}
	}
}

func TestParseBibTeXErrors(t *testing.T) {
	cases := []string{
		"@inproceedings{key, title = {unterminated",
		"@{nokey, title = {x}}",
		"@article{k, title {missing equals}}",
	}
	for _, src := range cases {
		if _, err := ParseBibTeX(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseBibTeXNestedBraces(t *testing.T) {
	entries, err := ParseBibTeX(`@article{k, title = {The {SQL} standard {with {deep}} nesting}}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := entries[0].Field("title"); got != "The SQL standard with deep nesting" {
		t.Errorf("title = %q", got)
	}
}

func TestParseBibTeXParenDelimiters(t *testing.T) {
	entries, err := ParseBibTeX(`@article(k, year = 1999)`)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Field("year") != "1999" {
		t.Errorf("year = %q", entries[0].Field("year"))
	}
}

func TestEntryLineNumbers(t *testing.T) {
	entries, err := ParseBibTeX("\n\n@article{k, year = 1999}")
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Line != 3 {
		t.Errorf("line = %d, want 3", entries[0].Line)
	}
}
