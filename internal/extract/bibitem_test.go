package extract

import (
	"strings"
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

const sampleLatex = `
\section{Conclusions}
We thank everyone. % including the reviewers

\begin{thebibliography}{10}

\bibitem{agrawal94}
R.~Agrawal and R.~Srikant.
\newblock Fast algorithms for mining association rules.
\newblock In {\em Proc. VLDB}, pages 487--499, 1994.

\bibitem[DHM05]{dong05}
Dong, X., Halevy, A. and Madhavan, J.
\newblock Reference reconciliation in complex information spaces.
\newblock In Proceedings of SIGMOD, 2005. % seminal

\end{thebibliography}
\end{document}
`

func TestParseBibItems(t *testing.T) {
	items := ParseBibItems(sampleLatex)
	if len(items) != 2 {
		t.Fatalf("items = %d: %q", len(items), items)
	}
	if !strings.Contains(items[0], "Fast algorithms for mining association rules") {
		t.Errorf("item 0 = %q", items[0])
	}
	if strings.ContainsAny(items[0], "{}~\\") {
		t.Errorf("markup survived: %q", items[0])
	}
	if strings.Contains(items[1], "seminal") {
		t.Errorf("comment survived: %q", items[1])
	}
	if !strings.Contains(items[0], "487-499") {
		t.Errorf("page dashes not normalized: %q", items[0])
	}
}

func TestParseBibItemsWithoutEnvironment(t *testing.T) {
	items := ParseBibItems(`\bibitem{x} A. Author. Some title. Venue, 1999.`)
	if len(items) != 1 {
		t.Fatalf("items = %v", items)
	}
	if ParseBibItems("no bibliography here") != nil {
		t.Error("no markers should yield nil")
	}
}

func TestAddBibItems(t *testing.T) {
	store := reference.NewStore()
	acc := NewAccumulator(store)
	refs := acc.AddBibItems(sampleLatex)
	if len(refs) != 2 {
		t.Fatalf("extracted %d citations", len(refs))
	}
	art := store.Get(refs[0].Article)
	if art.FirstAtomic(schema.AttrTitle) != "Fast algorithms for mining association rules" {
		t.Errorf("title = %q", art.FirstAtomic(schema.AttrTitle))
	}
	if len(refs[0].Authors) != 2 || len(refs[1].Authors) != 3 {
		t.Errorf("author counts: %d, %d", len(refs[0].Authors), len(refs[1].Authors))
	}
	if art.FirstAtomic(schema.AttrYear) != "1994" {
		t.Errorf("year = %q", art.FirstAtomic(schema.AttrYear))
	}
	if err := store.Validate(schema.PIM()); err != nil {
		t.Fatal(err)
	}
}
