package extract

import (
	"fmt"
	"strings"

	"refrecon/internal/emailaddr"
)

// Mailbox is one parsed address occurrence in a message header.
type Mailbox struct {
	Name  string // display name; may be empty
	Email string // "local@domain"; may be empty for malformed input
}

// Message is one parsed email message's headers.
type Message struct {
	From    Mailbox
	To      []Mailbox
	Cc      []Mailbox
	Subject string
	Date    string
	ID      string // Message-ID value if present
}

// ParseMessage parses an RFC-2822-style message: colon-separated headers
// (with folding: continuation lines begin with whitespace) terminated by a
// blank line or end of input. The body is ignored. Unknown headers are
// skipped. An error is returned only for structurally hopeless input
// (a non-header, non-continuation first line).
func ParseMessage(src string) (Message, error) {
	var m Message
	lines := strings.Split(src, "\n")
	// Unfold headers.
	var headers []string
	for i, line := range lines {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			break
		}
		if line[0] == ' ' || line[0] == '\t' {
			if len(headers) == 0 {
				return m, fmt.Errorf("email: line %d: continuation without a header", i+1)
			}
			headers[len(headers)-1] += " " + strings.TrimSpace(line)
			continue
		}
		if !strings.Contains(line, ":") {
			return m, fmt.Errorf("email: line %d: not a header: %q", i+1, line)
		}
		headers = append(headers, line)
	}
	for _, h := range headers {
		name, value, _ := strings.Cut(h, ":")
		value = strings.TrimSpace(value)
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "from":
			boxes := ParseAddressList(value)
			if len(boxes) > 0 {
				m.From = boxes[0]
			}
		case "to":
			m.To = append(m.To, ParseAddressList(value)...)
		case "cc":
			m.Cc = append(m.Cc, ParseAddressList(value)...)
		case "subject":
			m.Subject = value
		case "date":
			m.Date = value
		case "message-id":
			m.ID = strings.Trim(value, "<>")
		}
	}
	return m, nil
}

// ParseAddressList splits a header value into mailboxes. Commas inside
// double quotes ("Last, First" <a@b>) do not split.
func ParseAddressList(value string) []Mailbox {
	var out []Mailbox
	var cur strings.Builder
	inQuote := false
	flush := func() {
		s := strings.TrimSpace(cur.String())
		cur.Reset()
		if s == "" {
			return
		}
		addr, ok := emailaddr.Parse(s)
		mb := Mailbox{Name: addr.Display}
		if ok {
			mb.Email = addr.Key()
		}
		if mb.Name == "" && !ok {
			mb.Name = s
		}
		out = append(out, mb)
	}
	for i := 0; i < len(value); i++ {
		c := value[i]
		switch c {
		case '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case ',':
			if inQuote {
				cur.WriteByte(c)
			} else {
				flush()
			}
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// RenderMessage produces the textual form of a message, suitable for
// ParseMessage round-trips; the data generators use it so that synthetic
// corpora flow through the same parsing path as real mail would.
func RenderMessage(m Message) string {
	var b strings.Builder
	writeBox := func(mb Mailbox) string {
		switch {
		case mb.Name != "" && mb.Email != "":
			if strings.Contains(mb.Name, ",") {
				return `"` + mb.Name + `" <` + mb.Email + ">"
			}
			return mb.Name + " <" + mb.Email + ">"
		case mb.Email != "":
			return mb.Email
		default:
			return mb.Name
		}
	}
	fmt.Fprintf(&b, "From: %s\n", writeBox(m.From))
	if len(m.To) > 0 {
		tos := make([]string, len(m.To))
		for i, t := range m.To {
			tos[i] = writeBox(t)
		}
		fmt.Fprintf(&b, "To: %s\n", strings.Join(tos, ", "))
	}
	if len(m.Cc) > 0 {
		ccs := make([]string, len(m.Cc))
		for i, t := range m.Cc {
			ccs[i] = writeBox(t)
		}
		fmt.Fprintf(&b, "Cc: %s\n", strings.Join(ccs, ", "))
	}
	if m.Subject != "" {
		fmt.Fprintf(&b, "Subject: %s\n", m.Subject)
	}
	if m.Date != "" {
		fmt.Fprintf(&b, "Date: %s\n", m.Date)
	}
	if m.ID != "" {
		fmt.Fprintf(&b, "Message-ID: <%s>\n", m.ID)
	}
	b.WriteString("\n")
	return b.String()
}
