package extract

import (
	"fmt"
	"strings"

	"refrecon/internal/emailaddr"
)

// Mailbox is one parsed address occurrence in a message header.
type Mailbox struct {
	Name  string // display name; may be empty
	Email string // "local@domain"; may be empty for malformed input
}

// Message is one parsed email message's headers.
type Message struct {
	From    Mailbox
	To      []Mailbox
	Cc      []Mailbox
	Subject string
	Date    string
	ID      string // Message-ID value if present
}

// ParseMessage parses an RFC-2822-style message: colon-separated headers
// (with folding: continuation lines begin with whitespace) terminated by a
// blank line or end of input. The body is ignored. Unknown headers are
// skipped. An error is returned only for structurally hopeless input
// (a non-header, non-continuation first line).
func ParseMessage(src string) (Message, error) {
	var m Message
	lines := strings.Split(src, "\n")
	// Unfold headers.
	var headers []string
	for i, line := range lines {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			break
		}
		if line[0] == ' ' || line[0] == '\t' {
			if len(headers) == 0 {
				return m, fmt.Errorf("email: line %d: continuation without a header", i+1)
			}
			headers[len(headers)-1] += " " + strings.TrimSpace(line)
			continue
		}
		if !strings.Contains(line, ":") {
			return m, fmt.Errorf("email: line %d: not a header: %q", i+1, line)
		}
		headers = append(headers, line)
	}
	for _, h := range headers {
		name, value, _ := strings.Cut(h, ":")
		value = strings.TrimSpace(value)
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "from":
			boxes := ParseAddressList(value)
			if len(boxes) > 0 {
				m.From = boxes[0]
			}
		case "to":
			m.To = append(m.To, ParseAddressList(value)...)
		case "cc":
			m.Cc = append(m.Cc, ParseAddressList(value)...)
		case "subject":
			m.Subject = value
		case "date":
			m.Date = value
		case "message-id":
			m.ID = strings.Trim(value, "<>")
		}
	}
	return m, nil
}

// ParseAddressList splits a header value into mailboxes. Commas inside
// double quotes ("Last, First" <a@b>) do not split.
func ParseAddressList(value string) []Mailbox {
	var out []Mailbox
	var cur strings.Builder
	inQuote := false
	flush := func() {
		s := strings.TrimSpace(cur.String())
		cur.Reset()
		if s == "" {
			return
		}
		addr, ok := emailaddr.Parse(s)
		mb := Mailbox{Name: addr.Display}
		if ok {
			mb.Email = addr.Key()
		}
		if mb.Name == "" && !ok {
			mb.Name = s
		}
		out = append(out, mb)
	}
	for i := 0; i < len(value); i++ {
		c := value[i]
		switch c {
		case '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case ',':
			if inQuote {
				cur.WriteByte(c)
			} else {
				flush()
			}
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// sanitizeDisplay makes a display name safe to embed in a rendered header:
// quotes, angle brackets, and control characters would change how the
// mailbox re-parses (an unbalanced quote swallows the rest of the list; a
// '<' starts a bogus address), so they are dropped rather than escaped.
func sanitizeDisplay(name string) string {
	name = strings.Map(func(r rune) rune {
		switch {
		case r == '"' || r == '<' || r == '>':
			return -1
		case r < 0x20 || r == 0x7f:
			return ' '
		}
		return r
	}, name)
	name = strings.Join(strings.Fields(name), " ")
	// The address parser strips surrounding quote characters; trim them
	// here too so the rendered name survives a parse unchanged.
	return strings.Trim(name, "' ")
}

// RenderMessage produces the textual form of a message, suitable for
// ParseMessage round-trips; the data generators use it so that synthetic
// corpora flow through the same parsing path as real mail would. Display
// names are sanitized: characters that would derail re-parsing are removed
// and comma-containing names are quoted.
func RenderMessage(m Message) string {
	var b strings.Builder
	writeBox := func(mb Mailbox) string {
		name := sanitizeDisplay(mb.Name)
		switch {
		case name != "" && mb.Email != "":
			if strings.Contains(name, ",") {
				return `"` + name + `" <` + mb.Email + ">"
			}
			return name + " <" + mb.Email + ">"
		case mb.Email != "":
			return mb.Email
		default:
			if strings.ContainsRune(name, '@') {
				// A bare display name containing '@' would re-parse as an
				// address; there is no faithful rendering for it.
				return ""
			}
			if strings.Contains(name, ",") {
				return `"` + name + `"`
			}
			return name
		}
	}
	// Mailboxes whose name sanitizes away and that carry no address render
	// to nothing; keeping them would emit list entries the parser cannot
	// see, breaking the round trip.
	writeList := func(header string, boxes []Mailbox) {
		var rendered []string
		for _, t := range boxes {
			if s := writeBox(t); s != "" {
				rendered = append(rendered, s)
			}
		}
		if len(rendered) > 0 {
			fmt.Fprintf(&b, "%s: %s\n", header, strings.Join(rendered, ", "))
		}
	}
	fmt.Fprintf(&b, "From: %s\n", writeBox(m.From))
	writeList("To", m.To)
	writeList("Cc", m.Cc)
	if m.Subject != "" {
		fmt.Fprintf(&b, "Subject: %s\n", m.Subject)
	}
	if m.Date != "" {
		fmt.Fprintf(&b, "Date: %s\n", m.Date)
	}
	if m.ID != "" {
		fmt.Fprintf(&b, "Message-ID: <%s>\n", m.ID)
	}
	b.WriteString("\n")
	return b.String()
}
