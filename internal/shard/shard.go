// Package shard partitions a fully built dependency graph into
// independent per-component graphs so the propagation fixed point can run
// concurrently, one engine per shard, without sharing any mutable state.
//
// The unit of partitioning is the connected component of the *reference*
// graph induced by blocking: two references are connected when some
// candidate RefPair node mentions both. Pairs are same-class, so a
// component never spans classes, and every enrichment fold — which
// rewrites pairs sharing a reference — is intra-component by construction.
// Association and contact edges between pairs of different components
// (article evidence feeding person pairs, shared-contact links, …) are the
// cross-component dependencies; they become boundary links.
//
// Split copies each component's nodes and edges into a private
// depgraph.Graph:
//
//   - a RefPair node lands in the component owning its references;
//   - a ValuePair node is replicated into every component that holds one
//     of its edge peers (peers are always RefPairs, so value evidence is
//     purely local); replicas of alias-learnable values — those with a
//     strong-boolean in-edge that can raise them to similarity 1 — are
//     registered in a ValueGroup so learned aliases propagate;
//   - a cross-component RefPair -> RefPair edge is rewired through a
//     *mirror*: a read-only copy of the source pair materialized in the
//     destination component, carrying the edge into the local graph. A
//     mirror has no incoming edges and is never queued; it only changes
//     when the boundary sync pushes the owner's state into it.
//
// Mirror references are disjoint from the destination component's own
// references, so mirrors can never fold with local pairs; they fold only
// with other mirrors of the same owner component, replaying exactly the
// folds the owner performed (SyncBoundary does this explicitly, so
// duplicate boolean evidence collapses the way the monolithic graph's
// edge dedup collapses it).
//
// After every round of per-component fixed points, SyncBoundary pushes
// each link's source state (similarity, Merged, NonMerge) into its mirror
// and levels value-replica groups, applying the engine's own activation
// rules to the dependents that gained evidence. Components that gained
// work are re-run; the loop terminates because similarities and statuses
// only ever go up. The global result coincides with the monolithic fixed
// point by the confluence of monotone propagation.
package shard

import (
	"sort"

	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
)

// Component is one connected component's private graph plus the
// bookkeeping the boundary sync needs.
type Component struct {
	// ID is the component's dense index in Plan.Comps, assigned in the
	// deterministic order components are first seen during node iteration.
	ID int
	// G is the component's private dependency graph.
	G *depgraph.Graph
	// Seed is the restriction of the global seed order to this component.
	Seed []*depgraph.Node
	// Weight is the scheduling weight (nodes + edges) used to balance
	// components across shards.
	Weight int

	// fwd records enrichment folds (l -> m) performed by this component's
	// runs, so boundary links survive folds on either side.
	fwd map[*depgraph.Node]*depgraph.Node
	// foldLog is the ordered list of folds since the last sync; the sync
	// replays them onto mirror copies held by other components.
	foldLog []foldRec
}

type foldRec struct{ l, m *depgraph.Node }

// OnFold is the depgraph.Options.OnFold hook for this component's runs.
// It must only be invoked by the engine run that owns the component (the
// orchestrator runs components on separate goroutines, but each hook
// touches only its own component's state).
func (c *Component) OnFold(l, m *depgraph.Node) {
	if c.fwd == nil {
		c.fwd = make(map[*depgraph.Node]*depgraph.Node)
	}
	c.fwd[l] = m
	c.foldLog = append(c.foldLog, foldRec{l, m})
}

// Resolve follows the component's fold-forwarding chain to the node that
// currently absorbs n's identity.
func (c *Component) Resolve(n *depgraph.Node) *depgraph.Node {
	for {
		m, ok := c.fwd[n]
		if !ok {
			return n
		}
		n = m
	}
}

// Link is one cross-component dependency: the destination component holds
// Mirror, a copy of the source pair Src, and the sync pushes Src's state
// into it after every round.
type Link struct {
	SrcComp int
	Src     *depgraph.Node
	DstComp int
	Mirror  *depgraph.Node
}

// Replica locates one copy of a replicated value node.
type Replica struct {
	Comp int
	N    *depgraph.Node
}

// ValueGroup ties together the replicas of one alias-learnable value node
// so a similarity learned in one component reaches the others.
type ValueGroup struct {
	Reps []Replica
}

// Plan is the result of Split: the per-component graphs, their grouping
// into shards, and the boundary structures the sync operates on.
type Plan struct {
	Comps []*Component
	// Groups lists, per shard, the component ids assigned to it (LPT
	// balanced by Component.Weight). Grouping affects scheduling only —
	// results are identical for every shard count >= 2.
	Groups [][]int
	// ShardOf maps component id -> shard index.
	ShardOf []int
	// Links are the boundary links, in deterministic creation order. The
	// sync may append to this list when a fold replay materializes a new
	// mirror.
	Links []Link
	// Values are the alias-learnable value-replica groups.
	Values []ValueGroup
	// ValueReplicas counts extra value-node copies created by replication.
	ValueReplicas int

	compOfRef []int32
	// mirrors indexes, for a source node (the owner component's copy), the
	// mirrors other components hold of it. Fold replay consults it.
	mirrors map[*depgraph.Node][]Replica
}

// CompOfRef returns the id of the component owning reference r, or -1 when
// r appears in no candidate pair.
func (p *Plan) CompOfRef(r reference.ID) int {
	if int(r) < 0 || int(r) >= len(p.compOfRef) {
		return -1
	}
	return int(p.compOfRef[r])
}

// IsMirror reports whether n (a node of component c's graph) is a mirror
// copy of another component's pair rather than one of c's own.
func (p *Plan) IsMirror(c *Component, n *depgraph.Node) bool {
	return n.Kind() == depgraph.RefPair && p.CompOfRef(n.RefA()) != c.ID
}

// Split partitions g into per-component graphs grouped into the given
// number of shards. numRefs bounds the reference-id space (store.Len()).
// The global graph is left untouched; seed is the global seed order.
func Split(g *depgraph.Graph, seed []*depgraph.Node, numRefs, shards int) *Plan {
	if shards < 1 {
		shards = 1
	}
	p := &Plan{
		compOfRef: make([]int32, numRefs),
		mirrors:   make(map[*depgraph.Node][]Replica),
	}
	for i := range p.compOfRef {
		p.compOfRef[i] = -1
	}

	// Union references connected by a candidate pair; every pair —
	// including NonMerge constraint pairs — colocates its endpoints.
	parent := make([]int32, numRefs)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	g.Nodes(func(n *depgraph.Node) {
		if n.Kind() != depgraph.RefPair {
			return
		}
		ra, rb := find(int32(n.RefA())), find(int32(n.RefB()))
		if ra != rb {
			parent[rb] = ra
		}
	})

	// Assign component ids in the deterministic order roots are first seen
	// while walking nodes in insertion order.
	compOfRoot := make(map[int32]int32)
	g.Nodes(func(n *depgraph.Node) {
		if n.Kind() != depgraph.RefPair {
			return
		}
		root := find(int32(n.RefA()))
		cid, ok := compOfRoot[root]
		if !ok {
			cid = int32(len(p.Comps))
			compOfRoot[root] = cid
			p.Comps = append(p.Comps, &Component{ID: int(cid), G: depgraph.New()})
		}
		p.compOfRef[n.RefA()] = cid
		p.compOfRef[n.RefB()] = cid
	})

	// Pass A: copy nodes. copyOf maps a global node id to its copy in the
	// owning component; value nodes may have several copies (valCopies).
	copyOf := make([]*depgraph.Node, g.NodeIDBound())
	valCopies := make(map[int32][]Replica)
	g.Nodes(func(n *depgraph.Node) {
		if n.Kind() == depgraph.RefPair {
			c := p.Comps[p.compOfRef[n.RefA()]]
			cp := c.G.AddRefPair(n.RefA(), n.RefB(), n.Class())
			cp.SetSim(n.Sim())
			cp.SetStatus(n.Status())
			copyOf[n.ID()] = cp
			return
		}
		// A value node is replicated into every component holding an edge
		// peer. Peers are RefPairs (the builder creates no value-value
		// edges), so each replica's evidence stays component-local.
		var comps []int32
		aliasable := false
		addPeer := func(peer *depgraph.Node) {
			if peer.Kind() != depgraph.RefPair {
				return
			}
			cid := p.compOfRef[peer.RefA()]
			for _, c := range comps {
				if c == cid {
					return
				}
			}
			comps = append(comps, cid)
		}
		n.EachIn(func(e depgraph.Edge) {
			if e.Dep == depgraph.StrongBoolean {
				aliasable = true
			}
			addPeer(e.From)
		})
		n.EachOut(func(e depgraph.Edge) { addPeer(e.To) })
		if len(comps) == 0 {
			return
		}
		x, y := n.ValueElems()
		var reps []Replica
		for _, cid := range comps {
			cp := p.Comps[cid].G.AddValuePair(n.Class(), x, y, n.Sim())
			cp.SetStatus(n.Status())
			reps = append(reps, Replica{Comp: int(cid), N: cp})
		}
		valCopies[n.ID()] = reps
		p.ValueReplicas += len(reps) - 1
		if len(reps) > 1 && aliasable {
			p.Values = append(p.Values, ValueGroup{Reps: reps})
		}
	})

	// valCopy returns v's replica in component cid (it exists whenever the
	// component holds one of v's peers).
	valCopy := func(v *depgraph.Node, cid int32) *depgraph.Node {
		for _, r := range valCopies[v.ID()] {
			if r.Comp == int(cid) {
				return r.N
			}
		}
		return nil
	}

	// Pass B: copy edges; cross-component pair edges go through mirrors.
	g.Nodes(func(n *depgraph.Node) {
		n.EachOut(func(e depgraph.Edge) {
			src, dst := e.From, e.To
			switch {
			case src.Kind() == depgraph.RefPair && dst.Kind() == depgraph.RefPair:
				cs, cd := p.compOfRef[src.RefA()], p.compOfRef[dst.RefA()]
				if cs == cd {
					p.Comps[cs].G.AddEdge(copyOf[src.ID()], copyOf[dst.ID()], e.Dep, e.Evidence)
					return
				}
				m := p.mirrorIn(int(cd), int(cs), copyOf[src.ID()], src.Sim(), src.Status(), src.RefA(), src.RefB(), src.Class())
				p.Comps[cd].G.AddEdge(m, copyOf[dst.ID()], e.Dep, e.Evidence)
			case src.Kind() == depgraph.ValuePair && dst.Kind() == depgraph.RefPair:
				cd := p.compOfRef[dst.RefA()]
				p.Comps[cd].G.AddEdge(valCopy(src, cd), copyOf[dst.ID()], e.Dep, e.Evidence)
			case src.Kind() == depgraph.RefPair && dst.Kind() == depgraph.ValuePair:
				cs := p.compOfRef[src.RefA()]
				p.Comps[cs].G.AddEdge(copyOf[src.ID()], valCopy(dst, cs), e.Dep, e.Evidence)
			default:
				// Value-value edges do not occur; replicate defensively into
				// every component holding both replicas.
				for _, rs := range valCopies[src.ID()] {
					if rd := valCopy(dst, int32(rs.Comp)); rd != nil {
						p.Comps[rs.Comp].G.AddEdge(rs.N, rd, e.Dep, e.Evidence)
					}
				}
			}
		})
	})

	// Seeds: the global order restricted to each component.
	for _, n := range seed {
		if n.Kind() == depgraph.RefPair {
			cid := p.compOfRef[n.RefA()]
			c := p.Comps[cid]
			c.Seed = append(c.Seed, copyOf[n.ID()])
			continue
		}
		for _, r := range valCopies[n.ID()] {
			p.Comps[r.Comp].Seed = append(p.Comps[r.Comp].Seed, r.N)
		}
	}

	for _, c := range p.Comps {
		c.Weight = c.G.NodeCount() + c.G.EdgeCount()
	}
	p.group(shards)
	return p
}

// mirrorIn returns (creating if absent) the mirror of source pair src in
// component cd, registering the boundary link and the mirror index entry.
func (p *Plan) mirrorIn(cd, cs int, src *depgraph.Node, sim float64, status depgraph.Status, a, b reference.ID, class string) *depgraph.Node {
	dg := p.Comps[cd].G
	if m := dg.LookupRefPair(a, b); m != nil {
		// The destination's own pairs use disjoint references, so any hit
		// is an existing mirror of the same source.
		return m
	}
	m := dg.AddRefPair(a, b, class)
	m.SetSim(sim)
	m.SetStatus(status)
	p.Links = append(p.Links, Link{SrcComp: cs, Src: src, DstComp: cd, Mirror: m})
	p.mirrors[src] = append(p.mirrors[src], Replica{Comp: cd, N: m})
	return m
}

// group assigns components to shards with longest-processing-time-first
// balancing: heaviest component to the least-loaded shard, deterministic
// tie-breaks (component id, then shard index). The assignment affects
// scheduling only, never results.
func (p *Plan) group(shards int) {
	if shards > len(p.Comps) && len(p.Comps) > 0 {
		shards = len(p.Comps)
	}
	if shards < 1 {
		shards = 1
	}
	order := make([]int, len(p.Comps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := p.Comps[order[i]], p.Comps[order[j]]
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		return a.ID < b.ID
	})
	p.Groups = make([][]int, shards)
	p.ShardOf = make([]int, len(p.Comps))
	loads := make([]int, shards)
	for _, cid := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		p.Groups[best] = append(p.Groups[best], cid)
		p.ShardOf[cid] = best
		loads[best] += p.Comps[cid].Weight
	}
	// Keep each shard's components in id order so per-shard execution
	// order is deterministic.
	for _, g := range p.Groups {
		sort.Ints(g)
	}
}

// LargestComponent returns the maximum component weight (nodes + edges).
func (p *Plan) LargestComponent() int {
	max := 0
	for _, c := range p.Comps {
		if c.Weight > max {
			max = c.Weight
		}
	}
	return max
}

// SyncStats reports what one SyncBoundary pass did.
type SyncStats struct {
	// Updates counts mirror/replica state changes applied (similarity
	// raises, merges, non-merge propagations).
	Updates int
	// Activations counts dependents re-queued by boundary evidence.
	Activations int
	// NewlyMerged counts mirrors/replicas that became Merged.
	NewlyMerged int
	// FoldReplays counts owner-component folds replayed onto mirrors.
	FoldReplays int
}

// SyncBoundary runs one serial boundary-synchronization pass after a round
// of per-component fixed points: owner folds are replayed onto mirrors,
// every link pushes its source's state into its mirror, and value-replica
// groups are leveled to their maximum similarity. Activation follows the
// engine's own rules — real-valued dependents re-queue on a similarity
// increase above eps, strong-boolean dependents jump the queue on a merge,
// weak-boolean dependents go to the back. It returns the ids of components
// that gained work, in ascending order.
func (p *Plan) SyncBoundary(eps float64) ([]int, SyncStats) {
	var st SyncStats
	mark := make([]bool, len(p.Comps))

	// Replay folds recorded by the components' last runs onto the mirror
	// copies other components hold, so duplicate evidence collapses exactly
	// like the monolithic graph's edge dedup. Components in id order, each
	// log in record order.
	for _, c := range p.Comps {
		for _, f := range c.foldLog {
			ml := p.mirrors[f.l]
			if len(ml) == 0 {
				continue
			}
			// The absorbing node m may be folded again later in the same
			// log; resolve to its current identity.
			m := c.Resolve(f.m)
			for _, rl := range ml {
				dst := p.Comps[rl.Comp]
				lm := dst.Resolve(rl.N)
				if !lm.Alive() {
					continue
				}
				// Materialize the absorber's mirror if the destination has
				// none yet (the monolithic fold would have re-pointed the
				// boundary edge at m).
				mm := dst.G.LookupRefPair(m.RefA(), m.RefB())
				if mm == nil {
					mm = p.mirrorIn(rl.Comp, c.ID, m, m.Sim(), m.Status(), m.RefA(), m.RefB(), m.Class())
				} else {
					mm = dst.Resolve(mm)
				}
				if mm == lm || !mm.Alive() {
					continue
				}
				dst.G.FoldInto(lm, mm)
				if dst.fwd == nil {
					dst.fwd = make(map[*depgraph.Node]*depgraph.Node)
				}
				dst.fwd[lm] = mm
				st.FoldReplays++
				mark[rl.Comp] = true
			}
		}
		c.foldLog = c.foldLog[:0]
	}

	for i := 0; i < len(p.Links); i++ {
		l := p.Links[i]
		src := p.Comps[l.SrcComp].Resolve(l.Src)
		dst := p.Comps[l.DstComp]
		mir := dst.Resolve(l.Mirror)
		if !src.Alive() || !mir.Alive() {
			continue
		}
		if p.syncNode(dst, src.Sim(), src.Status(), mir, eps, &st) {
			mark[l.DstComp] = true
		}
	}

	for _, vg := range p.Values {
		max := 0.0
		merged := false
		for _, r := range vg.Reps {
			if s := r.N.Sim(); s > max {
				max = s
			}
			if r.N.Status() == depgraph.Merged {
				merged = true
			}
		}
		status := depgraph.Inactive
		if merged {
			status = depgraph.Merged
		}
		for _, r := range vg.Reps {
			if p.syncNode(p.Comps[r.Comp], max, status, r.N, eps, &st) {
				mark[r.Comp] = true
			}
		}
	}

	var affected []int
	for cid, m := range mark {
		if m {
			affected = append(affected, cid)
		}
	}
	return affected, st
}

// syncNode pushes (sim, status) from a link source or replica group into
// the local copy n, applying the engine's activation rules to n's
// dependents. It reports whether the owning component gained work.
func (p *Plan) syncNode(c *Component, sim float64, status depgraph.Status, n *depgraph.Node, eps float64, st *SyncStats) bool {
	dg := c.G
	if status == depgraph.NonMerge {
		// Constraint propagation: the monolithic graph would have frozen
		// this exact node. No activation — NonMerge removes evidence, and
		// the engine reconsiders dependents only through its own rebuild
		// paths, which MarkNonMerge already patches.
		if n.Status() != depgraph.NonMerge {
			dg.MarkNonMerge(n)
			st.Updates++
		}
		return false
	}
	old := n.Sim()
	if sim > old {
		dg.RaiseSim(n, sim)
	}
	increased := n.Sim() > old+eps
	newlyMerged := status == depgraph.Merged &&
		n.Status() != depgraph.Merged && n.Status() != depgraph.NonMerge
	if newlyMerged {
		dg.MarkMerged(n)
	}
	if !increased && !newlyMerged {
		return false
	}
	st.Updates++
	if newlyMerged {
		st.NewlyMerged++
	}
	acts := 0
	if increased {
		n.EachOut(func(e depgraph.Edge) {
			if e.Dep == depgraph.RealValued && dg.Activate(e.To) {
				acts++
			}
		})
	}
	if newlyMerged {
		n.EachOut(func(e depgraph.Edge) {
			if e.Dep == depgraph.StrongBoolean && dg.ActivateFront(e.To) {
				acts++
			}
		})
		n.EachOut(func(e depgraph.Edge) {
			if e.Dep == depgraph.WeakBoolean && dg.Activate(e.To) {
				acts++
			}
		})
	}
	st.Activations += acts
	// A newly merged pair must re-run even with no queue activity: the next
	// run's re-enrichment folds its duplicates.
	return acts > 0 || newlyMerged
}
