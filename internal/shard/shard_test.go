package shard_test

import (
	"fmt"
	"testing"

	"refrecon/internal/audit"
	"refrecon/internal/depgraph"
	"refrecon/internal/shard"
)

// buildGraph assembles a small multi-component graph by hand:
//
//	component 0: pairs (0,1), (1,2)   class P
//	component 1: pair  (3,4)          class P
//	component 2: pair  (5,6)          class A, with association edges into
//	             both P components (the boundary), plus a value node shared
//	             by (0,1) and (3,4) (a replicated value).
func buildGraph() (*depgraph.Graph, []*depgraph.Node) {
	g := depgraph.New()
	p01 := g.AddRefPair(0, 1, "P")
	p12 := g.AddRefPair(1, 2, "P")
	p34 := g.AddRefPair(3, 4, "P")
	a56 := g.AddRefPair(5, 6, "A")
	v := g.AddValuePair("name", "x", "y", 0.4)
	g.AddEdge(v, p01, depgraph.RealValued, "name")
	g.AddEdge(v, p34, depgraph.RealValued, "name")
	g.AddEdge(a56, v, depgraph.StrongBoolean, "alias")
	g.AddEdge(a56, p01, depgraph.StrongBoolean, "assoc")
	g.AddEdge(a56, p34, depgraph.StrongBoolean, "assoc")
	g.AddEdge(p12, a56, depgraph.WeakBoolean, "contact")
	return g, []*depgraph.Node{p01, p12, p34, a56, v}
}

func TestSplitStructure(t *testing.T) {
	g, seed := buildGraph()
	plan := shard.Split(g, seed, 7, 2)

	if len(plan.Comps) != 3 {
		t.Fatalf("components = %d, want 3", len(plan.Comps))
	}
	// Reference ownership: connected refs share a component, classes never
	// mix, unseen refs map to -1.
	if plan.CompOfRef(0) != plan.CompOfRef(1) || plan.CompOfRef(1) != plan.CompOfRef(2) {
		t.Error("refs 0,1,2 should share a component")
	}
	if plan.CompOfRef(0) == plan.CompOfRef(3) {
		t.Error("refs 0 and 3 are not pair-connected; distinct components expected")
	}
	if plan.CompOfRef(5) == plan.CompOfRef(0) || plan.CompOfRef(5) == plan.CompOfRef(3) {
		t.Error("class A refs must not share the P components")
	}
	if plan.CompOfRef(100) != -1 {
		t.Error("out-of-range ref should map to -1")
	}

	// The shard partition passes the auditor's validity checks: every pair
	// in exactly one component, every mirror registered on both sides.
	aud := audit.New(func(*depgraph.Node) float64 { return 0.85 }, true)
	if rep := aud.CheckSharding("test", plan, g); !rep.Ok() {
		t.Fatalf("CheckSharding violations: %v", rep.Violations)
	}

	// Cross-component edges run through mirrors: each P component holds a
	// mirror of (5,6) for the assoc edges, and the A component holds a
	// mirror of (1,2) for the contact edge. Mirrors never have in-edges.
	mirrors := 0
	for _, c := range plan.Comps {
		c.G.Nodes(func(n *depgraph.Node) {
			if plan.IsMirror(c, n) {
				mirrors++
				ok := (n.RefA() == 5 && n.RefB() == 6) || (n.RefA() == 1 && n.RefB() == 2)
				if !ok {
					t.Errorf("unexpected mirror (%d,%d) in comp %d", n.RefA(), n.RefB(), c.ID)
				}
				in := 0
				n.EachIn(func(depgraph.Edge) { in++ })
				if in != 0 {
					t.Errorf("mirror (%d,%d) has %d in-edges, want 0", n.RefA(), n.RefB(), in)
				}
			}
		})
	}
	if mirrors != 3 {
		t.Errorf("mirrors = %d, want 3 (one per cross-component edge source)", mirrors)
	}
	if len(plan.Links) != 3 {
		t.Errorf("links = %d, want 3", len(plan.Links))
	}
	// The value node is replicated into each P component and the A
	// component, and it is alias-learnable, so a group exists.
	if plan.ValueReplicas != 2 {
		t.Errorf("value replicas = %d, want 2", plan.ValueReplicas)
	}
	if len(plan.Values) != 1 || len(plan.Values[0].Reps) != 3 {
		t.Fatalf("value groups = %+v, want one group with 3 replicas", plan.Values)
	}
}

// planFingerprint renders the scheduling-relevant plan shape.
func planFingerprint(p *shard.Plan) string {
	out := fmt.Sprintf("comps=%d links=%d reps=%d groups=%v shardOf=%v weights=[",
		len(p.Comps), len(p.Links), p.ValueReplicas, p.Groups, p.ShardOf)
	for _, c := range p.Comps {
		out += fmt.Sprintf("%d ", c.Weight)
	}
	return out + "]"
}

func TestSplitDeterministic(t *testing.T) {
	g1, seed1 := buildGraph()
	g2, seed2 := buildGraph()
	a := shard.Split(g1, seed1, 7, 2)
	b := shard.Split(g2, seed2, 7, 2)
	if planFingerprint(a) != planFingerprint(b) {
		t.Fatalf("same input, different plans:\n  %s\n  %s", planFingerprint(a), planFingerprint(b))
	}
}

func TestGroupingClampsAndCovers(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 16} {
		g, seed := buildGraph()
		plan := shard.Split(g, seed, 7, shards)
		want := shards
		if want > len(plan.Comps) {
			want = len(plan.Comps)
		}
		if len(plan.Groups) != want {
			t.Errorf("shards=%d: groups = %d, want %d", shards, len(plan.Groups), want)
		}
		// Every component appears in exactly one group, consistent with
		// ShardOf.
		seen := make(map[int]bool)
		for s, grp := range plan.Groups {
			for _, cid := range grp {
				if seen[cid] {
					t.Errorf("shards=%d: component %d grouped twice", shards, cid)
				}
				seen[cid] = true
				if plan.ShardOf[cid] != s {
					t.Errorf("shards=%d: ShardOf[%d] = %d, want %d", shards, cid, plan.ShardOf[cid], s)
				}
			}
		}
		if len(seen) != len(plan.Comps) {
			t.Errorf("shards=%d: grouped %d of %d components", shards, len(seen), len(plan.Comps))
		}
	}
}

func TestLargestComponent(t *testing.T) {
	g, seed := buildGraph()
	plan := shard.Split(g, seed, 7, 2)
	max := 0
	for _, c := range plan.Comps {
		if c.Weight > max {
			max = c.Weight
		}
	}
	if got := plan.LargestComponent(); got != max || got == 0 {
		t.Fatalf("LargestComponent = %d, want %d (nonzero)", got, max)
	}
}
