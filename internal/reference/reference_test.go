package reference

import (
	"strings"
	"testing"

	"refrecon/internal/schema"
)

func TestAddAtomicDedup(t *testing.T) {
	r := New(schema.ClassPerson)
	r.AddAtomic("name", "Eugene Wong").AddAtomic("name", "Eugene Wong").AddAtomic("name", "")
	if got := r.Atomic("name"); len(got) != 1 || got[0] != "Eugene Wong" {
		t.Errorf("Atomic(name) = %v", got)
	}
	if r.FirstAtomic("name") != "Eugene Wong" {
		t.Errorf("FirstAtomic = %q", r.FirstAtomic("name"))
	}
	if r.FirstAtomic("missing") != "" {
		t.Error("missing attribute should yield empty string")
	}
}

func TestAddAssocDedup(t *testing.T) {
	r := New(schema.ClassPerson)
	r.AddAssoc("coAuthor", 3).AddAssoc("coAuthor", 3).AddAssoc("coAuthor", -1)
	if got := r.Assoc("coAuthor"); len(got) != 1 || got[0] != 3 {
		t.Errorf("Assoc = %v", got)
	}
}

func TestIsEmpty(t *testing.T) {
	r := New(schema.ClassPerson)
	if !r.IsEmpty() {
		t.Error("fresh reference should be empty")
	}
	r.AddAtomic("name", "x")
	if r.IsEmpty() {
		t.Error("reference with a value should not be empty")
	}
}

func TestAttrLists(t *testing.T) {
	r := New(schema.ClassPerson)
	r.AddAtomic("name", "x").AddAtomic("email", "y").AddAssoc("coAuthor", 1)
	if got := r.AtomicAttrs(); len(got) != 2 || got[0] != "email" || got[1] != "name" {
		t.Errorf("AtomicAttrs = %v", got)
	}
	if got := r.AssocAttrs(); len(got) != 1 || got[0] != "coAuthor" {
		t.Errorf("AssocAttrs = %v", got)
	}
}

func TestStoreAddAssignsDenseIDs(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		r := New(schema.ClassPerson)
		if id := s.Add(r); id != ID(i) || r.ID != ID(i) {
			t.Fatalf("id %d assigned as %d", i, id)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.ByClass(schema.ClassPerson); len(got) != 5 {
		t.Errorf("ByClass = %v", got)
	}
	if got := s.Classes(); len(got) != 1 || got[0] != schema.ClassPerson {
		t.Errorf("Classes = %v", got)
	}
}

func TestStoreAddTwicePanics(t *testing.T) {
	s := NewStore()
	r := New(schema.ClassPerson)
	s.Add(r)
	defer func() {
		if recover() == nil {
			t.Error("adding twice should panic")
		}
	}()
	s.Add(r)
}

func TestValidate(t *testing.T) {
	sch := schema.PIM()
	s := NewStore()
	p := New(schema.ClassPerson)
	p.AddAtomic(schema.AttrName, "Eugene Wong")
	s.Add(p)
	a := New(schema.ClassArticle)
	a.AddAtomic(schema.AttrTitle, "Distributed query processing")
	a.AddAssoc(schema.AttrAuthoredBy, p.ID)
	s.Add(a)
	if err := s.Validate(sch); err != nil {
		t.Errorf("valid store rejected: %v", err)
	}

	// Unknown class.
	bad := NewStore()
	bad.Add(New("Martian"))
	if err := bad.Validate(sch); err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Errorf("want unknown-class error, got %v", err)
	}

	// Unknown atomic attribute.
	bad2 := NewStore()
	q := New(schema.ClassPerson)
	q.AddAtomic("shoeSize", "42")
	bad2.Add(q)
	if err := bad2.Validate(sch); err == nil || !strings.Contains(err.Error(), "unknown attribute") {
		t.Errorf("want unknown-attribute error, got %v", err)
	}

	// Atomic attribute used as association.
	bad3 := NewStore()
	q3 := New(schema.ClassPerson)
	q3.AddAssoc(schema.AttrName, 0)
	bad3.Add(q3)
	if err := bad3.Validate(sch); err == nil || !strings.Contains(err.Error(), "not an association") {
		t.Errorf("want not-an-association error, got %v", err)
	}

	// Association to the wrong class.
	bad4 := NewStore()
	v := New(schema.ClassVenue)
	bad4.Add(v)
	art := New(schema.ClassArticle)
	art.AddAssoc(schema.AttrAuthoredBy, v.ID) // authors must be persons
	bad4.Add(art)
	if err := bad4.Validate(sch); err == nil || !strings.Contains(err.Error(), "links to class") {
		t.Errorf("want wrong-target-class error, got %v", err)
	}

	// Out-of-range link.
	bad5 := NewStore()
	art5 := New(schema.ClassArticle)
	art5.AddAssoc(schema.AttrAuthoredBy, 99)
	bad5.Add(art5)
	if err := bad5.Validate(sch); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Errorf("want out-of-range error, got %v", err)
	}
}
