// Package reference defines the Reference type — a partial description of a
// real-world entity extracted from some source — and the Store that holds a
// dataset's references.
//
// A reference carries a (possibly empty) *set* of values for each attribute
// of its class. Multi-valued attributes are fundamental to the paper's
// setting: a person legitimately has several email addresses and several
// name spellings, so value disagreement is never by itself negative
// evidence.
package reference

import (
	"fmt"
	"sort"

	"refrecon/internal/schema"
)

// ID identifies a reference within a Store. IDs are dense, starting at 0.
type ID int

// Reference is one extracted reference.
type Reference struct {
	ID     ID
	Class  string
	Source string // provenance label: "email", "bibtex", "citation", ...
	// Entity is the gold-standard entity label when known (datasets built
	// by the generators carry it; real extractions leave it empty). It is
	// never consulted by the reconciler — only by evaluation.
	Entity string

	atomic map[string][]string
	assoc  map[string][]ID
}

// New creates a reference of the given class. The ID is assigned when the
// reference is added to a Store.
func New(class string) *Reference {
	return &Reference{
		ID:     -1,
		Class:  class,
		atomic: make(map[string][]string),
		assoc:  make(map[string][]ID),
	}
}

// AddAtomic appends a value to the named atomic attribute, skipping empty
// strings and exact duplicates.
func (r *Reference) AddAtomic(attr, value string) *Reference {
	if value == "" {
		return r
	}
	for _, v := range r.atomic[attr] {
		if v == value {
			return r
		}
	}
	r.atomic[attr] = append(r.atomic[attr], value)
	return r
}

// AddAssoc appends a link to the named association attribute, skipping
// duplicates and negative ids.
func (r *Reference) AddAssoc(attr string, target ID) *Reference {
	if target < 0 {
		return r
	}
	for _, t := range r.assoc[attr] {
		if t == target {
			return r
		}
	}
	r.assoc[attr] = append(r.assoc[attr], target)
	return r
}

// Atomic returns the values of the named atomic attribute (nil when
// absent). The returned slice must not be mutated.
func (r *Reference) Atomic(attr string) []string { return r.atomic[attr] }

// FirstAtomic returns the first value of the attribute, or "".
func (r *Reference) FirstAtomic(attr string) string {
	if vs := r.atomic[attr]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Assoc returns the links of the named association attribute (nil when
// absent). The returned slice must not be mutated.
func (r *Reference) Assoc(attr string) []ID { return r.assoc[attr] }

// AtomicAttrs returns the names of atomic attributes that have at least one
// value, sorted.
func (r *Reference) AtomicAttrs() []string {
	out := make([]string, 0, len(r.atomic))
	for a := range r.atomic {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// AssocAttrs returns the names of association attributes that have at least
// one link, sorted.
func (r *Reference) AssocAttrs() []string {
	out := make([]string, 0, len(r.assoc))
	for a := range r.assoc {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// IsEmpty reports whether the reference carries no attribute values at all.
func (r *Reference) IsEmpty() bool { return len(r.atomic) == 0 && len(r.assoc) == 0 }

// String renders a compact debugging representation.
func (r *Reference) String() string {
	return fmt.Sprintf("%s#%d%v", r.Class, r.ID, r.atomic)
}

// Store holds the references of one dataset and assigns their IDs.
type Store struct {
	refs    []*Reference
	byClass map[string][]ID
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byClass: make(map[string][]ID)}
}

// Add assigns the next ID to r and records it. It panics if r was already
// added to a store.
func (s *Store) Add(r *Reference) ID {
	if r.ID >= 0 {
		panic(fmt.Sprintf("reference: %v already added", r))
	}
	r.ID = ID(len(s.refs))
	s.refs = append(s.refs, r)
	s.byClass[r.Class] = append(s.byClass[r.Class], r.ID)
	return r.ID
}

// Len returns the number of references.
func (s *Store) Len() int { return len(s.refs) }

// Get returns the reference with the given id. It panics on out-of-range
// ids, which always indicate a programming error.
func (s *Store) Get(id ID) *Reference { return s.refs[id] }

// All returns the references in ID order. The slice must not be mutated.
func (s *Store) All() []*Reference { return s.refs }

// ByClass returns the IDs of the class's references in insertion order.
func (s *Store) ByClass(class string) []ID { return s.byClass[class] }

// Classes returns the class names present, sorted.
func (s *Store) Classes() []string {
	out := make([]string, 0, len(s.byClass))
	for c := range s.byClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Validate checks every reference against the schema: classes must exist,
// attributes must be declared with the right kind, and association targets
// must be in range and of the declared target class.
func (s *Store) Validate(sch *schema.Schema) error {
	for _, r := range s.refs {
		c, ok := sch.Class(r.Class)
		if !ok {
			return fmt.Errorf("reference %d: unknown class %q", r.ID, r.Class)
		}
		for attr := range r.atomic {
			a, ok := c.Attr(attr)
			if !ok {
				return fmt.Errorf("reference %d (%s): unknown attribute %q", r.ID, r.Class, attr)
			}
			if a.Kind != schema.Atomic {
				return fmt.Errorf("reference %d (%s): attribute %q is not atomic", r.ID, r.Class, attr)
			}
		}
		for attr, targets := range r.assoc {
			a, ok := c.Attr(attr)
			if !ok {
				return fmt.Errorf("reference %d (%s): unknown attribute %q", r.ID, r.Class, attr)
			}
			if a.Kind != schema.Association {
				return fmt.Errorf("reference %d (%s): attribute %q is not an association", r.ID, r.Class, attr)
			}
			for _, t := range targets {
				if int(t) >= len(s.refs) {
					return fmt.Errorf("reference %d (%s): attribute %q links to out-of-range id %d", r.ID, r.Class, attr, t)
				}
				if got := s.refs[t].Class; got != a.Target {
					return fmt.Errorf("reference %d (%s): attribute %q links to class %q, want %q", r.ID, r.Class, attr, got, a.Target)
				}
			}
		}
	}
	return nil
}
