package tokenizer

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"Hello World", "hello world"},
		{"  lots\t of\n space  ", "lots of space"},
		{"ÀÉÎÕÜ", "aeiou"},
		{"Müller", "muller"},
		{"Straße", "strase"},
		{"Łukasz", "lukasz"},
		{"UPPER", "upper"},
		{"already lower", "already lower"},
		{"trailing space ", "trailing space"},
		{" leading", "leading"},
		{"日本語", "日本語"}, // non-Latin passes through
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeNoUpperNoDoubleSpace(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		if strings.Contains(n, "  ") {
			return false
		}
		for _, r := range n {
			if unicode.IsUpper(r) && unicode.ToLower(r) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"one", []string{"one"}},
		{"Hello, World!", []string{"hello", "world"}},
		{"a-b_c.d", []string{"a", "b", "c", "d"}},
		{"e2e 2025 test", []string{"e2e", "2025", "test"}},
		{"René Müller", []string{"rene", "muller"}},
		{"  punctuation,,, only!!! ", []string{"punctuation", "only"}},
		{"...", nil},
	}
	for _, c := range cases {
		if got := Words(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWordsAreNormalized(t *testing.T) {
	f := func(s string) bool {
		for _, w := range Words(s) {
			if w == "" || w != Normalize(w) {
				return false
			}
			for _, r := range w {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContentWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"The Theory of Record Linkage", []string{"theory", "record", "linkage"}},
		{"of the", []string{"of", "the"}}, // all stopwords: keep original
		{"Querying in Databases", []string{"querying", "databases"}},
		{"", nil},
	}
	for _, c := range cases {
		if got := ContentWords(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ContentWords(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || !IsStopword("of") {
		t.Error("expected the/of to be stopwords")
	}
	if IsStopword("database") {
		t.Error("database should not be a stopword")
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("ab", 2)
	want := []string{"#a", "ab", "b#"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams(ab,2) = %v, want %v", got, want)
	}
	if NGrams("", 3) != nil {
		t.Error("NGrams of empty string should be nil")
	}
	if NGrams("abc", 0) != nil {
		t.Error("NGrams with n=0 should be nil")
	}
	// n=1 has no padding beyond the string itself minus 0 pads.
	got1 := NGrams("Ab", 1)
	if !reflect.DeepEqual(got1, []string{"a", "b"}) {
		t.Errorf("NGrams(Ab,1) = %v", got1)
	}
}

func TestNGramsCount(t *testing.T) {
	f := func(s string, n uint8) bool {
		k := int(n%5) + 1
		grams := NGrams(s, k)
		norm := []rune(Normalize(s))
		if len(norm) == 0 {
			return grams == nil
		}
		return len(grams) == len(norm)+k-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitial(t *testing.T) {
	cases := []struct {
		in   string
		want rune
	}{
		{"Stonebraker", 's'},
		{"  Wong", 'w'},
		{"Émile", 'e'},
		{"42", 0},
		{"", 0},
		{"3M Corp", 'm'},
	}
	for _, c := range cases {
		if got := Initial(c.in); got != c.want {
			t.Errorf("Initial(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEqualFolded(t *testing.T) {
	if !EqualFolded("Michael  Stonebraker", "michael stonebraker") {
		t.Error("expected fold-equal")
	}
	if EqualFolded("Michael", "Michelle") {
		t.Error("expected not equal")
	}
}

// TestAppendNormalizedRunesMatchesNormalize pins the zero-allocation
// normalization path to the string-returning reference implementation:
// for any input, AppendNormalizedRunes must produce exactly the runes of
// Normalize, including appending after existing buffer content.
func TestAppendNormalizedRunesMatchesNormalize(t *testing.T) {
	f := func(s string) bool {
		got := AppendNormalizedRunes(nil, s)
		if string(got) != Normalize(s) {
			return false
		}
		// Appending after a prefix must leave the prefix untouched.
		pre := []rune{'x', 'y'}
		ext := AppendNormalizedRunes(pre, s)
		return string(ext[:2]) == "xy" && string(ext[2:]) == Normalize(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, s := range []string{
		"", "   ", "José  García-Molina ", "ACM SIGMOD\t1978", "ß, Ł, Đ",
	} {
		if got := string(AppendNormalizedRunes(nil, s)); got != Normalize(s) {
			t.Errorf("AppendNormalizedRunes(%q) = %q, want %q", s, got, Normalize(s))
		}
	}
}

// TestEachNGramMatchesNGrams checks that streaming gram emission visits
// exactly the grams NGrams returns, in order.
func TestEachNGramMatchesNGrams(t *testing.T) {
	f := func(s string, n uint8) bool {
		k := int(n%5) + 1
		want := NGrams(s, k)
		var got []string
		EachNGram(s, k, func(g []rune) { got = append(got, string(g)) })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if out := NGrams("ab", 0); out != nil {
		t.Errorf("NGrams(n=0) = %v, want nil", out)
	}
}
