// Package tokenizer provides Unicode-aware tokenization and string
// normalization used throughout the reconciliation pipeline.
//
// All similarity functions in this repository compare *normalized* token
// streams rather than raw strings, so that inconsequential differences in
// case, punctuation, and whitespace never influence a reconciliation
// decision.
package tokenizer

import (
	"strings"
	"sync"
	"unicode"
)

// Normalize lowercases s, folds common diacritics to their ASCII base
// letters, and collapses runs of whitespace into single spaces. It is the
// canonical pre-processing step applied before any string comparison.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := false
	for _, r := range s {
		r = foldRune(r)
		if unicode.IsSpace(r) {
			if !prevSpace && b.Len() > 0 {
				b.WriteByte(' ')
				prevSpace = true
			}
			continue
		}
		prevSpace = false
		b.WriteRune(unicode.ToLower(r))
	}
	return strings.TrimRight(b.String(), " ")
}

// AppendNormalizedRunes appends the normalized runes of s to dst and
// returns the extended slice: exactly the runes of Normalize(s), but
// written into a caller-owned buffer so that hot paths (the strsim
// comparators, n-gram emission) can normalize without allocating a string
// per call.
func AppendNormalizedRunes(dst []rune, s string) []rune {
	start := len(dst)
	prevSpace := false
	for _, r := range s {
		r = foldRune(r)
		if unicode.IsSpace(r) {
			if !prevSpace && len(dst) > start {
				dst = append(dst, ' ')
				prevSpace = true
			}
			continue
		}
		prevSpace = false
		dst = append(dst, unicode.ToLower(r))
	}
	if len(dst) > start && dst[len(dst)-1] == ' ' {
		dst = dst[:len(dst)-1]
	}
	return dst
}

// foldRune maps accented Latin letters onto their unaccented base letter.
// The table covers the Latin-1 supplement and the most common Latin
// Extended-A codepoints, which suffices for the name data this system
// processes. Unknown runes pass through unchanged.
func foldRune(r rune) rune {
	switch {
	case r >= 'À' && r <= 'Å', r >= 'à' && r <= 'å', r == 'Ā', r == 'ā', r == 'Ă', r == 'ă', r == 'Ą', r == 'ą':
		if unicode.IsUpper(r) {
			return 'A'
		}
		return 'a'
	case r == 'Ç', r == 'ç', r == 'Ć', r == 'ć', r == 'Č', r == 'č':
		if unicode.IsUpper(r) {
			return 'C'
		}
		return 'c'
	case r >= 'È' && r <= 'Ë', r >= 'è' && r <= 'ë', r == 'Ē', r == 'ē', r == 'Ė', r == 'ė', r == 'Ę', r == 'ę', r == 'Ě', r == 'ě':
		if unicode.IsUpper(r) {
			return 'E'
		}
		return 'e'
	case r >= 'Ì' && r <= 'Ï', r >= 'ì' && r <= 'ï', r == 'Ī', r == 'ī', r == 'İ':
		if unicode.IsUpper(r) {
			return 'I'
		}
		return 'i'
	case r == 'Ñ', r == 'ñ', r == 'Ń', r == 'ń', r == 'Ň', r == 'ň':
		if unicode.IsUpper(r) {
			return 'N'
		}
		return 'n'
	case r >= 'Ò' && r <= 'Ö', r >= 'ò' && r <= 'ö', r == 'Ø', r == 'ø', r == 'Ō', r == 'ō':
		if unicode.IsUpper(r) {
			return 'O'
		}
		return 'o'
	case r >= 'Ù' && r <= 'Ü', r >= 'ù' && r <= 'ü', r == 'Ū', r == 'ū', r == 'Ů', r == 'ů':
		if unicode.IsUpper(r) {
			return 'U'
		}
		return 'u'
	case r == 'Ý', r == 'ý', r == 'ÿ', r == 'Ÿ':
		if unicode.IsUpper(r) {
			return 'Y'
		}
		return 'y'
	case r == 'Š', r == 'š', r == 'Ś', r == 'ś':
		if unicode.IsUpper(r) {
			return 'S'
		}
		return 's'
	case r == 'Ž', r == 'ž', r == 'Ź', r == 'ź', r == 'Ż', r == 'ż':
		if unicode.IsUpper(r) {
			return 'Z'
		}
		return 'z'
	case r == 'ß':
		return 's' // approximate; good enough for matching
	case r == 'Ł', r == 'ł':
		if unicode.IsUpper(r) {
			return 'L'
		}
		return 'l'
	case r == 'Đ', r == 'đ':
		if unicode.IsUpper(r) {
			return 'D'
		}
		return 'd'
	}
	return r
}

// Words splits s into normalized alphanumeric tokens. Any rune that is not
// a letter or digit acts as a separator. Empty input yields a nil slice.
// All tokens share one backing string, so the call costs a constant number
// of allocations instead of one per token.
func Words(s string) []string {
	var b strings.Builder
	b.Grow(len(s))
	var bounds []int // flattened (start, end) byte-offset pairs
	inTok := false
	for _, r := range s {
		r = foldRune(r)
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if !inTok {
				bounds = append(bounds, b.Len())
				inTok = true
			}
			b.WriteRune(unicode.ToLower(r))
		} else if inTok {
			bounds = append(bounds, b.Len())
			inTok = false
		}
	}
	if inTok {
		bounds = append(bounds, b.Len())
	}
	if len(bounds) == 0 {
		return nil
	}
	backing := b.String()
	out := make([]string, 0, len(bounds)/2)
	for i := 0; i < len(bounds); i += 2 {
		out = append(out, backing[bounds[i]:bounds[i+1]])
	}
	return out
}

// stopwords are tokens carrying essentially no discriminative power in
// publication titles and venue names. They are removed by ContentWords.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "as": true, "at": true,
	"by": true, "for": true, "from": true, "in": true, "into": true,
	"of": true, "on": true, "or": true, "the": true, "to": true,
	"with": true, "via": true,
}

// IsStopword reports whether the (already normalized) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// ContentWords returns Words(s) with stopwords removed. If every token is a
// stopword, the full token list is returned instead so that short strings
// like "of" are still comparable.
func ContentWords(s string) []string {
	ws := Words(s)
	out := ws[:0:0]
	for _, w := range ws {
		if !stopwords[w] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return ws
	}
	return out
}

// runeBufPool recycles the padded normalization buffers behind EachNGram;
// after warm-up, n-gram emission performs zero steady-state allocations.
var runeBufPool = sync.Pool{New: func() any { return new([]rune) }}

// EachNGram invokes fn for every character n-gram of the normalized form
// of s, including the leading and trailing '#'-padded grams, in order. The
// gram slice is a window into a pooled buffer: it is valid only for the
// duration of the callback and must be copied to be retained. EachNGram
// itself allocates nothing in steady state; it is the zero-allocation core
// that NGrams and the n-gram comparators are built on.
func EachNGram(s string, n int, fn func(gram []rune)) {
	if n <= 0 {
		return
	}
	bp := runeBufPool.Get().(*[]rune)
	buf := (*bp)[:0]
	for i := 0; i < n-1; i++ {
		buf = append(buf, '#')
	}
	mark := len(buf)
	buf = AppendNormalizedRunes(buf, s)
	if len(buf) > mark {
		for i := 0; i < n-1; i++ {
			buf = append(buf, '#')
		}
		for i := 0; i+n <= len(buf); i++ {
			fn(buf[i : i+n])
		}
	}
	*bp = buf
	runeBufPool.Put(bp)
}

// NGrams returns the character n-grams of the normalized form of s,
// including leading and trailing padded grams (using '#') so that string
// boundaries contribute evidence. For n <= 0 or an empty string it returns
// nil.
func NGrams(s string, n int) []string {
	var out []string
	EachNGram(s, n, func(g []rune) { out = append(out, string(g)) })
	return out
}

// Initial returns the first letter of the normalized token, or 0 if the
// token has no letters.
func Initial(tok string) rune {
	for _, r := range Normalize(tok) {
		if unicode.IsLetter(r) {
			return r
		}
	}
	return 0
}

// EqualFolded reports whether two strings are identical after Normalize.
func EqualFolded(a, b string) bool { return Normalize(a) == Normalize(b) }
