// Package pim generates synthetic personal-information datasets shaped
// like the four private desktop corpora of §5.1, which are not publicly
// available. The generator builds a ground-truth world — person entities
// with country-styled names, multiple email accounts and name variants,
// articles with author cliques, venues with alias sets — then renders raw
// email headers and BibTeX text and runs them through the real extractors
// (package extract), labeling each produced reference with its gold
// entity. Every phenomenon the paper's evaluation discusses is generated
// deliberately: name/email presentation variety (dataset A), short
// overlapping Chinese names (dataset C), the owner's last-name and
// email-account change (dataset D), and mailing lists.
package pim

// Name pools. The paper stresses that its dataset owners come from
// different countries (China, India, USA) because "names and email
// addresses of persons from these countries have very different
// characteristics" — so the pools are styled per region.

var usFirst = []string{
	"James", "John", "Robert", "Michael", "William", "David", "Richard",
	"Joseph", "Thomas", "Charles", "Christopher", "Daniel", "Matthew",
	"Anthony", "Donald", "Mark", "Paul", "Steven", "Andrew", "Kenneth",
	"George", "Joshua", "Kevin", "Brian", "Edward", "Ronald", "Timothy",
	"Jason", "Jeffrey", "Ryan", "Jacob", "Gary", "Nicholas", "Eric",
	"Stephen", "Jonathan", "Larry", "Justin", "Scott", "Brandon",
	"Mary", "Patricia", "Jennifer", "Linda", "Elizabeth", "Barbara",
	"Susan", "Jessica", "Sarah", "Karen", "Nancy", "Lisa", "Margaret",
	"Betty", "Sandra", "Ashley", "Dorothy", "Kimberly", "Emily", "Donna",
	"Michelle", "Carol", "Amanda", "Melissa", "Deborah", "Stephanie",
	"Rebecca", "Laura", "Sharon", "Cynthia", "Kathleen", "Amy", "Shirley",
	"Angela", "Helen", "Anna", "Brenda", "Pamela", "Nicole", "Samantha",
}

var usLast = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Taylor", "Moore", "Jackson", "Martin", "Lee",
	"Perez", "Thompson", "White", "Harris", "Sanchez", "Clark", "Ramirez",
	"Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
	"Scott", "Torres", "Nguyen", "Hill", "Flores", "Green", "Adams",
	"Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell", "Carter",
	"Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker",
	"Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris", "Morales",
	"Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper",
	"Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos", "Kim",
	"Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez", "Wood",
	"James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes", "Price",
	"Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long", "Ross",
	"Foster", "Jimenez", "Powell", "Jenkins", "Perry", "Russell",
	"Sullivan", "Bell", "Coleman", "Butler", "Henderson", "Barnes",
	"Fisher", "Vasquez", "Simmons", "Romero", "Jordan", "Patterson",
}

// Synthetic surname syllables: real populations have tens of thousands of
// surnames, so at paper scale the pool must keep growing or full-name
// collisions (two real "Barbara Taylor"s) swamp precision in a way the
// paper's data did not exhibit. Combining prefixes and suffixes yields
// ~900 additional plausible surnames ("Ashbrook", "Morfield").
var (
	surnamePrefixes = []string{
		"Ash", "Black", "Brook", "Clay", "Cross", "Deer", "East", "Fair",
		"Glen", "Gold", "Gray", "Haw", "Hart", "Hazel", "High", "Kirk",
		"Lock", "Mar", "Mill", "Mor", "North", "Oak", "Ray", "Red",
		"Rock", "Shel", "Stan", "Stone", "Thorn", "West", "Whit", "Wood",
	}
	surnameSuffixes = []string{
		"borne", "bridge", "brook", "burn", "bury", "by", "combe",
		"croft", "dale", "don", "field", "ford", "gate", "ham", "hill",
		"holm", "hurst", "land", "leigh", "ley", "man", "mere", "mont",
		"more", "ridge", "shaw", "stead", "ston", "ton", "wick", "win",
		"worth",
	}
)

// twoSyllableGiven are pinyin syllables composed into two-syllable given
// names ("Xiaoming"); most Chinese given names in professional address
// books are two-syllable, which keeps them distinctive. Dataset C
// deliberately prefers the short single-syllable pool instead.
var chineseGivenSyllables = []string{
	"xiao", "jian", "wei", "ming", "hong", "li", "hua", "jun", "yan",
	"feng", "guo", "zhi", "qing", "mei", "lin", "dong", "sheng", "yu",
	"chun", "bao",
}

var chineseLast = []string{
	"Li", "Wang", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu",
	"Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu", "Guo", "He", "Gao", "Lin",
	"Luo", "Zheng", "Liang", "Xie", "Tang", "Han", "Cao", "Deng", "Feng",
	"Zeng", "Peng", "Xiao", "Cai", "Pan", "Tian", "Dong", "Yuan", "Yu",
	"Ye", "Du", "Su", "Wei", "Cheng", "Lu", "Ding", "Ren", "Yao", "Shen",
}

var chineseFirst = []string{
	"Wei", "Min", "Jun", "Lei", "Hua", "Ming", "Jing", "Li", "Yan",
	"Fang", "Hui", "Ying", "Na", "Xin", "Yu", "Ping", "Gang", "Bo",
	"Hong", "Tao", "Chao", "Qiang", "Bin", "Peng", "Fei", "Hao", "Kai",
	"Xiang", "Dan", "Juan", "Xia", "Mei", "Lan", "Qing", "Rui", "Song",
	"Ting", "Xue", "Zhen", "Ling",
}

var indianLast = []string{
	"Sharma", "Verma", "Gupta", "Kumar", "Singh", "Patel", "Reddy",
	"Nair", "Menon", "Iyer", "Rao", "Mehta", "Joshi", "Desai", "Shah",
	"Agarwal", "Banerjee", "Chatterjee", "Mukherjee", "Das", "Bose",
	"Ghosh", "Kapoor", "Malhotra", "Chopra", "Bhatt", "Trivedi",
	"Srinivasan", "Krishnan", "Subramanian", "Venkatesan", "Raman",
	"Pillai", "Naidu", "Chandra", "Mishra", "Pandey", "Tiwari", "Saxena",
}

var indianFirst = []string{
	"Amit", "Rahul", "Sanjay", "Vijay", "Rajesh", "Suresh", "Ramesh",
	"Anil", "Sunil", "Ashok", "Arun", "Vinod", "Prakash", "Ravi",
	"Deepak", "Manoj", "Ajay", "Vivek", "Nitin", "Rakesh", "Priya",
	"Anjali", "Sunita", "Kavita", "Neha", "Pooja", "Meera", "Lakshmi",
	"Divya", "Anita", "Shweta", "Rekha", "Geeta", "Asha", "Usha",
	"Jayant", "Madhavan", "Srikanth", "Venkat", "Kiran",
}

// Email servers. Each person gets at most one account per server
// (constraint 3 of §5.3 is true in the generated world, except where a
// profile deliberately violates it).
var domains = []string{
	"cs.washington.edu", "berkeley.edu", "csail.mit.edu", "stanford.edu",
	"cs.wisc.edu", "cornell.edu", "cmu.edu", "umich.edu", "gatech.edu",
	"ucla.edu", "utexas.edu", "columbia.edu", "gmail.com", "yahoo.com",
	"hotmail.com", "acm.org", "research.ibm.com", "microsoft.com",
	"bell-labs.com", "hp.com",
}

// venueSpec is a ground-truth venue with its alias presentations.
type venueSpec struct {
	canonical string
	aliases   []string
	location  string
}

var venuePool = []venueSpec{
	{"ACM SIGMOD International Conference on Management of Data",
		[]string{"SIGMOD", "ACM SIGMOD", "Proc. SIGMOD", "SIGMOD Conference", "ACM Conference on Management of Data"},
		"San Diego, California"},
	{"International Conference on Very Large Data Bases",
		[]string{"VLDB", "Proc. VLDB", "VLDB Conference", "Very Large Data Bases"},
		"Rome, Italy"},
	{"IEEE International Conference on Data Engineering",
		[]string{"ICDE", "Proc. ICDE", "Data Engineering", "IEEE Data Engineering"},
		"Tokyo, Japan"},
	{"ACM Symposium on Principles of Database Systems",
		[]string{"PODS", "Proc. PODS", "Principles of Database Systems"},
		"Seattle, Washington"},
	{"ACM Transactions on Database Systems",
		[]string{"TODS", "ACM TODS", "Trans. Database Syst."},
		""},
	{"The VLDB Journal",
		[]string{"VLDB Journal", "VLDB J."},
		""},
	{"IEEE Transactions on Knowledge and Data Engineering",
		[]string{"TKDE", "IEEE TKDE", "Trans. Knowl. Data Eng."},
		""},
	{"International Conference on Database Theory",
		[]string{"ICDT", "Proc. ICDT", "Database Theory"},
		"London, United Kingdom"},
	{"Conference on Innovative Data Systems Research",
		[]string{"CIDR", "Proc. CIDR"},
		"Asilomar, California"},
	{"ACM SIGKDD Conference on Knowledge Discovery and Data Mining",
		[]string{"KDD", "SIGKDD", "Proc. KDD", "Knowledge Discovery and Data Mining"},
		"Boston, Massachusetts"},
	{"International World Wide Web Conference",
		[]string{"WWW", "Proc. WWW", "World Wide Web Conference"},
		"Budapest, Hungary"},
	{"Symposium on Operating Systems Design and Implementation",
		[]string{"OSDI", "Proc. OSDI", "Operating Systems Design and Implementation"},
		"Boston, Massachusetts"},
	{"ACM Symposium on Theory of Computing",
		[]string{"STOC", "Proc. STOC", "Theory of Computing"},
		"Montreal, Canada"},
	{"IEEE Symposium on Foundations of Computer Science",
		[]string{"FOCS", "Proc. FOCS", "Foundations of Computer Science"},
		"Las Vegas, Nevada"},
	{"ACM-SIAM Symposium on Discrete Algorithms",
		[]string{"SODA", "Proc. SODA", "Discrete Algorithms"},
		"San Francisco, California"},
	{"Journal of the ACM",
		[]string{"JACM", "J. ACM"},
		""},
	{"Communications of the ACM",
		[]string{"CACM", "Commun. ACM"},
		""},
	{"International Conference on Machine Learning",
		[]string{"ICML", "Proc. ICML", "Machine Learning Conference"},
		"Banff, Canada"},
	{"Conference on Neural Information Processing Systems",
		[]string{"NIPS", "Proc. NIPS", "Neural Information Processing"},
		"Vancouver, Canada"},
	{"USENIX Annual Technical Conference",
		[]string{"USENIX ATC", "USENIX", "Proc. USENIX"},
		"Anaheim, California"},
}

// Title vocabulary: titles are built as "<gerund> <adjective> <noun> <tail>"
// so that distinct articles share common words (stressing TF-IDF weighting)
// while remaining distinguishable.
var (
	titleGerunds = []string{
		"Optimizing", "Indexing", "Querying", "Mining", "Scaling",
		"Caching", "Partitioning", "Replicating", "Scheduling",
		"Streaming", "Sampling", "Compressing", "Materializing",
		"Approximating", "Synthesizing", "Learning", "Ranking",
		"Clustering", "Profiling", "Tuning", "Verifying", "Auditing",
		"Sharding", "Buffering", "Normalizing", "Encrypting",
		"Federating", "Summarizing", "Prefetching", "Snapshotting",
	}
	titleAdjectives = []string{
		"distributed", "parallel", "adaptive", "incremental", "secure",
		"probabilistic", "declarative", "semistructured", "relational",
		"temporal", "spatial", "federated", "heterogeneous", "scalable",
		"transactional", "versioned", "columnar", "mobile", "streaming",
		"uncertain",
	}
	titleNouns = []string{
		"query plans", "join algorithms", "view maintenance", "B-trees",
		"data warehouses", "schema mappings", "record linkage",
		"data streams", "XML repositories", "sensor networks",
		"key-value stores", "transaction logs", "access paths",
		"integrity constraints", "materialized views", "data cubes",
		"text indexes", "graph databases", "workload traces",
		"storage engines", "hash tables", "bloom filters",
		"write-ahead logs", "buffer pools", "lock managers",
		"histogram estimators", "bitmap indexes", "range scans",
		"skyline queries", "top-k rankings", "provenance graphs",
		"entity resolvers", "duplicate detectors", "change feeds",
		"snapshot isolation", "consensus protocols", "gossip layers",
		"query rewrites", "cost models", "cardinality estimates",
	}
	titleTails = []string{
		"in large-scale systems", "for web applications",
		"with bounded memory", "under skewed workloads",
		"on modern hardware", "for data integration",
		"with provable guarantees", "in peer-to-peer networks",
		"for scientific workloads", "over encrypted data",
		"with user feedback", "in the presence of failures",
		"at interactive speeds", "for personal information management",
		"with limited bandwidth", "using machine learning",
	}
)

// cities hosts conference editions: each (venue, year) edition gets its
// own deterministic city, as real conferences move every year. Without
// this, adjacent editions of one venue would be indistinguishable and
// off-by-one year noise would chain every edition into one cluster.
var cities = []string{
	"San Diego, California", "Rome, Italy", "Tokyo, Japan",
	"Seattle, Washington", "Boston, Massachusetts", "Asilomar, California",
	"Budapest, Hungary", "Montreal, Canada", "Las Vegas, Nevada",
	"San Francisco, California", "Banff, Canada", "Vancouver, Canada",
	"Anaheim, California", "Paris, France", "Athens, Greece",
	"Cairo, Egypt", "Edinburgh, Scotland", "Hong Kong, China",
	"Bombay, India", "Zurich, Switzerland", "Santiago, Chile",
	"New York, New York", "Dallas, Texas", "Tucson, Arizona",
	"Minneapolis, Minnesota", "Washington, DC", "Philadelphia, Pennsylvania",
	"Portland, Oregon", "Denver, Colorado", "Baltimore, Maryland",
}

// editionLocation returns the city of one venue edition; journals (venues
// whose spec has no location) have none.
func editionLocation(venueIdx, year int) string {
	if venuePool[venueIdx].location == "" {
		return ""
	}
	return cities[(venueIdx*7+year)%len(cities)]
}

// mailingListNames seed the pseudo-person list entities.
var mailingListNames = []string{
	"dbgroup", "systems-seminar", "faculty-all", "grads", "reading-group",
	"colloquium", "sigmod-announce", "lab-social",
}
