package pim

import (
	"testing"

	"refrecon/internal/schema"
)

func TestGenerateValidates(t *testing.T) {
	for _, p := range Profiles(0.05) {
		g, err := Generate(p)
		if err != nil {
			t.Fatalf("dataset %s: %v", p.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("dataset %s invalid: %v", p.Name, err)
		}
		if g.Store.Len() == 0 {
			t.Errorf("dataset %s empty", p.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, err := Generate(DatasetA(0.05))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(DatasetA(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Store.Len() != g2.Store.Len() {
		t.Fatalf("nondeterministic sizes: %d vs %d", g1.Store.Len(), g2.Store.Len())
	}
	for i := 0; i < g1.Store.Len(); i++ {
		r1 := g1.Store.All()[i]
		r2 := g2.Store.All()[i]
		if r1.Class != r2.Class || r1.Entity != r2.Entity || r1.String() != r2.String() {
			t.Fatalf("reference %d differs: %v vs %v", i, r1, r2)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	g, err := Generate(DatasetA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	store := g.Store
	persons := len(store.ByClass(schema.ClassPerson))
	articles := len(store.ByClass(schema.ClassArticle))
	venues := len(store.ByClass(schema.ClassVenue))
	if persons == 0 || articles == 0 || venues == 0 {
		t.Fatalf("classes missing: %d/%d/%d", persons, articles, venues)
	}
	// Every reference must be labeled.
	entities := make(map[string]int)
	for _, r := range store.All() {
		if r.Entity == "" {
			t.Fatalf("unlabeled reference: %v", r)
		}
		if r.Class == schema.ClassPerson {
			entities[r.Entity]++
		}
	}
	// The reference-to-entity ratio should be well above 1 (the paper's
	// Table 1 averages 11.8; at small scale we accept anything >= 2).
	ratio := float64(persons) / float64(len(entities))
	if ratio < 2 {
		t.Errorf("person ref/entity ratio = %.1f, want >= 2", ratio)
	}
	// The owner must be the most-referenced person.
	if n := entities["P00000"]; n < 5 {
		t.Errorf("owner has only %d references", n)
	}
	// Both sources must be represented.
	bySource := make(map[string]int)
	for _, id := range store.ByClass(schema.ClassPerson) {
		bySource[store.Get(id).Source]++
	}
	if bySource["email"] == 0 || bySource["bibtex"] == 0 {
		t.Errorf("sources = %v", bySource)
	}
}

func TestDatasetDOwnerNameChange(t *testing.T) {
	g, err := Generate(DatasetD(0.1))
	if err != nil {
		t.Fatal(err)
	}
	// Collect the owner's distinct email servers and surnames: the change
	// must yield two different accounts on one shared server.
	accounts := make(map[string]bool)
	for _, id := range g.Store.ByClass(schema.ClassPerson) {
		r := g.Store.Get(id)
		if r.Entity != "P00000" {
			continue
		}
		for _, e := range r.Atomic(schema.AttrEmail) {
			accounts[e] = true
		}
	}
	servers := make(map[string][]string)
	for a := range accounts {
		for i := len(a) - 1; i >= 0; i-- {
			if a[i] == '@' {
				servers[a[i+1:]] = append(servers[a[i+1:]], a[:i])
				break
			}
		}
	}
	conflicted := false
	for _, locals := range servers {
		if len(locals) > 1 {
			conflicted = true
		}
	}
	if !conflicted {
		t.Error("dataset D owner should have two accounts on one server")
	}
}

func TestDatasetCNameCollisions(t *testing.T) {
	g, err := Generate(DatasetC(0.2))
	if err != nil {
		t.Fatal(err)
	}
	// There must exist two distinct entities sharing an exact full name.
	nameToEntity := make(map[string]map[string]bool)
	for _, id := range g.Store.ByClass(schema.ClassPerson) {
		r := g.Store.Get(id)
		for _, n := range r.Atomic(schema.AttrName) {
			if nameToEntity[n] == nil {
				nameToEntity[n] = make(map[string]bool)
			}
			nameToEntity[n][r.Entity] = true
		}
	}
	collision := false
	for _, ents := range nameToEntity {
		if len(ents) > 1 {
			collision = true
			break
		}
	}
	if !collision {
		t.Error("dataset C should contain exact-name collisions")
	}
}

func TestScaledCounts(t *testing.T) {
	p := DatasetA(0.5)
	if got := p.scaled(1000); got != 500 {
		t.Errorf("scaled(1000) at 0.5 = %d", got)
	}
	p.Scale = 0
	if got := p.scaled(1000); got != 1000 {
		t.Errorf("scale 0 should mean 1.0: %d", got)
	}
	p.Scale = 0.0001
	if got := p.scaled(10); got != 1 {
		t.Errorf("tiny scale should clamp to 1: %d", got)
	}
}
