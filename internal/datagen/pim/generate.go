package pim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"refrecon/internal/extract"
	"refrecon/internal/names"
	"refrecon/internal/reference"
)

// Generated is a synthetic dataset: a labeled reference store plus the
// ground-truth entity counts.
type Generated struct {
	Profile Profile
	Store   *reference.Store
	// Entity counts in the generated world. The number of *referenced*
	// entities can be lower; use metrics.Report.Entities for evaluation.
	Persons, Articles, Venues int
}

type account struct{ local, domain string }

func (a account) key() string { return a.local + "@" + a.domain }

// entity is one ground-truth person (or mailing list).
type entity struct {
	label    string
	region   Region
	first    string
	middle   string // initial or ""
	last     string
	nick     string
	isList   bool
	author   bool
	variants []string
	accounts []account
	circle   []int

	// Post-name-change state (dataset D's owner only).
	changed         bool
	changedVariants []string
	changedAccounts []account
}

type articleEntity struct {
	label   string
	title   string
	year    int
	pages   string
	authors []int // entity indexes
	venue   int   // venuePool index
}

// Generate builds the world described by the profile, renders its raw
// email and BibTeX corpora, runs them through the extractors, and labels
// every extracted reference with its ground-truth entity.
func Generate(p Profile) (*Generated, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	w := &world{p: p, rng: rng, usedAccounts: make(map[string]bool), usedTitles: make(map[string]bool)}
	w.buildPersons()
	w.buildArticles()
	// Circles are built after articles so that co-authors end up in each
	// other's email circles: the paper's Contact evidence ("common people
	// appearing in the coauthor or email-contact lists") only exists when
	// collaboration and correspondence correlate.
	w.buildCircles()

	store := reference.NewStore()
	acc := extract.NewAccumulator(store)
	if err := w.renderBibliography(acc); err != nil {
		return nil, err
	}
	if err := w.renderMail(acc); err != nil {
		return nil, err
	}
	venues := make(map[int]bool)
	for _, a := range w.articles {
		venues[a.venue] = true
	}
	return &Generated{
		Profile:  p,
		Store:    store,
		Persons:  len(w.persons),
		Articles: len(w.articles),
		Venues:   len(venues),
	}, nil
}

type world struct {
	p   Profile
	rng *rand.Rand

	persons      []*entity
	articles     []*articleEntity
	usedAccounts map[string]bool
	usedTitles   map[string]bool
}

func (w *world) pick(pool []string) string { return pool[w.rng.Intn(len(pool))] }

func (w *world) region() Region {
	weights := w.p.RegionWeights
	if len(weights) == 0 {
		return US
	}
	total := 0.0
	for _, v := range weights {
		total += v
	}
	x := w.rng.Float64() * total
	for _, r := range []Region{US, Chinese, Indian} {
		x -= weights[r]
		if x < 0 {
			return r
		}
	}
	return US
}

func (w *world) buildPersons() {
	n := w.p.scaled(w.p.Persons)
	for i := 0; i < n; i++ {
		e := &entity{label: fmt.Sprintf("P%05d", i), region: w.region()}
		w.nameFor(e)
		if w.p.NameCollisionRate > 0 && i > 10 && w.rng.Float64() < w.p.NameCollisionRate {
			// Deliberate exact-name collision with an earlier person
			// (dataset C's short overlapping names).
			other := w.persons[w.rng.Intn(i)]
			if !other.isList {
				e.first, e.middle, e.last, e.nick, e.region = other.first, other.middle, other.last, other.nick, other.region
			}
		}
		e.accounts = w.accountsFor(e, 0)
		e.variants = w.variantsFor(e.first, e.middle, e.last, e.nick)
		w.persons = append(w.persons, e)
	}
	// The owner is the first person and, in dataset D, changes her last
	// name and opens a new account on the same server as her primary one.
	if w.p.OwnerNameChange {
		owner := w.persons[0]
		owner.changed = true
		newLast := w.pick(lastPool(owner.region))
		for newLast == owner.last {
			newLast = w.pick(lastPool(owner.region))
		}
		owner.changedVariants = w.variantsFor(owner.first, owner.middle, newLast, owner.nick)
		server := owner.accounts[0].domain
		local := w.freshLocal(owner.first, newLast, server)
		owner.changedAccounts = []account{{local, server}}
	}
	// Mailing lists are pseudo-persons with a list account and no real
	// name variants.
	for i := 0; i < w.p.scaled(w.p.MailingLists); i++ {
		name := mailingListNames[i%len(mailingListNames)]
		e := &entity{
			label:  fmt.Sprintf("L%03d", i),
			isList: true,
			first:  name,
		}
		dom := w.pick(domains)
		local := name
		if w.usedAccounts[local+"@"+dom] {
			local = fmt.Sprintf("%s%d", name, i)
		}
		w.usedAccounts[local+"@"+dom] = true
		e.accounts = []account{{local, dom}}
		e.variants = []string{titleCase(strings.ReplaceAll(name, "-", " "))}
		w.persons = append(w.persons, e)
	}
}

func firstPool(r Region) []string {
	switch r {
	case Chinese:
		return chineseFirst
	case Indian:
		return indianFirst
	default:
		return usFirst
	}
}

func lastPool(r Region) []string {
	switch r {
	case Chinese:
		return chineseLast
	case Indian:
		return indianLast
	default:
		return usLast
	}
}

func (w *world) nameFor(e *entity) {
	e.first = w.pick(firstPool(e.region))
	e.last = w.pick(lastPool(e.region))
	switch e.region {
	case US:
		// The surname space must keep growing with the population, as
		// real populations' do; otherwise a paper-scale dataset saturates
		// the pool and full-name collisions (two real "Barbara Taylor"s)
		// swamp precision. Half the surnames are synthetic compounds, and
		// some people hyphenate.
		if w.rng.Float64() < 0.5 {
			e.last = titleCase(w.pick(surnamePrefixes) + w.pick(surnameSuffixes))
		}
		if w.rng.Float64() < 0.10 {
			second := w.pick(usLast)
			if second != e.last {
				e.last = e.last + "-" + second
			}
		}
		if w.rng.Float64() < 0.35 {
			e.middle = string(w.pick(usFirst)[0])
		}
		e.nick = names.Nickname(strings.ToLower(e.first))
	case Chinese:
		// Most given names are two-syllable ("Xiaoming") and distinctive;
		// dataset C lowers TwoSyllableGiven to flood the corpus with the
		// short, heavily shared single-syllable names its owner's address
		// book had.
		if w.rng.Float64() < w.p.TwoSyllableGiven {
			a := w.pick(chineseGivenSyllables)
			b := w.pick(chineseGivenSyllables)
			if a != b {
				e.first = titleCase(a + b)
			}
		}
	}
}

// accountsFor assigns 1-2 accounts on distinct servers.
func (w *world) accountsFor(e *entity, extra int) []account {
	count := 1 + extra
	if w.rng.Float64() < w.p.SecondAccountRate {
		count++
	}
	var out []account
	usedDomains := make(map[string]bool)
	for len(out) < count {
		dom := w.pick(domains)
		if usedDomains[dom] {
			continue
		}
		usedDomains[dom] = true
		out = append(out, account{w.freshLocal(e.first, e.last, dom), dom})
	}
	return out
}

// handleWords seed opaque account names that carry no name information
// ("falcon7@..."): references presenting only such an account must be
// reconciled through contacts or enrichment, never through the
// name-vs-email comparator.
var handleWords = []string{
	"falcon", "wizard", "tiger", "comet", "raven", "orion", "zephyr",
	"puma", "lotus", "ember", "quartz", "nimbus",
}

// freshLocal derives a globally-unique account name from a person's name
// (or an opaque handle, for a fraction of accounts).
func (w *world) freshLocal(first, last, domain string) string {
	if w.rng.Float64() < 0.18 {
		for i := 0; i < 50; i++ {
			cand := fmt.Sprintf("%s%d", handleWords[w.rng.Intn(len(handleWords))], w.rng.Intn(100))
			if !w.usedAccounts[cand+"@"+domain] {
				w.usedAccounts[cand+"@"+domain] = true
				return cand
			}
		}
	}
	f := strings.ToLower(first)
	l := strings.ToLower(last)
	patterns := []string{
		l,
		f + "." + l,
		string(f[0]) + l,
		f + l,
		f + "_" + l,
		f,
	}
	start := w.rng.Intn(len(patterns))
	for i := 0; i < len(patterns); i++ {
		cand := patterns[(start+i)%len(patterns)]
		if !w.usedAccounts[cand+"@"+domain] {
			w.usedAccounts[cand+"@"+domain] = true
			return cand
		}
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", patterns[start], i)
		if !w.usedAccounts[cand+"@"+domain] {
			w.usedAccounts[cand+"@"+domain] = true
			return cand
		}
	}
}

// variantsFor produces the distinct name presentations a person uses.
// The full name and the comma-initial citation form always exist; the rest
// are sampled up to the profile's NameVariety, optionally with a typo.
func (w *world) variantsFor(first, middle, last, nick string) []string {
	fi := string(first[0])
	full := first + " " + last
	if middle != "" && w.rng.Float64() < 0.5 {
		full = first + " " + middle + ". " + last
	}
	commaInitial := last + ", " + fi + "."
	if middle != "" {
		commaInitial = last + ", " + fi + "." + middle + "."
	}
	candidates := []string{
		fi + ". " + last,
		last + ", " + first,
		first,
	}
	if nick != "" {
		candidates = append(candidates, titleCase(nick)+" "+last, titleCase(nick))
	}
	out := []string{full, commaInitial}
	w.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	for _, c := range candidates {
		if len(out) >= w.p.NameVariety {
			break
		}
		out = append(out, c)
	}
	if w.p.TypoRate > 0 && w.rng.Float64() < w.p.TypoRate*4 {
		out = append(out, typo(w.rng, full))
	}
	return out
}

// typo swaps two adjacent interior letters.
func typo(rng *rand.Rand, s string) string {
	rs := []rune(s)
	if len(rs) < 4 {
		return s
	}
	i := 1 + rng.Intn(len(rs)-3)
	if rs[i] == ' ' || rs[i+1] == ' ' {
		i = 1
	}
	rs[i], rs[i+1] = rs[i+1], rs[i]
	return string(rs)
}

// buildCircles assigns everyone a contact circle. The world is
// owner-centric (the owner is in every circle) and collaboration-driven:
// a person's co-authors come first, then random acquaintances.
func (w *world) buildCircles() {
	real := 0
	for _, e := range w.persons {
		if !e.isList {
			real++
		}
	}
	coauthors := make(map[int]map[int]bool)
	for _, a := range w.articles {
		for _, x := range a.authors {
			for _, y := range a.authors {
				if x != y {
					if coauthors[x] == nil {
						coauthors[x] = make(map[int]bool)
					}
					coauthors[x][y] = true
				}
			}
		}
	}
	for i, e := range w.persons {
		if e.isList {
			continue
		}
		size := w.p.CircleSize
		if size < 2 {
			size = 2
		}
		seen := map[int]bool{i: true}
		add := func(j int) {
			if !seen[j] {
				seen[j] = true
				e.circle = append(e.circle, j)
			}
		}
		if i != 0 {
			add(0) // the owner
		}
		co := make([]int, 0, len(coauthors[i]))
		for j := range coauthors[i] {
			co = append(co, j)
		}
		sort.Ints(co) // map order must not leak into the deterministic corpus
		for _, j := range co {
			add(j)
		}
		for len(e.circle) < size {
			j := w.rng.Intn(real)
			if seen[j] {
				if len(seen) >= real {
					break
				}
				continue
			}
			add(j)
		}
	}
}

func (w *world) buildArticles() {
	n := w.p.scaled(w.p.Articles)
	var authors []int
	cut := int(w.p.AuthorFraction * float64(len(w.persons)))
	if cut < 4 {
		cut = min(4, len(w.persons))
	}
	for i := 0; i < len(w.persons) && len(authors) < cut; i++ {
		if !w.persons[i].isList {
			w.persons[i].author = true
			authors = append(authors, i)
		}
	}
	for i := 0; i < n; i++ {
		a := &articleEntity{
			label: fmt.Sprintf("A%05d", i),
			year:  1990 + w.rng.Intn(15),
			venue: w.rng.Intn(len(venuePool)),
		}
		start := 100 + w.rng.Intn(800)
		a.pages = fmt.Sprintf("%d-%d", start, start+5+w.rng.Intn(25))
		// Distinct articles must not share too much title vocabulary, or
		// the corpus becomes adversarially harder than real bibliographies
		// (the paper's bibtex data is "very well curated"): the
		// (gerund, noun) pair — the title's distinctive core — is unique
		// per article.
		for attempt := 0; ; attempt++ {
			g, n := w.pick(titleGerunds), w.pick(titleNouns)
			if attempt > 50 {
				// Combination space exhausted at large scales: disambiguate
				// with an explicit part number, as real paper series do.
				n = fmt.Sprintf("%s (part %d)", n, i)
			}
			core := g + "|" + n
			if w.usedTitles[core] {
				continue
			}
			w.usedTitles[core] = true
			a.title = fmt.Sprintf("%s %s %s %s", g, w.pick(titleAdjectives), n, w.pick(titleTails))
			break
		}
		count := 1 + w.rng.Intn(3)
		seen := make(map[int]bool)
		for len(a.authors) < count {
			j := authors[w.rng.Intn(len(authors))]
			if !seen[j] {
				seen[j] = true
				a.authors = append(a.authors, j)
			}
		}
		w.articles = append(w.articles, a)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
