package pim

// Region styles a person's name.
type Region int

const (
	// US names: long pool of first and last names, nicknames, middle
	// initials.
	US Region = iota
	// Chinese names: short pinyin given names over a small surname pool —
	// heavy overlap, the reconciliation difficulty the paper reports for
	// dataset C.
	Chinese
	// Indian names: long given and family names.
	Indian
)

// Profile parameterizes one synthetic dataset. Counts are specified at
// scale 1.0 and multiplied by Scale.
type Profile struct {
	// Name labels the dataset ("A".."D" for the paper profiles).
	Name string
	// Seed makes generation deterministic.
	Seed int64
	// Scale multiplies Persons, Messages, Articles, and MailingLists.
	Scale float64

	// Persons is the number of real person entities (the owner included).
	Persons int
	// RegionWeights gives the sampling mix of name styles.
	RegionWeights map[Region]float64
	// NameVariety is the maximum number of distinct name presentations a
	// person uses across the corpus (dataset A is the high-variety one).
	NameVariety int
	// TypoRate is the probability that a rendered name carries a typo.
	TypoRate float64
	// SecondAccountRate is the probability a person has a second email
	// account (on a different server: the generated world obeys
	// constraint 3 except where OwnerNameChange violates it).
	SecondAccountRate float64
	// NoNameRate is the probability a mailbox is rendered without a
	// display name.
	NoNameRate float64
	// NameCollisionRate is the fraction of persons deliberately given the
	// exact name of another person (dataset C's overlap).
	NameCollisionRate float64
	// TwoSyllableGiven is the probability a Chinese given name is a
	// distinctive two-syllable compound rather than a short, heavily
	// shared single syllable (dataset C keeps this low).
	TwoSyllableGiven float64

	// Messages is the number of email messages rendered.
	Messages int
	// CircleSize is the number of frequent contacts per person.
	CircleSize int

	// Articles is the number of real article entities.
	Articles int
	// AuthorFraction is the fraction of persons who author articles.
	AuthorFraction float64
	// MaxCitations bounds how many BibTeX entries cite one article
	// (uniform 1..MaxCitations).
	MaxCitations int
	// TitleNoiseRate is the probability a citation's title is perturbed.
	TitleNoiseRate float64

	// MailingLists is the number of mailing-list pseudo-persons.
	MailingLists int
	// OwnerNameChange makes the owner change her last name and open a new
	// account on the *same* server halfway through the corpus (dataset D:
	// the one world fact that violates constraint 3, causing the
	// paper-reported recall regression under constraints).
	OwnerNameChange bool
}

func (p Profile) scaled(n int) int {
	s := p.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n)*s + 0.5)
	if v < 1 && n > 0 {
		v = 1
	}
	return v
}

// DatasetA is the highest-variety dataset: many name presentations and
// accounts per person. DepGraph's gains are largest here (Table 4: recall
// 0.741 -> 0.999).
func DatasetA(scale float64) Profile {
	return Profile{
		Name: "A", Seed: 0xA, Scale: scale,
		Persons:       1750,
		RegionWeights: map[Region]float64{US: 0.7, Chinese: 0.15, Indian: 0.15},
		NameVariety:   6, TypoRate: 0.04, SecondAccountRate: 0.45, NoNameRate: 0.18,
		TwoSyllableGiven: 0.8,
		Messages:         6000, CircleSize: 9,
		Articles: 700, AuthorFraction: 0.12, MaxCitations: 3, TitleNoiseRate: 0.2,
		MailingLists: 6,
	}
}

// DatasetB is the large, lower-variety dataset (Table 4: both algorithms
// near-perfect, DepGraph slightly ahead).
func DatasetB(scale float64) Profile {
	return Profile{
		Name: "B", Seed: 0xB, Scale: scale,
		Persons:       1989,
		RegionWeights: map[Region]float64{US: 0.4, Indian: 0.5, Chinese: 0.1},
		NameVariety:   3, TypoRate: 0.01, SecondAccountRate: 0.2, NoNameRate: 0.1,
		TwoSyllableGiven: 0.8,
		Messages:         9000, CircleSize: 10,
		Articles: 800, AuthorFraction: 0.1, MaxCitations: 3, TitleNoiseRate: 0.1,
		MailingLists: 4,
	}
}

// DatasetC is the Chinese-owner dataset: short given names over a small
// surname pool with deliberate exact-name collisions, which depresses
// precision (Table 4's discussion).
func DatasetC(scale float64) Profile {
	return Profile{
		Name: "C", Seed: 0xC, Scale: scale,
		Persons:       1570,
		RegionWeights: map[Region]float64{Chinese: 0.75, US: 0.2, Indian: 0.05},
		NameVariety:   3, TypoRate: 0.02, SecondAccountRate: 0.25, NoNameRate: 0.15,
		NameCollisionRate: 0.02, TwoSyllableGiven: 0.2,
		Messages: 4500, CircleSize: 8,
		Articles: 550, AuthorFraction: 0.12, MaxCitations: 3, TitleNoiseRate: 0.15,
		MailingLists: 4,
	}
}

// DatasetD is the name-change dataset: the owner changes her last name and
// her account on the same email server when she marries, so constraint 3
// splits her references (Table 4: DepGraph recall drops to ~0.92 while
// precision rises).
func DatasetD(scale float64) Profile {
	return Profile{
		Name: "D", Seed: 0xD, Scale: scale,
		Persons:       1518,
		RegionWeights: map[Region]float64{US: 0.6, Indian: 0.25, Chinese: 0.15},
		NameVariety:   4, TypoRate: 0.02, SecondAccountRate: 0.3, NoNameRate: 0.12,
		TwoSyllableGiven: 0.8,
		Messages:         5000, CircleSize: 9,
		Articles: 600, AuthorFraction: 0.12, MaxCitations: 3, TitleNoiseRate: 0.15,
		MailingLists:    5,
		OwnerNameChange: true,
	}
}

// Scaled builds a profile calibrated to generate approximately refs
// references — the knob the sharded-reconciliation benchmarks turn
// (100k–1M refs) rather than the paper's entity counts.
//
//   - dup is the duplicate rate: the average number of references
//     mentioning each real person (higher dup, fewer entities, denser
//     components).
//   - assoc is the cross-class association density: the fraction of
//     references that come from the bibliography side (articles, venues,
//     cited authors), whose association edges are what cross shard
//     boundaries.
//
// Generation is deterministic under a fixed seed: the same (refs, dup,
// assoc, seed) always yields the same corpus. The realized reference
// count lands near the target, not exactly on it — message recipient
// counts and citation fan-out are drawn per item.
func Scaled(refs int, dup, assoc float64, seed int64) Profile {
	if refs < 1 {
		refs = 1
	}
	if dup < 1 {
		dup = 3
	}
	if assoc < 0 {
		assoc = 0
	}
	if assoc > 0.9 {
		assoc = 0.9
	}
	personRefs := float64(refs) * (1 - assoc)
	articleRefs := float64(refs) * assoc
	const (
		refsPerMessage  = 3 // one sender plus 1+Intn(3) recipients
		refsPerCitation = 4 // the article, about two authors, one venue
		maxCitations    = 3 // citations per article: uniform 1..3, mean 2
	)
	persons := int(personRefs/dup + 0.5)
	if persons < 8 {
		persons = 8
	}
	articles := int(articleRefs/refsPerCitation/((1+maxCitations)/2.0) + 0.5)
	lists := persons / 400
	if lists < 4 {
		lists = 4
	}
	return Profile{
		Name: "scaled", Seed: seed, Scale: 1,
		Persons:       persons,
		RegionWeights: map[Region]float64{US: 0.6, Indian: 0.25, Chinese: 0.15},
		NameVariety:   4, TypoRate: 0.02, SecondAccountRate: 0.3, NoNameRate: 0.12,
		TwoSyllableGiven: 0.8,
		Messages:         int(personRefs/refsPerMessage + 0.5),
		CircleSize:       9,
		Articles:         articles,
		AuthorFraction:   0.12, MaxCitations: maxCitations, TitleNoiseRate: 0.15,
		MailingLists: lists,
	}
}

// GenerateScaled generates a corpus of approximately refs references.
// Scaled's arithmetic predicts counts from entity counts, but the email
// extractor dedupes person references on exact presentation, so the
// realized count lands well under the linear estimate on dense corpora.
// GenerateScaled corrects for that: it generates once, rescales the
// entity counts by the observed ratio when the result misses the target
// by more than 10%, and regenerates. Both passes are deterministic, so a
// fixed (refs, dup, assoc, seed) tuple always yields the same corpus.
func GenerateScaled(refs int, dup, assoc float64, seed int64) (*Generated, error) {
	p := Scaled(refs, dup, assoc, seed)
	g, err := Generate(p)
	if err != nil {
		return nil, err
	}
	realized := g.Store.Len()
	if realized == 0 || (realized >= refs-refs/10 && realized <= refs+refs/10) {
		return g, nil
	}
	adj := float64(refs) / float64(realized)
	p.Persons = int(float64(p.Persons)*adj + 0.5)
	p.Messages = int(float64(p.Messages)*adj + 0.5)
	p.Articles = int(float64(p.Articles)*adj + 0.5)
	return Generate(p)
}

// Profiles returns the four paper datasets at the given scale.
func Profiles(scale float64) []Profile {
	return []Profile{DatasetA(scale), DatasetB(scale), DatasetC(scale), DatasetD(scale)}
}
