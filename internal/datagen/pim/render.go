package pim

import (
	"fmt"
	"strings"

	"refrecon/internal/extract"
	"refrecon/internal/names"
	"refrecon/internal/schema"
)

// renderBibliography renders each article's citations as BibTeX text,
// parses them through the real extractor, and labels the resulting
// references.
func (w *world) renderBibliography(acc *extract.Accumulator) error {
	store := acc.Store()
	for _, a := range w.articles {
		cites := 1 + w.rng.Intn(maxInt(1, w.p.MaxCitations))
		for c := 0; c < cites; c++ {
			text := w.renderBibEntry(a, c)
			refs, err := acc.AddBibTeX(text)
			if err != nil {
				return fmt.Errorf("pim: generated invalid bibtex: %w\n%s", err, text)
			}
			if len(refs) != 1 {
				return fmt.Errorf("pim: expected 1 entry, got %d", len(refs))
			}
			r := refs[0]
			store.Get(r.Article).Entity = a.label
			for i, pid := range r.Authors {
				store.Get(pid).Entity = w.persons[a.authors[i]].label
			}
			if r.Venue >= 0 {
				// A venue reference denotes an *edition* (SIGMOD'78, not
				// SIGMOD): the gold entity is venue plus the article's
				// true year.
				store.Get(r.Venue).Entity = fmt.Sprintf("V%03d-%d", a.venue, a.year)
			}
		}
	}
	return nil
}

// renderBibEntry renders one citation of an article with realistic noise:
// per-citation author name formats, venue alias choice, occasional title
// perturbation and year jitter.
func (w *world) renderBibEntry(a *articleEntity, cite int) string {
	var authors []string
	for _, idx := range a.authors {
		authors = append(authors, w.citationName(w.persons[idx], a.year))
	}
	title := a.title
	if w.rng.Float64() < w.p.TitleNoiseRate {
		title = w.perturbTitle(title)
	}
	// Personal bibtex files are well curated (the paper's explanation for
	// the flat Article row of Table 2), so year errors are very rare. Each
	// wrong year plants a cross-edition venue merge that alias learning
	// then amplifies, so this rate directly controls venue precision.
	year := a.year
	if w.rng.Float64() < 0.001 {
		year += 1 - 2*w.rng.Intn(2) // off-by-one either way
	}
	pages := a.pages
	switch w.rng.Intn(10) {
	case 0:
		pages = "pp. " + strings.ReplaceAll(pages, "-", "--")
	case 1:
		pages = ""
	}
	v := venuePool[a.venue]
	venue := v.canonical
	if w.rng.Float64() < 0.75 {
		venue = v.aliases[w.rng.Intn(len(v.aliases))]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "@inproceedings{%s-%d,\n", strings.ToLower(a.label), cite)
	fmt.Fprintf(&b, "  author = {%s},\n", strings.Join(authors, " and "))
	fmt.Fprintf(&b, "  title = {%s},\n", title)
	fmt.Fprintf(&b, "  booktitle = {%s},\n", venue)
	fmt.Fprintf(&b, "  year = {%d},\n", year)
	if pages != "" {
		fmt.Fprintf(&b, "  pages = {%s},\n", pages)
	}
	if loc := editionLocation(a.venue, a.year); loc != "" && w.rng.Float64() < 0.5 {
		fmt.Fprintf(&b, "  address = {%s},\n", loc)
	}
	b.WriteString("}\n")
	return b.String()
}

// citationName renders a person's name in citation style. The owner's
// post-change name is used for articles written after the change.
func (w *world) citationName(e *entity, year int) string {
	first, middle, last := e.first, e.middle, e.last
	if e.changed && year >= w.changeYear() {
		// Post-change bibliography entries carry the new surname.
		last = names.Parse(e.changedVariants[0]).Last
		last = titleCase(last)
	}
	// Bibliography author lists are almost always initialed — the very
	// sparsity that makes citation-extracted person references hard to
	// reconcile without association evidence (Table 3's PArticle subset).
	fi := string(first[0])
	switch w.rng.Intn(12) {
	case 0: // "Last, First" — the rare fully-spelled form
		return last + ", " + first
	case 1, 2, 3: // "F. Last"
		if middle != "" && w.rng.Intn(2) == 0 {
			return fi + ". " + middle + ". " + last
		}
		return fi + ". " + last
	default: // "Last, F." — the dominant citation format
		if middle != "" && w.rng.Intn(2) == 0 {
			return last + ", " + fi + "." + middle + "."
		}
		return last + ", " + fi + "."
	}
}

func (w *world) changeYear() int { return 1990 + 8 } // mid-corpus

func (w *world) perturbTitle(title string) string {
	words := strings.Fields(title)
	switch w.rng.Intn(3) {
	case 0: // drop the last word
		if len(words) > 3 {
			return strings.Join(words[:len(words)-1], " ")
		}
	case 1: // typo somewhere
		return typo(w.rng, title)
	case 2: // lowercase (normalization hides this; keeps text realistic)
		return strings.ToLower(title)
	}
	return title
}

// renderMail renders the message corpus through the extractor, labeling
// every mailbox reference.
func (w *world) renderMail(acc *extract.Accumulator) error {
	store := acc.Store()
	total := w.p.scaled(w.p.Messages)
	changePoint := total / 2
	realPersons := 0
	for _, e := range w.persons {
		if !e.isList {
			realPersons++
		}
	}
	lists := len(w.persons) - realPersons
	for i := 0; i < total; i++ {
		postChange := i >= changePoint
		// The owner sends or receives most mail: the dataset owner is the
		// most popular entity, which is why dataset D's split is so
		// costly (§5.3).
		senderIdx := 0
		if w.rng.Float64() > 0.45 {
			senderIdx = w.rng.Intn(realPersons)
		}
		sender := w.persons[senderIdx]
		nRcpt := 1 + w.rng.Intn(3)
		rcpts := []int{}
		seen := map[int]bool{senderIdx: true}
		if senderIdx != 0 && w.rng.Float64() < 0.7 {
			rcpts = append(rcpts, 0) // the owner
			seen[0] = true
		}
		for len(rcpts) < nRcpt {
			var j int
			if len(sender.circle) > 0 && w.rng.Float64() < 0.8 {
				j = sender.circle[w.rng.Intn(len(sender.circle))]
			} else {
				j = w.rng.Intn(realPersons)
			}
			if seen[j] {
				if len(seen) >= realPersons {
					break
				}
				continue
			}
			seen[j] = true
			rcpts = append(rcpts, j)
		}
		// Occasionally a mailing list is a recipient.
		if lists > 0 && w.rng.Float64() < 0.12 {
			rcpts = append(rcpts, realPersons+w.rng.Intn(lists))
		}

		msg := extract.Message{
			From:    w.mailbox(sender, postChange),
			Subject: fmt.Sprintf("Re: %s", w.pick(titleNouns)),
			Date:    fmt.Sprintf("Mon, %d Mar %d 10:00:00 -0800", 1+i%28, 1998+i%7),
			ID:      fmt.Sprintf("msg-%d@%s", i, "mailer.example.org"),
		}
		ents := []*entity{sender}
		nCc := 0
		if len(rcpts) > 1 && w.rng.Float64() < 0.3 {
			nCc = 1
		}
		for k, idx := range rcpts {
			e := w.persons[idx]
			mb := w.mailbox(e, postChange)
			if k >= len(rcpts)-nCc {
				msg.Cc = append(msg.Cc, mb)
			} else {
				msg.To = append(msg.To, mb)
			}
			ents = append(ents, e)
		}
		parsed, err := extract.ParseMessage(extract.RenderMessage(msg))
		if err != nil {
			return fmt.Errorf("pim: generated invalid message: %w", err)
		}
		ids := acc.AddMessage(parsed)
		if len(ids) != len(ents) {
			return fmt.Errorf("pim: extracted %d mailboxes, expected %d", len(ids), len(ents))
		}
		for k, id := range ids {
			if id >= 0 {
				store.Get(id).Entity = ents[k].label
			}
		}
	}
	return nil
}

// mailbox renders one presentation of a person: a sampled name variant
// (possibly none) and a sampled account. Dataset D's owner presents her
// changed name and same-server account after the change point.
func (w *world) mailbox(e *entity, postChange bool) extract.Mailbox {
	variants, accounts := e.variants, e.accounts
	if e.changed && postChange {
		variants, accounts = e.changedVariants, e.changedAccounts
	}
	acct := accounts[w.rng.Intn(len(accounts))]
	mb := extract.Mailbox{Email: acct.key()}
	if w.rng.Float64() >= w.p.NoNameRate {
		mb.Name = variants[w.rng.Intn(len(variants))]
	}
	return mb
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate is a convenience wrapper checking the generated store against
// the PIM schema.
func (g *Generated) Validate() error {
	return g.Store.Validate(schema.PIM())
}
