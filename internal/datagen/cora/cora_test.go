package cora

import (
	"testing"

	"refrecon/internal/schema"
)

func TestGenerateValidates(t *testing.T) {
	g, err := Generate(Default(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Store.Validate(schema.Cora()); err != nil {
		// Cora schema omits year on Article; the extractor emits a PIM
		// store, so validate against PIM instead.
		if err2 := g.Store.Validate(schema.PIM()); err2 != nil {
			t.Fatalf("store invalid under PIM schema too: %v", err2)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	g, err := Generate(Default(1.0))
	if err != nil {
		t.Fatal(err)
	}
	store := g.Store
	articles := len(store.ByClass(schema.ClassArticle))
	persons := len(store.ByClass(schema.ClassPerson))
	venues := len(store.ByClass(schema.ClassVenue))
	if articles != 1295 {
		t.Errorf("articles = %d, want 1295 citations", articles)
	}
	// Total references should land near Table 1's 6107.
	total := store.Len()
	if total < 4500 || total > 8000 {
		t.Errorf("total refs = %d, want ~6107", total)
	}
	// Article entities: every generated paper should be cited at least
	// once at full scale (skewed weights, 1295 draws over 112 papers make
	// missing a paper unlikely but possible; accept >= 100).
	ents := make(map[string]bool)
	for _, id := range store.ByClass(schema.ClassArticle) {
		ents[store.Get(id).Entity] = true
	}
	if len(ents) < 100 || len(ents) > 112 {
		t.Errorf("article entities = %d, want ~112", len(ents))
	}
	// Citation skew: the most cited paper should dominate.
	counts := make(map[string]int)
	for _, id := range store.ByClass(schema.ClassArticle) {
		counts[store.Get(id).Entity]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 40 {
		t.Errorf("most-cited paper has %d citations, want >= 40 (skewed)", max)
	}
	if persons == 0 || venues == 0 {
		t.Errorf("persons=%d venues=%d", persons, venues)
	}
	// All references labeled.
	for _, r := range store.All() {
		if r.Entity == "" {
			t.Fatalf("unlabeled: %v", r)
		}
	}
}

func TestGenerateFreeText(t *testing.T) {
	p := Default(0.5)
	p.FreeText = true
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Store.Validate(schema.PIM()); err != nil {
		t.Fatal(err)
	}
	articles := len(g.Store.ByClass(schema.ClassArticle))
	want := p.scaled(p.Citations)
	// The heuristic parser may drop a few hopeless strings, but must
	// extract the overwhelming majority.
	if articles < want*9/10 {
		t.Errorf("extracted %d of %d citations", articles, want)
	}
	// Most person references carry gold labels; a small unlabeled tail
	// from author mis-splits is expected extraction noise.
	labeled, total := 0, 0
	for _, id := range g.Store.ByClass(schema.ClassPerson) {
		total++
		if g.Store.Get(id).Entity != "" {
			labeled++
		}
	}
	if total == 0 || labeled < total*85/100 {
		t.Errorf("labeled %d of %d persons", labeled, total)
	}
	// Venues must be present with edition labels.
	venues := len(g.Store.ByClass(schema.ClassVenue))
	if venues < articles/2 {
		t.Errorf("venues = %d for %d articles", venues, articles)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, _ := Generate(Default(0.1))
	g2, _ := Generate(Default(0.1))
	if g1.Store.Len() != g2.Store.Len() {
		t.Fatalf("nondeterministic: %d vs %d", g1.Store.Len(), g2.Store.Len())
	}
	for i := range g1.Store.All() {
		if g1.Store.All()[i].String() != g2.Store.All()[i].String() {
			t.Fatalf("reference %d differs", i)
		}
	}
}

func TestWrongVenuesExist(t *testing.T) {
	g, err := Generate(Default(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Some pairs of citations of the same paper must name different venue
	// entities (the Cora noise §5.4 discusses).
	venueOf := make(map[string]map[string]bool)
	for _, id := range g.Store.ByClass(schema.ClassArticle) {
		art := g.Store.Get(id)
		for _, vid := range art.Assoc(schema.AttrPublishedIn) {
			v := g.Store.Get(vid)
			if venueOf[art.Entity] == nil {
				venueOf[art.Entity] = make(map[string]bool)
			}
			venueOf[art.Entity][v.Entity] = true
		}
	}
	multi := 0
	for _, vs := range venueOf {
		if len(vs) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("expected some papers with citations naming different venues")
	}
}
