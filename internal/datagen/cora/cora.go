// Package cora generates a synthetic citation corpus shaped like the
// McCallum Cora subset used in §5.4: ~112 machine-learning papers cited
// ~1295 times with very noisy citation strings — abbreviated and
// misspelled author names, many venue presentations (and sometimes an
// outright wrong venue for the same paper, which the paper identifies as
// the cause of DepGraph's venue-precision drop), jittered years and pages.
//
// The real Cora subset ships as hand-labeled citation records; since the
// archive is not vendored here, the generator reproduces its published
// statistics (Table 1: 6107 references to 338 entities) and noise
// characteristics, and labels every reference with ground truth.
package cora

import (
	"fmt"
	"math/rand"
	"strings"

	"refrecon/internal/extract"
	"refrecon/internal/reference"
)

// Profile parameterizes the generator. Counts are at scale 1.0.
type Profile struct {
	Seed  int64
	Scale float64
	// Papers is the number of distinct paper entities (Cora: 112).
	Papers int
	// Citations is the total number of citation records (Cora: 1295).
	Citations int
	// Authors is the size of the author-entity pool.
	Authors int
	// WrongVenueRate is the probability a citation names a wrong venue.
	WrongVenueRate float64
	// TypoRate is the per-string typo probability.
	TypoRate float64
	// FreeText renders each citation as a free-text string ("A. Author
	// and B. Author. Title. In Proc. X, 1996, pp. 1-10.") and extracts it
	// with the heuristic citation parser instead of the BibTeX parser —
	// the form the real Cora corpus takes, adding realistic extraction
	// noise on top of the citation noise.
	FreeText bool
}

// Default returns the Cora-like profile at the given scale.
func Default(scale float64) Profile {
	return Profile{
		Seed: 0xC0DA, Scale: scale,
		Papers: 112, Citations: 1295, Authors: 180,
		WrongVenueRate: 0.05, TypoRate: 0.08,
	}
}

func (p Profile) scaled(n int) int {
	s := p.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n)*s + 0.5)
	if v < 1 && n > 0 {
		v = 1
	}
	return v
}

// Generated is the labeled synthetic corpus.
type Generated struct {
	Profile                 Profile
	Store                   *reference.Store
	Papers, Authors, Venues int
}

type venueSpec struct {
	aliases  []string
	location string
}

var venuePool = []venueSpec{
	{[]string{"Advances in Neural Information Processing Systems", "NIPS", "Proc. NIPS", "Neural Information Processing Systems"}, "Denver, Colorado"},
	{[]string{"International Conference on Machine Learning", "ICML", "Proc. ICML", "Machine Learning Conference"}, "Tahoe City, California"},
	{[]string{"National Conference on Artificial Intelligence", "AAAI", "Proc. AAAI", "AAAI Conference"}, "Portland, Oregon"},
	{[]string{"International Joint Conference on Artificial Intelligence", "IJCAI", "Proc. IJCAI"}, "Montreal, Canada"},
	{[]string{"Conference on Computational Learning Theory", "COLT", "Proc. COLT", "Computational Learning Theory"}, "Santa Cruz, California"},
	{[]string{"Conference on Uncertainty in Artificial Intelligence", "UAI", "Proc. UAI", "Uncertainty in AI"}, "Madison, Wisconsin"},
	{[]string{"Machine Learning", "Machine Learning Journal", "Mach. Learn."}, ""},
	{[]string{"Journal of Artificial Intelligence Research", "JAIR", "J. Artif. Intell. Res."}, ""},
	{[]string{"Artificial Intelligence", "Artif. Intell.", "AI Journal"}, ""},
	{[]string{"Neural Computation", "Neural Comput."}, ""},
	{[]string{"IEEE Transactions on Pattern Analysis and Machine Intelligence", "IEEE PAMI", "Pattern Analysis and Machine Intelligence", "TPAMI"}, ""},
	{[]string{"Knowledge Discovery and Data Mining", "KDD", "Proc. KDD", "SIGKDD"}, "Newport Beach, California"},
	{[]string{"European Conference on Machine Learning", "ECML", "Proc. ECML"}, "Prague, Czech Republic"},
	{[]string{"Annual Conference of the Cognitive Science Society", "Cognitive Science Society", "Proc. CogSci"}, "Boulder, Colorado"},
	{[]string{"International Conference on Genetic Algorithms", "ICGA", "Genetic Algorithms Conference"}, "San Mateo, California"},
	{[]string{"AAAI Spring Symposium", "Spring Symposium"}, "Stanford, California"},
	{[]string{"Technical Report, Carnegie Mellon University", "CMU Technical Report", "CMU TR"}, ""},
	{[]string{"Technical Report, University of Massachusetts", "UMass Technical Report", "UMass TR"}, ""},
	{[]string{"Neural Networks", "Neural Netw."}, ""},
	{[]string{"Evolutionary Computation", "Evol. Comput."}, ""},
	{[]string{"SIAM Journal on Computing", "SIAM J. Comput.", "SICOMP"}, ""},
	{[]string{"Annals of Statistics", "Ann. Statist."}, ""},
}

// conferenceCities hosts editions: conferences move every year, so each
// (venue, year) gets a deterministic city; journals have none.
var conferenceCities = []string{
	"Denver, Colorado", "Tahoe City, California", "Portland, Oregon",
	"Montreal, Canada", "Santa Cruz, California", "Madison, Wisconsin",
	"Newport Beach, California", "Prague, Czech Republic",
	"Boulder, Colorado", "San Mateo, California", "Stanford, California",
	"Seattle, Washington", "Amherst, Massachusetts", "Pittsburgh, Pennsylvania",
	"New Brunswick, New Jersey", "Bari, Italy", "Nashville, Tennessee",
}

func editionLocation(venueIdx, year int) string {
	if venuePool[venueIdx].location == "" {
		return ""
	}
	return conferenceCities[(venueIdx*5+year)%len(conferenceCities)]
}

var mlFirst = []string{
	"Andrew", "Michael", "Tom", "Sebastian", "Richard", "Leslie", "David",
	"Stuart", "Peter", "Thomas", "Robert", "John", "William", "Leo",
	"Yoav", "Ronald", "Dana", "Avrim", "Nick", "Satinder",
	"Dieter", "Wolfram", "Sridhar", "Manuela", "Lydia", "Daphne", "Kevin",
	"Geoffrey", "Yann", "Vladimir", "Christopher", "Judea", "Stephen",
	"Paul", "Mark", "Steven", "James", "Charles", "Eric",
}

var mlLast = []string{
	"McCallum", "Mitchell", "Thrun", "Sutton", "Kaelbling", "Russell",
	"Norvig", "Dietterich", "Quinlan", "Breiman", "Freund", "Schapire",
	"Rivest", "Angluin", "Blum", "Littlestone", "Singh", "Fox",
	"Burgard", "Mahadevan", "Veloso", "Kavraki", "Koller", "Murphy",
	"Hinton", "LeCun", "Vapnik", "Bishop", "Pearl", "Muggleton",
	"Utgoff", "Craven", "Shavlik", "Cohen", "Holder", "Cook", "Aha",
	"Salzberg", "Langley", "Pazzani", "Domingos", "Wellman", "Dean",
	"Boutilier", "Dearden", "Precup", "Barto", "Williams", "Baird",
	"Tesauro", "Moore", "Atkeson", "Schaal", "Kearns", "Valiant",
}

var titleTopics = []string{
	"reinforcement learning", "decision tree induction", "neural networks",
	"Bayesian networks", "inductive logic programming", "genetic algorithms",
	"support vector machines", "hidden Markov models", "feature selection",
	"boosting", "instance-based learning", "explanation-based learning",
	"concept drift", "active learning", "relational learning",
	"temporal difference learning", "Q-learning", "case-based reasoning",
	"text classification", "information extraction",
}

var titlePatterns = []string{
	"Learning %s from examples",
	"A study of %s",
	"Improving %s with prior knowledge",
	"On the convergence of %s",
	"Efficient algorithms for %s",
	"A theory of %s",
	"Experiments with %s",
	"Scaling up %s",
	"An empirical comparison of %s methods",
	"Practical issues in %s",
}

type author struct{ first, last string }

type paper struct {
	label   string
	title   string
	year    int
	pages   string
	authors []author
	venue   int
}

type generator struct {
	p   Profile
	rng *rand.Rand
}

// Generate builds the corpus.
func Generate(p Profile) (*Generated, error) {
	g := &generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	authors := g.buildAuthors()
	papers := g.buildPapers(authors)

	// Citation counts are skewed: a few papers are cited many times
	// (Cora's most-cited paper exceeds 100 citations), most a handful.
	weights := make([]float64, len(papers))
	totalW := 0.0
	for i := range weights {
		weights[i] = 1.0 / float64(1+i)
		totalW += weights[i]
	}
	g.rng.Shuffle(len(weights), func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })

	store := reference.NewStore()
	acc := extract.NewAccumulator(store)
	nCites := p.scaled(p.Citations)
	for c := 0; c < nCites; c++ {
		x := g.rng.Float64() * totalW
		idx := len(papers) - 1
		for i, w := range weights {
			x -= w
			if x < 0 {
				idx = i
				break
			}
		}
		pp := papers[idx]
		var r extract.BibRefs
		var venueIdx int
		if p.FreeText {
			var text string
			venueIdx, text = g.renderFreeCitation(pp)
			cit, ok := extract.ParseCitation(text)
			if ok {
				r, ok = acc.AddCitation(cit)
			}
			if !ok {
				// The heuristic parser could not segment this string;
				// real extraction pipelines drop such records too.
				continue
			}
		} else {
			var text string
			venueIdx, text = g.renderCitation(pp, c)
			refs, err := acc.AddBibTeX(text)
			if err != nil {
				return nil, fmt.Errorf("cora: generated invalid bibtex: %w\n%s", err, text)
			}
			r = refs[0]
		}
		store.Get(r.Article).Entity = pp.label
		for i, pid := range r.Authors {
			if i >= len(pp.authors) {
				// The parser mis-split an author: the extra reference has
				// no ground truth and stays unlabeled (extraction noise).
				break
			}
			a := pp.authors[i]
			store.Get(pid).Entity = "P:" + a.first + " " + a.last
		}
		if r.Venue >= 0 {
			// The venue reference's gold label is the *edition* of the
			// venue the citation NAMES — possibly the wrong venue for the
			// paper; the mention still denotes that venue entity.
			store.Get(r.Venue).Entity = fmt.Sprintf("V%03d-%d", venueIdx, pp.year)
		}
	}
	return &Generated{
		Profile: p,
		Store:   store,
		Papers:  len(papers),
		Authors: len(authors),
		Venues:  len(venuePool),
	}, nil
}

func (g *generator) buildAuthors() []author {
	n := g.p.scaled(g.p.Authors)
	out := make([]author, 0, n)
	seen := make(map[string]bool)
	for len(out) < n {
		a := author{mlFirst[g.rng.Intn(len(mlFirst))], mlLast[g.rng.Intn(len(mlLast))]}
		k := a.first + " " + a.last
		if seen[k] && len(seen) < len(mlFirst)*len(mlLast)/2 {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}

func (g *generator) buildPapers(authors []author) []*paper {
	n := g.p.scaled(g.p.Papers)
	papers := make([]*paper, n)
	usedTitles := make(map[string]bool)
	for i := range papers {
		pp := &paper{
			label: fmt.Sprintf("A%04d", i),
			year:  1988 + g.rng.Intn(12),
			venue: g.rng.Intn(len(venuePool)),
		}
		start := 1 + g.rng.Intn(600)
		pp.pages = fmt.Sprintf("%d-%d", start, start+3+g.rng.Intn(30))
		for {
			t := fmt.Sprintf(titlePatterns[g.rng.Intn(len(titlePatterns))],
				titleTopics[g.rng.Intn(len(titleTopics))])
			if !usedTitles[t] {
				usedTitles[t] = true
				pp.title = t
				break
			}
		}
		na := 1 + g.rng.Intn(3)
		seen := make(map[int]bool)
		for len(pp.authors) < na {
			j := g.rng.Intn(len(authors))
			if !seen[j] {
				seen[j] = true
				pp.authors = append(pp.authors, authors[j])
			}
		}
		papers[i] = pp
	}
	return papers
}

// renderFreeCitation renders one citation as the free-text string the
// real Cora corpus consists of, returning the (possibly wrong) venue
// index it names and the text.
func (g *generator) renderFreeCitation(pp *paper) (int, string) {
	venueIdx := pp.venue
	if g.rng.Float64() < g.p.WrongVenueRate {
		venueIdx = g.rng.Intn(len(venuePool))
	}
	v := venuePool[venueIdx]
	venueName := v.aliases[g.rng.Intn(len(v.aliases))]
	title := pp.title
	if g.rng.Float64() < g.p.TypoRate*2 {
		title = g.noisyTitle(title)
	}
	year := pp.year
	if g.rng.Float64() < 0.1 {
		year += 1 - 2*g.rng.Intn(2)
	}
	var b strings.Builder
	b.WriteString(g.citationAuthors(pp))
	b.WriteString(". ")
	b.WriteString(title)
	b.WriteString(". ")
	if g.rng.Float64() < 0.6 {
		b.WriteString("In ")
	}
	b.WriteString(venueName)
	fmt.Fprintf(&b, ", %d", year)
	if g.rng.Float64() < 0.6 {
		fmt.Fprintf(&b, ", pp. %s", pp.pages)
	}
	b.WriteString(".")
	return venueIdx, b.String()
}

// renderCitation renders one citation of a paper as a BibTeX entry,
// returning the (possibly wrong) venue index it names and the text.
func (g *generator) renderCitation(pp *paper, seq int) (int, string) {
	venueIdx := pp.venue
	if g.rng.Float64() < g.p.WrongVenueRate {
		venueIdx = g.rng.Intn(len(venuePool))
	}
	v := venuePool[venueIdx]
	venueName := v.aliases[g.rng.Intn(len(v.aliases))]

	title := pp.title
	if g.rng.Float64() < g.p.TypoRate*2 {
		title = g.noisyTitle(title)
	}
	year := pp.year
	if g.rng.Float64() < 0.1 {
		year += 1 - 2*g.rng.Intn(2)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "@inproceedings{cite%d,\n", seq)
	fmt.Fprintf(&b, "  author = {%s},\n", g.citationAuthors(pp))
	fmt.Fprintf(&b, "  title = {%s},\n", title)
	fmt.Fprintf(&b, "  booktitle = {%s},\n", venueName)
	fmt.Fprintf(&b, "  year = {%d},\n", year)
	if g.rng.Float64() < 0.6 {
		fmt.Fprintf(&b, "  pages = {%s},\n", pp.pages)
	}
	if loc := editionLocation(venueIdx, pp.year); loc != "" && g.rng.Float64() < 0.3 {
		fmt.Fprintf(&b, "  address = {%s},\n", loc)
	}
	b.WriteString("}\n")
	return venueIdx, b.String()
}

// citationAuthors renders the author list in one of the three common
// citation styles, with occasional typos.
func (g *generator) citationAuthors(pp *paper) string {
	style := g.rng.Intn(3)
	out := make([]string, 0, len(pp.authors))
	for _, a := range pp.authors {
		var s string
		switch style {
		case 0:
			s = a.last + ", " + string(a.first[0]) + "."
		case 1:
			s = a.first + " " + a.last
		default:
			s = string(a.first[0]) + ". " + a.last
		}
		if g.rng.Float64() < g.p.TypoRate {
			s = g.typo(s)
		}
		out = append(out, s)
	}
	return strings.Join(out, " and ")
}

func (g *generator) noisyTitle(t string) string {
	words := strings.Fields(t)
	switch g.rng.Intn(3) {
	case 0:
		if len(words) > 3 {
			return strings.Join(words[:len(words)-1], " ")
		}
	case 1:
		return g.typo(t)
	default:
		return strings.ToLower(t)
	}
	return t
}

func (g *generator) typo(s string) string {
	rs := []rune(s)
	if len(rs) < 4 {
		return s
	}
	i := 1 + g.rng.Intn(len(rs)-3)
	if rs[i] == ' ' || rs[i+1] == ' ' || rs[i] == ',' || rs[i+1] == ',' {
		return s
	}
	rs[i], rs[i+1] = rs[i+1], rs[i]
	return string(rs)
}
