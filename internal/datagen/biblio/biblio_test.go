package biblio

import (
	"fmt"
	"strings"
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func fingerprint(s *reference.Store) string {
	var b strings.Builder
	for _, r := range s.All() {
		fmt.Fprintf(&b, "%d|%s|%s", r.ID, r.Class, r.Entity)
		for _, a := range r.AtomicAttrs() {
			fmt.Fprintf(&b, "|%s=%v", a, r.Atomic(a))
		}
		for _, a := range r.AssocAttrs() {
			fmt.Fprintf(&b, "|%s->%v", a, r.Assoc(a))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Default(600, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default(600, 7))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a.Store) != fingerprint(b.Store) {
		t.Fatal("same profile produced different corpora")
	}
	c, err := Generate(Default(600, 8))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a.Store) == fingerprint(c.Store) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateTargetAndValidity(t *testing.T) {
	g, err := Generate(Default(1000, 3))
	if err != nil {
		t.Fatal(err)
	}
	// A citation record adds at most 1 article + 3 authors + 1 venue, so
	// the realized count overshoots the target by less than one record.
	if n := g.Store.Len(); n < 1000 || n > 1005 {
		t.Fatalf("got %d refs, want 1000..1005", n)
	}
	if err := g.Store.Validate(schema.PIM()); err != nil {
		t.Fatalf("generated corpus violates PIM schema: %v", err)
	}
	classes := make(map[string]int)
	for _, r := range g.Store.All() {
		if r.Entity == "" {
			t.Fatalf("reference %d has no gold label", r.ID)
		}
		classes[r.Class]++
	}
	for _, c := range []string{schema.ClassArticle, schema.ClassPerson, schema.ClassVenue} {
		if classes[c] == 0 {
			t.Fatalf("no %s references generated", c)
		}
	}
	if g.Citations < 100 {
		t.Fatalf("implausibly few citations: %d", g.Citations)
	}
}

func TestNoiseActuallyVaries(t *testing.T) {
	g, err := Generate(Default(2000, 11))
	if err != nil {
		t.Fatal(err)
	}
	// Group person renderings by gold entity; a noisy corpus must present
	// at least some authors under more than one spelling.
	spellings := make(map[string]map[string]bool)
	for _, r := range g.Store.All() {
		if r.Class != schema.ClassPerson {
			continue
		}
		m := spellings[r.Entity]
		if m == nil {
			m = make(map[string]bool)
			spellings[r.Entity] = m
		}
		for _, v := range r.Atomic(schema.AttrName) {
			m[v] = true
		}
	}
	varied := 0
	for _, m := range spellings {
		if len(m) > 1 {
			varied++
		}
	}
	if varied == 0 {
		t.Fatal("no author appears under multiple spellings; noise model inert")
	}
}
