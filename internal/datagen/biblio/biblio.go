// Package biblio generates a noisy bibliographic-reference corpus after
// Demleitner et al.'s "Automated Resolution of Noisy Bibliographic
// References" (the ADS astronomy citation workload, PAPERS.md): reference
// strings whose fields are independently corrupted — abbreviated author
// and journal names, reordered author lists, truncated pages, jittered
// years, typos — while still denoting the same papers. Unlike the cora
// generator, which renders text and round-trips it through the extractors,
// biblio constructs schema.PIM references directly, so the realized
// reference count is exact and the corpus doubles as a calibrated serving
// workload for cmd/loadgen.
package biblio

import (
	"fmt"
	"math/rand"
	"strings"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// Profile parameterizes the generator. Generation is deterministic: the
// same Profile always yields the same corpus.
type Profile struct {
	// Seed drives every random choice.
	Seed int64
	// Refs is the target reference count; generation renders citation
	// records (one article + its author and venue references each) until
	// the store reaches it, so the realized count lands within one record
	// of the target.
	Refs int
	// Papers is the number of distinct paper entities cited (0 derives
	// it from Refs at roughly 3 citations per paper).
	Papers int
	// Authors is the author-entity pool size (0 derives it from Papers).
	Authors int

	// AbbrevRate is the probability a rendered author name abbreviates the
	// given name to an initial, and a venue renders as its abbreviation
	// ("Astrophys. J." for "The Astrophysical Journal").
	AbbrevRate float64
	// CorruptRate is the per-field corruption probability: typos in titles
	// and names, case folding, truncated titles.
	CorruptRate float64
	// DropRate is the probability an optional field (pages, year) is
	// omitted from a citation record.
	DropRate float64
	// ReorderRate is the probability a citation presents its author list
	// in a different order than the paper's canonical one (Demleitner's
	// reference strings routinely reorder or truncate author lists).
	ReorderRate float64
	// YearJitterRate is the probability the cited year is off by one.
	YearJitterRate float64
}

// Default returns the moderately noisy profile calibrated to refs
// references.
func Default(refs int, seed int64) Profile {
	return Profile{
		Seed:           seed,
		Refs:           refs,
		AbbrevRate:     0.55,
		CorruptRate:    0.12,
		DropRate:       0.25,
		ReorderRate:    0.15,
		YearJitterRate: 0.08,
	}
}

// Generated is the labeled corpus.
type Generated struct {
	Profile                 Profile
	Store                   *reference.Store
	Papers, Authors, Venues int
	// Citations is the number of citation records rendered.
	Citations int
}

type author struct{ first, last string }

type paper struct {
	label   string
	title   string
	year    int
	pages   string
	authors []int // author-pool indexes, canonical order
	venue   int
}

// The venue pool is astronomy-flavored (Demleitner et al. resolve ADS
// references): every venue has a full name and the abbreviations real
// bibliographies use for it.
type venueSpec struct{ aliases []string }

var venuePool = []venueSpec{
	{[]string{"The Astrophysical Journal", "Astrophys. J.", "ApJ"}},
	{[]string{"Astronomy and Astrophysics", "Astron. Astrophys.", "A&A"}},
	{[]string{"Monthly Notices of the Royal Astronomical Society", "Mon. Not. R. Astron. Soc.", "MNRAS"}},
	{[]string{"The Astronomical Journal", "Astron. J.", "AJ"}},
	{[]string{"Publications of the Astronomical Society of the Pacific", "Publ. Astron. Soc. Pac.", "PASP"}},
	{[]string{"Icarus", "Icarus"}},
	{[]string{"Solar Physics", "Sol. Phys."}},
	{[]string{"Astrophysics and Space Science", "Astrophys. Space Sci.", "Ap&SS"}},
	{[]string{"Journal of Geophysical Research", "J. Geophys. Res.", "JGR"}},
	{[]string{"Annual Review of Astronomy and Astrophysics", "Annu. Rev. Astron. Astrophys.", "ARA&A"}},
	{[]string{"The Astrophysical Journal Supplement Series", "Astrophys. J. Suppl. Ser.", "ApJS"}},
	{[]string{"Acta Astronomica", "Acta Astron."}},
}

var astroFirst = []string{
	"Jan", "Maarten", "Vera", "Margaret", "Edwin", "Fritz", "Subrahmanyan",
	"Cecilia", "Annie", "Henrietta", "Karl", "Jocelyn", "Martin", "Rashid",
	"Bohdan", "Kip", "Roger", "Jeremiah", "Sandra", "Wendy", "Adam", "Saul",
	"Brian", "Riccardo", "Alar", "Jerry", "Donald", "George", "Allan",
	"Geoffrey", "Douglas", "Virginia", "Neta", "Jim", "Scott", "David",
}

var astroLast = []string{
	"Oort", "Schmidt", "Rubin", "Burbidge", "Hubble", "Zwicky",
	"Chandrasekhar", "Payne", "Cannon", "Leavitt", "Jansky", "Bell",
	"Rees", "Sunyaev", "Paczynski", "Thorne", "Penrose", "Ostriker",
	"Faber", "Freedman", "Riess", "Perlmutter", "Schmidt", "Giacconi",
	"Toomre", "Sellwood", "Lynden-Bell", "Efstathiou", "Sandage",
	"Marcy", "Lin", "Trimble", "Bahcall", "Peebles", "Tremaine", "Spergel",
}

var titleSubjects = []string{
	"dark matter halos", "galactic rotation curves", "stellar populations",
	"the interstellar medium", "accretion disks", "pulsar timing",
	"gravitational lensing", "the cosmic microwave background",
	"supernova light curves", "protoplanetary disks", "globular clusters",
	"active galactic nuclei", "white dwarf cooling", "molecular clouds",
	"the galactic center", "brown dwarfs", "cosmic rays", "solar flares",
	"gamma-ray bursts", "exoplanet atmospheres",
}

var titlePatterns = []string{
	"On the structure of %s",
	"Observations of %s",
	"A photometric survey of %s",
	"The dynamics of %s",
	"Spectroscopy of %s",
	"A catalog of %s",
	"Modeling %s",
	"The formation and evolution of %s",
	"X-ray emission from %s",
	"Radial velocities of %s",
}

var titleQualifiers = []string{
	"in the solar neighborhood", "at high redshift", "in nearby galaxies",
	"revisited", "from deep imaging", "with adaptive optics",
	"in the Magellanic Clouds", "at radio wavelengths",
	"from the infrared survey", "in close binaries",
}

type generator struct {
	p   Profile
	rng *rand.Rand
}

// Generate builds the labeled corpus. Each citation record yields one
// Article reference (title, year, pages, authoredBy, publishedIn), one
// Person reference per presented author, and one Venue reference; every
// reference carries its ground-truth entity label.
func Generate(p Profile) (*Generated, error) {
	if p.Refs < 1 {
		return nil, fmt.Errorf("biblio: Refs must be positive (got %d)", p.Refs)
	}
	// A citation record yields ~4 references (article + ~2 authors +
	// venue); papers default to ~3 citations each.
	if p.Papers <= 0 {
		p.Papers = p.Refs / 12
		if p.Papers < 4 {
			p.Papers = 4
		}
	}
	if p.Authors <= 0 {
		p.Authors = p.Papers
		if p.Authors < 8 {
			p.Authors = 8
		}
		if max := len(astroFirst) * len(astroLast) / 2; p.Authors > max {
			p.Authors = max
		}
	}
	g := &generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	authors := g.buildAuthors()
	papers := g.buildPapers(authors)

	store := reference.NewStore()
	out := &Generated{Profile: p, Store: store, Papers: len(papers), Authors: len(authors)}
	venuesSeen := make(map[int]bool)
	for store.Len() < p.Refs {
		pp := papers[g.rng.Intn(len(papers))]
		g.renderCitation(store, authors, pp)
		venuesSeen[pp.venue] = true
		out.Citations++
	}
	out.Venues = len(venuesSeen)
	return out, nil
}

func (g *generator) buildAuthors() []author {
	out := make([]author, 0, g.p.Authors)
	seen := make(map[string]bool)
	for len(out) < g.p.Authors {
		a := author{astroFirst[g.rng.Intn(len(astroFirst))], astroLast[g.rng.Intn(len(astroLast))]}
		k := a.first + " " + a.last
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}

func (g *generator) buildPapers(authors []author) []*paper {
	papers := make([]*paper, g.p.Papers)
	usedTitles := make(map[string]bool)
	for i := range papers {
		pp := &paper{
			label: fmt.Sprintf("B%05d", i),
			year:  1965 + g.rng.Intn(40),
			venue: g.rng.Intn(len(venuePool)),
		}
		start := 1 + g.rng.Intn(900)
		pp.pages = fmt.Sprintf("%d-%d", start, start+2+g.rng.Intn(28))
		for {
			t := fmt.Sprintf(titlePatterns[g.rng.Intn(len(titlePatterns))],
				titleSubjects[g.rng.Intn(len(titleSubjects))])
			if g.rng.Float64() < 0.5 {
				t += " " + titleQualifiers[g.rng.Intn(len(titleQualifiers))]
			}
			if !usedTitles[t] {
				usedTitles[t] = true
				pp.title = t
				break
			}
		}
		n := 1 + g.rng.Intn(3)
		seen := make(map[int]bool)
		for len(pp.authors) < n {
			j := g.rng.Intn(len(authors))
			if !seen[j] {
				seen[j] = true
				pp.authors = append(pp.authors, j)
			}
		}
		papers[i] = pp
	}
	return papers
}

// renderCitation adds one noisy citation record's references to the store.
func (g *generator) renderCitation(store *reference.Store, authors []author, pp *paper) {
	// Author order: canonical, or reordered (rotated by a random offset —
	// the common "alphabetical vs contribution order" divergence).
	order := pp.authors
	if len(order) > 1 && g.rng.Float64() < g.p.ReorderRate {
		rot := 1 + g.rng.Intn(len(order)-1)
		reordered := make([]int, 0, len(order))
		reordered = append(reordered, order[rot:]...)
		reordered = append(reordered, order[:rot]...)
		order = reordered
	}

	var personIDs []reference.ID
	for _, ai := range order {
		a := authors[ai]
		r := reference.New(schema.ClassPerson)
		r.Source = "biblio"
		r.Entity = "P:" + a.first + " " + a.last
		r.AddAtomic(schema.AttrName, g.renderAuthor(a))
		personIDs = append(personIDs, store.Add(r))
	}
	// Co-author links, as the BibTeX extractor would produce them.
	for i, id := range personIDs {
		r := store.Get(id)
		for j, other := range personIDs {
			if i != j {
				r.AddAssoc(schema.AttrCoAuthor, other)
			}
		}
	}

	v := venuePool[pp.venue]
	vr := reference.New(schema.ClassVenue)
	vr.Source = "biblio"
	vr.Entity = fmt.Sprintf("V%03d", pp.venue)
	vname := v.aliases[0]
	if g.rng.Float64() < g.p.AbbrevRate && len(v.aliases) > 1 {
		vname = v.aliases[1+g.rng.Intn(len(v.aliases)-1)]
	}
	vr.AddAtomic(schema.AttrName, g.corrupt(vname))
	year := pp.year
	if g.rng.Float64() < g.p.YearJitterRate {
		year += 1 - 2*g.rng.Intn(2)
	}
	if g.rng.Float64() >= g.p.DropRate {
		vr.AddAtomic(schema.AttrYear, fmt.Sprintf("%d", year))
	}
	venueID := store.Add(vr)

	ar := reference.New(schema.ClassArticle)
	ar.Source = "biblio"
	ar.Entity = pp.label
	ar.AddAtomic(schema.AttrTitle, g.corrupt(pp.title))
	if g.rng.Float64() >= g.p.DropRate {
		ar.AddAtomic(schema.AttrYear, fmt.Sprintf("%d", year))
	}
	if g.rng.Float64() >= g.p.DropRate {
		pages := pp.pages
		// Truncated page ranges ("210-215" cited as "210") are one of the
		// characteristic ADS corruptions.
		if g.rng.Float64() < g.p.CorruptRate*2 {
			pages = pages[:strings.IndexByte(pages, '-')]
		}
		ar.AddAtomic(schema.AttrPages, pages)
	}
	for _, id := range personIDs {
		ar.AddAssoc(schema.AttrAuthoredBy, id)
	}
	ar.AddAssoc(schema.AttrPublishedIn, venueID)
	store.Add(ar)
}

// renderAuthor presents one author name: full, abbreviated to an initial,
// or comma-inverted, with optional corruption.
func (g *generator) renderAuthor(a author) string {
	var s string
	switch {
	case g.rng.Float64() < g.p.AbbrevRate:
		if g.rng.Float64() < 0.5 {
			s = a.last + ", " + string(a.first[0]) + "."
		} else {
			s = string(a.first[0]) + ". " + a.last
		}
	case g.rng.Float64() < 0.3:
		s = a.last + ", " + a.first
	default:
		s = a.first + " " + a.last
	}
	return g.corrupt(s)
}

// corrupt applies one field corruption with probability CorruptRate: an
// adjacent-letter typo, lower-casing, or (for multi-word values) dropping
// the final word.
func (g *generator) corrupt(s string) string {
	if g.rng.Float64() >= g.p.CorruptRate {
		return s
	}
	switch g.rng.Intn(3) {
	case 0:
		return typo(g.rng, s)
	case 1:
		return strings.ToLower(s)
	default:
		if words := strings.Fields(s); len(words) > 3 {
			return strings.Join(words[:len(words)-1], " ")
		}
		return typo(g.rng, s)
	}
}

// typo swaps two adjacent interior letters.
func typo(rng *rand.Rand, s string) string {
	rs := []rune(s)
	if len(rs) < 4 {
		return s
	}
	i := 1 + rng.Intn(len(rs)-3)
	if rs[i] == ' ' || rs[i+1] == ' ' || rs[i] == ',' || rs[i+1] == ',' {
		return s
	}
	rs[i], rs[i+1] = rs[i+1], rs[i]
	return string(rs)
}
