package catalog

import (
	"fmt"
	"strings"
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func fingerprint(s *reference.Store) string {
	var b strings.Builder
	for _, r := range s.All() {
		fmt.Fprintf(&b, "%d|%s|%s|%s", r.ID, r.Class, r.Source, r.Entity)
		for _, a := range r.AtomicAttrs() {
			fmt.Fprintf(&b, "|%s=%v", a, r.Atomic(a))
		}
		for _, a := range r.AssocAttrs() {
			fmt.Fprintf(&b, "|%s->%v", a, r.Assoc(a))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Default(500, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default(500, 5))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a.Store) != fingerprint(b.Store) {
		t.Fatal("same profile produced different corpora")
	}
	c, err := Generate(Default(500, 6))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a.Store) == fingerprint(c.Store) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateTargetAndValidity(t *testing.T) {
	g, err := Generate(Default(800, 2))
	if err != nil {
		t.Fatal(err)
	}
	if n := g.Store.Len(); n < 800 || n > 802 {
		t.Fatalf("got %d refs, want 800..802", n)
	}
	if err := g.Store.Validate(schema.Catalog()); err != nil {
		t.Fatalf("generated corpus violates Catalog schema: %v", err)
	}
	for _, r := range g.Store.All() {
		if r.Entity == "" {
			t.Fatalf("reference %d has no gold label", r.ID)
		}
	}
	if len(g.Store.ByClass(schema.ClassProduct)) == 0 || len(g.Store.ByClass(schema.ClassManufacturer)) == 0 {
		t.Fatal("missing a class")
	}
}

func TestDuplicatesAcrossStorefronts(t *testing.T) {
	g, err := Generate(Default(1200, 9))
	if err != nil {
		t.Fatal(err)
	}
	// The same product entity must appear from multiple storefronts, and
	// with varied renderings.
	bySources := make(map[string]map[string]bool)
	titles := make(map[string]map[string]bool)
	for _, id := range g.Store.ByClass(schema.ClassProduct) {
		r := g.Store.Get(id)
		if bySources[r.Entity] == nil {
			bySources[r.Entity] = make(map[string]bool)
			titles[r.Entity] = make(map[string]bool)
		}
		bySources[r.Entity][r.Source] = true
		titles[r.Entity][r.FirstAtomic(schema.AttrTitle)] = true
	}
	dup, varied := 0, 0
	for e, srcs := range bySources {
		if len(srcs) > 1 {
			dup++
		}
		if len(titles[e]) > 1 {
			varied++
		}
	}
	if dup == 0 {
		t.Fatal("no product listed by more than one storefront")
	}
	if varied == 0 {
		t.Fatal("no product rendered under more than one title")
	}
}
