// Package catalog generates a scaled product-catalog corpus over
// schema.Catalog(), the multi-storefront scenario from examples/products
// grown to arbitrary size: several storefronts list overlapping product
// lines from a shared pool of manufacturers, each storefront rendering
// titles, model numbers, and brand names in its own house style. The same
// physical product therefore appears as "TurboBlend 5000 blender,
// TB-5000, by Acme Corporation" on one site and "Acme TB5000 TurboBlend
// blender" on another — classic product-matching noise. Because
// schema.Catalog() is a custom (non-PIM) schema, the corpus also
// exercises the generic blocking and comparison fallbacks end to end.
package catalog

import (
	"fmt"
	"math/rand"
	"strings"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// Profile parameterizes the generator; same profile ⇒ same corpus.
type Profile struct {
	Seed int64
	// Refs is the target reference count (realized within one listing of
	// it).
	Refs int
	// Storefronts is the number of listing sources (min 2).
	Storefronts int
	// Manufacturers is the brand-entity pool size (0 derives it from
	// Refs).
	Manufacturers int
	// ListRate is the probability a given storefront lists a given
	// product; it controls the duplicate rate across storefronts.
	ListRate float64
	// NoiseRate is the per-field corruption probability (typos, dropped
	// model separators, case folding).
	NoiseRate float64
}

// Default returns a profile calibrated to refs references.
func Default(refs int, seed int64) Profile {
	return Profile{
		Seed:        seed,
		Refs:        refs,
		Storefronts: 4,
		ListRate:    0.55,
		NoiseRate:   0.10,
	}
}

// Generated is the labeled corpus.
type Generated struct {
	Profile                           Profile
	Store                             *reference.Store
	Products, Manufacturers, Listings int
}

var brandRoots = []string{
	"Acme", "Globex", "Initech", "Vandelay", "Wayne", "Stark", "Umbrella",
	"Tyrell", "Cyberdyne", "Wonka", "Aperture", "Sirius", "Hooli",
	"Massive", "Soylent", "Oscorp", "Nakatomi", "Zorg", "Virtucon",
	"Monarch", "Duff", "Prestige", "Pied", "Octan",
}

var brandSuffixes = []string{"Corporation", "Corp.", "Inc.", "GmbH", "Industries", "Ltd."}

var countries = []string{"US", "DE", "JP", "CN", "KR", "SE", "NL", "TW"}

var productLines = []string{
	"TurboBlend", "AeroPress", "HyperDrive", "MaxiCool", "UltraWash",
	"PowerGrip", "SmartBrew", "QuickCharge", "SilentFan", "ProCut",
	"EasyToast", "DeepClean", "RapidBoil", "SteadyCam", "ClearView",
	"TrueTone", "FreshAir", "LongLife", "MicroMill", "HeavyDuty",
}

var productNouns = []string{
	"blender", "espresso machine", "vacuum cleaner", "toaster", "kettle",
	"drill", "monitor", "router", "heater", "mixer", "fan", "charger",
	"camera", "speaker", "dishwasher", "microwave",
}

type manufacturer struct {
	label   string
	root    string
	country string
}

type product struct {
	label string
	line  string
	noun  string
	model int // e.g. 5000
	maker int // manufacturer index
}

type generator struct {
	p   Profile
	rng *rand.Rand
}

// Generate builds the labeled corpus. Each listing yields one Product
// reference; the first listing a storefront makes for a brand also yields
// that storefront's Manufacturer reference, which its later listings
// share (matching how examples/products wires one brand ref per feed).
func Generate(p Profile) (*Generated, error) {
	if p.Refs < 1 {
		return nil, fmt.Errorf("catalog: Refs must be positive (got %d)", p.Refs)
	}
	if p.Storefronts < 2 {
		p.Storefronts = 2
	}
	if p.Manufacturers <= 0 {
		p.Manufacturers = p.Refs / 40
		if p.Manufacturers < 3 {
			p.Manufacturers = 3
		}
		if p.Manufacturers > len(brandRoots) {
			p.Manufacturers = len(brandRoots)
		}
	}
	g := &generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}

	makers := make([]manufacturer, p.Manufacturers)
	rootPerm := g.rng.Perm(len(brandRoots))
	for i := range makers {
		makers[i] = manufacturer{
			label:   fmt.Sprintf("M%03d", i),
			root:    brandRoots[rootPerm[i]],
			country: countries[g.rng.Intn(len(countries))],
		}
	}

	store := reference.NewStore()
	out := &Generated{Profile: p, Store: store, Manufacturers: len(makers)}
	// brandRef[storefront][maker] is the storefront's Manufacturer ref id.
	brandRef := make([]map[int]reference.ID, p.Storefronts)
	for i := range brandRef {
		brandRef[i] = make(map[int]reference.ID)
	}
	for pi := 0; store.Len() < p.Refs; pi++ {
		prod := product{
			label: fmt.Sprintf("P%05d", pi),
			line:  productLines[g.rng.Intn(len(productLines))],
			noun:  productNouns[g.rng.Intn(len(productNouns))],
			model: 100*(1+g.rng.Intn(89)) + 10*g.rng.Intn(10),
			maker: g.rng.Intn(len(makers)),
		}
		out.Products++
		listed := false
		for sf := 0; sf < p.Storefronts && store.Len() < p.Refs; sf++ {
			// Every product appears somewhere: force the last storefront
			// if none listed it yet.
			if g.rng.Float64() >= p.ListRate && !(sf == p.Storefronts-1 && !listed) {
				continue
			}
			listed = true
			g.renderListing(store, brandRef[sf], sf, makers, prod)
			out.Listings++
		}
	}
	return out, nil
}

func (g *generator) renderListing(store *reference.Store, brands map[int]reference.ID, sf int, makers []manufacturer, prod product) {
	mk := makers[prod.maker]
	mid, ok := brands[prod.maker]
	if !ok {
		mr := reference.New(schema.ClassManufacturer)
		mr.Source = fmt.Sprintf("store%d", sf)
		mr.Entity = mk.label
		// Each storefront renders the brand in its own legal-suffix style.
		mr.AddAtomic(schema.AttrName, g.corrupt(mk.root+" "+brandSuffixes[(sf+prod.maker)%len(brandSuffixes)]))
		if g.rng.Float64() < 0.7 {
			mr.AddAtomic(schema.AttrCountry, mk.country)
		}
		mid = store.Add(mr)
		brands[prod.maker] = mid
	}

	pr := reference.New(schema.ClassProduct)
	pr.Source = fmt.Sprintf("store%d", sf)
	pr.Entity = prod.label
	pr.AddAtomic(schema.AttrTitle, g.corrupt(g.title(mk, prod, sf)))
	pr.AddAtomic(schema.AttrModel, g.model(prod, sf))
	pr.AddAssoc(schema.AttrMadeBy, mid)
	store.Add(pr)
}

// title renders the listing title in the storefront's house style.
func (g *generator) title(mk manufacturer, prod product, sf int) string {
	switch sf % 3 {
	case 0:
		return fmt.Sprintf("%s %d %s", prod.line, prod.model, prod.noun)
	case 1:
		return fmt.Sprintf("%s %s%d %s", mk.root, modelPrefix(prod.line), prod.model, prod.noun)
	default:
		return fmt.Sprintf("%s %s (%s)", prod.line, prod.noun, mk.root)
	}
}

// model renders the model number: "TB-5000", "TB5000", or "TB 5000".
func (g *generator) model(prod product, sf int) string {
	pre := modelPrefix(prod.line)
	switch sf % 3 {
	case 0:
		return fmt.Sprintf("%s-%d", pre, prod.model)
	case 1:
		return fmt.Sprintf("%s%d", pre, prod.model)
	default:
		return fmt.Sprintf("%s %d", pre, prod.model)
	}
}

// modelPrefix derives the model-number letters from the product line's
// capitals: "TurboBlend" → "TB".
func modelPrefix(line string) string {
	var b strings.Builder
	for _, r := range line {
		if r >= 'A' && r <= 'Z' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return strings.ToUpper(line[:2])
	}
	return b.String()
}

// corrupt applies a typo or case fold with probability NoiseRate.
func (g *generator) corrupt(s string) string {
	if g.rng.Float64() >= g.p.NoiseRate {
		return s
	}
	if g.rng.Intn(2) == 0 {
		return strings.ToLower(s)
	}
	rs := []rune(s)
	if len(rs) < 4 {
		return s
	}
	i := 1 + g.rng.Intn(len(rs)-3)
	if rs[i] == ' ' || rs[i+1] == ' ' {
		return s
	}
	rs[i], rs[i+1] = rs[i+1], rs[i]
	return string(rs)
}
