// Package corrupt injects reproducible noise into reference stores for
// robustness experiments: how gracefully does reconciliation quality
// degrade as attribute values get dirtier? The operators model the error
// classes record-linkage data actually exhibits — typos, truncations,
// OCR-style character confusions, dropped tokens.
package corrupt

import (
	"math/rand"
	"strings"

	"refrecon/internal/reference"
)

// Op is one corruption operator: given randomness and a value, return the
// corrupted value (possibly unchanged for inputs it cannot corrupt).
type Op func(rng *rand.Rand, v string) string

// Typo swaps two adjacent interior letters.
func Typo(rng *rand.Rand, v string) string {
	rs := []rune(v)
	if len(rs) < 4 {
		return v
	}
	i := 1 + rng.Intn(len(rs)-3)
	if rs[i] == ' ' || rs[i+1] == ' ' || rs[i] == '@' || rs[i+1] == '@' {
		return v
	}
	rs[i], rs[i+1] = rs[i+1], rs[i]
	return string(rs)
}

// DropChar deletes one interior character.
func DropChar(rng *rand.Rand, v string) string {
	rs := []rune(v)
	if len(rs) < 4 {
		return v
	}
	i := 1 + rng.Intn(len(rs)-2)
	if rs[i] == '@' {
		return v
	}
	return string(rs[:i]) + string(rs[i+1:])
}

// DoubleChar duplicates one interior character.
func DoubleChar(rng *rand.Rand, v string) string {
	rs := []rune(v)
	if len(rs) < 3 {
		return v
	}
	i := 1 + rng.Intn(len(rs)-2)
	if rs[i] == ' ' || rs[i] == '@' {
		return v
	}
	return string(rs[:i+1]) + string(rs[i]) + string(rs[i+1:])
}

// OCRConfuse substitutes a character with a visually similar one
// (1/l, 0/O, m/rn-style confusions).
func OCRConfuse(rng *rand.Rand, v string) string {
	pairs := map[rune]rune{
		'l': '1', '1': 'l', 'o': '0', '0': 'o', 'e': 'c', 'c': 'e',
		'u': 'v', 'v': 'u', 'i': 'j', 'j': 'i', 's': '5', '5': 's',
	}
	rs := []rune(v)
	candidates := make([]int, 0, len(rs))
	for i, r := range rs {
		if _, ok := pairs[r]; ok {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return v
	}
	i := candidates[rng.Intn(len(candidates))]
	rs[i] = pairs[rs[i]]
	return string(rs)
}

// DropToken removes one whitespace-separated token (never the only one).
func DropToken(rng *rand.Rand, v string) string {
	toks := strings.Fields(v)
	if len(toks) < 2 {
		return v
	}
	i := rng.Intn(len(toks))
	out := append(append([]string{}, toks[:i]...), toks[i+1:]...)
	return strings.Join(out, " ")
}

// Truncate cuts the value to roughly three quarters of its length.
func Truncate(rng *rand.Rand, v string) string {
	rs := []rune(v)
	if len(rs) < 8 {
		return v
	}
	keep := len(rs)*3/4 + rng.Intn(len(rs)/4)
	return strings.TrimSpace(string(rs[:keep]))
}

// DefaultOps is the standard operator mix.
func DefaultOps() []Op {
	return []Op{Typo, DropChar, DoubleChar, OCRConfuse, DropToken, Truncate}
}

// Store returns a deep copy of src in which each atomic value is corrupted
// with probability rate by a randomly chosen operator. Associations,
// classes, sources, and gold labels are preserved; the copy is
// deterministic in seed. rate <= 0 returns a plain copy.
func Store(src *reference.Store, seed int64, rate float64, ops []Op) *reference.Store {
	if len(ops) == 0 {
		ops = DefaultOps()
	}
	rng := rand.New(rand.NewSource(seed))
	out := reference.NewStore()
	for _, r := range src.All() {
		c := reference.New(r.Class)
		c.Source = r.Source
		c.Entity = r.Entity
		for _, attr := range r.AtomicAttrs() {
			for _, v := range r.Atomic(attr) {
				if rate > 0 && rng.Float64() < rate {
					v = ops[rng.Intn(len(ops))](rng, v)
				}
				c.AddAtomic(attr, v)
			}
		}
		out.Add(c)
	}
	// Second pass: associations (ids are preserved one-to-one).
	for _, r := range src.All() {
		c := out.Get(r.ID)
		for _, attr := range r.AssocAttrs() {
			for _, t := range r.Assoc(attr) {
				c.AddAssoc(attr, t)
			}
		}
	}
	return out
}
