package corrupt

import (
	"math/rand"
	"testing"

	"refrecon/internal/datagen/pim"
	"refrecon/internal/schema"
)

func TestOpsNeverPanicAndKeepShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := []string{"", "a", "ab", "abc", "Michael Stonebraker",
		"stonebraker@csail.mit.edu", "日本語 text", "x y z w"}
	for _, op := range DefaultOps() {
		for _, in := range inputs {
			for i := 0; i < 20; i++ {
				out := op(rng, in)
				if in != "" && out == "" {
					t.Errorf("operator erased %q entirely", in)
				}
			}
		}
	}
}

func TestOCRConfuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	out := OCRConfuse(rng, "hello")
	if out == "hello" {
		t.Error("confusable characters present; expected a substitution")
	}
	if OCRConfuse(rng, "qqq") != "qqq" {
		t.Error("no confusable characters; expected identity")
	}
}

func TestDropToken(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if DropToken(rng, "single") != "single" {
		t.Error("single token must survive")
	}
	out := DropToken(rng, "a b c")
	if len(out) >= len("a b c") {
		t.Errorf("DropToken(%q) = %q", "a b c", out)
	}
}

func TestStoreZeroRateIsIdentity(t *testing.T) {
	g, err := pim.Generate(pim.DatasetA(0.02))
	if err != nil {
		t.Fatal(err)
	}
	copy := Store(g.Store, 1, 0, nil)
	if copy.Len() != g.Store.Len() {
		t.Fatalf("len %d vs %d", copy.Len(), g.Store.Len())
	}
	for i := 0; i < copy.Len(); i++ {
		a, b := g.Store.All()[i], copy.All()[i]
		if a.String() != b.String() || a.Entity != b.Entity || a.Source != b.Source {
			t.Fatalf("ref %d differs: %v vs %v", i, a, b)
		}
	}
	if err := copy.Validate(schema.PIM()); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCorruptsAtRate(t *testing.T) {
	g, err := pim.Generate(pim.DatasetA(0.02))
	if err != nil {
		t.Fatal(err)
	}
	noisy := Store(g.Store, 7, 0.5, nil)
	changed, total := 0, 0
	for i := 0; i < noisy.Len(); i++ {
		a, b := g.Store.All()[i], noisy.All()[i]
		for _, attr := range a.AtomicAttrs() {
			va, vb := a.Atomic(attr), b.Atomic(attr)
			for j := range va {
				total++
				if j < len(vb) && va[j] != vb[j] {
					changed++
				}
			}
		}
		// Associations and labels survive corruption.
		if a.Entity != b.Entity {
			t.Fatal("entity label corrupted")
		}
		for _, attr := range a.AssocAttrs() {
			if len(a.Assoc(attr)) != len(b.Assoc(attr)) {
				t.Fatal("association corrupted")
			}
		}
	}
	frac := float64(changed) / float64(total)
	// Operators sometimes return inputs unchanged, so realized rate is
	// below 0.5 but must be substantial.
	if frac < 0.25 || frac > 0.55 {
		t.Errorf("realized corruption rate %.2f, want ~0.3-0.5", frac)
	}
	if err := noisy.Validate(schema.PIM()); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDeterministic(t *testing.T) {
	g, err := pim.Generate(pim.DatasetA(0.02))
	if err != nil {
		t.Fatal(err)
	}
	n1 := Store(g.Store, 42, 0.3, nil)
	n2 := Store(g.Store, 42, 0.3, nil)
	for i := 0; i < n1.Len(); i++ {
		if n1.All()[i].String() != n2.All()[i].String() {
			t.Fatalf("nondeterministic corruption at ref %d", i)
		}
	}
	n3 := Store(g.Store, 43, 0.3, nil)
	diff := false
	for i := 0; i < n1.Len(); i++ {
		if n1.All()[i].String() != n3.All()[i].String() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should corrupt differently")
	}
}
