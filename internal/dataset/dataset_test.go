package dataset

import (
	"bytes"
	"strings"
	"testing"

	"refrecon/internal/extract"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func sample() *Dataset {
	s := reference.NewStore()
	p1 := reference.New(schema.ClassPerson)
	p1.Source = extract.SourceEmail
	p1.Entity = "P1"
	p1.AddAtomic(schema.AttrName, "Alice")
	p1.AddAtomic(schema.AttrEmail, "alice@x.edu")
	s.Add(p1)
	p2 := reference.New(schema.ClassPerson)
	p2.Source = extract.SourceBibTeX
	p2.Entity = "P1"
	p2.AddAtomic(schema.AttrName, "Alice Smith")
	s.Add(p2)
	p3 := reference.New(schema.ClassPerson)
	p3.Source = extract.SourceEmail
	p3.Entity = "P2"
	p3.AddAtomic(schema.AttrEmail, "bob@x.edu")
	s.Add(p3)
	p1.AddAssoc(schema.AttrEmailContact, p3.ID)
	p3.AddAssoc(schema.AttrEmailContact, p1.ID)
	p2.AddAssoc(schema.AttrCoAuthor, p1.ID) // link across sources

	a := reference.New(schema.ClassArticle)
	a.Entity = "A1"
	a.Source = extract.SourceBibTeX
	a.AddAtomic(schema.AttrTitle, "A title")
	a.AddAssoc(schema.AttrAuthoredBy, p2.ID)
	s.Add(a)
	return &Dataset{Name: "T", Store: s}
}

func TestEntityCount(t *testing.T) {
	d := sample()
	if got := d.EntityCount(schema.ClassPerson); got != 2 {
		t.Errorf("person entities = %d", got)
	}
	if got := d.EntityCount(schema.ClassArticle); got != 1 {
		t.Errorf("article entities = %d", got)
	}
}

func TestPEmailSubset(t *testing.T) {
	sub := sample().PEmail()
	if sub.Store.Len() != 2 {
		t.Fatalf("PEmail len = %d", sub.Store.Len())
	}
	for _, r := range sub.Store.All() {
		if r.Class != schema.ClassPerson || r.Source != extract.SourceEmail {
			t.Errorf("wrong ref in PEmail: %v", r)
		}
	}
	// Contact link between the two email persons must survive remapping.
	r0 := sub.Store.Get(0)
	if got := r0.Assoc(schema.AttrEmailContact); len(got) != 1 || got[0] != 1 {
		t.Errorf("remapped contacts = %v", got)
	}
	if !strings.Contains(sub.Name, "PEmail") {
		t.Errorf("subset name = %q", sub.Name)
	}
}

func TestPArticleSubset(t *testing.T) {
	sub := sample().PArticle()
	if sub.Store.Len() != 2 { // bibtex person + article
		t.Fatalf("PArticle len = %d", sub.Store.Len())
	}
	// The coAuthor link to the dropped email person must be removed.
	for _, r := range sub.Store.All() {
		if r.Class == schema.ClassPerson {
			if got := r.Assoc(schema.AttrCoAuthor); len(got) != 0 {
				t.Errorf("dangling link survived: %v", got)
			}
		}
		if r.Class == schema.ClassArticle {
			if got := r.Assoc(schema.AttrAuthoredBy); len(got) != 1 {
				t.Errorf("article lost its author: %v", got)
			}
		}
	}
	if err := sub.Store.Validate(schema.PIM()); err != nil {
		t.Errorf("subset invalid: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || back.Store.Len() != d.Store.Len() {
		t.Fatalf("round trip mismatch: %s %d", back.Name, back.Store.Len())
	}
	for i := 0; i < d.Store.Len(); i++ {
		a := d.Store.Get(reference.ID(i))
		b := back.Store.Get(reference.ID(i))
		if a.String() != b.String() || a.Entity != b.Entity || a.Source != b.Source {
			t.Errorf("ref %d mismatch: %v vs %v", i, a, b)
		}
		for _, attr := range a.AssocAttrs() {
			if len(a.Assoc(attr)) != len(b.Assoc(attr)) {
				t.Errorf("ref %d assoc %s mismatch", i, attr)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","references":[{"id":5,"class":"Person"}]}`)); err == nil {
		t.Error("non-dense ids should fail")
	}
}
