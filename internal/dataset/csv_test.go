package dataset

import (
	"bytes"
	"strings"
	"testing"

	"refrecon/internal/schema"
)

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(d.Name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Store.Len() != d.Store.Len() {
		t.Fatalf("len %d vs %d", back.Store.Len(), d.Store.Len())
	}
	for i := 0; i < d.Store.Len(); i++ {
		a := d.Store.All()[i]
		b := back.Store.All()[i]
		if a.String() != b.String() || a.Entity != b.Entity || a.Source != b.Source {
			t.Errorf("ref %d: %v vs %v", i, a, b)
		}
		for _, attr := range a.AssocAttrs() {
			if len(a.Assoc(attr)) != len(b.Assoc(attr)) {
				t.Errorf("ref %d assoc %s lost", i, attr)
			}
		}
	}
	if err := back.Store.Validate(schema.PIM()); err != nil {
		t.Error(err)
	}
}

func TestCSVMultiValued(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("id,class,source,entity,email,name,@emailContact\n")
	buf.WriteString("0,Person,email,E1,a@x.edu|b@y.org,Alice,1\n")
	buf.WriteString("1,Person,email,E2,c@z.com,,0\n")
	d, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	r0 := d.Store.Get(0)
	if got := r0.Atomic(schema.AttrEmail); len(got) != 2 {
		t.Errorf("multi-valued email = %v", got)
	}
	if got := r0.Assoc(schema.AttrEmailContact); len(got) != 1 || got[0] != 1 {
		t.Errorf("assoc = %v", got)
	}
	if d.Store.Get(1).FirstAtomic(schema.AttrName) != "" {
		t.Error("empty cell must mean no value")
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",                                       // no header
		"wrong,header,entirely\n",                // bad header
		"id,class,source,entity\nx,P,s,e\n",      // bad id
		"id,class,source,entity\n5,P,s,e\n",      // non-dense
		"id,class,source,entity,@l\n0,P,s,e,q\n", // bad link
		"id,class,source,entity,@l\n0,P,s,e,9\n", // dangling link
	}
	for _, src := range cases {
		if _, err := ReadCSV("t", strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestCSVValuesWithCommas(t *testing.T) {
	d := sample()
	d.Store.Get(0).AddAtomic(schema.AttrName, "Liddell, Alice")
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(d.Name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	names := back.Store.Get(0).Atomic(schema.AttrName)
	found := false
	for _, n := range names {
		if n == "Liddell, Alice" {
			found = true
		}
	}
	if !found {
		t.Errorf("comma value lost: %v", names)
	}
}
