package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"refrecon/internal/reference"
)

// CSV interchange: one row per reference, in the flat format entity-
// resolution corpora are usually shipped in. Multi-valued attributes join
// with "|", associations serialize as "|"-joined reference ids. The header
// is
//
//	id,class,source,entity,<attr>,...,@<assoc>,...
//
// with attribute columns ("name") and association columns ("@coAuthor")
// discovered from the data on write and from the header on read.

// WriteCSV serializes the dataset.
func (d *Dataset) WriteCSV(w io.Writer) error {
	atomicCols := map[string]bool{}
	assocCols := map[string]bool{}
	for _, r := range d.Store.All() {
		for _, a := range r.AtomicAttrs() {
			atomicCols[a] = true
		}
		for _, a := range r.AssocAttrs() {
			assocCols[a] = true
		}
	}
	atomics := sortedKeys(atomicCols)
	assocs := sortedKeys(assocCols)

	cw := csv.NewWriter(w)
	header := []string{"id", "class", "source", "entity"}
	header = append(header, atomics...)
	for _, a := range assocs {
		header = append(header, "@"+a)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range d.Store.All() {
		row := []string{
			strconv.Itoa(int(r.ID)), r.Class, r.Source, r.Entity,
		}
		for _, a := range atomics {
			row = append(row, strings.Join(r.Atomic(a), "|"))
		}
		for _, a := range assocs {
			ids := r.Assoc(a)
			parts := make([]string, len(ids))
			for i, id := range ids {
				parts[i] = strconv.Itoa(int(id))
			}
			row = append(row, strings.Join(parts, "|"))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV deserializes a dataset written by WriteCSV (or assembled by hand
// in the same format). References must appear with dense ids in order.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: csv header: %w", err)
	}
	if len(header) < 4 || header[0] != "id" || header[1] != "class" {
		return nil, fmt.Errorf("dataset: csv header must start with id,class,source,entity")
	}
	type col struct {
		name  string
		assoc bool
	}
	var cols []col
	for _, h := range header[4:] {
		if rest, ok := strings.CutPrefix(h, "@"); ok {
			cols = append(cols, col{rest, true})
		} else {
			cols = append(cols, col{h, false})
		}
	}

	store := reference.NewStore()
	type pendingAssoc struct {
		from reference.ID
		attr string
		to   reference.ID
	}
	var pending []pendingAssoc
	for rowNo := 2; ; rowNo++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", rowNo, err)
		}
		if len(row) < 4 {
			return nil, fmt.Errorf("dataset: csv row %d: too few fields", rowNo)
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: bad id %q", rowNo, row[0])
		}
		if id != store.Len() {
			return nil, fmt.Errorf("dataset: csv row %d: non-dense id %d", rowNo, id)
		}
		ref := reference.New(row[1])
		ref.Source = row[2]
		ref.Entity = row[3]
		for i, c := range cols {
			if 4+i >= len(row) || row[4+i] == "" {
				continue
			}
			for _, v := range strings.Split(row[4+i], "|") {
				if c.assoc {
					t, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("dataset: csv row %d: bad link %q", rowNo, v)
					}
					pending = append(pending, pendingAssoc{reference.ID(id), c.name, reference.ID(t)})
				} else {
					ref.AddAtomic(c.name, v)
				}
			}
		}
		store.Add(ref)
	}
	for _, p := range pending {
		if int(p.to) >= store.Len() {
			return nil, fmt.Errorf("dataset: link to unknown reference %d", p.to)
		}
		store.Get(p.from).AddAssoc(p.attr, p.to)
	}
	return &Dataset{Name: name, Store: store}, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
