// Package dataset bundles a reference store with its provenance and
// provides the subset operations the paper's evaluation needs (§5.3 splits
// each PIM dataset into PEmail and PArticle person subsets) plus JSON
// serialization for dumping and reloading corpora.
package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"refrecon/internal/extract"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// Dataset is a named, labeled reference store.
type Dataset struct {
	Name  string
	Store *reference.Store
}

// EntityCount returns the number of distinct gold entities of a class
// (references with empty labels are ignored).
func (d *Dataset) EntityCount(class string) int {
	seen := make(map[string]bool)
	for _, id := range d.Store.ByClass(class) {
		if e := d.Store.Get(id).Entity; e != "" {
			seen[e] = true
		}
	}
	return len(seen)
}

// Filter builds a new dataset containing the references accepted by keep,
// with ids remapped densely and association links to dropped references
// removed.
func (d *Dataset) Filter(name string, keep func(*reference.Reference) bool) *Dataset {
	out := reference.NewStore()
	mapping := make(map[reference.ID]reference.ID)
	var kept []*reference.Reference
	for _, r := range d.Store.All() {
		if !keep(r) {
			continue
		}
		clone := reference.New(r.Class)
		clone.Source = r.Source
		clone.Entity = r.Entity
		for _, attr := range r.AtomicAttrs() {
			for _, v := range r.Atomic(attr) {
				clone.AddAtomic(attr, v)
			}
		}
		mapping[r.ID] = out.Add(clone)
		kept = append(kept, r)
	}
	for _, r := range kept {
		clone := out.Get(mapping[r.ID])
		for _, attr := range r.AssocAttrs() {
			for _, target := range r.Assoc(attr) {
				if nt, ok := mapping[target]; ok {
					clone.AddAssoc(attr, nt)
				}
			}
		}
	}
	return &Dataset{Name: name, Store: out}
}

// PEmail returns the §5.3 email subset: only the person references
// extracted from email, with their mutual contact links. It is a
// single-class information space with rich associations.
func (d *Dataset) PEmail() *Dataset {
	return d.Filter(d.Name+"/PEmail", func(r *reference.Reference) bool {
		return r.Class == schema.ClassPerson && r.Source == extract.SourceEmail
	})
}

// PArticle returns the §5.3 article subset: everything except the
// email-extracted persons — the bibliography world of name-only person
// references, articles, and venues.
func (d *Dataset) PArticle() *Dataset {
	return d.Filter(d.Name+"/PArticle", func(r *reference.Reference) bool {
		return !(r.Class == schema.ClassPerson && r.Source == extract.SourceEmail)
	})
}

// jsonRef is the serialized form of one reference.
type jsonRef struct {
	ID     reference.ID              `json:"id"`
	Class  string                    `json:"class"`
	Source string                    `json:"source,omitempty"`
	Entity string                    `json:"entity,omitempty"`
	Atomic map[string][]string       `json:"atomic,omitempty"`
	Assoc  map[string][]reference.ID `json:"assoc,omitempty"`
}

type jsonDataset struct {
	Name string    `json:"name"`
	Refs []jsonRef `json:"references"`
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	out := jsonDataset{Name: d.Name}
	for _, r := range d.Store.All() {
		jr := jsonRef{ID: r.ID, Class: r.Class, Source: r.Source, Entity: r.Entity}
		if attrs := r.AtomicAttrs(); len(attrs) > 0 {
			jr.Atomic = make(map[string][]string, len(attrs))
			for _, a := range attrs {
				jr.Atomic[a] = append([]string(nil), r.Atomic(a)...)
			}
		}
		if attrs := r.AssocAttrs(); len(attrs) > 0 {
			jr.Assoc = make(map[string][]reference.ID, len(attrs))
			for _, a := range attrs {
				jr.Assoc[a] = append([]reference.ID(nil), r.Assoc(a)...)
			}
		}
		out.Refs = append(out.Refs, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON deserializes a dataset written by WriteJSON. References must be
// listed with dense ids in order.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var in jsonDataset
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	sort.Slice(in.Refs, func(i, j int) bool { return in.Refs[i].ID < in.Refs[j].ID })
	store := reference.NewStore()
	for i, jr := range in.Refs {
		if int(jr.ID) != i {
			return nil, fmt.Errorf("dataset: non-dense reference id %d at position %d", jr.ID, i)
		}
		ref := reference.New(jr.Class)
		ref.Source = jr.Source
		ref.Entity = jr.Entity
		atomicAttrs := make([]string, 0, len(jr.Atomic))
		for a := range jr.Atomic {
			atomicAttrs = append(atomicAttrs, a)
		}
		sort.Strings(atomicAttrs)
		for _, a := range atomicAttrs {
			for _, v := range jr.Atomic[a] {
				ref.AddAtomic(a, v)
			}
		}
		assocAttrs := make([]string, 0, len(jr.Assoc))
		for a := range jr.Assoc {
			assocAttrs = append(assocAttrs, a)
		}
		sort.Strings(assocAttrs)
		for _, a := range assocAttrs {
			for _, t := range jr.Assoc[a] {
				ref.AddAssoc(a, t)
			}
		}
		store.Add(ref)
	}
	return &Dataset{Name: in.Name, Store: store}, nil
}
