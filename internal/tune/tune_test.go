package tune

import (
	"testing"

	"refrecon/internal/datagen/pim"
	"refrecon/internal/recon"
	"refrecon/internal/schema"
)

func TestSearchFindsReasonableParameters(t *testing.T) {
	g, err := pim.Generate(pim.DatasetA(0.04))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(schema.PIM(), g.Store, recon.DefaultConfig(), DefaultGrid(), schema.ClassPerson)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 27 {
		t.Fatalf("points = %d, want full 3x3x3 grid", len(res.Points))
	}
	best := res.Best()
	if best.Score <= 0 {
		t.Fatalf("best score = %f", best.Score)
	}
	// Points must be sorted descending.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Score > res.Points[i-1].Score {
			t.Fatal("points not sorted by score")
		}
	}
	// The paper claims insensitivity to small perturbations: the published
	// setting should score close to the best grid point.
	var published Point
	for _, p := range res.Points {
		if p.MergeThreshold == 0.85 && p.Beta == 0.10 && p.Gamma == 0.05 {
			published = p
		}
	}
	if published.PerClass == nil {
		t.Fatal("published setting not in grid")
	}
	if best.Score-published.Score > 0.08 {
		t.Errorf("published setting %.3f far from best %.3f", published.Score, best.Score)
	}
}

func TestSearchEmptyGridUsesBase(t *testing.T) {
	g, err := pim.Generate(pim.DatasetA(0.02))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(schema.PIM(), g.Store, recon.DefaultConfig(), Grid{}, schema.ClassPerson)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(res.Points))
	}
	p := res.Best()
	if p.MergeThreshold != 0.85 || p.Beta != 0.1 || p.Gamma != 0.05 {
		t.Errorf("base point = %+v", p)
	}
}

func TestScaledParamsKeepRatios(t *testing.T) {
	cfg := recon.DefaultConfig()
	params := scaledParams(cfg, 0.2, 0.1)
	if params[schema.ClassVenue].Beta != 0.4 {
		t.Errorf("venue beta should keep its 2x ratio: %f", params[schema.ClassVenue].Beta)
	}
	if params[schema.ClassPerson].Beta != 0.2 {
		t.Errorf("person beta = %f", params[schema.ClassPerson].Beta)
	}
	if params[schema.ClassPerson].TRV != 0.7 {
		t.Errorf("t_rv must not change: %f", params[schema.ClassPerson].TRV)
	}
}

func TestBestOfEmpty(t *testing.T) {
	var r Result
	if p := r.Best(); p.Score != 0 {
		t.Errorf("empty best = %+v", p)
	}
}
