// Package tune implements the paper's second future-work direction (§7):
// adjusting the similarity machinery from labeled data. Instead of the
// paper's proposed user-feedback loop, it provides a deterministic grid
// search over the reconciler's tunable parameters — merge threshold, β,
// and γ — maximizing F-measure on a gold-labeled reference store.
//
// The paper notes (§5.2) that its hand-set parameters were conservative
// and results "insensitive to small perturbations"; Search makes that
// claim checkable and gives custom domains a calibration tool.
package tune

import (
	"fmt"
	"sort"

	"refrecon/internal/metrics"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/simfn"
)

// Grid is the parameter space to sweep. Empty dimensions keep the base
// configuration's value.
type Grid struct {
	MergeThresholds []float64
	Betas           []float64
	Gammas          []float64
}

// DefaultGrid sweeps around the published values.
func DefaultGrid() Grid {
	return Grid{
		MergeThresholds: []float64{0.80, 0.85, 0.90},
		Betas:           []float64{0.05, 0.10, 0.20},
		Gammas:          []float64{0.025, 0.05, 0.10},
	}
}

// Point is one evaluated parameter combination.
type Point struct {
	MergeThreshold float64
	Beta           float64
	Gamma          float64
	// Score is the mean F-measure over the evaluated classes.
	Score float64
	// PerClass holds the class reports.
	PerClass map[string]metrics.Report
}

// Result is the outcome of a Search: every evaluated point, best first.
type Result struct {
	Points []Point
}

// Best returns the highest-scoring point.
func (r *Result) Best() Point {
	if len(r.Points) == 0 {
		return Point{}
	}
	return r.Points[0]
}

// Search evaluates the full grid on the labeled store and returns all
// points ordered by descending score (ties broken toward the published
// parameter values, then deterministically). classes defaults to every
// class present in the store.
func Search(sch *schema.Schema, store *reference.Store, base recon.Config, grid Grid, classes ...string) (*Result, error) {
	if len(classes) == 0 {
		classes = store.Classes()
	}
	thresholds := grid.MergeThresholds
	if len(thresholds) == 0 {
		thresholds = []float64{base.MergeThreshold}
	}
	betas := grid.Betas
	if len(betas) == 0 {
		betas = []float64{baseBeta(base)}
	}
	gammas := grid.Gammas
	if len(gammas) == 0 {
		gammas = []float64{baseGamma(base)}
	}

	var out Result
	for _, th := range thresholds {
		for _, beta := range betas {
			for _, gamma := range gammas {
				cfg := base
				cfg.MergeThreshold = th
				cfg.Params = scaledParams(base, beta, gamma)
				res, err := recon.New(sch, cfg).Reconcile(store)
				if err != nil {
					return nil, fmt.Errorf("tune: point (%.2f, %.2f, %.3f): %w", th, beta, gamma, err)
				}
				pt := Point{
					MergeThreshold: th, Beta: beta, Gamma: gamma,
					PerClass: make(map[string]metrics.Report, len(classes)),
				}
				n := 0
				for _, class := range classes {
					rep := metrics.Evaluate(store, class, res.Partitions[class])
					if rep.References == 0 {
						continue
					}
					pt.PerClass[class] = rep
					pt.Score += rep.F1
					n++
				}
				if n > 0 {
					pt.Score /= float64(n)
				}
				out.Points = append(out.Points, pt)
			}
		}
	}
	sort.SliceStable(out.Points, func(i, j int) bool {
		if out.Points[i].Score != out.Points[j].Score {
			return out.Points[i].Score > out.Points[j].Score
		}
		// Prefer the published setting among ties.
		return distanceToPublished(out.Points[i]) < distanceToPublished(out.Points[j])
	})
	return &out, nil
}

// scaledParams keeps each class's published β/γ *ratios* (venues use 2β)
// while setting the base values.
func scaledParams(base recon.Config, beta, gamma float64) map[string]simfn.ClassParams {
	src := base.Params
	if src == nil {
		src = simfn.PaperParams()
	}
	baseB, baseG := baseBeta(base), baseGamma(base)
	out := make(map[string]simfn.ClassParams, len(src))
	for class, p := range src {
		ratioB, ratioG := 1.0, 1.0
		if baseB > 0 {
			ratioB = p.Beta / baseB
		}
		if baseG > 0 {
			ratioG = p.Gamma / baseG
		}
		out[class] = simfn.ClassParams{TRV: p.TRV, Beta: beta * ratioB, Gamma: gamma * ratioG}
	}
	return out
}

func baseBeta(base recon.Config) float64 {
	if p, ok := params(base)[schema.ClassPerson]; ok {
		return p.Beta
	}
	return 0.1
}

func baseGamma(base recon.Config) float64 {
	if p, ok := params(base)[schema.ClassPerson]; ok {
		return p.Gamma
	}
	return 0.05
}

func params(base recon.Config) map[string]simfn.ClassParams {
	if base.Params != nil {
		return base.Params
	}
	return simfn.PaperParams()
}

func distanceToPublished(p Point) float64 {
	d := abs(p.MergeThreshold-0.85) + abs(p.Beta-0.1) + abs(p.Gamma-0.05)
	return d
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
