// Package parallel provides a small fork-join worker pool for fanning
// index-addressed work items out over the machine's cores.
//
// The pool is built for deterministic data-parallel scoring: callers
// partition work as a contiguous index range, workers claim chunks of the
// range from a shared atomic cursor (chunked self-scheduling, so fast
// workers steal the remainder of slow workers' share), and every item
// writes its result into its own slot. Because item i always computes the
// same value regardless of which worker runs it or when, the aggregate
// result is bit-identical across worker counts — including workers == 1,
// which runs the loop inline with no goroutines at all.
package parallel

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// minChunk is the smallest chunk of items a worker claims at once. Larger
// chunks amortize the atomic cursor traffic; reconciliation work items
// (a handful of string comparisons each) are cheap enough that claiming
// them one by one would spend a visible fraction of time on the cursor.
const minChunk = 16

// Workers resolves a worker-count setting: values <= 0 select
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// For runs fn(i) for every i in [0, n) using up to workers goroutines
// (workers <= 0 means runtime.NumCPU()). It returns when every call has
// completed. fn must be safe for concurrent invocation on distinct
// indexes; each index is invoked exactly once.
//
// With workers == 1 — or when the range is too small to be worth fanning
// out — the loop runs inline on the calling goroutine, preserving exact
// serial behavior. A panic in any fn is re-raised on the calling
// goroutine after the remaining workers drain.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 || n <= minChunk {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	// Chunk size targets several claims per worker so the tail balances,
	// floored at minChunk to bound cursor contention.
	chunk := n / (workers * 4)
	if chunk < minChunk {
		chunk = minChunk
	}

	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value // first recovered panic, re-raised by the caller
	)
	work := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &workerPanic{r})
			}
		}()
		for {
			end := int(cursor.Add(int64(chunk)))
			start := end - chunk
			if start >= n {
				return
			}
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				fn(i)
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	if p, ok := panicked.Load().(*workerPanic); ok {
		panic(p.value)
	}
}

// Coarse runs fn(i) for every i in [0, n) using up to workers goroutines,
// claiming indexes one at a time. Unlike For — which inlines small ranges
// because its work items are tiny — Coarse assumes each item is a large
// independent task (e.g. one shard's propagation fixed point), so even a
// handful of items is worth fanning out. workers <= 0 means
// runtime.NumCPU(); workers == 1 runs inline, preserving exact serial
// behavior. A panic in any fn is re-raised on the calling goroutine after
// the remaining workers drain.
func Coarse(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	work := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &workerPanic{r})
			}
		}()
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	if p, ok := panicked.Load().(*workerPanic); ok {
		panic(p.value)
	}
}

// workerPanic wraps a recovered panic value so atomic.Value always stores
// one concrete type (atomic.Value requires consistent dynamic types).
type workerPanic struct{ value any }

// ForLabeled is For with pprof labels ("refrecon.phase" = phase) applied
// for the duration of the fan-out. Goroutines inherit their creator's
// label set, so the spawned workers carry the label too and CPU profiles
// attribute their samples to the phase. An empty phase is exactly For —
// no label, no context, no overhead.
func ForLabeled(workers, n int, phase string, fn func(i int)) {
	if phase == "" {
		For(workers, n, fn)
		return
	}
	pprof.Do(context.Background(), pprof.Labels("refrecon.phase", phase), func(context.Context) {
		For(workers, n, fn)
	})
}
