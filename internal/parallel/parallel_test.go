package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU = %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU = %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		for _, n := range []int{0, 1, 7, minChunk, minChunk + 1, 1000} {
			counts := make([]int32, n)
			For(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForDeterministicByIndex(t *testing.T) {
	// Each index computes a pure function of itself into its own slot, so
	// results must match the serial run at any worker count.
	const n = 5000
	f := func(i int) int { return i*i + 7 }
	want := make([]int, n)
	For(1, n, func(i int) { want[i] = f(i) })
	for _, workers := range []int{2, 4, 16} {
		got := make([]int, n)
		For(workers, n, func(i int) { got[i] = f(i) })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	For(4, 1000, func(i int) {
		if i == 537 {
			panic("boom")
		}
	})
	t.Fatal("For returned instead of panicking")
}

func TestForSmallRangeRunsInline(t *testing.T) {
	// Ranges at or below minChunk run on the calling goroutine even with
	// many workers: writes need no synchronization to be visible here.
	seen := make([]bool, minChunk)
	For(8, minChunk, func(i int) { seen[i] = true })
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func BenchmarkForOverhead(b *testing.B) {
	const n = 4096
	sink := make([]float64, n)
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "serial", 2: "2workers", 4: "4workers"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				For(workers, n, func(j int) {
					sink[j] = float64(j) * 1.0001
				})
			}
		})
	}
}
