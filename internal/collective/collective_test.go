package collective

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
)

// frozenDec scripts one stored pair's snapshot decision.
type frozenDec struct {
	sim      float64
	merged   bool
	nonMerge bool
}

// fakeHost is a fully scripted Host over a custom "Thing" class: attribute
// evidence is a single generic value node per pair, associations are a
// single "link" attribute carrying weak-boolean evidence. It lets the
// tests pin engine behavior without a snapshot or corpus statistics.
type fakeHost struct {
	classes map[reference.ID]string
	cands   map[reference.ID][]reference.ID
	assocs  map[reference.ID]map[string][]reference.ID
	attr    map[uint64]float64
	frozen  map[uint64]frozenDec
}

func (h *fakeHost) Candidates(id reference.ID) []reference.ID { return h.cands[id] }

func (h *fakeHost) ClassOf(id reference.ID) string { return h.classes[id] }

func (h *fakeHost) EachAssoc(id reference.ID, fn func(string, []reference.ID)) {
	as := h.assocs[id]
	attrs := make([]string, 0, len(as))
	for a := range as {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		fn(a, as[a])
	}
}

func (h *fakeHost) AssocEvidence(class, attr string) (string, depgraph.DepType, string, bool) {
	if attr == "link" {
		return "ga:link", depgraph.WeakBoolean, "", true
	}
	return "", 0, "", false
}

func (h *fakeHost) WireAttrEvidence(g *depgraph.Graph, n *depgraph.Node, a, b reference.ID) bool {
	sim, ok := h.attr[pairKey(a, b)]
	if !ok {
		return false
	}
	elem := fmt.Sprintf("v:%d-%d", a, b)
	vn := g.AddValuePair("g:x", elem, elem+"'", sim)
	g.AddEdge(vn, n, depgraph.RealValued, "g:x")
	return true
}

func (h *fakeHost) Frozen(a, b reference.ID) (float64, bool, bool, bool) {
	d, ok := h.frozen[pairKey(a, b)]
	if !ok {
		return 0, false, false, false
	}
	return d.sim, d.merged, d.nonMerge, true
}

// boostWorld builds the canonical test fixture: query 100 with two
// candidates 1 and 2 at equal attribute similarity 0.8; the query links to
// target 10, candidate 1 links to 11 (frozen merged with 10), candidate 2
// links to 12 (unknown to the snapshot). Only the relational evidence
// separates the candidates.
func boostWorld() *fakeHost {
	const thing = "Thing"
	h := &fakeHost{
		classes: map[reference.ID]string{
			100: thing, 1: thing, 2: thing, 10: thing, 11: thing, 12: thing,
		},
		cands: map[reference.ID][]reference.ID{
			100: {1, 2},
		},
		assocs: map[reference.ID]map[string][]reference.ID{
			100: {"link": {10}},
			1:   {"link": {11}},
			2:   {"link": {12}},
		},
		attr: map[uint64]float64{
			pairKey(100, 1): 0.8,
			pairKey(100, 2): 0.8,
		},
		frozen: map[uint64]frozenDec{
			pairKey(10, 11): {sim: 1, merged: true},
		},
	}
	return h
}

// testConfig keeps merges out of the way (threshold 0.95) so scores stay
// directly readable, with no time budget.
func testConfig() Config {
	return Config{MergeThreshold: 0.95}.WithDefaults()
}

func TestResolveRelationalBoost(t *testing.T) {
	h := boostWorld()
	res := Resolve(h, Request{Query: 100}, testConfig())
	if res.Stats.Degraded {
		t.Fatalf("unexpected degradation: %q", res.Stats.Reason)
	}
	if res.Scores == nil {
		t.Fatal("no scores")
	}
	// Candidate 1's link target pair (10, 11) is frozen merged, so its
	// weak-boolean evidence adds gamma = 0.05 over the shared 0.8 base.
	if got, want := res.Scores[1], 0.85; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("score(1) = %v, want %v", got, want)
	}
	if got, want := res.Scores[2], 0.8; got != want {
		t.Errorf("score(2) = %v, want %v", got, want)
	}
	if res.Scores[1] <= res.Scores[2] {
		t.Errorf("relational evidence must separate the candidates: %v vs %v",
			res.Scores[1], res.Scores[2])
	}
	if res.Stats.Candidates != 2 {
		t.Errorf("Candidates = %d, want 2", res.Stats.Candidates)
	}
	if res.Stats.PairNodes == 0 || res.Stats.MaxHop == 0 {
		t.Errorf("expansion stats not populated: %+v", res.Stats)
	}
}

func TestResolveFrozenNonMergeBlocksEvidence(t *testing.T) {
	h := boostWorld()
	h.frozen[pairKey(10, 11)] = frozenDec{sim: 0.9, nonMerge: true}
	res := Resolve(h, Request{Query: 100}, testConfig())
	if res.Stats.Degraded {
		t.Fatalf("unexpected degradation: %q", res.Stats.Reason)
	}
	// A constrained target pair must contribute nothing: both candidates
	// stay at the attribute-only 0.8.
	if res.Scores[1] != 0.8 || res.Scores[2] != 0.8 {
		t.Errorf("non-merge pair leaked evidence: %v", res.Scores)
	}
}

func TestResolveNodeBudgetDegrades(t *testing.T) {
	h := boostWorld()
	for max := 1; max <= 3; max++ {
		cfg := testConfig()
		cfg.MaxNodes = max
		res := Resolve(h, Request{Query: 100}, cfg)
		if !res.Stats.Degraded || res.Stats.Reason != "nodes" {
			t.Fatalf("MaxNodes=%d: Degraded=%v Reason=%q, want nodes degradation",
				max, res.Stats.Degraded, res.Stats.Reason)
		}
		if res.Scores != nil {
			t.Fatalf("MaxNodes=%d: degraded result must carry no scores", max)
		}
		if res.Stats.PairNodes > max {
			t.Fatalf("MaxNodes=%d exceeded: %d pair nodes", max, res.Stats.PairNodes)
		}
	}
	// The full expansion needs 4 pairs; at 4 the budget fits.
	cfg := testConfig()
	cfg.MaxNodes = 4
	if res := Resolve(h, Request{Query: 100}, cfg); res.Stats.Degraded {
		t.Fatalf("MaxNodes=4 should fit, degraded with %q (%d pairs)",
			res.Stats.Reason, res.Stats.PairNodes)
	}
}

func TestResolveStepBudgetDegrades(t *testing.T) {
	h := boostWorld()
	cfg := testConfig()
	cfg.MaxSteps = 1
	res := Resolve(h, Request{Query: 100}, cfg)
	if !res.Stats.Degraded || res.Stats.Reason != "steps" {
		t.Fatalf("Degraded=%v Reason=%q, want steps degradation",
			res.Stats.Degraded, res.Stats.Reason)
	}
	if res.Scores != nil {
		t.Fatal("degraded result must carry no scores")
	}
	if res.Stats.Steps > 1 {
		t.Fatalf("step budget exceeded: %d steps", res.Stats.Steps)
	}
}

func TestResolveTimeBudgetDegrades(t *testing.T) {
	h := boostWorld()
	cfg := testConfig()
	cfg.Budget = time.Nanosecond
	res := Resolve(h, Request{Query: 100}, cfg)
	if !res.Stats.Degraded || res.Stats.Reason != "time" {
		t.Fatalf("Degraded=%v Reason=%q, want time degradation",
			res.Stats.Degraded, res.Stats.Reason)
	}
	if res.Scores != nil {
		t.Fatal("degraded result must carry no scores")
	}
}

func TestResolveDeterministic(t *testing.T) {
	h := boostWorld()
	cfg := testConfig()
	first := Resolve(h, Request{Query: 100}, cfg)
	for i := 0; i < 5; i++ {
		res := Resolve(h, Request{Query: 100}, cfg)
		if !reflect.DeepEqual(res.Scores, first.Scores) {
			t.Fatalf("run %d: scores differ: %v vs %v", i, res.Scores, first.Scores)
		}
		a, b := res.Stats, first.Stats
		a.ExpandMS, a.ResolveMS, b.ExpandMS, b.ResolveMS = 0, 0, 0, 0
		if a != b {
			t.Fatalf("run %d: stats differ: %+v vs %+v", i, a, b)
		}
	}
}

func TestResolveNoCandidates(t *testing.T) {
	h := boostWorld()
	h.cands[100] = nil
	res := Resolve(h, Request{Query: 100}, testConfig())
	if res.Stats.Degraded {
		t.Fatalf("no candidates is not a degradation: %+v", res.Stats)
	}
	if res.Scores == nil || len(res.Scores) != 0 {
		t.Fatalf("want empty (non-nil) scores, got %v", res.Scores)
	}
}
