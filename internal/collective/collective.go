// Package collective implements query-time collective reconciliation:
// bounded expand-and-resolve after Bhattacharya & Getoor's query-time
// entity resolution, layered on the dependency-graph propagation engine.
//
// The serve-path Matcher scores a query against stored entities with
// entity-level MAX over attribute similarity only — none of the paper's
// relational evidence reaches query time, so a query whose attributes are
// ambiguous but whose associations are decisive lands on the wrong
// entity. Resolve fixes that locally: starting from the query reference
// it expands a bounded neighborhood (the query's blocking candidates,
// their association targets, those targets' own candidates), materializes
// a small dependency graph over just that subgraph, seeds the stored
// pairs with the snapshot's frozen decisions, and runs the §3.2
// similarity-propagation fixed point under a hard node/step/time budget.
// The result is a collectively-informed score per hop-0 candidate.
//
// Budgets degrade, never error: when any budget is exhausted the Result
// reports Degraded with a reason and carries no scores, and the caller
// falls back to its attribute-only scoring path. The node and step
// budgets are count-based, so whether they trip is a pure function of the
// query and the snapshot; only the optional wall-clock budget can differ
// between runs, and it only ever selects between the full collective
// result and the (equally deterministic) fallback.
//
// The package is deliberately ignorant of how references are stored and
// scored: the Host interface supplies candidate lookup, association
// structure, attribute-evidence wiring, and frozen pair decisions.
// internal/recon adapts a Snapshot+Matcher pair to it.
package collective

import (
	"time"

	"refrecon/internal/depgraph"
	"refrecon/internal/obs"
	"refrecon/internal/reference"
	"refrecon/internal/simfn"
)

// Host supplies the reference universe Resolve expands over. All methods
// must be deterministic for a fixed snapshot: slices come back in a
// stable order, and repeated calls agree. Implementations need not be
// safe for concurrent use; Resolve is single-threaded.
type Host interface {
	// Candidates returns the blocking candidates of id (stored references
	// sharing a blocking key), sorted ascending, excluding id itself.
	Candidates(id reference.ID) []reference.ID

	// ClassOf returns the class of id, or "" if unknown.
	ClassOf(id reference.ID) string

	// EachAssoc visits id's association attributes in a stable order with
	// their target reference ids. Implementations apply any domain
	// pooling here (e.g. the paper's coAuthor ∪ emailContact contact
	// pool) so Resolve sees the already-aligned attribute names.
	EachAssoc(id reference.ID, fn func(attr string, targets []reference.ID))

	// AssocEvidence maps an association attribute of class to the
	// propagation edge it induces between a reference pair and its target
	// pair: the forward evidence label and dependency type (target pair →
	// source pair), plus an optional back-propagation evidence label (a
	// StrongBoolean edge source pair → target pair; "" for none). ok
	// reports whether the attribute carries relational evidence at all.
	AssocEvidence(class, attr string) (evidence string, dep depgraph.DepType, backEvidence string, ok bool)

	// WireAttrEvidence attaches attribute-similarity evidence for the
	// pair (a, b) to its RefPair node n: value-pair nodes and the edges
	// connecting them, exactly as the offline builder wires them. It
	// reports whether any evidence was attached.
	WireAttrEvidence(g *depgraph.Graph, n *depgraph.Node, a, b reference.ID) bool

	// Frozen returns the snapshot's decision for the stored pair (a, b):
	// its converged similarity and whether it ended merged or non-merge.
	// ok is false when the snapshot holds no information on the pair
	// (including when either id is not a stored reference).
	Frozen(a, b reference.ID) (sim float64, merged, nonMerge, ok bool)
}

// Config bounds and parameterizes a Resolve call. The zero value is
// usable: WithDefaults fills every unset field.
type Config struct {
	// MaxHops bounds the expansion depth, counted in reference-pair hops
	// from the query: hop 0 is (query, candidate), hop 1 the association
	// target pairs of hop 0, and so on. Association expansion runs while
	// hop < MaxHops; sibling candidate pairs of targets materialize one
	// level deeper and contribute through frozen decisions and
	// enrichment. Default 2.
	MaxHops int

	// MaxNodes is the hard cap on materialized RefPair nodes. Hitting it
	// degrades the query. Default 512.
	MaxNodes int

	// MaxNeighbors caps the blocking candidates considered per
	// association target during sibling expansion (the sorted candidate
	// list is truncated). Default 8.
	MaxNeighbors int

	// Budget is the wall-clock limit for the whole expand-and-resolve; 0
	// means no time limit. The deadline is checked at expansion steps and
	// propagation-round boundaries, so the overshoot is one round at
	// most. The only nondeterministic budget — see the package comment.
	Budget time.Duration

	// MaxSteps caps propagation-engine node evaluations; 0 uses the
	// engine default (1000 × node count). Exceeding it degrades.
	MaxSteps int

	// MergeThreshold and AttrMergeThreshold are the reference-pair and
	// value-pair merge thresholds (paper: 0.85 and 1.0). Zero values take
	// the paper defaults.
	MergeThreshold     float64
	AttrMergeThreshold float64

	// Params weight the similarity recomputation; nil uses
	// simfn.PaperParams().
	Params map[string]simfn.ClassParams

	// Epsilon is the minimum similarity increase that re-activates
	// neighbors; 0 uses the engine default.
	Epsilon float64

	// Obs receives counters and per-query trace spans. Nil disables
	// observability.
	Obs *obs.Observer
}

// WithDefaults returns c with every unset field set to its default.
func (c Config) WithDefaults() Config {
	if c.MaxHops <= 0 {
		c.MaxHops = 2
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 512
	}
	if c.MaxNeighbors <= 0 {
		c.MaxNeighbors = 8
	}
	if c.MergeThreshold <= 0 {
		c.MergeThreshold = 0.85
	}
	if c.AttrMergeThreshold <= 0 {
		c.AttrMergeThreshold = 1.0
	}
	if c.Params == nil {
		c.Params = simfn.PaperParams()
	}
	return c
}

// Request names the query reference. The id must be outside the stored
// id space (recon uses Snapshot.RefCount()); the Host resolves it to the
// ad-hoc query reference.
type Request struct {
	Query reference.ID
}

// Result is the outcome of one Resolve call.
type Result struct {
	// Scores maps each hop-0 candidate to its collectively-informed
	// similarity with the query, after propagation and enrichment. Nil
	// when the run degraded.
	Scores map[reference.ID]float64
	Stats  Stats
}

// Stats describes what one Resolve call did.
type Stats struct {
	Candidates   int // hop-0 blocking candidates of the query
	ExpandedRefs int // distinct stored references in the neighborhood
	PairNodes    int // RefPair nodes materialized (≤ MaxNodes)
	ValueNodes   int // attribute-evidence ValuePair nodes materialized
	MaxHop       int // deepest hop reached

	// Propagation-engine activity over the local subgraph.
	Rounds int
	Steps  int
	Merges int
	Folds  int

	// Degraded is set when a budget was exhausted; Reason is "nodes",
	// "steps", or "time". A degraded result carries no scores and the
	// caller falls back to attribute-only scoring.
	Degraded bool
	Reason   string

	ExpandMS  float64 // wall-clock spent expanding the neighborhood
	ResolveMS float64 // wall-clock spent in the propagation fixed point
}
