package collective

import (
	"errors"
	"sort"
	"strconv"
	"time"

	"refrecon/internal/depgraph"
	"refrecon/internal/obs"
	"refrecon/internal/reference"
	"refrecon/internal/simfn"
)

// errBudget is the sentinel the round-boundary Interrupt hook returns
// when the wall-clock budget expires mid-propagation.
var errBudget = errors.New("collective: time budget exhausted")

// Resolve runs one bounded expand-and-resolve for req.Query against the
// host's snapshot. It never returns an error: exhausting a budget yields
// a degraded Result (no scores) and the caller falls back to its
// attribute-only path. Counters and one trace lane per query go to
// cfg.Obs when set.
func Resolve(h Host, req Request, cfg Config) Result {
	cfg = cfg.WithDefaults()
	tr := cfg.Obs.Tracer()
	res := resolve(h, req, cfg, tr)
	if c := cfg.Obs.Counter(); c != nil {
		c.CollectiveQueries.Add(1)
		c.CollectivePairNodes.Add(int64(res.Stats.PairNodes))
		obs.UpdateMax(&c.CollectiveMaxPairNodes, int64(res.Stats.PairNodes))
		if res.Stats.Degraded {
			c.CollectiveDegraded.Add(1)
		}
	}
	return res
}

// pend is one materialized RefPair awaiting association expansion.
type pend struct {
	n    *depgraph.Node
	a, b reference.ID
	hop  int
}

func resolve(h Host, req Request, cfg Config, tr *obs.Tracer) Result {
	q := req.Query
	st := &Stats{}
	lane := tr.NextTID()

	var deadline time.Time
	if cfg.Budget > 0 {
		deadline = time.Now().Add(cfg.Budget)
	}
	expired := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	degrade := func(reason string) Result {
		st.Degraded = true
		st.Reason = reason
		return Result{Stats: *st}
	}

	expandStart := time.Now()
	spExpand := tr.BeginTID("collective", "expand", lane)
	endExpand := func() {
		st.ExpandMS = float64(time.Since(expandStart).Microseconds()) / 1000
		spExpand.EndArgs(map[string]any{
			"candidates": st.Candidates,
			"refs":       st.ExpandedRefs,
			"pairs":      st.PairNodes,
			"maxHop":     st.MaxHop,
			"degraded":   st.Degraded,
		})
	}
	degradeExpand := func(reason string) Result {
		st.Degraded = true
		st.Reason = reason
		endExpand()
		return Result{Stats: *st}
	}

	g := depgraph.New()
	refs := make(map[reference.ID]struct{})
	seen := make(map[uint64]struct{})
	var made []pend // every materialized pair, in creation order

	// ensure materializes the RefPair (a, b) at hop if it does not exist
	// yet: attribute evidence wired, frozen decision applied. created
	// reports a fresh node; ok is false when the node budget is
	// exhausted (the whole query degrades — a partial neighborhood would
	// make scores depend on where the cap happened to land).
	ensure := func(a, b reference.ID, hop int) (n *depgraph.Node, created, ok bool) {
		if a == b {
			return nil, false, true
		}
		key := pairKey(a, b)
		if _, dup := seen[key]; dup {
			return g.LookupRefPair(a, b), false, true
		}
		if st.PairNodes >= cfg.MaxNodes {
			return nil, false, false
		}
		class := h.ClassOf(a)
		if class == "" || class != h.ClassOf(b) {
			seen[key] = struct{}{}
			return nil, false, true
		}
		seen[key] = struct{}{}
		n = g.AddRefPair(a, b, class)
		st.PairNodes++
		if hop > st.MaxHop {
			st.MaxHop = hop
		}
		if a != q {
			refs[a] = struct{}{}
		}
		if b != q {
			refs[b] = struct{}{}
		}
		h.WireAttrEvidence(g, n, a, b)
		if a != q && b != q {
			if sim, merged, nonMerge, has := h.Frozen(a, b); has {
				switch {
				case nonMerge:
					g.MarkNonMerge(n)
				default:
					if sim > 0 {
						g.RaiseSim(n, sim)
					}
					if merged {
						g.MarkMerged(n)
					}
				}
			}
		}
		return n, true, true
	}

	cand0 := h.Candidates(q)
	st.Candidates = len(cand0)
	if len(cand0) == 0 {
		endExpand()
		return Result{Scores: map[reference.ID]float64{}, Stats: *st}
	}

	hop0 := make(map[reference.ID]*depgraph.Node, len(cand0))
	var queue []pend
	push := func(a, b reference.ID, hop int) (*depgraph.Node, bool) {
		n, created, ok := ensure(a, b, hop)
		if !ok {
			return nil, false
		}
		if created {
			p := pend{n: n, a: a, b: b, hop: hop}
			made = append(made, p)
			queue = append(queue, p)
		}
		return n, true
	}

	for _, c := range cand0 {
		n, ok := push(q, c, 0)
		if !ok {
			return degradeExpand("nodes")
		}
		if n != nil {
			hop0[c] = n
		}
	}

	// Sibling expansion: an association target first seen as evidence for
	// a parent pair gets its own blocking candidates materialized one
	// level deeper, so the local fixed point can discover merges among
	// the neighbors themselves (and enrichment can fold their pairs).
	sibDone := make(map[reference.ID]struct{})
	expandSiblings := func(t reference.ID, hop int) bool {
		if _, done := sibDone[t]; done {
			return true
		}
		sibDone[t] = struct{}{}
		cands := h.Candidates(t)
		if len(cands) > cfg.MaxNeighbors {
			cands = cands[:cfg.MaxNeighbors]
		}
		for _, t2 := range cands {
			if _, ok := push(t, t2, hop); !ok {
				return false
			}
		}
		return true
	}

	// Breadth-first association expansion: each materialized pair whose
	// hop is still inside the budget aligns its two references'
	// association attributes and wires the induced evidence edges.
	for i := 0; i < len(queue); i++ {
		if expired() {
			return degradeExpand("time")
		}
		p := queue[i]
		if p.hop >= cfg.MaxHops {
			continue
		}
		aT := assocOf(h, p.a)
		bT := assocOf(h, p.b)
		for _, ae := range aT {
			be, ok := findAssoc(bT, ae.attr)
			if !ok {
				continue
			}
			ev, dep, backEv, ok := h.AssocEvidence(p.n.Class(), ae.attr)
			if !ok {
				continue
			}
			for _, t1 := range ae.targets {
				for _, t2 := range be.targets {
					if t1 == t2 {
						// A shared target is direct relational evidence:
						// a merged value node, as the offline builder
						// wires shared association endpoints.
						sn := g.AddValuePair("shared", sharedElem(t1), sharedElem(t1), 1)
						g.MarkMerged(sn)
						g.AddEdge(sn, p.n, dep, ev)
						continue
					}
					child, ok := push(t1, t2, p.hop+1)
					if !ok {
						return degradeExpand("nodes")
					}
					if child == nil || child == p.n {
						continue
					}
					g.AddEdge(child, p.n, dep, ev)
					if backEv != "" {
						g.AddEdge(p.n, child, depgraph.StrongBoolean, backEv)
					}
					if p.hop+1 < cfg.MaxHops {
						if !expandSiblings(t1, p.hop+2) || !expandSiblings(t2, p.hop+2) {
							return degradeExpand("nodes")
						}
					}
				}
			}
		}
	}

	st.ExpandedRefs = len(refs)
	st.ValueNodes = g.NodeCount() - st.PairNodes
	endExpand()
	if expired() {
		return degrade("time")
	}

	// Seed deepest hop first (dependees before dependents, §3.2), with a
	// total-order tie-break on the id pair so propagation order cannot
	// depend on expansion history. Frozen merged pairs are excluded —
	// seeding a merged node demotes it — and frozen non-merges stay dead.
	seedable := made[:0]
	for _, p := range made {
		if s := p.n.Status(); s == depgraph.Merged || s == depgraph.NonMerge {
			continue
		}
		seedable = append(seedable, p)
	}
	sort.Slice(seedable, func(i, j int) bool {
		if seedable[i].hop != seedable[j].hop {
			return seedable[i].hop > seedable[j].hop
		}
		if seedable[i].n.RefA() != seedable[j].n.RefA() {
			return seedable[i].n.RefA() < seedable[j].n.RefA()
		}
		return seedable[i].n.RefB() < seedable[j].n.RefB()
	})
	seed := make([]*depgraph.Node, len(seedable))
	for i, p := range seedable {
		seed[i] = p.n
	}

	resolveStart := time.Now()
	spResolve := tr.BeginTID("collective", "resolve", lane)

	// fwd tracks enrichment folds so hop-0 pairs remain readable after
	// they fold away (merging (r1,r2) folds (r2,r3) into (r1,r3); when q
	// itself merges, (q,c) can fold into a stored-stored pair).
	fwd := make(map[*depgraph.Node]*depgraph.Node)
	var interrupt func() error
	if !deadline.IsZero() {
		interrupt = func() error {
			if time.Now().After(deadline) {
				return errBudget
			}
			return nil
		}
	}
	es := g.Run(seed, depgraph.Options{
		Scorer: &simfn.Scorer{Params: cfg.Params},
		MergeThreshold: func(n *depgraph.Node) float64 {
			if n.Kind() == depgraph.ValuePair {
				return cfg.AttrMergeThreshold
			}
			return cfg.MergeThreshold
		},
		Epsilon:   cfg.Epsilon,
		Propagate: true,
		Enrich:    true,
		MaxSteps:  cfg.MaxSteps,
		Interrupt: interrupt,
		OnFold:    func(l, m *depgraph.Node) { fwd[l] = m },
	})
	st.Rounds, st.Steps, st.Merges, st.Folds = es.Rounds, es.Steps, es.Merges, es.Folds
	st.ResolveMS = float64(time.Since(resolveStart).Microseconds()) / 1000
	spResolve.EndArgs(map[string]any{
		"rounds": es.Rounds, "steps": es.Steps,
		"merges": es.Merges, "folds": es.Folds,
		"interrupted": es.Interrupted, "truncated": es.Truncated,
	})
	if es.Interrupted {
		return degrade("time")
	}
	if es.Truncated {
		return degrade("steps")
	}

	scores := make(map[reference.ID]float64, len(hop0))
	for c, n := range hop0 {
		for {
			m, folded := fwd[n]
			if !folded {
				break
			}
			n = m
		}
		scores[c] = n.Sim()
	}
	return Result{Scores: scores, Stats: *st}
}

// pairKey packs an unordered id pair into a map key.
func pairKey(a, b reference.ID) uint64 {
	if b < a {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// sharedElem names the merged value node standing for a shared
// association target, matching the offline builder's convention.
func sharedElem(t reference.ID) string {
	return "r:" + strconv.Itoa(int(t))
}

// assocEntry is one association attribute with its targets.
type assocEntry struct {
	attr    string
	targets []reference.ID
}

func assocOf(h Host, id reference.ID) []assocEntry {
	var out []assocEntry
	h.EachAssoc(id, func(attr string, targets []reference.ID) {
		if len(targets) > 0 {
			out = append(out, assocEntry{attr: attr, targets: targets})
		}
	})
	return out
}

func findAssoc(entries []assocEntry, attr string) (assocEntry, bool) {
	for _, e := range entries {
		if e.attr == attr {
			return e, true
		}
	}
	return assocEntry{}, false
}
