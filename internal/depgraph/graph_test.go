package depgraph

import (
	"testing"
)

func TestRefPairNodeDedup(t *testing.T) {
	g := New()
	n1 := g.AddRefPair(2, 1, "Person")
	n2 := g.AddRefPair(1, 2, "Person")
	if n1 != n2 {
		t.Error("pair (1,2) and (2,1) must be the same node")
	}
	if n1.RefA() != 1 || n1.RefB() != 2 {
		t.Errorf("canonical order wrong: %d,%d", n1.RefA(), n1.RefB())
	}
	if g.NodeCount() != 1 {
		t.Errorf("NodeCount = %d", g.NodeCount())
	}
	if g.LookupRefPair(2, 1) != n1 {
		t.Error("LookupRefPair failed")
	}
}

func TestSelfPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-pair should panic")
		}
	}()
	New().AddRefPair(3, 3, "Person")
}

func TestValuePairDedupAndMaxSim(t *testing.T) {
	g := New()
	n1 := g.AddValuePair("name", "a", "b", 0.5)
	n2 := g.AddValuePair("name", "b", "a", 0.7)
	if n1 != n2 {
		t.Error("value pair (a,b)/(b,a) must be the same node")
	}
	if n1.Sim() != 0.7 {
		t.Errorf("sim should rise to the max, got %f", n1.Sim())
	}
	g.AddValuePair("name", "a", "b", 0.2)
	if n1.Sim() != 0.7 {
		t.Errorf("sim must not decrease, got %f", n1.Sim())
	}
	// Different evidence type is a different node.
	n3 := g.AddValuePair("email", "a", "b", 0.5)
	if n3 == n1 {
		t.Error("evidence types must separate nodes")
	}
}

func TestAddEdgeDedup(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	b := g.AddRefPair(2, 3, "Person")
	if !g.AddEdge(a, b, RealValued, "x") {
		t.Fatal("first edge rejected")
	}
	if g.AddEdge(a, b, RealValued, "x") {
		t.Error("duplicate edge accepted")
	}
	if !g.AddEdge(a, b, WeakBoolean, "x") {
		t.Error("different dep type should be a distinct edge")
	}
	if g.AddEdge(a, a, RealValued, "x") {
		t.Error("self edge accepted")
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d", g.EdgeCount())
	}
	if len(a.Out()) != 2 || len(b.In()) != 2 {
		t.Errorf("adjacency wrong: out=%d in=%d", len(a.Out()), len(b.In()))
	}
}

func TestRemoveIfIsolated(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	b := g.AddRefPair(2, 3, "Person")
	g.AddEdge(a, b, RealValued, "x")
	if g.RemoveIfIsolated(a) {
		t.Error("connected node removed")
	}
	c := g.AddRefPair(4, 5, "Person")
	if !g.RemoveIfIsolated(c) {
		t.Error("isolated node kept")
	}
	if c.Alive() {
		t.Error("removed node still alive")
	}
	if g.Lookup(c.Key()) != nil {
		t.Error("removed node still in index")
	}
	if g.NodeCount() != 2 {
		t.Errorf("NodeCount = %d", g.NodeCount())
	}
}

func TestRemoveNodeCleansEdges(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	b := g.AddRefPair(2, 3, "Person")
	c := g.AddRefPair(4, 5, "Person")
	g.AddEdge(a, b, RealValued, "x")
	g.AddEdge(b, c, StrongBoolean, "y")
	g.removeNode(b)
	if g.EdgeCount() != 0 {
		t.Errorf("EdgeCount after removal = %d", g.EdgeCount())
	}
	if len(a.Out()) != 0 || len(c.In()) != 0 {
		t.Error("dangling edges left after removal")
	}
	// a can now re-add the same edge to c without dedup interference.
	if !g.AddEdge(a, c, RealValued, "x") {
		t.Error("edge re-add after cleanup rejected")
	}
}

func TestOther(t *testing.T) {
	g := New()
	n := g.AddRefPair(7, 9, "Person")
	if n.Other(7) != 9 || n.Other(9) != 7 {
		t.Error("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other with foreign ref should panic")
		}
	}()
	n.Other(1)
}

func TestNodesIteration(t *testing.T) {
	g := New()
	g.AddRefPair(0, 1, "Person")
	n := g.AddRefPair(2, 3, "Person")
	g.removeNode(n)
	count := 0
	g.Nodes(func(*Node) { count++ })
	if count != 1 {
		t.Errorf("Nodes visited %d, want 1", count)
	}
}

func TestRefPairNodesOf(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	b := g.AddRefPair(1, 2, "Person")
	g.AddRefPair(3, 4, "Person")
	got := g.RefPairNodesOf(1)
	if len(got) != 2 {
		t.Fatalf("RefPairNodesOf(1) = %v", got)
	}
	g.removeNode(a)
	got = g.RefPairNodesOf(1)
	if len(got) != 1 || got[0] != b {
		t.Errorf("after removal RefPairNodesOf(1) = %v", got)
	}
}

func TestMarkNonMerge(t *testing.T) {
	g := New()
	n := g.AddRefPair(0, 1, "Person")
	n.SetSim(0.9)
	g.MarkNonMerge(n)
	if n.Status() != NonMerge || n.Sim() != 0 {
		t.Errorf("non-merge node = %v", n)
	}
}

func TestKeyCanonicalization(t *testing.T) {
	if RefPairKey(5, 2) != RefPairKey(2, 5) {
		t.Error("RefPairKey not canonical")
	}
	if ValuePairKey("name", "x", "y") != ValuePairKey("name", "y", "x") {
		t.Error("ValuePairKey not canonical")
	}
	if ValuePairKey("name", "x", "y") == ValuePairKey("email", "x", "y") {
		t.Error("ValuePairKey must separate evidence types")
	}
}

func TestStatusAndKindStrings(t *testing.T) {
	if Inactive.String() != "inactive" || Active.String() != "active" ||
		Merged.String() != "merged" || NonMerge.String() != "non-merge" {
		t.Error("Status strings wrong")
	}
	if RefPair.String() != "ref-pair" || ValuePair.String() != "value-pair" {
		t.Error("Kind strings wrong")
	}
	if RealValued.String() != "real-valued" || StrongBoolean.String() != "strong-boolean" || WeakBoolean.String() != "weak-boolean" {
		t.Error("DepType strings wrong")
	}
}
