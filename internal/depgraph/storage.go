package depgraph

// This file holds the columnar storage primitives behind Graph: the string
// interner, the node handle slab, the span-based adjacency arena, the edge
// columns, and the compaction pass that reclaims storage freed by
// enrichment folds and node removals.
//
// Node state is one slice per field, indexed by a dense int32 id assigned
// at insertion and never reused or renumbered. Edges are four parallel
// columns (from, to, dep, interned evidence) indexed by edge id; adjacency
// is a per-node span of edge ids into one shared arena. Spans are created
// empty and grow by relocation to the arena tail with doubling capacity —
// construction appends are contiguous in practice (a node's edges arrive
// together), and the tail doubles as the overflow region for
// enrichment-time and incremental-session additions. Compaction rewrites
// the arena contiguously, drops dead edge columns (renumbering edge ids,
// which never escape the package), and prunes dead entries from the
// per-reference index; node ids are stable forever, so handles and queue
// entries survive compaction untouched.

// interner maps strings to dense int32 ids and back. Id 0 is reserved for
// the empty string so the zero value of an interned column is meaningful.
type interner struct {
	ids  map[string]int32
	strs []string
}

func newInterner() interner {
	return interner{ids: map[string]int32{"": 0}, strs: []string{""}}
}

// intern returns the id for s, assigning one if needed.
func (t *interner) intern(s string) int32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := int32(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	return id
}

// lookup returns the id for s without assigning one.
func (t *interner) lookup(s string) (int32, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// str returns the canonical string for id.
func (t *interner) str(id int32) string { return t.strs[id] }

// span is one node's adjacency region in the arena: n edge ids stored at
// [off, off+n), with room to grow in place up to cap.
type span struct {
	off, n, cap int32
}

// edgeIdent is the dedup identity of an edge: endpoints, type, and
// interned evidence. It mirrors the old per-node edge-set keys (only the
// outgoing-side entry was ever consulted) collapsed into one global map,
// whose entries are deleted eagerly when edges die.
type edgeIdent struct {
	from, to, ev int32
	dep          DepType
}

// valueIdent is the dedup identity of a ValuePair node: interned evidence
// type plus the two interned element keys in canonical (string) order.
type valueIdent struct {
	ev, x, y int32
}

const (
	nodeSlabSize = 512
	aggSlabSize  = 256
	spanMinCap   = 4
)

// newHandle carves one stable *Node from the handle slab.
func (g *Graph) newHandle(id int32) *Node {
	if len(g.nodeSlab) == 0 {
		g.nodeSlab = make([]Node, nodeSlabSize)
	}
	h := &g.nodeSlab[0]
	g.nodeSlab = g.nodeSlab[1:]
	h.g, h.id = g, id
	return h
}

// newAggregate carves one aggregate from the slab, with its kinds slice
// backed by the inline array (no further allocation for typical nodes).
func (g *Graph) newAggregate() *aggregate {
	if len(g.aggSlab) == 0 {
		g.aggSlab = make([]aggregate, aggSlabSize)
	}
	a := &g.aggSlab[0]
	g.aggSlab = g.aggSlab[1:]
	a.kinds = a.inline[:0]
	return a
}

// newNode appends one row to every node column and returns its id.
func (g *Graph) newNode(kind Kind) int32 {
	id := int32(len(g.kind))
	g.kind = append(g.kind, kind)
	g.status = append(g.status, Inactive)
	g.sim = append(g.sim, 0)
	g.refA = append(g.refA, -1)
	g.refB = append(g.refB, -1)
	g.classID = append(g.classID, 0)
	g.valX = append(g.valX, -1)
	g.valY = append(g.valY, -1)
	g.key = append(g.key, "")
	g.alive = append(g.alive, true)
	g.queued = append(g.queued, false)
	g.qgen = append(g.qgen, 0)
	g.agg = append(g.agg, nil)
	g.inSpan = append(g.inSpan, span{})
	g.outSpan = append(g.outSpan, span{})
	g.handles = append(g.handles, g.newHandle(id))
	return id
}

// buildKey materializes the canonical string key for a node.
func (g *Graph) buildKey(id int32) string {
	if g.kind[id] == RefPair {
		return RefPairKey(g.refA[id], g.refB[id])
	}
	return g.strs.str(g.classID[id]) + "|" + g.strs.str(g.valX[id]) + "|" + g.strs.str(g.valY[id])
}

// spanIDs returns the live edge ids of a span, aliasing the arena. The
// alias stays readable across arena growth and other spans' relocations
// (regions are disjoint and relocation never rewrites old regions), but
// not across an append to this same span or a compaction.
func (g *Graph) spanIDs(s span) []int32 {
	return g.adj[s.off : s.off+s.n : s.off+s.n]
}

// edgeAt materializes the Edge value for an edge id.
func (g *Graph) edgeAt(e int32) Edge {
	return Edge{
		From:     g.handles[g.eFrom[e]],
		To:       g.handles[g.eTo[e]],
		Dep:      g.eDep[e],
		Evidence: g.strs.str(g.eEv[e]),
	}
}

// edgeSlice materializes a span into a fresh []Edge.
func (g *Graph) edgeSlice(s span) []Edge {
	if s.n == 0 {
		return nil
	}
	out := make([]Edge, s.n)
	for i, e := range g.spanIDs(s) {
		out[i] = g.edgeAt(e)
	}
	return out
}

// adjReserve extends the arena by n slots and returns their offset.
func (g *Graph) adjReserve(n int32) int32 {
	off := int32(len(g.adj))
	if need := int(off) + int(n); need <= cap(g.adj) {
		g.adj = g.adj[:need]
	} else {
		g.adj = append(g.adj, make([]int32, n)...)
	}
	return off
}

// spanAppend adds an edge id to a span, in place while capacity lasts and
// by relocation to the arena tail (capacity doubled) when it runs out.
func (g *Graph) spanAppend(s *span, e int32) {
	if s.n < s.cap {
		g.adj[s.off+s.n] = e
		s.n++
		return
	}
	newCap := s.cap * 2
	if newCap < spanMinCap {
		newCap = spanMinCap
	}
	off := g.adjReserve(newCap)
	copy(g.adj[off:off+s.n], g.adj[s.off:s.off+s.n])
	g.adj[off+s.n] = e
	g.adjGarbage += int(s.cap)
	s.off, s.cap = off, newCap
	s.n++
}

// spanDrop removes edge id e from a span by swap-with-last — the same
// permutation the pointer layout's dropEdge produced, which the
// equivalence fingerprints depend on.
func (g *Graph) spanDrop(s *span, e int32) {
	ids := g.adj[s.off : s.off+s.n]
	for i, x := range ids {
		if x == e {
			ids[i] = ids[len(ids)-1]
			s.n--
			return
		}
	}
}

// maybeCompact runs the compaction pass once enough edge storage is dead.
// The trigger reads only graph-op-sequence state (never scores or
// timings), so equivalence twins compact at identical points; and since
// compaction preserves node ids and per-node adjacency order, even a
// divergent trigger would be invisible to the public surface.
func (g *Graph) maybeCompact() {
	if (g.deadEdges >= 1024 && g.deadEdges >= g.edgeCount) ||
		(g.adjGarbage >= 4096 && g.adjGarbage*2 >= len(g.adj)) {
		g.compact()
	}
}

// compact rewrites the edge columns without dead edges, renumbers edge ids
// (they never escape the package), rewrites every live span contiguously
// into a fresh arena sized exactly to the live degree sums, and prunes
// dead node ids from the per-reference index. Per-node adjacency order is
// preserved; node ids and handles are untouched.
func (g *Graph) compact() {
	remap := make([]int32, len(g.eFrom))
	nFrom := make([]int32, 0, g.edgeCount)
	nTo := make([]int32, 0, g.edgeCount)
	nDep := make([]DepType, 0, g.edgeCount)
	nEv := make([]int32, 0, g.edgeCount)
	// Assign new edge ids in (node id, out-adjacency) order: a
	// deterministic function of graph state.
	for id := range g.outSpan {
		if !g.alive[id] {
			continue
		}
		for _, e := range g.spanIDs(g.outSpan[id]) {
			remap[e] = int32(len(nFrom))
			nFrom = append(nFrom, g.eFrom[e])
			nTo = append(nTo, g.eTo[e])
			nDep = append(nDep, g.eDep[e])
			nEv = append(nEv, g.eEv[e])
		}
	}
	total := 0
	for id := range g.outSpan {
		if g.alive[id] {
			total += int(g.outSpan[id].n) + int(g.inSpan[id].n)
		}
	}
	nAdj := make([]int32, 0, total)
	rewrite := func(s *span) {
		off := int32(len(nAdj))
		for _, e := range g.spanIDs(*s) {
			nAdj = append(nAdj, remap[e])
		}
		*s = span{off: off, n: s.n, cap: s.n}
	}
	for id := range g.outSpan {
		if !g.alive[id] {
			g.outSpan[id] = span{}
			g.inSpan[id] = span{}
			continue
		}
		rewrite(&g.outSpan[id])
		rewrite(&g.inSpan[id])
	}
	g.eFrom, g.eTo, g.eDep, g.eEv = nFrom, nTo, nDep, nEv
	g.adj = nAdj
	g.deadEdges = 0
	g.adjGarbage = 0
	// Reclaim the per-reference index entries of removed nodes (the old
	// layout retained them forever).
	for r, ids := range g.refNodes {
		live := ids[:0]
		for _, id := range ids {
			if g.alive[id] {
				live = append(live, id)
			}
		}
		if len(live) == 0 {
			delete(g.refNodes, r)
		} else {
			g.refNodes[r] = live
		}
	}
}
