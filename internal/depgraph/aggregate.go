package depgraph

import "sort"

// This file implements delta-maintained evidence aggregates: the memoized
// digest of a node's incoming neighborhood that lets a propagation step be
// O(changed neighbors) instead of O(neighborhood).
//
// For every scored node the graph can hold an aggregate recording, per
// evidence kind, the running MAX similarity over the live real-valued
// sources (the §4 MAX rule for multi-valued attributes) together with
// source counts, plus the merged strong-/weak-boolean neighbor counts that
// feed S_sb and S_wb. Aggregates are built lazily on a node's first score
// and then patched incrementally:
//
//   - a neighbor's similarity rising bumps the affected per-kind maxima
//     (similarities are monotone, so a running max never needs history);
//   - a neighbor merging increments the boolean counts exactly once;
//   - an enrichment fold removes a source: the affected evidence kinds are
//     rebuilt from the (small) remaining in-edge list, and the counterpart
//     node that absorbed the fold rebuilds only the kinds its new edges
//     touch — every other kind keeps its memoized maximum;
//   - a node turning NonMerge (similarity forced to 0) moves its
//     contribution from the real maxima to the non-merge tally, again
//     rebuilding only the kinds it fed.
//
// The invariant, checked by the equivalence property test: whenever a node
// has an aggregate, the aggregate equals a fresh full scan of its in-edges.
// Scorers may therefore read the digest instead of rescanning and produce
// bit-identical similarities.
//
// Aggregates are slab-allocated by the graph, and each carries inline
// storage for the handful of evidence kinds a typical node sees, so the
// maintained digests add O(nodes / slab size) allocations, not O(nodes).

// evKind is one evidence kind's slot in an aggregate.
type evKind struct {
	evidence string
	// max is the maximum similarity among live real-valued sources of this
	// kind that are not NonMerge. Meaningful only when count > 0.
	max float64
	// count is the number of live real-valued sources that are not
	// NonMerge. The kind is "present" for scoring iff count > 0 (presence
	// matters even at similarity 0; see simfn.Gather).
	count int
	// nonMerge counts live real-valued sources that are NonMerge (hard
	// negative evidence).
	nonMerge int
}

// aggregate is the delta-maintained digest of one node's in-edges. kinds
// starts out backed by the inline array; an aggregate must not be copied
// once initialized.
type aggregate struct {
	kinds  []evKind // sorted by evidence for deterministic enumeration
	strong int      // merged strong-boolean sources
	weak   int      // merged weak-boolean sources
	inline [4]evKind
}

// find returns the index of the kind slot, or the insertion point with
// ok=false. Kind lists are tiny (a handful of evidence types), so a linear
// scan over the sorted slice beats binary search bookkeeping.
func (a *aggregate) find(evidence string) (int, bool) {
	for i := range a.kinds {
		switch {
		case a.kinds[i].evidence == evidence:
			return i, true
		case a.kinds[i].evidence > evidence:
			return i, false
		}
	}
	return len(a.kinds), false
}

// slot returns the kind slot for evidence, inserting an empty one in sorted
// position if absent.
func (a *aggregate) slot(evidence string) *evKind {
	i, ok := a.find(evidence)
	if !ok {
		a.kinds = append(a.kinds, evKind{})
		copy(a.kinds[i+1:], a.kinds[i:])
		a.kinds[i] = evKind{evidence: evidence}
	}
	return &a.kinds[i]
}

// addSource folds one in-edge's source into the aggregate (used when
// building from scratch and when an edge is added to a maintained node).
func (g *Graph) addSource(a *aggregate, e int32) {
	src := g.eFrom[e]
	switch g.eDep[e] {
	case RealValued:
		k := a.slot(g.strs.str(g.eEv[e]))
		if g.status[src] == NonMerge {
			k.nonMerge++
			return
		}
		if k.count == 0 || g.sim[src] > k.max {
			k.max = g.sim[src]
		}
		k.count++
	case StrongBoolean:
		if g.status[src] == Merged {
			a.strong++
		}
	case WeakBoolean:
		if g.status[src] == Merged {
			a.weak++
		}
	}
}

// bumpReal raises the running maximum of one kind after a source's
// similarity increased. The source is already counted; only the max moves.
func (a *aggregate) bumpReal(evidence string, sim float64) {
	if i, ok := a.find(evidence); ok && a.kinds[i].count > 0 && sim > a.kinds[i].max {
		a.kinds[i].max = sim
	}
}

// buildInto digests id's current in-edges into a with a full scan.
func (g *Graph) buildInto(a *aggregate, id int32) {
	for _, e := range g.spanIDs(g.inSpan[id]) {
		g.addSource(a, e)
	}
}

// buildFresh digests id's in-edges into a transient aggregate (the
// unmaintained Digest path and the CheckAggregate oracle).
func (g *Graph) buildFresh(id int32) *aggregate {
	a := new(aggregate)
	a.kinds = a.inline[:0]
	g.buildInto(a, id)
	return a
}

// rebuildKind recomputes one evidence kind of to's aggregate from its
// current in-edges — the invalidation path for folds and NonMerge
// transitions, which are the only events that can lower a source's
// contribution. Every other kind keeps its memoized state.
func (g *Graph) rebuildKind(to int32, ev int32) {
	a := g.agg[to]
	if a == nil {
		return
	}
	g.delta.rebuilds++
	var k evKind
	k.evidence = g.strs.str(ev)
	for _, e := range g.spanIDs(g.inSpan[to]) {
		if g.eDep[e] != RealValued || g.eEv[e] != ev {
			continue
		}
		src := g.eFrom[e]
		if g.status[src] == NonMerge {
			k.nonMerge++
			continue
		}
		if k.count == 0 || g.sim[src] > k.max {
			k.max = g.sim[src]
		}
		k.count++
	}
	i, ok := a.find(k.evidence)
	switch {
	case k.count == 0 && k.nonMerge == 0:
		if ok { // kind vanished: drop the slot
			a.kinds = append(a.kinds[:i], a.kinds[i+1:]...)
		}
	case ok:
		a.kinds[i] = k
	default:
		a.kinds = append(a.kinds, evKind{})
		copy(a.kinds[i+1:], a.kinds[i:])
		a.kinds[i] = k
	}
}

// aggOnAddEdge patches the target's aggregate after addEdgeIDs inserted e.
func (g *Graph) aggOnAddEdge(e int32) {
	if a := g.agg[g.eTo[e]]; a != nil {
		g.addSource(a, e)
	}
}

// aggOnDropSource patches t's aggregate after the in-edge e (from a node
// being removed) was dropped by a fold. Boolean counts decrement directly;
// a real-valued source holding the kind's maximum forces a rebuild of that
// kind only. Must run before the edge's columns are cleared.
func (g *Graph) aggOnDropSource(t *Node, e int32) {
	a := g.agg[t.id]
	if a == nil {
		return
	}
	src := g.eFrom[e]
	switch g.eDep[e] {
	case RealValued:
		evidence := g.strs.str(g.eEv[e])
		if g.status[src] == NonMerge {
			if i, ok := a.find(evidence); ok {
				a.kinds[i].nonMerge--
				if a.kinds[i].count == 0 && a.kinds[i].nonMerge == 0 {
					a.kinds = append(a.kinds[:i], a.kinds[i+1:]...)
				}
			}
			return
		}
		i, ok := a.find(evidence)
		if !ok {
			return
		}
		if g.sim[src] >= a.kinds[i].max || a.kinds[i].count <= 1 {
			g.rebuildKind(t.id, g.eEv[e])
			return
		}
		a.kinds[i].count--
	case StrongBoolean:
		if g.status[src] == Merged {
			a.strong--
		}
	case WeakBoolean:
		if g.status[src] == Merged {
			a.weak--
		}
	}
}

// aggOnMerged patches the boolean counts of n's dependents after n
// transitioned to Merged. Must be invoked exactly once per transition.
func (g *Graph) aggOnMerged(n *Node) {
	for _, e := range g.spanIDs(g.outSpan[n.id]) {
		a := g.agg[g.eTo[e]]
		if a == nil {
			continue
		}
		switch g.eDep[e] {
		case StrongBoolean:
			a.strong++
		case WeakBoolean:
			a.weak++
		}
	}
}

// aggOnDemoted patches the boolean counts of n's dependents after a
// re-seeding demoted n from Merged back to Active (the inverse of
// aggOnMerged; n's similarity is untouched, so real maxima are unaffected).
func (g *Graph) aggOnDemoted(n *Node) {
	for _, e := range g.spanIDs(g.outSpan[n.id]) {
		a := g.agg[g.eTo[e]]
		if a == nil {
			continue
		}
		switch g.eDep[e] {
		case StrongBoolean:
			a.strong--
		case WeakBoolean:
			a.weak--
		}
	}
}

// aggOnNonMerge patches n's dependents after n transitioned to NonMerge
// (similarity forced to 0): real-valued contributions move to the
// non-merge tally via a per-kind rebuild, and boolean counts drop if n had
// been Merged.
func (g *Graph) aggOnNonMerge(n *Node, wasMerged bool) {
	for _, e := range g.spanIDs(g.outSpan[n.id]) {
		a := g.agg[g.eTo[e]]
		if a == nil {
			continue
		}
		switch g.eDep[e] {
		case RealValued:
			g.rebuildKind(g.eTo[e], g.eEv[e])
		case StrongBoolean:
			if wasMerged {
				a.strong--
			}
		case WeakBoolean:
			if wasMerged {
				a.weak--
			}
		}
	}
}

// raiseSim raises n's similarity (never lowering it) and bumps the real
// maxima of its maintained dependents. All similarity increases — engine
// scoring, fold inheritance, AddValuePair on an existing node — go through
// here so aggregates can never go stale.
func (g *Graph) raiseSim(n *Node, sim float64) {
	id := n.id
	if sim <= g.sim[id] {
		return
	}
	g.sim[id] = sim
	for _, e := range g.spanIDs(g.outSpan[id]) {
		if g.eDep[e] == RealValued {
			if a := g.agg[g.eTo[e]]; a != nil {
				a.bumpReal(g.strs.str(g.eEv[e]), sim)
			}
		}
	}
}

// deltaCounters tallies aggregate activity; Run reports per-run deltas.
type deltaCounters struct {
	hits     uint64 // scores served from a maintained aggregate
	builds   uint64 // aggregates built by a full neighborhood scan
	rebuilds uint64 // per-kind rebuilds forced by folds / NonMerge turns
}

// EvidenceDigest is the read-only view of a node's evidence aggregate that
// scorers consume in place of rescanning the incoming edges. The zero
// value is an empty digest.
type EvidenceDigest struct {
	a *aggregate
}

// RealEvidence returns the maximum similarity among the node's real-valued
// sources of the kind and whether any such source exists (presence counts
// even at similarity 0; NonMerge sources do not make a kind present).
func (d EvidenceDigest) RealEvidence(kind string) (float64, bool) {
	if d.a == nil {
		return 0, false
	}
	if i, ok := d.a.find(kind); ok && d.a.kinds[i].count > 0 {
		return d.a.kinds[i].max, true
	}
	return 0, false
}

// EachRealEvidence invokes fn for every present real-valued evidence kind
// in lexicographic order (a deterministic enumeration, unlike a map walk).
func (d EvidenceDigest) EachRealEvidence(fn func(kind string, max float64)) {
	if d.a == nil {
		return
	}
	for i := range d.a.kinds {
		if d.a.kinds[i].count > 0 {
			fn(d.a.kinds[i].evidence, d.a.kinds[i].max)
		}
	}
}

// NonMergeReal reports whether some real-valued source of the kind is a
// NonMerge node (hard negative evidence).
func (d EvidenceDigest) NonMergeReal(kind string) bool {
	if d.a == nil {
		return false
	}
	i, ok := d.a.find(kind)
	return ok && d.a.kinds[i].nonMerge > 0
}

// StrongMergedCount returns the number of merged strong-boolean sources.
func (d EvidenceDigest) StrongMergedCount() int {
	if d.a == nil {
		return 0
	}
	return d.a.strong
}

// WeakMergedCount returns the number of merged weak-boolean sources.
func (d EvidenceDigest) WeakMergedCount() int {
	if d.a == nil {
		return 0
	}
	return d.a.weak
}

// Digest returns the node's evidence digest. While the graph is in
// maintained mode (from the first Run onward) the digest is memoized and
// delta-patched, so reading it avoids the O(neighborhood) rescan; outside
// maintained mode it is built fresh on every call and always correct, even
// if the caller mutated node state directly.
func (n *Node) Digest() EvidenceDigest {
	g := n.g
	if g.maintain && g.alive[n.id] {
		if g.agg[n.id] == nil {
			a := g.newAggregate()
			g.buildInto(a, n.id)
			g.agg[n.id] = a
			g.delta.builds++
		} else {
			g.delta.hits++
		}
		return EvidenceDigest{g.agg[n.id]}
	}
	return EvidenceDigest{g.buildFresh(n.id)}
}

// CheckAggregate compares n's maintained aggregate against a fresh scan of
// its in-edges, reporting the first discrepancy; the equivalence tests and
// the invariant auditor (package audit) use it to assert the
// delta-maintenance invariant. It returns "" when consistent (or when no
// aggregate is maintained).
func (n *Node) CheckAggregate() string {
	g := n.g
	ma := g.agg[n.id]
	if ma == nil {
		return ""
	}
	fresh := g.buildFresh(n.id)
	if fresh.strong != ma.strong || fresh.weak != ma.weak {
		return "boolean counts diverged"
	}
	if len(fresh.kinds) != len(ma.kinds) {
		return "kind sets diverged"
	}
	if !sort.SliceIsSorted(ma.kinds, func(i, j int) bool {
		return ma.kinds[i].evidence < ma.kinds[j].evidence
	}) {
		return "kinds not sorted"
	}
	for i := range fresh.kinds {
		f, m := fresh.kinds[i], ma.kinds[i]
		if f.evidence != m.evidence || f.count != m.count || f.nonMerge != m.nonMerge {
			return "kind " + f.evidence + " counts diverged"
		}
		if f.count > 0 && f.max != m.max {
			return "kind " + f.evidence + " max diverged"
		}
	}
	return ""
}
