package depgraph

import "testing"

func TestSummarize(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	b := g.AddRefPair(2, 3, "Person")
	v := g.AddValuePair("name", "x", "y", 0.5)
	g.AddEdge(v, a, RealValued, "name")
	g.AddEdge(v, b, RealValued, "name")
	g.AddEdge(a, b, WeakBoolean, "contact")
	g.AddEdge(b, a, StrongBoolean, "article")
	a.SetStatus(Merged)
	g.MarkNonMerge(b)

	s := g.Summarize()
	if s.RefPairs != 2 || s.ValuePairs != 1 {
		t.Errorf("populations: %+v", s)
	}
	if s.Merged != 1 || s.NonMerge != 1 || s.Inactive != 1 {
		t.Errorf("statuses: %+v", s)
	}
	if s.RealEdges != 2 || s.WeakEdges != 1 || s.StrongEdges != 1 {
		t.Errorf("edges: %+v", s)
	}
	if s.MaxOutDegree != 2 || s.MaxInDegree != 2 {
		t.Errorf("degrees: %+v", s)
	}
}

func TestCheckFixedPoint(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	v := g.AddValuePair("name", "x", "x", 1.0)
	v.SetStatus(Merged)
	g.AddEdge(v, a, RealValued, "name")

	scorer := ScorerFunc(func(n *Node) float64 {
		if n.Kind() == ValuePair {
			return n.Sim()
		}
		best := 0.0
		for _, e := range n.In() {
			if e.From.Sim() > best {
				best = e.From.Sim()
			}
		}
		return best
	})
	// Before the run, a would score 1.0 but holds 0: not a fixed point.
	if bad := g.CheckFixedPoint(scorer, 0); len(bad) != 1 || bad[0] != a {
		t.Fatalf("expected a as the violation, got %v", bad)
	}
	g.Run([]*Node{a}, Options{
		Scorer:         scorer,
		MergeThreshold: thresholds(0.85),
		Propagate:      true,
	})
	if bad := g.CheckFixedPoint(scorer, 0); len(bad) != 0 {
		t.Fatalf("run should reach a fixed point, violations: %v", bad)
	}
	// Non-merge nodes are exempt even if they would score high.
	b := g.AddRefPair(2, 3, "Person")
	g.AddEdge(v, b, RealValued, "name")
	g.MarkNonMerge(b)
	if bad := g.CheckFixedPoint(scorer, 0); len(bad) != 0 {
		t.Fatalf("non-merge nodes must be exempt: %v", bad)
	}
}
