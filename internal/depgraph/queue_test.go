package depgraph

import (
	"testing"

	"refrecon/internal/reference"
)

// qtest mints queueable nodes from a real graph: the queued flag and
// generation stamp live in the graph's node columns, so bare Node literals
// can no longer stand in.
type qtest struct {
	g    *Graph
	next reference.ID
}

func newQtest() *qtest { return &qtest{g: New()} }

func (qt *qtest) node() *Node {
	a := qt.next
	qt.next += 2
	return qt.g.AddRefPair(a, a+1, "Person")
}

func TestQueueFIFO(t *testing.T) {
	qt := newQtest()
	q := newNodeQueue(4)
	a, b, c := qt.node(), qt.node(), qt.node()
	q.pushBack(a)
	q.pushBack(b)
	q.pushBack(c)
	if q.len() != 3 {
		t.Fatalf("len = %d", q.len())
	}
	for _, want := range []*Node{a, b, c} {
		if got := q.pop(); got != want {
			t.Fatalf("pop = %v, want %v", got, want)
		}
	}
	if q.pop() != nil {
		t.Error("empty queue should pop nil")
	}
}

func TestQueueFront(t *testing.T) {
	qt := newQtest()
	q := newNodeQueue(4)
	a, b, c := qt.node(), qt.node(), qt.node()
	q.pushBack(a)
	q.pushFront(b)
	q.pushFront(c)
	for _, want := range []*Node{c, b, a} {
		if got := q.pop(); got != want {
			t.Fatalf("pop = %v, want %v", got, want)
		}
	}
}

func TestQueueGrowth(t *testing.T) {
	qt := newQtest()
	q := newNodeQueue(2)
	nodes := make([]*Node, 100)
	for i := range nodes {
		nodes[i] = qt.node()
		if i%3 == 0 {
			q.pushFront(nodes[i])
		} else {
			q.pushBack(nodes[i])
		}
	}
	count := 0
	for q.pop() != nil {
		count++
	}
	if count != 100 {
		t.Errorf("popped %d, want 100", count)
	}
}

func TestQueueStaleEntries(t *testing.T) {
	qt := newQtest()
	q := newNodeQueue(4)
	a, b := qt.node(), qt.node()
	q.pushBack(a)
	q.pushBack(b)
	q.remove(a) // a's entry is now stale
	if got := q.pop(); got != b {
		t.Errorf("pop = %v, want b (a was removed)", got)
	}
}

func TestQueueReEnqueueSupersedes(t *testing.T) {
	qt := newQtest()
	q := newNodeQueue(4)
	a, b := qt.node(), qt.node()
	q.pushBack(a)
	q.pushBack(b)
	q.pushFront(a) // supersedes the earlier entry
	if got := q.pop(); got != a {
		t.Fatalf("first pop = %v, want a", got)
	}
	if got := q.pop(); got != b {
		t.Fatalf("second pop = %v, want b", got)
	}
	if got := q.pop(); got != nil {
		t.Fatalf("third pop = %v, want nil (stale a skipped)", got)
	}
}

func TestQueueDeadNodeSkipped(t *testing.T) {
	qt := newQtest()
	q := newNodeQueue(4)
	a, b := qt.node(), qt.node()
	q.pushBack(a)
	q.pushBack(b)
	// Kill a behind the queue's back (removeNode would also clear the
	// queued flag; the aliveness check alone must suffice).
	qt.g.alive[a.id] = false
	if got := q.pop(); got != b {
		t.Errorf("pop = %v, want b (a is dead)", got)
	}
}
