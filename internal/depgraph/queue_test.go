package depgraph

import "testing"

func qnode(key string) *Node {
	return &Node{Key: key, alive: true}
}

func TestQueueFIFO(t *testing.T) {
	q := newNodeQueue(4)
	a, b, c := qnode("a"), qnode("b"), qnode("c")
	q.pushBack(a)
	q.pushBack(b)
	q.pushBack(c)
	if q.len() != 3 {
		t.Fatalf("len = %d", q.len())
	}
	for _, want := range []*Node{a, b, c} {
		if got := q.pop(); got != want {
			t.Fatalf("pop = %v, want %v", got, want)
		}
	}
	if q.pop() != nil {
		t.Error("empty queue should pop nil")
	}
}

func TestQueueFront(t *testing.T) {
	q := newNodeQueue(4)
	a, b, c := qnode("a"), qnode("b"), qnode("c")
	q.pushBack(a)
	q.pushFront(b)
	q.pushFront(c)
	for _, want := range []*Node{c, b, a} {
		if got := q.pop(); got != want {
			t.Fatalf("pop = %v, want %v", got, want)
		}
	}
}

func TestQueueGrowth(t *testing.T) {
	q := newNodeQueue(2)
	nodes := make([]*Node, 100)
	for i := range nodes {
		nodes[i] = qnode(string(rune('A' + i%26)))
		if i%3 == 0 {
			q.pushFront(nodes[i])
		} else {
			q.pushBack(nodes[i])
		}
	}
	count := 0
	for q.pop() != nil {
		count++
	}
	if count != 100 {
		t.Errorf("popped %d, want 100", count)
	}
}

func TestQueueStaleEntries(t *testing.T) {
	q := newNodeQueue(4)
	a, b := qnode("a"), qnode("b")
	q.pushBack(a)
	q.pushBack(b)
	q.remove(a) // a's entry is now stale
	if got := q.pop(); got != b {
		t.Errorf("pop = %v, want b (a was removed)", got)
	}
}

func TestQueueReEnqueueSupersedes(t *testing.T) {
	q := newNodeQueue(4)
	a, b := qnode("a"), qnode("b")
	q.pushBack(a)
	q.pushBack(b)
	q.pushFront(a) // supersedes the earlier entry
	if got := q.pop(); got != a {
		t.Fatalf("first pop = %v, want a", got)
	}
	if got := q.pop(); got != b {
		t.Fatalf("second pop = %v, want b", got)
	}
	if got := q.pop(); got != nil {
		t.Fatalf("third pop = %v, want nil (stale a skipped)", got)
	}
}

func TestQueueDeadNodeSkipped(t *testing.T) {
	q := newNodeQueue(4)
	a, b := qnode("a"), qnode("b")
	q.pushBack(a)
	q.pushBack(b)
	a.alive = false
	if got := q.pop(); got != b {
		t.Errorf("pop = %v, want b (a is dead)", got)
	}
}
