package depgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"refrecon/internal/reference"
)

// TestRandomOperationsInvariants drives the graph through long random
// sequences of construction, propagation, and enrichment operations and
// checks the structural invariants the algorithm depends on:
//
//   - at most one live node per element-pair key;
//   - adjacency symmetry: every out-edge is its target's in-edge;
//   - no edge touches a dead node;
//   - NodeCount/EdgeCount agree with a full recount.
func TestRandomOperationsInvariants(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New()

		const refs = 24
		var pairs []*Node
		// Random construction.
		for i := 0; i < 60; i++ {
			a := reference.ID(rng.Intn(refs))
			b := reference.ID(rng.Intn(refs))
			if a == b {
				continue
			}
			n := g.AddRefPair(a, b, "Person")
			pairs = append(pairs, n)
			if rng.Intn(2) == 0 {
				v := g.AddValuePair("name",
					fmt.Sprintf("x%d", rng.Intn(10)),
					fmt.Sprintf("x%d", rng.Intn(10)),
					rng.Float64())
				g.AddEdge(v, n, RealValued, "name")
			}
		}
		// Random inter-pair edges.
		for i := 0; i < 40 && len(pairs) > 1; i++ {
			a := pairs[rng.Intn(len(pairs))]
			b := pairs[rng.Intn(len(pairs))]
			dep := DepType(rng.Intn(3))
			g.AddEdge(a, b, dep, "contact")
		}
		// Random constraint marks.
		for i := 0; i < 5; i++ {
			g.MarkNonMerge(pairs[rng.Intn(len(pairs))])
		}
		// Run with a randomized monotone scorer and enrichment on.
		g.Run(pairs, Options{
			Scorer: ScorerFunc(func(n *Node) float64 {
				if n.Kind() == ValuePair {
					return n.Sim()
				}
				best := n.Sim()
				for _, e := range n.In() {
					if e.Dep == RealValued && e.From.Sim() > best {
						best = e.From.Sim()
					}
				}
				return best
			}),
			MergeThreshold: func(n *Node) float64 {
				if n.Kind() == ValuePair {
					return 1
				}
				return 0.7
			},
			Propagate: true,
			Enrich:    true,
			MaxSteps:  100000,
		})

		checkInvariants(t, g, seed)
	}
}

func checkInvariants(t *testing.T, g *Graph, seed int64) {
	t.Helper()
	seenKeys := make(map[string]bool)
	nodeCount, edgeCount := 0, 0
	g.Nodes(func(n *Node) {
		nodeCount++
		if seenKeys[n.Key()] {
			t.Fatalf("seed %d: duplicate live node for key %s", seed, n.Key())
		}
		seenKeys[n.Key()] = true
		if g.Lookup(n.Key()) != n {
			t.Fatalf("seed %d: index does not resolve %s to its node", seed, n.Key())
		}
		for _, e := range n.Out() {
			edgeCount++
			if !e.To.Alive() {
				t.Fatalf("seed %d: edge from %s to dead node %s", seed, n.Key(), e.To.Key())
			}
			found := false
			for _, in := range e.To.In() {
				if in == e {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: asymmetric adjacency %s -> %s", seed, n.Key(), e.To.Key())
			}
		}
		for _, e := range n.In() {
			if !e.From.Alive() {
				t.Fatalf("seed %d: edge into %s from dead node %s", seed, n.Key(), e.From.Key())
			}
		}
		if n.Sim() < 0 || n.Sim() > 1 {
			t.Fatalf("seed %d: node %s sim out of range: %f", seed, n.Key(), n.Sim())
		}
	})
	if nodeCount != g.NodeCount() {
		t.Fatalf("seed %d: NodeCount %d, recount %d", seed, g.NodeCount(), nodeCount)
	}
	if edgeCount != g.EdgeCount() {
		t.Fatalf("seed %d: EdgeCount %d, recount %d", seed, g.EdgeCount(), edgeCount)
	}
}
