package depgraph

// nodeQueue is a double-ended queue of nodes supporting the two insertion
// disciplines of §3.2: strong-boolean activations jump the queue (front),
// real-valued and weak-boolean activations wait their turn (back).
//
// A node may be superseded while queued (enrichment removes nodes; a node
// may be re-enqueued). Each enqueue stamps the node with a generation id;
// stale queue entries whose stamp no longer matches are skipped on pop.
// The queued flag and generation stamp live in the graph's node columns.
//
// Entries additionally carry a propagation-round number: a back-push
// lands in the round after the one currently draining (it will only be
// reached once everything ahead of it is done), while a front-push stays
// in the current round (strong-boolean activations jump the queue, so
// they are processed as part of the round that triggered them). round
// advances monotonically as stamped entries are popped; the engine uses
// the transitions as its trace/progress/cancellation checkpoints.
type nodeQueue struct {
	buf        []queueEntry
	head, tail int // head: next pop; tail: next back-push slot
	size       int
	nextGen    uint64
	round      int // round of the entry most recently popped
}

type queueEntry struct {
	node  *Node
	gen   uint64
	round int
}

func newNodeQueue(capacity int) *nodeQueue {
	if capacity < 16 {
		capacity = 16
	}
	return &nodeQueue{buf: make([]queueEntry, ceilPow2(capacity)), nextGen: 1}
}

func ceilPow2(n int) int {
	c := 16
	for c < n {
		c <<= 1
	}
	return c
}

func (q *nodeQueue) len() int { return q.size }

func (q *nodeQueue) grow() {
	if q.size < len(q.buf) {
		return
	}
	nb := make([]queueEntry, len(q.buf)*2)
	for i := 0; i < q.size; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
	q.tail = q.size
}

// pushBack enqueues n at the tail, stamped for the next round, and marks
// it queued.
func (q *nodeQueue) pushBack(n *Node) {
	q.grow()
	gen := q.nextGen
	q.nextGen++
	n.g.queued[n.id] = true
	n.g.qgen[n.id] = gen
	q.buf[q.tail] = queueEntry{n, gen, q.round + 1}
	q.tail = (q.tail + 1) & (len(q.buf) - 1)
	q.size++
}

// pushFront enqueues n at the head, stamped for the current round, and
// marks it queued.
func (q *nodeQueue) pushFront(n *Node) {
	q.grow()
	gen := q.nextGen
	q.nextGen++
	n.g.queued[n.id] = true
	n.g.qgen[n.id] = gen
	round := q.round
	if round == 0 {
		round = 1 // front-push before the first pop opens round 1
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = queueEntry{n, gen, round}
	q.size++
}

// pop removes and returns the next live node, or nil when the queue is
// drained. Stale entries (dead nodes, superseded generations) are skipped
// without advancing the round — only an entry that is actually evaluated
// moves the round forward.
func (q *nodeQueue) pop() *Node {
	for q.size > 0 {
		e := q.buf[q.head]
		q.buf[q.head] = queueEntry{}
		q.head = (q.head + 1) & (len(q.buf) - 1)
		q.size--
		n := e.node
		g := n.g
		if g.alive[n.id] && g.queued[n.id] && g.qgen[n.id] == e.gen {
			g.queued[n.id] = false
			if e.round > q.round {
				q.round = e.round
			}
			return n
		}
	}
	return nil
}

// remove marks any queued entry for n stale.
func (q *nodeQueue) remove(n *Node) { n.g.queued[n.id] = false }
