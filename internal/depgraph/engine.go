package depgraph

import (
	"fmt"
	"time"

	"refrecon/internal/obs"
)

// Scorer computes a node's similarity from its incoming edges. Score must
// be monotone in the incoming similarities (§3.2's termination condition):
// raising a neighbor's similarity may only raise the result. The engine
// additionally clamps scores to [0,1] and never lets a node's similarity
// decrease.
type Scorer interface {
	Score(n *Node) float64
}

// ScorerFunc adapts a function to the Scorer interface.
type ScorerFunc func(n *Node) float64

// Score implements Scorer.
func (f ScorerFunc) Score(n *Node) float64 { return f(n) }

// Options configure a propagation run.
type Options struct {
	// Scorer computes node similarities. Required.
	Scorer Scorer
	// MergeThreshold returns the similarity at which a node merges.
	// Required. (The paper uses 0.85 for reference pairs and 1.0 for
	// attribute-value pairs.)
	MergeThreshold func(n *Node) float64
	// Epsilon is the minimum similarity increase that re-activates
	// neighbors; it guarantees termination (§3.2). Default 1e-6.
	Epsilon float64
	// Propagate enables dependency-driven re-activation (§3.2). When
	// false, every seeded node is scored exactly once in seed order (the
	// TRADITIONAL and MERGE ablation modes).
	Propagate bool
	// Enrich enables reference enrichment (§3.3): merging (r1,r2) folds
	// every node (r2,r3) into (r1,r3).
	Enrich bool
	// OnMerge, if set, is invoked whenever a RefPair node first becomes
	// merged. The reconciler uses it to feed its union-find.
	OnMerge func(n *Node)
	// OnFold, if set, is invoked whenever enrichment folds node l into node
	// m, just before l is removed. The sharded orchestrator uses it to keep
	// forwarding maps so boundary links survive folds. The hook stays
	// installed for the duration of the Run only.
	OnFold func(l, m *Node)
	// MaxSteps caps the number of node evaluations as a safety net
	// against non-monotone scorers. 0 means 1000 * initial node count.
	MaxSteps int
	// Interrupt, if set, is polled at propagation-round boundaries. A
	// non-nil return stops the run before the fixed point: Stats.Interrupted
	// is set and the graph is left self-consistent (the interrupted node is
	// re-queued, maintained aggregates are exact) but not converged.
	// Callers typically pass ctx.Err for cooperative cancellation.
	Interrupt func() error
	// Trace, if set, records one span per propagation round (nested inside
	// the caller's phase span by time containment) and one per enrichment
	// cascade that folds at least one node. Nil disables tracing at the
	// cost of a pointer comparison per checkpoint.
	Trace *obs.Tracer
	// Progress, if set, receives one event per completed propagation
	// round. Nil disables progress reporting.
	Progress *obs.Progress
}

// Stats reports what a Run did.
type Stats struct {
	Steps      int  // node evaluations performed
	Merges     int  // RefPair nodes that became merged
	Folds      int  // nodes removed by enrichment
	Reactivate int  // re-activations pushed by propagation
	Truncated  bool // true if MaxSteps was hit

	// Rounds counts completed propagation rounds: a round is one sweep of
	// the queue as it stood when the round opened, plus any strong-boolean
	// activations that jumped into it (see nodeQueue). QueueHighWater is
	// the deepest the queue got, sampled before each evaluation.
	// RequeueReal / RequeueStrong / RequeueWeak split Reactivate by the
	// dependency type that pushed the re-activation. Interrupted is set
	// when Options.Interrupt stopped the run before the fixed point.
	// All of these are deterministic: identical across worker counts and
	// across delta/rescan scoring (the determinism tests compare them).
	Rounds         int
	QueueHighWater int
	RequeueReal    int
	RequeueStrong  int
	RequeueWeak    int
	Interrupted    bool

	// Delta-scoring counters (zero when the scorer rescans neighborhoods
	// instead of reading digests). DeltaHits counts scores served from a
	// memoized aggregate — each one a full neighborhood rescan avoided;
	// AggBuilds counts aggregates built by a first-touch full scan;
	// AggRebuilds counts per-evidence-kind rebuilds forced by enrichment
	// folds and NonMerge transitions.
	DeltaHits   int
	AggBuilds   int
	AggRebuilds int
}

// Run executes the propagation algorithm of Figure 4 over the graph. seed
// lists the RefPair nodes to evaluate, in the desired initial order
// (callers order dependees before dependents per §3.2's heuristic).
func (g *Graph) Run(seed []*Node, opt Options) Stats {
	if opt.Scorer == nil || opt.MergeThreshold == nil {
		panic("depgraph: Options.Scorer and Options.MergeThreshold are required")
	}
	eps := opt.Epsilon
	if eps <= 0 {
		eps = 1e-6
	}
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1000 * (g.liveNodes + 1)
	}
	var st Stats

	// From the first Run on, every evidence-changing mutation is hooked, so
	// digests built now stay exact — including across incremental sessions.
	g.maintain = true
	d0 := g.delta
	if opt.OnFold != nil {
		g.onFold = opt.OnFold
		defer func() { g.onFold = nil }()
	}

	for _, n := range seed {
		if g.alive[n.id] && g.status[n.id] != NonMerge {
			if g.status[n.id] == Merged {
				// Re-seeding demotes a previously merged node to Active; its
				// boolean contribution disappears until it re-merges, and
				// maintained dependents must see that immediately.
				g.aggOnDemoted(n)
			}
			g.status[n.id] = Active
			g.queue.pushBack(n)
		}
	}

	if opt.Enrich {
		var begin time.Time
		if opt.Trace != nil {
			begin = time.Now()
		}
		folds := g.reenrich()
		st.Folds += folds
		if opt.Trace != nil && folds > 0 {
			opt.Trace.Complete("enrich", "reenrich", begin, map[string]any{"folds": folds})
		}
	}

	// Round bookkeeping. The queue's round counter survives across
	// incremental Runs (the session reuses the graph), so this run's
	// rounds are counted relative to where the counter started. With
	// tracing, progress, and interruption all disabled the only per-step
	// additions to the pre-observability loop are two integer compares.
	startRound := g.queue.round
	round := startRound
	checkpoints := opt.Trace != nil || opt.Progress != nil || opt.Interrupt != nil
	var roundBegin time.Time
	roundMark := st // stats as of the open round's start
	closeRound := func(q int) {
		if opt.Trace != nil {
			opt.Trace.Complete("round", fmt.Sprintf("round %d", round-startRound), roundBegin, map[string]any{
				"steps":  st.Steps - roundMark.Steps,
				"merges": st.Merges - roundMark.Merges,
				"folds":  st.Folds - roundMark.Folds,
				"queue":  q,
			})
		}
		if opt.Progress != nil {
			opt.Progress.Emit(obs.Event{
				Phase: "propagate", Round: round - startRound,
				Steps: st.Steps, Merges: st.Merges, Folds: st.Folds, Queue: q,
			})
		}
		roundMark = st
	}

	for {
		if l := g.queue.len(); l > st.QueueHighWater {
			st.QueueHighWater = l
		}
		n := g.queue.pop()
		if n == nil {
			break
		}
		if g.queue.round != round {
			// Round boundary: the entry just popped opened a new round.
			if checkpoints {
				if round > startRound {
					closeRound(g.queue.len() + 1)
				}
				if opt.Interrupt != nil {
					if err := opt.Interrupt(); err != nil {
						st.Interrupted = true
						g.queue.pushFront(n) // unevaluated; keep the graph consistent
						break
					}
				}
				if opt.Trace != nil {
					roundBegin = time.Now()
				}
			}
			round = g.queue.round
		}
		id := n.id
		if g.status[id] == NonMerge {
			continue
		}
		if st.Steps >= maxSteps {
			st.Truncated = true
			break
		}
		st.Steps++

		wasMerged := g.status[id] == Merged
		old := g.sim[id]
		s := opt.Scorer.Score(n)
		if s > 1 {
			s = 1
		}
		if s > g.sim[id] {
			// raiseSim also bumps the per-kind running maxima of maintained
			// dependents, the delta patch that replaces their rescans.
			g.raiseSim(n, s)
		}
		increased := g.sim[id] > old+eps

		if g.sim[id] >= opt.MergeThreshold(n) {
			g.status[id] = Merged
		} else if g.status[id] != Merged {
			g.status[id] = Inactive
		}
		newlyMerged := g.status[id] == Merged && !wasMerged
		if newlyMerged {
			g.aggOnMerged(n)
		}

		if opt.Propagate && increased {
			for _, e := range g.spanIDs(g.outSpan[id]) {
				if g.eDep[e] == RealValued && g.activate(g.handles[g.eTo[e]]) {
					st.Reactivate++
					st.RequeueReal++
				}
			}
		}
		if newlyMerged {
			if g.kind[id] == RefPair {
				st.Merges++
				if opt.OnMerge != nil {
					opt.OnMerge(n)
				}
			}
			if opt.Propagate {
				// Strong-boolean neighbors jump the queue; weak-boolean
				// neighbors go to the back (§3.2).
				for _, e := range g.spanIDs(g.outSpan[id]) {
					if g.eDep[e] != StrongBoolean {
						continue
					}
					if g.activateFront(g.handles[g.eTo[e]]) {
						st.Reactivate++
						st.RequeueStrong++
					}
				}
				for _, e := range g.spanIDs(g.outSpan[id]) {
					if g.eDep[e] != WeakBoolean {
						continue
					}
					if g.activate(g.handles[g.eTo[e]]) {
						st.Reactivate++
						st.RequeueWeak++
					}
				}
			}
			if opt.Enrich && g.kind[id] == RefPair {
				var begin time.Time
				if opt.Trace != nil {
					begin = time.Now()
				}
				folds := g.enrich(n)
				st.Folds += folds
				if opt.Trace != nil && folds > 0 {
					opt.Trace.Complete("enrich", n.Key(), begin, map[string]any{"folds": folds})
				}
			}
		}
	}
	st.Rounds = g.queue.round - startRound
	if checkpoints && round > startRound && !st.Interrupted {
		closeRound(g.queue.len())
	}
	st.DeltaHits = int(g.delta.hits - d0.hits)
	st.AggBuilds = int(g.delta.builds - d0.builds)
	st.AggRebuilds = int(g.delta.rebuilds - d0.rebuilds)
	return st
}

// Activate pushes n to the back of the propagation queue if it is
// eligible, reporting whether it was pushed. It is the public face of the
// engine's weak-boolean/real-valued re-activation rule, exposed so the
// sharded boundary sync can replicate the monolithic engine's behavior
// when cross-shard evidence raises a mirror node.
func (g *Graph) Activate(n *Node) bool { return g.activate(n) }

// ActivateFront pushes n to the front of the propagation queue if
// eligible (the strong-boolean activation rule), reporting whether it was
// pushed.
func (g *Graph) ActivateFront(n *Node) bool { return g.activateFront(n) }

// RaiseSim raises n's similarity to sim, a no-op unless sim is strictly
// higher than the current value or n is constrained NonMerge. It routes
// through the maintained-aggregate hook, so external evidence injection —
// the sharded boundary sync pushing a source pair's similarity into its
// mirror — keeps dependents' digests exact. The value is clamped to 1.
func (g *Graph) RaiseSim(n *Node, sim float64) {
	if sim > 1 {
		sim = 1
	}
	if sim > g.sim[n.id] && g.status[n.id] != NonMerge {
		g.raiseSim(n, sim)
	}
}

// FoldInto applies the enrichment fold "l absorbs into m" outside the
// engine's own pop path: l's edges move onto m (deduplicated, aggregates
// patched), l's NonMerge status or higher similarity is inherited, l is
// removed, and targets that gained evidence are re-queued — exactly the
// mechanics of §3.3's fold. The sharded boundary sync uses it to replay an
// owner component's folds onto the mirror copies other components hold, so
// duplicate boolean evidence collapses the same way it does in the
// monolithic graph. No-op unless both nodes are alive and distinct.
// Options.OnFold is not invoked (the caller already knows the fold).
func (g *Graph) FoldInto(l, m *Node) {
	if l == m || !g.alive[l.id] || !g.alive[m.id] {
		return
	}
	g.fold(l, m)
}

// activate pushes m to the back of the queue if it is eligible for
// recomputation, reporting whether it was pushed. A merged node keeps its
// Merged status while queued: downgrading it would erase the evidence it
// provides to others' similarity functions and would make it fire its
// "newly merged" activations a second time.
func (g *Graph) activate(m *Node) bool {
	if !g.eligible(m) {
		return false
	}
	if g.status[m.id] == Inactive {
		g.status[m.id] = Active
	}
	g.queue.pushBack(m)
	return true
}

// activateFront pushes m to the front of the queue if eligible.
func (g *Graph) activateFront(m *Node) bool {
	if !g.eligible(m) {
		return false
	}
	if g.status[m.id] == Inactive {
		g.status[m.id] = Active
	}
	g.queue.pushFront(m)
	return true
}

func (g *Graph) eligible(m *Node) bool {
	id := m.id
	return g.alive[id] && !g.queued[id] && g.status[id] != NonMerge && g.sim[id] < 1
}

// reenrich re-applies reference enrichment for pairs that merged in a
// previous Run. A pair created by a later incremental batch may duplicate
// an existing pair of an already-merged reference — the merge event that
// would have folded it fired before the node existed — leaving several live
// nodes for the same (merged cluster, counterpart) relationship, each
// holding a scattered fraction of the evidence a single-batch run
// concentrates on one node. Folding eagerly at Run start restores the
// enrichment fixed point. Iterates until no fold applies; every fold
// removes a node, so the loop terminates. Node collection follows the
// graph's deterministic insertion order.
func (g *Graph) reenrich() int {
	total := 0
	for {
		var merged []*Node
		g.Nodes(func(n *Node) {
			if g.kind[n.id] == RefPair && g.status[n.id] == Merged {
				merged = append(merged, n)
			}
		})
		folds := 0
		for _, n := range merged {
			if g.alive[n.id] {
				folds += g.enrich(n)
			}
		}
		total += folds
		if folds == 0 {
			return total
		}
	}
}

// enrich implements §3.3: after merging n = (r1, r2), every node (r2, r3)
// whose counterpart (r1, r3) exists is folded into the counterpart —
// neighbors are reconnected, the duplicate is removed, and nodes that
// gained incoming neighbors are re-queued at the back. Returns the number
// of folded (removed) nodes.
func (g *Graph) enrich(n *Node) int {
	r1, r2 := g.refA[n.id], g.refB[n.id]
	folds := 0
	// Copy the index slice: fold mutates g.refNodes via removeNode.
	for _, l := range g.RefPairNodesOf(r2) {
		if l == n || !g.alive[l.id] {
			continue
		}
		r3 := l.Other(r2)
		if r3 == r1 {
			continue
		}
		m := g.LookupRefPair(r1, r3)
		if m == nil || m == l {
			continue
		}
		g.fold(l, m)
		folds++
	}
	return folds
}

// fold moves l's dependencies onto m and removes l. The span aliases below
// stay valid while addEdgeIDs grows the arena: relocation writes only to
// fresh tail regions, and l itself gains no edges during the fold.
func (g *Graph) fold(l, m *Node) {
	gainedIncoming := false
	for _, e := range g.spanIDs(g.inSpan[l.id]) {
		if g.addEdgeIDs(g.eFrom[e], m.id, g.eDep[e], g.eEv[e]) {
			gainedIncoming = true
		}
	}
	for _, e := range g.spanIDs(g.outSpan[l.id]) {
		if g.addEdgeIDs(m.id, g.eTo[e], g.eDep[e], g.eEv[e]) {
			// The target gained a new incoming neighbor: reconsider it.
			g.activate(g.handles[g.eTo[e]])
		}
	}
	switch {
	case g.status[l.id] == NonMerge:
		// r2 and r3 are constrained distinct; r1 ~ r2, so r1 and r3 are
		// too.
		g.MarkNonMerge(m)
	case g.status[m.id] != NonMerge && g.sim[l.id] > g.sim[m.id]:
		// Inherit the similarity but not the status: re-queueing m lets
		// the normal pop path mark it merged and fire its neighbors.
		g.raiseSim(m, g.sim[l.id])
		gainedIncoming = true
	}
	if g.onFold != nil {
		g.onFold(l, m)
	}
	g.removeNode(l)
	// Bypass the sim<1 eligibility check: even a node whose inherited
	// similarity is already 1 must be evaluated once more so its merged
	// status and downstream activations take effect.
	if gainedIncoming && !g.queued[m.id] && g.status[m.id] != NonMerge && g.status[m.id] != Merged {
		g.status[m.id] = Active
		g.queue.pushBack(m)
	}
}
