package depgraph

import (
	"errors"
	"testing"

	"refrecon/internal/obs"
)

// chainGraph builds the alias-learning cascade of TestPropagationChain's
// second graph: a1 merges on its title, the venue merges on real+strong
// evidence, alias learning merges the venue-name pair, and a2 merges
// through the alias — several reactivation waves, hence several rounds.
func chainGraph() (*Graph, []*Node) {
	g := New()
	a1 := g.AddRefPair(0, 1, "Article")
	ve := g.AddRefPair(2, 3, "Venue")
	a2 := g.AddRefPair(4, 5, "Article")
	ti := g.AddValuePair("title", "t1", "t1", 1.0)
	ti.SetStatus(Merged)
	g.AddEdge(ti, a1, RealValued, "title")
	vn0 := g.AddValuePair("vnameReal", "v1", "v2", 0.6)
	g.AddEdge(vn0, ve, RealValued, "vname")
	g.AddEdge(a1, ve, StrongBoolean, "article")
	alias := g.AddValuePair("vname", "sigmod", "acm", 0.2)
	g.AddEdge(ve, alias, StrongBoolean, "venue")
	t2 := g.AddValuePair("title", "t2", "t2'", 0.7)
	g.AddEdge(t2, a2, RealValued, "title")
	g.AddEdge(alias, a2, RealValued, "vname")
	return g, []*Node{ve, a2, a1}
}

// TestRunRoundAccounting checks the round model: reactivations push work
// into later rounds, Stats.Rounds counts them, one trace span and one
// progress event record each, and the requeue-kind split sums to the
// reactivation total.
func TestRunRoundAccounting(t *testing.T) {
	g, seeds := chainGraph()
	tr := obs.NewTracer()
	var progressRounds []int
	st := g.Run(seeds, Options{
		Scorer:         ScorerFunc(sumScorer),
		MergeThreshold: thresholds(0.85),
		Propagate:      true,
		Trace:          tr,
		Progress: &obs.Progress{Fn: func(e obs.Event) {
			progressRounds = append(progressRounds, e.Round)
		}},
	})
	if st.Rounds < 2 {
		t.Fatalf("Rounds = %d, want >= 2 (cascade must requeue)", st.Rounds)
	}
	if st.Reactivate == 0 {
		t.Fatal("no reactivations in the cascade")
	}
	if sum := st.RequeueReal + st.RequeueStrong + st.RequeueWeak; sum != st.Reactivate {
		t.Errorf("requeue kinds sum to %d, Reactivate = %d", sum, st.Reactivate)
	}
	if st.QueueHighWater == 0 {
		t.Error("QueueHighWater never sampled")
	}
	spans := 0
	for _, e := range tr.Events() {
		if e.Cat == "round" {
			spans++
		}
	}
	if spans != st.Rounds {
		t.Errorf("%d round spans for %d rounds", spans, st.Rounds)
	}
	if len(progressRounds) != st.Rounds {
		t.Fatalf("%d progress events for %d rounds", len(progressRounds), st.Rounds)
	}
	for i, r := range progressRounds {
		if r != i+1 {
			t.Fatalf("progress rounds = %v, want 1..%d", progressRounds, st.Rounds)
		}
	}
}

// TestRunInterrupt stops the cascade at the first round boundary and then
// resumes it: the interrupted run must report Interrupted with fewer
// rounds, and draining the surviving queue must reach exactly the state an
// uninterrupted run produces — the boundary node goes back on the queue
// rather than being dropped.
func TestRunInterrupt(t *testing.T) {
	full, fullSeeds := chainGraph()
	want := full.Run(fullSeeds, opts(true, false))

	g, seeds := chainGraph()
	stop := errors.New("stop")
	st := g.Run(seeds, Options{
		Scorer:         ScorerFunc(sumScorer),
		MergeThreshold: thresholds(0.85),
		Propagate:      true,
		Interrupt:      func() error { return stop },
	})
	if !st.Interrupted {
		t.Fatal("run not marked Interrupted")
	}
	if st.Rounds >= want.Rounds {
		t.Fatalf("interrupted run completed %d rounds, full run needs %d", st.Rounds, want.Rounds)
	}

	// Resume: no new seeds, the queue already holds the deferred work.
	rest := g.Run(nil, opts(true, false))
	if rest.Interrupted {
		t.Fatal("resumed run interrupted with no Interrupt set")
	}
	if got := st.Merges + rest.Merges; got != want.Merges {
		t.Errorf("interrupt+resume merged %d pairs, uninterrupted run merged %d", got, want.Merges)
	}
	status := func(gr *Graph) map[string]Status {
		out := map[string]Status{}
		gr.Nodes(func(n *Node) { out[n.Key()] = n.Status() })
		return out
	}
	got, wantStatus := status(g), status(full)
	for k, ws := range wantStatus {
		if got[k] != ws {
			t.Errorf("node %s status %v after resume, want %v", k, got[k], ws)
		}
	}
}
