package depgraph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"refrecon/internal/reference"
)

// This file holds the equivalence property test for delta scoring: random
// merge/enrich sequences scored through the delta-maintained evidence
// digests must be bit-identical — similarities, statuses, merge sets, and
// engine counters — to the same sequences scored by a full-rescan
// reference scorer. The two scorers below implement the same similarity
// template (a generic S_rv average plus gated boolean boosts, mirroring
// the simfn scoring shape); only their evidence access differs.

const (
	eqTRV   = 0.3
	eqBeta  = 0.1
	eqGamma = 0.05
)

func eqScoreTemplate(sum float64, count, strong, weak int) float64 {
	srv := 0.0
	if count > 0 {
		srv = sum / float64(count)
	}
	total := srv
	if srv >= eqTRV {
		total += eqBeta*float64(strong) + eqGamma*float64(weak)
	}
	if total > 1 {
		total = 1
	}
	return total
}

// eqRescanScore is the retained reference scorer: a full scan of the
// incoming edges on every call, accumulating evidence kinds in sorted
// order so float rounding matches the digest path exactly.
func eqRescanScore(n *Node) float64 {
	if n.Kind() == ValuePair {
		for _, e := range n.In() {
			if e.Dep == StrongBoolean && e.From.Status() == Merged {
				return 1
			}
		}
		return n.Sim()
	}
	maxBy := make(map[string]float64)
	var kinds []string
	strong, weak := 0, 0
	for _, e := range n.In() {
		switch e.Dep {
		case RealValued:
			if e.From.Status() == NonMerge {
				continue
			}
			if cur, ok := maxBy[e.Evidence]; !ok {
				maxBy[e.Evidence] = e.From.Sim()
				kinds = append(kinds, e.Evidence)
			} else if e.From.Sim() > cur {
				maxBy[e.Evidence] = e.From.Sim()
			}
		case StrongBoolean:
			if e.From.Status() == Merged {
				strong++
			}
		case WeakBoolean:
			if e.From.Status() == Merged {
				weak++
			}
		}
	}
	sort.Strings(kinds)
	sum := 0.0
	for _, k := range kinds {
		sum += maxBy[k]
	}
	return eqScoreTemplate(sum, len(kinds), strong, weak)
}

// eqDigestScore reads the delta-maintained digest instead of rescanning.
func eqDigestScore(n *Node) float64 {
	d := n.Digest()
	if n.Kind() == ValuePair {
		if d.StrongMergedCount() > 0 {
			return 1
		}
		return n.Sim()
	}
	sum, count := 0.0, 0
	d.EachRealEvidence(func(_ string, max float64) {
		sum += max
		count++
	})
	return eqScoreTemplate(sum, count, d.StrongMergedCount(), d.WeakMergedCount())
}

func eqOptions(scorer func(*Node) float64) Options {
	return Options{
		Scorer: ScorerFunc(scorer),
		MergeThreshold: func(n *Node) float64 {
			if n.Kind() == ValuePair {
				return 1
			}
			return 0.7
		},
		Epsilon:   1e-9,
		Propagate: true,
		Enrich:    true,
		MaxSteps:  1_000_000,
	}
}

// eqBuildPhase mutates g with one batch of random construction operations
// (the same operation mix as the graph-invariant generator, plus value-pair
// sim raises and constraint marks), drawing every random choice from rng so
// two graphs driven by equal-seeded rngs receive identical operation
// sequences. refHi bounds the reference-id universe; later batches pass a
// larger bound so new references wire into the existing graph. Returns the
// RefPair nodes touched this batch, in operation order — the propagation
// seed, which may include already-merged nodes from earlier batches
// (exercising the re-seed demotion path).
func eqBuildPhase(g *Graph, rng *rand.Rand, refHi int) []*Node {
	evidences := [...]string{"name", "email", "title"}
	var pairs []*Node
	for i := 0; i < 60; i++ {
		a := reference.ID(rng.Intn(refHi))
		b := reference.ID(rng.Intn(refHi))
		if a == b {
			continue
		}
		n := g.AddRefPair(a, b, "Person")
		pairs = append(pairs, n)
		for k := 0; k < 1+rng.Intn(2); k++ {
			ev := evidences[rng.Intn(len(evidences))]
			v := g.AddValuePair(ev,
				fmt.Sprintf("x%d", rng.Intn(12)),
				fmt.Sprintf("x%d", rng.Intn(12)),
				rng.Float64())
			g.AddEdge(v, n, RealValued, ev)
			if rng.Intn(4) == 0 {
				g.AddEdge(n, v, StrongBoolean, ev)
			}
		}
	}
	for i := 0; i < 50 && len(pairs) > 1; i++ {
		a := pairs[rng.Intn(len(pairs))]
		b := pairs[rng.Intn(len(pairs))]
		g.AddEdge(a, b, DepType(rng.Intn(3)), "contact")
	}
	for i := 0; i < 4; i++ {
		g.MarkNonMerge(pairs[rng.Intn(len(pairs))])
	}
	return pairs
}

// eqSnapshot canonically renders every live node's key, kind, status, and
// exact similarity bits.
func eqSnapshot(g *Graph) string {
	var lines []string
	g.Nodes(func(n *Node) {
		lines = append(lines, fmt.Sprintf("%s|%d|%d|%016x",
			n.Key(), n.Kind(), n.Status(), math.Float64bits(n.Sim())))
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// eqComparable zeroes the delta counters: the rescan run never touches
// aggregates, so only the shared engine counters are compared.
func eqComparable(st Stats) Stats {
	st.DeltaHits, st.AggBuilds, st.AggRebuilds = 0, 0, 0
	return st
}

func eqCheckAggregates(t *testing.T, g *Graph, seed int64, phase string) {
	t.Helper()
	g.Nodes(func(n *Node) {
		if msg := n.CheckAggregate(); msg != "" {
			t.Fatalf("seed %d %s: node %s aggregate inconsistent: %s", seed, phase, n.Key(), msg)
		}
	})
}

// TestDeltaRescanEquivalence drives pairs of identically constructed
// random graphs — one scored via delta-maintained digests, one via the
// full-rescan reference scorer — through a propagation run, an incremental
// second construction batch, and a second run. After every phase the two
// graphs must agree exactly, and every maintained aggregate must equal a
// fresh scan of its in-edges.
func TestDeltaRescanEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		gDelta, gRescan := New(), New()
		rngD := rand.New(rand.NewSource(seed))
		rngR := rand.New(rand.NewSource(seed))

		for batch, refHi := range []int{24, 40} {
			phase := fmt.Sprintf("batch %d", batch)
			seedD := eqBuildPhase(gDelta, rngD, refHi)
			seedR := eqBuildPhase(gRescan, rngR, refHi)
			if len(seedD) != len(seedR) {
				t.Fatalf("seed %d %s: construction diverged", seed, phase)
			}
			stD := gDelta.Run(seedD, eqOptions(eqDigestScore))
			stR := gRescan.Run(seedR, eqOptions(eqRescanScore))

			if got, want := eqComparable(stD), eqComparable(stR); got != want {
				t.Errorf("seed %d %s: delta stats %+v != rescan stats %+v", seed, phase, got, want)
			}
			if stR.DeltaHits != 0 || stR.AggBuilds != 0 || stR.AggRebuilds != 0 {
				t.Errorf("seed %d %s: rescan run reported aggregate activity: %+v", seed, phase, stR)
			}
			if stD.DeltaHits == 0 {
				t.Errorf("seed %d %s: delta run served no digest hits", seed, phase)
			}
			if snapD, snapR := eqSnapshot(gDelta), eqSnapshot(gRescan); snapD != snapR {
				t.Fatalf("seed %d %s: graphs diverged\n--- delta ---\n%s\n--- rescan ---\n%s",
					seed, phase, snapD, snapR)
			}
			eqCheckAggregates(t, gDelta, seed, phase)
			checkInvariants(t, gDelta, seed)
			checkInvariants(t, gRescan, seed)
		}
	}
}
