package depgraph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	v := g.AddValuePair("name", "x", "y", 0.7)
	g.AddEdge(v, a, RealValued, "name")
	b := g.AddRefPair(2, 3, "Article")
	b.SetStatus(Merged)
	g.AddEdge(b, a, StrongBoolean, "article")
	c := g.AddRefPair(4, 5, "Person")
	g.MarkNonMerge(c)
	g.AddEdge(c, a, WeakBoolean, "contact")

	var sb strings.Builder
	if err := g.WriteDOT(&sb, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph depgraph {",
		"shape=box",
		"shape=ellipse",
		"color=green4",
		"color=red3",
		"style=bold",
		"style=dashed",
		`label="article"`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTFilter(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	b := g.AddRefPair(2, 3, "Venue")
	g.AddEdge(a, b, RealValued, "x")
	var sb strings.Builder
	err := g.WriteDOT(&sb, func(n *Node) bool { return n.Class() == "Person" })
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "r2|r3") {
		t.Error("filtered node leaked into DOT output")
	}
	if strings.Contains(out, "->") {
		t.Error("edge to excluded node must be dropped")
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	build := func() string {
		g := New()
		a := g.AddRefPair(0, 1, "Person")
		b := g.AddRefPair(2, 3, "Person")
		v := g.AddValuePair("name", "p", "q", 0.4)
		g.AddEdge(v, a, RealValued, "name")
		g.AddEdge(v, b, RealValued, "name")
		g.AddEdge(a, b, WeakBoolean, "contact")
		var sb strings.Builder
		if err := g.WriteDOT(&sb, nil); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := build()
	for i := 0; i < 3; i++ {
		if build() != first {
			t.Fatal("nondeterministic DOT output")
		}
	}
}
