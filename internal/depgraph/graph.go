package depgraph

import (
	"fmt"

	"refrecon/internal/reference"
)

// Graph is the dependency graph plus the machinery to run similarity
// propagation over it. Construct with New, add nodes and edges, then call
// Run. Graph is not safe for concurrent use.
type Graph struct {
	nodes []*Node
	byKey map[string]*Node
	// refNodes indexes, for every reference, the RefPair nodes that
	// mention it; enrichment walks this index.
	refNodes map[reference.ID][]*Node
	queue    *nodeQueue

	liveNodes int
	edgeCount int

	// maintain turns on delta-maintenance of per-node evidence aggregates.
	// It is set by the first Run and stays on: from then every mutation
	// that can change a node's evidence goes through a hook in
	// aggregate.go, so memoized digests remain exact across incremental
	// sessions. Outside maintained mode Digest falls back to a full scan,
	// which keeps direct Status/Sim mutation (tests, construction) safe.
	maintain bool
	delta    deltaCounters
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		byKey:    make(map[string]*Node),
		refNodes: make(map[reference.ID][]*Node),
		queue:    newNodeQueue(64),
	}
}

// NodeCount returns the number of live nodes (the paper's Table 6 metric).
func (g *Graph) NodeCount() int { return g.liveNodes }

// EdgeCount returns the number of live directed edges.
func (g *Graph) EdgeCount() int { return g.edgeCount }

// Lookup returns the live node for key, or nil.
func (g *Graph) Lookup(key string) *Node {
	n := g.byKey[key]
	if n != nil && !n.alive {
		return nil
	}
	return n
}

// LookupRefPair returns the live node for the reference pair, or nil.
func (g *Graph) LookupRefPair(a, b reference.ID) *Node {
	return g.Lookup(RefPairKey(a, b))
}

// AddRefPair inserts (or returns the existing) node for a pair of
// references of the given class, with initial similarity 0.
func (g *Graph) AddRefPair(a, b reference.ID, class string) *Node {
	if a == b {
		panic(fmt.Sprintf("depgraph: self-pair for reference %d", a))
	}
	if b < a {
		a, b = b, a
	}
	key := RefPairKey(a, b)
	if n := g.Lookup(key); n != nil {
		return n
	}
	n := &Node{
		Key: key, Kind: RefPair, RefA: a, RefB: b, Class: class,
		alive: true, edgeSet: make(map[edgeKey]bool),
	}
	g.insert(n)
	g.refNodes[a] = append(g.refNodes[a], n)
	g.refNodes[b] = append(g.refNodes[b], n)
	return n
}

// AddValuePair inserts (or returns the existing) node for a pair of
// attribute values under an evidence type, with the given precomputed
// similarity. elemX and elemY are the canonical element keys of the two
// values.
func (g *Graph) AddValuePair(evidence, elemX, elemY string, sim float64) *Node {
	key := ValuePairKey(evidence, elemX, elemY)
	if n := g.Lookup(key); n != nil {
		if sim > n.Sim && n.Status != NonMerge {
			g.raiseSim(n, sim)
		}
		return n
	}
	n := &Node{
		Key: key, Kind: ValuePair, RefA: -1, RefB: -1, Class: evidence,
		Sim: sim, alive: true, edgeSet: make(map[edgeKey]bool),
	}
	g.insert(n)
	return n
}

func (g *Graph) insert(n *Node) {
	n.g = g
	g.nodes = append(g.nodes, n)
	g.byKey[n.Key] = n
	g.liveNodes++
}

// AddEdge inserts a directed dependency from -> to, deduplicating on
// (endpoint, type, evidence). Self-edges are rejected.
func (g *Graph) AddEdge(from, to *Node, dep DepType, evidence string) *Edge {
	if from == to {
		return nil
	}
	k := edgeKey{otherKey: to.Key, outgoing: true, dep: dep, evidence: evidence}
	if from.edgeSet[k] {
		return nil
	}
	e := &Edge{From: from, To: to, Dep: dep, Evidence: evidence}
	from.edgeSet[k] = true
	to.edgeSet[edgeKey{otherKey: from.Key, outgoing: false, dep: dep, evidence: evidence}] = true
	from.out = append(from.out, e)
	to.in = append(to.in, e)
	g.edgeCount++
	g.aggOnAddEdge(e)
	return e
}

// RemoveIfIsolated removes a node that has no edges (construction step
// 1(2) of §3.1). It reports whether the node was removed.
func (g *Graph) RemoveIfIsolated(n *Node) bool {
	if len(n.in) == 0 && len(n.out) == 0 {
		g.removeNode(n)
		return true
	}
	return false
}

// removeNode unlinks n from every neighbor and drops it from the indexes.
func (g *Graph) removeNode(n *Node) {
	if !n.alive {
		return
	}
	for _, e := range n.in {
		e.From.dropEdge(e, true)
		g.edgeCount--
	}
	for _, e := range n.out {
		e.To.dropEdge(e, false)
		g.aggOnDropSource(e.To, e)
		g.edgeCount--
	}
	n.in, n.out = nil, nil
	n.edgeSet = nil
	n.agg = nil
	n.alive = false
	delete(g.byKey, n.Key)
	g.liveNodes--
	g.queue.remove(n)
}

// dropEdge removes e from the node's adjacency on the given side
// (outgoing=true removes from out).
func (n *Node) dropEdge(e *Edge, outgoing bool) {
	var s *[]*Edge
	var other *Node
	if outgoing {
		s, other = &n.out, e.To
	} else {
		s, other = &n.in, e.From
	}
	for i, x := range *s {
		if x == e {
			(*s)[i] = (*s)[len(*s)-1]
			*s = (*s)[:len(*s)-1]
			break
		}
	}
	delete(n.edgeSet, edgeKey{otherKey: other.Key, outgoing: outgoing, dep: e.Dep, evidence: e.Evidence})
}

// MarkNonMerge marks the node as constrained-distinct. A non-merge node is
// frozen at similarity 0 and never enters the queue.
func (g *Graph) MarkNonMerge(n *Node) {
	if n.Status == NonMerge {
		return
	}
	wasMerged := n.Status == Merged
	n.Status = NonMerge
	n.Sim = 0
	g.queue.remove(n)
	g.aggOnNonMerge(n, wasMerged)
}

// MarkMerged marks the node as merged, patching dependents' evidence
// aggregates. All Merged transitions outside the engine's own pop path
// (e.g. value pairs that clear their merge threshold at construction time)
// must go through here rather than writing Status directly, or maintained
// digests would go stale.
func (g *Graph) MarkMerged(n *Node) {
	if n.Status == Merged || n.Status == NonMerge {
		return
	}
	n.Status = Merged
	g.aggOnMerged(n)
}

// Nodes invokes fn for every live node, in insertion order.
func (g *Graph) Nodes(fn func(*Node)) {
	for _, n := range g.nodes {
		if n.alive {
			fn(n)
		}
	}
}

// RefPairNodesOf returns the live RefPair nodes that mention r. The caller
// must not retain the slice across graph mutations.
func (g *Graph) RefPairNodesOf(r reference.ID) []*Node {
	all := g.refNodes[r]
	out := all[:0:0]
	for _, n := range all {
		if n.alive {
			out = append(out, n)
		}
	}
	return out
}
