package depgraph

import (
	"fmt"

	"refrecon/internal/reference"
)

// Graph is the dependency graph plus the machinery to run similarity
// propagation over it. Construct with New, add nodes and edges, then call
// Run. Graph is not safe for concurrent use.
//
// Storage is columnar (see storage.go): node fields live in flat parallel
// slices indexed by dense int32 ids, adjacency is spans of edge ids into a
// shared arena, and the hot-path indexes key on packed reference pairs and
// interned strings rather than the canonical key strings, which are
// materialized lazily at the API boundary.
type Graph struct {
	// Node columns, indexed by node id.
	kind    []Kind
	status  []Status
	sim     []float64
	refA    []reference.ID
	refB    []reference.ID
	classID []int32 // interned class (RefPair) / evidence type (ValuePair)
	valX    []int32 // interned element keys of a ValuePair, string-ordered
	valY    []int32
	key     []string // lazily built canonical keys ("" until requested)
	alive   []bool
	queued  []bool
	qgen    []uint64
	agg     []*aggregate
	inSpan  []span
	outSpan []span

	handles  []*Node // the stable public handle per node id
	nodeSlab []Node
	aggSlab  []aggregate

	// Edge columns, indexed by edge id, plus the shared adjacency arena.
	eFrom, eTo []int32
	eDep       []DepType
	eEv        []int32 // interned evidence
	adj        []int32

	deadEdges  int // removed edges still occupying columns
	adjGarbage int // arena slots abandoned by span relocation

	strs    interner
	byPair  map[uint64]int32
	byVal   map[valueIdent]int32
	edgeSet map[edgeIdent]struct{}
	// refNodes indexes, for every reference, the RefPair nodes that
	// mention it; enrichment walks this index.
	refNodes map[reference.ID][]int32
	queue    *nodeQueue

	liveNodes int
	edgeCount int

	// onFold, when set (by Run, from Options.OnFold), observes every
	// enrichment fold l -> m just before l is removed.
	onFold func(l, m *Node)

	// maintain turns on delta-maintenance of per-node evidence aggregates.
	// It is set by the first Run and stays on: from then every mutation
	// that can change a node's evidence goes through a hook in
	// aggregate.go, so memoized digests remain exact across incremental
	// sessions. Outside maintained mode Digest falls back to a full scan,
	// which keeps direct Status/Sim mutation (tests, construction) safe.
	maintain bool
	delta    deltaCounters
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		strs:     newInterner(),
		byPair:   make(map[uint64]int32),
		byVal:    make(map[valueIdent]int32),
		edgeSet:  make(map[edgeIdent]struct{}),
		refNodes: make(map[reference.ID][]int32),
		queue:    newNodeQueue(64),
	}
}

// NodeCount returns the number of live nodes (the paper's Table 6 metric).
func (g *Graph) NodeCount() int { return g.liveNodes }

// NodeIDBound returns an exclusive upper bound on the node ids ever
// assigned by this graph (dead rows included). Ids are dense and never
// reused, so callers may size side tables by this bound and index them
// with Node.ID.
func (g *Graph) NodeIDBound() int { return len(g.alive) }

// EdgeCount returns the number of live directed edges.
func (g *Graph) EdgeCount() int { return g.edgeCount }

// Lookup returns the live node for a canonical key string, or nil. The
// integer indexes are authoritative; this parses the key back into them
// (reference-pair keys have exactly one '|', value-pair keys at least
// two), so it serves the API boundary without a string-keyed index.
func (g *Graph) Lookup(key string) *Node {
	if a, b, ok := parseRefPairKey(key); ok {
		if id, ok := g.byPair[packPair(a, b)]; ok {
			return g.handles[id]
		}
		return nil
	}
	// Value key: the stored form is evidence|x|y with x <= y. Try every
	// split into three parts; only the authoring split can resolve to
	// interned ids that are present in the index together.
	for i := 0; i < len(key); i++ {
		if key[i] != '|' {
			continue
		}
		ev, ok := g.strs.lookup(key[:i])
		if !ok {
			continue
		}
		for j := i + 1; j < len(key); j++ {
			if key[j] != '|' {
				continue
			}
			x, ok := g.strs.lookup(key[i+1 : j])
			if !ok {
				continue
			}
			y, ok := g.strs.lookup(key[j+1:])
			if !ok {
				continue
			}
			if id, ok := g.byVal[valueIdent{ev: ev, x: x, y: y}]; ok {
				return g.handles[id]
			}
		}
	}
	return nil
}

// parseRefPairKey inverts RefPairKey: "r<digits>|r<digits>". The packed
// index stores only canonical (a < b) pairs, so a non-canonical string
// misses, exactly as it missed the old string-keyed map.
func parseRefPairKey(key string) (a, b reference.ID, ok bool) {
	rest := key
	a, rest, ok = parseRefID(rest)
	if !ok || len(rest) == 0 || rest[0] != '|' {
		return 0, 0, false
	}
	b, rest, ok = parseRefID(rest[1:])
	if !ok || len(rest) != 0 {
		return 0, 0, false
	}
	return a, b, true
}

func parseRefID(s string) (reference.ID, string, bool) {
	if len(s) == 0 || s[0] != 'r' {
		return 0, s, false
	}
	i, v := 1, 0
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		v = v*10 + int(s[i]-'0')
	}
	if i == 1 {
		return 0, s, false
	}
	return reference.ID(v), s[i:], true
}

// LookupRefPair returns the live node for the reference pair, or nil.
// This is the hot-path lookup: it touches only the packed-integer index.
func (g *Graph) LookupRefPair(a, b reference.ID) *Node {
	if b < a {
		a, b = b, a
	}
	if id, ok := g.byPair[packPair(a, b)]; ok {
		return g.handles[id]
	}
	return nil
}

// AddRefPair inserts (or returns the existing) node for a pair of
// references of the given class, with initial similarity 0.
func (g *Graph) AddRefPair(a, b reference.ID, class string) *Node {
	if a == b {
		panic(fmt.Sprintf("depgraph: self-pair for reference %d", a))
	}
	if b < a {
		a, b = b, a
	}
	pk := packPair(a, b)
	if id, ok := g.byPair[pk]; ok {
		return g.handles[id]
	}
	id := g.newNode(RefPair)
	g.refA[id], g.refB[id] = a, b
	g.classID[id] = g.strs.intern(class)
	g.byPair[pk] = id
	g.liveNodes++
	g.refNodes[a] = append(g.refNodes[a], id)
	g.refNodes[b] = append(g.refNodes[b], id)
	return g.handles[id]
}

// AddValuePair inserts (or returns the existing) node for a pair of
// attribute values under an evidence type, with the given precomputed
// similarity. elemX and elemY are the canonical element keys of the two
// values.
func (g *Graph) AddValuePair(evidence, elemX, elemY string, sim float64) *Node {
	if elemY < elemX {
		elemX, elemY = elemY, elemX
	}
	if evID, ok := g.strs.lookup(evidence); ok {
		if x, ok := g.strs.lookup(elemX); ok {
			if y, ok := g.strs.lookup(elemY); ok {
				if id, ok := g.byVal[valueIdent{ev: evID, x: x, y: y}]; ok {
					n := g.handles[id]
					if sim > g.sim[id] && g.status[id] != NonMerge {
						g.raiseSim(n, sim)
					}
					return n
				}
			}
		}
	}
	id := g.newNode(ValuePair)
	g.classID[id] = g.strs.intern(evidence)
	g.valX[id] = g.strs.intern(elemX)
	g.valY[id] = g.strs.intern(elemY)
	g.sim[id] = sim
	g.byVal[valueIdent{ev: g.classID[id], x: g.valX[id], y: g.valY[id]}] = id
	g.liveNodes++
	return g.handles[id]
}

// AddEdge inserts a directed dependency from -> to, deduplicating on
// (endpoints, type, evidence). Self-edges are rejected. It reports whether
// a new edge was inserted.
func (g *Graph) AddEdge(from, to *Node, dep DepType, evidence string) bool {
	return g.addEdgeIDs(from.id, to.id, dep, g.strs.intern(evidence))
}

// addEdgeIDs is AddEdge over raw ids with pre-interned evidence (the fold
// path re-wires edges without round-tripping through strings).
func (g *Graph) addEdgeIDs(from, to int32, dep DepType, ev int32) bool {
	if from == to {
		return false
	}
	ident := edgeIdent{from: from, to: to, ev: ev, dep: dep}
	if _, dup := g.edgeSet[ident]; dup {
		return false
	}
	g.edgeSet[ident] = struct{}{}
	e := int32(len(g.eFrom))
	g.eFrom = append(g.eFrom, from)
	g.eTo = append(g.eTo, to)
	g.eDep = append(g.eDep, dep)
	g.eEv = append(g.eEv, ev)
	g.spanAppend(&g.outSpan[from], e)
	g.spanAppend(&g.inSpan[to], e)
	g.edgeCount++
	g.aggOnAddEdge(e)
	return true
}

// RemoveIfIsolated removes a node that has no edges (construction step
// 1(2) of §3.1). It reports whether the node was removed.
func (g *Graph) RemoveIfIsolated(n *Node) bool {
	if g.inSpan[n.id].n == 0 && g.outSpan[n.id].n == 0 {
		g.removeNode(n)
		return true
	}
	return false
}

// removeNode unlinks n from every neighbor and drops it from the indexes.
// Its own index entries (packed-pair / value / edge identities) are
// deleted eagerly; the column rows and arena slots it abandons are
// reclaimed by the next compaction.
func (g *Graph) removeNode(n *Node) {
	id := n.id
	if !g.alive[id] {
		return
	}
	for _, e := range g.spanIDs(g.inSpan[id]) {
		g.spanDrop(&g.outSpan[g.eFrom[e]], e)
		g.killEdge(e)
		g.edgeCount--
	}
	for _, e := range g.spanIDs(g.outSpan[id]) {
		to := g.eTo[e]
		g.spanDrop(&g.inSpan[to], e)
		g.aggOnDropSource(g.handles[to], e)
		g.killEdge(e)
		g.edgeCount--
	}
	g.adjGarbage += int(g.inSpan[id].cap) + int(g.outSpan[id].cap)
	g.inSpan[id] = span{}
	g.outSpan[id] = span{}
	g.agg[id] = nil
	g.alive[id] = false
	if g.kind[id] == RefPair {
		delete(g.byPair, packPair(g.refA[id], g.refB[id]))
	} else {
		delete(g.byVal, valueIdent{ev: g.classID[id], x: g.valX[id], y: g.valY[id]})
	}
	g.liveNodes--
	g.queue.remove(n)
	g.maybeCompact()
}

// killEdge marks an edge's columns dead and drops its dedup identity.
func (g *Graph) killEdge(e int32) {
	delete(g.edgeSet, edgeIdent{from: g.eFrom[e], to: g.eTo[e], ev: g.eEv[e], dep: g.eDep[e]})
	g.eFrom[e] = -1
	g.deadEdges++
}

// MarkNonMerge marks the node as constrained-distinct. A non-merge node is
// frozen at similarity 0 and never enters the queue.
func (g *Graph) MarkNonMerge(n *Node) {
	id := n.id
	if g.status[id] == NonMerge {
		return
	}
	wasMerged := g.status[id] == Merged
	g.status[id] = NonMerge
	g.sim[id] = 0
	g.queue.remove(n)
	g.aggOnNonMerge(n, wasMerged)
}

// MarkMerged marks the node as merged, patching dependents' evidence
// aggregates. All Merged transitions outside the engine's own pop path
// (e.g. value pairs that clear their merge threshold at construction time)
// must go through here rather than writing Status directly, or maintained
// digests would go stale.
func (g *Graph) MarkMerged(n *Node) {
	id := n.id
	if g.status[id] == Merged || g.status[id] == NonMerge {
		return
	}
	g.status[id] = Merged
	g.aggOnMerged(n)
}

// Nodes invokes fn for every live node, in insertion order.
func (g *Graph) Nodes(fn func(*Node)) {
	for id := range g.alive {
		if g.alive[id] {
			fn(g.handles[id])
		}
	}
}

// RefPairNodesOf returns the live RefPair nodes that mention r. The caller
// must not retain the slice across graph mutations.
func (g *Graph) RefPairNodesOf(r reference.ID) []*Node {
	all := g.refNodes[r]
	var out []*Node
	for _, id := range all {
		if g.alive[id] {
			out = append(out, g.handles[id])
		}
	}
	return out
}
