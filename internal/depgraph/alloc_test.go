package depgraph

import (
	"testing"

	"refrecon/internal/reference"
)

// Allocation regression tests for the columnar storage layer. The build
// phase's cost is dominated by per-pair work against these entry points, so
// each hot path gets a hard allocs/op ceiling: the lookup/dedup paths must
// not allocate at all, and fresh inserts must stay within a small amortized
// budget (slab-carved handles, column appends, and index growth only).

// allocGraph builds a small but structurally representative graph: refpair
// nodes, value evidence with shared interned strings, and enough edges per
// node to exercise both inline spans and arena relocation.
func allocGraph() *Graph {
	g := New()
	for i := 0; i < 64; i++ {
		a, b := reference.ID(2*i), reference.ID(2*i+1)
		m := g.AddRefPair(a, b, "Person")
		n := g.AddValuePair("name", "n:alice", "n:bob", 0.5)
		g.AddEdge(n, m, RealValued, "name")
	}
	return g
}

func TestLookupRefPairZeroAlloc(t *testing.T) {
	g := allocGraph()
	if avg := testing.AllocsPerRun(200, func() {
		if g.LookupRefPair(0, 1) == nil {
			t.Fatal("pair (0,1) should exist")
		}
		if g.LookupRefPair(9999, 10000) != nil {
			t.Fatal("pair (9999,10000) should not exist")
		}
	}); avg != 0 {
		t.Errorf("LookupRefPair allocates %.1f allocs/op, want 0", avg)
	}
}

func TestAddRefPairExistingZeroAlloc(t *testing.T) {
	g := allocGraph()
	if avg := testing.AllocsPerRun(200, func() {
		g.AddRefPair(0, 1, "Person")
	}); avg != 0 {
		t.Errorf("AddRefPair(existing) allocates %.1f allocs/op, want 0", avg)
	}
}

func TestAddValuePairExistingZeroAlloc(t *testing.T) {
	g := allocGraph()
	if avg := testing.AllocsPerRun(200, func() {
		g.AddValuePair("name", "n:alice", "n:bob", 0.3) // below stored sim: no raise
	}); avg != 0 {
		t.Errorf("AddValuePair(existing) allocates %.1f allocs/op, want 0", avg)
	}
}

func TestAddEdgeDuplicateZeroAlloc(t *testing.T) {
	g := allocGraph()
	m := g.LookupRefPair(0, 1)
	n := g.Lookup(ValuePairKey("name", "n:alice", "n:bob"))
	if m == nil || n == nil {
		t.Fatal("fixture nodes missing")
	}
	if avg := testing.AllocsPerRun(200, func() {
		if g.AddEdge(n, m, RealValued, "name") {
			t.Fatal("edge should be a duplicate")
		}
	}); avg != 0 {
		t.Errorf("AddEdge(duplicate) allocates %.1f allocs/op, want 0", avg)
	}
}

// TestBuildAllocsAmortized bounds the amortized allocation count of fresh
// construction. Each iteration inserts one refpair node, one value node,
// and two edges; the columnar layout pays only for column/arena growth
// (amortized O(1) appends), slab refills, and map inserts, so the per-
// iteration average must stay in single digits. The pre-columnar layout
// spent ~15 allocs on this loop body (per-node structs, per-edge structs,
// two per-node edge-set map entries, key strings).
func TestBuildAllocsAmortized(t *testing.T) {
	next := reference.ID(0)
	avg := testing.AllocsPerRun(20, func() {
		g := New()
		for i := 0; i < 512; i++ {
			a := next
			next += 2
			m := g.AddRefPair(a, a+1, "Person")
			n := g.AddValuePair("name", "n:alice", "n:bob", 0.5)
			g.AddEdge(n, m, RealValued, "name")
			g.AddEdge(m, n, StrongBoolean, "name")
		}
	})
	perIter := avg / 512
	if perIter > 8 {
		t.Errorf("fresh build allocates %.2f allocs per node+2edges, want <= 8", perIter)
	}
}
