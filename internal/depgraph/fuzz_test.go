package depgraph

import (
	"testing"

	"refrecon/internal/reference"
)

// FuzzEngineOps interprets the fuzzer's byte stream as a program of graph
// operations — add pair, add value evidence, wire dependency edges, mark
// constraints, run propagation — and executes it against two graphs at
// once: one scored through the delta-maintained digests, one through the
// full-rescan reference scorer from equivalence_test.go. After every run
// the two must agree bit-for-bit and every maintained aggregate must match
// a fresh scan, so any divergence the delta machinery can be driven into
// becomes a one-file reproducer. Seed corpus in testdata/fuzz/FuzzEngineOps/.

// opStream decodes fuzzer bytes into bounded operands. Exhaustion yields
// zeros, so every byte prefix is a valid program.
type opStream struct {
	data []byte
	i    int
}

func (s *opStream) next() (byte, bool) {
	if s.i >= len(s.data) {
		return 0, false
	}
	b := s.data[s.i]
	s.i++
	return b, true
}

func (s *opStream) operand(n int) int {
	b, _ := s.next()
	return int(b) % n
}

func FuzzEngineOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 3, 5, 9, 1, 1, 4, 2, 7})
	// A program with two run barriers: construct, run, extend, run.
	f.Add([]byte{
		0, 1, 2, 1, 0, 2, 4, 200, 2, 0, 1, 0, 5,
		0, 3, 4, 1, 1, 6, 255, 3, 0, 5,
	})
	f.Add([]byte{0, 9, 8, 0, 8, 7, 2, 0, 1, 3, 180, 4, 0, 0, 2, 1, 2, 2, 3, 1, 5, 0, 10, 9, 5})
	// One pair accumulating seven value-evidence in-edges: the in-span
	// outgrows the minimum capacity and relocates into the arena overflow
	// region, with a duplicate edge re-added across the boundary and more
	// evidence appended after a run barrier.
	f.Add([]byte{
		0, 0, 1,
		1, 0, 0, 1, 100, 0,
		1, 0, 0, 2, 110, 0,
		1, 0, 0, 3, 120, 0,
		1, 0, 0, 4, 130, 0,
		1, 0, 0, 5, 140, 0,
		1, 0, 0, 6, 150, 0,
		1, 0, 0, 3, 120, 0,
		5,
		1, 0, 0, 7, 160, 0,
		5,
	})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 512 {
			t.Skip() // longer programs only repeat the same op mix
		}
		gD, gR := New(), New()
		// Parallel state: index i in one slice corresponds to the same
		// logical node in the other graph.
		var pairsD, pairsR []*Node
		var valsD, valsR []*Node
		var seedIdx []int // pairs touched since the previous run barrier
		runs := 0

		runBoth := func() {
			if runs >= 8 {
				return // bound propagation work per program
			}
			runs++
			seedD := make([]*Node, 0, len(seedIdx))
			seedR := make([]*Node, 0, len(seedIdx))
			for _, i := range seedIdx {
				seedD = append(seedD, pairsD[i])
				seedR = append(seedR, pairsR[i])
			}
			seedIdx = seedIdx[:0]
			stD := gD.Run(seedD, eqOptions(eqDigestScore))
			stR := gR.Run(seedR, eqOptions(eqRescanScore))
			if got, want := eqComparable(stD), eqComparable(stR); got != want {
				t.Fatalf("delta stats %+v != rescan stats %+v", got, want)
			}
			if snapD, snapR := eqSnapshot(gD), eqSnapshot(gR); snapD != snapR {
				t.Fatalf("graphs diverged after run\n--- delta ---\n%s\n--- rescan ---\n%s", snapD, snapR)
			}
			eqCheckAggregates(t, gD, -1, "fuzz")
			checkInvariants(t, gD, -1)
			checkInvariants(t, gR, -1)
		}

		s := &opStream{data: program}
		for {
			op, ok := s.next()
			if !ok {
				break
			}
			switch op % 6 {
			case 0: // add a reference pair
				a := reference.ID(s.operand(16))
				b := reference.ID(s.operand(16))
				if a == b {
					continue
				}
				pairsD = append(pairsD, gD.AddRefPair(a, b, "Person"))
				pairsR = append(pairsR, gR.AddRefPair(a, b, "Person"))
				seedIdx = append(seedIdx, len(pairsD)-1)
			case 1: // add value evidence to an existing pair
				if len(pairsD) == 0 {
					continue
				}
				evidences := [...]string{"name", "email", "title"}
				ev := evidences[s.operand(len(evidences))]
				x := s.operand(10)
				y := s.operand(10)
				sim := float64(s.operand(256)) / 255
				p := s.operand(len(pairsD))
				if !pairsD[p].Alive() {
					continue
				}
				keyX, keyY := byte('a'+x), byte('a'+y)
				vD := gD.AddValuePair(ev, string(keyX), string(keyY), sim)
				vR := gR.AddValuePair(ev, string(keyX), string(keyY), sim)
				valsD = append(valsD, vD)
				valsR = append(valsR, vR)
				gD.AddEdge(vD, pairsD[p], RealValued, ev)
				gR.AddEdge(vR, pairsR[p], RealValued, ev)
				seedIdx = append(seedIdx, p)
			case 2: // wire an inter-pair dependency edge
				if len(pairsD) < 2 {
					continue
				}
				a := s.operand(len(pairsD))
				b := s.operand(len(pairsD))
				if !pairsD[a].Alive() || !pairsD[b].Alive() {
					continue
				}
				dep := DepType(s.operand(3))
				gD.AddEdge(pairsD[a], pairsD[b], dep, "contact")
				gR.AddEdge(pairsR[a], pairsR[b], dep, "contact")
				seedIdx = append(seedIdx, b)
			case 3: // alias-learning edge: pair strengthens a value pair
				if len(pairsD) == 0 || len(valsD) == 0 {
					continue
				}
				p := s.operand(len(pairsD))
				v := s.operand(len(valsD))
				if !pairsD[p].Alive() || !valsD[v].Alive() {
					continue
				}
				gD.AddEdge(pairsD[p], valsD[v], StrongBoolean, valsD[v].Class())
				gR.AddEdge(pairsR[p], valsR[v], StrongBoolean, valsR[v].Class())
			case 4: // negative constraint
				if len(pairsD) == 0 {
					continue
				}
				p := s.operand(len(pairsD))
				if !pairsD[p].Alive() {
					continue
				}
				gD.MarkNonMerge(pairsD[p])
				gR.MarkNonMerge(pairsR[p])
			case 5: // run barrier: propagate, enrich, compare
				runBoth()
			}
		}
		runBoth()
	})
}
