package depgraph

import (
	"testing"
)

// sumScorer is a simple monotone scorer for tests: a node's similarity is
// its own current sim for ValuePair nodes, and for RefPair nodes the sum of
//
//	max over incoming real-valued edges of the source sim,
//	0.3 per merged incoming strong-boolean neighbor,
//	0.1 per merged incoming weak-boolean neighbor,
//
// clamped by the engine.
func sumScorer(n *Node) float64 {
	if n.Kind() == ValuePair {
		s := n.Sim()
		for _, e := range n.In() {
			if e.Dep == StrongBoolean && e.From.Status() == Merged && s < 1 {
				s = 1
			}
		}
		return s
	}
	real := 0.0
	boost := 0.0
	for _, e := range n.In() {
		switch e.Dep {
		case RealValued:
			if e.From.Sim() > real {
				real = e.From.Sim()
			}
		case StrongBoolean:
			if e.From.Status() == Merged {
				boost += 0.3
			}
		case WeakBoolean:
			if e.From.Status() == Merged {
				boost += 0.1
			}
		}
	}
	return real + boost
}

func thresholds(refT float64) func(*Node) float64 {
	return func(n *Node) float64 {
		if n.Kind() == ValuePair {
			return 1
		}
		return refT
	}
}

func opts(propagate, enrich bool) Options {
	return Options{
		Scorer:         ScorerFunc(sumScorer),
		MergeThreshold: thresholds(0.85),
		Propagate:      propagate,
		Enrich:         enrich,
	}
}

func TestRunSimplePass(t *testing.T) {
	g := New()
	m := g.AddRefPair(0, 1, "Person")
	v := g.AddValuePair("name", "x", "x", 1.0)
	v.SetStatus(Merged)
	g.AddEdge(v, m, RealValued, "name")
	st := g.Run([]*Node{m}, opts(false, false))
	if st.Steps != 1 {
		t.Errorf("Steps = %d, want 1", st.Steps)
	}
	if m.Status() != Merged || m.Sim() != 1 {
		t.Errorf("node not merged: %v", m)
	}
	if st.Merges != 1 {
		t.Errorf("Merges = %d", st.Merges)
	}
}

func TestRunBelowThreshold(t *testing.T) {
	g := New()
	m := g.AddRefPair(0, 1, "Person")
	v := g.AddValuePair("name", "x", "y", 0.5)
	g.AddEdge(v, m, RealValued, "name")
	st := g.Run([]*Node{m}, opts(true, true))
	if m.Status() != Inactive || m.Sim() != 0.5 {
		t.Errorf("node = %v", m)
	}
	if st.Merges != 0 {
		t.Errorf("Merges = %d", st.Merges)
	}
}

// TestPropagationChain reproduces §3.2's cascade: merging an article pair
// makes its venue pair merge via a strong-boolean dependency, which in turn
// merges the venue-name value pair (alias learning), which raises a second
// article pair above threshold.
func TestPropagationChain(t *testing.T) {
	g := New()
	article1 := g.AddRefPair(0, 1, "Article")
	venue := g.AddRefPair(2, 3, "Venue")
	article2 := g.AddRefPair(4, 5, "Article")

	title := g.AddValuePair("title", "t1", "t1", 1.0)
	title.SetStatus(Merged)
	g.AddEdge(title, article1, RealValued, "title")

	// Venue depends (strong-boolean) on article1 being merged.
	g.AddEdge(article1, venue, StrongBoolean, "article")
	// Venue-name aliases merge when the venue pair merges.
	vname := g.AddValuePair("vname", "sigmod", "acm conf mgmt data", 0.2)
	g.AddEdge(venue, vname, StrongBoolean, "venue")
	// article2 sees the venue-name value similarity plus its own title.
	title2 := g.AddValuePair("title", "t2", "t2'", 0.7)
	g.AddEdge(title2, article2, RealValued, "title")
	g.AddEdge(vname, article2, RealValued, "vname")

	st := g.Run([]*Node{venue, article2, article1}, opts(true, false))
	if article1.Status() != Merged {
		t.Fatal("article1 should merge from its title")
	}
	// Venue: 0.3 boost from strong-boolean — below 0.85, so not merged.
	if venue.Status() == Merged {
		t.Fatal("venue should not merge from one strong-boolean alone")
	}
	// Raise the stakes: give the venue real-valued name evidence too.
	g2 := New()
	a1 := g2.AddRefPair(0, 1, "Article")
	ve := g2.AddRefPair(2, 3, "Venue")
	a2 := g2.AddRefPair(4, 5, "Article")
	ti := g2.AddValuePair("title", "t1", "t1", 1.0)
	ti.SetStatus(Merged)
	g2.AddEdge(ti, a1, RealValued, "title")
	vn0 := g2.AddValuePair("vnameReal", "v1", "v2", 0.6)
	g2.AddEdge(vn0, ve, RealValued, "vname")
	g2.AddEdge(a1, ve, StrongBoolean, "article")
	alias := g2.AddValuePair("vname", "sigmod", "acm", 0.2)
	g2.AddEdge(ve, alias, StrongBoolean, "venue")
	t2 := g2.AddValuePair("title", "t2", "t2'", 0.7)
	g2.AddEdge(t2, a2, RealValued, "title")
	g2.AddEdge(alias, a2, RealValued, "vname")

	st = g2.Run([]*Node{ve, a2, a1}, opts(true, false))
	if a1.Status() != Merged {
		t.Fatal("a1 should merge")
	}
	if ve.Status() != Merged { // 0.6 + 0.3 = 0.9 >= 0.85
		t.Fatal("venue should merge with real + strong-boolean evidence")
	}
	if alias.Sim() != 1 || alias.Status() != Merged {
		t.Fatalf("alias value node should become merged, got %v", alias)
	}
	if a2.Status() != Merged { // max(0.7, 1.0) = 1 via alias
		t.Fatalf("a2 should merge through alias learning, got %v", a2)
	}
	if st.Reactivate == 0 {
		t.Error("expected reactivations")
	}
}

// TestNoPropagationMode verifies that with Propagate=false later merges do
// not revisit earlier decisions (the TRADITIONAL ablation).
func TestNoPropagationMode(t *testing.T) {
	g := New()
	person := g.AddRefPair(0, 1, "Person")
	article := g.AddRefPair(2, 3, "Article")
	ti := g.AddValuePair("title", "t", "t", 1.0)
	ti.SetStatus(Merged)
	g.AddEdge(ti, article, RealValued, "title")
	// Person depends on the article pair merging.
	g.AddEdge(article, person, StrongBoolean, "article")
	nm := g.AddValuePair("name", "wong e", "eugene wong", 0.6)
	g.AddEdge(nm, person, RealValued, "name")

	// Person is seeded BEFORE article (rank order): without propagation
	// the article's merge comes too late to help the person.
	g.Run([]*Node{person, article}, opts(false, false))
	if person.Status() == Merged {
		t.Error("person should not merge without propagation")
	}

	// Same graph with propagation: the strong-boolean activation carries
	// the article's merge back to the person (0.6 + 0.3 >= 0.85).
	g2 := New()
	person2 := g2.AddRefPair(0, 1, "Person")
	article2 := g2.AddRefPair(2, 3, "Article")
	ti2 := g2.AddValuePair("title", "t", "t", 1.0)
	ti2.SetStatus(Merged)
	g2.AddEdge(ti2, article2, RealValued, "title")
	g2.AddEdge(article2, person2, StrongBoolean, "article")
	nm2 := g2.AddValuePair("name", "wong e", "eugene wong", 0.6)
	g2.AddEdge(nm2, person2, RealValued, "name")
	g2.Run([]*Node{person2, article2}, opts(true, false))
	if person2.Status() != Merged {
		t.Error("person should merge with propagation")
	}
}

// TestEnrichmentFold reproduces Figure 3: nodes m6=(p5,p8) and m8=(p5,p9)
// exist; reconciling (p8,p9) folds m8 into m6, moving m8's evidence onto
// m6, after which m6 can merge.
func TestEnrichmentFold(t *testing.T) {
	const p5, p8, p9 = 5, 8, 9
	g := New()
	m6 := g.AddRefPair(p5, p8, "Person")
	m8 := g.AddRefPair(p5, p9, "Person")
	merger := g.AddRefPair(p8, p9, "Person")

	// (p8,p9) share an email key: sim 1.
	emailKey := g.AddValuePair("email", "s@mit", "s@mit", 1.0)
	emailKey.SetStatus(Merged)
	g.AddEdge(emailKey, merger, RealValued, "email")

	// m6 has evidence 0.5 (name-vs-email); m8 has evidence 0.5
	// (first-initial), on distinct value nodes.
	n8 := g.AddValuePair("nameEmail", "stonebraker m", "s@mit", 0.5)
	g.AddEdge(n8, m6, RealValued, "nameEmail")
	n9 := g.AddValuePair("name", "stonebraker m", "mike", 0.5)
	g.AddEdge(n9, m8, RealValued, "name")

	st := g.Run([]*Node{m6, m8, merger}, Options{
		Scorer: ScorerFunc(func(n *Node) float64 {
			if n.Kind() == ValuePair {
				return n.Sim()
			}
			// Sum of distinct real-valued evidence (so folding m8's
			// evidence into m6 pushes it over threshold).
			s := 0.0
			for _, e := range n.In() {
				if e.Dep == RealValued {
					s += e.From.Sim()
				}
			}
			return s
		}),
		MergeThreshold: thresholds(0.85),
		Propagate:      true,
		Enrich:         true,
	})
	if merger.Status() != Merged {
		t.Fatal("(p8,p9) should merge on the email key")
	}
	if m8.Alive() {
		t.Fatal("m8 should have been folded away")
	}
	if st.Folds != 1 {
		t.Errorf("Folds = %d, want 1", st.Folds)
	}
	if m6.Status() != Merged {
		t.Errorf("m6 should merge after enrichment: sim=%f", m6.Sim())
	}
	if len(m6.In()) != 2 {
		t.Errorf("m6 should have inherited n9: in=%d", len(m6.In()))
	}
}

// TestEnrichmentWithoutPropagation checks the MERGE ablation: folds still
// reactivate the absorbing node even though dependency propagation is off.
func TestEnrichmentWithoutPropagation(t *testing.T) {
	const p5, p8, p9 = 5, 8, 9
	g := New()
	m6 := g.AddRefPair(p5, p8, "Person")
	m8 := g.AddRefPair(p5, p9, "Person")
	merger := g.AddRefPair(p8, p9, "Person")
	emailKey := g.AddValuePair("email", "s@mit", "s@mit", 1.0)
	emailKey.SetStatus(Merged)
	g.AddEdge(emailKey, merger, RealValued, "email")
	n8 := g.AddValuePair("x", "a", "b", 0.5)
	g.AddEdge(n8, m6, RealValued, "x")
	n9 := g.AddValuePair("y", "c", "d", 0.5)
	g.AddEdge(n9, m8, RealValued, "y")

	g.Run([]*Node{m6, m8, merger}, Options{
		Scorer: ScorerFunc(func(n *Node) float64 {
			if n.Kind() == ValuePair {
				return n.Sim()
			}
			s := 0.0
			for _, e := range n.In() {
				if e.Dep == RealValued {
					s += e.From.Sim()
				}
			}
			return s
		}),
		MergeThreshold: thresholds(0.85),
		Propagate:      false,
		Enrich:         true,
	})
	if m8.Alive() {
		t.Fatal("fold should happen in MERGE mode")
	}
	if m6.Status() != Merged {
		t.Errorf("m6 should merge via enrichment reactivation: %v", m6)
	}
}

func TestNonMergeNeverScored(t *testing.T) {
	g := New()
	m := g.AddRefPair(0, 1, "Person")
	v := g.AddValuePair("email", "k", "k", 1.0)
	v.SetStatus(Merged)
	g.AddEdge(v, m, RealValued, "email")
	g.MarkNonMerge(m)
	st := g.Run([]*Node{m}, opts(true, true))
	if m.Status() != NonMerge || m.Sim() != 0 {
		t.Errorf("non-merge node mutated: %v", m)
	}
	if st.Steps != 0 {
		t.Errorf("Steps = %d, want 0", st.Steps)
	}
}

// TestFoldPropagatesNonMerge: if (r2,r3) is non-merge and (r1,r2) merges,
// (r1,r3) must become non-merge during the fold.
func TestFoldPropagatesNonMerge(t *testing.T) {
	g := New()
	m := g.AddRefPair(1, 3, "Person") // (r1,r3)
	l := g.AddRefPair(2, 3, "Person") // (r2,r3) constrained
	merger := g.AddRefPair(1, 2, "Person")
	g.MarkNonMerge(l)
	key := g.AddValuePair("email", "k", "k", 1.0)
	key.SetStatus(Merged)
	g.AddEdge(key, merger, RealValued, "email")
	// Give l an edge so it is not isolated.
	v := g.AddValuePair("name", "a", "b", 0.3)
	g.AddEdge(v, l, RealValued, "name")
	g.AddEdge(v, m, RealValued, "name")

	g.Run([]*Node{m, merger}, opts(true, true))
	if merger.Status() != Merged {
		t.Fatal("merger should merge")
	}
	if l.Alive() {
		t.Fatal("l should be folded")
	}
	if m.Status() != NonMerge {
		t.Errorf("non-merge must propagate through folds: %v", m)
	}
}

// TestCyclicDependencyTerminates: two nodes that depend on each other with
// a monotone scorer must reach a fixed point.
func TestCyclicDependencyTerminates(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	b := g.AddRefPair(2, 3, "Person")
	g.AddEdge(a, b, RealValued, "contact")
	g.AddEdge(b, a, RealValued, "contact")
	va := g.AddValuePair("name", "x", "x'", 0.5)
	g.AddEdge(va, a, RealValued, "name")
	vb := g.AddValuePair("name", "y", "y'", 0.5)
	g.AddEdge(vb, b, RealValued, "name")

	scorer := ScorerFunc(func(n *Node) float64 {
		if n.Kind() == ValuePair {
			return n.Sim()
		}
		base, bonus := 0.0, 0.0
		for _, e := range n.In() {
			if e.From.Kind() == ValuePair {
				base = e.From.Sim()
			} else {
				bonus = 0.4 * e.From.Sim()
			}
		}
		return base + bonus
	})
	st := g.Run([]*Node{a, b}, Options{
		Scorer:         scorer,
		MergeThreshold: thresholds(0.85),
		Propagate:      true,
		Epsilon:        0.001,
	})
	if st.Truncated {
		t.Fatal("cyclic run hit the step cap")
	}
	// Fixed point of s = 0.5 + 0.4 s is 5/6 ≈ 0.833; with eps 0.001 the
	// loop should settle close to it and below the 0.85 threshold.
	if a.Sim() < 0.8 || a.Sim() > 0.85 || a.Status() == Merged {
		t.Errorf("a = %v", a)
	}
}

// TestMutualWeakMergeTerminates is a regression test: two person pairs
// that are weak-boolean neighbors of each other and both merge must not
// ping-pong re-activations forever. (A merged node re-queued for a
// similarity refresh must not count as newly merged again.)
func TestMutualWeakMergeTerminates(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	b := g.AddRefPair(2, 3, "Person")
	g.AddEdge(a, b, WeakBoolean, "contact")
	g.AddEdge(b, a, WeakBoolean, "contact")
	va := g.AddValuePair("name", "x", "x'", 0.9) // merges on its own
	g.AddEdge(va, a, RealValued, "name")
	vb := g.AddValuePair("name", "y", "y'", 0.82) // needs a's weak boost
	g.AddEdge(vb, b, RealValued, "name")

	scorer := ScorerFunc(func(n *Node) float64 {
		if n.Kind() == ValuePair {
			return n.Sim()
		}
		s := 0.0
		for _, e := range n.In() {
			switch {
			case e.Dep == RealValued:
				s += e.From.Sim()
			case e.Dep == WeakBoolean && e.From.Status() == Merged:
				s += 0.05
			}
		}
		return s
	})
	st := g.Run([]*Node{a, b}, Options{
		Scorer:         scorer,
		MergeThreshold: thresholds(0.85),
		Propagate:      true,
		Enrich:         true,
		MaxSteps:       1000,
	})
	if st.Truncated {
		t.Fatalf("mutual weak merge did not terminate: %+v", st)
	}
	if a.Status() != Merged || b.Status() != Merged {
		t.Errorf("both should merge: %v %v", a, b)
	}
	if st.Merges != 2 {
		t.Errorf("Merges = %d, want 2 (each node merges exactly once)", st.Merges)
	}
}

func TestMaxStepsTruncates(t *testing.T) {
	g := New()
	a := g.AddRefPair(0, 1, "Person")
	b := g.AddRefPair(2, 3, "Person")
	g.AddEdge(a, b, RealValued, "x")
	g.AddEdge(b, a, RealValued, "x")
	// Deliberately non-monotone scorer that keeps increasing: the step cap
	// must stop the run.
	i := 0.0
	st := g.Run([]*Node{a, b}, Options{
		Scorer: ScorerFunc(func(n *Node) float64 {
			i += 1e-9
			if i >= 0.8 {
				i = 0
			}
			return n.Sim() + 1e-9
		}),
		MergeThreshold: thresholds(2), // unreachable
		Propagate:      true,
		Epsilon:        1e-12,
		MaxSteps:       100,
	})
	if !st.Truncated {
		t.Error("expected truncation")
	}
	if st.Steps != 100 {
		t.Errorf("Steps = %d", st.Steps)
	}
}

func TestRunPanicsWithoutScorer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run without scorer should panic")
		}
	}()
	New().Run(nil, Options{})
}

// TestReenrichFoldsLateDuplicates covers the incremental-session gap the
// differential harness exposed: a pair created AFTER its reference merged
// in an earlier Run never sees the enrichment fold that fires at merge
// time, so several live nodes split the evidence one batch run
// concentrates on a single node. The second Run must fold the latecomer
// into the established pair before propagating.
func TestReenrichFoldsLateDuplicates(t *testing.T) {
	const r1, r2, r3 = 1, 2, 3
	g := New()

	// Run 1: (r1, r2) merges on a key value.
	merged := g.AddRefPair(r1, r2, "Venue")
	key := g.AddValuePair("name", "sigmod", "sigmod", 1.0)
	key.SetStatus(Merged)
	g.AddEdge(key, merged, RealValued, "name")
	g.Run([]*Node{merged}, opts(true, true))
	if merged.Status() != Merged {
		t.Fatal("(r1,r2) should merge in run 1")
	}

	// Run 2 (a later incremental batch): both (r1, r3) and the duplicate
	// (r2, r3) appear, each holding evidence 0.5 that only suffices when
	// combined (sumScorer MAXes real-valued evidence per node, and each
	// node also carries a merged strong-boolean worth 0.3).
	keep := g.AddRefPair(r1, r3, "Venue")
	dup := g.AddRefPair(r2, r3, "Venue")
	v1 := g.AddValuePair("name", "a", "b", 0.5)
	g.AddEdge(v1, keep, RealValued, "name")
	v2 := g.AddValuePair("year", "x", "y", 0.5)
	g.AddEdge(v2, dup, RealValued, "year")
	s1 := g.AddValuePair("shared", "art1", "art1", 1.0)
	s1.SetStatus(Merged)
	g.AddEdge(s1, keep, StrongBoolean, "article")
	s2 := g.AddValuePair("shared", "art2", "art2", 1.0)
	s2.SetStatus(Merged)
	g.AddEdge(s2, dup, StrongBoolean, "article")

	st := g.Run([]*Node{keep, dup}, opts(true, true))
	if dup.Alive() {
		t.Fatal("(r2,r3) should have been folded into (r1,r3) at run start")
	}
	if st.Folds < 1 {
		t.Errorf("Folds = %d, want >= 1", st.Folds)
	}
	// 0.5 real + 2 strong-boolean merged sources x 0.3 = 1.1, clamped; the
	// scattered alternative leaves both nodes at 0.8 < 0.85.
	if keep.Status() != Merged {
		t.Errorf("(r1,r3) should merge on the pooled evidence: sim=%f status=%v", keep.Sim(), keep.Status())
	}
}
