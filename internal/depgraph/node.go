// Package depgraph implements the dependency graph of §3 of the paper: an
// engine that propagates reference-similarity decisions between dependent
// reconciliation decisions until a fixed point.
//
// Nodes represent the similarity of a pair of *elements* — either two
// references of the same class, or two attribute values. Directed edges
// represent dependency: an edge n -> m means m's similarity must be
// reconsidered when n's similarity grows. Edges are typed (§3.1):
//
//   - real-valued: m's score uses n's actual similarity value;
//   - strong-boolean: reconciling n's references implies (strong evidence
//     for) reconciling m's;
//   - weak-boolean: reconciling n's references merely increases m's score.
//
// The engine is generic: it knows nothing about classes or attribute
// semantics. A Scorer supplied by the caller computes each node's
// similarity from its incoming edges, and per-node merge thresholds decide
// when a node becomes "merged". Reference enrichment (§3.3) and non-merge
// constraint handling (§3.4) are implemented as graph operations here; the
// reconciliation-specific policy lives in package recon.
//
// # Storage layout
//
// Node and edge state lives in columnar arrays on the Graph, indexed by
// dense int32 ids: one flat slice per field (kind, status, sim, refs,
// class, flags, aggregate) instead of one heap object per node, and one
// slice per edge field (endpoints, dependency type, interned evidence)
// instead of one heap object per edge. Adjacency is a CSR-style layout:
// per-node spans of edge ids into a shared arena, appended in place while
// capacity lasts and relocated to the arena tail (the overflow region)
// when it runs out; a compaction pass periodically rewrites the arena
// contiguously and drops dead edges. Strings leave the hot path: pair
// lookups key on packed (refA, refB) integers, value-pair lookups on
// interned element ids, and the canonical Key strings are materialized
// lazily for the API boundary (audit, DOT export, explanations).
//
// The public surface keeps pointer semantics: *Node is a thin, stable
// handle (graph pointer + id) allocated from slabs, so pointer equality
// still identifies a node, and Edge is a value struct materialized during
// iteration.
package depgraph

import (
	"fmt"

	"refrecon/internal/reference"
)

// Kind distinguishes the two node populations.
type Kind uint8

const (
	// RefPair nodes represent the similarity of two references.
	RefPair Kind = iota
	// ValuePair nodes represent the similarity of two attribute values
	// (possibly of different attributes, e.g. a name vs an email).
	ValuePair
)

func (k Kind) String() string {
	if k == ValuePair {
		return "value-pair"
	}
	return "ref-pair"
}

// Status is the propagation state of a node (§3.2, §3.4).
type Status uint8

const (
	// Inactive nodes have an up-to-date similarity.
	Inactive Status = iota
	// Active nodes are queued for (re)computation.
	Active
	// Merged nodes exceeded their merge threshold: the elements are
	// reconciled.
	Merged
	// NonMerge nodes are constrained: the elements are guaranteed
	// distinct and must never be reconciled.
	NonMerge
)

func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Merged:
		return "merged"
	case NonMerge:
		return "non-merge"
	default:
		return "inactive"
	}
}

// DepType classifies how the edge's target depends on its source (§3.1).
type DepType uint8

const (
	// RealValued dependencies feed the source's similarity value into the
	// target's score.
	RealValued DepType = iota
	// StrongBoolean dependencies matter only once the source is merged,
	// and then imply the target should merge.
	StrongBoolean
	// WeakBoolean dependencies matter only once the source is merged, and
	// then merely increase the target's score.
	WeakBoolean
)

func (d DepType) String() string {
	switch d {
	case StrongBoolean:
		return "strong-boolean"
	case WeakBoolean:
		return "weak-boolean"
	default:
		return "real-valued"
	}
}

// Edge is a directed, typed dependency. Evidence labels the kind of
// evidence the source contributes to the target's similarity function
// (e.g. "name", "email", "name-email", "coauthor"); the Scorer interprets
// it. Edge is a value materialized from the graph's columnar edge storage
// during iteration; the From/To handles are the nodes' stable pointers.
type Edge struct {
	From, To *Node
	Dep      DepType
	Evidence string
}

// Node is a stable handle to one similarity decision. Handles are
// allocated from slabs by the graph — every node has exactly one, so
// pointer equality identifies nodes — and stay valid after the node is
// removed (Alive reports false). Field state lives in the graph's columns
// and is reached through the accessor methods.
type Node struct {
	g  *Graph
	id int32
}

// Key returns the canonical element-pair key (the paper's uniqueness
// requirement). Keys are materialized lazily: the hot path keys nodes on
// packed integers, and the string form is built on first request.
func (n *Node) Key() string {
	g := n.g
	if g.key[n.id] == "" {
		g.key[n.id] = g.buildKey(n.id)
	}
	return g.key[n.id]
}

// ID returns the node's dense storage id: assigned at insertion, never
// reused or renumbered. Useful for indexing side tables sized by
// Graph.NodeIDBound. Ids are graph-local — nodes of different graphs may
// share an id.
func (n *Node) ID() int32 { return n.id }

// Kind says whether this is a reference pair or a value pair.
func (n *Node) Kind() Kind { return n.g.kind[n.id] }

// RefA returns the smaller reference id of a RefPair node (-1 for value
// pairs).
func (n *Node) RefA() reference.ID { return n.g.refA[n.id] }

// RefB returns the larger reference id of a RefPair node (-1 for value
// pairs).
func (n *Node) RefB() reference.ID { return n.g.refB[n.id] }

// Class is the references' class for RefPair nodes; for ValuePair nodes it
// is the evidence type of the value comparison.
func (n *Node) Class() string { return n.g.strs.str(n.g.classID[n.id]) }

// ValueElems returns the canonical element keys of a ValuePair node, in
// stored (string-ascending) order. For RefPair nodes both strings are
// empty.
func (n *Node) ValueElems() (x, y string) {
	if n.g.kind[n.id] != ValuePair {
		return "", ""
	}
	return n.g.strs.str(n.g.valX[n.id]), n.g.strs.str(n.g.valY[n.id])
}

// Sim is the current similarity score in [0, 1].
func (n *Node) Sim() float64 { return n.g.sim[n.id] }

// Status is the propagation state.
func (n *Node) Status() Status { return n.g.status[n.id] }

// SetSim writes the similarity directly. Safe during construction and in
// tests; once the graph is in maintained mode (from the first Run on),
// similarity increases must go through the graph's internal raiseSim hook
// instead, which this bypasses.
func (n *Node) SetSim(v float64) { n.g.sim[n.id] = v }

// SetStatus writes the propagation state directly. Safe during
// construction and in tests; in maintained mode use MarkMerged /
// MarkNonMerge so dependents' evidence digests stay exact.
func (n *Node) SetStatus(s Status) { n.g.status[n.id] = s }

// In returns the incoming edges, materialized into a fresh slice. Prefer
// EachIn on hot paths.
func (n *Node) In() []Edge { return n.g.edgeSlice(n.g.inSpan[n.id]) }

// Out returns the outgoing edges, materialized into a fresh slice. Prefer
// EachOut on hot paths.
func (n *Node) Out() []Edge { return n.g.edgeSlice(n.g.outSpan[n.id]) }

// EachIn invokes fn for every incoming edge, in adjacency order, without
// materializing a slice.
func (n *Node) EachIn(fn func(Edge)) {
	g := n.g
	for _, e := range g.spanIDs(g.inSpan[n.id]) {
		fn(g.edgeAt(e))
	}
}

// EachOut invokes fn for every outgoing edge, in adjacency order, without
// materializing a slice.
func (n *Node) EachOut(fn func(Edge)) {
	g := n.g
	for _, e := range g.spanIDs(g.outSpan[n.id]) {
		fn(g.edgeAt(e))
	}
}

// InDegree returns the number of incoming edges.
func (n *Node) InDegree() int { return int(n.g.inSpan[n.id].n) }

// OutDegree returns the number of outgoing edges.
func (n *Node) OutDegree() int { return int(n.g.outSpan[n.id].n) }

// Alive reports whether the node is still part of the graph (enrichment
// removes nodes).
func (n *Node) Alive() bool { return n.g.alive[n.id] }

// Other returns the mate of r in a RefPair node. It panics if r is not one
// of the node's references.
func (n *Node) Other(r reference.ID) reference.ID {
	switch r {
	case n.g.refA[n.id]:
		return n.g.refB[n.id]
	case n.g.refB[n.id]:
		return n.g.refA[n.id]
	}
	panic(fmt.Sprintf("depgraph: reference %d not in node %s", r, n.Key()))
}

// String renders a compact description for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("%s(%s sim=%.3f %s)", n.Kind(), n.Key(), n.Sim(), n.Status())
}

// RefPairKey builds the canonical key for a reference pair.
func RefPairKey(a, b reference.ID) string {
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("r%d|r%d", a, b)
}

// ValuePairKey builds the canonical key for a value pair under an evidence
// type. The two element keys are ordered so (x,y) and (y,x) collide.
func ValuePairKey(evidence, x, y string) string {
	if y < x {
		x, y = y, x
	}
	return evidence + "|" + x + "|" + y
}

// packPair packs a canonical (a < b) reference pair into one map key.
func packPair(a, b reference.ID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}
