// Package depgraph implements the dependency graph of §3 of the paper: an
// engine that propagates reference-similarity decisions between dependent
// reconciliation decisions until a fixed point.
//
// Nodes represent the similarity of a pair of *elements* — either two
// references of the same class, or two attribute values. Directed edges
// represent dependency: an edge n -> m means m's similarity must be
// reconsidered when n's similarity grows. Edges are typed (§3.1):
//
//   - real-valued: m's score uses n's actual similarity value;
//   - strong-boolean: reconciling n's references implies (strong evidence
//     for) reconciling m's;
//   - weak-boolean: reconciling n's references merely increases m's score.
//
// The engine is generic: it knows nothing about classes or attribute
// semantics. A Scorer supplied by the caller computes each node's
// similarity from its incoming edges, and per-node merge thresholds decide
// when a node becomes "merged". Reference enrichment (§3.3) and non-merge
// constraint handling (§3.4) are implemented as graph operations here; the
// reconciliation-specific policy lives in package recon.
package depgraph

import (
	"fmt"

	"refrecon/internal/reference"
)

// Kind distinguishes the two node populations.
type Kind uint8

const (
	// RefPair nodes represent the similarity of two references.
	RefPair Kind = iota
	// ValuePair nodes represent the similarity of two attribute values
	// (possibly of different attributes, e.g. a name vs an email).
	ValuePair
)

func (k Kind) String() string {
	if k == ValuePair {
		return "value-pair"
	}
	return "ref-pair"
}

// Status is the propagation state of a node (§3.2, §3.4).
type Status uint8

const (
	// Inactive nodes have an up-to-date similarity.
	Inactive Status = iota
	// Active nodes are queued for (re)computation.
	Active
	// Merged nodes exceeded their merge threshold: the elements are
	// reconciled.
	Merged
	// NonMerge nodes are constrained: the elements are guaranteed
	// distinct and must never be reconciled.
	NonMerge
)

func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Merged:
		return "merged"
	case NonMerge:
		return "non-merge"
	default:
		return "inactive"
	}
}

// DepType classifies how the edge's target depends on its source (§3.1).
type DepType uint8

const (
	// RealValued dependencies feed the source's similarity value into the
	// target's score.
	RealValued DepType = iota
	// StrongBoolean dependencies matter only once the source is merged,
	// and then imply the target should merge.
	StrongBoolean
	// WeakBoolean dependencies matter only once the source is merged, and
	// then merely increase the target's score.
	WeakBoolean
)

func (d DepType) String() string {
	switch d {
	case StrongBoolean:
		return "strong-boolean"
	case WeakBoolean:
		return "weak-boolean"
	default:
		return "real-valued"
	}
}

// Edge is a directed, typed dependency. Evidence labels the kind of
// evidence the source contributes to the target's similarity function
// (e.g. "name", "email", "name-email", "coauthor"); the Scorer interprets
// it.
type Edge struct {
	From, To *Node
	Dep      DepType
	Evidence string
}

// Node is one similarity decision.
type Node struct {
	// Key uniquely identifies the element pair (the paper's uniqueness
	// requirement).
	Key string
	// Kind says whether this is a reference pair or a value pair.
	Kind Kind
	// RefA, RefB are set for RefPair nodes (RefA < RefB).
	RefA, RefB reference.ID
	// Class is the references' class for RefPair nodes; for ValuePair
	// nodes it is the evidence type of the value comparison.
	Class string
	// Sim is the current similarity score in [0, 1].
	Sim float64
	// Status is the propagation state.
	Status Status

	in      []*Edge
	out     []*Edge
	edgeSet map[edgeKey]bool

	// g backlinks to the owning graph so Digest can consult maintenance
	// mode; agg is the delta-maintained evidence aggregate (nil until the
	// node is first scored in maintained mode). See aggregate.go.
	g   *Graph
	agg *aggregate

	alive   bool
	queued  bool
	queueID uint64 // generation marker used by the queue to skip stale entries
}

type edgeKey struct {
	otherKey string
	outgoing bool
	dep      DepType
	evidence string
}

// In returns the incoming edges. The slice must not be mutated.
func (n *Node) In() []*Edge { return n.in }

// Out returns the outgoing edges. The slice must not be mutated.
func (n *Node) Out() []*Edge { return n.out }

// Alive reports whether the node is still part of the graph (enrichment
// removes nodes).
func (n *Node) Alive() bool { return n.alive }

// Other returns the mate of r in a RefPair node. It panics if r is not one
// of the node's references.
func (n *Node) Other(r reference.ID) reference.ID {
	switch r {
	case n.RefA:
		return n.RefB
	case n.RefB:
		return n.RefA
	}
	panic(fmt.Sprintf("depgraph: reference %d not in node %s", r, n.Key))
}

// String renders a compact description for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("%s(%s sim=%.3f %s)", n.Kind, n.Key, n.Sim, n.Status)
}

// RefPairKey builds the canonical key for a reference pair.
func RefPairKey(a, b reference.ID) string {
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("r%d|r%d", a, b)
}

// ValuePairKey builds the canonical key for a value pair under an evidence
// type. The two element keys are ordered so (x,y) and (y,x) collide.
func ValuePairKey(evidence, x, y string) string {
	if y < x {
		x, y = y, x
	}
	return evidence + "|" + x + "|" + y
}
