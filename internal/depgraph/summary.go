package depgraph

// Summary aggregates the graph's state after a run: node populations by
// kind and status, and dependency-edge counts by type. The reconciler
// surfaces it for diagnostics; Table 6 reads the node totals.
type Summary struct {
	RefPairs, ValuePairs                    int
	Merged, NonMerge, Inactive, ActiveNodes int
	RealEdges, StrongEdges, WeakEdges       int
	MaxInDegree, MaxOutDegree               int
}

// Summarize walks the live graph and returns its Summary.
func (g *Graph) Summarize() Summary {
	var s Summary
	g.Nodes(func(n *Node) {
		if n.Kind() == RefPair {
			s.RefPairs++
		} else {
			s.ValuePairs++
		}
		switch n.Status() {
		case Merged:
			s.Merged++
		case NonMerge:
			s.NonMerge++
		case Active:
			s.ActiveNodes++
		default:
			s.Inactive++
		}
		for _, e := range n.Out() {
			switch e.Dep {
			case RealValued:
				s.RealEdges++
			case StrongBoolean:
				s.StrongEdges++
			case WeakBoolean:
				s.WeakEdges++
			}
		}
		if d := n.InDegree(); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
		if d := n.OutDegree(); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
	})
	return s
}

// CheckFixedPoint verifies that no live, unconstrained node's similarity
// would increase by more than eps if rescored — the termination property
// §3.2 promises. It returns the offending nodes (nil when the graph is at
// a fixed point). Intended for tests and debugging; cost is one scoring
// pass over the graph.
func (g *Graph) CheckFixedPoint(scorer Scorer, eps float64) []*Node {
	if eps <= 0 {
		eps = 1e-6
	}
	var bad []*Node
	g.Nodes(func(n *Node) {
		if n.Status() == NonMerge {
			return
		}
		s := scorer.Score(n)
		if s > 1 {
			s = 1
		}
		if s > n.Sim()+eps {
			bad = append(bad, n)
		}
	})
	return bad
}
