package depgraph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the live graph (or the subgraph accepted by filter,
// when non-nil) in Graphviz DOT format for debugging and documentation.
// Reference pairs are boxes, value pairs are ellipses; merged nodes are
// green, non-merge nodes red. Edge styles encode dependency types:
// solid = real-valued, bold = strong-boolean, dashed = weak-boolean.
// Output is deterministic (nodes and edges sorted by key).
func (g *Graph) WriteDOT(w io.Writer, filter func(*Node) bool) error {
	var nodes []*Node
	g.Nodes(func(n *Node) {
		if filter == nil || filter(n) {
			nodes = append(nodes, n)
		}
	})
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key() < nodes[j].Key() })
	included := make(map[*Node]bool, len(nodes))
	for _, n := range nodes {
		included[n] = true
	}

	if _, err := fmt.Fprintln(w, "digraph depgraph {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	for _, n := range nodes {
		shape := "ellipse"
		if n.Kind() == RefPair {
			shape = "box"
		}
		color := "black"
		switch n.Status() {
		case Merged:
			color = "green4"
		case NonMerge:
			color = "red3"
		case Active:
			color = "blue3"
		}
		fmt.Fprintf(w, "  %s [shape=%s color=%s label=%s];\n",
			dotID(n.Key()), shape, color,
			dotString(fmt.Sprintf("%s\n%.2f %s", n.Key(), n.Sim(), n.Status())))
	}
	var lines []string
	for _, n := range nodes {
		for _, e := range n.Out() {
			if !included[e.To] {
				continue
			}
			style := "solid"
			switch e.Dep {
			case StrongBoolean:
				style = "bold"
			case WeakBoolean:
				style = "dashed"
			}
			lines = append(lines, fmt.Sprintf("  %s -> %s [style=%s label=%s];",
				dotID(n.Key()), dotID(e.To.Key()), style, dotString(e.Evidence)))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// dotID makes a key safe as a DOT identifier by quoting it.
func dotID(key string) string { return dotString(key) }

func dotString(s string) string {
	return `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s) + `"`
}
