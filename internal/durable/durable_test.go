package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := Record{Kind: KindBatch, Ordinal: uint64(i + 1), Payload: []byte(fmt.Sprintf("batch-%d-payload", i+1))}
		if i%3 == 2 {
			recs = append(recs, r, Record{Kind: KindPoison, Ordinal: uint64(i + 1)})
			continue
		}
		recs = append(recs, r)
	}
	return recs
}

func encodeAll(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		if err := AppendRecord(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecords(7)
	data := encodeAll(t, want)
	got, clean, err := DecodeRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if clean != len(data) {
		t.Errorf("clean = %d, want %d", clean, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		if w.Payload == nil {
			w.Payload = []byte{}
		}
		g := got[i]
		if g.Payload == nil {
			g.Payload = []byte{}
		}
		if g.Kind != w.Kind || g.Ordinal != w.Ordinal || !bytes.Equal(g.Payload, w.Payload) {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestDecodeTornTail cuts the stream at every byte boundary inside the
// last record: the prefix must decode cleanly and the error must wrap
// ErrTorn with the clean offset at the last intact boundary.
func TestDecodeTornTail(t *testing.T) {
	recs := sampleRecords(3)
	data := encodeAll(t, recs)
	prefix := encodeAll(t, recs[:len(recs)-1])
	for cut := len(prefix) + 1; cut < len(data); cut++ {
		got, clean, err := DecodeRecords(data[:cut])
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("cut %d: err = %v, want ErrTorn", cut, err)
		}
		if clean != len(prefix) {
			t.Errorf("cut %d: clean = %d, want %d", cut, clean, len(prefix))
		}
		if len(got) != len(recs)-1 {
			t.Errorf("cut %d: decoded %d records, want %d", cut, len(got), len(recs)-1)
		}
	}
}

// TestDecodeCorruption flips one byte in the middle record: decoding must
// stop at that record with ErrTorn (the CRC catches payload, header, and
// length corruption alike).
func TestDecodeCorruption(t *testing.T) {
	recs := sampleRecords(3)
	one := encodeAll(t, recs[:1])
	for off := len(one); off < len(one)+headerSize+4; off++ {
		data := encodeAll(t, recs)
		data[off] ^= 0x41
		got, clean, err := DecodeRecords(data)
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("flip at %d: err = %v, want ErrTorn", off, err)
		}
		if clean != len(one) || len(got) != 1 {
			t.Errorf("flip at %d: clean=%d records=%d, want %d/1", off, clean, len(got), len(one))
		}
	}
}

func TestDecodeImplausibleLength(t *testing.T) {
	data := encodeAll(t, sampleRecords(1))
	// Corrupt the length field to a huge value; decode must reject it
	// before allocating, with ErrTorn.
	data[9], data[10], data[11], data[12] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeRecords(data); !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn", err)
	}
}

func openLogT(t *testing.T, dir string) (*Log, []Record) {
	t.Helper()
	l, recs, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestLogAppendReopen(t *testing.T) {
	dir := t.TempDir()
	l, recs := openLogT(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := sampleRecords(5)
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openLogT(t, dir)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("reopen replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Ordinal != want[i].Ordinal ||
			!bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The reopened log keeps appending into the same sequence.
	if err := l2.Append(Record{Kind: KindBatch, Ordinal: 99, Payload: []byte("after reopen")}); err != nil {
		t.Fatal(err)
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLogT(t, dir)
	want := sampleRecords(3)
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate a crash mid-append: garbage at the end of the live segment.
	seg := filepath.Join(dir, fmt.Sprintf(segPattern, uint64(1)))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{KindBatch, 9, 0, 0})
	f.Close()
	l2, got := openLogT(t, dir)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d (torn tail dropped)", len(got), len(want))
	}
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	var clean int64
	for _, r := range want {
		clean += recordSize(r)
	}
	if st.Size() != clean {
		t.Errorf("segment size %d after truncation, want %d", st.Size(), clean)
	}
}

func TestLogRollAndRemoveThrough(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLogT(t, dir)
	l.SegmentBytes = 64 // force rolls
	var want []Record
	for i := 1; i <= 10; i++ {
		r := Record{Kind: KindBatch, Ordinal: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, 40)}
		want = append(want, r)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 5 {
		t.Fatalf("Segments() = %d, want several after tiny-segment appends", l.Segments())
	}
	if err := l.RemoveThrough(6); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, got := openLogT(t, dir)
	defer l2.Close()
	var ords []uint64
	for _, r := range got {
		ords = append(ords, r.Ordinal)
	}
	if len(got) == 0 || got[0].Ordinal != 7 {
		t.Fatalf("after RemoveThrough(6) replay starts at %v, want ordinal 7", ords)
	}
	if !reflect.DeepEqual(ords, []uint64{7, 8, 9, 10}) {
		t.Errorf("replayed ordinals %v, want [7 8 9 10]", ords)
	}
}

func TestLogMidLogCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLogT(t, dir)
	l.SegmentBytes = 64
	for i := 1; i <= 6; i++ {
		if err := l.Append(Record{Kind: KindBatch, Ordinal: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, 40)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Corrupt the FIRST segment: that is not a torn tail, it is data loss,
	// and recovery must refuse rather than silently drop committed batches.
	seg := filepath.Join(dir, fmt.Sprintf(segPattern, uint64(1)))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	os.WriteFile(seg, data, 0o644)
	if _, _, err := OpenLog(dir); err == nil {
		t.Fatal("OpenLog accepted a corrupt mid-log segment")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := &Checkpoint{Ordinal: 42, Records: sampleRecords(4), Snapshot: []byte("snapshot-blob")}
	size, err := WriteCheckpoint(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Errorf("size = %d, want > 0", size)
	}
	got, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("LatestCheckpoint found nothing")
	}
	if got.Ordinal != want.Ordinal || !bytes.Equal(got.Snapshot, want.Snapshot) {
		t.Errorf("checkpoint = ord %d snap %q, want ord %d snap %q",
			got.Ordinal, got.Snapshot, want.Ordinal, want.Snapshot)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if got.Records[i].Ordinal != want.Records[i].Ordinal ||
			!bytes.Equal(got.Records[i].Payload, want.Records[i].Payload) {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], want.Records[i])
		}
	}
}

// TestCheckpointTruncatedFallsBack truncates the newest checkpoint at
// every interesting boundary: LatestCheckpoint must skip it and return
// the older intact generation.
func TestCheckpointTruncatedFallsBack(t *testing.T) {
	dir := t.TempDir()
	older := &Checkpoint{Ordinal: 10, Records: sampleRecords(2), Snapshot: []byte("old")}
	if _, err := WriteCheckpoint(dir, older); err != nil {
		t.Fatal(err)
	}
	newer := &Checkpoint{Ordinal: 20, Records: sampleRecords(4), Snapshot: []byte("new")}
	if _, err := WriteCheckpoint(dir, newer); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf(ckptPattern, uint64(20)))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, headerSize, len(full) / 2, len(full) - 1} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LatestCheckpoint(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil || got.Ordinal != 10 {
			t.Fatalf("cut %d: fell back to %+v, want ordinal 10", cut, got)
		}
	}
	// Restore the intact newer checkpoint: it wins again.
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LatestCheckpoint(dir)
	if err != nil || got == nil || got.Ordinal != 20 {
		t.Fatalf("restored checkpoint not preferred: %+v, %v", got, err)
	}
}

func TestPruneCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for _, ord := range []uint64{5, 10, 15, 20} {
		if _, err := WriteCheckpoint(dir, &Checkpoint{Ordinal: ord, Snapshot: []byte("s")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := PruneCheckpoints(dir, 2); err != nil {
		t.Fatal(err)
	}
	names, err := checkpointFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("kept %d checkpoints %v, want 2", len(names), names)
	}
	got, err := LatestCheckpoint(dir)
	if err != nil || got == nil || got.Ordinal != 20 {
		t.Fatalf("latest after prune = %+v, %v, want ordinal 20", got, err)
	}
}
