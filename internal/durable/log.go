package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// segPattern names segment files by a monotone sequence number; recovery
// orders segments by it. The first ordinal inside a segment is always >=
// the last ordinal of its predecessor, so ordering by sequence is
// ordering by ordinal.
const segPattern = "wal-%08d.seg"

// DefaultSegmentBytes is the roll threshold: an append that would push the
// current segment past it starts a new segment first.
const DefaultSegmentBytes = 64 << 20

// ErrLogBroken marks a log whose append path failed in a way that could
// not be rolled back (a partial frame may be on disk mid-file). The log
// refuses further appends; a restart replays and truncates cleanly.
var ErrLogBroken = errors.New("durable: log broken, restart required")

// closedSeg describes one closed (no longer appended) segment.
type closedSeg struct {
	name string
	max  uint64 // highest record ordinal inside
	size int64
}

// Log is the append-only segment log. It is not safe for concurrent use;
// the service's single-writer ingest lock serializes access.
type Log struct {
	dir          string
	f            *os.File
	seq          uint64 // sequence of the open segment
	size         int64  // bytes in the open segment
	max          uint64 // highest ordinal appended to the open segment
	closed       []closedSeg
	SegmentBytes int64
	broken       error
}

// OpenLog opens (creating if needed) the segment log in dir and replays
// every intact record in segment order. A torn tail in the last segment
// is truncated away; torn or corrupt records in any earlier segment are a
// hard error (append-only writing cannot produce them). The returned
// records alias nothing on disk.
func OpenLog(dir string) (*Log, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var segs []string
	for _, e := range entries {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), segPattern, &seq); n == 1 {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)

	l := &Log{dir: dir, SegmentBytes: DefaultSegmentBytes}
	var all []Record
	for i, name := range segs {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		recs, clean, derr := DecodeRecords(data)
		if derr != nil {
			if i != len(segs)-1 {
				return nil, nil, fmt.Errorf("durable: segment %s corrupt mid-log: %w", name, derr)
			}
			// Crash mid-append: drop the torn tail, keep the clean prefix.
			if err := os.Truncate(path, int64(clean)); err != nil {
				return nil, nil, fmt.Errorf("durable: truncating torn tail of %s: %w", name, err)
			}
		}
		var max uint64
		for _, r := range recs {
			if r.Ordinal > max {
				max = r.Ordinal
			}
		}
		all = append(all, recs...)
		if i == len(segs)-1 {
			fmt.Sscanf(name, segPattern, &l.seq)
			l.size = int64(clean)
			l.max = max
		} else {
			l.closed = append(l.closed, closedSeg{name: name, max: max, size: int64(clean)})
		}
	}
	if len(segs) == 0 {
		l.seq = 1
	}
	if err := l.openSegment(); err != nil {
		return nil, nil, err
	}
	return l, all, nil
}

// openSegment opens the current segment for appending, creating it (and
// syncing the directory entry) when new.
func (l *Log) openSegment() error {
	path := filepath.Join(l.dir, fmt.Sprintf(segPattern, l.seq))
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	if os.IsNotExist(statErr) {
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	return nil
}

// roll closes the current segment and starts the next one.
func (l *Log) roll() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.closed = append(l.closed, closedSeg{
		name: fmt.Sprintf(segPattern, l.seq),
		max:  l.max,
		size: l.size,
	})
	l.seq++
	l.size = 0
	l.max = 0
	return l.openSegment()
}

// Append frames, writes, and fsyncs one record. On a short write it rolls
// the file back to the record boundary; if even that fails the log is
// marked broken and every further append returns ErrLogBroken.
func (l *Log) Append(r Record) error {
	if l.broken != nil {
		return l.broken
	}
	if l.size > 0 && l.size+recordSize(r) > l.SegmentBytes {
		if err := l.roll(); err != nil {
			return err
		}
	}
	if err := AppendRecord(l.f, r); err != nil {
		// A partial frame may be on disk; cut back to the boundary so the
		// live file stays clean for future appends.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.broken = fmt.Errorf("%w (append: %v, rollback: %v)", ErrLogBroken, err, terr)
			return l.broken
		}
		return err
	}
	if err := l.f.Sync(); err != nil {
		// The write may or may not have reached disk; a restart replays
		// whatever prefix is intact. Refuse to continue on an unsyncable
		// log rather than acknowledge unsynced batches.
		l.broken = fmt.Errorf("%w (sync: %v)", ErrLogBroken, err)
		return l.broken
	}
	l.size += recordSize(r)
	if r.Ordinal > l.max {
		l.max = r.Ordinal
	}
	return nil
}

// RemoveThrough rolls the log and deletes every closed segment whose
// records all have ordinal <= through — the compaction step after a
// checkpoint has made those records redundant.
func (l *Log) RemoveThrough(through uint64) error {
	if l.broken != nil {
		return l.broken
	}
	if l.size > 0 {
		if err := l.roll(); err != nil {
			return err
		}
	}
	keep := l.closed[:0]
	for _, s := range l.closed {
		if s.max <= through && s.size > 0 {
			if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
				return err
			}
			continue
		}
		keep = append(keep, s)
	}
	l.closed = keep
	return syncDir(l.dir)
}

// Segments returns the number of on-disk segments.
func (l *Log) Segments() int { return len(l.closed) + 1 }

// Bytes returns the total framed bytes across segments.
func (l *Log) Bytes() int64 {
	total := l.size
	for _, s := range l.closed {
		total += s.size
	}
	return total
}

// Close syncs and closes the open segment. Further appends fail.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	l.broken = fmt.Errorf("%w (closed)", ErrLogBroken)
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
