package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzSegmentDecode when WRITE_CORPUS is set:
//
//	WRITE_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/durable
//
// The committed entries complement the in-code f.Add seeds with
// CRC-valid multi-record streams and surgically corrupted variants, so a
// plain `go test` replays them even without -fuzz.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_CORPUS") == "" {
		t.Skip("set WRITE_CORPUS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	for _, r := range []Record{
		{Kind: KindBatch, Ordinal: 1, Payload: []byte(`[{"class":"Person","atomic":{"name":["Alice Smith"],"email":["asmith@cs.example.edu"]}}]`)},
		{Kind: KindPoison, Ordinal: 2},
		{Kind: KindBatch, Ordinal: 2, Payload: bytes.Repeat([]byte{0xa5}, 300)},
		{Kind: KindCold, Ordinal: 2},
		{Kind: KindBatch, Ordinal: 3, Payload: nil},
	} {
		if err := AppendRecord(&stream, r); err != nil {
			t.Fatal(err)
		}
	}
	full := stream.Bytes()

	flipCRC := append([]byte(nil), full...)
	flipCRC[13] ^= 0xff // first record's CRC byte
	flipKind := append([]byte(nil), full...)
	flipKind[0] = 0x7e // implausible kind, CRC now stale
	huge := []byte{KindBatch, 1, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x3f, 1, 2, 3, 4}

	corpus := map[string][]byte{
		"valid-stream":     full,
		"torn-mid-header":  full[:len(full)-int(recordSize(Record{Kind: KindBatch, Ordinal: 3}))+headerSize/2],
		"torn-mid-payload": full[:headerSize+10],
		"crc-flip":         flipCRC,
		"kind-flip":        flipKind,
		"huge-length":      huge,
		"empty-payload":    full[len(full)-int(recordSize(Record{Kind: KindBatch, Ordinal: 3})):],
	}
	for name, data := range corpus {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", name, len(data))
	}
}
