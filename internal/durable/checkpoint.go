package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ckptPattern names checkpoint files by the batch ordinal they cover.
const ckptPattern = "ckpt-%016d.ck"

// Checkpoint is one recovery point: the full record history through
// Ordinal (batches plus lifecycle markers — the compacted equivalent of
// the log segments it supersedes) and an opaque serialized snapshot of
// the state published at Ordinal.
type Checkpoint struct {
	Ordinal  uint64
	Records  []Record
	Snapshot []byte
}

// WriteCheckpoint writes a checkpoint atomically: records are framed into
// a temp file (meta header, history, snapshot, footer), fsynced, renamed
// into place, and the directory entry is fsynced. A crash at any point
// leaves either no checkpoint or a complete one; a truncated file fails
// validation and recovery falls back to the previous checkpoint. It
// returns the file size.
func WriteCheckpoint(dir string, c *Checkpoint) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp := filepath.Join(dir, "ckpt.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var meta [8]byte
	binary.LittleEndian.PutUint64(meta[:], uint64(len(c.Records)))
	werr := AppendRecord(w, Record{Kind: kindCkptMeta, Ordinal: c.Ordinal, Payload: meta[:]})
	for _, r := range c.Records {
		if werr != nil {
			break
		}
		werr = AppendRecord(w, r)
	}
	if werr == nil {
		werr = AppendRecord(w, Record{Kind: kindCkptSnapshot, Ordinal: c.Ordinal, Payload: c.Snapshot})
	}
	if werr == nil {
		werr = AppendRecord(w, Record{Kind: kindCkptFooter, Ordinal: c.Ordinal, Payload: meta[:]})
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return 0, werr
	}
	final := filepath.Join(dir, fmt.Sprintf(ckptPattern, c.Ordinal))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	st, err := os.Stat(final)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ReadCheckpoint decodes and validates one checkpoint file: every record
// checksum must hold, the structure must be meta/history/snapshot/footer,
// and the footer must agree with the meta header (a truncated file is
// missing it).
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	recs, _, err := DecodeRecords(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", filepath.Base(path), err)
	}
	if len(recs) < 3 || recs[0].Kind != kindCkptMeta || len(recs[0].Payload) != 8 {
		return nil, fmt.Errorf("checkpoint %s: missing meta header", filepath.Base(path))
	}
	n := binary.LittleEndian.Uint64(recs[0].Payload)
	if uint64(len(recs)) != n+3 {
		return nil, fmt.Errorf("checkpoint %s: %d records, header promises %d", filepath.Base(path), len(recs), n+3)
	}
	snap, footer := recs[len(recs)-2], recs[len(recs)-1]
	if snap.Kind != kindCkptSnapshot || footer.Kind != kindCkptFooter ||
		footer.Ordinal != recs[0].Ordinal || string(footer.Payload) != string(recs[0].Payload) {
		return nil, fmt.Errorf("checkpoint %s: malformed trailer", filepath.Base(path))
	}
	return &Checkpoint{
		Ordinal:  recs[0].Ordinal,
		Records:  recs[1 : len(recs)-2],
		Snapshot: snap.Payload,
	}, nil
}

// checkpointFiles lists checkpoint file names in dir, newest ordinal
// first.
func checkpointFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		var ord uint64
		if n, _ := fmt.Sscanf(e.Name(), ckptPattern, &ord); n == 1 {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// LatestCheckpoint returns the newest checkpoint in dir that validates,
// skipping corrupt or truncated ones, or nil when none does.
func LatestCheckpoint(dir string) (*Checkpoint, error) {
	names, err := checkpointFiles(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		c, err := ReadCheckpoint(filepath.Join(dir, name))
		if err == nil {
			return c, nil
		}
	}
	return nil, nil
}

// PruneCheckpoints removes all but the newest keep checkpoint files. The
// service keeps two generations so a corrupt newest checkpoint can fall
// back to its predecessor (whose covering segments are retained: the log
// is only compacted through the previous generation's ordinal).
func PruneCheckpoints(dir string, keep int) error {
	names, err := checkpointFiles(dir)
	if err != nil {
		return err
	}
	for i, name := range names {
		if i < keep {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return syncDir(dir)
}
