package durable

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSegmentDecode throws arbitrary bytes at the record decoder and
// checks its structural invariants: the clean offset never exceeds the
// input, a clean decode consumes everything, re-encoding the decoded
// records reproduces the clean prefix byte for byte, and decoding is
// idempotent over that prefix. Any failure mode other than a clean decode
// must be reported as ErrTorn — recovery's truncate-the-tail logic relies
// on that.
func FuzzSegmentDecode(f *testing.F) {
	var seed bytes.Buffer
	AppendRecord(&seed, Record{Kind: KindBatch, Ordinal: 1, Payload: []byte(`[{"class":"Person"}]`)})
	AppendRecord(&seed, Record{Kind: KindPoison, Ordinal: 1})
	AppendRecord(&seed, Record{Kind: KindBatch, Ordinal: 2, Payload: []byte("second")})
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{KindBatch, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // implausible length
	f.Add(bytes.Repeat([]byte{0}, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, err := DecodeRecords(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean offset %d outside [0, %d]", clean, len(data))
		}
		if err == nil && clean != len(data) {
			t.Fatalf("clean decode consumed %d of %d bytes", clean, len(data))
		}
		if err != nil && !errors.Is(err, ErrTorn) {
			t.Fatalf("decode failure is not ErrTorn: %v", err)
		}
		var enc bytes.Buffer
		for _, r := range recs {
			if err := AppendRecord(&enc, r); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if !bytes.Equal(enc.Bytes(), data[:clean]) {
			t.Fatalf("re-encoded %d records != clean prefix (%d vs %d bytes)",
				len(recs), enc.Len(), clean)
		}
		again, clean2, err2 := DecodeRecords(data[:clean])
		if err2 != nil || clean2 != clean || len(again) != len(recs) {
			t.Fatalf("decode not idempotent over clean prefix: %d/%d records, err %v",
				len(again), len(recs), err2)
		}
	})
}
