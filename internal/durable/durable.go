// Package durable is the crash-durability layer of the reconciliation
// service: an append-only, CRC-framed segment log holding one record per
// validated ingest batch, plus atomic snapshot checkpoints.
//
// The engine above this package is deterministic end to end, which makes
// a replay-based durability story essentially free: a batch that reached
// the log is recovered by re-running it through the exact ingest path
// that would have applied it live, and the recovered state is
// bit-identical to an uninterrupted run because replay preserves the
// original batch boundaries (including the poison/reset lifecycle, which
// is recorded as marker records).
//
// The package is storage only: records carry opaque payloads and the
// record kinds defined here; encoding batches and snapshots is the
// caller's business (internal/serve and internal/recon).
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record kinds. Kinds >= 10 are reserved for checkpoint file structure.
const (
	// KindBatch is one validated ingest batch. Ordinal is the 1-based
	// batch ordinal; the payload is the caller-encoded batch.
	KindBatch byte = 1
	// KindPoison marks that the commit of the batch with the same ordinal
	// was cancelled after its references reached the store: the live
	// session was poisoned, and replay must skip that batch's commit and
	// poison the session at the same point.
	KindPoison byte = 2
	// KindCold marks a restart that recovered the published view from a
	// checkpoint without rebuilding the session (the fast path): the view
	// through Ordinal is intact, but the session's incremental state was
	// dropped, so the next commit after this marker rebuilt from scratch.
	// Replay must poison the session at the same point to evolve
	// identically.
	KindCold byte = 3

	kindCkptMeta     byte = 10
	kindCkptSnapshot byte = 11
	kindCkptFooter   byte = 12
)

// Record is one framed log entry.
type Record struct {
	Kind    byte
	Ordinal uint64
	Payload []byte
}

// IsMarker reports whether the record is a lifecycle marker rather than a
// batch.
func (r Record) IsMarker() bool { return r.Kind == KindPoison || r.Kind == KindCold }

// Frame layout: kind(1) | ordinal(8, LE) | payloadLen(4, LE) | crc(4, LE)
// | payload. The CRC (Castagnoli) covers kind, ordinal, length, and
// payload, so a corrupted length field fails the checksum like any other
// flip.
const headerSize = 1 + 8 + 4 + 4

// MaxPayload bounds a single record payload (guards replay against a
// corrupted length field allocating unbounded memory before the CRC check
// can reject it).
const MaxPayload = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn marks an incomplete or checksum-corrupt record at the end of a
// byte stream — the signature of a crash mid-append. Recovery truncates
// the torn tail instead of failing.
var ErrTorn = errors.New("durable: torn record")

// AppendRecord frames and writes one record. It does not sync.
func AppendRecord(w io.Writer, r Record) error {
	if len(r.Payload) > MaxPayload {
		return fmt.Errorf("durable: payload %d exceeds limit %d", len(r.Payload), MaxPayload)
	}
	var hdr [headerSize]byte
	hdr[0] = r.Kind
	binary.LittleEndian.PutUint64(hdr[1:9], r.Ordinal)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(r.Payload)))
	crc := crc32.Update(0, castagnoli, hdr[:13])
	crc = crc32.Update(crc, castagnoli, r.Payload)
	binary.LittleEndian.PutUint32(hdr[13:17], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(r.Payload)
	return err
}

// recordSize returns the framed size of a record.
func recordSize(r Record) int64 { return int64(headerSize + len(r.Payload)) }

// DecodeRecords decodes a byte stream of framed records. It returns the
// fully decoded records and the byte offset of the clean prefix. When the
// stream ends mid-record or the trailing record fails its checksum, err
// wraps ErrTorn and the returned offset points at the start of the torn
// record — everything before it is intact.
func DecodeRecords(data []byte) (recs []Record, clean int, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < headerSize {
			return recs, off, fmt.Errorf("%w: %d header bytes at offset %d", ErrTorn, len(rest), off)
		}
		n := binary.LittleEndian.Uint32(rest[9:13])
		if n > MaxPayload {
			return recs, off, fmt.Errorf("%w: implausible payload length %d at offset %d", ErrTorn, n, off)
		}
		if len(rest) < headerSize+int(n) {
			return recs, off, fmt.Errorf("%w: %d of %d payload bytes at offset %d", ErrTorn, len(rest)-headerSize, n, off)
		}
		payload := rest[headerSize : headerSize+int(n)]
		crc := crc32.Update(0, castagnoli, rest[:13])
		crc = crc32.Update(crc, castagnoli, payload)
		if got := binary.LittleEndian.Uint32(rest[13:17]); got != crc {
			return recs, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrTorn, off)
		}
		recs = append(recs, Record{
			Kind:    rest[0],
			Ordinal: binary.LittleEndian.Uint64(rest[1:9]),
			Payload: append([]byte(nil), payload...),
		})
		off += headerSize + int(n)
	}
	return recs, off, nil
}
