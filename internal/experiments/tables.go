package experiments

import (
	"io"

	"refrecon/internal/dataset"
	"refrecon/internal/metrics"
	"refrecon/internal/recon"
	"refrecon/internal/schema"
)

// Table1Row describes one dataset (paper Table 1).
type Table1Row struct {
	Dataset    string
	References int
	Entities   int
	Ratio      float64
}

// Table1 reproduces Table 1: reference and entity counts per dataset.
func (s *Suite) Table1() []Table1Row {
	var rows []Table1Row
	add := func(d *dataset.Dataset) {
		refs := d.Store.Len()
		ents := 0
		for _, class := range d.Store.Classes() {
			ents += d.EntityCount(class)
		}
		row := Table1Row{Dataset: d.Name, References: refs, Entities: ents}
		if ents > 0 {
			row.Ratio = float64(refs) / float64(ents)
		}
		rows = append(rows, row)
	}
	for _, name := range PIMNames() {
		add(s.PIM(name))
	}
	add(s.Cora())
	return rows
}

// FprintTable1 renders Table 1.
func FprintTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table 1: dataset properties\n")
	fprintf(w, "%-8s %12s %10s %14s\n", "Dataset", "#(Refs)", "#(Ents)", "#Ref/#Entity")
	for _, r := range rows {
		fprintf(w, "%-8s %12d %10d %14.1f\n", r.Dataset, r.References, r.Entities, r.Ratio)
	}
}

// ClassComparison is one row of Tables 2 and 7: both algorithms on one
// class.
type ClassComparison struct {
	Class    string
	IndepDec metrics.Report
	DepGraph metrics.Report
}

// Table2 reproduces Table 2: average precision/recall/F per class over the
// four PIM datasets, IndepDec vs DepGraph.
func (s *Suite) Table2() []ClassComparison {
	perClassInd := make(map[string][]metrics.Report)
	perClassDep := make(map[string][]metrics.Report)
	for _, name := range PIMNames() {
		d := s.PIM(name)
		ind := s.Run(d, IndepDec())
		dep := s.Run(d, DepGraph())
		for _, class := range Classes {
			perClassInd[class] = append(perClassInd[class], ind[class])
			perClassDep[class] = append(perClassDep[class], dep[class])
		}
	}
	var out []ClassComparison
	for _, class := range Classes {
		out = append(out, ClassComparison{
			Class:    class,
			IndepDec: metrics.Average(perClassInd[class]),
			DepGraph: metrics.Average(perClassDep[class]),
		})
	}
	return out
}

// FprintComparison renders Table 2/3/7-style rows.
func FprintComparison(w io.Writer, title string, rows []ClassComparison) {
	fprintf(w, "%s\n", title)
	fprintf(w, "%-10s | %-22s | %-22s\n", "Class", "IndepDec P/R (F)", "DepGraph P/R (F)")
	for _, r := range rows {
		fprintf(w, "%-10s | %.3f/%.3f (%.3f)    | %.3f/%.3f (%.3f)\n",
			r.Class,
			r.IndepDec.Precision, r.IndepDec.Recall, r.IndepDec.F1,
			r.DepGraph.Precision, r.DepGraph.Recall, r.DepGraph.F1)
	}
}

// Table3 reproduces Table 3: Person reconciliation on the full datasets
// and the PArticle/PEmail subsets, averaged over the PIM datasets.
func (s *Suite) Table3() []ClassComparison {
	subsetRows := []struct {
		label  string
		subset func(*dataset.Dataset) *dataset.Dataset
	}{
		{"Full", func(d *dataset.Dataset) *dataset.Dataset { return d }},
		{"PArticle", (*dataset.Dataset).PArticle},
		{"PEmail", (*dataset.Dataset).PEmail},
	}
	var out []ClassComparison
	for _, sr := range subsetRows {
		var inds, deps []metrics.Report
		for _, name := range PIMNames() {
			d := sr.subset(s.PIM(name))
			inds = append(inds, s.Run(d, IndepDec())[schema.ClassPerson])
			deps = append(deps, s.Run(d, DepGraph())[schema.ClassPerson])
		}
		out = append(out, ClassComparison{
			Class:    sr.label,
			IndepDec: metrics.Average(inds),
			DepGraph: metrics.Average(deps),
		})
	}
	return out
}

// Table4Row is one PIM dataset's Person comparison with partition counts.
type Table4Row struct {
	Dataset    string
	Persons    int // gold entities
	References int
	IndepDec   metrics.Report
	DepGraph   metrics.Report
}

// Table4 reproduces Table 4: per-dataset Person results.
func (s *Suite) Table4() []Table4Row {
	var out []Table4Row
	for _, name := range PIMNames() {
		d := s.PIM(name)
		ind := s.Run(d, IndepDec())[schema.ClassPerson]
		dep := s.Run(d, DepGraph())[schema.ClassPerson]
		out = append(out, Table4Row{
			Dataset:    name,
			Persons:    ind.Entities,
			References: ind.References,
			IndepDec:   ind,
			DepGraph:   dep,
		})
	}
	return out
}

// FprintTable4 renders Table 4.
func FprintTable4(w io.Writer, rows []Table4Row) {
	fprintf(w, "Table 4: Person reconciliation per PIM dataset\n")
	fprintf(w, "%-18s | %-30s | %-30s\n", "Dataset (#P/#Refs)", "IndepDec P/R (F) #Par", "DepGraph P/R (F) #Par")
	for _, r := range rows {
		fprintf(w, "%-2s (%5d/%6d)  | %.3f/%.3f (%.3f) %6d      | %.3f/%.3f (%.3f) %6d\n",
			r.Dataset, r.Persons, r.References,
			r.IndepDec.Precision, r.IndepDec.Recall, r.IndepDec.F1, r.IndepDec.Partitions,
			r.DepGraph.Precision, r.DepGraph.Recall, r.DepGraph.F1, r.DepGraph.Partitions)
	}
}

// Modes and evidence levels of the §5.3 ablation, in presentation order.
var (
	AblationModes = []recon.Mode{
		recon.ModeTraditional, recon.ModePropagation, recon.ModeMerge, recon.ModeFull,
	}
	AblationEvidence = []recon.EvidenceLevel{
		recon.EvidenceAttrWise, recon.EvidenceNameEmail, recon.EvidenceArticle, recon.EvidenceContact,
	}
)

// Table5 holds the ablation grid of Table 5 / Figure 6: the number of
// Person partitions produced on dataset A by each mode x evidence
// combination, plus the real entity count for computing reductions.
type Table5 struct {
	Dataset string
	// Partitions[mode][evidence] in AblationModes x AblationEvidence
	// order.
	Partitions [4][4]int
	Entities   int
	References int
}

// Table5Ablation reproduces Table 5 (and the Figure 6 series) on the given
// PIM dataset (the paper uses A).
func (s *Suite) Table5Ablation(name string) Table5 {
	d := s.PIM(name)
	out := Table5{Dataset: name}
	for i, mode := range AblationModes {
		for j, ev := range AblationEvidence {
			mode, ev := mode, ev
			rep := s.Run(d, DepGraphWith(func(c *recon.Config) {
				c.Mode = mode
				c.Evidence = ev
			}))[schema.ClassPerson]
			out.Partitions[i][j] = rep.Partitions
			out.Entities = rep.Entities
			out.References = rep.References
		}
	}
	return out
}

// Reduction returns the Table 5 "Reduction(%)" for a mode row: how much of
// the Attr-wise partition surplus the full evidence set eliminated.
func (t Table5) Reduction(modeIdx int) float64 {
	return metrics.ReductionPercent(t.Partitions[modeIdx][0], t.Partitions[modeIdx][3], t.Entities)
}

// ModeReduction returns the last-row reduction for an evidence column:
// improvement from Traditional to Full mode.
func (t Table5) ModeReduction(evidenceIdx int) float64 {
	return metrics.ReductionPercent(t.Partitions[0][evidenceIdx], t.Partitions[3][evidenceIdx], t.Entities)
}

// OverallReduction is the bottom-right cell: Traditional/Attr-wise
// (IndepDec) to Full/Contact (DepGraph).
func (t Table5) OverallReduction() float64 {
	return metrics.ReductionPercent(t.Partitions[0][0], t.Partitions[3][3], t.Entities)
}

// FprintTable5 renders the ablation grid.
func FprintTable5(w io.Writer, t Table5) {
	fprintf(w, "Table 5: Person partitions on dataset %s (%d references, %d entities)\n",
		t.Dataset, t.References, t.Entities)
	fprintf(w, "%-12s", "Mode")
	for _, ev := range AblationEvidence {
		fprintf(w, " %10s", ev)
	}
	fprintf(w, " %12s\n", "Reduction(%)")
	for i, mode := range AblationModes {
		fprintf(w, "%-12s", mode)
		for j := range AblationEvidence {
			fprintf(w, " %10d", t.Partitions[i][j])
		}
		fprintf(w, " %11.1f%%\n", t.Reduction(i))
	}
	fprintf(w, "%-12s", "Reduction(%)")
	for j := range AblationEvidence {
		fprintf(w, " %9.1f%%", t.ModeReduction(j))
	}
	fprintf(w, " %11.1f%%\n", t.OverallReduction())
}

// FprintFigure6 renders the Table 5 grid as the Figure 6 series: one line
// per mode, partition counts decreasing as evidence accumulates. The
// top-left point is IndepDec; the bottom-right is DepGraph.
func FprintFigure6(w io.Writer, t Table5) {
	fprintf(w, "Figure 6: Person partitions by evidence level (dataset %s, %d entities)\n", t.Dataset, t.Entities)
	fprintf(w, "evidence")
	for _, ev := range AblationEvidence {
		fprintf(w, ",%s", ev)
	}
	fprintf(w, "\n")
	for i, mode := range AblationModes {
		fprintf(w, "%s", mode)
		for j := range AblationEvidence {
			fprintf(w, ",%d", t.Partitions[i][j])
		}
		fprintf(w, "\n")
	}
}

// Table6Row compares constrained and unconstrained DepGraph (Table 6).
type Table6Row struct {
	Method                     string
	Precision, Recall          float64
	EntitiesWithFalsePositives int
	GraphNodes                 int
}

// Table6Constraints reproduces Table 6 on the given dataset (the paper
// uses A).
func (s *Suite) Table6Constraints(name string) []Table6Row {
	d := s.PIM(name)
	withC := DepGraph()
	withoutC := DepGraphWith(func(c *recon.Config) { c.Constraints = false })
	repC := s.Run(d, withC)[schema.ClassPerson]
	stC := s.RunStats(d, withC)
	repN := s.Run(d, withoutC)[schema.ClassPerson]
	stN := s.RunStats(d, withoutC)
	return []Table6Row{
		{"DepGraph", repC.Precision, repC.Recall, repC.EntitiesWithFalsePositives, stC.GraphNodes},
		{"Non-Constraint", repN.Precision, repN.Recall, repN.EntitiesWithFalsePositives, stN.GraphNodes},
	}
}

// FprintTable6 renders Table 6.
func FprintTable6(w io.Writer, rows []Table6Row) {
	fprintf(w, "Table 6: effect of constraints (Person)\n")
	fprintf(w, "%-16s %14s %22s %10s\n", "Method", "Prec/Recall", "#(Ent w/ false-pos)", "#(Nodes)")
	for _, r := range rows {
		fprintf(w, "%-16s %7.3f/%.4f %22d %10d\n", r.Method, r.Precision, r.Recall, r.EntitiesWithFalsePositives, r.GraphNodes)
	}
}

// Table7 reproduces Table 7: both algorithms per class on the Cora
// dataset.
func (s *Suite) Table7() []ClassComparison {
	return s.coraComparison(s.Cora())
}

// Table7FreeText is the extension variant of Table 7 on the free-text
// Cora corpus: the same citations, but extracted with the heuristic
// citation-string parser, so extraction noise is part of the problem.
func (s *Suite) Table7FreeText() []ClassComparison {
	return s.coraComparison(s.CoraFreeText())
}

func (s *Suite) coraComparison(d *dataset.Dataset) []ClassComparison {
	ind := s.Run(d, IndepDec())
	dep := s.Run(d, DepGraph())
	var out []ClassComparison
	for _, class := range Classes {
		out = append(out, ClassComparison{Class: class, IndepDec: ind[class], DepGraph: dep[class]})
	}
	return out
}
