package experiments

import (
	"io"
	"sort"
	"strings"

	"refrecon/internal/blocking"
	"refrecon/internal/dataset"
	"refrecon/internal/emailaddr"
	"refrecon/internal/names"
	"refrecon/internal/recon"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/tokenizer"
)

// BlockingRow reports one candidate-generation strategy's cost/coverage
// trade-off on Person references: how many candidate pairs it proposes and
// what fraction of the true (same-entity) pairs it covers. Pairs missed by
// blocking can never be reconciled, so coverage bounds achievable recall —
// this is the ablation behind the repository's choice of multi-key
// canopies (DESIGN.md).
type BlockingRow struct {
	Strategy  string
	Pairs     int
	TruePairs int
	Covered   int
	Coverage  float64
	// PairsPerRef is the candidate workload per reference.
	PairsPerRef float64
}

// BlockingAblation compares candidate-generation strategies on one PIM
// dataset's Person references:
//
//   - canopy: the reconciler's multi-key inverted index (surname, account,
//     cross name/email keys);
//   - sn-name: sorted neighborhood over the normalized name (merge/purge);
//   - sn-multi: multi-pass sorted neighborhood over name and email keys;
//   - exact-name: a naive exact-key blocker, as a floor.
func (s *Suite) BlockingAblation(name string, window int) []BlockingRow {
	d := s.PIM(name)
	ids := d.Store.ByClass(schema.ClassPerson)

	gold := make(map[[2]reference.ID]bool)
	byEntity := make(map[string][]reference.ID)
	for _, id := range ids {
		r := d.Store.Get(id)
		if r.Entity != "" {
			byEntity[r.Entity] = append(byEntity[r.Entity], id)
		}
	}
	for _, members := range byEntity {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if b < a {
					a, b = b, a
				}
				gold[[2]reference.ID{a, b}] = true
			}
		}
	}

	evaluate := func(strategy string, run func(fn func(a, b reference.ID))) BlockingRow {
		row := BlockingRow{Strategy: strategy, TruePairs: len(gold)}
		covered := make(map[[2]reference.ID]bool)
		run(func(a, b reference.ID) {
			row.Pairs++
			if b < a {
				a, b = b, a
			}
			if gold[[2]reference.ID{a, b}] {
				covered[[2]reference.ID{a, b}] = true
			}
		})
		row.Covered = len(covered)
		if row.TruePairs > 0 {
			row.Coverage = float64(row.Covered) / float64(row.TruePairs)
		}
		if len(ids) > 0 {
			row.PairsPerRef = float64(row.Pairs) / float64(len(ids))
		}
		return row
	}

	var rows []BlockingRow

	rows = append(rows, evaluate("canopy", func(fn func(a, b reference.ID)) {
		idx := blocking.New(512)
		for _, id := range ids {
			recon.BlockingKeys(d.Store.Get(id), func(k string) { idx.Add(k, id) })
		}
		idx.Pairs(fn)
	}))

	rows = append(rows, evaluate("sn-name", func(fn func(a, b reference.ID)) {
		records := nameRecords(d, ids, false)
		blocking.SortedNeighborhood(records, window, fn)
	}))

	rows = append(rows, evaluate("sn-multi", func(fn func(a, b reference.ID)) {
		records := nameRecords(d, ids, true)
		blocking.SortedNeighborhood(records, window, fn)
	}))

	rows = append(rows, evaluate("canopy-jac", func(fn func(a, b reference.ID)) {
		// Classic McCallum canopy clustering under cheap Jaccard over
		// name + email tokens (single-key-space, unlike our multi-key
		// inverted index).
		var items []blocking.CanopyItem
		for _, id := range ids {
			r := d.Store.Get(id)
			var toks []string
			for _, v := range r.Atomic(schema.AttrName) {
				toks = append(toks, tokenizer.Words(v)...)
			}
			for _, v := range r.Atomic(schema.AttrEmail) {
				if a, ok := emailaddr.Parse(v); ok {
					toks = append(toks, a.LocalTokens()...)
				}
			}
			items = append(items, blocking.CanopyItem{ID: id, Tokens: toks})
		}
		blocking.Canopies(items, 0.3, 0.8, fn)
	}))

	rows = append(rows, evaluate("exact-name", func(fn func(a, b reference.ID)) {
		idx := blocking.New(512)
		for _, id := range ids {
			for _, v := range d.Store.Get(id).Atomic(schema.AttrName) {
				n := names.Parse(v)
				idx.Add(n.String(), id)
			}
		}
		idx.Pairs(fn)
	}))

	return rows
}

// nameRecords builds sorted-neighborhood records: surname-first name keys,
// plus (for multi-pass) email-address keys.
func nameRecords(d *dataset.Dataset, ids []reference.ID, multi bool) []blocking.Record {
	var records []blocking.Record
	for _, id := range ids {
		r := d.Store.Get(id)
		for _, v := range r.Atomic(schema.AttrName) {
			n := names.Parse(v)
			key := strings.TrimSpace(n.Last + " " + n.First)
			if key == "" {
				continue
			}
			records = append(records, blocking.Record{Key: key, ID: id})
		}
		if multi {
			for _, v := range r.Atomic(schema.AttrEmail) {
				records = append(records, blocking.Record{Key: "@" + v, ID: id})
			}
		}
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].Key != records[j].Key {
			return records[i].Key < records[j].Key
		}
		return records[i].ID < records[j].ID
	})
	return records
}

// FprintBlockingAblation renders the ablation rows.
func FprintBlockingAblation(w io.Writer, dataset string, rows []BlockingRow) {
	fprintf(w, "Blocking ablation (dataset %s, Person references)\n", dataset)
	fprintf(w, "%-12s %12s %12s %10s %12s\n", "Strategy", "#Pairs", "Pairs/Ref", "Coverage", "Covered/True")
	for _, r := range rows {
		fprintf(w, "%-12s %12d %12.1f %9.1f%% %7d/%d\n",
			r.Strategy, r.Pairs, r.PairsPerRef, 100*r.Coverage, r.Covered, r.TruePairs)
	}
}
