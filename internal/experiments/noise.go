package experiments

import (
	"io"

	"refrecon/internal/datagen/corrupt"
	"refrecon/internal/dataset"
	"refrecon/internal/indepdec"
	"refrecon/internal/metrics"
	"refrecon/internal/recon"
	"refrecon/internal/schema"
)

// NoiseRow is one point of the noise-robustness sweep: Person F-measure of
// both algorithms on a dataset whose atomic values were corrupted at the
// given rate.
type NoiseRow struct {
	Rate      float64
	IndepDecF float64
	DepGraphF float64
}

// NoiseSweep is an extension experiment beyond the paper's evaluation: it
// corrupts a PIM dataset's attribute values at increasing rates and
// reports how each algorithm's Person F-measure degrades. The hypothesis
// — implied by the paper's argument that association evidence compensates
// for weak attribute evidence — is that DepGraph degrades more gracefully:
// typos hurt string comparators, but co-author and contact structure
// survives them.
func (s *Suite) NoiseSweep(name string, rates []float64) []NoiseRow {
	if len(rates) == 0 {
		rates = []float64{0, 0.1, 0.2, 0.4}
	}
	d := s.PIM(name)
	var out []NoiseRow
	for _, rate := range rates {
		noisy := corrupt.Store(d.Store, 0x5EED, rate, nil)
		nd := &dataset.Dataset{Name: d.Name, Store: noisy}

		ind, err := indepdec.New(schema.PIM(), indepdec.DefaultConfig()).Reconcile(nd.Store)
		if err != nil {
			panic(err)
		}
		dep, err := recon.New(schema.PIM(), recon.DefaultConfig()).Reconcile(nd.Store)
		if err != nil {
			panic(err)
		}
		row := NoiseRow{
			Rate:      rate,
			IndepDecF: metrics.Evaluate(noisy, schema.ClassPerson, ind.Partitions[schema.ClassPerson]).F1,
			DepGraphF: metrics.Evaluate(noisy, schema.ClassPerson, dep.Partitions[schema.ClassPerson]).F1,
		}
		out = append(out, row)
	}
	return out
}

// FprintNoiseSweep renders the sweep.
func FprintNoiseSweep(w io.Writer, dataset string, rows []NoiseRow) {
	fprintf(w, "Noise robustness (dataset %s, Person F-measure)\n", dataset)
	fprintf(w, "%-12s %12s %12s %12s\n", "CorruptRate", "IndepDec F", "DepGraph F", "Gap")
	for _, r := range rows {
		fprintf(w, "%11.0f%% %12.3f %12.3f %+12.3f\n", 100*r.Rate, r.IndepDecF, r.DepGraphF, r.DepGraphF-r.IndepDecF)
	}
}
