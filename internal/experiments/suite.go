// Package experiments reproduces every table and figure of the paper's
// evaluation (§5): dataset statistics (Table 1), per-class quality
// (Table 2), person-subset quality (Table 3), per-dataset person quality
// (Table 4), the evidence-by-mode ablation grid (Table 5 and Figure 6),
// constraint effects (Table 6), and the Cora benchmark (Table 7).
//
// A Suite generates the synthetic datasets once (at a configurable scale)
// and caches reconciliation runs shared between tables.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"refrecon/internal/datagen/cora"
	"refrecon/internal/datagen/pim"
	"refrecon/internal/dataset"
	"refrecon/internal/indepdec"
	"refrecon/internal/metrics"
	"refrecon/internal/recon"
	"refrecon/internal/schema"
)

// Classes evaluated, in the paper's presentation order.
var Classes = []string{schema.ClassPerson, schema.ClassArticle, schema.ClassVenue}

// Suite generates and caches datasets and reconciliation runs.
type Suite struct {
	// Scale multiplies the paper-scale dataset sizes (1.0 reproduces
	// Table 1's reference counts; the test suite uses ~0.1).
	Scale float64
	// Workers overrides recon.Config.Workers for every depgraph run whose
	// Algo left it at the default (0 = NumCPU). Results are identical at
	// any worker count; this only steers wall-clock measurements.
	Workers int

	mu       sync.Mutex
	pimSets  map[string]*dataset.Dataset
	coraSet  *dataset.Dataset
	coraFree *dataset.Dataset
	runs     map[string]map[string]metrics.Report
	stats    map[string]recon.Stats
}

// NewSuite returns a suite at the given scale (<= 0 means 1.0).
func NewSuite(scale float64) *Suite {
	if scale <= 0 {
		scale = 1
	}
	return &Suite{
		Scale:   scale,
		pimSets: make(map[string]*dataset.Dataset),
		runs:    make(map[string]map[string]metrics.Report),
		stats:   make(map[string]recon.Stats),
	}
}

// PIMNames lists the four personal datasets.
func PIMNames() []string { return []string{"A", "B", "C", "D"} }

// PIM returns (generating on first use) one of the four PIM datasets.
func (s *Suite) PIM(name string) *dataset.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.pimSets[name]; ok {
		return d
	}
	var p pim.Profile
	switch name {
	case "A":
		p = pim.DatasetA(s.Scale)
	case "B":
		p = pim.DatasetB(s.Scale)
	case "C":
		p = pim.DatasetC(s.Scale)
	case "D":
		p = pim.DatasetD(s.Scale)
	default:
		panic(fmt.Sprintf("experiments: unknown PIM dataset %q", name))
	}
	g, err := pim.Generate(p)
	if err != nil {
		panic(fmt.Sprintf("experiments: generate PIM %s: %v", name, err))
	}
	d := &dataset.Dataset{Name: name, Store: g.Store}
	s.pimSets[name] = d
	return d
}

// Cora returns (generating on first use) the Cora-like citation dataset.
func (s *Suite) Cora() *dataset.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coraSet == nil {
		g, err := cora.Generate(cora.Default(s.Scale))
		if err != nil {
			panic(fmt.Sprintf("experiments: generate cora: %v", err))
		}
		s.coraSet = &dataset.Dataset{Name: "Cora", Store: g.Store}
	}
	return s.coraSet
}

// CoraFreeText returns the Cora corpus generated as free-text citation
// strings and extracted with the heuristic citation parser — the form the
// real corpus takes, with extraction noise included.
func (s *Suite) CoraFreeText() *dataset.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coraFree == nil {
		p := cora.Default(s.Scale)
		p.FreeText = true
		g, err := cora.Generate(p)
		if err != nil {
			panic(fmt.Sprintf("experiments: generate cora free-text: %v", err))
		}
		s.coraFree = &dataset.Dataset{Name: "CoraFT", Store: g.Store}
	}
	return s.coraFree
}

// Algo identifies one reconciliation configuration for caching.
type Algo struct {
	// Name is "indepdec" or "depgraph".
	Name string
	// Config applies to depgraph runs only.
	Config recon.Config
}

// DepGraph returns the full published configuration.
func DepGraph() Algo { return Algo{Name: "depgraph", Config: recon.DefaultConfig()} }

// DepGraphWith customizes the configuration.
func DepGraphWith(f func(*recon.Config)) Algo {
	cfg := recon.DefaultConfig()
	f(&cfg)
	return Algo{Name: "depgraph", Config: cfg}
}

// IndepDec returns the baseline configuration.
func IndepDec() Algo { return Algo{Name: "indepdec"} }

func (a Algo) key(ds string) string {
	if a.Name == "indepdec" {
		return ds + "/indepdec"
	}
	return fmt.Sprintf("%s/depgraph/m=%s/e=%s/c=%v", ds, a.Config.Mode, a.Config.Evidence, a.Config.Constraints)
}

// Run reconciles a dataset under an algorithm and returns per-class
// reports, cached per (dataset, configuration).
func (s *Suite) Run(d *dataset.Dataset, a Algo) map[string]metrics.Report {
	key := a.key(d.Name)
	s.mu.Lock()
	if r, ok := s.runs[key]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()

	reports := make(map[string]metrics.Report)
	var st recon.Stats
	switch a.Name {
	case "indepdec":
		res, err := indepdec.New(schema.PIM(), indepdec.DefaultConfig()).Reconcile(d.Store)
		if err != nil {
			panic(fmt.Sprintf("experiments: indepdec on %s: %v", d.Name, err))
		}
		for _, class := range Classes {
			reports[class] = metrics.Evaluate(d.Store, class, res.Partitions[class])
		}
	case "depgraph":
		if a.Config.Workers == 0 {
			a.Config.Workers = s.Workers
		}
		res, err := recon.New(schema.PIM(), a.Config).Reconcile(d.Store)
		if err != nil {
			panic(fmt.Sprintf("experiments: depgraph on %s: %v", d.Name, err))
		}
		st = res.Stats
		for _, class := range Classes {
			reports[class] = metrics.Evaluate(d.Store, class, res.Partitions[class])
		}
	default:
		panic("experiments: unknown algorithm " + a.Name)
	}

	s.mu.Lock()
	s.runs[key] = reports
	s.stats[key] = st
	s.mu.Unlock()
	return reports
}

// ClearRuns drops cached reconciliation results (datasets are kept), so
// benchmarks can re-measure the reconciliation work itself.
func (s *Suite) ClearRuns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs = make(map[string]map[string]metrics.Report)
	s.stats = make(map[string]recon.Stats)
}

// RunStats returns the recon.Stats of a cached depgraph run (zero value
// for indepdec or uncached runs).
func (s *Suite) RunStats(d *dataset.Dataset, a Algo) recon.Stats {
	s.Run(d, a)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats[a.key(d.Name)]
}

// fprintf writes formatted output, ignoring errors (experiment printing is
// best-effort console output).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
