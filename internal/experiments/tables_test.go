package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"refrecon/internal/schema"
)

// The suite is shared across tests: dataset generation and reconciliation
// runs are cached inside it.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func testSuite() *Suite {
	suiteOnce.Do(func() { suite = NewSuite(0.08) })
	return suite
}

func TestTable1Shape(t *testing.T) {
	rows := testSuite().Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (A-D + Cora)", len(rows))
	}
	for _, r := range rows {
		if r.References == 0 || r.Entities == 0 {
			t.Errorf("%s: empty dataset", r.Dataset)
		}
		if r.Ratio < 1.5 {
			t.Errorf("%s: ref/entity ratio %.1f too low — reconciliation would be trivial", r.Dataset, r.Ratio)
		}
	}
	var buf bytes.Buffer
	FprintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Cora") {
		t.Error("rendered table missing Cora row")
	}
}

// TestTable2Shape checks the paper's headline claim: DepGraph equals or
// outperforms IndepDec in every class, with the venue and person recall
// gains the largest.
func TestTable2Shape(t *testing.T) {
	rows := testSuite().Table2()
	byClass := make(map[string]ClassComparison)
	for _, r := range rows {
		byClass[r.Class] = r
	}
	person := byClass[schema.ClassPerson]
	if person.DepGraph.F1+0.02 < person.IndepDec.F1 {
		t.Errorf("person: DepGraph F %.3f below IndepDec %.3f", person.DepGraph.F1, person.IndepDec.F1)
	}
	if person.DepGraph.Recall <= person.IndepDec.Recall {
		t.Errorf("person: DepGraph recall %.3f should beat IndepDec %.3f", person.DepGraph.Recall, person.IndepDec.Recall)
	}
	venue := byClass[schema.ClassVenue]
	if venue.DepGraph.Recall <= venue.IndepDec.Recall {
		t.Errorf("venue: DepGraph recall %.3f should beat IndepDec %.3f", venue.DepGraph.Recall, venue.IndepDec.Recall)
	}
	if venue.DepGraph.F1 <= venue.IndepDec.F1 {
		t.Errorf("venue: DepGraph F %.3f should beat IndepDec %.3f", venue.DepGraph.F1, venue.IndepDec.F1)
	}
	article := byClass[schema.ClassArticle]
	if diff := article.DepGraph.F1 - article.IndepDec.F1; diff < -0.03 {
		t.Errorf("article: DepGraph F dropped by %.3f (bibtex is curated; should be a tie)", -diff)
	}
}

// TestTable3Shape checks that the recall improvement is most pronounced on
// the PArticle subset (name-only references need association evidence) and
// present on the full datasets.
func TestTable3Shape(t *testing.T) {
	rows := testSuite().Table3()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	gains := make(map[string]float64)
	for _, r := range rows {
		gains[r.Class] = r.DepGraph.Recall - r.IndepDec.Recall
	}
	if gains["PArticle"] <= 0 {
		t.Errorf("PArticle recall gain %.3f should be positive", gains["PArticle"])
	}
	if gains["Full"] <= 0 {
		t.Errorf("Full recall gain %.3f should be positive", gains["Full"])
	}
	if gains["PArticle"] < gains["PEmail"] {
		t.Errorf("PArticle gain %.3f should exceed PEmail gain %.3f (the paper's 30.7%% vs 7.6%%)",
			gains["PArticle"], gains["PEmail"])
	}
}

// TestTable4Shape checks per-dataset behaviour: DepGraph produces no more
// partitions than IndepDec everywhere, dataset A improves most, and the
// dataset-D owner split keeps DepGraph's recall there below its own recall
// on A (the §5.3 name-change discussion).
func TestTable4Shape(t *testing.T) {
	rows := testSuite().Table4()
	var recallByDS = map[string][2]float64{}
	for _, r := range rows {
		if r.DepGraph.Partitions > r.IndepDec.Partitions {
			t.Errorf("dataset %s: DepGraph %d partitions > IndepDec %d",
				r.Dataset, r.DepGraph.Partitions, r.IndepDec.Partitions)
		}
		recallByDS[r.Dataset] = [2]float64{r.IndepDec.Recall, r.DepGraph.Recall}
	}
	if recallByDS["D"][1] >= recallByDS["A"][1] {
		t.Errorf("dataset D recall %.3f should lag dataset A %.3f (owner split)",
			recallByDS["D"][1], recallByDS["A"][1])
	}
	var buf bytes.Buffer
	FprintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "IndepDec") {
		t.Error("rendered table malformed")
	}
}

// TestTable5Shape checks the ablation grid: partition counts decrease along
// both axes, FULL/Contact is the global best, and the overall reduction is
// substantial (the paper reports 91.3% on dataset A).
func TestTable5Shape(t *testing.T) {
	grid := testSuite().Table5Ablation("A")
	trad, full := 0, 3
	attr, contact := 0, 3
	if got := grid.Partitions[full][contact]; got > grid.Partitions[trad][attr] {
		t.Errorf("full/contact %d should be <= traditional/attr-wise %d", got, grid.Partitions[trad][attr])
	}
	// Evidence accumulation must not increase partition counts (within a
	// small tolerance for propagation ordering noise).
	for i := range AblationModes {
		for j := 1; j < len(AblationEvidence); j++ {
			if grid.Partitions[i][j] > grid.Partitions[i][j-1]+2 {
				t.Errorf("mode %s: evidence %s increased partitions %d -> %d",
					AblationModes[i], AblationEvidence[j], grid.Partitions[i][j-1], grid.Partitions[i][j])
			}
		}
	}
	// Full mode must beat Traditional at the Contact column.
	if grid.Partitions[full][contact] > grid.Partitions[trad][contact] {
		t.Errorf("full/contact %d should be <= traditional/contact %d",
			grid.Partitions[full][contact], grid.Partitions[trad][contact])
	}
	if red := grid.OverallReduction(); red < 30 {
		t.Errorf("overall reduction %.1f%% too small", red)
	}
	var buf bytes.Buffer
	FprintTable5(&buf, grid)
	FprintFigure6(&buf, grid)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("figure rendering malformed")
	}
}

// TestTable6Shape checks the constraint effect: enforcing constraints
// raises precision (fewer entities involved in false positives) without a
// large recall cost, while adding nodes to the graph.
func TestTable6Shape(t *testing.T) {
	rows := testSuite().Table6Constraints("A")
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	withC, withoutC := rows[0], rows[1]
	if withC.Precision < withoutC.Precision {
		t.Errorf("constraints should not lower precision: %.3f vs %.3f", withC.Precision, withoutC.Precision)
	}
	if withC.EntitiesWithFalsePositives > withoutC.EntitiesWithFalsePositives {
		t.Errorf("constraints should not increase false-positive entities: %d vs %d",
			withC.EntitiesWithFalsePositives, withoutC.EntitiesWithFalsePositives)
	}
	if withC.GraphNodes < withoutC.GraphNodes {
		t.Errorf("constraints add nodes: %d vs %d", withC.GraphNodes, withoutC.GraphNodes)
	}
	if withC.Recall < withoutC.Recall-0.15 {
		t.Errorf("constraints cost too much recall: %.3f vs %.3f", withC.Recall, withoutC.Recall)
	}
	var buf bytes.Buffer
	FprintTable6(&buf, rows)
	if !strings.Contains(buf.String(), "Non-Constraint") {
		t.Error("rendered table malformed")
	}
}

// TestTable7Shape checks the Cora results: a large venue F improvement
// (with a precision cost), and article/person at least comparable.
func TestTable7Shape(t *testing.T) {
	rows := testSuite().Table7()
	byClass := make(map[string]ClassComparison)
	for _, r := range rows {
		byClass[r.Class] = r
	}
	venue := byClass[schema.ClassVenue]
	if venue.DepGraph.F1 <= venue.IndepDec.F1 {
		t.Errorf("Cora venue: DepGraph F %.3f should beat IndepDec %.3f", venue.DepGraph.F1, venue.IndepDec.F1)
	}
	if venue.DepGraph.Recall <= venue.IndepDec.Recall {
		t.Errorf("Cora venue: DepGraph recall %.3f should beat IndepDec %.3f", venue.DepGraph.Recall, venue.IndepDec.Recall)
	}
	article := byClass[schema.ClassArticle]
	if article.DepGraph.F1+0.03 < article.IndepDec.F1 {
		t.Errorf("Cora article: DepGraph F %.3f well below IndepDec %.3f", article.DepGraph.F1, article.IndepDec.F1)
	}
	person := byClass[schema.ClassPerson]
	if person.DepGraph.F1+0.03 < person.IndepDec.F1 {
		t.Errorf("Cora person: DepGraph F %.3f well below IndepDec %.3f", person.DepGraph.F1, person.IndepDec.F1)
	}
}

// TestBlockingAblationShape checks the candidate-generation ablation: the
// multi-key canopy must cover more true pairs than single-key sorted
// neighborhood or exact-name blocking — the justification for the
// reconciler's blocking design.
func TestBlockingAblationShape(t *testing.T) {
	rows := testSuite().BlockingAblation("A", 8)
	byName := make(map[string]BlockingRow)
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	canopy := byName["canopy"]
	if canopy.Coverage < 0.8 {
		t.Errorf("canopy coverage %.2f too low — recall is bounded by it", canopy.Coverage)
	}
	if canopy.Coverage < byName["sn-name"].Coverage {
		t.Errorf("canopy %.2f should cover at least as much as single-key SN %.2f",
			canopy.Coverage, byName["sn-name"].Coverage)
	}
	if canopy.Coverage < byName["exact-name"].Coverage {
		t.Errorf("canopy %.2f should cover at least exact-name %.2f",
			canopy.Coverage, byName["exact-name"].Coverage)
	}
	if byName["sn-multi"].Coverage < byName["sn-name"].Coverage {
		t.Errorf("multi-pass SN %.2f should cover at least single-pass %.2f",
			byName["sn-multi"].Coverage, byName["sn-name"].Coverage)
	}
	var buf bytes.Buffer
	FprintBlockingAblation(&buf, "A", rows)
	if !strings.Contains(buf.String(), "canopy") {
		t.Error("rendered ablation malformed")
	}
}

// TestNoiseSweepShape checks the robustness extension: quality decreases
// with noise for both algorithms, and DepGraph stays ahead at every rate.
func TestNoiseSweepShape(t *testing.T) {
	rows := testSuite().NoiseSweep("A", []float64{0, 0.2, 0.4})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.DepGraphF+0.02 < r.IndepDecF {
			t.Errorf("rate %.1f: DepGraph %.3f fell below IndepDec %.3f", r.Rate, r.DepGraphF, r.IndepDecF)
		}
		if i > 0 && r.DepGraphF > rows[0].DepGraphF+0.02 {
			t.Errorf("noise should not improve quality: %.3f at rate %.1f vs %.3f clean",
				r.DepGraphF, r.Rate, rows[0].DepGraphF)
		}
	}
	if rows[2].DepGraphF >= rows[0].DepGraphF {
		t.Errorf("40%% corruption should cost something: %.3f vs %.3f", rows[2].DepGraphF, rows[0].DepGraphF)
	}
	var buf bytes.Buffer
	FprintNoiseSweep(&buf, "A", rows)
	if !strings.Contains(buf.String(), "Noise robustness") {
		t.Error("rendered sweep malformed")
	}
}

// TestTable7FreeTextShape checks the free-text extraction variant: the
// collective-vs-baseline story must survive the extra extraction noise.
func TestTable7FreeTextShape(t *testing.T) {
	rows := testSuite().Table7FreeText()
	byClass := make(map[string]ClassComparison)
	for _, r := range rows {
		byClass[r.Class] = r
	}
	person := byClass[schema.ClassPerson]
	if person.DepGraph.Recall <= person.IndepDec.Recall {
		t.Errorf("free-text person recall: DepGraph %.3f should beat IndepDec %.3f",
			person.DepGraph.Recall, person.IndepDec.Recall)
	}
	venue := byClass[schema.ClassVenue]
	if venue.DepGraph.Recall <= venue.IndepDec.Recall {
		t.Errorf("free-text venue recall: DepGraph %.3f should beat IndepDec %.3f",
			venue.DepGraph.Recall, venue.IndepDec.Recall)
	}
	article := byClass[schema.ClassArticle]
	if article.DepGraph.F1 < 0.8 {
		t.Errorf("free-text article F collapsed: %.3f", article.DepGraph.F1)
	}
}

func TestRunCaching(t *testing.T) {
	s := testSuite()
	d := s.PIM("A")
	r1 := s.Run(d, DepGraph())
	r2 := s.Run(d, DepGraph())
	if &r1 == &r2 {
		t.Skip("maps compared by pointer identity are not meaningful")
	}
	// Cached: the exact same map instance should be returned.
	if r1[schema.ClassPerson] != r2[schema.ClassPerson] {
		t.Error("cache returned different results")
	}
}
