// Package schema models the class structure of an information space.
//
// A schema declares a set of classes, each with atomic attributes (string
// values) and association attributes (links to other references). The
// reconciler is schema-driven: which attribute pairs are comparable, which
// associations propagate reconciliation decisions, and with what dependency
// strength, are all declared here rather than hard-coded.
package schema

import (
	"fmt"
	"sort"
)

// AttrKind distinguishes atomic attributes from association attributes.
type AttrKind uint8

const (
	// Atomic attributes hold simple values such as strings and integers.
	Atomic AttrKind = iota
	// Association attributes hold links to other references.
	Association
)

func (k AttrKind) String() string {
	if k == Association {
		return "association"
	}
	return "atomic"
}

// Attribute describes one attribute of a class.
type Attribute struct {
	Name   string
	Kind   AttrKind
	Target string // class the links point at; associations only
}

// Class describes one class of references.
type Class struct {
	Name  string
	Attrs []Attribute
	// Rank orders similarity computation: classes with lower rank are
	// compared before classes that depend on them (persons and venues
	// before articles). See §3.2's recomputation-order heuristic.
	Rank int
}

// Attr returns the attribute with the given name, or false.
func (c *Class) Attr(name string) (Attribute, bool) {
	for _, a := range c.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// AtomicAttrs returns the class's atomic attributes in declaration order.
func (c *Class) AtomicAttrs() []Attribute {
	var out []Attribute
	for _, a := range c.Attrs {
		if a.Kind == Atomic {
			out = append(out, a)
		}
	}
	return out
}

// AssocAttrs returns the class's association attributes in declaration
// order.
func (c *Class) AssocAttrs() []Attribute {
	var out []Attribute
	for _, a := range c.Attrs {
		if a.Kind == Association {
			out = append(out, a)
		}
	}
	return out
}

// Schema is a set of classes.
type Schema struct {
	classes map[string]*Class
}

// New builds a schema from the given classes, validating that association
// targets exist and names are unique.
func New(classes ...*Class) (*Schema, error) {
	s := &Schema{classes: make(map[string]*Class, len(classes))}
	for _, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: class with empty name")
		}
		if _, dup := s.classes[c.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate class %q", c.Name)
		}
		seen := make(map[string]bool)
		for _, a := range c.Attrs {
			if a.Name == "" {
				return nil, fmt.Errorf("schema: class %q has attribute with empty name", c.Name)
			}
			if seen[a.Name] {
				return nil, fmt.Errorf("schema: class %q has duplicate attribute %q", c.Name, a.Name)
			}
			seen[a.Name] = true
		}
		s.classes[c.Name] = c
	}
	for _, c := range s.classes {
		for _, a := range c.Attrs {
			if a.Kind == Association {
				if _, ok := s.classes[a.Target]; !ok {
					return nil, fmt.Errorf("schema: class %q attribute %q targets unknown class %q", c.Name, a.Name, a.Target)
				}
			}
		}
	}
	return s, nil
}

// MustNew is New that panics on error; for statically-known schemas.
func MustNew(classes ...*Class) *Schema {
	s, err := New(classes...)
	if err != nil {
		panic(err)
	}
	return s
}

// Class returns the named class, or false.
func (s *Schema) Class(name string) (*Class, bool) {
	c, ok := s.classes[name]
	return c, ok
}

// Classes returns all classes ordered by rank, then name.
func (s *Schema) Classes() []*Class {
	out := make([]*Class, 0, len(s.classes))
	for _, c := range s.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Canonical class and attribute names used by the built-in PIM and Cora
// schemas.
const (
	ClassPerson  = "Person"
	ClassArticle = "Article"
	ClassVenue   = "Venue"

	AttrName         = "name"
	AttrEmail        = "email"
	AttrCoAuthor     = "coAuthor"
	AttrEmailContact = "emailContact"
	AttrTitle        = "title"
	AttrYear         = "year"
	AttrPages        = "pages"
	AttrLocation     = "location"
	AttrAuthoredBy   = "authoredBy"
	AttrPublishedIn  = "publishedIn"
)

// PIM returns the personal-information-management schema of Figure 1(a),
// with conferences and journals merged into a single Venue class as in the
// paper's experiments (§5.1).
func PIM() *Schema {
	person := &Class{
		Name: ClassPerson,
		Rank: 0,
		Attrs: []Attribute{
			{Name: AttrName, Kind: Atomic},
			{Name: AttrEmail, Kind: Atomic},
			{Name: AttrCoAuthor, Kind: Association, Target: ClassPerson},
			{Name: AttrEmailContact, Kind: Association, Target: ClassPerson},
		},
	}
	venue := &Class{
		Name: ClassVenue,
		Rank: 0,
		Attrs: []Attribute{
			{Name: AttrName, Kind: Atomic},
			{Name: AttrYear, Kind: Atomic},
			{Name: AttrLocation, Kind: Atomic},
		},
	}
	article := &Class{
		Name: ClassArticle,
		Rank: 1,
		Attrs: []Attribute{
			{Name: AttrTitle, Kind: Atomic},
			{Name: AttrYear, Kind: Atomic},
			{Name: AttrPages, Kind: Atomic},
			{Name: AttrAuthoredBy, Kind: Association, Target: ClassPerson},
			{Name: AttrPublishedIn, Kind: Association, Target: ClassVenue},
		},
	}
	return MustNew(person, venue, article)
}

// Cora returns the citation schema of Figure 5: Person(name, *coAuthor),
// Article(title, pages, *authoredBy, *publishedIn), Venue(name, year,
// location).
func Cora() *Schema {
	person := &Class{
		Name: ClassPerson,
		Rank: 0,
		Attrs: []Attribute{
			{Name: AttrName, Kind: Atomic},
			{Name: AttrCoAuthor, Kind: Association, Target: ClassPerson},
		},
	}
	venue := &Class{
		Name: ClassVenue,
		Rank: 0,
		Attrs: []Attribute{
			{Name: AttrName, Kind: Atomic},
			{Name: AttrYear, Kind: Atomic},
			{Name: AttrLocation, Kind: Atomic},
		},
	}
	article := &Class{
		Name: ClassArticle,
		Rank: 1,
		Attrs: []Attribute{
			{Name: AttrTitle, Kind: Atomic},
			{Name: AttrPages, Kind: Atomic},
			{Name: AttrAuthoredBy, Kind: Association, Target: ClassPerson},
			{Name: AttrPublishedIn, Kind: Association, Target: ClassVenue},
		},
	}
	return MustNew(person, venue, article)
}

// Canonical class and attribute names of the product-catalog schema (the
// online-catalog scenario from the paper's introduction, grown from
// examples/products into a servable information space).
const (
	ClassProduct      = "Product"
	ClassManufacturer = "Manufacturer"

	AttrModel   = "model"
	AttrCountry = "country"
	AttrMadeBy  = "madeBy"
)

// Catalog returns the product-catalog schema: products carry a title and a
// model designation and link to their manufacturer, which in turn carries
// a name and a country. Manufacturers rank below products so they are
// compared first, exactly as venues rank below articles in the PIM schema.
func Catalog() *Schema {
	maker := &Class{
		Name: ClassManufacturer,
		Rank: 0,
		Attrs: []Attribute{
			{Name: AttrName, Kind: Atomic},
			{Name: AttrCountry, Kind: Atomic},
		},
	}
	product := &Class{
		Name: ClassProduct,
		Rank: 1,
		Attrs: []Attribute{
			{Name: AttrTitle, Kind: Atomic},
			{Name: AttrModel, Kind: Atomic},
			{Name: AttrMadeBy, Kind: Association, Target: ClassManufacturer},
		},
	}
	return MustNew(maker, product)
}
