package schema

import (
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	// Duplicate class names.
	_, err := New(&Class{Name: "A"}, &Class{Name: "A"})
	if err == nil || !strings.Contains(err.Error(), "duplicate class") {
		t.Errorf("want duplicate-class error, got %v", err)
	}
	// Empty class name.
	if _, err := New(&Class{}); err == nil {
		t.Error("want empty-name error")
	}
	// Unknown association target.
	_, err = New(&Class{Name: "A", Attrs: []Attribute{{Name: "x", Kind: Association, Target: "Nope"}}})
	if err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Errorf("want unknown-target error, got %v", err)
	}
	// Duplicate attribute.
	_, err = New(&Class{Name: "A", Attrs: []Attribute{{Name: "x"}, {Name: "x"}}})
	if err == nil || !strings.Contains(err.Error(), "duplicate attribute") {
		t.Errorf("want duplicate-attribute error, got %v", err)
	}
	// Empty attribute name.
	if _, err := New(&Class{Name: "A", Attrs: []Attribute{{}}}); err == nil {
		t.Error("want empty-attribute error")
	}
	// Valid self-referencing schema.
	s, err := New(&Class{Name: "P", Attrs: []Attribute{{Name: "friend", Kind: Association, Target: "P"}}})
	if err != nil || s == nil {
		t.Errorf("self-reference should validate: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid schema")
		}
	}()
	MustNew(&Class{Name: "A"}, &Class{Name: "A"})
}

func TestPIMSchema(t *testing.T) {
	s := PIM()
	person, ok := s.Class(ClassPerson)
	if !ok {
		t.Fatal("no Person class")
	}
	if got := len(person.AtomicAttrs()); got != 2 {
		t.Errorf("Person atomic attrs = %d, want 2", got)
	}
	if got := len(person.AssocAttrs()); got != 2 {
		t.Errorf("Person assoc attrs = %d, want 2", got)
	}
	co, ok := person.Attr(AttrCoAuthor)
	if !ok || co.Kind != Association || co.Target != ClassPerson {
		t.Errorf("coAuthor attr wrong: %+v ok=%v", co, ok)
	}
	article, _ := s.Class(ClassArticle)
	if article.Rank <= person.Rank {
		t.Error("Article must rank after Person for computation ordering")
	}
	if _, ok := s.Class(ClassVenue); !ok {
		t.Error("no Venue class")
	}
}

func TestCoraSchema(t *testing.T) {
	s := Cora()
	person, _ := s.Class(ClassPerson)
	if _, ok := person.Attr(AttrEmail); ok {
		t.Error("Cora Person should not have email")
	}
	article, _ := s.Class(ClassArticle)
	if _, ok := article.Attr(AttrYear); ok {
		t.Error("Cora Article should not have year (it lives on Venue)")
	}
}

func TestClassesOrderedByRank(t *testing.T) {
	s := PIM()
	cs := s.Classes()
	if len(cs) != 3 {
		t.Fatalf("classes = %d", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Rank > cs[i].Rank {
			t.Errorf("classes not rank-ordered: %v", cs)
		}
	}
	if cs[len(cs)-1].Name != ClassArticle {
		t.Errorf("Article should come last, got %s", cs[len(cs)-1].Name)
	}
}

func TestAttrKindString(t *testing.T) {
	if Atomic.String() != "atomic" || Association.String() != "association" {
		t.Error("AttrKind.String wrong")
	}
}
