package recon

import (
	"strings"

	"refrecon/internal/emailaddr"
	"refrecon/internal/names"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/tokenizer"
)

// BlockingKeys exposes the canopy key function for analysis and ablation
// tooling (see internal/experiments).
func BlockingKeys(r *reference.Reference, emit func(string)) { blockingKeys(r, emit) }

// blockingKeys emits the canopy keys a reference exposes. Two references
// become a candidate pair iff they share at least one key (the paper's
// pruning of the dependency graph, §3.1/§6). Keys are designed so that
// every evidence source can fire: person references meet through surnames,
// email accounts, *and* surname-vs-account-name cross keys, so the
// Name&Email evidence has candidates to work on.
func blockingKeys(r *reference.Reference, keys func(string)) {
	switch r.Class {
	case schema.ClassPerson:
		personKeys(r, keys)
	case schema.ClassVenue:
		venueKeys(r, keys)
	case schema.ClassArticle:
		articleKeys(r, keys)
	default:
		for _, attr := range r.AtomicAttrs() {
			for _, v := range r.Atomic(attr) {
				for _, tok := range tokenizer.ContentWords(v) {
					keys("g:" + attr + ":" + tok)
				}
			}
		}
	}
}

func personKeys(r *reference.Reference, keys func(string)) {
	for _, raw := range r.Atomic(schema.AttrEmail) {
		addr, ok := emailaddr.Parse(raw)
		if !ok {
			continue
		}
		keys("pe:" + addr.Key())
		for _, tok := range addr.LocalTokens() {
			if len(tok) >= 3 {
				keys("pl:" + tok)
			}
		}
	}
	for _, raw := range r.Atomic(schema.AttrName) {
		n := names.Parse(raw)
		last := strings.ReplaceAll(n.Last, " ", "")
		if last != "" {
			keys("pn:" + last)
			// Cross key: surnames routinely serve as account names, so a
			// name-only reference can meet an email-only reference.
			keys("pl:" + last)
			if n.First != "" {
				keys("pl:" + string(n.First[0]) + last)
				keys("pl:" + n.First + last)
			}
		}
		if n.First != "" && !names.IsInitial(n.First) {
			formal := names.Formal(n.First)
			if last == "" {
				// Single-token names ("mike") block on the token and its
				// formal expansion so nicknames meet accounts and full
				// names.
				keys("pl:" + n.First)
				keys("pl:" + formal)
			}
			keys("pfn:" + formal)
		}
	}
}

func venueKeys(r *reference.Reference, keys func(string)) {
	for _, v := range r.Atomic(schema.AttrName) {
		words := tokenizer.ContentWords(v)
		for _, tok := range words {
			keys("vt:" + tok)
		}
		// Acronym keys bridge "VLDB" and "Very Large Data Bases".
		if len(words) == 1 && len(words[0]) >= 2 && len(words[0]) <= 8 {
			keys("va:" + words[0])
		}
		if len(words) >= 2 {
			var ini strings.Builder
			for _, w := range words {
				ini.WriteByte(w[0])
			}
			keys("va:" + ini.String())
		}
	}
}

func articleKeys(r *reference.Reference, keys func(string)) {
	for _, v := range r.Atomic(schema.AttrTitle) {
		words := tokenizer.ContentWords(v)
		for _, tok := range words {
			if len(tok) >= 3 {
				keys("at:" + tok)
			}
		}
		// Prefix key: robust to one-token noise deeper in the title.
		if len(words) >= 2 {
			keys("ap:" + strings.Join(words[:2], " "))
		}
	}
}
