package recon

import (
	"testing"

	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/simfn"
)

func personRef(s *reference.Store, name, email string) *reference.Reference {
	r := reference.New(schema.ClassPerson)
	r.AddAtomic(schema.AttrName, name)
	r.AddAtomic(schema.AttrEmail, email)
	s.Add(r)
	return r
}

func collectKeys(r *reference.Reference) map[string]bool {
	out := make(map[string]bool)
	blockingKeys(r, func(k string) { out[k] = true })
	return out
}

func TestPersonBlockingKeys(t *testing.T) {
	s := reference.NewStore()
	r := personRef(s, "Michael Stonebraker", "stonebraker@csail.mit.edu")
	keys := collectKeys(r)
	for _, want := range []string{
		"pe:stonebraker@csail.mit.edu", // exact account
		"pl:stonebraker",               // account token AND surname cross key
		"pn:stonebraker",               // surname
		"pl:mstonebraker",              // initial+surname fusion
		"pfn:michael",                  // formal given name
	} {
		if !keys[want] {
			t.Errorf("missing key %q in %v", want, keys)
		}
	}
}

func TestPersonBlockingKeysNickname(t *testing.T) {
	s := reference.NewStore()
	r := personRef(s, "mike", "mike@x.edu")
	keys := collectKeys(r)
	if !keys["pl:michael"] {
		t.Errorf("nickname should expand to formal key: %v", keys)
	}
}

func TestBlockingBridgesNameAndEmailRefs(t *testing.T) {
	// A name-only reference and an email-only reference of the same person
	// must share a candidate key, or Name&Email evidence can never fire.
	s := reference.NewStore()
	nameOnly := personRef(s, "Stonebraker, M.", "")
	emailOnly := personRef(s, "", "stonebraker@csail.mit.edu")
	k1 := collectKeys(nameOnly)
	k2 := collectKeys(emailOnly)
	shared := false
	for k := range k1 {
		if k2[k] {
			shared = true
		}
	}
	if !shared {
		t.Errorf("no shared blocking key between %v and %v", k1, k2)
	}
}

func TestVenueBlockingAcronymBridge(t *testing.T) {
	s := reference.NewStore()
	v1 := reference.New(schema.ClassVenue)
	v1.AddAtomic(schema.AttrName, "VLDB")
	s.Add(v1)
	v2 := reference.New(schema.ClassVenue)
	v2.AddAtomic(schema.AttrName, "Very Large Data Bases")
	s.Add(v2)
	k1 := collectKeys(v1)
	k2 := collectKeys(v2)
	if !k1["va:vldb"] || !k2["va:vldb"] {
		t.Errorf("acronym keys missing: %v / %v", k1, k2)
	}
}

func TestEnsureRefPairPrunesNoEvidence(t *testing.T) {
	s := reference.NewStore()
	r1 := personRef(s, "Alice Johnson", "")
	r2 := personRef(s, "Zoltan Brachnik", "")
	b := newBuilder(s, schema.PIM(), DefaultConfig())
	if n := b.ensureRefPair(r1, r2, false); n != nil {
		t.Errorf("dissimilar pair should be pruned, got %v", n)
	}
	// Pruned pairs are remembered and not rebuilt.
	if n := b.ensureRefPair(r1, r2, false); n != nil {
		t.Error("pruned pair resurrected")
	}
	if b.g.NodeCount() != 0 {
		t.Errorf("graph should be empty, has %d nodes", b.g.NodeCount())
	}
}

func TestEnsureRefPairRejectsMixedClasses(t *testing.T) {
	s := reference.NewStore()
	p := personRef(s, "Alice Johnson", "")
	v := reference.New(schema.ClassVenue)
	v.AddAtomic(schema.AttrName, "SIGMOD")
	s.Add(v)
	b := newBuilder(s, schema.PIM(), DefaultConfig())
	if n := b.ensureRefPair(p, v, false); n != nil {
		t.Error("cross-class pair created")
	}
	if n := b.ensureRefPair(p, p, false); n != nil {
		t.Error("self pair created")
	}
}

func TestPersonConstraintSameServer(t *testing.T) {
	s := reference.NewStore()
	r1 := personRef(s, "Jane Doe", "jane@cs.example.edu")
	r2 := personRef(s, "Jane Doe", "jdoe@cs.example.edu")
	b := newBuilder(s, schema.PIM(), DefaultConfig())
	n := b.ensureRefPair(r1, r2, false)
	if n == nil {
		t.Fatal("pair should exist (same names)")
	}
	if n.Status() != depgraph.NonMerge {
		t.Errorf("constraint 3 (one account per server) should mark non-merge, got %v", n.Status())
	}
}

func TestPersonConstraintSharedEmailOverrides(t *testing.T) {
	// Sharing an exact address beats constraint 2's name incompatibility.
	s := reference.NewStore()
	r1 := personRef(s, "Jane Smith", "j@x.edu")
	r2 := personRef(s, "Jane Rodriguez", "j@x.edu") // married-name style
	b := newBuilder(s, schema.PIM(), DefaultConfig())
	n := b.ensureRefPair(r1, r2, false)
	if n == nil {
		t.Fatal("pair should exist")
	}
	if n.Status() == depgraph.NonMerge {
		t.Error("shared email key must override the name constraint")
	}
}

func TestPersonConstraintIncompatibleNames(t *testing.T) {
	s := reference.NewStore()
	r1 := personRef(s, "Matt Stonebraker", "")
	r2 := personRef(s, "Michael Stonebraker", "")
	b := newBuilder(s, schema.PIM(), DefaultConfig())
	n := b.ensureRefPair(r1, r2, false)
	if n == nil {
		t.Fatal("pair should exist (same surname)")
	}
	if n.Status() != depgraph.NonMerge {
		t.Errorf("constraint 2 should mark non-merge, got %v", n.Status())
	}
}

func TestVenueConstraintIncompatibleYears(t *testing.T) {
	s := reference.NewStore()
	v1 := reference.New(schema.ClassVenue)
	v1.AddAtomic(schema.AttrName, "SIGMOD")
	v1.AddAtomic(schema.AttrYear, "1993")
	s.Add(v1)
	v2 := reference.New(schema.ClassVenue)
	v2.AddAtomic(schema.AttrName, "SIGMOD")
	v2.AddAtomic(schema.AttrYear, "2001")
	s.Add(v2)
	v3 := reference.New(schema.ClassVenue)
	v3.AddAtomic(schema.AttrName, "SIGMOD")
	v3.AddAtomic(schema.AttrYear, "1994")
	s.Add(v3)

	b := newBuilder(s, schema.PIM(), DefaultConfig())
	far := b.ensureRefPair(v1, v2, false)
	if far == nil || far.Status() != depgraph.NonMerge {
		t.Errorf("editions 8 years apart must be non-merge: %v", far)
	}
	near := b.ensureRefPair(v1, v3, false)
	if near == nil || near.Status() == depgraph.NonMerge {
		t.Errorf("adjacent years tolerate citation noise: %v", near)
	}
}

func TestConstraintsDisabled(t *testing.T) {
	// With constraints off, the Matt/Michael pair has no comparable
	// evidence (the name comparator scores contradictions near zero), so
	// it is simply pruned — "a non-merge node is different from a
	// non-existing node" (§3.4): absence still allows transitive merging,
	// whereas the constraint node actively blocks it.
	s := reference.NewStore()
	r1 := personRef(s, "Matt Stonebraker", "")
	r2 := personRef(s, "Michael Stonebraker", "")
	cfg := DefaultConfig()
	cfg.Constraints = false
	b := newBuilder(s, schema.PIM(), cfg)
	if n := b.ensureRefPair(r1, r2, false); n != nil {
		t.Errorf("pair without evidence should be pruned when unconstrained: %v", n)
	}
}

func TestCoAuthorConstraintAddsNodes(t *testing.T) {
	s := reference.NewStore()
	p1 := personRef(s, "Li, W.", "")
	p2 := personRef(s, "Li, W.", "") // same presentation, distinct authors
	a := reference.New(schema.ClassArticle)
	a.AddAtomic(schema.AttrTitle, "Some title")
	a.AddAssoc(schema.AttrAuthoredBy, p1.ID)
	a.AddAssoc(schema.AttrAuthoredBy, p2.ID)
	s.Add(a)

	b := newBuilder(s, schema.PIM(), DefaultConfig())
	g, _ := b.build()
	n := g.LookupRefPair(p1.ID, p2.ID)
	if n == nil {
		t.Fatal("co-author pair node should exist (constraints add nodes)")
	}
	if n.Status() != depgraph.NonMerge {
		t.Errorf("authors of one paper are distinct: %v", n.Status())
	}
}

func TestSeedOrderClassRank(t *testing.T) {
	// Person/venue pairs must precede article pairs in the seed, per
	// §3.2's computation-order heuristic.
	s := reference.NewStore()
	p1 := personRef(s, "Eugene Wong", "")
	p2 := personRef(s, "Wong, E.", "")
	mk := func(title string, author reference.ID) {
		a := reference.New(schema.ClassArticle)
		a.AddAtomic(schema.AttrTitle, title)
		a.AddAssoc(schema.AttrAuthoredBy, author)
		s.Add(a)
	}
	mk("Decomposition strategies for query processing", p1.ID)
	mk("Decomposition strategies for query processing", p2.ID)

	b := newBuilder(s, schema.PIM(), DefaultConfig())
	_, seed := b.build()
	sawArticle := false
	for _, n := range seed {
		if n.Class() == schema.ClassArticle {
			sawArticle = true
		}
		if sawArticle && n.Class() != schema.ClassArticle {
			t.Fatal("article pair seeded before a lower-rank pair")
		}
	}
	if !sawArticle {
		t.Fatal("no article pair in seed")
	}
}

func TestContactsOfUnion(t *testing.T) {
	s := reference.NewStore()
	r := reference.New(schema.ClassPerson)
	r.AddAssoc(schema.AttrCoAuthor, 5)
	r.AddAssoc(schema.AttrCoAuthor, 6)
	r.AddAssoc(schema.AttrEmailContact, 6)
	r.AddAssoc(schema.AttrEmailContact, 7)
	s.Add(r)
	got := contactsOf(r)
	if len(got) != 3 {
		t.Errorf("contactsOf = %v, want union of size 3", got)
	}
}

func TestGenericComparisons(t *testing.T) {
	c := &schema.Class{Name: "Widget", Attrs: []schema.Attribute{
		{Name: "label", Kind: schema.Atomic},
		{Name: "sku", Kind: schema.Atomic},
		{Name: "rel", Kind: schema.Association, Target: "Widget"},
	}}
	cmps := genericComparisons(c)
	if len(cmps) != 2 {
		t.Fatalf("comparisons = %v", cmps)
	}
	for _, cmp := range cmps {
		if cmp.attrA != cmp.attrB || cmp.swap {
			t.Errorf("generic comparison malformed: %+v", cmp)
		}
	}
}

func TestBuilderLibraryStats(t *testing.T) {
	s := reference.NewStore()
	personRef(s, "Ming Yuan", "")
	personRef(s, "Ling Yuan", "")
	personRef(s, "Michael Stonebraker", "")
	b := newBuilder(s, schema.PIM(), DefaultConfig())
	b.build() // library statistics are collected during incorporation
	if r := b.lib.NameRarity("", "yuan"); r >= 1 {
		t.Errorf("shared surname should not be fully identifying: %f", r)
	}
	if r := b.lib.NameRarity("", "stonebraker"); r != 1 {
		t.Errorf("unique surname rarity = %f", r)
	}
	_ = simfn.EvName // keep import for clarity of intent
}
