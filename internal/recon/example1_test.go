package recon

import (
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// buildExample1 constructs the references of Figure 1(b). The returned ids
// follow the paper's numbering: index 0..1 are articles a1,a2; 2..10 are
// persons p1..p9; 11..12 are venues c1,c2.
func buildExample1() (*reference.Store, map[string]reference.ID) {
	s := reference.NewStore()
	ids := make(map[string]reference.ID)

	person := func(label, name, email string) *reference.Reference {
		r := reference.New(schema.ClassPerson)
		r.AddAtomic(schema.AttrName, name)
		r.AddAtomic(schema.AttrEmail, email)
		ids[label] = s.Add(r)
		return r
	}
	p1 := person("p1", "Robert S. Epstein", "")
	p2 := person("p2", "Michael Stonebraker", "")
	p3 := person("p3", "Eugene Wong", "")
	p4 := person("p4", "Epstein, R.S.", "")
	p5 := person("p5", "Stonebraker, M.", "")
	p6 := person("p6", "Wong, E.", "")
	p7 := person("p7", "Eugene Wong", "eugene@berkeley.edu")
	p8 := person("p8", "", "stonebraker@csail.mit.edu")
	person("p9", "mike", "stonebraker@csail.mit.edu")

	coauthors := func(rs ...*reference.Reference) {
		for _, a := range rs {
			for _, b := range rs {
				if a != b {
					a.AddAssoc(schema.AttrCoAuthor, b.ID)
				}
			}
		}
	}
	coauthors(p1, p2, p3)
	coauthors(p4, p5, p6)
	p7.AddAssoc(schema.AttrEmailContact, p8.ID)
	p8.AddAssoc(schema.AttrEmailContact, p7.ID)

	venue := func(label, name, year, location string) *reference.Reference {
		r := reference.New(schema.ClassVenue)
		r.AddAtomic(schema.AttrName, name)
		r.AddAtomic(schema.AttrYear, year)
		r.AddAtomic(schema.AttrLocation, location)
		ids[label] = s.Add(r)
		return r
	}
	c1 := venue("c1", "ACM Conference on Management of Data", "1978", "Austin, Texas")
	c2 := venue("c2", "ACM SIGMOD", "1978", "")

	article := func(label, title, pages string, authors []*reference.Reference, v *reference.Reference) {
		r := reference.New(schema.ClassArticle)
		r.AddAtomic(schema.AttrTitle, title)
		r.AddAtomic(schema.AttrPages, pages)
		for _, a := range authors {
			r.AddAssoc(schema.AttrAuthoredBy, a.ID)
		}
		r.AddAssoc(schema.AttrPublishedIn, v.ID)
		ids[label] = s.Add(r)
	}
	const title = "Distributed query processing in a relational data base system"
	article("a1", title, "169-180", []*reference.Reference{p1, p2, p3}, c1)
	article("a2", title, "169-180", []*reference.Reference{p4, p5, p6}, c2)

	return s, ids
}

// TestExample1FullReconciliation checks the headline example of the paper:
// the full DepGraph algorithm must produce exactly the partitions of
// Figure 1(c).
func TestExample1FullReconciliation(t *testing.T) {
	store, ids := buildExample1()
	rc := New(schema.PIM(), DefaultConfig())
	res, err := rc.Reconcile(store)
	if err != nil {
		t.Fatal(err)
	}

	wantTogether := [][]string{
		{"a1", "a2"},
		{"p1", "p4"},
		{"p2", "p5", "p8", "p9"},
		{"p3", "p6", "p7"},
		{"c1", "c2"},
	}
	for _, group := range wantTogether {
		for i := 1; i < len(group); i++ {
			if !res.SameEntity(ids[group[0]], ids[group[i]]) {
				t.Errorf("%s and %s should be reconciled", group[0], group[i])
			}
		}
	}
	// Cross-group pairs must stay apart.
	for gi, g1 := range wantTogether {
		for gj, g2 := range wantTogether {
			if gi >= gj {
				continue
			}
			if res.SameEntity(ids[g1[0]], ids[g2[0]]) {
				t.Errorf("%s and %s must not be reconciled", g1[0], g2[0])
			}
		}
	}
	if got := res.PartitionCount(schema.ClassPerson); got != 3 {
		t.Errorf("person partitions = %d, want 3", got)
	}
	if got := res.PartitionCount(schema.ClassArticle); got != 1 {
		t.Errorf("article partitions = %d, want 1", got)
	}
	if got := res.PartitionCount(schema.ClassVenue); got != 1 {
		t.Errorf("venue partitions = %d, want 1", got)
	}
}

// TestExample1TraditionalMisses: without propagation and enrichment the
// hard cases (p5~p8 via a contact merge; c1~c2 via the article merge) must
// fail, which is exactly why the paper's mechanisms exist.
func TestExample1TraditionalMisses(t *testing.T) {
	store, ids := buildExample1()
	cfg := DefaultConfig()
	cfg.Mode = ModeTraditional
	res, err := New(schema.PIM(), cfg).Reconcile(store)
	if err != nil {
		t.Fatal(err)
	}
	if res.SameEntity(ids["c1"], ids["c2"]) {
		t.Error("traditional mode should not reconcile the venues")
	}
	// The easy attribute-wise merges still happen.
	if !res.SameEntity(ids["p8"], ids["p9"]) {
		t.Error("email key merge must work in any mode")
	}
	if !res.SameEntity(ids["p1"], ids["p4"]) {
		t.Error("name abbreviation merge must work in any mode")
	}
}

// TestExample1ConstraintScenario is the §3.4 example: with p9 named "Matt"
// the constraint machinery must keep p9 out of the Stonebraker cluster
// even though it shares p8's email address... p8 and p9 still merge (email
// key), but the merged pair must not join p2/p5 because "Matt" contradicts
// "Michael".
func TestExample1ConstraintScenario(t *testing.T) {
	store, ids := buildExample1()
	// Rename p9 to Matt.
	p9 := store.Get(ids["p9"])
	*p9 = *renamed(p9, "Matt")

	cfg := DefaultConfig()
	res, err := New(schema.PIM(), cfg).Reconcile(store)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameEntity(ids["p8"], ids["p9"]) {
		t.Error("p8 and p9 share an email key and must merge")
	}
	if res.SameEntity(ids["p2"], ids["p9"]) {
		t.Error("constraints must keep Matt out of the Michael Stonebraker cluster")
	}
}

// renamed clones a person reference with a different name, keeping other
// attributes and associations.
func renamed(r *reference.Reference, name string) *reference.Reference {
	clone := reference.New(r.Class)
	clone.ID = r.ID
	clone.Source = r.Source
	clone.Entity = r.Entity
	clone.AddAtomic(schema.AttrName, name)
	for _, attr := range r.AtomicAttrs() {
		if attr == schema.AttrName {
			continue
		}
		for _, v := range r.Atomic(attr) {
			clone.AddAtomic(attr, v)
		}
	}
	for _, attr := range r.AssocAttrs() {
		for _, id := range r.Assoc(attr) {
			clone.AddAssoc(attr, id)
		}
	}
	return clone
}

func TestReconcileRejectsInvalidStore(t *testing.T) {
	s := reference.NewStore()
	s.Add(reference.New("Martian"))
	if _, err := New(schema.PIM(), DefaultConfig()).Reconcile(s); err == nil {
		t.Error("invalid store should be rejected")
	}
}

func TestModeAndEvidenceStrings(t *testing.T) {
	if ModeFull.String() != "Full" || ModeTraditional.String() != "Traditional" ||
		ModePropagation.String() != "Propagation" || ModeMerge.String() != "Merge" {
		t.Error("mode strings wrong")
	}
	if EvidenceAttrWise.String() != "Attr-wise" || EvidenceNameEmail.String() != "Name&Email" ||
		EvidenceArticle.String() != "Article" || EvidenceContact.String() != "Contact" {
		t.Error("evidence strings wrong")
	}
}
