package recon

import (
	"context"
	"fmt"
	"sort"
	"time"

	"refrecon/internal/audit"
	"refrecon/internal/depgraph"
	"refrecon/internal/obs"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/simfn"
	"refrecon/internal/unionfind"
)

// Reconciler runs the DepGraph algorithm over a reference store.
type Reconciler struct {
	sch *schema.Schema
	cfg Config
}

// New returns a reconciler for the schema with the given configuration.
func New(sch *schema.Schema, cfg Config) *Reconciler {
	if cfg.Params == nil {
		cfg.Params = simfn.PaperParams()
	}
	if cfg.MergeThreshold == 0 {
		cfg.MergeThreshold = 0.85
	}
	if cfg.AttrMergeThreshold == 0 {
		cfg.AttrMergeThreshold = 1.0
	}
	return &Reconciler{sch: sch, cfg: cfg}
}

// Stats describes one reconciliation run.
type Stats struct {
	// CandidatePairs is the number of blocked candidate pairs considered.
	CandidatePairs int
	// GraphNodes / GraphEdges measure the dependency graph right after
	// construction (the Table 6 size metric).
	GraphNodes, GraphEdges int
	// NonMergeNodes counts constraint-marked nodes after the run.
	NonMergeNodes int
	// SkippedBuckets counts blocking buckets dropped by the bucket cap.
	SkippedBuckets int
	// Engine carries the propagation-engine counters. Under sharded
	// execution (Config.Shards != 1) it aggregates the per-component runs:
	// counts sum, QueueHighWater is the max, terminal flags or together.
	Engine depgraph.Stats
	// Shard describes the sharded execution layer; the whole struct is
	// zero under the monolithic path.
	Shard ShardStats
	// BuildTime, PropagateTime, and ClosureTime are wall-clock phase
	// timings: graph construction (blocking, candidate scoring, wiring),
	// fixed-point propagation, and the constrained transitive closure.
	// Incremental sessions accumulate them across batches. Timings are
	// informational and excluded from determinism comparisons.
	BuildTime, PropagateTime, ClosureTime time.Duration
	// AuditChecks counts the invariant assertions evaluated when
	// Config.Audit is on (zero otherwise). Informational, like the timings.
	AuditChecks int
}

// Result is the outcome of a reconciliation.
type Result struct {
	// Partitions maps each class to its entity partitions: slices of
	// reference ids, each partition one resolved real-world entity.
	Partitions map[string][][]reference.ID
	// Assignment maps every reference id to a dataset-wide partition
	// label.
	Assignment map[reference.ID]int
	// Stats describes the run.
	Stats Stats
}

// PartitionCount returns the number of partitions for a class (the Table
// 4/5 metric).
func (r *Result) PartitionCount(class string) int { return len(r.Partitions[class]) }

// SameEntity reports whether two references landed in the same partition.
func (r *Result) SameEntity(a, b reference.ID) bool {
	pa, okA := r.Assignment[a]
	pb, okB := r.Assignment[b]
	return okA && okB && pa == pb
}

// BuildGraph runs only the dependency-graph construction phase — blocking,
// candidate-pair scoring, association wiring, constraint seeding — and
// returns its stats, discarding the graph. It is the unit the construction
// benchmarks measure; Reconcile is the complete algorithm.
func (rc *Reconciler) BuildGraph(store *reference.Store) (Stats, error) {
	if err := store.Validate(rc.sch); err != nil {
		return Stats{}, invalidInput(err)
	}
	start := time.Now()
	b := newBuilder(store, rc.sch, rc.cfg)
	g, _ := b.build()
	return Stats{
		CandidatePairs: b.candidatePairs,
		GraphNodes:     g.NodeCount(),
		GraphEdges:     g.EdgeCount(),
		SkippedBuckets: b.skippedBuckets,
		BuildTime:      time.Since(start),
	}, nil
}

// engineOptions assembles the propagation-engine configuration shared by
// one-shot and incremental reconciliation. The scorer reads the
// delta-maintained evidence digests unless Config.RescanScoring forces the
// reference full-rescan path.
func (rc *Reconciler) engineOptions() depgraph.Options {
	return depgraph.Options{
		Scorer: &simfn.Scorer{Params: rc.cfg.Params, Rescan: rc.cfg.RescanScoring},
		MergeThreshold: func(n *depgraph.Node) float64 {
			if n.Kind() == depgraph.ValuePair {
				return rc.cfg.AttrMergeThreshold
			}
			return rc.cfg.MergeThreshold
		},
		Epsilon:   rc.cfg.Epsilon,
		Propagate: rc.cfg.Mode.propagate(),
		Enrich:    rc.cfg.Mode.enrich(),
		MaxSteps:  rc.cfg.MaxSteps,
	}
}

// newAuditor returns an invariant auditor matching the reconciler's engine
// configuration, or nil when Config.Audit is off.
func (rc *Reconciler) newAuditor() *audit.Auditor {
	if !rc.cfg.Audit {
		return nil
	}
	return audit.New(rc.engineOptions().MergeThreshold, rc.cfg.Constraints)
}

// Prepared is a fully constructed dependency graph awaiting propagation.
// BuildRetained returns one; Propagate consumes it. The split lets
// benchmarks (and diagnostics) time the propagation fixed point and the
// closure separately from construction.
type Prepared struct {
	rc    *Reconciler
	store *reference.Store
	g     *depgraph.Graph
	seed  []*depgraph.Node
	stats Stats
	used  bool
}

// BuildRetained runs the construction phase and keeps the graph, ready for
// a single Propagate call.
func (rc *Reconciler) BuildRetained(store *reference.Store) (*Prepared, error) {
	return rc.buildRetainedContext(context.Background(), store)
}

func (rc *Reconciler) buildRetainedContext(ctx context.Context, store *reference.Store) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, canceled("build", err)
	}
	if err := store.Validate(rc.sch); err != nil {
		return nil, invalidInput(err)
	}
	o := rc.cfg.Obs
	sp := o.Tracer().Begin("phase", "build")
	start := time.Now()
	b := newBuilder(store, rc.sch, rc.cfg)
	var g *depgraph.Graph
	var seed []*depgraph.Node
	build := func() { g, seed = b.build() }
	if o.Profiling() {
		obs.Do("build", build)
	} else {
		build()
	}
	sp.EndArgs(map[string]any{
		"nodes": g.NodeCount(), "edges": g.EdgeCount(), "candidates": b.candidatePairs,
	})
	b.feedCounters(o.Counter())
	o.Progressor().Emit(obs.Event{Phase: "build", Final: true})
	return &Prepared{
		rc: rc, store: store, g: g, seed: seed,
		stats: Stats{
			CandidatePairs: b.candidatePairs,
			GraphNodes:     g.NodeCount(),
			GraphEdges:     g.EdgeCount(),
			SkippedBuckets: b.skippedBuckets,
			BuildTime:      time.Since(start),
		},
	}, nil
}

// Propagate runs the fixed point and the constrained closure over the
// prepared graph. Propagation mutates the graph, so a Prepared value is
// single-use; a second call errors.
func (p *Prepared) Propagate() (*Result, error) {
	return p.propagateContext(context.Background())
}

func (p *Prepared) propagateContext(ctx context.Context) (*Result, error) {
	if k := p.rc.shardCount(); k > 1 {
		return p.propagateSharded(ctx, k)
	}
	if p.used {
		return nil, fmt.Errorf("recon: Prepared.Propagate called twice (the graph is consumed)")
	}
	p.used = true
	stats := p.stats
	o := p.rc.cfg.Obs

	aud := p.rc.newAuditor()
	if aud != nil {
		if err := aud.CheckGraph("build", p.g, false).Err(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled("propagate", err)
	}

	eopts := p.rc.engineOptions()
	eopts.Interrupt = ctx.Err
	eopts.Trace = o.Tracer()
	eopts.Progress = o.Progressor()

	sp := o.Tracer().Begin("phase", "propagate")
	start := time.Now()
	run := func() { stats.Engine = p.g.Run(p.seed, eopts) }
	if o.Profiling() {
		obs.Do("propagate", run)
	} else {
		run()
	}
	stats.PropagateTime = time.Since(start)
	sp.EndArgs(map[string]any{
		"steps": stats.Engine.Steps, "merges": stats.Engine.Merges,
		"folds": stats.Engine.Folds, "rounds": stats.Engine.Rounds,
	})
	feedEngineCounters(o.Counter(), stats.Engine)
	o.Progressor().Emit(obs.Event{
		Phase: "propagate", Round: stats.Engine.Rounds,
		Steps: stats.Engine.Steps, Merges: stats.Engine.Merges,
		Folds: stats.Engine.Folds, Final: true,
	})
	if stats.Engine.Interrupted {
		if c := o.Counter(); c != nil {
			c.Canceled.Add(1)
		}
		return nil, canceled("propagate", ctx.Err())
	}

	p.g.Nodes(func(n *depgraph.Node) {
		if n.Status() == depgraph.NonMerge {
			stats.NonMergeNodes++
		}
	})
	if aud != nil {
		if err := aud.CheckGraph("propagate", p.g, stats.Engine.Truncated).Err(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		if c := o.Counter(); c != nil {
			c.Canceled.Add(1)
		}
		return nil, canceled("closure", err)
	}

	spc := o.Tracer().Begin("phase", "closure")
	start = time.Now()
	res := closure(p.store, p.g, p.rc.cfg.Constraints)
	stats.ClosureTime = time.Since(start)
	spc.End()
	o.Progressor().Emit(obs.Event{Phase: "closure", Final: true})
	if aud != nil {
		if err := aud.CheckPartition("closure", p.store, p.g, res.Partitions, res.Assignment).Err(); err != nil {
			return nil, err
		}
		stats.AuditChecks = aud.TotalChecks
	}
	res.Stats = stats
	return res, nil
}

// Reconcile partitions the store's references into entities.
func (rc *Reconciler) Reconcile(store *reference.Store) (*Result, error) {
	return rc.ReconcileContext(context.Background(), store)
}

// ReconcileContext is Reconcile with cooperative cancellation: the run
// checks ctx before each phase (build, propagate, closure) and at every
// propagation-round boundary — the same checkpoints the tracer
// instruments. A cancelled run returns an error wrapping both ErrCanceled
// and ctx.Err(); the store is never mutated by reconciliation, so it
// remains usable afterwards.
func (rc *Reconciler) ReconcileContext(ctx context.Context, store *reference.Store) (*Result, error) {
	p, err := rc.buildRetainedContext(ctx, store)
	if err != nil {
		return nil, err
	}
	return p.propagateContext(ctx)
}

// feedEngineCounters adds one engine run's stats to the observer's
// counter set. Safe with a nil set.
func feedEngineCounters(c *obs.Counters, e depgraph.Stats) {
	if c == nil {
		return
	}
	c.Steps.Add(int64(e.Steps))
	c.Merges.Add(int64(e.Merges))
	c.Folds.Add(int64(e.Folds))
	c.Rounds.Add(int64(e.Rounds))
	c.RequeueReal.Add(int64(e.RequeueReal))
	c.RequeueStrong.Add(int64(e.RequeueStrong))
	c.RequeueWeak.Add(int64(e.RequeueWeak))
	c.DeltaHits.Add(int64(e.DeltaHits))
	c.AggBuilds.Add(int64(e.AggBuilds))
	c.AggRebuilds.Add(int64(e.AggRebuilds))
	obs.UpdateMax(&c.QueueHighWater, int64(e.QueueHighWater))
}

// closure computes the transitive closure over merged reference pairs,
// honoring non-merge constraints when enabled: merged pairs are applied in
// descending similarity order and a union that would bring the two sides
// of a constrained pair into one partition is skipped. This realizes
// §3.4's post-fixed-point negative-evidence propagation — "if we decide to
// reconcile r1 with r2, and r2 with r3, then r1, r2 and r3 will be
// clustered even if we have evidence showing that r1 is not similar to r3"
// — by revoking the least-certain link on any constraint-violating path.
func closure(store *reference.Store, g *depgraph.Graph, constrained bool) *Result {
	return closureOver(store, g.Nodes, constrained)
}

// closureOver is closure generalized over any node iterator; the sharded
// path feeds it the concatenation of every component's real (non-mirror)
// pairs in component-id order, which visits each global pair exactly once.
func closureOver(store *reference.Store, each func(func(*depgraph.Node)), constrained bool) *Result {
	uf := unionfind.New(store.Len())
	if !constrained {
		each(func(n *depgraph.Node) {
			if n.Kind() == depgraph.RefPair && n.Status() == depgraph.Merged {
				uf.Union(int(n.RefA()), int(n.RefB()))
			}
		})
		return partitionResult(store, uf)
	}

	var merged []*depgraph.Node
	enemies := make(map[int][]int) // root -> enemy reference ids
	each(func(n *depgraph.Node) {
		if n.Kind() != depgraph.RefPair {
			return
		}
		switch n.Status() {
		case depgraph.Merged:
			merged = append(merged, n)
		case depgraph.NonMerge:
			enemies[int(n.RefA())] = append(enemies[int(n.RefA())], int(n.RefB()))
			enemies[int(n.RefB())] = append(enemies[int(n.RefB())], int(n.RefA()))
		}
	})
	// Most-certain links first; ties broken by key for determinism.
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Sim() != merged[j].Sim() {
			return merged[i].Sim() > merged[j].Sim()
		}
		return merged[i].Key() < merged[j].Key()
	})
	hostile := func(ra, rb int) bool {
		es := enemies[ra]
		if len(enemies[rb]) < len(es) {
			es, rb = enemies[rb], ra
		}
		for _, e := range es {
			if uf.Find(e) == rb {
				return true
			}
		}
		return false
	}
	for _, n := range merged {
		ra, rb := uf.Find(int(n.RefA())), uf.Find(int(n.RefB()))
		if ra == rb || hostile(ra, rb) {
			continue
		}
		uf.Union(ra, rb)
		r := uf.Find(ra)
		other := ra + rb - r
		if es := enemies[other]; len(es) > 0 {
			enemies[r] = append(enemies[r], es...)
			delete(enemies, other)
		}
	}
	return partitionResult(store, uf)
}

func partitionResult(store *reference.Store, uf *unionfind.UF) *Result {
	res := &Result{
		Partitions: make(map[string][][]reference.ID),
		Assignment: make(map[reference.ID]int, store.Len()),
	}
	for label, part := range uf.Partitions() {
		if len(part) == 0 {
			continue
		}
		class := store.Get(reference.ID(part[0])).Class
		ids := make([]reference.ID, len(part))
		for i, x := range part {
			ids[i] = reference.ID(x)
			res.Assignment[reference.ID(x)] = label
		}
		res.Partitions[class] = append(res.Partitions[class], ids)
	}
	return res
}
