package recon

// Sharded reconciliation: the construction phase builds one global graph
// exactly as the monolithic path does (so the candidate set, node and edge
// shapes, and their stats are identical by construction), then package
// shard splits it into blocking-connected components, each with a private
// columnar graph, evidence aggregates, and queue. Components are grouped
// into Config.Shards balanced groups and one propagation engine runs per
// group concurrently; after every wave the serial boundary sync pushes
// cross-component evidence (association and contact edges between
// components) into the mirror copies and re-runs only the affected
// components, iterating to the same global fixed point the single engine
// reaches. Similarities and statuses only ever go up, so the frontier
// loop terminates; the shard-count equivalence tests pin bit-identical
// partitions and stats for every Shards >= 2, and identical partitions
// against Shards == 1.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"refrecon/internal/audit"
	"refrecon/internal/depgraph"
	"refrecon/internal/obs"
	"refrecon/internal/parallel"
	"refrecon/internal/reference"
	"refrecon/internal/shard"
	"refrecon/internal/unionfind"
)

// ShardStats describes the sharded execution layer of one reconciliation.
// Every field is deterministic and identical for every Shards value >= 2
// (grouping affects scheduling only, never which components exist or what
// the boundary carries). The whole struct is zero under the monolithic
// path, so Stats comparisons of legacy runs are unaffected.
type ShardStats struct {
	// Shards is the number of concurrent shard groups used.
	Shards int
	// Components counts blocking-connected components.
	Components int
	// LargestComponent is the heaviest component's weight (nodes + edges).
	LargestComponent int
	// BoundaryLinks counts cross-component dependencies resolved through
	// mirrors (including mirrors materialized by fold replay).
	BoundaryLinks int
	// ValueReplicas counts extra value-node copies created by replication.
	ValueReplicas int
	// BoundaryUpdates counts mirror/replica state changes applied by the
	// frontier syncs; FrontierActivations counts the dependents those
	// updates re-queued; FoldReplays counts owner folds replayed onto
	// mirrors.
	BoundaryUpdates     int
	FrontierActivations int
	FoldReplays         int
	// FrontierRounds counts boundary sync passes, including the final pass
	// that found nothing left to push.
	FrontierRounds int
}

// shardCount resolves Config.Shards: 0 means one shard per available CPU,
// anything below 1 is clamped to the monolithic path.
func (rc *Reconciler) shardCount() int {
	s := rc.cfg.Shards
	if s == 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s < 1 {
		s = 1
	}
	return s
}

// propagateSharded is the sharded counterpart of propagateContext: split
// the prepared global graph, run per-component fixed points concurrently,
// drain the boundary frontier, then close over the union of per-component
// decisions.
func (p *Prepared) propagateSharded(ctx context.Context, shards int) (*Result, error) {
	if p.used {
		return nil, fmt.Errorf("recon: Prepared.Propagate called twice (the graph is consumed)")
	}
	p.used = true
	stats := p.stats
	o := p.rc.cfg.Obs

	aud := p.rc.newAuditor()
	if aud != nil {
		if err := aud.CheckGraph("build", p.g, false).Err(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled("propagate", err)
	}

	sp := o.Tracer().Begin("phase", "propagate")
	start := time.Now()

	spSplit := o.Tracer().Begin("phase", "shard-split")
	plan := shard.Split(p.g, p.seed, p.store.Len(), shards)
	spSplit.EndArgs(map[string]any{
		"components": len(plan.Comps), "shards": len(plan.Groups),
		"boundaryLinks": len(plan.Links), "valueReplicas": plan.ValueReplicas,
	})
	shStats := ShardStats{
		Shards:           len(plan.Groups),
		Components:       len(plan.Comps),
		LargestComponent: plan.LargestComponent(),
		ValueReplicas:    plan.ValueReplicas,
	}

	// The shard partition itself, then each component graph, is audited
	// with a per-component auditor: mirrors duplicate remote pair keys, so
	// the stateful cross-phase snapshots need per-graph scopes.
	var auds []*audit.Auditor
	if aud != nil {
		if err := aud.CheckSharding("shard-split", plan, p.g).Err(); err != nil {
			return nil, err
		}
		auds = make([]*audit.Auditor, len(plan.Comps))
		for i, c := range plan.Comps {
			auds[i] = p.rc.newAuditor()
			if err := auds[i].CheckGraph("shard-build", c.G, false).Err(); err != nil {
				return nil, fmt.Errorf("component %d: %w", i, err)
			}
		}
	}

	eps := p.rc.cfg.Epsilon
	if eps <= 0 {
		eps = 1e-6
	}
	eopts := p.rc.engineOptions()
	eopts.Interrupt = ctx.Err
	// Engine-internal tracing and progress stay off: rounds of different
	// components would interleave on one lane. The orchestrator emits one
	// span per component run on a per-shard lane instead, and one progress
	// event per frontier round.
	tr := o.Tracer()
	lanes := make([]int64, len(plan.Groups))
	for s := range lanes {
		lanes[s] = tr.NextTID()
	}

	engine := make([]depgraph.Stats, len(plan.Comps))
	runs := 0
	runWave := func(comps []int, seeded bool) {
		byShard := make([][]int, len(plan.Groups))
		for _, cid := range comps {
			s := plan.ShardOf[cid]
			byShard[s] = append(byShard[s], cid)
		}
		runs += len(comps)
		parallel.Coarse(len(byShard), len(byShard), func(s int) {
			for _, cid := range byShard[s] {
				c := plan.Comps[cid]
				opts := eopts
				opts.OnFold = c.OnFold
				var seed []*depgraph.Node
				if seeded {
					seed = c.Seed
				}
				csp := tr.BeginTID("shard", fmt.Sprintf("component %d", cid), lanes[s])
				st := c.G.Run(seed, opts)
				csp.EndArgs(map[string]any{
					"steps": st.Steps, "merges": st.Merges, "folds": st.Folds,
				})
				addEngineStats(&engine[cid], st)
			}
		})
	}

	// The frontier loop. The first wave runs every component from its
	// seeds; later waves run only components the boundary sync gave work.
	var base map[reference.ID]int // merged closure after the first wave (audit oracle)
	stopped := func(comps []int) bool {
		for _, cid := range comps {
			if engine[cid].Interrupted || engine[cid].Truncated {
				return true
			}
		}
		return false
	}
	loop := func() {
		affected := make([]int, len(plan.Comps))
		for i := range affected {
			affected[i] = i
		}
		seeded := true
		for len(affected) > 0 {
			runWave(affected, seeded)
			if stopped(affected) {
				return
			}
			if seeded && aud != nil {
				base = shardedAssignment(p.store, plan)
			}
			seeded = false
			var sst shard.SyncStats
			affected, sst = plan.SyncBoundary(eps)
			shStats.FrontierRounds++
			shStats.BoundaryUpdates += sst.Updates
			shStats.FrontierActivations += sst.Activations
			shStats.FoldReplays += sst.FoldReplays
			o.Progressor().Emit(obs.Event{
				Phase: "frontier", Round: shStats.FrontierRounds,
				Steps: sst.Updates, Merges: sst.NewlyMerged, Queue: len(affected),
			})
		}
	}
	if o.Profiling() {
		obs.Do("propagate", loop)
	} else {
		loop()
	}

	var agg depgraph.Stats
	for i := range engine {
		addEngineStats(&agg, engine[i])
	}
	stats.Engine = agg
	shStats.BoundaryLinks = len(plan.Links)
	stats.Shard = shStats
	stats.PropagateTime = time.Since(start)
	sp.EndArgs(map[string]any{
		"steps": agg.Steps, "merges": agg.Merges, "folds": agg.Folds,
		"rounds": agg.Rounds, "components": shStats.Components,
		"frontierRounds": shStats.FrontierRounds, "runs": runs,
	})
	feedEngineCounters(o.Counter(), stats.Engine)
	feedShardCounters(o.Counter(), shStats, runs)
	o.Progressor().Emit(obs.Event{
		Phase: "propagate", Round: stats.Engine.Rounds,
		Steps: stats.Engine.Steps, Merges: stats.Engine.Merges,
		Folds: stats.Engine.Folds, Final: true,
	})
	if stats.Engine.Interrupted {
		if c := o.Counter(); c != nil {
			c.Canceled.Add(1)
		}
		return nil, canceled("propagate", ctx.Err())
	}

	eachReal := func(fn func(*depgraph.Node)) {
		for _, c := range plan.Comps {
			c := c
			c.G.Nodes(func(n *depgraph.Node) {
				if !plan.IsMirror(c, n) {
					fn(n)
				}
			})
		}
	}
	eachReal(func(n *depgraph.Node) {
		if n.Status() == depgraph.NonMerge {
			stats.NonMergeNodes++
		}
	})
	if aud != nil {
		for i, c := range plan.Comps {
			if err := auds[i].CheckGraph("shard-propagate", c.G, stats.Engine.Truncated).Err(); err != nil {
				return nil, fmt.Errorf("component %d: %w", i, err)
			}
		}
		// Frontier coherence: merges only accumulate after the first wave,
		// so the final unconstrained closure must refine (merge together)
		// the first wave's groups, never split them.
		if err := audit.CheckSuperset("frontier", base, shardedAssignment(p.store, plan)).Err(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		if c := o.Counter(); c != nil {
			c.Canceled.Add(1)
		}
		return nil, canceled("closure", err)
	}

	spc := o.Tracer().Begin("phase", "closure")
	cstart := time.Now()
	res := closureOver(p.store, eachReal, p.rc.cfg.Constraints)
	stats.ClosureTime = time.Since(cstart)
	spc.End()
	o.Progressor().Emit(obs.Event{Phase: "closure", Final: true})
	if aud != nil {
		if err := aud.CheckPartitionNodes("closure", p.store, eachReal, res.Partitions, res.Assignment).Err(); err != nil {
			return nil, err
		}
		stats.AuditChecks = aud.TotalChecks
		for _, ca := range auds {
			stats.AuditChecks += ca.TotalChecks
		}
	}
	res.Stats = stats
	return res, nil
}

// shardedAssignment computes the unconstrained transitive closure of the
// merged decisions across every component's real (non-mirror) pairs — the
// frontier-coherence oracle input.
func shardedAssignment(store *reference.Store, plan *shard.Plan) map[reference.ID]int {
	uf := unionfind.New(store.Len())
	for _, c := range plan.Comps {
		c.G.Nodes(func(n *depgraph.Node) {
			if n.Kind() == depgraph.RefPair && n.Status() == depgraph.Merged && !plan.IsMirror(c, n) {
				uf.Union(int(n.RefA()), int(n.RefB()))
			}
		})
	}
	return partitionResult(store, uf).Assignment
}

// addEngineStats folds one run's engine stats into an accumulator: counts
// add, high-water marks take the max, terminal flags or together.
func addEngineStats(dst *depgraph.Stats, s depgraph.Stats) {
	dst.Steps += s.Steps
	dst.Merges += s.Merges
	dst.Folds += s.Folds
	dst.Reactivate += s.Reactivate
	dst.Rounds += s.Rounds
	dst.RequeueReal += s.RequeueReal
	dst.RequeueStrong += s.RequeueStrong
	dst.RequeueWeak += s.RequeueWeak
	dst.DeltaHits += s.DeltaHits
	dst.AggBuilds += s.AggBuilds
	dst.AggRebuilds += s.AggRebuilds
	if s.QueueHighWater > dst.QueueHighWater {
		dst.QueueHighWater = s.QueueHighWater
	}
	dst.Truncated = dst.Truncated || s.Truncated
	dst.Interrupted = dst.Interrupted || s.Interrupted
}

// feedShardCounters adds one sharded run's layer stats to the observer's
// counter set. Safe with a nil set.
func feedShardCounters(c *obs.Counters, s ShardStats, runs int) {
	if c == nil {
		return
	}
	c.ShardRuns.Add(int64(runs))
	c.ShardComponents.Add(int64(s.Components))
	c.BoundaryLinks.Add(int64(s.BoundaryLinks))
	c.FrontierRounds.Add(int64(s.FrontierRounds))
	c.FrontierActivations.Add(int64(s.FrontierActivations))
	obs.UpdateMax(&c.LargestComponent, int64(s.LargestComponent))
}
