package recon

import (
	"fmt"
	"testing"

	"refrecon/internal/collective"
	"refrecon/internal/datagen/cora"
	"refrecon/internal/datagen/pim"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// snapshotOf reconciles a store and exports its snapshot.
func snapshotOf(t *testing.T, store *reference.Store, cfg Config) *Snapshot {
	t.Helper()
	sess := New(schema.PIM(), cfg).NewSession(store)
	if _, err := sess.Reconcile(); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// queryFor builds the exact-copy query of one stored reference: its own
// atomic values, plus (when withAssoc) its own association targets.
func queryFor(sr *SnapRef, withAssoc bool, limit int) Query {
	q := Query{Class: sr.Class, Limit: limit}
	if len(sr.Atomic) > 0 {
		q.Atomic = make(map[string][]string, len(sr.Atomic))
		for a, vs := range sr.Atomic {
			q.Atomic[a] = vs
		}
	}
	if withAssoc && len(sr.Assoc) > 0 {
		q.Assoc = make(map[string][]reference.ID, len(sr.Assoc))
		for a, ts := range sr.Assoc {
			q.Assoc[a] = ts
		}
	}
	return q
}

// candidateFingerprint renders a candidate list for bit-exact comparison.
func candidateFingerprint(cands []Candidate) string {
	out := ""
	for _, c := range cands {
		out += fmt.Sprintf("%d:%x:%v;", c.Entity.Canonical, c.Score, c.Match)
	}
	return out
}

// sampleRefs picks every strideth reference with any content.
func sampleRefs(snap *Snapshot, stride int) []*SnapRef {
	var out []*SnapRef
	snap.EachRef(func(sr *SnapRef) {
		if int(sr.ID)%stride == 0 && len(sr.Atomic) > 0 {
			out = append(out, sr)
		}
	})
	return out
}

// TestCollectiveBudgetFallbackBitIdentical pins the degradation contract:
// a query that blows the node budget returns the attribute-only Matcher's
// candidate list bit for bit — same entities, same float scores, same
// match flags — and never errors.
func TestCollectiveBudgetFallbackBitIdentical(t *testing.T) {
	g, err := pim.Generate(pim.DatasetA(0.03))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	snap := snapshotOf(t, g.Store, cfg)
	m := NewMatcher(schema.PIM(), cfg, snap)
	cm := NewCollectiveMatcher(m, collective.Config{})

	exhausted := collective.Config{MaxNodes: 1}
	checked, degraded := 0, 0
	for _, sr := range sampleRefs(snap, 7) {
		q := queryFor(sr, true, 10)
		attrOnly := q
		attrOnly.Assoc = nil
		base, _, err := m.Match(attrOnly)
		if err != nil {
			t.Fatalf("ref %d: attribute match: %v", sr.ID, err)
		}
		got, st, err := cm.MatchConfig(q, exhausted)
		if err != nil {
			t.Fatalf("ref %d: budget exhaustion must not error: %v", sr.ID, err)
		}
		if st.Expansion.PairNodes > exhausted.MaxNodes {
			t.Fatalf("ref %d: node budget exceeded: %d > %d",
				sr.ID, st.Expansion.PairNodes, exhausted.MaxNodes)
		}
		if st.Expansion.Degraded {
			degraded++
			if fp, bfp := candidateFingerprint(got), candidateFingerprint(base); fp != bfp {
				t.Fatalf("ref %d: degraded result differs from attribute-only matcher:\n%s\nvs\n%s",
					sr.ID, fp, bfp)
			}
		}
		checked++
	}
	if checked == 0 || degraded == 0 {
		t.Fatalf("test exercised nothing: %d checked, %d degraded", checked, degraded)
	}
}

// goldTopHits counts queries whose top candidate entity contains a
// reference with the query reference's gold entity label.
func goldTopHits(t *testing.T, snap *Snapshot, refs []*SnapRef, match func(Query) ([]Candidate, error)) int {
	t.Helper()
	hits := 0
	for _, sr := range refs {
		cands, err := match(queryFor(sr, true, 5))
		if err != nil {
			t.Fatalf("ref %d: %v", sr.ID, err)
		}
		if len(cands) == 0 {
			continue
		}
		for _, member := range cands[0].Entity.Members {
			mr, ok := snap.Ref(member)
			if ok && mr.Entity == sr.Entity {
				hits++
				break
			}
		}
	}
	return hits
}

// TestCollectiveGoldTopHitsNoWorse replays every sampled reference of the
// PIM and Cora gold datasets as a query and requires the collective
// matcher's gold top-hit count to be at least the attribute-only
// matcher's.
func TestCollectiveGoldTopHitsNoWorse(t *testing.T) {
	datasets := []struct {
		name  string
		store func() (*reference.Store, error)
	}{
		{"PIM-A", func() (*reference.Store, error) {
			g, err := pim.Generate(pim.DatasetA(0.03))
			if err != nil {
				return nil, err
			}
			return g.Store, nil
		}},
		{"Cora", func() (*reference.Store, error) {
			g, err := cora.Generate(cora.Default(0.05))
			if err != nil {
				return nil, err
			}
			return g.Store, nil
		}},
	}
	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			store, err := ds.store()
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			snap := snapshotOf(t, store, cfg)
			m := NewMatcher(schema.PIM(), cfg, snap)
			cm := NewCollectiveMatcher(m, collective.Config{})
			refs := sampleRefs(snap, 5)
			if len(refs) == 0 {
				t.Fatal("no sample references")
			}
			attrHits := goldTopHits(t, snap, refs, func(q Query) ([]Candidate, error) {
				q.Assoc = nil
				cands, _, err := m.Match(q)
				return cands, err
			})
			collHits := goldTopHits(t, snap, refs, func(q Query) ([]Candidate, error) {
				cands, _, err := cm.Match(q)
				return cands, err
			})
			t.Logf("%s: %d queries, attribute top-hits %d, collective top-hits %d",
				ds.name, len(refs), attrHits, collHits)
			if collHits < attrHits {
				t.Fatalf("collective top-hits regressed: %d < %d", collHits, attrHits)
			}
		})
	}
}

// TestCollectiveDeterministicAcrossWorkers pins the determinism contract:
// identical query + identical snapshot contents ⇒ bit-identical candidate
// lists, whatever worker count produced the snapshot and however often the
// query repeats.
func TestCollectiveDeterministicAcrossWorkers(t *testing.T) {
	g, err := pim.Generate(pim.DatasetA(0.03))
	if err != nil {
		t.Fatal(err)
	}
	var matchers []*CollectiveMatcher
	for _, workers := range []int{1, 2, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		snap := snapshotOf(t, g.Store, cfg)
		matchers = append(matchers, NewCollectiveMatcher(NewMatcher(schema.PIM(), cfg, snap), collective.Config{}))
	}
	snap := matchers[0].Matcher().Snapshot()
	refs := sampleRefs(snap, 11)
	if len(refs) == 0 {
		t.Fatal("no sample references")
	}
	for _, sr := range refs {
		q := queryFor(sr, true, 10)
		first, fstats, err := matchers[0].Match(q)
		if err != nil {
			t.Fatalf("ref %d: %v", sr.ID, err)
		}
		for run, cm := range matchers {
			for rep := 0; rep < 2; rep++ {
				got, gstats, err := cm.Match(q)
				if err != nil {
					t.Fatalf("ref %d (matcher %d): %v", sr.ID, run, err)
				}
				if fp, ffp := candidateFingerprint(got), candidateFingerprint(first); fp != ffp {
					t.Fatalf("ref %d: matcher %d rep %d diverged:\n%s\nvs\n%s",
						sr.ID, run, rep, fp, ffp)
				}
				if gstats.Expansion.PairNodes != fstats.Expansion.PairNodes ||
					gstats.Expansion.Steps != fstats.Expansion.Steps ||
					gstats.Expansion.Degraded != fstats.Expansion.Degraded {
					t.Fatalf("ref %d: matcher %d expansion stats diverged: %+v vs %+v",
						sr.ID, run, gstats.Expansion, fstats.Expansion)
				}
			}
		}
	}
}

// TestCollectiveAssociationDisambiguates builds the motivating scenario:
// two stored persons whose names are equally compatible with the query,
// where only the query's declared co-author separates them. The
// attribute-only matcher ties; the collective matcher must rank the
// person sharing the co-author first, strictly above its attribute score.
func TestCollectiveAssociationDisambiguates(t *testing.T) {
	store := reference.NewStore()
	jane := store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Jane Smith"))
	john := store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "John Smith"))
	alice := store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Alice Wu"))
	bob := store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Bob Lee"))
	store.Get(jane).AddAssoc(schema.AttrCoAuthor, alice)
	store.Get(john).AddAssoc(schema.AttrCoAuthor, bob)

	cfg := DefaultConfig()
	snap := snapshotOf(t, store, cfg)
	if snap.SameEntity(jane, john) {
		t.Fatal("fixture broken: the two Smiths must stay distinct entities")
	}
	m := NewMatcher(schema.PIM(), cfg, snap)
	cm := NewCollectiveMatcher(m, collective.Config{})

	q := Query{
		Class:  schema.ClassPerson,
		Atomic: map[string][]string{schema.AttrName: {"J. Smith"}},
		Assoc:  map[string][]reference.ID{schema.AttrCoAuthor: {alice}},
	}
	scoreOf := func(cands []Candidate, id reference.ID) (float64, bool) {
		for _, c := range cands {
			for _, mem := range c.Entity.Members {
				if mem == id {
					return c.Score, true
				}
			}
		}
		return 0, false
	}

	attrQ := q
	attrQ.Assoc = nil
	base, _, err := m.Match(attrQ)
	if err != nil {
		t.Fatal(err)
	}
	baseJane, okJ := scoreOf(base, jane)
	baseJohn, okN := scoreOf(base, john)
	if !okJ || !okN {
		t.Fatalf("fixture broken: both Smiths must be attribute candidates, got %v", base)
	}
	if baseJane != baseJohn {
		t.Fatalf("fixture broken: attribute scores must tie, got %v vs %v", baseJane, baseJohn)
	}

	cands, st, err := cm.Match(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Expansion.Degraded {
		t.Fatalf("unexpected degradation: %q", st.Expansion.Reason)
	}
	collJane, okJ := scoreOf(cands, jane)
	collJohn, okN := scoreOf(cands, john)
	if !okJ || !okN {
		t.Fatalf("both Smiths must remain candidates, got %v", cands)
	}
	if collJane <= baseJane {
		t.Fatalf("shared co-author must raise Jane's score: %v (attribute %v)", collJane, baseJane)
	}
	if collJane <= collJohn {
		t.Fatalf("collective pass must break the tie toward Jane: %v vs %v", collJane, collJohn)
	}
	if collJohn < baseJohn {
		t.Fatalf("collective scores must never drop below attribute-only: %v < %v", collJohn, baseJohn)
	}
	if len(cands) == 0 || cands[0].Entity.Canonical != jane {
		t.Fatalf("Jane must rank first, got %v", cands)
	}
}

// TestCollectiveAssocValidation pins the query-surface errors: unknown
// association attributes and out-of-range or wrongly-classed target ids
// are rejected before any expansion runs.
func TestCollectiveAssocValidation(t *testing.T) {
	store := reference.NewStore()
	store.Add(reference.New(schema.ClassPerson).AddAtomic(schema.AttrName, "Jane Smith"))
	cfg := DefaultConfig()
	snap := snapshotOf(t, store, cfg)
	cm := NewCollectiveMatcher(NewMatcher(schema.PIM(), cfg, snap), collective.Config{})

	bad := []Query{
		{Class: schema.ClassPerson,
			Atomic: map[string][]string{schema.AttrName: {"j smith"}},
			Assoc:  map[string][]reference.ID{"nope": {0}}},
		{Class: schema.ClassPerson,
			Atomic: map[string][]string{schema.AttrName: {"j smith"}},
			Assoc:  map[string][]reference.ID{schema.AttrName: {0}}},
		{Class: schema.ClassPerson,
			Atomic: map[string][]string{schema.AttrName: {"j smith"}},
			Assoc:  map[string][]reference.ID{schema.AttrCoAuthor: {99}}},
	}
	for i, q := range bad {
		if _, _, err := cm.Match(q); err == nil {
			t.Errorf("query %d: want validation error, got none", i)
		}
	}
}
