package recon

// Snapshot persistence: a gob wire form carrying only the snapshot's base
// data (references, partitions, assignment, pair decisions). Derived
// structures — canonical entities, the label index, the merged-pair
// adjacency used by Explain — are rebuilt on decode by the same code that
// builds them at export, so a decoded snapshot answers every query
// identically to the original. The serving layer's checkpoint files embed
// this encoding.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
)

// snapshotWire is the persisted form of a Snapshot. All fields are
// exported for gob; pair decisions are flattened into a slice sorted by
// pair key so their decoded in-memory order is deterministic.
type snapshotWire struct {
	Version    int
	Taken      time.Time
	Stats      Stats
	Refs       []SnapRef
	Partitions map[string][][]reference.ID
	Assignment map[reference.ID]int
	// Pairs carries the per-pair explain decisions; HasPairs distinguishes
	// a snapshot with zero pair nodes from one exported without graph data
	// (a Result snapshot), which must stay pair-less after a round trip.
	Pairs    []PairDecision
	HasPairs bool
}

// EncodeSnapshot serializes a snapshot into a self-contained byte blob.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	w := snapshotWire{
		Version:    s.Version,
		Taken:      s.Taken,
		Stats:      s.Stats,
		Refs:       s.refs,
		Partitions: s.partitions,
		Assignment: s.assignment,
		HasPairs:   s.pairs != nil,
	}
	if s.pairs != nil {
		keys := make([]uint64, 0, len(s.pairs))
		for k := range s.pairs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.Pairs = make([]PairDecision, 0, len(keys))
		for _, k := range keys {
			w.Pairs = append(w.Pairs, *s.pairs[k])
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("recon: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot reconstructs a snapshot from EncodeSnapshot's output,
// rebuilding the derived entity and explain indexes.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("recon: decode snapshot: %w", err)
	}
	snap := &Snapshot{
		Version:    w.Version,
		Taken:      w.Taken,
		Stats:      w.Stats,
		refs:       w.Refs,
		partitions: w.Partitions,
		assignment: w.Assignment,
		byLabel:    make(map[int]*Entity),
	}
	// Gob omits empty maps; normalize so decoded snapshots behave like
	// freshly exported ones (whose maps are always non-nil).
	if snap.partitions == nil {
		snap.partitions = make(map[string][][]reference.ID)
	}
	if snap.assignment == nil {
		snap.assignment = make(map[reference.ID]int)
	}
	for id := range snap.assignment {
		if int(id) >= len(snap.refs) || id < 0 {
			return nil, fmt.Errorf("recon: decode snapshot: assignment id %d outside %d refs", id, len(snap.refs))
		}
	}
	snap.buildEntities()
	if w.HasPairs {
		snap.pairs = make(map[uint64]*PairDecision, len(w.Pairs))
		snap.merged = make(map[reference.ID][]mergedLink)
		mergedStatus := depgraph.Merged.String()
		for i := range w.Pairs {
			d := &w.Pairs[i]
			snap.pairs[pairIndex(d.A, d.B)] = d
			if d.Status == mergedStatus {
				snap.merged[d.A] = append(snap.merged[d.A], mergedLink{d.B, d})
				snap.merged[d.B] = append(snap.merged[d.B], mergedLink{d.A, d})
			}
		}
		for id := range snap.merged {
			links := snap.merged[id]
			sort.Slice(links, func(i, j int) bool { return links[i].other < links[j].other })
		}
	}
	return snap, nil
}
