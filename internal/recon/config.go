// Package recon implements the paper's reconciliation algorithm (DepGraph):
// dependency-graph construction over candidate reference pairs (§3.1),
// similarity propagation to a fixed point (§3.2), reference enrichment
// (§3.3), constraint enforcement (§3.4), and the final transitive closure.
//
// The ablation axes of §5.3 are first-class configuration: Mode toggles
// reconciliation propagation and reference enrichment independently, and
// EvidenceLevel cumulatively enables the four evidence variations
// (Attr-wise, Name&Email, Article, Contact).
package recon

import (
	"refrecon/internal/obs"
	"refrecon/internal/simfn"
)

// Mode selects which of the two decision-coupling mechanisms run (the §5.3
// mode dimension).
type Mode int

const (
	// ModeFull applies both reconciliation propagation and reference
	// enrichment (the full DepGraph algorithm).
	ModeFull Mode = iota
	// ModeTraditional applies neither: every similarity is computed once,
	// in dependency order.
	ModeTraditional
	// ModePropagation applies only reconciliation propagation.
	ModePropagation
	// ModeMerge applies only reference enrichment.
	ModeMerge
)

func (m Mode) String() string {
	switch m {
	case ModeTraditional:
		return "Traditional"
	case ModePropagation:
		return "Propagation"
	case ModeMerge:
		return "Merge"
	default:
		return "Full"
	}
}

// propagate reports whether the mode re-activates dependent decisions.
func (m Mode) propagate() bool { return m == ModeFull || m == ModePropagation }

// enrich reports whether the mode folds enriched references.
func (m Mode) enrich() bool { return m == ModeFull || m == ModeMerge }

// EvidenceLevel cumulatively enables evidence sources (the §5.3 evidence
// dimension). Each level includes all earlier ones.
type EvidenceLevel int

const (
	// EvidenceAttrWise compares same-attribute values only (names with
	// names, emails with emails, ...).
	EvidenceAttrWise EvidenceLevel = iota
	// EvidenceNameEmail adds cross-attribute comparison of person names
	// against email addresses.
	EvidenceNameEmail
	// EvidenceArticle adds the person-article association: reconciled
	// articles push their aligned authors together.
	EvidenceArticle
	// EvidenceContact adds shared co-authors and email contacts as weak
	// evidence. This is the complete DepGraph evidence set.
	EvidenceContact
)

func (e EvidenceLevel) String() string {
	switch e {
	case EvidenceAttrWise:
		return "Attr-wise"
	case EvidenceNameEmail:
		return "Name&Email"
	case EvidenceArticle:
		return "Article"
	default:
		return "Contact"
	}
}

// Config collects all tunable parameters. DefaultConfig returns the
// published §5.2 settings.
type Config struct {
	// MergeThreshold is the reference-pair merge threshold (paper: 0.85).
	MergeThreshold float64
	// AttrMergeThreshold is the attribute-value-pair merge threshold
	// (paper: 1.0 — only identical values start out merged).
	AttrMergeThreshold float64
	// Params are the per-class t_rv, β, γ settings.
	Params map[string]simfn.ClassParams
	// Mode selects propagation/enrichment (default ModeFull).
	Mode Mode
	// Evidence selects the evidence level (default EvidenceContact).
	Evidence EvidenceLevel
	// Constraints enables the three negative-evidence constraints of §5.3
	// and the post-fixed-point non-merge propagation of §3.4.
	Constraints bool
	// BucketCap bounds blocking bucket sizes (0 = unlimited).
	BucketCap int
	// Workers is the number of goroutines scoring candidate-pair attribute
	// similarities during graph construction (0 = runtime.NumCPU(), 1 =
	// fully serial). A pure throughput knob: every worker count produces
	// bit-identical graphs, merge partitions, and stats — workers score
	// independent items into per-item slots and all graph mutation stays
	// on one goroutine.
	Workers int
	// Shards controls sharded reconciliation of Reconcile /
	// ReconcileContext: the candidate-pair graph is partitioned into
	// blocking-connected components, the components are grouped into this
	// many balanced shards, and one propagation engine runs per shard
	// concurrently, with cross-shard evidence resolved by a boundary
	// frontier to a global fixed point (package shard; decisions agree
	// with the monolithic run on >= 99.9% of pairs — see DESIGN.md,
	// "Sharded reconciliation"). 1 — the
	// default — is the exact legacy single-graph path, 0 resolves to
	// runtime.GOMAXPROCS(0), and any value >= 2 produces identical
	// partitions and stats for every other value >= 2 (grouping only
	// affects scheduling). Incremental Sessions always run the monolithic
	// path: components drift and merge across batches, so a per-batch
	// re-split would forfeit the retained graph the session exists to keep.
	Shards int
	// MaxSteps caps engine evaluations (0 = engine default).
	MaxSteps int
	// Epsilon is the reactivation threshold (0 = engine default).
	Epsilon float64
	// RescanScoring disables delta-maintained evidence digests: every
	// propagation step rescans the node's full incoming neighborhood, the
	// pre-optimization reference behavior. Results are bit-identical either
	// way (the determinism tests enforce it); the flag exists for
	// benchmarking the delta scorer against its baseline and as an escape
	// hatch.
	RescanScoring bool
	// Audit runs the structural invariant auditor (package audit) at every
	// phase boundary — after graph construction, after the propagation
	// fixed point, and after the transitive closure. A violation aborts the
	// run with a descriptive error. The graph checks cost one extra scan of
	// nodes, edges, and maintained aggregates per phase; leave Audit off in
	// production-scale runs and on in CI and while bisecting a suspected
	// consistency bug.
	Audit bool
	// Obs attaches the observability layer (package obs): span tracing,
	// counters, progress events, pprof phase labels. Nil — the default —
	// disables every facet at the cost of pointer comparisons; no
	// observability code allocates or touches atomics when Obs is nil, so
	// the zero-alloc hot-path pins hold. Observation never changes
	// results: runs with and without Obs produce identical partitions and
	// (deterministic) stats.
	Obs *obs.Observer
}

// DefaultConfig returns the full algorithm with the published parameters.
func DefaultConfig() Config {
	return Config{
		MergeThreshold:     0.85,
		AttrMergeThreshold: 1.0,
		Params:             simfn.PaperParams(),
		Mode:               ModeFull,
		Evidence:           EvidenceContact,
		Constraints:        true,
		BucketCap:          512,
		Shards:             1,
	}
}
