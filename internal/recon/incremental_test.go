package recon

import (
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// TestSessionIncrementalExample1 replays Example 1 in two increments: the
// bibliography first, then the email-extracted references. The final
// partitions must match Figure 1(c), just as the batch run does.
func TestSessionIncrementalExample1(t *testing.T) {
	store := reference.NewStore()
	ids := make(map[string]reference.ID)

	person := func(label, name, email string) *reference.Reference {
		r := reference.New(schema.ClassPerson)
		r.AddAtomic(schema.AttrName, name)
		r.AddAtomic(schema.AttrEmail, email)
		ids[label] = store.Add(r)
		return r
	}
	coauthors := func(rs ...*reference.Reference) {
		for _, a := range rs {
			for _, b := range rs {
				if a != b {
					a.AddAssoc(schema.AttrCoAuthor, b.ID)
				}
			}
		}
	}

	// Round 1: the two citations.
	p1 := person("p1", "Robert S. Epstein", "")
	p2 := person("p2", "Michael Stonebraker", "")
	p3 := person("p3", "Eugene Wong", "")
	p4 := person("p4", "Epstein, R.S.", "")
	p5 := person("p5", "Stonebraker, M.", "")
	p6 := person("p6", "Wong, E.", "")
	coauthors(p1, p2, p3)
	coauthors(p4, p5, p6)
	venue := func(label, name, year, location string) *reference.Reference {
		r := reference.New(schema.ClassVenue)
		r.AddAtomic(schema.AttrName, name)
		r.AddAtomic(schema.AttrYear, year)
		r.AddAtomic(schema.AttrLocation, location)
		ids[label] = store.Add(r)
		return r
	}
	c1 := venue("c1", "ACM Conference on Management of Data", "1978", "Austin, Texas")
	c2 := venue("c2", "ACM SIGMOD", "1978", "")
	article := func(label, title, pages string, authors []*reference.Reference, v *reference.Reference) {
		r := reference.New(schema.ClassArticle)
		r.AddAtomic(schema.AttrTitle, title)
		r.AddAtomic(schema.AttrPages, pages)
		for _, a := range authors {
			r.AddAssoc(schema.AttrAuthoredBy, a.ID)
		}
		r.AddAssoc(schema.AttrPublishedIn, v.ID)
		ids[label] = store.Add(r)
	}
	const title = "Distributed query processing in a relational data base system"
	article("a1", title, "169-180", []*reference.Reference{p1, p2, p3}, c1)
	article("a2", title, "169-180", []*reference.Reference{p4, p5, p6}, c2)

	sess := New(schema.PIM(), DefaultConfig()).NewSession(store)
	res1, err := sess.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !res1.SameEntity(ids["a1"], ids["a2"]) || !res1.SameEntity(ids["c1"], ids["c2"]) {
		t.Fatal("round 1 should reconcile the two citations and their venues")
	}
	if !res1.SameEntity(ids["p2"], ids["p5"]) {
		t.Fatal("round 1 should reconcile the Stonebraker author mentions")
	}

	// Round 2: the email world arrives.
	p7 := person("p7", "Eugene Wong", "eugene@berkeley.edu")
	p8 := person("p8", "", "stonebraker@csail.mit.edu")
	person("p9", "mike", "stonebraker@csail.mit.edu")
	p7.AddAssoc(schema.AttrEmailContact, p8.ID)
	p8.AddAssoc(schema.AttrEmailContact, p7.ID)

	res2, err := sess.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	wantTogether := [][]string{
		{"a1", "a2"},
		{"p1", "p4"},
		{"p2", "p5", "p8", "p9"},
		{"p3", "p6", "p7"},
		{"c1", "c2"},
	}
	for _, group := range wantTogether {
		for i := 1; i < len(group); i++ {
			if !res2.SameEntity(ids[group[0]], ids[group[i]]) {
				t.Errorf("incremental: %s and %s should be reconciled", group[0], group[i])
			}
		}
	}
	for gi, g1 := range wantTogether {
		for gj, g2 := range wantTogether {
			if gi < gj && res2.SameEntity(ids[g1[0]], ids[g2[0]]) {
				t.Errorf("incremental: %s and %s must not be reconciled", g1[0], g2[0])
			}
		}
	}
	if sess.Latest() != res2 {
		t.Error("Latest should return the newest result")
	}
}

// TestSessionMatchesBatch compares an incremental two-round run against a
// batch run on identical data: the pairwise decisions should agree almost
// everywhere (enrichment ordering may differ on the margin).
func TestSessionMatchesBatch(t *testing.T) {
	build := func() (*reference.Store, []reference.ID) {
		s := reference.NewStore()
		var ids []reference.ID
		add := func(name, email string) {
			r := reference.New(schema.ClassPerson)
			r.AddAtomic(schema.AttrName, name)
			r.AddAtomic(schema.AttrEmail, email)
			ids = append(ids, s.Add(r))
		}
		add("Jennifer Widom", "widom@stanford.edu")
		add("Widom, J.", "")
		add("Jennifer Widom", "")
		add("Hector Garcia-Molina", "hector@stanford.edu")
		add("Garcia-Molina, H.", "hector@stanford.edu")
		add("Rakesh Agrawal", "ragrawal@almaden.ibm.com")
		add("Agrawal, R.", "ragrawal@almaden.ibm.com")
		add("Jeff Ullman", "ullman@stanford.edu")
		add("Jeffrey Ullman", "ullman@stanford.edu")
		add("Moshe Vardi", "vardi@rice.edu")
		return s, ids
	}

	batchStore, ids := build()
	batch, err := New(schema.PIM(), DefaultConfig()).Reconcile(batchStore)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the same data on a fresh store, reconciling midway through.
	incStore := reference.NewStore()
	src, _ := build()
	sess := New(schema.PIM(), DefaultConfig()).NewSession(incStore)
	for i, r := range src.All() {
		clone := reference.New(r.Class)
		clone.AddAtomic(schema.AttrName, r.FirstAtomic(schema.AttrName))
		clone.AddAtomic(schema.AttrEmail, r.FirstAtomic(schema.AttrEmail))
		incStore.Add(clone)
		if i == 4 {
			if _, err := sess.Reconcile(); err != nil {
				t.Fatal(err)
			}
		}
	}
	inc, err := sess.Reconcile()
	if err != nil {
		t.Fatal(err)
	}

	agree, total := 0, 0
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			total++
			if batch.SameEntity(ids[i], ids[j]) == inc.SameEntity(ids[i], ids[j]) {
				agree++
			}
		}
	}
	if agree != total {
		t.Errorf("incremental agrees with batch on %d/%d pairs", agree, total)
	}
}
