package recon

import (
	"strings"
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func explainSession(t *testing.T) (*Session, map[string]reference.ID) {
	t.Helper()
	store, ids := buildExample1()
	sess := New(schema.PIM(), DefaultConfig()).NewSession(store)
	if _, err := sess.Reconcile(); err != nil {
		t.Fatal(err)
	}
	return sess, ids
}

func TestExplainSameEntity(t *testing.T) {
	sess, ids := explainSession(t)
	// p2 ("Michael Stonebraker") and p9 ("mike", stonebraker@csail...)
	// are united through a chain.
	exp, err := sess.Explain(ids["p2"], ids["p9"])
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Same {
		t.Fatal("p2 and p9 should be the same entity")
	}
	if len(exp.Path) == 0 {
		t.Fatal("expected a decision path")
	}
	// The path must start at p2 and end at p9, with consecutive hops.
	first, last := exp.Path[0], exp.Path[len(exp.Path)-1]
	touches := func(d PairDecision, id reference.ID) bool { return d.A == id || d.B == id }
	if !touches(first, ids["p2"]) {
		t.Errorf("path does not start at p2: %+v", first)
	}
	if !touches(last, ids["p9"]) {
		t.Errorf("path does not end at p9: %+v", last)
	}
	for _, d := range exp.Path {
		if d.Status != "merged" {
			t.Errorf("path hop not merged: %+v", d)
		}
		if len(d.Evidence) == 0 {
			t.Errorf("hop without evidence: %+v", d)
		}
	}
	s := exp.String()
	if !strings.Contains(s, "same entity") {
		t.Errorf("rendering = %q", s)
	}
}

func TestExplainDifferentEntities(t *testing.T) {
	sess, ids := explainSession(t)
	exp, err := sess.Explain(ids["p1"], ids["p2"])
	if err != nil {
		t.Fatal(err)
	}
	if exp.Same {
		t.Fatal("p1 and p2 are different people")
	}
	if len(exp.Path) != 0 {
		t.Error("different entities must have no path")
	}
	if !strings.Contains(exp.String(), "different entities") {
		t.Errorf("rendering = %q", exp.String())
	}
}

func TestExplainDirectEvidence(t *testing.T) {
	sess, ids := explainSession(t)
	// p8 and p9 share an email key: the direct node should show merged
	// email evidence.
	exp, err := sess.Explain(ids["p8"], ids["p9"])
	if err != nil {
		t.Fatal(err)
	}
	if exp.Direct == nil {
		t.Fatal("expected a direct pair node")
	}
	foundEmail := false
	for _, ev := range exp.Direct.Evidence {
		if ev.Type == "email" && ev.Sim == 1 {
			foundEmail = true
		}
	}
	if !foundEmail {
		t.Errorf("email key evidence missing: %+v", exp.Direct.Evidence)
	}
}

func TestExplainErrors(t *testing.T) {
	store, _ := buildExample1()
	sess := New(schema.PIM(), DefaultConfig()).NewSession(store)
	if _, err := sess.Explain(0, 1); err == nil {
		t.Error("Explain before Reconcile should error")
	}
	if _, err := sess.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Explain(0, 99999); err == nil {
		t.Error("out-of-range id should error")
	}
}
