package recon

import (
	"fmt"
	"sort"
	"strings"

	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
)

// Explanation describes why two references were (or were not) reconciled:
// the chain of merged pair decisions connecting them through the
// transitive closure, each with the evidence that drove it. Explanations
// are available from a Session, which retains the dependency graph.
type Explanation struct {
	A, B reference.ID
	// Same reports whether the two references ended in one partition.
	Same bool
	// Path lists the merged pair decisions connecting A to B (empty when
	// Same is false). Enrichment folds nodes, so a hop may connect A
	// directly to a reference that joined via an absorbed node.
	Path []PairDecision
	// Direct is the pair node for (A, B) itself, if one exists — also set
	// for non-reconciled pairs, where it shows the insufficient or
	// constrained evidence.
	Direct *PairDecision
}

// PairDecision is one pair node's state and evidence.
type PairDecision struct {
	A, B     reference.ID
	Sim      float64
	Status   string
	Evidence []EvidenceItem
}

// EvidenceItem is one incoming dependency of a pair node.
type EvidenceItem struct {
	// Type is the evidence label ("name", "email", "nameEmail",
	// "contact", "article", ...).
	Type string
	// Dep is the dependency kind ("real-valued", "strong-boolean",
	// "weak-boolean").
	Dep string
	// Sim is the source node's similarity.
	Sim float64
	// Source describes the source node (a value pair or a reference pair).
	Source string
	// Counted reports whether the item influences the score (boolean
	// evidence counts only once its source is merged).
	Counted bool
}

// String renders a multi-line human-readable explanation.
func (e Explanation) String() string {
	var b strings.Builder
	if e.Same {
		fmt.Fprintf(&b, "references %d and %d are the same entity\n", e.A, e.B)
	} else {
		fmt.Fprintf(&b, "references %d and %d are different entities\n", e.A, e.B)
	}
	for _, d := range e.Path {
		writeDecision(&b, "  ", d)
	}
	if e.Direct != nil && len(e.Path) == 0 {
		writeDecision(&b, "  ", *e.Direct)
	}
	return b.String()
}

func writeDecision(b *strings.Builder, indent string, d PairDecision) {
	fmt.Fprintf(b, "%s(%d, %d) sim=%.3f %s\n", indent, d.A, d.B, d.Sim, d.Status)
	for _, ev := range d.Evidence {
		mark := " "
		if ev.Counted {
			mark = "*"
		}
		fmt.Fprintf(b, "%s  %s %-10s %-14s %.3f  %s\n", indent, mark, ev.Type, ev.Dep, ev.Sim, ev.Source)
	}
}

// Explain reports why references a and b were or were not reconciled in
// the session's latest result. It returns an error before the first
// Reconcile call.
func (s *Session) Explain(a, b reference.ID) (Explanation, error) {
	if s.latest == nil || s.g == nil {
		return Explanation{}, fmt.Errorf("recon: Explain before Reconcile")
	}
	if int(a) >= s.store.Len() || int(b) >= s.store.Len() || a < 0 || b < 0 {
		return Explanation{}, fmt.Errorf("recon: reference id out of range")
	}
	out := Explanation{A: a, B: b, Same: s.latest.SameEntity(a, b)}
	if n := s.g.LookupRefPair(a, b); n != nil {
		d := describeNode(n)
		out.Direct = &d
	}
	if !out.Same {
		return out, nil
	}
	// BFS over merged pair nodes from a to b.
	prev := map[reference.ID]*depgraph.Node{a: nil}
	queue := []reference.ID{a}
	for len(queue) > 0 && prev[b] == nil {
		cur := queue[0]
		queue = queue[1:]
		nodes := s.g.RefPairNodesOf(cur)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key() < nodes[j].Key() })
		for _, n := range nodes {
			if n.Status() != depgraph.Merged {
				continue
			}
			next := n.Other(cur)
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = n
			if next == b {
				break
			}
			queue = append(queue, next)
		}
	}
	// The closure may unite a and b even when enrichment folded away the
	// intermediate nodes; in that case only Direct evidence is available.
	if prev[b] == nil {
		return out, nil
	}
	var rev []PairDecision
	for cur := b; cur != a; {
		n := prev[cur]
		rev = append(rev, describeNode(n))
		cur = n.Other(cur)
	}
	for i := len(rev) - 1; i >= 0; i-- {
		out.Path = append(out.Path, rev[i])
	}
	return out, nil
}

func describeNode(n *depgraph.Node) PairDecision {
	d := PairDecision{A: n.RefA(), B: n.RefB(), Sim: n.Sim(), Status: n.Status().String()}
	for _, e := range n.In() {
		src := e.From
		item := EvidenceItem{
			Type: e.Evidence,
			Dep:  e.Dep.String(),
			Sim:  src.Sim(),
		}
		if src.Kind() == depgraph.ValuePair {
			item.Source = src.Key()
		} else {
			item.Source = fmt.Sprintf("pair(%d,%d) %s", src.RefA(), src.RefB(), src.Status())
		}
		switch e.Dep {
		case depgraph.RealValued:
			item.Counted = src.Status() != depgraph.NonMerge
		default:
			item.Counted = src.Status() == depgraph.Merged
		}
		d.Evidence = append(d.Evidence, item)
	}
	sort.SliceStable(d.Evidence, func(i, j int) bool {
		if d.Evidence[i].Counted != d.Evidence[j].Counted {
			return d.Evidence[i].Counted
		}
		return d.Evidence[i].Sim > d.Evidence[j].Sim
	})
	return d
}
