package recon

// Query-time reconciliation, after Bhattacharya & Getoor's query-time
// entity resolution: instead of re-running the batch algorithm, a single
// query reference is resolved against an immutable Snapshot by generating
// candidates through the blocking index (never an O(n) scan) and scoring
// each candidate *entity* with the same simfn comparators and class
// decision trees graph construction uses. The entity's unioned attribute
// values stand in for reference enrichment: the MAX rule over the union is
// exactly what the enriched canonical reference would expose.

import (
	"fmt"
	"sort"

	"refrecon/internal/blocking"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/simfn"
)

// Query is one reconciliation question against a snapshot: a partial
// description of an entity of one class.
type Query struct {
	// Class is the schema class queried (required).
	Class string
	// Atomic maps attribute names to the query's values.
	Atomic map[string][]string
	// Assoc maps association attribute names to stored reference ids the
	// queried entity is known to link to (e.g. an article query naming
	// its already-reconciled authors). Only the CollectiveMatcher reads
	// it; the attribute-only Matcher ignores associations.
	Assoc map[string][]reference.ID
	// Limit bounds the returned candidates (<= 0 means the Matcher's
	// default of 10).
	Limit int
}

// Candidate is one scored entity candidate.
type Candidate struct {
	// Entity points into the snapshot (read-only).
	Entity *Entity
	// Score is the class decision-tree similarity in [0, 1].
	Score float64
	// Match reports a confident match: the top candidate clears the merge
	// threshold and no runner-up does.
	Match bool
}

// MatchStats describes one Match call's candidate generation.
type MatchStats struct {
	// CandidateRefs is the number of references the blocking index
	// returned for the query's keys (the pre-grouping candidate-set size).
	CandidateRefs int
	// CandidateEntities is the number of distinct entities scored.
	CandidateEntities int
}

// Matcher answers reconciliation queries against one Snapshot. It owns a
// per-snapshot similarity library (corpus statistics fed from the
// snapshot's copied values, never the live session's) and per-class
// blocking indexes, so concurrent Match calls share nothing mutable with
// ingest. Build one Matcher per published snapshot; Match is safe for
// concurrent use.
type Matcher struct {
	sch  *schema.Schema
	cfg  Config
	snap *Snapshot
	lib  *simfn.Library
	idx  map[string]*blocking.Index
}

// NewMatcher indexes a snapshot for query-time reconciliation. Cost is one
// pass over the snapshot's references (blocking keys + corpus statistics).
func NewMatcher(sch *schema.Schema, cfg Config, snap *Snapshot) *Matcher {
	if cfg.Params == nil {
		cfg.Params = simfn.PaperParams()
	}
	if cfg.MergeThreshold == 0 {
		cfg.MergeThreshold = 0.85
	}
	m := &Matcher{
		sch:  sch,
		cfg:  cfg,
		snap: snap,
		lib:  simfn.NewLibrary(),
		idx:  make(map[string]*blocking.Index),
	}
	if cfg.Obs != nil {
		m.lib.SetCounters(cfg.Obs.Counters)
	}
	snap.EachRef(func(sr *SnapRef) {
		for _, t := range sr.Atomic[schema.AttrTitle] {
			m.lib.Titles.Add(t)
		}
		switch sr.Class {
		case schema.ClassVenue:
			for _, v := range sr.Atomic[schema.AttrName] {
				m.lib.Venues.Add(v)
			}
		case schema.ClassPerson:
			for _, v := range sr.Atomic[schema.AttrName] {
				m.lib.AddPersonName(v)
			}
		}
		idx, ok := m.idx[sr.Class]
		if !ok {
			idx = blocking.New(cfg.BucketCap)
			m.idx[sr.Class] = idx
		}
		id := sr.ID
		blockingKeys(sr.detached(), func(k string) { idx.Add(k, id) })
	})
	return m
}

// Snapshot returns the snapshot the matcher serves.
func (m *Matcher) Snapshot() *Snapshot { return m.snap }

// Match resolves one query: blocking-index candidate lookup, grouping into
// entities, and decision-tree scoring of each entity, returning candidates
// in descending score order (ties broken by canonical id).
func (m *Matcher) Match(q Query) ([]Candidate, MatchStats, error) {
	class, ok := m.sch.Class(q.Class)
	if !ok {
		return nil, MatchStats{}, fmt.Errorf("recon: unknown query class %q", q.Class)
	}
	qr, err := buildQueryRef(class, q)
	if err != nil {
		return nil, MatchStats{}, err
	}
	if qr.IsEmpty() {
		return nil, MatchStats{}, nil
	}

	var keys []string
	blockingKeys(qr, func(k string) { keys = append(keys, k) })
	var ids []reference.ID
	if idx := m.idx[q.Class]; idx != nil {
		ids = idx.Candidates(keys)
	}

	seen := make(map[int]bool)
	var cands []Candidate
	for _, id := range ids {
		label, ok := m.snap.assignment[id]
		if !ok || seen[label] {
			continue
		}
		seen[label] = true
		ent := m.snap.byLabel[label]
		if ent == nil {
			continue
		}
		cands = append(cands, Candidate{Entity: ent, Score: m.scoreEntity(qr, ent)})
	}
	stats := MatchStats{CandidateRefs: len(ids), CandidateEntities: len(cands)}

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Entity.Canonical < cands[j].Entity.Canonical
	})
	limit := q.Limit
	if limit <= 0 {
		limit = 10
	}
	if len(cands) > limit {
		cands = cands[:limit]
	}
	MarkMatches(cands, m.cfg.MergeThreshold)
	return cands, stats, nil
}

// buildQueryRef materializes a query's atomic values as a free-standing
// reference of the class, validating each attribute, with deterministic
// (sorted) attribute order.
func buildQueryRef(class *schema.Class, q Query) (*reference.Reference, error) {
	qr := reference.New(q.Class)
	attrs := make([]string, 0, len(q.Atomic))
	for a := range q.Atomic {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, attr := range attrs {
		a, ok := class.Attr(attr)
		if !ok || a.Kind != schema.Atomic {
			return nil, fmt.Errorf("recon: class %q has no atomic attribute %q", q.Class, attr)
		}
		for _, v := range q.Atomic[attr] {
			qr.AddAtomic(attr, v)
		}
	}
	return qr, nil
}

// MarkMatches sets the Match flag on a score-sorted candidate list: the
// top candidate matches iff it clears the threshold and no runner-up does
// (an ambiguous result must not auto-match, per the OpenRefine protocol's
// intent). Exported so callers that re-merge candidate lists across
// classes can recompute the flag.
func MarkMatches(cands []Candidate, threshold float64) {
	for i := range cands {
		cands[i].Match = false
	}
	if len(cands) > 0 && cands[0].Score >= threshold &&
		(len(cands) == 1 || cands[1].Score < threshold) {
		cands[0].Match = true
	}
}

// scoreEntity scores the query against one entity's unioned attribute
// values: per comparison, the maximum comparator similarity over the value
// cross product (gated on the same candidate thresholds construction
// uses), combined by the class decision tree.
func (m *Matcher) scoreEntity(qr *reference.Reference, ent *Entity) float64 {
	ev := simfn.Evidence{Real: make(map[string]float64)}
	for _, cmp := range comparisons(m.sch, qr.Class, m.cfg.Evidence) {
		qvals := qr.Atomic(cmp.attrA)
		evals := ent.Atomic[cmp.attrB]
		if len(qvals) == 0 || len(evals) == 0 {
			continue
		}
		thr := simfn.CandidateThreshold(cmp.evidence)
		best, found := 0.0, false
		for _, v1 := range qvals {
			for _, v2 := range evals {
				x, y := v1, v2
				if cmp.swap {
					x, y = v2, v1
				}
				s := m.lib.Compare(cmp.evidence, x, y)
				if s < thr {
					continue
				}
				if !found || s > best {
					best, found = s, true
				}
			}
		}
		if found {
			if cur, ok := ev.Real[cmp.evidence]; !ok || best > cur {
				ev.Real[cmp.evidence] = best
			}
		}
	}
	if len(ev.Real) == 0 {
		return 0
	}
	return simfn.SRV(qr.Class, ev)
}
