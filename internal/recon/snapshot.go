package recon

// Snapshot export: a deep, read-only view of a reconciliation state that a
// serving layer can publish to concurrent readers while the live session
// keeps ingesting batches. A snapshot owns copies of everything it exposes
// — reference attribute values, partitions, canonical enriched entities,
// and per-pair explain data — so mutating the session (adding references,
// running further Reconcile batches) never changes an already-exported
// snapshot. See internal/serve for the copy-on-write publication scheme
// built on top.

import (
	"fmt"
	"sort"
	"time"

	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
)

// SnapRef is the deep-copied view of one reference inside a Snapshot.
type SnapRef struct {
	ID     reference.ID
	Class  string
	Source string
	Entity string
	// Atomic maps attribute names to copied value slices. Read-only.
	Atomic map[string][]string
	// Assoc maps association attribute names to copied target-id slices.
	// Read-only.
	Assoc map[string][]reference.ID
}

// detached rebuilds a free-standing reference.Reference carrying the
// snapshot's copied atomic values — the shape the blocking key functions
// and comparators expect. The result shares nothing with the live store.
func (r *SnapRef) detached() *reference.Reference {
	d := reference.New(r.Class)
	d.ID = r.ID
	attrs := make([]string, 0, len(r.Atomic))
	for a := range r.Atomic {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		for _, v := range r.Atomic[a] {
			d.AddAtomic(a, v)
		}
	}
	return d
}

// Entity is one canonical enriched entity of a snapshot: a partition with
// the union of its members' attribute values (the §3.3 enrichment view,
// materialized). The member with the lowest id is the canonical
// representative; its id doubles as the entity's external identifier.
type Entity struct {
	// Label is the snapshot-local partition label (not stable across
	// snapshots; Canonical is the stable handle).
	Label int
	Class string
	// Canonical is the lowest member reference id.
	Canonical reference.ID
	// Members lists the partition's reference ids in ascending order.
	Members []reference.ID
	// Atomic is the union of the members' atomic values, deduplicated,
	// in member-then-value order. Read-only.
	Atomic map[string][]string
}

// Name returns a display value for the entity: its first name-like
// attribute value ("name", then "title"), falling back to the first value
// of the alphabetically first attribute, then to the canonical id.
func (e *Entity) Name() string {
	for _, attr := range []string{"name", "title"} {
		if vs := e.Atomic[attr]; len(vs) > 0 {
			return vs[0]
		}
	}
	attrs := make([]string, 0, len(e.Atomic))
	for a := range e.Atomic {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		if vs := e.Atomic[a]; len(vs) > 0 {
			return vs[0]
		}
	}
	return fmt.Sprintf("entity %d", e.Canonical)
}

// mergedLink is one merged pair decision seen from one endpoint.
type mergedLink struct {
	other reference.ID
	d     *PairDecision
}

// Snapshot is a deep, read-only view of one reconciliation state. All
// methods are safe for concurrent use; nothing in a snapshot aliases the
// live session's mutable state.
type Snapshot struct {
	// Version is the session batch ordinal the snapshot was taken after
	// (0 for snapshots exported from a one-shot Result).
	Version int
	// Taken is the export wall-clock time (informational).
	Taken time.Time
	// Stats are the accumulated run statistics at export time.
	Stats Stats

	refs       []SnapRef
	partitions map[string][][]reference.ID
	assignment map[reference.ID]int
	entities   []*Entity
	byLabel    map[int]*Entity
	// pairs holds one copied decision per RefPair node; merged holds the
	// merged-pair adjacency for explain path search. Both are nil for
	// Result-exported snapshots, which carry no graph.
	pairs  map[uint64]*PairDecision
	merged map[reference.ID][]mergedLink
}

// pairIndex packs an unordered reference-id pair into one map key.
func pairIndex(a, b reference.ID) uint64 {
	if b < a {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(uint32(b))
}

// RefCount returns the number of references in the snapshot.
func (s *Snapshot) RefCount() int { return len(s.refs) }

// Ref returns the snapshot's view of one reference.
func (s *Snapshot) Ref(id reference.ID) (*SnapRef, bool) {
	if id < 0 || int(id) >= len(s.refs) {
		return nil, false
	}
	return &s.refs[id], true
}

// EachRef visits every reference in id order.
func (s *Snapshot) EachRef(fn func(*SnapRef)) {
	for i := range s.refs {
		fn(&s.refs[i])
	}
}

// Partitions returns the class partition map. Read-only.
func (s *Snapshot) Partitions() map[string][][]reference.ID { return s.partitions }

// PartitionCount returns the number of partitions of a class.
func (s *Snapshot) PartitionCount(class string) int { return len(s.partitions[class]) }

// SameEntity reports whether two references share a partition.
func (s *Snapshot) SameEntity(a, b reference.ID) bool {
	pa, okA := s.assignment[a]
	pb, okB := s.assignment[b]
	return okA && okB && pa == pb
}

// Entities returns the canonical enriched entities, sorted by canonical
// reference id. Read-only.
func (s *Snapshot) Entities() []*Entity { return s.entities }

// EntityOf returns the entity a reference belongs to (nil when the id is
// out of range).
func (s *Snapshot) EntityOf(id reference.ID) *Entity {
	label, ok := s.assignment[id]
	if !ok {
		return nil
	}
	return s.byLabel[label]
}

// EntityByLabel returns the entity with the snapshot-local partition label.
func (s *Snapshot) EntityByLabel(label int) *Entity { return s.byLabel[label] }

// Pair returns the copied decision for the (a, b) pair node, or nil when
// the graph had no such node (or the snapshot carries no graph data).
func (s *Snapshot) Pair(a, b reference.ID) *PairDecision {
	return s.pairs[pairIndex(a, b)]
}

// Explain mirrors Session.Explain over the snapshot's copied pair
// decisions: it reports whether a and b share a partition and, when they
// do, the chain of merged pair decisions connecting them. Snapshots
// exported from a Result carry no pair data, so Path and Direct stay
// empty there.
func (s *Snapshot) Explain(a, b reference.ID) (Explanation, error) {
	if int(a) >= len(s.refs) || int(b) >= len(s.refs) || a < 0 || b < 0 {
		return Explanation{}, fmt.Errorf("recon: reference id out of range")
	}
	out := Explanation{A: a, B: b, Same: s.SameEntity(a, b)}
	if d := s.Pair(a, b); d != nil {
		cp := *d
		out.Direct = &cp
	}
	if !out.Same || s.merged == nil {
		return out, nil
	}
	// BFS over merged pair decisions from a to b; adjacency is pre-sorted,
	// so the discovered path is deterministic.
	type hop struct {
		from reference.ID
		d    *PairDecision
	}
	prev := map[reference.ID]hop{a: {from: a}}
	queue := []reference.ID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			break
		}
		for _, l := range s.merged[cur] {
			if _, seen := prev[l.other]; seen {
				continue
			}
			prev[l.other] = hop{from: cur, d: l.d}
			queue = append(queue, l.other)
		}
	}
	if _, ok := prev[b]; !ok {
		// The closure can unite a and b even when enrichment folded away
		// the intermediate nodes; only Direct evidence is available then.
		return out, nil
	}
	var rev []PairDecision
	for cur := b; cur != a; {
		h := prev[cur]
		rev = append(rev, *h.d)
		cur = h.from
	}
	for i := len(rev) - 1; i >= 0; i-- {
		out.Path = append(out.Path, rev[i])
	}
	return out, nil
}

// Snapshot exports a deep, read-only view of the session's latest state:
// references, partitions, canonical enriched entities, and per-pair
// explain data. It errors before the first Reconcile. The export walks the
// store and the dependency graph once; the result shares no mutable state
// with the session, so later batches never disturb it.
func (s *Session) Snapshot() (*Snapshot, error) {
	if s.latest == nil || s.g == nil {
		return nil, fmt.Errorf("recon: Snapshot before Reconcile")
	}
	return newSnapshot(s.store, s.latest, s.g, s.b.batch), nil
}

// Snapshot exports the result as a deep, read-only view over the store it
// was computed from. One-shot results hold no dependency graph, so the
// snapshot carries partitions and entities but no per-pair explain data;
// use Session.Snapshot for the full view.
func (r *Result) Snapshot(store *reference.Store) *Snapshot {
	return newSnapshot(store, r, nil, 0)
}

func newSnapshot(store *reference.Store, res *Result, g *depgraph.Graph, version int) *Snapshot {
	snap := &Snapshot{
		Version:    version,
		Taken:      time.Now(),
		Stats:      res.Stats,
		partitions: make(map[string][][]reference.ID, len(res.Partitions)),
		assignment: make(map[reference.ID]int, len(res.Assignment)),
		byLabel:    make(map[int]*Entity),
	}

	// Deep-copy the references. Snapshots cover the store prefix the result
	// was computed over: references added to the store after the result's
	// Reconcile (but before export) have no partition assignment yet and
	// are excluded, keeping refs and partitions mutually consistent.
	covered := store.Len()
	for covered > 0 {
		if _, ok := res.Assignment[reference.ID(covered-1)]; ok {
			break
		}
		covered--
	}
	snap.refs = make([]SnapRef, covered)
	for i := 0; i < covered; i++ {
		r := store.Get(reference.ID(i))
		sr := SnapRef{ID: r.ID, Class: r.Class, Source: r.Source, Entity: r.Entity}
		if attrs := r.AtomicAttrs(); len(attrs) > 0 {
			sr.Atomic = make(map[string][]string, len(attrs))
			for _, a := range attrs {
				sr.Atomic[a] = append([]string(nil), r.Atomic(a)...)
			}
		}
		if attrs := r.AssocAttrs(); len(attrs) > 0 {
			sr.Assoc = make(map[string][]reference.ID, len(attrs))
			for _, a := range attrs {
				sr.Assoc[a] = append([]reference.ID(nil), r.Assoc(a)...)
			}
		}
		snap.refs[i] = sr
	}

	for class, parts := range res.Partitions {
		cp := make([][]reference.ID, len(parts))
		for i, part := range parts {
			cp[i] = append([]reference.ID(nil), part...)
			sort.Slice(cp[i], func(x, y int) bool { return cp[i][x] < cp[i][y] })
		}
		snap.partitions[class] = cp
	}
	for id, label := range res.Assignment {
		snap.assignment[id] = label
	}

	snap.buildEntities()

	if g != nil {
		snap.pairs = make(map[uint64]*PairDecision)
		snap.merged = make(map[reference.ID][]mergedLink)
		g.Nodes(func(node *depgraph.Node) {
			if node.Kind() != depgraph.RefPair {
				return
			}
			d := describeNode(node)
			dp := &d
			snap.pairs[pairIndex(node.RefA(), node.RefB())] = dp
			if node.Status() == depgraph.Merged {
				snap.merged[node.RefA()] = append(snap.merged[node.RefA()], mergedLink{node.RefB(), dp})
				snap.merged[node.RefB()] = append(snap.merged[node.RefB()], mergedLink{node.RefA(), dp})
			}
		})
		for id := range snap.merged {
			links := snap.merged[id]
			sort.Slice(links, func(i, j int) bool { return links[i].other < links[j].other })
		}
	}
	return snap
}

// buildEntities derives the canonical enriched entities from the
// snapshot's refs, partitions, and assignment: one entity per partition,
// attribute values unioned over the members (the MAX-rule view enrichment
// builds implicitly). It is called once at export and again when a
// snapshot is decoded from its persisted form, which carries only the base
// data.
func (snap *Snapshot) buildEntities() {
	classes := make([]string, 0, len(snap.partitions))
	for c := range snap.partitions {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		for _, part := range snap.partitions[class] {
			ent := &Entity{
				Label:     snap.assignment[part[0]],
				Class:     class,
				Canonical: part[0],
				Members:   part,
				Atomic:    make(map[string][]string),
			}
			for _, id := range part {
				sr := &snap.refs[id]
				attrs := make([]string, 0, len(sr.Atomic))
				for a := range sr.Atomic {
					attrs = append(attrs, a)
				}
				sort.Strings(attrs)
				for _, a := range attrs {
					for _, v := range sr.Atomic[a] {
						if !containsStr(ent.Atomic[a], v) {
							ent.Atomic[a] = append(ent.Atomic[a], v)
						}
					}
				}
			}
			snap.entities = append(snap.entities, ent)
			snap.byLabel[ent.Label] = ent
		}
	}
	sort.Slice(snap.entities, func(i, j int) bool {
		return snap.entities[i].Canonical < snap.entities[j].Canonical
	})
}

func containsStr(vs []string, v string) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}
